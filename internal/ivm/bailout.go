// Package ivm is the batch pipeline's incremental view maintainer: it
// propagates a mediator.Delta through the StruQL operators of a single
// version query, tracks which site-graph regions and generated pages
// the delta dirties, and re-renders only those — the delta analogue of
// a full core.BuildVersionWith.
//
// The subsystem is fail-soft by construction. Any operator that cannot
// produce a sound delta — a composed (multi-query) version, a delta too
// large to beat a rebuild, an evaluation error mid-propagation, a
// refcount underflow in the partition store — raises a typed *Bailout,
// and the Site wrapper degrades to the full fail-soft rebuild of the
// batch pipeline. Degradation is never silent: every bailout is counted
// by reason in obs.IVMMetrics.
package ivm

import (
	"fmt"

	"strudel/internal/obs"
)

// Reason classifies why delta propagation had to give up. The values
// mirror obs's Bailout* indices one for one, so a Reason converts to a
// metrics index by plain int conversion.
type Reason int

const (
	// ReasonComposedQueries: the version composes several queries, each
	// seeing the previous one's output; deltas are only propagated
	// through single-query versions.
	ReasonComposedQueries Reason = Reason(obs.BailoutComposedQueries)
	// ReasonDeltaTooLarge: the (compacted) delta exceeds the engine's
	// bound, where a full rebuild is expected to be cheaper than
	// row-by-row propagation.
	ReasonDeltaTooLarge Reason = Reason(obs.BailoutDeltaTooLarge)
	// ReasonEvalError: a seeded re-evaluation failed (resource guard,
	// timeout, or a relation that no longer binds an expected variable).
	ReasonEvalError Reason = Reason(obs.BailoutEvalError)
	// ReasonSupportUnderflow: removing a block partition would drive a
	// site-graph refcount negative — the maintained state is inconsistent
	// and cannot be patched.
	ReasonSupportUnderflow Reason = Reason(obs.BailoutSupportUnderflow)

	// NumReasons is the number of distinct bailout reasons.
	NumReasons = int(obs.NumBailoutReasons)
)

// String returns the snapshot name of the reason ("eval_error", ...).
func (r Reason) String() string { return obs.BailoutName(int(r)) }

// Bailout is the typed error raised when delta propagation cannot
// proceed soundly. Catching it and falling back to a full rebuild is
// the contract: a Bailout means "rebuild", never "give up".
type Bailout struct {
	Reason Reason
	Detail string
}

func (b *Bailout) Error() string {
	if b.Detail == "" {
		return fmt.Sprintf("ivm: bailout: %s", b.Reason)
	}
	return fmt.Sprintf("ivm: bailout: %s: %s", b.Reason, b.Detail)
}

func bail(r Reason, format string, args ...any) *Bailout {
	return &Bailout{Reason: r, Detail: fmt.Sprintf(format, args...)}
}
