package ivm

import (
	"fmt"
	"sort"
	"time"

	"strudel/internal/core"
	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/struql"
)

// Site is the fail-soft face of incremental maintenance: one maintained
// version plus the degrade-to-full machinery around it. Apply tries the
// row-level Engine first; on any typed *Bailout it counts the reason
// and rebuilds the whole version from scratch — the same output, paid
// for with a full evaluation. Publish pushes only the pages dirtied
// since the last successful publication, hardlinking the rest, through
// the same stage-verify-swap sequence as a batch build, so a fault at
// any patch step still leaves the published tree fully old or fully
// new.
type Site struct {
	version *core.Version
	opts    *core.Options
	// eng is nil when the version cannot be maintained incrementally
	// (composed queries): every Apply is then a counted full rebuild.
	eng *Engine
	out *htmlgen.Output
	// fbGraph is the site graph of the last full build when eng is nil,
	// kept so constraint checks still have a graph to run against.
	fbGraph *graph.Graph

	// pendingDirty accumulates dirty page names across applies AND
	// across failed publishes: after a failed publish the published tree
	// is still the old generation, so the next attempt must write every
	// page dirtied since the last success, not just the latest batch.
	pendingDirty map[string]bool
	// fullPending forces the next publish to write the whole tree: set
	// after construction and after every full rebuild, because a patch
	// is only sound against a tree this process published.
	fullPending bool

	// Obs receives apply/bailout/publish instrumentation; nil disables.
	Obs *obs.IVMMetrics
}

// NewSite builds the version once and prepares incremental state. A
// version whose shape cannot be maintained incrementally still works —
// it is built whole here and rebuilt whole on every Apply, each one
// counted as a bailout.
func NewSite(v *core.Version, data struql.Source, opts *core.Options, m *obs.IVMMetrics) (*Site, error) {
	s := &Site{version: v, opts: opts, pendingDirty: map[string]bool{}, fullPending: true, Obs: m}
	eng, err := NewEngine(v, data, opts)
	if err != nil {
		if _, ok := err.(*Bailout); !ok {
			return nil, err
		}
		vr, err := core.BuildVersionWith(v, data, opts)
		if err != nil {
			return nil, err
		}
		s.out = vr.Output
		s.fbGraph = vr.SiteGraph
		return s, nil
	}
	eng.Obs = m
	s.eng = eng
	s.out = eng.Output()
	return s, nil
}

// Output returns the current generated site.
func (s *Site) Output() *htmlgen.Output { return s.out }

// SiteGraph returns the live site graph: the engine's maintained graph,
// or for composed-query versions the graph of the last full build.
func (s *Site) SiteGraph() *graph.Graph {
	if s.eng == nil {
		return s.fbGraph
	}
	return s.eng.Site()
}

// Engine returns the row-level engine, nil for composed-query versions.
func (s *Site) Engine() *Engine { return s.eng }

// Apply pushes one data delta through the pipeline, degrading to a full
// rebuild on any bailout. data must already reflect the delta. A nil
// delta means "changed by an unknown amount" and always rebuilds. The
// returned error is non-nil only when even the full rebuild failed; the
// site then still holds (and can republish) its last good generation.
func (s *Site) Apply(data struql.Source, delta *mediator.Delta) error {
	if s.eng == nil {
		s.Obs.RecordBailout(int(ReasonComposedQueries))
		return s.rebuild(data)
	}
	if delta != nil && delta.Empty() {
		return nil
	}
	start := time.Now()
	pages, err := s.eng.Apply(data, delta)
	if err == nil {
		s.Obs.RecordApply(time.Since(start).Nanoseconds(), len(pages))
		for _, p := range pages {
			s.pendingDirty[p] = true
		}
		return nil
	}
	b, ok := err.(*Bailout)
	if !ok {
		return err
	}
	s.Obs.RecordBailout(int(b.Reason))
	return s.rebuild(data)
}

// rebuild replaces the engine (and output) with a from-scratch build.
// On failure the previous output is kept so the last good generation
// stays publishable; the stale engine is dropped either way, because a
// failed apply may have corrupted it.
func (s *Site) rebuild(data struql.Source) error {
	if s.Obs != nil {
		s.Obs.FullRebuilds.Inc()
	}
	s.eng = nil
	if len(s.version.Queries) == 1 {
		eng, err := NewEngine(s.version, data, s.opts)
		if err != nil {
			return fmt.Errorf("ivm: rebuild %s: %w", s.version.Name, err)
		}
		eng.Obs = s.Obs
		s.eng = eng
		s.out = eng.Output()
	} else {
		vr, err := core.BuildVersionWith(s.version, data, s.opts)
		if err != nil {
			return fmt.Errorf("ivm: rebuild %s: %w", s.version.Name, err)
		}
		s.out = vr.Output
		s.fbGraph = vr.SiteGraph
	}
	s.fullPending = true
	s.pendingDirty = map[string]bool{}
	return nil
}

// Publish pushes the current generation to dir: a patch of the pages
// dirtied since the last successful publish when one is sound, a full
// atomic publication otherwise. On failure the dirty set is retained —
// the published tree is still the previous generation, so the next
// attempt republishes everything accumulated since the last success.
func (s *Site) Publish(fsys fsx.FS, dir string, verify func(stage string) error) error {
	if s.fullPending {
		if err := s.out.Publish(fsys, dir, verify); err != nil {
			return err
		}
		s.fullPending = false
		s.pendingDirty = map[string]bool{}
		return nil
	}
	dirty := make([]string, 0, len(s.pendingDirty))
	for p := range s.pendingDirty {
		dirty = append(dirty, p)
	}
	sort.Strings(dirty)
	linked, written, err := s.out.PublishPatch(fsys, dir, dirty, verify)
	if s.Obs != nil {
		s.Obs.PagesLinked.Add(int64(linked))
		s.Obs.PagesWritten.Add(int64(written))
	}
	if err != nil {
		return err
	}
	s.pendingDirty = map[string]bool{}
	return nil
}
