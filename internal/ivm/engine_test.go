package ivm

import (
	"fmt"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

// testVersion wraps a query in a minimal renderable version: a constant
// root page so the generator always has a realization root.
func testVersion(query string) *core.Version {
	return &core.Version{
		Name:      "t",
		Queries:   []string{"create RootPage()\nlink RootPage() -> \"title\" -> \"t\"\n" + query},
		Templates: map[string]string{"root": "<h1><SFMT title></h1>"},
		PerObject: map[string]string{"RootPage()": "root"},
		Roots:     []string{"RootPage()"},
	}
}

// oracleGraph evaluates the version's query from scratch with a fresh
// Skolem environment — the ground truth the engine must track.
func oracleGraph(t *testing.T, e *Engine, data *graph.Graph) *graph.Graph {
	t.Helper()
	res, err := struql.Eval(e.query, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatalf("oracle eval: %v", err)
	}
	return res.Graph
}

func requireSameGraph(t *testing.T, want, got *graph.Graph, context string) {
	t.Helper()
	d := mediator.Diff(want, got)
	if !d.Empty() {
		t.Fatalf("%s: engine site graph diverged from full evaluation:\n+edges %v\n-edges %v\n+members %v\n-members %v",
			context, d.AddedEdges, d.RemovedEdges, d.AddedMembers, d.RemovedMembers)
	}
}

// applyAndCheck mutates the working graph via edit, pushes the diff
// through the engine, and asserts the maintained site graph matches a
// from-scratch evaluation.
func applyAndCheck(t *testing.T, e *Engine, cur *graph.Graph, context string, edit func(g *graph.Graph)) {
	t.Helper()
	prev := cur.Copy()
	edit(cur)
	delta := mediator.Diff(prev, cur)
	if _, err := e.Apply(struql.NewGraphSource(cur), delta); err != nil {
		t.Fatalf("%s: apply: %v", context, err)
	}
	requireSameGraph(t, oracleGraph(t, e, cur), e.Site(), context)
}

func newTestEngine(t *testing.T, query string, data *graph.Graph) *Engine {
	t.Helper()
	e, err := NewEngine(testVersion(query), struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	requireSameGraph(t, oracleGraph(t, e, data), e.Site(), "initial build")
	return e
}

func baseGraph() *graph.Graph {
	g := graph.New()
	for i := 0; i < 6; i++ {
		oid := graph.OID(fmt.Sprintf("p%d", i))
		g.AddToCollection("Papers", oid)
		g.AddEdge(oid, "title", graph.NewString(fmt.Sprintf("Paper %d", i)))
		g.AddEdge(oid, "year", graph.NewInt(int64(1994+i%3)))
		if i%2 == 0 {
			g.AddEdge(oid, "topic", graph.NewString("db"))
		}
	}
	g.AddEdge("p0", "cites", graph.NewNode("p1"))
	g.AddEdge("p1", "cites", graph.NewNode("p2"))
	return g
}

// --- per-operator differential tests -------------------------------

func TestDeltaMemberJoin(t *testing.T) {
	q := `where Papers(x), x -> "title" -> ti
create PaperPage(x)
link PaperPage(x) -> "title" -> ti
collect Pages(PaperPage(x))`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites == nil {
		t.Fatal("member join block should be tier A")
	}
	applyAndCheck(t, e, cur, "add member+title", func(g *graph.Graph) {
		g.AddToCollection("Papers", "p9")
		g.AddEdge("p9", "title", graph.NewString("Paper 9"))
	})
	applyAndCheck(t, e, cur, "remove member", func(g *graph.Graph) {
		g.RemoveFromCollection("Papers", "p1")
	})
	applyAndCheck(t, e, cur, "remove title edge", func(g *graph.Graph) {
		g.RemoveEdge("p2", "title", graph.NewString("Paper 2"))
	})
	applyAndCheck(t, e, cur, "mutate title", func(g *graph.Graph) {
		g.RemoveEdge("p3", "title", graph.NewString("Paper 3"))
		g.AddEdge("p3", "title", graph.NewString("Paper 3 rev"))
	})
}

func TestDeltaCmpFilter(t *testing.T) {
	q := `where Papers(x), x -> "year" -> y, y > 1994
create Recent(x)
link Recent(x) -> "year" -> y`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	applyAndCheck(t, e, cur, "add passing year", func(g *graph.Graph) {
		g.AddToCollection("Papers", "px")
		g.AddEdge("px", "year", graph.NewInt(1999))
	})
	applyAndCheck(t, e, cur, "add failing year", func(g *graph.Graph) {
		g.AddToCollection("Papers", "py")
		g.AddEdge("py", "year", graph.NewInt(1990))
	})
	applyAndCheck(t, e, cur, "cross the threshold", func(g *graph.Graph) {
		g.RemoveEdge("py", "year", graph.NewInt(1990))
		g.AddEdge("py", "year", graph.NewInt(1997))
	})
}

func TestDeltaEdgeVariable(t *testing.T) {
	q := `where Papers(x), x -> l -> v
create Attr(x)
link Attr(x) -> l -> v`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites == nil {
		t.Fatal("arc-variable block should be tier A")
	}
	applyAndCheck(t, e, cur, "add arbitrary attribute", func(g *graph.Graph) {
		g.AddEdge("p0", "venue", graph.NewString("SIGMOD"))
	})
	applyAndCheck(t, e, cur, "remove attribute", func(g *graph.Graph) {
		g.RemoveEdge("p0", "topic", graph.NewString("db"))
	})
}

func TestDeltaSingleStepPath(t *testing.T) {
	q := `where Papers(x), x -> ~"cit.*" -> y
create Citing(x)
link Citing(x) -> "to" -> y`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites == nil {
		t.Fatal("single-step regex path should be tier A")
	}
	applyAndCheck(t, e, cur, "add matching edge", func(g *graph.Graph) {
		g.AddEdge("p3", "cites", graph.NewNode("p0"))
	})
	applyAndCheck(t, e, cur, "remove matching edge", func(g *graph.Graph) {
		g.RemoveEdge("p0", "cites", graph.NewNode("p1"))
	})
}

func TestDeltaStarPathTierB(t *testing.T) {
	q := `where Papers(x), x -> "cites"* -> y
create Reach(x)
link Reach(x) -> "r" -> y`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites != nil {
		t.Fatal("closure path must be tier B (delete-and-rederive by block re-evaluation)")
	}
	applyAndCheck(t, e, cur, "extend the chain", func(g *graph.Graph) {
		g.AddEdge("p2", "cites", graph.NewNode("p3"))
	})
	applyAndCheck(t, e, cur, "cut the chain", func(g *graph.Graph) {
		g.RemoveEdge("p1", "cites", graph.NewNode("p2"))
	})
}

func TestDeltaNegation(t *testing.T) {
	q := `where Papers(x), not(x -> "topic" -> z)
create Untopical(x)
collect Plain(Untopical(x))`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites == nil {
		t.Fatal("one-level negation should be tier A")
	}
	// An addition inside the negation kills a row.
	applyAndCheck(t, e, cur, "negation add kills", func(g *graph.Graph) {
		g.AddEdge("p1", "topic", graph.NewString("web"))
	})
	// A removal inside the negation gives birth to a row
	// (delete-and-rederive: the site is re-evaluated).
	applyAndCheck(t, e, cur, "negation remove births", func(g *graph.Graph) {
		g.RemoveEdge("p0", "topic", graph.NewString("db"))
	})
}

func TestDeltaSkolemGroupingNested(t *testing.T) {
	// The canonical Skolem grouping idiom: one YearPage per distinct
	// year, attributes attached in a nested block.
	q := `where Papers(x), x -> "year" -> y
create YearPage(y)
link YearPage(y) -> "paper" -> x
{ where x -> "title" -> ti
  link YearPage(y) -> "entry" -> ti }`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	applyAndCheck(t, e, cur, "new paper joins existing year group", func(g *graph.Graph) {
		g.AddToCollection("Papers", "p7")
		g.AddEdge("p7", "year", graph.NewInt(1995))
		g.AddEdge("p7", "title", graph.NewString("Paper 7"))
	})
	applyAndCheck(t, e, cur, "new year births a group page", func(g *graph.Graph) {
		g.AddToCollection("Papers", "p8")
		g.AddEdge("p8", "year", graph.NewInt(2001))
		g.AddEdge("p8", "title", graph.NewString("Paper 8"))
	})
	applyAndCheck(t, e, cur, "last member leaves a group", func(g *graph.Graph) {
		g.RemoveEdge("p8", "year", graph.NewInt(2001))
	})
}

func TestDeltaAggregateTierB(t *testing.T) {
	q := `where Papers(x), x -> "year" -> y
aggregate count(x) as n by y
create YearCount(y)
link YearCount(y) -> "n" -> n`
	cur := baseGraph()
	e := newTestEngine(t, q, cur)
	if e.blocks[1].sites != nil {
		t.Fatal("aggregation must be tier B")
	}
	applyAndCheck(t, e, cur, "count shifts", func(g *graph.Graph) {
		g.AddToCollection("Papers", "pz")
		g.AddEdge("pz", "year", graph.NewInt(1994))
	})
}

// --- randomized edit storm -----------------------------------------

// editRand mirrors the struql differential oracle's self-contained LCG
// so edit storms are reproducible from a plain integer seed.
type editRand struct{ s uint64 }

func newEditRand(seed uint64) *editRand {
	return &editRand{s: seed*2654435761 + 0x9e3779b97f4a7c15}
}

func (r *editRand) n(k int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(k))
}

func (r *editRand) pick(ss ...string) string { return ss[r.n(len(ss))] }

// randomEdit applies one random source edit: an added edge, a removed
// edge, a value mutation, a membership change, or a whole-record
// deletion — the edit-storm vocabulary of the soak suite.
func randomEdit(r *editRand, g *graph.Graph) {
	oid := func() graph.OID { return graph.OID(fmt.Sprintf("p%d", r.n(10))) }
	label := func() string { return r.pick("title", "year", "topic", "cites") }
	value := func() graph.Value {
		switch r.n(3) {
		case 0:
			return graph.NewString(r.pick("a", "b", "db", "web"))
		case 1:
			return graph.NewInt(int64(1990 + r.n(10)))
		default:
			return graph.NewNode(oid())
		}
	}
	switch r.n(5) {
	case 0: // add edge
		g.AddEdge(oid(), label(), value())
	case 1: // remove an existing edge, if any
		o := oid()
		if es := g.Out(o); len(es) > 0 {
			e := es[r.n(len(es))]
			g.RemoveEdge(e.From, e.Label, e.To)
		}
	case 2: // mutate a value in place
		o := oid()
		if es := g.Out(o); len(es) > 0 {
			e := es[r.n(len(es))]
			g.RemoveEdge(e.From, e.Label, e.To)
			g.AddEdge(e.From, e.Label, value())
		}
	case 3: // membership churn
		if r.n(2) == 0 {
			g.AddToCollection("Papers", oid())
		} else {
			g.RemoveFromCollection("Papers", oid())
		}
	case 4: // delete the whole record
		o := oid()
		for _, e := range g.Out(o) {
			g.RemoveEdge(e.From, e.Label, e.To)
		}
		g.RemoveFromCollection("Papers", o)
		g.RemoveNode(o)
	}
}

func TestDeltaEditStormDifferential(t *testing.T) {
	queries := map[string]string{
		"join": `where Papers(x), x -> "title" -> ti
create PaperPage(x)
link PaperPage(x) -> "title" -> ti
collect Pages(PaperPage(x))`,
		"grouping": `where Papers(x), x -> "year" -> y
create YearPage(y)
link YearPage(y) -> "paper" -> x
{ where x -> "title" -> ti
  link YearPage(y) -> "entry" -> ti }`,
		"negation": `where Papers(x), not(x -> "topic" -> z)
create Untopical(x)
collect Plain(Untopical(x))`,
		"closure": `where Papers(x), x -> "cites"* -> y
create Reach(x)
link Reach(x) -> "r" -> y`,
		"arcvar": `where Papers(x), x -> l -> v
create Attr(x)
link Attr(x) -> l -> v`,
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				cur := baseGraph()
				e := newTestEngine(t, q, cur)
				r := newEditRand(seed)
				for i := 0; i < 40; i++ {
					applyAndCheck(t, e, cur, fmt.Sprintf("seed %d edit %d", seed, i),
						func(g *graph.Graph) { randomEdit(r, g) })
				}
			}
		})
	}
}

// TestDeltaPageDirtying asserts the engine reports the regenerated page
// names, and that untouched pages keep their bytes.
func TestDeltaPageDirtying(t *testing.T) {
	q := `where Papers(x), x -> "title" -> ti
create PaperPage(x)
link PaperPage(x) -> "title" -> ti,
     RootPage() -> "paper" -> PaperPage(x)`
	v := testVersion(q)
	v.Templates["paper"] = `<h2><SFMT title></h2>`
	v.ObjectTemplatePrefixes = map[string]string{"PaperPage(": "paper"}
	v.Templates["root"] = `<h1><SFMT title></h1><SFMT paper UL TEXT=title>`
	cur := baseGraph()
	e, err := NewEngine(v, struql.NewGraphSource(cur), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for n, p := range e.Output().Pages {
		before[n] = p
	}
	prev := cur.Copy()
	cur.RemoveEdge("p4", "title", graph.NewString("Paper 4"))
	cur.AddEdge("p4", "title", graph.NewString("Paper 4 v2"))
	pages, err := e.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no pages reported dirty")
	}
	dirty := map[string]bool{}
	for _, p := range pages {
		dirty[p] = true
	}
	changedOther := false
	for n, p := range e.Output().Pages {
		if dirty[n] {
			continue
		}
		if before[n] != p {
			changedOther = true
		}
	}
	if changedOther {
		t.Error("a page changed without being reported dirty")
	}
	// The edited paper's page must carry the new title.
	found := false
	for _, p := range pages {
		if e.Output().Pages[p] != "" && before[p] != e.Output().Pages[p] {
			found = true
		}
	}
	if !found {
		t.Error("no dirty page actually changed")
	}
}
