package ivm

import (
	"sort"
	"strconv"

	"strudel/internal/core"
	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// DefaultMaxDelta is the delta size past which propagation bails out:
// beyond a few hundred row-level events, a full rebuild is usually
// cheaper than seeding the evaluator once per event.
const DefaultMaxDelta = 256

// Engine maintains one built version incrementally at row granularity.
// Each top-level query block is kept as a partition of the site graph
// (spliced in by refcounted merge, as in core.Maintainer), and — where
// the block's operators admit sound deltas — the block's construction
// sites each keep their materialized where-relation, so a data delta
// becomes a handful of seeded evaluations instead of a block re-run:
//
//   - tier A (row level): insertions seed the evaluator with each added
//     tuple per matching condition; deletions ground-re-check only the
//     rows that mention a removed value (delete-and-rederive); negation
//     re-checks rows on inner additions and re-evaluates the site on
//     inner removals.
//   - tier B (block level): aggregation and multi-step path expressions
//     re-evaluate the whole block, still only when its dependency keys
//     intersect the delta.
//
// Any error mid-apply surfaces as a typed *Bailout; the engine's state
// must then be considered corrupt and the engine discarded — the Site
// wrapper rebuilds a fresh one from scratch (degrade-to-full).
type Engine struct {
	version *core.Version
	query   *struql.Query
	opts    *core.Options
	env     *struql.SkolemEnv
	blocks  []*blockState
	site    *graph.Graph

	// Refcounts over partition contributions, exactly as in
	// core.Maintainer: how many partitions assert each item.
	nodeRefs   map[graph.OID]int
	edgeRefs   map[graph.Edge]int
	memberRefs map[mediator.Membership]int

	gen *htmlgen.Generator
	out *htmlgen.Output

	// MaxDelta bounds the deltas propagated row by row; larger ones bail
	// out with ReasonDeltaTooLarge. Set before the first Apply.
	MaxDelta int
	// Obs receives row-level instrumentation; nil disables it.
	Obs *obs.IVMMetrics

	// evalHook, when non-nil, runs before each apply's evaluations and
	// fails the apply with its error — the test seam for ReasonEvalError.
	evalHook func() error
}

// blockState is one top-level block's maintained partition. sites is
// nil for tier B blocks.
type blockState struct {
	blk   *struql.Block
	deps  map[string]bool
	part  *graph.Graph
	sites []*siteState
}

// siteState is one construction site of a tier A block: a (possibly
// nested) block together with the conjunction of every enclosing where
// clause, and the materialized relation that conjunction denotes.
type siteState struct {
	construct *struql.Block // create/link/collect run per relation row
	conds     []struql.Cond // flattened: ancestor wheres ++ own where
	vars      []string      // canonical column order
	rows      map[string][]graph.Value
	// negDeps holds, per NotCond in conds, the dependency keys of the
	// negated conjunction (conservatively computed).
	negDeps []map[string]bool
	// allConstPath notes a PathCond with two constant endpoints: its
	// failure leaves no value trace in any row, so removals must
	// ground-re-check every row.
	allConstPath bool
}

// NewEngine builds the version once, materializing the per-block (and,
// for tier A blocks, per-site) state the incremental path maintains.
// Multi-query versions raise *Bailout(ReasonComposedQueries).
func NewEngine(v *core.Version, data struql.Source, opts *core.Options) (*Engine, error) {
	if len(v.Queries) != 1 {
		return nil, bail(ReasonComposedQueries, "version %s composes %d queries", v.Name, len(v.Queries))
	}
	q, err := struql.Parse(v.Queries[0])
	if err != nil {
		return nil, err
	}
	e := &Engine{
		version:    v,
		query:      q,
		opts:       opts,
		env:        struql.NewSkolemEnv(),
		site:       graph.New(),
		nodeRefs:   map[graph.OID]int{},
		edgeRefs:   map[graph.Edge]int{},
		memberRefs: map[mediator.Membership]int{},
		MaxDelta:   DefaultMaxDelta,
	}
	for _, blk := range q.Blocks {
		bs := &blockState{blk: blk, deps: dynamic.BlockDeps(blk)}
		if blockTierA(blk) {
			bs.sites = flattenSites(blk, nil)
			for _, st := range bs.sites {
				if err := e.evalSite(st, data); err != nil {
					return nil, err
				}
			}
			bs.part, err = e.constructBlock(bs)
		} else {
			bs.part, err = e.evalBlock(blk, data)
		}
		if err != nil {
			return nil, err
		}
		e.addPartition(bs.part)
		e.blocks = append(e.blocks, bs)
	}

	ts := template.NewSet()
	for name, src := range v.Templates {
		if err := ts.Add(name, src); err != nil {
			return nil, err
		}
	}
	e.gen = htmlgen.New(e.site, ts)
	if opts != nil {
		e.gen.Obs = opts.Gen
	}
	for coll, name := range v.PerCollection {
		e.gen.PerCollection[coll] = name
	}
	for oid, name := range v.PerObject {
		e.gen.PerObject[graph.OID(oid)] = name
	}
	for prefix, name := range v.ObjectTemplatePrefixes {
		e.gen.PerPrefix[prefix] = name
	}
	roots := make([]graph.OID, len(v.Roots))
	for i, r := range v.Roots {
		roots[i] = graph.OID(r)
	}
	e.out, err = e.gen.Generate(roots)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Site returns the live maintained site graph.
func (e *Engine) Site() *graph.Graph { return e.site }

// Output returns the live generated site.
func (e *Engine) Output() *htmlgen.Output { return e.out }

// Apply propagates one data delta: re-derive affected relations, splice
// the re-constructed partitions into the site graph, regenerate dirty
// pages. data must already reflect the delta. It returns the file names
// of the pages it regenerated or dropped. On a *Bailout (or any error)
// the engine is corrupt and must be discarded.
func (e *Engine) Apply(data struql.Source, delta *mediator.Delta) ([]string, error) {
	if delta == nil {
		return nil, bail(ReasonDeltaTooLarge, "nil delta: change of unknown extent")
	}
	if delta.Empty() {
		return nil, nil
	}
	if max := e.maxDelta(); delta.Size() > max {
		return nil, bail(ReasonDeltaTooLarge, "%d events > bound %d", delta.Size(), max)
	}
	if e.evalHook != nil {
		if err := e.evalHook(); err != nil {
			return nil, bail(ReasonEvalError, "%v", err)
		}
	}
	changedSet := map[graph.OID]bool{}
	for _, bs := range e.blocks {
		if !dynamic.AffectedBy(bs.deps, delta, data) {
			continue
		}
		var newPart *graph.Graph
		var err error
		if bs.sites != nil {
			if err = e.applyTierA(bs, data, delta); err != nil {
				return nil, err
			}
			newPart, err = e.constructBlock(bs)
		} else {
			if e.Obs != nil {
				e.Obs.BlocksReevaluated.Inc()
			}
			newPart, err = e.evalBlock(bs.blk, data)
		}
		if err != nil {
			return nil, err
		}
		old := bs.part
		bs.part = newPart
		// Add before remove so items present in both generations keep a
		// positive count and never churn through the site graph.
		for _, oid := range e.addPartition(newPart) {
			changedSet[oid] = true
		}
		removed, err := e.removePartition(old)
		if err != nil {
			return nil, err
		}
		for _, oid := range removed {
			changedSet[oid] = true
		}
	}
	if len(changedSet) == 0 {
		return nil, nil
	}
	changed := make([]graph.OID, 0, len(changedSet))
	for oid := range changedSet {
		changed = append(changed, oid)
	}
	pages, err := e.gen.Regenerate(e.out, changed)
	if err != nil {
		return nil, bail(ReasonEvalError, "regenerate: %v", err)
	}
	return pages, nil
}

func (e *Engine) maxDelta() int {
	if e.MaxDelta > 0 {
		return e.MaxDelta
	}
	return DefaultMaxDelta
}

func (e *Engine) evalOpts() *struql.Options { return e.opts.EvalOptions() }

// evalBlock evaluates one block wholesale (tier B) under the shared
// Skolem environment.
func (e *Engine) evalBlock(blk *struql.Block, data struql.Source) (*graph.Graph, error) {
	res, err := struql.EvalWithEnv(&struql.Query{Blocks: []*struql.Block{blk}}, data, e.env, e.evalOpts())
	if err != nil {
		return nil, bail(ReasonEvalError, "block re-eval: %v", err)
	}
	return res.Graph, nil
}

// evalSite materializes a site's relation from scratch.
func (e *Engine) evalSite(st *siteState, data struql.Source) error {
	st.rows = map[string][]graph.Value{}
	if len(st.conds) == 0 {
		// The unit relation: constructions with no where clause run once.
		st.rows[""] = []graph.Value{}
		return nil
	}
	b, err := struql.EvalWhere(st.conds, data, nil, e.evalOpts())
	if err != nil {
		return bail(ReasonEvalError, "site eval: %v", err)
	}
	return e.insertRows(st, b)
}

// insertRows projects an evaluated relation onto the site's canonical
// columns and inserts each fresh row.
func (e *Engine) insertRows(st *siteState, b *struql.Bindings) error {
	if len(b.Rows) == 0 {
		return nil
	}
	idx := make([]int, len(st.vars))
	for i, v := range st.vars {
		if idx[i] = b.Index(v); idx[i] < 0 {
			return bail(ReasonEvalError, "relation lost column %s", v)
		}
	}
	for _, r := range b.Rows {
		row := make([]graph.Value, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		k := rowKey(row)
		if _, dup := st.rows[k]; !dup {
			st.rows[k] = row
			if e.Obs != nil {
				e.Obs.RowsInserted.Inc()
			}
		}
	}
	return nil
}

// applyTierA pushes a delta through every construction site of a tier A
// block, updating the materialized relations in place.
func (e *Engine) applyTierA(bs *blockState, data struql.Source, delta *mediator.Delta) error {
	adds := &mediator.Delta{AddedEdges: delta.AddedEdges, AddedMembers: delta.AddedMembers}
	rems := &mediator.Delta{RemovedEdges: delta.RemovedEdges, RemovedMembers: delta.RemovedMembers}
	for _, st := range bs.sites {
		if len(st.conds) == 0 {
			continue // the unit relation never changes
		}
		recheckAll := false
		negHit := false
		for _, nd := range st.negDeps {
			// Removals inside a negation can give birth to rows the
			// positive conditions alone cannot derive: re-evaluate.
			if dynamic.AffectedBy(nd, rems, data) {
				negHit = true
				break
			}
			// Additions inside a negation can only kill rows: every
			// existing row must be ground-re-checked.
			if dynamic.AffectedBy(nd, adds, data) {
				recheckAll = true
			}
		}
		// An added edge satisfying an all-constant path condition can
		// give birth to arbitrary rows — the tuple pins no variable, so
		// there is nothing to seed with. Re-evaluate the site.
		if st.allConstPath && len(delta.AddedEdges) > 0 {
			negHit = true
		}
		if negHit {
			if e.Obs != nil {
				e.Obs.SitesReevaluated.Inc()
			}
			if err := e.evalSite(st, data); err != nil {
				return err
			}
			continue
		}
		// Insertions: seed the evaluator with each added tuple per
		// positive condition it can satisfy.
		for _, seed := range e.seedsFor(st, delta) {
			b, err := struql.EvalWhere(st.conds, data, seed, e.evalOpts())
			if err != nil {
				return bail(ReasonEvalError, "seeded eval: %v", err)
			}
			if err := e.insertRows(st, b); err != nil {
				return err
			}
		}
		// Deletions (delete-and-rederive): ground-re-check the rows that
		// mention a removed value; a row whose seeded evaluation comes
		// back empty has lost its last derivation.
		candidates := e.removalCandidates(st, delta, recheckAll)
		for _, k := range candidates {
			row := st.rows[k]
			seed := &struql.Bindings{Vars: st.vars, Rows: [][]graph.Value{row}}
			b, err := struql.EvalWhere(st.conds, data, seed, e.evalOpts())
			if err != nil {
				return bail(ReasonEvalError, "ground re-check: %v", err)
			}
			if len(b.Rows) == 0 {
				delete(st.rows, k)
				if e.Obs != nil {
					e.Obs.RowsRemoved.Inc()
				}
			}
		}
	}
	return nil
}

// seedsFor builds one seed relation per (added tuple, matching positive
// condition) pair. A seed pins the condition's variables to the tuple's
// values; the evaluator derives every row the addition gives birth to.
func (e *Engine) seedsFor(st *siteState, delta *mediator.Delta) []*struql.Bindings {
	var seeds []*struql.Bindings
	add := func(vars []string, vals []graph.Value) {
		if len(vars) == 0 {
			return // an all-constant match adds no binding information
		}
		seeds = append(seeds, &struql.Bindings{Vars: vars, Rows: [][]graph.Value{vals}})
	}
	for _, edge := range delta.AddedEdges {
		from := graph.NewNode(edge.From)
		label := graph.NewString(edge.Label)
		for _, c := range st.conds {
			switch c := c.(type) {
			case *struql.EdgeCond:
				var vars []string
				var vals []graph.Value
				if c.From.IsVar() {
					vars, vals = append(vars, c.From.Var), append(vals, from)
				} else if c.From.Const.Key() != from.Key() {
					continue
				}
				vars, vals = append(vars, c.LabelVar), append(vals, label)
				if c.To.IsVar() {
					vars, vals = append(vars, c.To.Var), append(vals, edge.To)
				} else if c.To.Const.Key() != edge.To.Key() {
					continue
				}
				add(vars, vals)
			case *struql.PathCond:
				if !singleStepMatches(c.Path, edge.Label) {
					continue
				}
				var vars []string
				var vals []graph.Value
				if c.From.IsVar() {
					vars, vals = append(vars, c.From.Var), append(vals, from)
				} else if c.From.Const.Key() != from.Key() {
					continue
				}
				if c.To.IsVar() {
					vars, vals = append(vars, c.To.Var), append(vals, edge.To)
				} else if c.To.Const.Key() != edge.To.Key() {
					continue
				}
				add(vars, vals)
			}
		}
	}
	for _, m := range delta.AddedMembers {
		for _, c := range st.conds {
			if mc, ok := c.(*struql.MemberCond); ok && mc.Coll == m.Coll {
				add([]string{mc.Var}, []graph.Value{graph.NewNode(m.OID)})
			}
		}
	}
	return seeds
}

// removalCandidates returns the keys of rows that may have lost a
// derivation: rows mentioning any value of a removed tuple, or — when
// recheckAll or an all-constant path condition forces it — every row.
// The candidate set is a superset of the rows that actually die; the
// ground re-check decides. Keys are returned in sorted order so the
// re-check sequence is deterministic.
func (e *Engine) removalCandidates(st *siteState, delta *mediator.Delta, recheckAll bool) []string {
	if len(delta.RemovedEdges) == 0 && len(delta.RemovedMembers) == 0 && !recheckAll {
		return nil
	}
	all := recheckAll || (st.allConstPath && len(delta.RemovedEdges) > 0)
	anchors := map[string]bool{}
	if !all {
		for _, edge := range delta.RemovedEdges {
			anchors[graph.NewNode(edge.From).Key()] = true
			anchors[graph.NewString(edge.Label).Key()] = true
			anchors[edge.To.Key()] = true
		}
		for _, m := range delta.RemovedMembers {
			anchors[graph.NewNode(m.OID).Key()] = true
		}
	}
	var keys []string
	for k, row := range st.rows {
		if !all {
			hit := false
			for _, v := range row {
				if anchors[v.Key()] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// constructBlock re-runs every construction site's create/link/collect
// clauses over its materialized relation, in definition order, yielding
// the block's partition of the site graph.
func (e *Engine) constructBlock(bs *blockState) (*graph.Graph, error) {
	part := graph.New()
	for _, st := range bs.sites {
		if len(st.construct.Create) == 0 && len(st.construct.Link) == 0 && len(st.construct.Collect) == 0 {
			continue
		}
		keys := make([]string, 0, len(st.rows))
		for k := range st.rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := &struql.Bindings{Vars: st.vars, Rows: make([][]graph.Value, 0, len(keys))}
		for _, k := range keys {
			b.Rows = append(b.Rows, st.rows[k])
		}
		g, err := struql.ConstructOnly(st.construct, b, e.env)
		if err != nil {
			return nil, bail(ReasonEvalError, "construct: %v", err)
		}
		part.Merge(g)
	}
	return part, nil
}

// addPartition and removePartition splice a partition in or out of the
// live site graph by refcount, mirroring core.Maintainer. removePartition
// additionally detects underflow: a count going negative means the
// maintained state diverged and can only be repaired by a full rebuild.
func (e *Engine) addPartition(part *graph.Graph) (changed []graph.OID) {
	for _, oid := range part.Nodes() {
		if e.nodeRefs[oid]++; e.nodeRefs[oid] == 1 {
			e.site.AddNode(oid)
			changed = append(changed, oid)
		}
	}
	part.Edges(func(edge graph.Edge) bool {
		if e.edgeRefs[edge]++; e.edgeRefs[edge] == 1 {
			e.site.AddEdge(edge.From, edge.Label, edge.To)
			changed = append(changed, edge.From)
		}
		return true
	})
	for _, coll := range part.CollectionNames() {
		e.site.DeclareCollection(coll)
		for _, oid := range part.Collection(coll) {
			mem := mediator.Membership{Coll: coll, OID: oid}
			if e.memberRefs[mem]++; e.memberRefs[mem] == 1 {
				e.site.AddToCollection(coll, oid)
				changed = append(changed, oid)
			}
		}
	}
	return changed
}

func (e *Engine) removePartition(part *graph.Graph) (changed []graph.OID, err error) {
	underflow := func(what string) error {
		return bail(ReasonSupportUnderflow, "%s refcount went negative", what)
	}
	var bad error
	part.Edges(func(edge graph.Edge) bool {
		switch e.edgeRefs[edge]--; {
		case e.edgeRefs[edge] == 0:
			delete(e.edgeRefs, edge)
			e.site.RemoveEdge(edge.From, edge.Label, edge.To)
			changed = append(changed, edge.From)
		case e.edgeRefs[edge] < 0:
			bad = underflow("edge")
			return false
		}
		return true
	})
	if bad != nil {
		return nil, bad
	}
	for _, coll := range part.CollectionNames() {
		for _, oid := range part.Collection(coll) {
			mem := mediator.Membership{Coll: coll, OID: oid}
			switch e.memberRefs[mem]--; {
			case e.memberRefs[mem] == 0:
				delete(e.memberRefs, mem)
				e.site.RemoveFromCollection(coll, oid)
				changed = append(changed, oid)
			case e.memberRefs[mem] < 0:
				return nil, underflow("membership")
			}
		}
	}
	for _, oid := range part.Nodes() {
		switch e.nodeRefs[oid]--; {
		case e.nodeRefs[oid] == 0:
			delete(e.nodeRefs, oid)
			e.site.RemoveNode(oid)
			changed = append(changed, oid)
		case e.nodeRefs[oid] < 0:
			return nil, underflow("node")
		}
	}
	return changed, nil
}

// blockTierA reports whether a block (with its nested blocks) admits
// row-level delta propagation: no aggregation, every path condition a
// single step, and negation at most one level deep.
func blockTierA(blk *struql.Block) bool {
	if len(blk.Aggregate) > 0 || len(blk.AggBy) > 0 {
		return false
	}
	for _, c := range blk.Where {
		if !condTierA(c, true) {
			return false
		}
	}
	for _, n := range blk.Nested {
		if !blockTierA(n) {
			return false
		}
	}
	return true
}

func condTierA(c struql.Cond, allowNot bool) bool {
	switch c := c.(type) {
	case *struql.MemberCond, *struql.PredCond, *struql.CmpCond, *struql.EdgeCond:
		return true
	case *struql.PathCond:
		return singleStep(c.Path)
	case *struql.NotCond:
		if !allowNot {
			return false
		}
		for _, k := range c.Conds {
			if !condTierA(k, false) {
				return false
			}
		}
		return true
	}
	return false
}

// singleStep reports whether a path expression matches exactly one edge
// with a per-label predicate — the shape whose delta seeds are obvious.
// Anything with closure or sequencing (x -> "a"."b"* -> y) goes tier B.
func singleStep(p *struql.PathExpr) bool {
	switch p.Op {
	case struql.PLabel, struql.PAny, struql.PRegex:
		return true
	}
	return false
}

func singleStepMatches(p *struql.PathExpr, label string) bool {
	switch p.Op {
	case struql.PLabel:
		return p.Label == label
	case struql.PAny:
		return true
	case struql.PRegex:
		return p.Re == nil || p.Re.MatchString(label)
	}
	return false
}

// flattenSites linearizes a block tree into construction sites: one per
// block, each carrying the conjunction of every enclosing where clause,
// in definition (DFS) order — the order the full evaluator constructs
// in, which keeps Skolem display-name issuance aligned with it.
func flattenSites(blk *struql.Block, prefix []struql.Cond) []*siteState {
	conds := make([]struql.Cond, 0, len(prefix)+len(blk.Where))
	conds = append(conds, prefix...)
	conds = append(conds, blk.Where...)
	st := &siteState{construct: blk, conds: conds, vars: canonicalVars(conds)}
	for _, c := range conds {
		if nc, ok := c.(*struql.NotCond); ok {
			st.negDeps = append(st.negDeps, dynamic.BlockDeps(&struql.Block{Where: nc.Conds}))
		}
		if pc, ok := c.(*struql.PathCond); ok && !pc.From.IsVar() && !pc.To.IsVar() {
			st.allConstPath = true
		}
	}
	var sites []*siteState
	if len(blk.Create) > 0 || len(blk.Link) > 0 || len(blk.Collect) > 0 {
		// A block with no construction clauses contributes nothing to
		// the partition; its where clause still scopes nested blocks
		// (via the conds prefix), so only the site itself is dropped.
		sites = append(sites, st)
	}
	for _, n := range blk.Nested {
		sites = append(sites, flattenSites(n, conds)...)
	}
	return sites
}

// canonicalVars fixes a site's column order: every positively bindable
// variable, in textual condition order, first occurrence wins. The
// evaluator's own column order varies with the plan; projection onto
// this order makes row keys stable across seeded and full evaluations.
func canonicalVars(conds []struql.Cond) []string {
	var vars []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for _, c := range conds {
		switch c := c.(type) {
		case *struql.MemberCond:
			add(c.Var)
		case *struql.EdgeCond:
			if c.From.IsVar() {
				add(c.From.Var)
			}
			add(c.LabelVar)
			if c.To.IsVar() {
				add(c.To.Var)
			}
		case *struql.PathCond:
			if c.From.IsVar() {
				add(c.From.Var)
			}
			if c.To.IsVar() {
				add(c.To.Var)
			}
		}
	}
	return vars
}

// rowKey serializes a row into a map key: length-prefixed value keys,
// unambiguous for any content.
func rowKey(row []graph.Value) string {
	var b []byte
	for _, v := range row {
		k := v.Key()
		b = strconv.AppendInt(b, int64(len(k)), 10)
		b = append(b, ':')
		b = append(b, k...)
	}
	return string(b)
}
