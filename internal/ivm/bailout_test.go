package ivm

import (
	"errors"
	"fmt"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/struql"
)

// Every bailout reason has a triggering test here, each asserting the
// same three things: the typed reason is counted in obs, the apply
// degrades to a full rebuild (FullRebuilds moves), and the degraded
// output is byte-identical to a from-scratch build of the new data.

func requireOraclePages(t *testing.T, s *Site, v *core.Version, data *graph.Graph, context string) {
	t.Helper()
	vr, err := core.BuildVersionWith(v, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatalf("%s: oracle build: %v", context, err)
	}
	if len(vr.Output.Pages) != len(s.Output().Pages) {
		t.Fatalf("%s: page count %d, oracle %d", context, len(s.Output().Pages), len(vr.Output.Pages))
	}
	for name, want := range vr.Output.Pages {
		if got := s.Output().Pages[name]; got != want {
			t.Fatalf("%s: page %s diverged:\n--- degraded\n%s\n--- oracle\n%s", context, name, got, want)
		}
	}
}

func bailoutFixture(t *testing.T, m *obs.IVMMetrics) (*Site, *core.Version, *graph.Graph) {
	t.Helper()
	v := testVersion(`where Papers(x), x -> "title" -> ti
create PaperPage(x)
link PaperPage(x) -> "title" -> ti`)
	cur := baseGraph()
	s, err := NewSite(v, struql.NewGraphSource(cur), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return s, v, cur
}

func editTitles(g *graph.Graph, n int) {
	for i := 0; i < n; i++ {
		g.AddEdge(graph.OID(fmt.Sprintf("p%d", i)), "title", graph.NewString(fmt.Sprintf("alt %d", i)))
	}
}

func TestBailoutComposedQueries(t *testing.T) {
	m := &obs.IVMMetrics{}
	v := testVersion(`where Papers(x) collect Found(x)`)
	// Split into two composed queries: the second reads nothing from the
	// first, but composition alone forecloses delta propagation.
	v.Queries = []string{v.Queries[0], `where Papers(x) collect Again(x)`}
	cur := baseGraph()
	s, err := NewSite(v, struql.NewGraphSource(cur), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != nil {
		t.Fatal("composed-query version must have no row-level engine")
	}
	prev := cur.Copy()
	cur.AddToCollection("Papers", "pnew")
	cur.AddEdge("pnew", "title", graph.NewString("New"))
	if err := s.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
		t.Fatal(err)
	}
	if got := m.Bailouts[obs.BailoutComposedQueries].Load(); got != 1 {
		t.Errorf("composed_queries bailouts = %d, want 1", got)
	}
	if got := m.FullRebuilds.Load(); got != 1 {
		t.Errorf("full rebuilds = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "composed queries")
}

func TestBailoutDeltaTooLarge(t *testing.T) {
	m := &obs.IVMMetrics{}
	s, v, cur := bailoutFixture(t, m)
	s.Engine().MaxDelta = 1
	prev := cur.Copy()
	editTitles(cur, 3) // 3 events > bound 1
	if err := s.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
		t.Fatal(err)
	}
	if got := m.Bailouts[obs.BailoutDeltaTooLarge].Load(); got != 1 {
		t.Errorf("delta_too_large bailouts = %d, want 1", got)
	}
	if got := m.FullRebuilds.Load(); got != 1 {
		t.Errorf("full rebuilds = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "delta too large")
	// The rebuilt engine (default bound) takes the next delta row-level.
	prev = cur.Copy()
	cur.AddEdge("p0", "title", graph.NewString("one more"))
	if err := s.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
		t.Fatal(err)
	}
	if got := m.DeltasApplied.Load(); got != 1 {
		t.Errorf("deltas applied after rebuild = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "after recovery")
}

func TestBailoutNilDelta(t *testing.T) {
	// A nil delta — change of unknown extent — must rebuild, via the
	// same too-large reason, not crash or no-op.
	m := &obs.IVMMetrics{}
	s, v, cur := bailoutFixture(t, m)
	cur.AddEdge("p0", "title", graph.NewString("unseen"))
	if err := s.Apply(struql.NewGraphSource(cur), nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Bailouts[obs.BailoutDeltaTooLarge].Load(); got != 1 {
		t.Errorf("delta_too_large bailouts = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "nil delta")
}

func TestBailoutEvalError(t *testing.T) {
	m := &obs.IVMMetrics{}
	s, v, cur := bailoutFixture(t, m)
	s.Engine().evalHook = func() error { return errors.New("injected evaluation failure") }
	prev := cur.Copy()
	editTitles(cur, 1)
	if err := s.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
		t.Fatal(err)
	}
	if got := m.Bailouts[obs.BailoutEvalError].Load(); got != 1 {
		t.Errorf("eval_error bailouts = %d, want 1", got)
	}
	if got := m.FullRebuilds.Load(); got != 1 {
		t.Errorf("full rebuilds = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "eval error")
}

func TestBailoutSupportUnderflow(t *testing.T) {
	m := &obs.IVMMetrics{}
	s, v, cur := bailoutFixture(t, m)
	// Corrupt the maintained refcounts: zero every edge count, so the
	// partition swap's removals drive one negative.
	for k := range s.Engine().edgeRefs {
		s.Engine().edgeRefs[k] = 0
	}
	prev := cur.Copy()
	cur.RemoveEdge("p0", "title", graph.NewString("Paper 0"))
	if err := s.Apply(struql.NewGraphSource(cur), mediator.Diff(prev, cur)); err != nil {
		t.Fatal(err)
	}
	if got := m.Bailouts[obs.BailoutSupportUnderflow].Load(); got != 1 {
		t.Errorf("support_underflow bailouts = %d, want 1", got)
	}
	if got := m.FullRebuilds.Load(); got != 1 {
		t.Errorf("full rebuilds = %d, want 1", got)
	}
	requireOraclePages(t, s, v, cur, "support underflow")
}

func TestBailoutReasonNames(t *testing.T) {
	want := map[Reason]string{
		ReasonComposedQueries:  "composed_queries",
		ReasonDeltaTooLarge:    "delta_too_large",
		ReasonEvalError:        "eval_error",
		ReasonSupportUnderflow: "support_underflow",
	}
	for r, name := range want {
		if r.String() != name {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), name)
		}
	}
	b := bail(ReasonEvalError, "ctx %d", 7)
	if b.Error() != "ivm: bailout: eval_error: ctx 7" {
		t.Errorf("Bailout.Error() = %q", b.Error())
	}
}
