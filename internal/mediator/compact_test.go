package mediator

import (
	"fmt"
	"testing"

	"strudel/internal/graph"
)

func TestDeltaCompactCancelsOpposingPairs(t *testing.T) {
	e := graph.Edge{From: "a", Label: "l", To: graph.NewString("v")}
	m := Membership{Coll: "C", OID: "a"}
	d := &Delta{
		AddedEdges:     []graph.Edge{e, e}, // repeats dedupe
		RemovedEdges:   []graph.Edge{e},    // one add survives: net +1
		AddedMembers:   []Membership{m},
		RemovedMembers: []Membership{m}, // net zero: drops entirely
	}
	d.Compact()
	if len(d.AddedEdges) != 1 || len(d.RemovedEdges) != 0 {
		t.Errorf("edges after compact: +%d -%d, want +1 -0", len(d.AddedEdges), len(d.RemovedEdges))
	}
	if len(d.AddedMembers) != 0 || len(d.RemovedMembers) != 0 {
		t.Errorf("members after compact: +%d -%d, want none", len(d.AddedMembers), len(d.RemovedMembers))
	}
}

func TestDeltaCompactNetRemoval(t *testing.T) {
	e := graph.Edge{From: "a", Label: "l", To: graph.NewInt(1)}
	// Present initially, then add/remove/remove composed: net removed.
	d := &Delta{RemovedEdges: []graph.Edge{e}}
	d.Merge(&Delta{AddedEdges: []graph.Edge{e}})
	d.Merge(&Delta{RemovedEdges: []graph.Edge{e}})
	d.Compact()
	if len(d.AddedEdges) != 0 || len(d.RemovedEdges) != 1 {
		t.Errorf("net effect: +%d -%d, want +0 -1", len(d.AddedEdges), len(d.RemovedEdges))
	}
}

// TestDeltaMergeBoundedUnderAdversarialEditLoop drives the exact
// pathology the bound exists for: a source oscillating between two
// states for thousands of rounds while the consumer (a reloader in a
// long outage) can only accumulate. Unbounded concatenation would grow
// to ~40k records; the compacting Merge must keep the delta within a
// constant factor of the distinct-element count.
func TestDeltaMergeBoundedUnderAdversarialEditLoop(t *testing.T) {
	accum := &Delta{}
	flip := func(i int) *Delta {
		e := graph.Edge{From: graph.OID(fmt.Sprintf("n%d", i%7)), Label: "v",
			To: graph.NewInt(int64(i % 2))}
		m := Membership{Coll: "C", OID: e.From}
		if i%2 == 0 {
			return &Delta{AddedEdges: []graph.Edge{e}, AddedMembers: []Membership{m}}
		}
		return &Delta{RemovedEdges: []graph.Edge{e}, RemovedMembers: []Membership{m}}
	}
	peak := 0
	for i := 0; i < 10000; i++ {
		accum.Merge(flip(i))
		if s := accum.Size(); s > peak {
			peak = s
		}
	}
	if peak > mergeCompactLimit+4 {
		t.Errorf("pending delta peaked at %d records, bound is ~%d", peak, mergeCompactLimit)
	}
	accum.Compact()
	// 7 distinct froms × 2 values interleave; after full cancellation at
	// most one record per distinct element can survive.
	if accum.Size() > 7*3 {
		t.Errorf("net delta has %d records for 21 distinct elements", accum.Size())
	}
}

// TestDeltaCompactEquivalentToDiff asserts compaction of a composed
// event stream equals the direct diff of the endpoint graphs — the
// soundness property the incremental consumers rely on.
func TestDeltaCompactEquivalentToDiff(t *testing.T) {
	start := graph.New()
	start.AddToCollection("C", "a")
	start.AddEdge("a", "x", graph.NewInt(1))

	// Walk the graph through several states, composing per-step diffs.
	cur := start.Copy()
	composed := &Delta{}
	step := func(edit func(*graph.Graph)) {
		prev := cur.Copy()
		edit(cur)
		composed.Merge(Diff(prev, cur))
	}
	step(func(g *graph.Graph) { g.AddEdge("a", "x", graph.NewInt(2)) })
	step(func(g *graph.Graph) { g.RemoveEdge("a", "x", graph.NewInt(1)) })
	step(func(g *graph.Graph) { g.AddEdge("a", "x", graph.NewInt(1)) })
	step(func(g *graph.Graph) { g.RemoveEdge("a", "x", graph.NewInt(1)) })
	step(func(g *graph.Graph) { g.RemoveFromCollection("C", "a") })
	step(func(g *graph.Graph) { g.AddToCollection("C", "b") })

	composed.Compact()
	direct := Diff(start, cur)
	if fmt.Sprint(composed) != fmt.Sprint(direct) {
		t.Errorf("compacted composition:\n%v\ndirect diff:\n%v", composed, direct)
	}
}
