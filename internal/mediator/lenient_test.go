package mediator

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"strudel/internal/diag"
	"strudel/internal/graph"
	"strudel/internal/wrapper/csvrel"
)

func csvSource(name, src string, opts csvrel.Options) Source {
	return Source{
		Name: name,
		Load: func() (*graph.Graph, error) { return csvrel.Load(src, opts) },
		LoadLenient: func() (*graph.Graph, *diag.Report, error) {
			return csvrel.LoadLenient(src, name, opts)
		},
	}
}

// TestWarehouseLenientWithinBudget: dirty rows are skipped, reported,
// and the surviving data still warehouses.
func TestWarehouseLenientWithinBudget(t *testing.T) {
	m, err := New(
		csvSource("emp.csv", "id,name\n1,Alice\n2,Bob,extra\n3,Carol\n", csvrel.Options{Table: "emp", KeyColumn: "id"}),
		csvSource("org.csv", "id,head\nR11,1\n", csvrel.Options{Table: "org", KeyColumn: "id"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ix, reports, err := m.WarehouseLenient(diag.Budget{Max: 1})
	if err != nil {
		t.Fatalf("WarehouseLenient: %v", err)
	}
	if got := len(ix.Graph().Collection("emp")); got != 2 {
		t.Errorf("emp rows = %d, want 2 (the clean ones)", got)
	}
	if got := len(ix.Graph().Collection("org")); got != 1 {
		t.Errorf("org rows = %d, want 1", got)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %v, want one per source", reports)
	}
	if r := reports[0]; r.Name != "emp.csv" || r.Report.Skipped != 1 || r.Report.Records != 3 {
		t.Errorf("emp report = %+v", r)
	}
	if r := reports[1]; r.Name != "org.csv" || r.Report.Skipped != 0 {
		t.Errorf("org report = %+v", r)
	}
}

// TestWarehouseLenientBudgetExceeded: a source over budget fails the
// build with a typed error, and the reports still cover every source so
// one run surfaces all diagnostics.
func TestWarehouseLenientBudgetExceeded(t *testing.T) {
	m, err := New(
		csvSource("emp.csv", "id,name\n1,Alice\n2,Bob,extra\n3,Carol,extra\n", csvrel.Options{Table: "emp", KeyColumn: "id"}),
		csvSource("org.csv", "id,head\nR11,1,x\n", csvrel.Options{Table: "org", KeyColumn: "id"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, reports, err := m.WarehouseLenient(diag.Budget{Max: 1})
	if err == nil {
		t.Fatal("want budget error")
	}
	var be *diag.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *diag.BudgetError", err, err)
	}
	if be.Source != "emp.csv" || be.Skipped != 2 {
		t.Errorf("budget error = %+v, want emp.csv with 2 skips", be)
	}
	if len(reports) != 2 || reports[1].Report.Skipped != 1 {
		t.Errorf("reports = %+v, want both sources reported despite the failure", reports)
	}
}

// TestWarehouseLenientZeroBudgetIsStrict: with a zero budget any skip
// fails the build, restoring fail-fast semantics source by source.
func TestWarehouseLenientZeroBudgetIsStrict(t *testing.T) {
	m, _ := New(csvSource("emp.csv", "id,name\n1,Alice\n2,Bob,extra\n", csvrel.Options{Table: "emp", KeyColumn: "id"}))
	_, _, err := m.WarehouseLenient(diag.Budget{})
	var be *diag.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *diag.BudgetError", err)
	}
}

// TestWarehouseLenientWholeSourceFallback: a source without a lenient
// loader that fails outright degrades to one skipped record — within a
// generous budget the build survives it; the diagnostic names the
// source.
func TestWarehouseLenientWholeSourceFallback(t *testing.T) {
	m, _ := New(
		Source{Name: "flaky", Load: func() (*graph.Graph, error) { return nil, fmt.Errorf("disk on fire") }},
		csvSource("emp.csv", "id,name\n1,Alice\n", csvrel.Options{Table: "emp", KeyColumn: "id"}),
	)
	ix, reports, err := m.WarehouseLenient(diag.Unlimited)
	if err != nil {
		t.Fatalf("WarehouseLenient: %v", err)
	}
	if got := len(ix.Graph().Collection("emp")); got != 1 {
		t.Errorf("emp rows = %d, want 1", got)
	}
	r := reports[0]
	if r.Report.Skipped != 1 || r.Report.Records != 1 {
		t.Errorf("flaky report = %+v, want 1/1", r.Report)
	}
	if d := r.Report.Diags[0]; d.Source != "flaky" || !strings.Contains(d.Message, "disk on fire") {
		t.Errorf("diag = %q", d.String())
	}
	// With a zero budget the same failure is fatal.
	m2, _ := New(Source{Name: "flaky", Load: func() (*graph.Graph, error) { return nil, fmt.Errorf("no") }})
	if _, _, err := m2.WarehouseLenient(diag.Budget{}); err == nil {
		t.Error("zero budget should make a failing source fatal")
	}
}
