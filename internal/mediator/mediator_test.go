package mediator

import (
	"errors"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// mutableSource simulates an external source whose data changes between
// refreshes.
type mutableSource struct {
	g *graph.Graph
}

func (m *mutableSource) load() (*graph.Graph, error) { return m.g.Copy(), nil }

func peopleGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("People", "People/mff")
	g.AddEdge("People/mff", "name", graph.NewString("Mary"))
	g.AddEdge("People/mff", "internalPhone", graph.NewString("x1234"))
	return g
}

func pubsGraph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Publications", "pub1")
	g.AddEdge("pub1", "title", graph.NewString("Strudel"))
	g.AddEdge("pub1", "owner", graph.NewString("mff"))
	return g
}

func TestWarehouseMergesSources(t *testing.T) {
	people := &mutableSource{g: peopleGraph()}
	pubs := &mutableSource{g: pubsGraph()}
	m, err := New(
		Source{Name: "people", Load: people.load},
		Source{Name: "pubs", Load: pubs.load},
	)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := m.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	g := ix.Graph()
	if !g.InCollection("People", "People/mff") || !g.InCollection("Publications", "pub1") {
		t.Error("warehouse missing collections")
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d, want 4", g.NumEdges())
	}
	names := m.SourceNames()
	if len(names) != 2 || names[0] != "people" {
		t.Errorf("SourceNames = %v", names)
	}
}

func TestGAVMappingQueryShapesContribution(t *testing.T) {
	// The mapping query renames and filters: only the name attribute is
	// exported to the mediated schema, as Person objects.
	people := &mutableSource{g: peopleGraph()}
	mapping := struql.MustParse(`
where People(p), p -> "name" -> n
create Person(p)
link Person(p) -> "name" -> n
collect MediatedPeople(Person(p))
`)
	m, err := New(Source{Name: "people", Load: people.load, Mapping: mapping})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := m.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	g := ix.Graph()
	if g.CollectionSize("MediatedPeople") != 1 {
		t.Fatalf("mediated collection missing:\n%s", g.Dump())
	}
	p := g.Collection("MediatedPeople")[0]
	if g.First(p, "name").Text() != "Mary" {
		t.Error("mapped attribute missing")
	}
	// The internal phone is not exported by the mapping.
	if !g.First(p, "internalPhone").IsNull() {
		t.Error("mapping should filter internalPhone")
	}
}

func TestRefreshReturnsDelta(t *testing.T) {
	src := &mutableSource{g: pubsGraph()}
	m, _ := New(Source{Name: "pubs", Load: src.load})
	if _, err := m.Warehouse(); err != nil {
		t.Fatal(err)
	}
	// No change → empty delta.
	d, err := m.Refresh("pubs")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("expected empty delta, got %+v", d)
	}
	// Add an article and drop an attribute.
	src.g.AddToCollection("Publications", "pub2")
	src.g.AddEdge("pub2", "title", graph.NewString("Boat"))
	d, err = m.Refresh("pubs")
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() || len(d.AddedEdges) != 1 || len(d.AddedMembers) != 1 {
		t.Errorf("delta = %+v", d)
	}
	if d.AddedMembers[0].OID != "pub2" {
		t.Errorf("added member = %v", d.AddedMembers[0])
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	// The warehouse view reflects the refresh.
	if !m.DataGraph().HasNode("pub2") {
		t.Error("DataGraph missing pub2 after refresh")
	}
}

func TestDiffRemovals(t *testing.T) {
	old := pubsGraph()
	new := pubsGraph()
	newer := graph.New()
	newer.Merge(new)
	// Remove by rebuilding without the owner edge.
	rebuilt := graph.New()
	rebuilt.AddToCollection("Publications", "pub1")
	rebuilt.AddEdge("pub1", "title", graph.NewString("Strudel"))
	d := Diff(old, rebuilt)
	if len(d.RemovedEdges) != 1 || d.RemovedEdges[0].Label != "owner" {
		t.Errorf("removed = %v", d.RemovedEdges)
	}
	if len(d.AddedEdges) != 0 {
		t.Errorf("added = %v", d.AddedEdges)
	}
	_ = newer
}

func TestRefreshUnknownSource(t *testing.T) {
	m, _ := New(Source{Name: "a", Load: func() (*graph.Graph, error) { return graph.New(), nil }})
	if _, err := m.Refresh("nope"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := New(Source{Name: "", Load: nil}); err == nil {
		t.Error("empty source should fail")
	}
	load := func() (*graph.Graph, error) { return graph.New(), nil }
	if _, err := New(Source{Name: "a", Load: load}, Source{Name: "a", Load: load}); err == nil {
		t.Error("duplicate names should fail")
	}
}

func TestLoadErrorPropagates(t *testing.T) {
	boom := errors.New("connection refused")
	m, _ := New(Source{Name: "flaky", Load: func() (*graph.Graph, error) { return nil, boom }})
	_, err := m.Warehouse()
	if err == nil || !strings.Contains(err.Error(), "flaky") || !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestMappingErrorPropagates(t *testing.T) {
	// A mapping that evaluates with an error: collect of an atom.
	mapping := struql.MustParse(`where People(p), p -> "name" -> n create X(p) collect Names(n)`)
	src := &mutableSource{g: peopleGraph()}
	m, _ := New(Source{Name: "people", Load: src.load, Mapping: mapping})
	if _, err := m.Warehouse(); err == nil || !strings.Contains(err.Error(), "mapping") {
		t.Errorf("err = %v", err)
	}
}

func TestOverlappingSourcesUnifyByOID(t *testing.T) {
	// Two sources contribute attributes of the same object; the mediated
	// graph unifies them (the GAV composition the AT&T site used to join
	// personnel and organizational data).
	a := &mutableSource{g: func() *graph.Graph {
		g := graph.New()
		g.AddToCollection("People", "People/mff")
		g.AddEdge("People/mff", "name", graph.NewString("Mary"))
		return g
	}()}
	b := &mutableSource{g: func() *graph.Graph {
		g := graph.New()
		g.AddEdge("People/mff", "project", graph.NewString("Strudel"))
		return g
	}()}
	m, _ := New(Source{Name: "a", Load: a.load}, Source{Name: "b", Load: b.load})
	ix, err := m.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	g := ix.Graph()
	if g.First("People/mff", "name").IsNull() || g.First("People/mff", "project").IsNull() {
		t.Errorf("attributes not unified:\n%s", g.Dump())
	}
}
