// Package mediator implements Strudel's data-integration component
// (§2.1): it provides a uniform view of all underlying data, irrespective
// of where it is stored, by warehousing wrapped sources into one data
// graph in the repository.
//
// The relationship between the mediated schema and each source follows
// the global-as-view (GAV) approach the paper chose: each source carries
// an optional mapping query — a StruQL query over the source's graph —
// whose result contributes to the mediated data graph; sources without a
// mapping contribute their graph directly. Warehousing (rather than
// on-demand access) matches the prototype's choice for small, slowly
// changing source sets.
//
// Refresh re-runs one source's wrapper, recomputes its contribution, and
// reports the delta, which drives incremental site re-evaluation
// (package dynamic, experiment E8).
package mediator

import (
	"fmt"
	"sort"
	"time"

	"strudel/internal/diag"
	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/repo"
	"strudel/internal/struql"
)

// Source is one external data source behind a wrapper.
type Source struct {
	// Name identifies the source in the mediator.
	Name string
	// Load invokes the wrapper and returns the source's graph.
	Load func() (*graph.Graph, error)
	// LoadLenient, when non-nil, invokes the wrapper in fail-soft mode:
	// malformed records are skipped and reported instead of aborting the
	// load. WarehouseLenient prefers it over Load; sources without one
	// fall back to Load, a whole-source failure counting as one skipped
	// record against the budget.
	LoadLenient func() (*graph.Graph, *diag.Report, error)
	// Mapping, when non-nil, is the GAV query evaluated over the loaded
	// graph; its result is the source's contribution to the mediated
	// graph. A nil mapping contributes the loaded graph unchanged.
	Mapping *struql.Query
}

// Mediator integrates a set of sources into one mediated data graph.
type Mediator struct {
	sources []Source
	// contributions caches each source's current contribution.
	contributions map[string]*graph.Graph
	// Obs, when non-nil, receives per-source load timings and refresh
	// delta sizes. Set it before Warehouse/Refresh; nil disables.
	Obs *obs.SourceMetrics
}

// New returns a mediator over the given sources. Source names must be
// unique.
func New(sources ...Source) (*Mediator, error) {
	seen := map[string]bool{}
	for _, s := range sources {
		if s.Name == "" || s.Load == nil {
			return nil, fmt.Errorf("mediator: source needs a name and a Load function")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("mediator: duplicate source %q", s.Name)
		}
		seen[s.Name] = true
	}
	return &Mediator{sources: sources, contributions: map[string]*graph.Graph{}}, nil
}

// SourceNames returns the configured source names, in order.
func (m *Mediator) SourceNames() []string {
	names := make([]string, len(m.sources))
	for i, s := range m.sources {
		names[i] = s.Name
	}
	return names
}

// contribution loads one source and applies its mapping. The recorded
// load time covers wrapper invocation plus mapping evaluation — the full
// cost of bringing this source's contribution up to date.
func (m *Mediator) contribution(s Source) (*graph.Graph, error) {
	start := time.Now()
	g, err := s.Load()
	if err != nil {
		m.Obs.RecordLoad(int64(time.Since(start)), err)
		return nil, fmt.Errorf("mediator: source %s: %w", s.Name, err)
	}
	if s.Mapping == nil {
		m.Obs.RecordLoad(int64(time.Since(start)), nil)
		return g, nil
	}
	r, err := struql.Eval(s.Mapping, struql.NewGraphSource(g), nil)
	m.Obs.RecordLoad(int64(time.Since(start)), err)
	if err != nil {
		return nil, fmt.Errorf("mediator: source %s: mapping: %w", s.Name, err)
	}
	return r.Graph, nil
}

// Warehouse loads every source and merges the contributions into one
// indexed data graph (the repository's "data graph").
func (m *Mediator) Warehouse() (*repo.Indexed, error) {
	contribs := make([]*graph.Graph, 0, len(m.sources))
	for _, s := range m.sources {
		c, err := m.contribution(s)
		if err != nil {
			return nil, err
		}
		m.contributions[s.Name] = c
		contribs = append(contribs, c)
	}
	return repo.NewIndexed(mergeContributions(contribs)), nil
}

// mergeContributions merges source graphs into one graph pre-sized for
// their combined node and edge counts, so the merge grows each structure
// once instead of rehashing incrementally per edge.
func mergeContributions(contribs []*graph.Graph) *graph.Graph {
	nodes, edges := 0, 0
	for _, c := range contribs {
		nodes += c.NumNodes()
		edges += c.NumEdges()
	}
	merged := graph.NewWithCapacity(nodes, edges)
	for _, c := range contribs {
		merged.Merge(c)
	}
	return merged
}

// SourceReport pairs a source name with the skip report its fail-soft
// load produced.
type SourceReport struct {
	Name   string
	Report *diag.Report
}

// contributionLenient is contribution in fail-soft mode. Dirty data
// never returns an error: sources with a LoadLenient report per-record
// skips; sources without one degrade a whole-source failure to an empty
// contribution counted as one skipped record. Errors are reserved for
// the site author's bugs (a failing mapping query, bad options).
func (m *Mediator) contributionLenient(s Source) (*graph.Graph, *diag.Report, error) {
	start := time.Now()
	rep := &diag.Report{}
	var g *graph.Graph
	if s.LoadLenient != nil {
		var err error
		g, rep, err = s.LoadLenient()
		if err != nil {
			m.Obs.RecordLoad(int64(time.Since(start)), err)
			return nil, rep, fmt.Errorf("mediator: source %s: %w", s.Name, err)
		}
		if rep == nil {
			rep = &diag.Report{}
		}
	} else {
		var err error
		g, err = s.Load()
		if err != nil {
			m.Obs.RecordLoad(int64(time.Since(start)), err)
			rep.Records, rep.Skipped = 1, 1
			rep.Add(diag.Diagnostic{Source: s.Name, Severity: diag.Error,
				Message: "source failed to load: " + err.Error()})
			return graph.New(), rep, nil
		}
		rep.Records = 1
	}
	if s.Mapping == nil {
		m.Obs.RecordLoad(int64(time.Since(start)), nil)
		return g, rep, nil
	}
	r, err := struql.Eval(s.Mapping, struql.NewGraphSource(g), nil)
	m.Obs.RecordLoad(int64(time.Since(start)), err)
	if err != nil {
		return nil, rep, fmt.Errorf("mediator: source %s: mapping: %w", s.Name, err)
	}
	return r.Graph, rep, nil
}

// WarehouseLenient loads every source in fail-soft mode and merges the
// surviving contributions. Every source is loaded — even after one
// fails — so the returned reports always cover the whole source set and
// a single run surfaces every diagnostic. The build fails (with the
// first failure, in source order) when a source's skips exceed the
// budget or a mapping errors; the reports accompany the error.
func (m *Mediator) WarehouseLenient(budget diag.Budget) (*repo.Indexed, []SourceReport, error) {
	contribs := make([]*graph.Graph, 0, len(m.sources))
	reports := make([]SourceReport, 0, len(m.sources))
	var firstErr error
	for _, s := range m.sources {
		c, rep, err := m.contributionLenient(s)
		reports = append(reports, SourceReport{Name: s.Name, Report: rep})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if budget.Exceeded(rep.Skipped, rep.Records) {
			if firstErr == nil {
				firstErr = &diag.BudgetError{Source: s.Name, Skipped: rep.Skipped,
					Records: rep.Records, Budget: budget}
			}
			continue
		}
		m.contributions[s.Name] = c
		contribs = append(contribs, c)
	}
	if firstErr != nil {
		return nil, reports, firstErr
	}
	return repo.NewIndexed(mergeContributions(contribs)), reports, nil
}

// DataGraph returns the merged graph of the current contributions
// without reloading sources; Warehouse must have run.
func (m *Mediator) DataGraph() *graph.Graph {
	contribs := make([]*graph.Graph, 0, len(m.sources))
	for _, s := range m.sources {
		if c, ok := m.contributions[s.Name]; ok {
			contribs = append(contribs, c)
		}
	}
	return mergeContributions(contribs)
}

// Delta describes the difference between two versions of a graph.
type Delta struct {
	AddedEdges   []graph.Edge
	RemovedEdges []graph.Edge
	// AddedMembers and RemovedMembers record collection-membership
	// changes as (collection, oid) pairs.
	AddedMembers   []Membership
	RemovedMembers []Membership
}

// Membership is one (collection, member) pair.
type Membership struct {
	Coll string
	OID  graph.OID
}

// Empty reports whether the delta contains no changes.
func (d *Delta) Empty() bool {
	return len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0 &&
		len(d.AddedMembers) == 0 && len(d.RemovedMembers) == 0
}

// Size returns the total number of recorded changes.
func (d *Delta) Size() int {
	return len(d.AddedEdges) + len(d.RemovedEdges) + len(d.AddedMembers) + len(d.RemovedMembers)
}

// mergeCompactLimit bounds unconstrained Merge accumulation: once a
// delta's record count passes it, Merge compacts to net effects so a
// long outage with an oscillating source cannot grow the pending delta
// without bound.
const mergeCompactLimit = 4096

// Merge folds another delta into this one. Deltas of consecutive
// refreshes compose by concatenation; when the accumulated record count
// exceeds a fixed bound the delta is compacted to its net effect (see
// Compact), which keeps memory proportional to the number of distinct
// changed elements instead of the number of change events.
func (d *Delta) Merge(o *Delta) {
	if o == nil {
		return
	}
	d.AddedEdges = append(d.AddedEdges, o.AddedEdges...)
	d.RemovedEdges = append(d.RemovedEdges, o.RemovedEdges...)
	d.AddedMembers = append(d.AddedMembers, o.AddedMembers...)
	d.RemovedMembers = append(d.RemovedMembers, o.RemovedMembers...)
	if d.Size() > mergeCompactLimit {
		d.Compact()
	}
}

// Compact reduces the delta to its net effect: opposing add/remove
// records of the same edge or membership cancel pairwise and repeats
// dedupe, leaving at most one record per distinct element. This is sound
// for any delta built by composing consecutive graph diffs: per element
// the add/remove events alternate, so the sign of adds−removes is
// exactly the element's old-state→new-state change (positive = added,
// negative = removed, zero = unchanged). Output order is deterministic
// (the same sort as Diff).
func (d *Delta) Compact() {
	edgeNet := make(map[graph.Edge]int, len(d.AddedEdges)+len(d.RemovedEdges))
	for _, e := range d.AddedEdges {
		edgeNet[e]++
	}
	for _, e := range d.RemovedEdges {
		edgeNet[e]--
	}
	d.AddedEdges, d.RemovedEdges = nil, nil
	for e, n := range edgeNet {
		switch {
		case n > 0:
			d.AddedEdges = append(d.AddedEdges, e)
		case n < 0:
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
	}
	sortEdgeDelta(d.AddedEdges)
	sortEdgeDelta(d.RemovedEdges)

	memNet := make(map[Membership]int, len(d.AddedMembers)+len(d.RemovedMembers))
	for _, m := range d.AddedMembers {
		memNet[m]++
	}
	for _, m := range d.RemovedMembers {
		memNet[m]--
	}
	d.AddedMembers, d.RemovedMembers = nil, nil
	for m, n := range memNet {
		switch {
		case n > 0:
			d.AddedMembers = append(d.AddedMembers, m)
		case n < 0:
			d.RemovedMembers = append(d.RemovedMembers, m)
		}
	}
	sortMemberDelta(d.AddedMembers)
	sortMemberDelta(d.RemovedMembers)
}

func sortEdgeDelta(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To.Key() < b.To.Key()
	})
}

func sortMemberDelta(ms []Membership) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Coll != ms[j].Coll {
			return ms[i].Coll < ms[j].Coll
		}
		return ms[i].OID < ms[j].OID
	})
}

// Diff computes new − old and old − new for edges and memberships.
func Diff(old, new *graph.Graph) *Delta {
	d := &Delta{}
	oldEdges := map[graph.Edge]bool{}
	old.Edges(func(e graph.Edge) bool { oldEdges[e] = true; return true })
	new.Edges(func(e graph.Edge) bool {
		if !oldEdges[e] {
			d.AddedEdges = append(d.AddedEdges, e)
		} else {
			delete(oldEdges, e)
		}
		return true
	})
	removed := make([]graph.Edge, 0, len(oldEdges))
	for e := range oldEdges {
		removed = append(removed, e)
	}
	sortEdgeDelta(removed)
	d.RemovedEdges = removed
	memberSet := func(g *graph.Graph) map[Membership]bool {
		set := map[Membership]bool{}
		for _, coll := range g.CollectionNames() {
			for _, m := range g.Collection(coll) {
				set[Membership{coll, m}] = true
			}
		}
		return set
	}
	om, nm := memberSet(old), memberSet(new)
	for mem := range nm {
		if !om[mem] {
			d.AddedMembers = append(d.AddedMembers, mem)
		}
	}
	for mem := range om {
		if !nm[mem] {
			d.RemovedMembers = append(d.RemovedMembers, mem)
		}
	}
	sortMemberDelta(d.AddedMembers)
	sortMemberDelta(d.RemovedMembers)
	return d
}

// Refresh reloads one source, replaces its contribution, and returns the
// delta of that source's contribution (empty when nothing changed).
func (m *Mediator) Refresh(name string) (*Delta, error) {
	for _, s := range m.sources {
		if s.Name != name {
			continue
		}
		old, ok := m.contributions[name]
		if !ok {
			old = graph.New()
		}
		c, err := m.contribution(s)
		if err != nil {
			return nil, err
		}
		m.contributions[name] = c
		d := Diff(old, c)
		m.Obs.RecordDelta(d.Size())
		return d, nil
	}
	return nil, fmt.Errorf("mediator: unknown source %q", name)
}
