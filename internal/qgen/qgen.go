// Package qgen holds the seeded random generators behind the
// differential oracles: data graphs with deliberately skewed label
// selectivities, full StruQL queries covering every condition and
// construction form, and standalone where clauses for the query API.
// The generators were born in the struql package's oracle (PR 5) and
// were extracted so network-level harnesses (the HTTP query oracle,
// fuzz seeds, load drivers) can reuse the exact same corpus; the
// outputs are bit-for-bit what the in-package originals produced, so
// existing seeds and fuzz corpora keep their meaning.
//
// Everything is deterministic from the seed: the random source is a
// self-contained 64-bit LCG, not math/rand, so the corpus never shifts
// under Go releases.
package qgen

import (
	"fmt"
	"strings"

	"strudel/internal/graph"
)

// Rand is a small deterministic generator (64-bit LCG, high bits).
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand {
	return &Rand{s: seed*2654435761 + 0x9e3779b97f4a7c15}
}

// N returns a value in [0, k).
func (r *Rand) N(k int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(k))
}

// Pick returns one of the given strings.
func (r *Rand) Pick(ss ...string) string { return ss[r.N(len(ss))] }

// Graph builds a seeded random data graph with deliberately skewed
// label selectivities — "id" is unique per node, "tag" is dense, "next"
// is a near-chain, "ref" is sparse and cross-cutting — so a cost-based
// planner's choices actually differ from textual order.
func Graph(seed uint64) *graph.Graph {
	r := NewRand(seed)
	g := graph.New()
	n := 6 + r.N(20)
	oid := func(i int) graph.OID { return graph.OID(fmt.Sprintf("n%02d", i)) }
	for i := 0; i < n; i++ {
		g.AddToCollection("Items", oid(i))
		if r.N(3) == 0 {
			g.AddToCollection("Extra", oid(i))
		}
		g.AddEdge(oid(i), "id", graph.NewString(fmt.Sprintf("id%02d", i)))
		g.AddEdge(oid(i), "year", graph.NewInt(int64(1990+r.N(8))))
		if r.N(4) != 0 {
			g.AddEdge(oid(i), "kind", graph.NewString(r.Pick("a", "b", "c")))
		}
		for t := r.N(3); t > 0; t-- {
			g.AddEdge(oid(i), "tag", graph.NewString(r.Pick("t1", "t2", "t3")))
		}
		if r.N(5) != 0 {
			g.AddEdge(oid(i), "next", graph.NewNode(oid((i+1+r.N(2))%n)))
		}
		if r.N(3) == 0 {
			g.AddEdge(oid(i), "ref", graph.NewNode(oid(r.N(n))))
		}
		if r.N(4) == 0 {
			g.AddEdge(oid(i), "score", graph.NewFloat(float64(r.N(100))/4))
		}
		if i%3 == 0 {
			g.AddEdge(oid(i), "extra", graph.NewString("e"))
		}
	}
	// One node outside every collection, reachable only through "ref":
	// paths can leave the collections the queries scan.
	g.AddNode(oid(n))
	g.AddEdge(oid(r.N(n)), "ref", graph.NewNode(oid(n)))
	return g
}

// conds generates the shuffled condition list of a random query: every
// condition form (membership, label and reverse paths, arc variables,
// regular path expressions, comparisons, predicates, negation), with
// every referenced variable bound by some positive condition. It
// returns the conditions, the bound variables, and the arc variables,
// advancing r exactly as the original in-test generator did.
func conds(r *Rand) (cs, bound, arcVars []string) {
	bound = []string{"x"}
	varN := 0
	fresh := func() string { varN++; return fmt.Sprintf("v%d", varN) }

	cs = []string{r.Pick("Items(x)", "Items(x)", "Items(x)", "Extra(x)")}
	binders := 1
	nConds := 1 + r.N(5)
	for i := 0; i < nConds; i++ {
		src := bound[r.N(len(bound))]
		kind := r.N(10)
		if binders >= 4 && kind < 4 {
			kind = 4 + r.N(6) // enough binders; stick to filters and negation
		}
		switch kind {
		case 0: // forward label seek
			v := fresh()
			cs = append(cs, fmt.Sprintf("%s -> %q -> %s",
				src, r.Pick("id", "year", "kind", "tag", "next", "ref"), v))
			bound = append(bound, v)
			binders++
		case 1: // reverse: bound target, unbound source
			v := fresh()
			cs = append(cs, fmt.Sprintf("%s -> %q -> %s", v, r.Pick("next", "ref"), src))
			bound = append(bound, v)
			binders++
		case 2: // arc variable binds the label too
			v := fresh()
			l := fmt.Sprintf("l%d", i)
			cs = append(cs, fmt.Sprintf("%s -> %s -> %s", src, l, v))
			bound = append(bound, v, l)
			arcVars = append(arcVars, l)
			binders++
		case 3: // regular path expression
			v := fresh()
			rpe := r.Pick(`"next"*`, `"next"+`, `("next"|"ref")`, `"next"."tag"`,
				`"ref"?."kind"`, `~"t.*"`, `_`, `("next"."ref")*`, `"next"?`)
			cs = append(cs, fmt.Sprintf("%s -> %s -> %s", src, rpe, v))
			bound = append(bound, v)
			binders++
		case 4: // comparison against a constant
			cs = append(cs, r.Pick(
				fmt.Sprintf("%s > %d", src, 1990+r.N(8)),
				fmt.Sprintf("%s <= %d", src, 1990+r.N(8)),
				fmt.Sprintf("%s != %q", src, r.Pick("a", "b", "t1")),
				fmt.Sprintf("%s = %q", src, r.Pick("a", "t2", "id03")),
			))
		case 5: // comparison between two bound variables
			other := bound[r.N(len(bound))]
			cs = append(cs, fmt.Sprintf("%s %s %s", src, r.Pick("!=", "=", "<"), other))
		case 6: // built-in predicate
			cs = append(cs, fmt.Sprintf("%s(%s)",
				r.Pick("isNode", "isAtom", "isInt", "isString"), src))
		case 7: // safe negation
			cs = append(cs, r.Pick(
				fmt.Sprintf("not(%s -> %q -> nz%d)", src, r.Pick("extra", "kind", "ref"), i),
				fmt.Sprintf("not(%s -> \"year\" -> nz%d, nz%d > %d)", src, i, i, 1993+r.N(4)),
				fmt.Sprintf("not(Extra(%s))", src),
			))
		case 8: // collection membership: probe a bound var or scan a new one
			if r.N(2) == 0 {
				cs = append(cs, fmt.Sprintf("Extra(%s)", src))
			} else {
				v := fresh()
				cs = append(cs, fmt.Sprintf("Extra(%s)", v))
				bound = append(bound, v)
				binders++
			}
		default: // path with a constant target
			cs = append(cs, fmt.Sprintf("%s -> \"kind\" -> %q", src, r.Pick("a", "b")))
		}
	}
	// Shuffle: condition order must never change the result, and the
	// planner (or first-ready fallback) must schedule any permutation.
	for i := len(cs) - 1; i > 0; i-- {
		j := r.N(i + 1)
		cs[i], cs[j] = cs[j], cs[i]
	}
	return cs, bound, arcVars
}

// WhereClause generates a standalone random where clause over the
// Graph vocabulary — the binding-relation half of RichQuery, with no
// construction clauses. It is the corpus the HTTP query oracle fires
// at /query, where the endpoint evaluates exactly a condition list.
func WhereClause(seed uint64) string {
	r := NewRand(seed)
	cs, _, _ := conds(r)
	return "where " + strings.Join(cs, ",\n      ")
}

// RichQuery builds a random-but-valid full StruQL query from a seed:
// the WhereClause condition forms plus aggregates, multi-Skolem
// construction, arc-variable links, collections, and nested blocks.
// Every referenced variable is bound by some positive condition, so
// the query always parses and evaluates without error.
func RichQuery(seed uint64) string {
	r := NewRand(seed)
	cs, bound, arcVars := conds(r)

	var b strings.Builder
	b.WriteString("where ")
	b.WriteString(strings.Join(cs, ",\n      "))

	if r.N(6) == 0 && len(bound) > 1 {
		av := bound[1+r.N(len(bound)-1)]
		fn := r.Pick("count", "min", "max", "sum", "avg")
		fmt.Fprintf(&b, "\naggregate %s(%s) as agg by x", fn, av)
		b.WriteString("\ncreate Agg(x)\nlink Agg(x) -> \"val\" -> agg, Agg(x) -> \"self\" -> x")
		if r.N(2) == 0 {
			b.WriteString("\ncollect Results(Agg(x))")
		}
		return b.String()
	}

	b.WriteString("\ncreate Out(x)")
	if r.N(3) == 0 {
		fmt.Fprintf(&b, ", Pair(x, %s)", bound[r.N(len(bound))])
	}
	links := []string{fmt.Sprintf("Out(x) -> \"t0\" -> %s", bound[r.N(len(bound))])}
	for k := r.N(3); k > 0; k-- {
		links = append(links, fmt.Sprintf("Out(x) -> \"t%d\" -> %s", k, bound[r.N(len(bound))]))
	}
	if len(arcVars) > 0 && r.N(2) == 0 {
		links = append(links, fmt.Sprintf("Out(x) -> %s -> x", arcVars[0]))
	}
	fmt.Fprintf(&b, "\nlink %s", strings.Join(links, ", "))
	if r.N(2) == 0 {
		b.WriteString("\ncollect Results(Out(x))")
	}
	if r.N(4) == 0 {
		fmt.Fprintf(&b, "\n{ where %s -> %q -> w create Sub(x, w) link Sub(x, w) -> \"w\" -> w }",
			bound[r.N(len(bound))], r.Pick("kind", "tag", "next"))
	}
	return b.String()
}
