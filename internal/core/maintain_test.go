package core

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

const maintainQuery = `
create Root()
link Root() -> "title" -> "Library"

where Books(b)
create BookPage(b)
link Root() -> "Book" -> BookPage(b)
{
  where b -> "title" -> t
  link BookPage(b) -> "title" -> t
}

where Authors(a)
create AuthorPage(a)
link Root() -> "Author" -> AuthorPage(a)
{
  where a -> "name" -> n
  link AuthorPage(a) -> "name" -> n
}
`

func maintainVersion() *Version {
	return &Version{
		Name:    "main",
		Queries: []string{maintainQuery},
		Templates: map[string]string{
			"Root":   `<h1><SFMT title></h1><SFMT Book UL TEXT=title><SFMT Author UL TEXT=name>`,
			"Book":   `<b><SFMT title></b>`,
			"Author": `<i><SFMT name></i>`,
		},
		PerObject: map[string]string{"Root()": "Root"},
		ObjectTemplatePrefixes: map[string]string{
			"BookPage(":   "Book",
			"AuthorPage(": "Author",
		},
		Roots: []string{"Root()"},
	}
}

func maintainData() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Books", "b1")
	g.AddEdge("b1", "title", graph.NewString("TAOCP"))
	g.AddToCollection("Authors", "a1")
	g.AddEdge("a1", "name", graph.NewString("Knuth"))
	return g
}

func TestMaintainerEndToEnd(t *testing.T) {
	data := maintainData()
	m, err := NewMaintainer(maintainVersion(), struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.Output().PageCount() != 3 { // root + book + author
		t.Fatalf("pages = %d", m.Output().PageCount())
	}

	// Add a book: only the books block re-evaluates; the author page is
	// untouched.
	authorFile := m.Output().PageFiles["AuthorPage(a1)"]
	authorBefore := m.Output().Pages[authorFile]
	prev := data.Copy()
	data.AddToCollection("Books", "b2")
	data.AddEdge("b2", "title", graph.NewString("SICP"))
	st, err := m.Apply(struql.NewGraphSource(data), mediator.Diff(prev, data))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksReevaluated != 1 {
		t.Errorf("blocks = %d, want 1 (books only)", st.BlocksReevaluated)
	}
	if st.PagesRegenerated == 0 {
		t.Error("root page should regenerate")
	}
	if !strings.Contains(m.Output().Pages["index.html"], "SICP") {
		t.Error("root should list the new book")
	}
	if _, ok := m.Output().PageFiles["BookPage(b2)"]; !ok {
		t.Error("new book page missing")
	}
	if m.Output().Pages[authorFile] != authorBefore {
		t.Error("author page should be untouched by a book delta")
	}

	// Full consistency check against a from-scratch build.
	vr, err := BuildVersion(maintainVersion(), struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range vr.Output.Pages {
		if m.Output().Pages[name] != want {
			t.Errorf("page %s diverged from full build", name)
		}
	}
}

func TestMaintainerRemoval(t *testing.T) {
	data := maintainData()
	data.AddToCollection("Books", "b2")
	data.AddEdge("b2", "title", graph.NewString("SICP"))
	m, err := NewMaintainer(maintainVersion(), struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	// Remove b2 by rebuilding the data graph.
	smaller := maintainData()
	delta := mediator.Diff(data, smaller)
	st, err := m.Apply(struql.NewGraphSource(smaller), delta)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksReevaluated == 0 {
		t.Fatal("removal should re-evaluate the books block")
	}
	if strings.Contains(m.Output().Pages["index.html"], "SICP") {
		t.Error("removed book still listed on root")
	}
	if m.Site().HasNode("BookPage(b2)") {
		t.Error("site graph still holds the removed book page")
	}
}

func TestMaintainerNoopDelta(t *testing.T) {
	data := maintainData()
	m, err := NewMaintainer(maintainVersion(), struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Apply(struql.NewGraphSource(data), &mediator.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksReevaluated != 0 || st.PagesRegenerated != 0 {
		t.Errorf("noop delta did work: %+v", st)
	}
}

func TestMaintainerRejectsMultiQueryVersions(t *testing.T) {
	v := maintainVersion()
	v.Queries = append(v.Queries, `create X()`)
	if _, err := NewMaintainer(v, struql.NewGraphSource(maintainData())); err == nil {
		t.Error("multi-query version should be rejected")
	}
}
