package core

import (
	"fmt"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/mediator"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// Maintainer keeps one built site version up to date as the underlying
// data changes, chaining the incremental machinery end to end: the
// block-partitioned query state re-evaluates only affected blocks, a
// reference-counted merge applies each replaced partition's difference to
// the live site graph, and the HTML generator regenerates only the
// dirtied pages. This is the production shape of §7's "update a site
// incrementally when changes occur in the underlying data": work is
// proportional to the change, not to the site.
//
// Limitation: the version must consist of a single query (or queries that
// do not read each other's output collections), because blocks are
// re-evaluated against the data graph alone.
type Maintainer struct {
	version *Version
	state   *dynamic.IncrementalState
	gen     *htmlgen.Generator
	out     *htmlgen.Output
	site    *graph.Graph

	// Reference counts over partition contributions: how many partitions
	// currently assert each node, edge, and membership.
	nodeRefs   map[graph.OID]int
	edgeRefs   map[graph.Edge]int
	memberRefs map[mediator.Membership]int
}

// MaintainStats reports one Apply round.
type MaintainStats struct {
	BlocksReevaluated int
	SiteChanges       int
	PagesRegenerated  int
}

// NewMaintainer builds the version once and prepares incremental state.
func NewMaintainer(v *Version, data struql.Source) (*Maintainer, error) {
	if len(v.Queries) != 1 {
		return nil, fmt.Errorf("core: maintainer supports single-query versions; %s has %d", v.Name, len(v.Queries))
	}
	q, err := struql.Parse(v.Queries[0])
	if err != nil {
		return nil, err
	}
	state, err := dynamic.NewIncrementalState(q, data)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		version:    v,
		state:      state,
		site:       graph.New(),
		nodeRefs:   map[graph.OID]int{},
		edgeRefs:   map[graph.Edge]int{},
		memberRefs: map[mediator.Membership]int{},
	}
	for _, part := range state.Parts {
		m.addPartition(part)
	}

	ts := template.NewSet()
	for name, src := range v.Templates {
		if err := ts.Add(name, src); err != nil {
			return nil, err
		}
	}
	m.gen = htmlgen.New(m.site, ts)
	for coll, name := range v.PerCollection {
		m.gen.PerCollection[coll] = name
	}
	for oid, name := range v.PerObject {
		m.gen.PerObject[graph.OID(oid)] = name
	}
	for prefix, name := range v.ObjectTemplatePrefixes {
		m.gen.PerPrefix[prefix] = name
	}
	roots := make([]graph.OID, len(v.Roots))
	for i, r := range v.Roots {
		roots[i] = graph.OID(r)
	}
	m.out, err = m.gen.Generate(roots)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// addPartition increments refcounts for everything in part, inserting
// fresh items into the site graph; it returns the objects that appeared.
func (m *Maintainer) addPartition(part *graph.Graph) (changed []graph.OID) {
	for _, oid := range part.Nodes() {
		if m.nodeRefs[oid]++; m.nodeRefs[oid] == 1 {
			m.site.AddNode(oid)
			changed = append(changed, oid)
		}
	}
	part.Edges(func(e graph.Edge) bool {
		if m.edgeRefs[e]++; m.edgeRefs[e] == 1 {
			m.site.AddEdge(e.From, e.Label, e.To)
			changed = append(changed, e.From)
		}
		return true
	})
	for _, coll := range part.CollectionNames() {
		m.site.DeclareCollection(coll)
		for _, oid := range part.Collection(coll) {
			mem := mediator.Membership{Coll: coll, OID: oid}
			if m.memberRefs[mem]++; m.memberRefs[mem] == 1 {
				m.site.AddToCollection(coll, oid)
				changed = append(changed, oid)
			}
		}
	}
	return changed
}

// removePartition decrements refcounts, deleting items whose count hits
// zero; it returns the objects that changed.
func (m *Maintainer) removePartition(part *graph.Graph) (changed []graph.OID) {
	part.Edges(func(e graph.Edge) bool {
		if m.edgeRefs[e]--; m.edgeRefs[e] == 0 {
			delete(m.edgeRefs, e)
			m.site.RemoveEdge(e.From, e.Label, e.To)
			changed = append(changed, e.From)
		}
		return true
	})
	for _, coll := range part.CollectionNames() {
		for _, oid := range part.Collection(coll) {
			mem := mediator.Membership{Coll: coll, OID: oid}
			if m.memberRefs[mem]--; m.memberRefs[mem] == 0 {
				delete(m.memberRefs, mem)
				m.site.RemoveFromCollection(coll, oid)
				changed = append(changed, oid)
			}
		}
	}
	for _, oid := range part.Nodes() {
		if m.nodeRefs[oid]--; m.nodeRefs[oid] == 0 {
			delete(m.nodeRefs, oid)
			m.site.RemoveNode(oid)
			changed = append(changed, oid)
		}
	}
	return changed
}

// Output returns the current generated site.
func (m *Maintainer) Output() *htmlgen.Output { return m.out }

// Site returns the live site graph.
func (m *Maintainer) Site() *graph.Graph { return m.site }

// Apply pushes a data change through the whole pipeline: re-evaluate
// affected query blocks, splice their new contributions into the live
// site graph, regenerate dirty pages.
func (m *Maintainer) Apply(data struql.Source, delta *mediator.Delta) (MaintainStats, error) {
	var st MaintainStats
	oldParts := make([]*graph.Graph, len(m.state.Parts))
	copy(oldParts, m.state.Parts)
	n, err := m.state.Apply(data, delta)
	if err != nil {
		return st, err
	}
	st.BlocksReevaluated = n
	if n == 0 {
		return st, nil
	}
	changedSet := map[graph.OID]bool{}
	for i, part := range m.state.Parts {
		if part == oldParts[i] {
			continue
		}
		// Add the new contribution before removing the old one so items
		// present in both keep a positive count and never churn.
		for _, oid := range m.addPartition(part) {
			changedSet[oid] = true
		}
		for _, oid := range m.removePartition(oldParts[i]) {
			changedSet[oid] = true
		}
	}
	st.SiteChanges = len(changedSet)
	if len(changedSet) == 0 {
		return st, nil
	}
	changed := make([]graph.OID, 0, len(changedSet))
	for oid := range changedSet {
		changed = append(changed, oid)
	}
	pages, err := m.gen.Regenerate(m.out, changed)
	if err != nil {
		return st, err
	}
	st.PagesRegenerated = len(pages)
	return st, nil
}
