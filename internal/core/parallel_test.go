package core_test

import (
	"testing"

	"strudel/internal/core"
	"strudel/internal/sites"
)

// TestParallelDeterminism is the tentpole regression test: a build at any
// parallelism setting must be byte-identical to the sequential build — the
// same site graph, the same page file names, the same HTML bytes. Two of
// the paper's sites cover both pipeline shapes: orgsite has two versions
// sharing one site graph, homepage exercises grouping and nested blocks.
func TestParallelDeterminism(t *testing.T) {
	specs := map[string]*core.Spec{
		"orgsite":  sites.OrgSite(120, 7, 13, 16),
		"homepage": sites.Homepage(30),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			seq, err := core.BuildWith(spec, &core.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.BuildWith(spec, &core.Options{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Versions) != len(seq.Versions) {
				t.Fatalf("version count: parallel %d, sequential %d", len(par.Versions), len(seq.Versions))
			}
			for vname, sv := range seq.Versions {
				pv, ok := par.Versions[vname]
				if !ok {
					t.Fatalf("version %s missing from parallel build", vname)
				}
				if pv.SiteGraph.Dump() != sv.SiteGraph.Dump() {
					t.Errorf("version %s: site graphs differ between parallelism settings", vname)
				}
				if len(pv.Output.Pages) != len(sv.Output.Pages) {
					t.Errorf("version %s: page count: parallel %d, sequential %d",
						vname, len(pv.Output.Pages), len(sv.Output.Pages))
				}
				for file, want := range sv.Output.Pages {
					got, ok := pv.Output.Pages[file]
					if !ok {
						t.Errorf("version %s: page %s missing from parallel build", vname, file)
						continue
					}
					if got != want {
						t.Errorf("version %s: page %s bytes differ between parallelism settings", vname, file)
					}
				}
				if pv.Stats != sv.Stats {
					t.Errorf("version %s: stats differ: parallel %+v, sequential %+v", vname, pv.Stats, sv.Stats)
				}
			}
		})
	}
}
