package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenVersion is a small fixed site exercising most of the stack:
// collections, arc variables, grouping, embedding, ordering, includes,
// and conditional templates. Its generated HTML is pinned byte for byte
// in testdata/golden; regenerate with `go test ./internal/core -update`.
func goldenVersion() (*Version, *graph.Graph) {
	data := graph.New()
	add := func(oid graph.OID, title string, year int64, tag string) {
		data.AddToCollection("Books", oid)
		data.AddEdge(oid, "title", graph.NewString(title))
		data.AddEdge(oid, "year", graph.NewInt(year))
		if tag != "" {
			data.AddEdge(oid, "tag", graph.NewString(tag))
		}
	}
	add("b1", "The Art of Computer Programming", 1968, "classic")
	add("b2", "A Relational Model of Data", 1970, "classic")
	add("b3", "Catching the Boat with Strudel", 1998, "")
	v := &Version{
		Name: "golden",
		Queries: []string{`
create Home(), Footer()
link Home() -> "title" -> "Golden Library",
     Home() -> "footer" -> Footer(),
     Footer() -> "note" -> "pinned output"

where Books(b)
create BookPage(b)
link Home() -> "Book" -> BookPage(b)
{
  where b -> l -> v
  link BookPage(b) -> l -> v
}
{
  where b -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Book" -> BookPage(b),
       Home() -> "ByYear" -> YearPage(y)
}
`},
		Templates: map[string]string{
			"header": `<p class="nav">Golden Library</p>`,
			"Home": `<html><head><title><SFMT title></title></head><body>
<SINCLUDE header>
<h1><SFMT title></h1>
<h2>Books</h2>
<SFMT Book UL ORDER=ascend KEY=title TEXT=title>
<h2>By year</h2>
<SFMT ByYear UL ORDER=descend KEY=Year TEXT=Year>
<SFMT footer EMBED>
</body></html>`,
			"Book": `<html><body>
<SINCLUDE header>
<h1><SFMT title></h1>
<p>Published <SFMT year>.</p>
<SIF tag><p>Tagged: <SFMT tag></p><SELSE><p>Untagged.</p></SIF>
</body></html>`,
			"Year": `<html><body>
<SINCLUDE header>
<h1>Books from <SFMT Year></h1>
<SFMT Book UL TEXT=title>
</body></html>`,
			"Footer": `<hr><i><SFMT note></i>`,
		},
		PerObject: map[string]string{"Home()": "Home", "Footer()": "Footer"},
		ObjectTemplatePrefixes: map[string]string{
			"BookPage(": "Book",
			"YearPage(": "Year",
		},
		Roots: []string{"Home()"},
	}
	return v, data
}

func TestGoldenSiteOutput(t *testing.T) {
	v, data := goldenVersion()
	vr, err := BuildVersion(v, struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := vr.Output.WriteDir(dir); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden files rewritten (%d pages)", vr.Output.PageCount())
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("golden dir missing (run with -update): %v", err)
	}
	if len(entries) != vr.Output.PageCount() {
		t.Errorf("page count = %d, golden has %d files", vr.Output.PageCount(), len(entries))
	}
	for name, got := range vr.Output.Pages {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("golden file %s missing: %v", name, err)
			continue
		}
		if got != string(want) {
			t.Errorf("page %s diverged from golden output:\n--- got\n%s\n--- want\n%s", name, got, want)
		}
	}
}

// TestGoldenSiteOutputParallel pins the determinism guarantee against the
// same golden files: a build with eight workers must produce bytes
// identical to the sequential golden output.
func TestGoldenSiteOutputParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("golden files are rewritten by the sequential test")
	}
	v, data := goldenVersion()
	vr, err := BuildVersionWith(v, struql.NewGraphSource(data), &Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("golden dir missing (run with -update): %v", err)
	}
	if len(entries) != vr.Output.PageCount() {
		t.Errorf("page count = %d, golden has %d files", vr.Output.PageCount(), len(entries))
	}
	for name, got := range vr.Output.Pages {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("golden file %s missing from parallel build: %v", name, err)
			continue
		}
		if got != string(want) {
			t.Errorf("page %s diverged from golden output under parallelism:\n--- got\n%s\n--- want\n%s", name, got, want)
		}
	}
}
