package core

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

func TestBuildPipeline(t *testing.T) {
	data := graph.New()
	data.AddToCollection("Publications", "pub1")
	data.AddEdge("pub1", "title", graph.NewString("Strudel"))
	spec := &Spec{
		Name:    "mini",
		Sources: nil,
		Versions: []Version{{
			Name:    "main",
			Queries: []string{`create Root() link Root() -> "title" -> "Home"`},
			Roots:   []string{"Root()"},
		}},
	}
	spec.Sources = append(spec.Sources, StaticSource("inline", data))
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	vr := res.Versions["main"]
	if vr == nil || vr.Output.PageCount() != 1 {
		t.Fatalf("result = %+v", vr)
	}
	if !strings.Contains(vr.Output.Pages["index.html"], "Home") {
		t.Errorf("index:\n%s", vr.Output.Pages["index.html"])
	}
	if res.Data.Graph().NumEdges() != 1 {
		t.Error("data graph should hold the source edge")
	}
}

func TestBuildVersionStatsAndChecks(t *testing.T) {
	data := graph.New()
	data.AddToCollection("Publications", "pub1")
	data.AddEdge("pub1", "title", graph.NewString("Strudel"))
	data.AddToCollection("Publications", "pub2")
	data.AddEdge("pub2", "title", graph.NewString("Boat"))
	v := &Version{
		Name: "main",
		Queries: []string{`
create Root()
link Root() -> "title" -> "Pubs"
where Publications(x)
create Page(x)
link Root() -> "pub" -> Page(x)
{
  where x -> "title" -> t
  link Page(x) -> "title" -> t
}
`},
		Templates: map[string]string{
			"Root": `<h1><SFMT title></h1>
<SFMT pub UL>`,
			"Page": `<b><SFMT title></b>`,
		},
		PerObject:              map[string]string{"Root()": "Root"},
		ObjectTemplatePrefixes: map[string]string{"Page(": "Page"},
		Roots:                  []string{"Root()"},
		Constraints: []string{
			`connected from Root`,
			`every Page has "title"`,
		},
	}
	vr, err := BuildVersion(v, struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	if !vr.ChecksPass {
		t.Errorf("checks = %+v", vr.Checks)
	}
	st := vr.Stats
	if st.QueryLines != 9 {
		t.Errorf("QueryLines = %d, want 9", st.QueryLines)
	}
	if st.LinkClauses != 3 {
		t.Errorf("LinkClauses = %d, want 3", st.LinkClauses)
	}
	if st.Templates != 2 || st.TemplateLines != 3 {
		t.Errorf("templates = %d/%d, want 2/3", st.Templates, st.TemplateLines)
	}
	if st.Pages != 3 { // Root + 2 Pages
		t.Errorf("Pages = %d, want 3", st.Pages)
	}
	if !strings.Contains(st.String(), "link clauses") {
		t.Error("stats string")
	}
	if vr.Schema == nil || !vr.Schema.HasNode("Page") {
		t.Error("schema missing")
	}
}

func TestConstraintViolationReported(t *testing.T) {
	data := graph.New()
	data.AddToCollection("Publications", "pub1")
	v := &Version{
		Name:        "main",
		Queries:     []string{`create Root() where Publications(x) create Orphan(x)`},
		Roots:       []string{"Root()"},
		Constraints: []string{`connected from Root`},
	}
	vr, err := BuildVersion(v, struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	if vr.ChecksPass {
		t.Error("orphan should violate connectivity")
	}
}

func TestBuildErrors(t *testing.T) {
	data := graph.New()
	cases := []Version{
		{Name: "badquery", Queries: []string{`where`}},
		{Name: "badtemplate", Queries: []string{`create R()`}, Templates: map[string]string{"t": `<SFMT >`}},
		{Name: "badconstraint", Queries: []string{`create R()`}, Constraints: []string{"gibberish"}},
		{Name: "badroot", Queries: []string{`create R()`}, Roots: []string{"Ghost()"}},
	}
	for _, v := range cases {
		v := v
		if _, err := BuildVersion(&v, struql.NewGraphSource(data)); err == nil {
			t.Errorf("version %s should fail", v.Name)
		}
	}
}

func TestSharedSiteGraphAcrossVersions(t *testing.T) {
	// One site graph, two renderings (the paper's internal/external
	// pattern when only templates differ).
	data := graph.New()
	data.AddToCollection("Publications", "pub1")
	data.AddEdge("pub1", "title", graph.NewString("Strudel"))
	data.AddEdge("pub1", "secret", graph.NewString("classified"))
	queries := []*struql.Query{struql.MustParse(`
where Publications(x)
create Page(x)
link Page(x) -> "title" -> "T"
collect Pages(Page(x))
{ where x -> l -> v link Page(x) -> l -> v }
`)}
	site, err := struql.EvalSeq(queries, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	internal := &Version{
		Name:                   "internal",
		Templates:              map[string]string{"Page": `<SFMT title> [<SFMT secret>]`},
		ObjectTemplatePrefixes: map[string]string{"Page(": "Page"},
		Roots:                  []string{"Page(pub1)"},
	}
	external := &Version{
		Name:                   "external",
		Templates:              map[string]string{"Page": `<SFMT title>`},
		ObjectTemplatePrefixes: map[string]string{"Page(": "Page"},
		Roots:                  []string{"Page(pub1)"},
	}
	ivr, err := RenderVersion(internal, queries, site)
	if err != nil {
		t.Fatal(err)
	}
	evr, err := RenderVersion(external, queries, site)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ivr.Output.Pages["index.html"], "classified") {
		t.Error("internal version should show the secret")
	}
	if strings.Contains(evr.Output.Pages["index.html"], "classified") {
		t.Error("external version must hide the secret")
	}
	if ivr.SiteGraph != evr.SiteGraph {
		t.Error("versions should share one site graph")
	}
}

func TestCountQueryLines(t *testing.T) {
	got := countQueryLines([]string{"a\n\n// c\n# d\nb\n", "x"})
	if got != 3 {
		t.Errorf("countQueryLines = %d, want 3", got)
	}
}
