// Package core assembles the Strudel system of Fig. 1: wrappers feed the
// mediator, the mediator warehouses an integrated data graph in the
// repository, a site-definition query (or a composition of queries)
// produces the site graph, integrity constraints are checked, and the
// HTML generator emits the browsable web site.
//
// A Spec describes a whole site project; its Versions share the data
// graph and — when their queries are identical — the site graph, which is
// how the paper builds an external view of the AT&T site from the
// internal one with "no new queries" (§5.1), and how one site graph can
// carry multiple visual presentations.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"strudel/internal/constraints"
	"strudel/internal/diag"
	"strudel/internal/graph"
	"strudel/internal/htmlgen"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// Options tunes a build. The zero value (and a nil *Options) is the
// parallel default: one worker per available CPU in the query evaluator
// and the HTML generator, and independent versions built concurrently.
// Output is byte-identical at every setting; Parallelism: 1 forces the
// fully sequential pipeline.
type Options struct {
	// Parallelism is the per-stage worker count: 0 = GOMAXPROCS,
	// 1 = sequential, n>1 = exactly n workers.
	Parallelism int
	// Eval, Source, and Gen are optional instrumentation sinks threaded
	// to the query evaluator, the mediator, and the HTML generator. Nil
	// sinks (the default) disable instrumentation; output is identical
	// either way.
	Eval   *obs.EvalMetrics
	Source *obs.SourceMetrics
	Gen    *obs.GenMetrics
	// Trace, when non-nil, records per-stage spans of every build:
	// build ▸ wrap, build ▸ version ▸ query, build ▸ version ▸
	// generate. cmd/strudel's -trace flag emits them as JSON Lines.
	Trace *obs.Tracer
	// Lenient switches source loading to fail-soft: sources with a
	// lenient loader skip malformed records (collecting position-tagged
	// diagnostics in BuildResult.SourceReports) and the build fails only
	// when a source's skips exceed Budget.
	Lenient bool
	// Budget bounds skipped records per source in lenient mode. The
	// zero value allows no skips; diag.Unlimited never fails.
	Budget diag.Budget
	// MaxRows and MaxNFAStates bound query evaluation (0 = unlimited);
	// see struql.Options.
	MaxRows      int
	MaxNFAStates int
	// EvalTimeout is the wall-clock budget for each version's query
	// evaluation (0 = none). Exceeding any of the three guards fails
	// the build with a struql.ResourceExhausted error.
	EvalTimeout time.Duration
	// NoReorder evaluates where conditions in first-ready textual order
	// instead of cost order — the unoptimized planner baseline. Output
	// is byte-identical either way; only evaluation time differs.
	NoReorder bool
	// NoStats disables selectivity statistics in the query planner,
	// falling back to fixed uniform-degree heuristics — the before half
	// of experiment E14. Output is byte-identical either way.
	NoStats bool
	// NoFrozen disables the frozen-snapshot fast path: the evaluator
	// uses the source's generic access paths even when a CSR snapshot
	// is available. Output is byte-identical either way; only
	// evaluation time and allocation differ.
	NoFrozen bool
	// parent is the enclosing span for this build's stage spans,
	// threaded internally so concurrent version builds nest correctly.
	parent *obs.Span
}

func (o *Options) parallelism() int {
	if o == nil {
		return 0
	}
	return o.Parallelism
}

// EvalOptions derives the struql evaluation options this build would
// run with: limits, reordering switches, and — when EvalTimeout is set —
// a deadline anchored at the call. The incremental maintainer uses it to
// evaluate deltas under the same guards as the full build. Nil-safe.
func (o *Options) EvalOptions() *struql.Options { return o.evalOptions() }

func (o *Options) evalOptions() *struql.Options {
	so := &struql.Options{Parallelism: o.parallelism()}
	if o != nil {
		so.Metrics = o.Eval
		so.MaxRows = o.MaxRows
		so.MaxNFAStates = o.MaxNFAStates
		so.NoReorder = o.NoReorder
		so.NoStats = o.NoStats
		so.NoFrozen = o.NoFrozen
		if o.EvalTimeout > 0 {
			so.Deadline = time.Now().Add(o.EvalTimeout)
		}
	}
	return so
}

// span opens a stage span: a child of the build's enclosing span when
// one is set, else a top-level span of the tracer. Nil-safe throughout —
// with no tracer it returns a nil span and every operation on it is a
// no-op.
func (o *Options) span(name string, attrs ...string) *obs.Span {
	if o == nil {
		return nil
	}
	if o.parent != nil {
		return o.parent.Child(name, attrs...)
	}
	return o.Trace.Start(name, attrs...)
}

// withParent returns a copy of o whose stage spans nest under s.
func (o *Options) withParent(s *obs.Span) *Options {
	if o == nil {
		return nil
	}
	c := *o
	c.parent = s
	return &c
}

// Version is one buildable rendition of the site: a query composition, a
// template set, and the realization roots.
type Version struct {
	// Name identifies the version (e.g. "internal", "external").
	Name string
	// Queries are StruQL sources composed in order (§5.1 suciu example);
	// each sees the data graph plus everything built so far.
	Queries []string
	// Templates maps template name → template source.
	Templates map[string]string
	// PerCollection and PerObject configure template selection.
	PerCollection map[string]string
	PerObject     map[string]string
	// ObjectTemplatePrefixes assigns templates by Skolem-oid prefix:
	// "YearPage(" → "YearPage". Applied after PerObject.
	ObjectTemplatePrefixes map[string]string
	// Roots are the realization roots (Skolem display oids, e.g.
	// "RootPage()").
	Roots []string
	// Constraints are textual integrity constraints checked on the
	// materialized site graph.
	Constraints []string
}

// Spec is a whole site project.
type Spec struct {
	Name     string
	Sources  []mediator.Source
	Versions []Version
}

// SiteStats are the per-site metrics the paper reports in §5.1: query and
// template sizes, and the generated site's size.
type SiteStats struct {
	QueryLines    int
	LinkClauses   int
	Templates     int
	TemplateLines int
	SiteNodes     int
	SiteEdges     int
	Pages         int
}

func (s SiteStats) String() string {
	return fmt.Sprintf("query: %d lines, %d link clauses; templates: %d (%d lines); site graph: %d nodes, %d edges; %d pages",
		s.QueryLines, s.LinkClauses, s.Templates, s.TemplateLines, s.SiteNodes, s.SiteEdges, s.Pages)
}

// VersionResult is one built version.
type VersionResult struct {
	Name       string
	Queries    []*struql.Query
	SiteGraph  *graph.Graph
	Schema     *schema.Schema
	Output     *htmlgen.Output
	Checks     []constraints.Result
	ChecksPass bool
	Stats      SiteStats
}

// BuildResult is a fully built spec.
type BuildResult struct {
	Data     *repo.Indexed
	Versions map[string]*VersionResult
	// SourceReports are the per-source skip reports of a lenient build,
	// in source order; nil in strict mode.
	SourceReports []mediator.SourceReport
}

// Build runs the whole pipeline with default (parallel) options.
func Build(spec *Spec) (*BuildResult, error) { return BuildWith(spec, nil) }

// BuildWith runs the whole pipeline: warehouse the sources once, then
// build every version against the shared data graph. Versions whose query
// compositions are textually identical share one evaluated site graph
// (the paper's "no new queries" external view, §5.1); versions with
// different queries evaluate concurrently — the data graph is read-only
// once warehoused. Results and errors are deterministic: the reported
// error is always the one of the earliest failing version in spec order.
func BuildWith(spec *Spec, opts *Options) (*BuildResult, error) {
	build := opts.span("build", "site", spec.Name)
	defer build.End()
	opts = opts.withParent(build)
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", spec.Name, err)
	}
	if opts != nil {
		med.Obs = opts.Source
	}
	ws := opts.span("wrap")
	var data *repo.Indexed
	var reports []mediator.SourceReport
	if opts != nil && opts.Lenient {
		data, reports, err = med.WarehouseLenient(opts.Budget)
	} else {
		data, err = med.Warehouse()
	}
	ws.End()
	if err != nil {
		// In lenient mode the reports survive the failure, so callers can
		// still print every diagnostic the run collected.
		if reports != nil {
			return &BuildResult{SourceReports: reports},
				fmt.Errorf("core: %s: %w", spec.Name, err)
		}
		return nil, fmt.Errorf("core: %s: %w", spec.Name, err)
	}
	res := &BuildResult{Data: data, Versions: map[string]*VersionResult{}, SourceReports: reports}

	// Group versions by query composition; group members are version
	// indexes in spec order.
	groups := map[string][]int{}
	var groupOrder []string
	for i := range spec.Versions {
		key := strings.Join(spec.Versions[i].Queries, "\x00")
		if _, ok := groups[key]; !ok {
			groupOrder = append(groupOrder, key)
		}
		groups[key] = append(groups[key], i)
	}

	results := make([]*VersionResult, len(spec.Versions))
	errs := make([]error, len(spec.Versions))
	runGroup := func(idxs []int) {
		first := idxs[0]
		vspan := opts.span("version", "name", spec.Versions[first].Name)
		vr, err := BuildVersionWith(&spec.Versions[first], data, opts.withParent(vspan))
		vspan.End()
		if err != nil {
			errs[first] = err
			return
		}
		results[first] = vr
		for _, i := range idxs[1:] {
			vspan := opts.span("version", "name", spec.Versions[i].Name)
			r, err := RenderVersionWith(&spec.Versions[i], vr.Queries, vr.SiteGraph, opts.withParent(vspan))
			vspan.End()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = r
		}
	}
	if opts.parallelism() == 1 || len(groupOrder) == 1 {
		for _, key := range groupOrder {
			runGroup(groups[key])
		}
	} else {
		var wg sync.WaitGroup
		for _, key := range groupOrder {
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				runGroup(idxs)
			}(groups[key])
		}
		wg.Wait()
	}
	for i := range spec.Versions {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: %s: version %s: %w", spec.Name, spec.Versions[i].Name, errs[i])
		}
		res.Versions[results[i].Name] = results[i]
	}
	return res, nil
}

// BuildVersion builds one version with default options. It is also the
// entry point for experiment E9 (the cost of a second version).
func BuildVersion(v *Version, data struql.Source) (*VersionResult, error) {
	return BuildVersionWith(v, data, nil)
}

// BuildVersionWith builds one version against an existing data graph.
func BuildVersionWith(v *Version, data struql.Source, opts *Options) (*VersionResult, error) {
	queries, err := parseQueries(v.Queries)
	if err != nil {
		return nil, err
	}
	qs := opts.span("query", "version", v.Name)
	site, err := struql.EvalSeq(queries, data, opts.evalOptions())
	qs.End()
	if err != nil {
		return nil, err
	}
	return RenderVersionWith(v, queries, site, opts)
}

// RenderVersion finishes a build with default options.
func RenderVersion(v *Version, queries []*struql.Query, site *graph.Graph) (*VersionResult, error) {
	return RenderVersionWith(v, queries, site, nil)
}

// RenderVersionWith finishes a build from an already evaluated site graph —
// the path that shares one site graph between versions whose queries are
// identical (only the presentation differs).
func RenderVersionWith(v *Version, queries []*struql.Query, site *graph.Graph, opts *Options) (*VersionResult, error) {
	vr := &VersionResult{Name: v.Name, Queries: queries, SiteGraph: site}
	vr.Schema = schema.Build(combined(queries))

	// Integrity constraints on the materialized site.
	vr.ChecksPass = true
	for _, cs := range v.Constraints {
		c, err := constraints.Parse(cs)
		if err != nil {
			return nil, err
		}
		r := c.CheckSite(site)
		vr.Checks = append(vr.Checks, r)
		if r.Verdict == constraints.Violated {
			vr.ChecksPass = false
		}
	}

	gspan := opts.span("generate", "version", v.Name)
	defer gspan.End()
	ts := template.NewSet()
	for name, src := range v.Templates {
		if err := ts.Add(name, src); err != nil {
			return nil, err
		}
	}
	gen := htmlgen.New(site, ts)
	gen.Parallelism = opts.parallelism()
	if opts != nil {
		gen.Obs = opts.Gen
	}
	for coll, name := range v.PerCollection {
		gen.PerCollection[coll] = name
	}
	for oid, name := range v.PerObject {
		gen.PerObject[graph.OID(oid)] = name
	}
	for prefix, name := range v.ObjectTemplatePrefixes {
		gen.PerPrefix[prefix] = name
	}
	roots := make([]graph.OID, len(v.Roots))
	for i, r := range v.Roots {
		roots[i] = graph.OID(r)
	}
	out, err := gen.Generate(roots)
	if err != nil {
		return nil, err
	}
	vr.Output = out

	vr.Stats = SiteStats{
		QueryLines:    countQueryLines(v.Queries),
		LinkClauses:   linkClauses(queries),
		Templates:     len(v.Templates),
		TemplateLines: countTemplateLines(v.Templates),
		SiteNodes:     site.NumNodes(),
		SiteEdges:     site.NumEdges(),
		Pages:         out.PageCount(),
	}
	return vr, nil
}

func parseQueries(sources []string) ([]*struql.Query, error) {
	queries := make([]*struql.Query, len(sources))
	for i, src := range sources {
		q, err := struql.Parse(src)
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}
	return queries, nil
}

// combined concatenates query blocks so one schema covers the whole
// composition.
func combined(queries []*struql.Query) *struql.Query {
	all := &struql.Query{}
	for _, q := range queries {
		all.Blocks = append(all.Blocks, q.Blocks...)
	}
	return all
}

// countQueryLines counts non-empty, non-comment lines — the paper's
// "115-line query" metric.
func countQueryLines(sources []string) int {
	n := 0
	for _, src := range sources {
		for _, line := range strings.Split(src, "\n") {
			t := strings.TrimSpace(line)
			if t == "" || strings.HasPrefix(t, "//") || strings.HasPrefix(t, "#") {
				continue
			}
			n++
		}
	}
	return n
}

func countTemplateLines(templates map[string]string) int {
	n := 0
	for _, src := range templates {
		for _, line := range strings.Split(src, "\n") {
			if strings.TrimSpace(line) != "" {
				n++
			}
		}
	}
	return n
}

func linkClauses(queries []*struql.Query) int {
	n := 0
	for _, q := range queries {
		n += q.LinkClauseCount()
	}
	return n
}

// GraphSourceOf wraps a plain graph as a source, re-exported so example
// programs depend only on core.
func GraphSourceOf(g *graph.Graph) struql.Source { return struql.NewGraphSource(g) }

// StaticSource wraps an already loaded graph as a mediator source.
func StaticSource(name string, g *graph.Graph) mediator.Source {
	return mediator.Source{Name: name, Load: func() (*graph.Graph, error) { return g, nil }}
}
