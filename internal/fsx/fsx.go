// Package fsx is the filesystem seam of Strudel's batch pipeline: a
// small injectable interface over the handful of operations the site
// writer and the repository need, an os-backed default, and the
// durable-write helpers (write + fsync, temp-file + rename) that make
// publication atomic.
//
// Production code takes an FS so tests can substitute a fault-injecting
// implementation (package faultfs) and prove that a crash or I/O error
// at any point leaves previously published data intact.
package fsx

import (
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the mutation surface of the batch pipeline. Implementations
// must be safe for concurrent use by multiple goroutines.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// WriteFile durably writes data to name: the contents are fsynced
	// before it returns nil. It does not guarantee atomicity — use
	// WriteFileAtomic for crash-safe replacement.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Rename atomically renames oldpath to newpath (same filesystem).
	Rename(oldpath, newpath string) error
	// Link creates newname as a hard link to oldname (same filesystem).
	// Patch publication uses it to stage unchanged pages without
	// rewriting their bytes; callers must treat failure as advisory and
	// fall back to WriteFile.
	Link(oldname, newname string) error
	// RemoveAll removes path and everything below it.
	RemoveAll(path string) error
	// SyncDir fsyncs the directory itself, making renames within it
	// durable. Implementations on filesystems without directory sync
	// may no-op.
	SyncDir(path string) error
	// Stat reports on the named file.
	Stat(path string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// WriteFile writes and fsyncs in one pass; the create-write-sync-close
// sequence reports the first failure and always closes the handle.
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	switch {
	case werr != nil:
		return werr
	case serr != nil:
		return serr
	default:
		return cerr
	}
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Link(oldname, newname string) error   { return os.Link(oldname, newname) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	// Directory fsync is not supported everywhere; a sync failure on an
	// open directory handle is advisory, the close error is not.
	_ = d.Sync()
	return d.Close()
}

func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// WriteFileAtomic replaces name crash-safely: the data is written and
// fsynced to a sibling temp file, which is then renamed over name, and
// the parent directory is synced so the rename itself is durable. A
// failure at any step leaves either the old contents or the new — never
// a truncated mix — with the temp file cleaned up on error.
func WriteFileAtomic(fsys FS, name string, data []byte, perm fs.FileMode) error {
	tmp := name + ".tmp"
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		fsys.RemoveAll(tmp)
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.RemoveAll(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(name))
}
