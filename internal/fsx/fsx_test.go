package fsx_test

import (
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/faultfs"
	"strudel/internal/fsx"
)

func TestWriteFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := fsx.OS.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := fsx.WriteFileAtomic(fsx.OS, path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsx.WriteFileAtomic(fsx.OS, path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("read back %q, want new", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("temp file left behind: %v", entries)
	}
}

// TestWriteFileAtomicTornWriteKeepsOld proves the point of the helper:
// a short (torn) write of the replacement never damages the old file.
func TestWriteFileAtomicTornWriteKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := fsx.WriteFileAtomic(fsx.OS, path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, ffs := range []*faultfs.FS{
		{Inner: fsx.OS, FailWriteN: 1},
		{Inner: fsx.OS, ShortWriteN: 1},
		{Inner: fsx.OS, FailRenameN: 1},
	} {
		if err := fsx.WriteFileAtomic(ffs, path, []byte("replacement-that-is-longer"), 0o644); err == nil {
			t.Fatal("fault injected, want error")
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != "precious" {
			t.Errorf("after faulted replace: %q, %v (want old contents intact)", got, err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Errorf("temp file not cleaned up: %v", err)
		}
	}
}

func TestFaultFSCountsAndTriggers(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultfs.FS{Inner: fsx.OS, FailWriteN: 2}
	if err := ffs.WriteFile(filepath.Join(dir, "one"), []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile(filepath.Join(dir, "two"), []byte("2"), 0o644); err == nil {
		t.Fatal("second write should fail")
	}
	if err := ffs.WriteFile(filepath.Join(dir, "three"), []byte("3"), 0o644); err != nil {
		t.Fatalf("third write should succeed: %v", err)
	}
	if ffs.Writes() != 3 {
		t.Errorf("Writes() = %d, want 3", ffs.Writes())
	}
	if _, err := os.Stat(filepath.Join(dir, "two")); !os.IsNotExist(err) {
		t.Error("failed write should not create the file")
	}
}

func TestFaultFSShortWriteCommitsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultfs.FS{Inner: fsx.OS, ShortWriteN: 1}
	path := filepath.Join(dir, "torn")
	if err := ffs.WriteFile(path, []byte("0123456789"), 0o644); err == nil {
		t.Fatal("short write should report failure")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Errorf("torn file = %q, want first half", got)
	}
}
