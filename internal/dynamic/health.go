package dynamic

import (
	"encoding/json"
	"sync"
	"time"
)

// Health tracks the serving layer's degradation state: whether the last
// source reload succeeded, and the reload counters ops dashboards want.
// A degraded server keeps serving the last-good data graph; /healthz is
// how the outside learns it is stale.
type Health struct {
	mu         sync.Mutex
	degraded   bool
	reason     string
	reloads    int
	failures   int
	// failedRounds counts degraded windows: it increments only on the
	// healthy→degraded transition, so a round of backoff retries that
	// ends in a successful swap counts as one failed round no matter how
	// many attempts it took.
	failedRounds int
	consecFail   int
	lastReload   time.Time
	lastError    time.Time
}

// NewHealth returns a healthy Health.
func NewHealth() *Health { return &Health{} }

// SetDegraded records a failed reload: the server keeps serving last-good
// data and reports degraded until a reload succeeds.
func (h *Health) SetDegraded(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.degraded {
		h.failedRounds++
	}
	h.degraded = true
	h.reason = err.Error()
	h.failures++
	h.consecFail++
	h.lastError = time.Now()
}

// SetHealthy records a successful reload, clearing degradation.
func (h *Health) SetHealthy() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.degraded = false
	h.reason = ""
	h.reloads++
	h.consecFail = 0
	h.lastReload = time.Now()
}

// Degraded reports whether the last reload attempt failed.
func (h *Health) Degraded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// HealthStatus is the JSON shape /healthz serves.
type HealthStatus struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Reason carries the last reload error while degraded. Reload errors
	// describe the operator's own source files, not request internals, so
	// exposing them on the ops endpoint is intentional.
	Reason string `json:"reason,omitempty"`
	// Reloads and Failures count successful and failed reload attempts.
	Reloads  int `json:"reloads"`
	Failures int `json:"failures"`
	// FailedRounds counts degraded windows: a run of consecutive failed
	// attempts ending in a successful reload is one failed round,
	// however many backoff retries it spans.
	FailedRounds int `json:"failedRounds"`
	// ConsecutiveFailures counts failures since the last success; the
	// reload loop's backoff grows with it.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// CachedPages is the evaluator's current page-cache size.
	CachedPages int `json:"cachedPages"`
	// LastReload is the time of the last successful reload (RFC 3339),
	// empty before the first one.
	LastReload string `json:"lastReload,omitempty"`
}

// Snapshot returns the current status with the given cache size filled in.
func (h *Health) Snapshot(cachedPages int) HealthStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HealthStatus{
		Status:              "ok",
		Reloads:             h.reloads,
		Failures:            h.failures,
		FailedRounds:        h.failedRounds,
		ConsecutiveFailures: h.consecFail,
		CachedPages:         cachedPages,
	}
	if h.degraded {
		st.Status = "degraded"
		st.Reason = h.reason
	}
	if !h.lastReload.IsZero() {
		st.LastReload = h.lastReload.Format(time.RFC3339)
	}
	return st
}

// StatusJSON renders the status as JSON for /healthz.
func (h *Health) StatusJSON(cachedPages int) []byte {
	b, err := json.Marshal(h.Snapshot(cachedPages))
	if err != nil {
		return []byte(`{"status":"ok"}`)
	}
	return append(b, '\n')
}
