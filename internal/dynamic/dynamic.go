// Package dynamic implements dynamic ("click-time") computation of site
// graphs (§2.5, §7). The prototype's static approach materializes the
// whole site before anyone browses it; that is infeasible for sites whose
// data changes frequently or whose pages depend on user input. Site
// schemas make the alternative possible: they specify, for each node in
// the site graph, the queries that must be evaluated to compute the
// node's contents — its outgoing edges.
//
// Evaluator answers "what are this page's edges?" by running, for each
// site-schema edge leaving the page's Skolem function, the edge's
// governing conjunction with the page's Skolem arguments pre-bound.
// Computed pages are cached (the optimization the paper describes as
// reusing "information derived for already browsed pages"), and optional
// lookahead precomputes the pages a just-computed page links to.
//
// The package also provides the incremental re-evaluation used by
// experiment E8: after an additive data change, only the query blocks
// whose conditions mention the changed attributes or collections are
// re-run, and the site graph grows by exactly the new objects and edges.
package dynamic

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

// PageRef identifies a dynamic page: a Skolem function and its argument
// values.
type PageRef struct {
	Fn   string
	Args []graph.Value
}

// PageData is the computed content of one page: the node's outgoing
// edges in the virtual site graph, plus the PageRefs of linked dynamic
// pages (for navigation and lookahead).
type PageData struct {
	OID   graph.OID
	Ref   PageRef
	Out   []graph.Edge
	Links []PageRef
}

// Stats counts evaluator work for the static-vs-dynamic experiments.
type Stats struct {
	PagesComputed int
	CacheHits     int
	QueriesRun    int
}

// Evaluator computes pages on demand from the site schema and the data
// graph. It is not safe for concurrent use; the HTTP server serializes
// access.
type Evaluator struct {
	Schema *schema.Schema
	Data   struql.Source
	// Lookahead precomputes linked pages after each page computation.
	Lookahead bool

	env   *struql.SkolemEnv
	cache map[graph.OID]*PageData
	refs  map[graph.OID]PageRef
	stats Stats
	// deps maps each Skolem function to the attribute labels and
	// collection names its edge queries depend on; "*" means everything
	// (an arc variable ranges over the whole schema).
	deps map[string]map[string]bool
}

// NewEvaluator returns an evaluator over a site schema and data source.
func NewEvaluator(s *schema.Schema, data struql.Source) *Evaluator {
	ev := &Evaluator{
		Schema: s,
		Data:   data,
		env:    struql.NewSkolemEnv(),
		cache:  map[graph.OID]*PageData{},
		refs:   map[graph.OID]PageRef{},
		deps:   map[string]map[string]bool{},
	}
	for _, fn := range s.Nodes {
		if fn == schema.NS {
			continue
		}
		set := map[string]bool{}
		for _, e := range s.OutEdges(fn) {
			condDeps(e.Where, set, map[string][]string{})
		}
		ev.deps[fn] = set
	}
	return ev
}

// Stats returns a copy of the work counters.
func (ev *Evaluator) StatsSnapshot() Stats { return ev.stats }

// EntryPoints returns the unconditionally created pages (zero-argument
// Skolem creations with an empty governing conjunction) — the roots a
// browser can start from.
func (ev *Evaluator) EntryPoints() []PageRef {
	var out []PageRef
	seen := map[string]bool{}
	for _, c := range ev.Schema.Creations {
		if len(c.Where) == 0 && len(c.Args) == 0 && !seen[c.Fn] {
			seen[c.Fn] = true
			out = append(out, PageRef{Fn: c.Fn})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn < out[j].Fn })
	return out
}

// OIDFor returns the page oid of a ref, consistent with static
// evaluation's Skolem naming.
func (ev *Evaluator) OIDFor(ref PageRef) graph.OID {
	oid := ev.env.OID(ref.Fn, ref.Args)
	ev.refs[oid] = ref
	return oid
}

// RefFor resolves a previously issued page oid back to its ref.
func (ev *Evaluator) RefFor(oid graph.OID) (PageRef, bool) {
	r, ok := ev.refs[oid]
	return r, ok
}

// Page computes (or returns from cache) the contents of one page.
func (ev *Evaluator) Page(ref PageRef) (*PageData, error) {
	oid := ev.OIDFor(ref)
	if pd, ok := ev.cache[oid]; ok {
		ev.stats.CacheHits++
		return pd, nil
	}
	pd, err := ev.compute(ref, oid)
	if err != nil {
		return nil, err
	}
	ev.cache[oid] = pd
	ev.stats.PagesComputed++
	if ev.Lookahead {
		// Precompute "lookahead" results for reachable pages (§2.5), one
		// level deep.
		for _, l := range pd.Links {
			loid := ev.OIDFor(l)
			if _, ok := ev.cache[loid]; ok {
				continue
			}
			lpd, err := ev.compute(l, loid)
			if err != nil {
				return nil, err
			}
			ev.cache[loid] = lpd
			ev.stats.PagesComputed++
		}
	}
	return pd, nil
}

// compute runs the incremental query of every schema edge leaving the
// page's Skolem function, with the page's arguments pre-bound.
func (ev *Evaluator) compute(ref PageRef, oid graph.OID) (*PageData, error) {
	pd := &PageData{OID: oid, Ref: ref}
	for _, e := range ev.Schema.OutEdges(ref.Fn) {
		if len(e.FromArgs) != len(ref.Args) {
			continue // a different creation shape of the same function
		}
		seed := &struql.Bindings{Vars: e.FromArgs, Rows: [][]graph.Value{ref.Args}}
		b, err := struql.EvalWhere(e.Where, ev.Data, seed, nil)
		if err != nil {
			return nil, fmt.Errorf("dynamic: page %s: %w", oid, err)
		}
		ev.stats.QueriesRun++
		for ri := range b.Rows {
			label := e.Label.Lit
			if e.Label.IsVar {
				label = b.Lookup(ri, e.Label.Var).Text()
			}
			if e.To == schema.NS {
				v, err := nsTarget(e, b, ri)
				if err != nil {
					return nil, fmt.Errorf("dynamic: page %s: %w", oid, err)
				}
				pd.Out = append(pd.Out, graph.Edge{From: oid, Label: label, To: v})
				continue
			}
			args := make([]graph.Value, len(e.ToArgs))
			for i, a := range e.ToArgs {
				args[i] = b.Lookup(ri, a)
				if args[i].IsNull() {
					return nil, fmt.Errorf("dynamic: page %s: target argument %s unbound", oid, a)
				}
			}
			tref := PageRef{Fn: e.To, Args: args}
			toid := ev.OIDFor(tref)
			pd.Out = append(pd.Out, graph.Edge{From: oid, Label: label, To: graph.NewNode(toid)})
			pd.Links = append(pd.Links, tref)
		}
	}
	sortEdges(pd.Out)
	dedupLinks(pd)
	return pd, nil
}

// nsTarget resolves an NS-edge target: the recorded text is a variable
// name or a constant in term syntax.
func nsTarget(e schema.Edge, b *struql.Bindings, ri int) (graph.Value, error) {
	txt := e.ToArgs[0]
	if v := b.Lookup(ri, txt); !v.IsNull() {
		return v, nil
	}
	t, err := parseTermText(txt)
	if err != nil {
		return graph.Null, err
	}
	return t, nil
}

func parseTermText(s string) (graph.Value, error) {
	q, err := struql.Parse(`where C(x), x -> "l" -> ` + s + ` create N(x)`)
	if err != nil {
		return graph.Null, fmt.Errorf("cannot resolve NS target %q", s)
	}
	pc := q.Blocks[0].Where[1].(*struql.PathCond)
	if pc.To.IsVar() {
		// An unbound variable denotes no value for this row.
		return graph.Null, fmt.Errorf("NS target variable %q unbound", s)
	}
	return pc.To.Const, nil
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To.Key() < b.To.Key()
	})
}

func dedupLinks(pd *PageData) {
	// Dedup edges.
	outSeen := map[graph.Edge]bool{}
	edges := pd.Out[:0]
	for _, e := range pd.Out {
		if !outSeen[e] {
			outSeen[e] = true
			edges = append(edges, e)
		}
	}
	pd.Out = edges
	// Dedup links by oid-ish key.
	seen := map[string]bool{}
	links := pd.Links[:0]
	for _, l := range pd.Links {
		key := l.Fn + "\x00" + keyOfArgs(l.Args)
		if !seen[key] {
			seen[key] = true
			links = append(links, l)
		}
	}
	pd.Links = links
}

func keyOfArgs(args []graph.Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Key()
	}
	return strings.Join(parts, "\x00")
}

// Invalidate drops cached pages affected by a data delta: pages of
// Skolem functions whose edge queries depend on a changed label,
// collection, or (for arc variables) on edges of changed objects.
func (ev *Evaluator) Invalidate(d *mediator.Delta) int {
	dropped := 0
	for oid, pd := range ev.cache {
		if affectedBy(ev.deps[pd.Ref.Fn], d, ev.Data) {
			delete(ev.cache, oid)
			dropped++
		}
	}
	return dropped
}

// CacheSize returns the number of cached pages.
func (ev *Evaluator) CacheSize() int { return len(ev.cache) }

// MaterializeAll walks the whole reachable page space from the entry
// points and returns the site graph it induces — useful to verify that
// dynamic evaluation agrees with static evaluation.
func (ev *Evaluator) MaterializeAll() (*graph.Graph, error) {
	g := graph.New()
	var queue []PageRef
	queue = append(queue, ev.EntryPoints()...)
	seen := map[graph.OID]bool{}
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		oid := ev.OIDFor(ref)
		if seen[oid] {
			continue
		}
		seen[oid] = true
		pd, err := ev.Page(ref)
		if err != nil {
			return nil, err
		}
		g.AddNode(oid)
		for _, e := range pd.Out {
			g.AddEdge(e.From, e.Label, e.To)
		}
		queue = append(queue, pd.Links...)
	}
	return g, nil
}
