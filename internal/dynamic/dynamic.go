// Package dynamic implements dynamic ("click-time") computation of site
// graphs (§2.5, §7). The prototype's static approach materializes the
// whole site before anyone browses it; that is infeasible for sites whose
// data changes frequently or whose pages depend on user input. Site
// schemas make the alternative possible: they specify, for each node in
// the site graph, the queries that must be evaluated to compute the
// node's contents — its outgoing edges.
//
// Evaluator answers "what are this page's edges?" by running, for each
// site-schema edge leaving the page's Skolem function, the edge's
// governing conjunction with the page's Skolem arguments pre-bound.
// Computed pages are cached (the optimization the paper describes as
// reusing "information derived for already browsed pages"), and optional
// lookahead precomputes the pages a just-computed page links to.
//
// The package also provides the incremental re-evaluation used by
// experiment E8: after an additive data change, only the query blocks
// whose conditions mention the changed attributes or collections are
// re-run, and the site graph grows by exactly the new objects and edges.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

// PageRef identifies a dynamic page: a Skolem function and its argument
// values.
type PageRef struct {
	Fn   string
	Args []graph.Value
}

// PageData is the computed content of one page: the node's outgoing
// edges in the virtual site graph, plus the PageRefs of linked dynamic
// pages (for navigation and lookahead).
type PageData struct {
	OID   graph.OID
	Ref   PageRef
	Out   []graph.Edge
	Links []PageRef
}

// Stats counts evaluator work for the static-vs-dynamic experiments.
type Stats struct {
	PagesComputed int
	CacheHits     int
	QueriesRun    int
}

// Evaluator computes pages on demand from the site schema and the data
// graph. It is safe for concurrent use: the page cache is shared under a
// lock, concurrent requests for the same uncomputed page share one
// evaluation (per-page single-flight), and different pages evaluate in
// parallel. The data source can be swapped atomically at runtime
// (SwapData), which is how the hot-reload loop publishes a freshly
// re-wrapped graph without ever exposing a partially built one.
type Evaluator struct {
	Schema *schema.Schema
	// Lookahead precomputes linked pages after each page computation.
	// Set it before serving; it is read without synchronization.
	Lookahead bool
	// Obs, when non-nil, receives cache hit/miss, coalesce, and query
	// counts. Set it before serving (read without synchronization); nil
	// disables instrumentation.
	Obs *obs.ServeMetrics

	env *struql.SkolemEnv
	// deps maps each Skolem function to the attribute labels and
	// collection names its edge queries depend on; "*" means everything
	// (an arc variable ranges over the whole schema).
	deps map[string]map[string]bool

	// mu guards state, refs, stats, and env (SkolemEnv memoizes and is
	// not itself concurrency-safe).
	mu    sync.Mutex
	state *evalState
	refs  map[graph.OID]PageRef
	stats Stats
}

// evalState is one generation of the evaluator: a data source and the
// page cache computed against it. A request snapshots the state once and
// serves entirely from it, so no request ever observes a torn graph —
// SwapData publishes a complete replacement state, and requests that
// started earlier finish against the generation they began with.
type evalState struct {
	src struql.Source
	// gen is the data generation this state serves: it increases by one
	// per swap (or jumps to the explicit generation a fleet coordinator
	// assigns, so every replica of a fleet agrees on the number). A page
	// rendered against this state is a pure function of gen — that is
	// what makes generation-scoped ETags sound.
	gen int64

	mu     sync.Mutex
	cache  map[graph.OID]*PageData
	flight map[graph.OID]*flightCall
}

// flightCall is one in-progress page computation shared by concurrent
// requesters of the same page.
type flightCall struct {
	done chan struct{}
	pd   *PageData
	err  error
}

func newEvalState(src struql.Source) *evalState {
	return &evalState{
		src:    src,
		cache:  map[graph.OID]*PageData{},
		flight: map[graph.OID]*flightCall{},
	}
}

// NewEvaluator returns an evaluator over a site schema and data source.
func NewEvaluator(s *schema.Schema, data struql.Source) *Evaluator {
	ev := &Evaluator{
		Schema: s,
		env:    struql.NewSkolemEnv(),
		state:  newEvalState(data),
		refs:   map[graph.OID]PageRef{},
		deps:   map[string]map[string]bool{},
	}
	for _, fn := range s.Nodes {
		if fn == schema.NS {
			continue
		}
		set := map[string]bool{}
		for _, e := range s.OutEdges(fn) {
			condDeps(e.Where, set, map[string][]string{})
		}
		ev.deps[fn] = set
	}
	return ev
}

// snapshot returns the current state; callers that must be self-consistent
// across several reads (one HTTP request) capture it once.
func (ev *Evaluator) snapshot() *evalState {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.state
}

// Source returns the current data source. Within one request, prefer
// capturing it once (the server does, via its render snapshot).
func (ev *Evaluator) Source() struql.Source { return ev.snapshot().src }

// Generation returns the current data generation: 0 at construction,
// increasing with every swap. A page response tagged with a generation
// was computed entirely against that generation's data.
func (ev *Evaluator) Generation() int64 { return ev.snapshot().gen }

// SourceGen returns the data source and its generation from one atomic
// snapshot: a query evaluated against the returned source is a pure
// function of the returned generation. Calling Source and Generation
// separately can straddle a swap; cursor-resumable query evaluation
// needs the pair to be consistent.
func (ev *Evaluator) SourceGen() (struql.Source, int64) {
	st := ev.snapshot()
	return st.src, st.gen
}

// SwapData atomically replaces the data source. Cached pages whose edge
// queries are unaffected by the delta carry over (the same soundness
// argument as Invalidate); affected ones are dropped. A nil delta means
// "unknown change" and drops the whole cache. Requests already in flight
// finish against the previous generation — they serve a consistent,
// slightly stale page rather than a torn one.
func (ev *Evaluator) SwapData(src struql.Source, d *mediator.Delta) (kept, dropped int) {
	return ev.SwapDataAt(src, d, -1)
}

// SwapDataAt is SwapData with an explicit target generation, used by the
// fleet coordinator to move every replica to the same generation number.
// gen < 0 means "previous generation + 1" (what SwapData does); a gen at
// or below the current one also falls back to +1, preserving
// monotonicity.
func (ev *Evaluator) SwapDataAt(src struql.Source, d *mediator.Delta, gen int64) (kept, dropped int) {
	next := newEvalState(src)
	old := ev.snapshot()
	if gen > old.gen {
		next.gen = gen
	} else {
		next.gen = old.gen + 1
	}
	old.mu.Lock()
	for oid, pd := range old.cache {
		if d == nil || affectedBy(ev.deps[pd.Ref.Fn], d, src) {
			dropped++
			continue
		}
		next.cache[oid] = pd
		kept++
	}
	old.mu.Unlock()
	ev.mu.Lock()
	ev.state = next
	ev.mu.Unlock()
	return kept, dropped
}

// Stats returns a copy of the work counters.
func (ev *Evaluator) StatsSnapshot() Stats {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.stats
}

func (ev *Evaluator) countStat(f func(*Stats)) {
	ev.mu.Lock()
	f(&ev.stats)
	ev.mu.Unlock()
}

// EntryPoints returns the unconditionally created pages (zero-argument
// Skolem creations with an empty governing conjunction) — the roots a
// browser can start from.
func (ev *Evaluator) EntryPoints() []PageRef {
	var out []PageRef
	seen := map[string]bool{}
	for _, c := range ev.Schema.Creations {
		if len(c.Where) == 0 && len(c.Args) == 0 && !seen[c.Fn] {
			seen[c.Fn] = true
			out = append(out, PageRef{Fn: c.Fn})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn < out[j].Fn })
	return out
}

// OIDFor returns the page oid of a ref, consistent with static
// evaluation's Skolem naming.
func (ev *Evaluator) OIDFor(ref PageRef) graph.OID {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	oid := ev.env.OID(ref.Fn, ref.Args)
	ev.refs[oid] = ref
	return oid
}

// RefFor resolves a previously issued page oid back to its ref.
func (ev *Evaluator) RefFor(oid graph.OID) (PageRef, bool) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	r, ok := ev.refs[oid]
	return r, ok
}

// Page computes (or returns from cache) the contents of one page.
func (ev *Evaluator) Page(ref PageRef) (*PageData, error) {
	return ev.PageCtx(context.Background(), ref)
}

// PageCtx is Page under a request context: evaluation is cancelled at
// operator boundaries when the context ends, and a caller waiting on
// another request's in-flight computation of the same page stops waiting
// when its own context ends.
func (ev *Evaluator) PageCtx(ctx context.Context, ref PageRef) (*PageData, error) {
	return ev.pageIn(ctx, ev.snapshot(), ref, ev.Lookahead)
}

// pageIn computes (or returns from cache) one page against a specific
// state generation, with per-page single-flight: the first requester of
// an uncomputed page becomes the leader and evaluates it; concurrent
// requesters wait for the leader's result. A leader cancelled mid-flight
// does not poison the page — its context error is not cached, and one of
// the waiters takes over as the new leader.
func (ev *Evaluator) pageIn(ctx context.Context, st *evalState, ref PageRef, lookahead bool) (*PageData, error) {
	oid := ev.OIDFor(ref)
	for {
		st.mu.Lock()
		if pd, ok := st.cache[oid]; ok {
			st.mu.Unlock()
			ev.countStat(func(s *Stats) { s.CacheHits++ })
			if ev.Obs != nil {
				ev.Obs.PageCacheHits.Inc()
			}
			return pd, nil
		}
		if c, ok := st.flight[oid]; ok {
			st.mu.Unlock()
			if ev.Obs != nil {
				ev.Obs.Coalesced.Inc()
			}
			select {
			case <-c.done:
				if c.err == nil {
					ev.countStat(func(s *Stats) { s.CacheHits++ })
					return c.pd, nil
				}
				if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
					continue // the leader was cancelled; try to take over
				}
				return nil, c.err
			case <-ctx.Done():
				return nil, fmt.Errorf("dynamic: page %s: %w", oid, ctx.Err())
			}
		}
		c := &flightCall{done: make(chan struct{})}
		st.flight[oid] = c
		st.mu.Unlock()
		if ev.Obs != nil {
			ev.Obs.PageCacheMisses.Inc()
		}

		pd, err := ev.compute(ctx, st, ref, oid)
		st.mu.Lock()
		delete(st.flight, oid)
		if err == nil {
			st.cache[oid] = pd
		}
		st.mu.Unlock()
		c.pd, c.err = pd, err
		close(c.done)
		if err != nil {
			return nil, err
		}
		ev.countStat(func(s *Stats) { s.PagesComputed++ })
		if ev.Obs != nil {
			ev.Obs.PagesComputed.Inc()
		}
		if lookahead {
			// Precompute "lookahead" results for reachable pages (§2.5),
			// one level deep (lookahead=false below stops the recursion).
			for _, l := range pd.Links {
				loid := ev.OIDFor(l)
				st.mu.Lock()
				_, cached := st.cache[loid]
				st.mu.Unlock()
				if cached {
					continue
				}
				if _, err := ev.pageIn(ctx, st, l, false); err != nil {
					return nil, err
				}
			}
		}
		return pd, nil
	}
}

// compute runs the incremental query of every schema edge leaving the
// page's Skolem function, with the page's arguments pre-bound.
func (ev *Evaluator) compute(ctx context.Context, st *evalState, ref PageRef, oid graph.OID) (*PageData, error) {
	pd := &PageData{OID: oid, Ref: ref}
	for _, e := range ev.Schema.OutEdges(ref.Fn) {
		if len(e.FromArgs) != len(ref.Args) {
			continue // a different creation shape of the same function
		}
		seed := &struql.Bindings{Vars: e.FromArgs, Rows: [][]graph.Value{ref.Args}}
		b, err := struql.EvalWhereCtx(ctx, e.Where, st.src, seed, nil)
		if err != nil {
			return nil, fmt.Errorf("dynamic: page %s: %w", oid, err)
		}
		ev.countStat(func(s *Stats) { s.QueriesRun++ })
		if ev.Obs != nil {
			ev.Obs.QueriesRun.Inc()
		}
		for ri := range b.Rows {
			label := e.Label.Lit
			if e.Label.IsVar {
				label = b.Lookup(ri, e.Label.Var).Text()
			}
			if e.To == schema.NS {
				v, err := nsTarget(e, b, ri)
				if err != nil {
					return nil, fmt.Errorf("dynamic: page %s: %w", oid, err)
				}
				pd.Out = append(pd.Out, graph.Edge{From: oid, Label: label, To: v})
				continue
			}
			args := make([]graph.Value, len(e.ToArgs))
			for i, a := range e.ToArgs {
				args[i] = b.Lookup(ri, a)
				if args[i].IsNull() {
					return nil, fmt.Errorf("dynamic: page %s: target argument %s unbound", oid, a)
				}
			}
			tref := PageRef{Fn: e.To, Args: args}
			toid := ev.OIDFor(tref)
			pd.Out = append(pd.Out, graph.Edge{From: oid, Label: label, To: graph.NewNode(toid)})
			pd.Links = append(pd.Links, tref)
		}
	}
	sortEdges(pd.Out)
	dedupLinks(pd)
	return pd, nil
}

// nsTarget resolves an NS-edge target: the recorded text is a variable
// name or a constant in term syntax.
func nsTarget(e schema.Edge, b *struql.Bindings, ri int) (graph.Value, error) {
	txt := e.ToArgs[0]
	if v := b.Lookup(ri, txt); !v.IsNull() {
		return v, nil
	}
	t, err := parseTermText(txt)
	if err != nil {
		return graph.Null, err
	}
	return t, nil
}

func parseTermText(s string) (graph.Value, error) {
	q, err := struql.Parse(`where C(x), x -> "l" -> ` + s + ` create N(x)`)
	if err != nil {
		return graph.Null, fmt.Errorf("cannot resolve NS target %q", s)
	}
	pc := q.Blocks[0].Where[1].(*struql.PathCond)
	if pc.To.IsVar() {
		// An unbound variable denotes no value for this row.
		return graph.Null, fmt.Errorf("NS target variable %q unbound", s)
	}
	return pc.To.Const, nil
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To.Key() < b.To.Key()
	})
}

func dedupLinks(pd *PageData) {
	// Dedup edges.
	outSeen := map[graph.Edge]bool{}
	edges := pd.Out[:0]
	for _, e := range pd.Out {
		if !outSeen[e] {
			outSeen[e] = true
			edges = append(edges, e)
		}
	}
	pd.Out = edges
	// Dedup links by oid-ish key.
	seen := map[string]bool{}
	links := pd.Links[:0]
	for _, l := range pd.Links {
		key := l.Fn + "\x00" + keyOfArgs(l.Args)
		if !seen[key] {
			seen[key] = true
			links = append(links, l)
		}
	}
	pd.Links = links
}

func keyOfArgs(args []graph.Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Key()
	}
	return strings.Join(parts, "\x00")
}

// Invalidate drops cached pages affected by a data delta: pages of
// Skolem functions whose edge queries depend on a changed label,
// collection, or (for arc variables) on edges of changed objects. Use it
// when the data source object was mutated in place; when a whole new
// graph replaces the old one, SwapData applies the same dependency test
// while switching sources atomically.
func (ev *Evaluator) Invalidate(d *mediator.Delta) int {
	st := ev.snapshot()
	st.mu.Lock()
	defer st.mu.Unlock()
	dropped := 0
	for oid, pd := range st.cache {
		if affectedBy(ev.deps[pd.Ref.Fn], d, st.src) {
			delete(st.cache, oid)
			dropped++
		}
	}
	return dropped
}

// CacheSize returns the number of cached pages.
func (ev *Evaluator) CacheSize() int {
	st := ev.snapshot()
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.cache)
}

// MaterializeAll walks the whole reachable page space from the entry
// points and returns the site graph it induces — useful to verify that
// dynamic evaluation agrees with static evaluation.
func (ev *Evaluator) MaterializeAll() (*graph.Graph, error) {
	g := graph.New()
	var queue []PageRef
	queue = append(queue, ev.EntryPoints()...)
	seen := map[graph.OID]bool{}
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		oid := ev.OIDFor(ref)
		if seen[oid] {
			continue
		}
		seen[oid] = true
		pd, err := ev.Page(ref)
		if err != nil {
			return nil, err
		}
		g.AddNode(oid)
		for _, e := range pd.Out {
			g.AddEdge(e.From, e.Label, e.To)
		}
		queue = append(queue, pd.Links...)
	}
	return g, nil
}
