package dynamic

import (
	"math/rand"
	"testing"
	"time"

	"strudel/internal/graph"
)

// Regression tests pinning the reloader's backoff/jitter contract: the
// nominal delay doubles from BackoffMin and clamps at BackoffMax, and
// the *scheduled* retry instant stays within ±Jitter of the nominal
// delay — never sooner than (1-Jitter)·delay (which would hammer a
// down source) and never later than (1+Jitter)·delay (which would
// stretch degraded windows unboundedly).

// nextGate reads the absolute retry gate the last failure scheduled.
func nextGate(rl *Reloader) time.Time {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.backoff
}

func TestReloaderJitterWithinBounds(t *testing.T) {
	const jitter = 0.25
	version := 0
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 1), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	rl.Attach(nil, NewHealth())
	rl.Jitter = jitter
	rl.rng = rand.New(rand.NewSource(42)) // deterministic jitter samples

	version = 1
	touchFile(t, path, "gen1")
	fl.FailNext(1000, errInjected)

	now := time.Now()
	rl.Tick(now)
	nominal := rl.BackoffMin
	for i := 0; i < 40; i++ {
		if got := rl.RetryDelay(); got != nominal {
			t.Fatalf("attempt %d: nominal delay = %v, want %v", i, got, nominal)
		}
		gap := nextGate(rl).Sub(now)
		lo := time.Duration(float64(nominal) * (1 - jitter))
		hi := time.Duration(float64(nominal) * (1 + jitter))
		if gap < lo || gap > hi {
			t.Fatalf("attempt %d: scheduled retry %v outside jitter bounds [%v, %v] of nominal %v",
				i, gap, lo, hi, nominal)
		}
		// Step just past the gate and fail again.
		now = nextGate(rl).Add(time.Millisecond)
		rl.Tick(now)
		if nominal *= 2; nominal > rl.BackoffMax {
			nominal = rl.BackoffMax
		}
	}
}

func TestReloaderZeroJitterSchedulesExactly(t *testing.T) {
	version := 0
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 1), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	rl.Attach(nil, NewHealth())
	// newTestReloader sets Jitter = 0: the schedule must be exact.
	version = 1
	touchFile(t, path, "gen1")
	fl.FailNext(10, errInjected)

	now := time.Now()
	rl.Tick(now)
	for _, want := range []time.Duration{
		100 * time.Millisecond, // BackoffMin
		200 * time.Millisecond, // doubled
		400 * time.Millisecond, // doubled to the cap
		400 * time.Millisecond, // clamped at BackoffMax
	} {
		if gap := nextGate(rl).Sub(now); gap != want {
			t.Fatalf("zero-jitter gate = %v after now, want exactly %v", gap, want)
		}
		now = nextGate(rl).Add(time.Millisecond)
		rl.Tick(now)
	}
}
