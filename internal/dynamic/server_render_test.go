package dynamic

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// embedQuery builds pages that embed other dynamic pages, reference
// data-graph objects, and carry file attributes — exercising the server's
// renderer paths.
const embedQuery = `
create Root()
link Root() -> "title" -> "Dyn"

where Items(x)
create Card(x)
link Root() -> "Card" -> Card(x),
     Card(x) -> "self" -> x
{
  where x -> "name" -> n
  link Card(x) -> "name" -> n
}
{
  where x -> "pic" -> p
  link Card(x) -> "pic" -> p
}
`

func embedData() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Items", "i1")
	g.AddEdge("i1", "name", graph.NewString("First"))
	g.AddEdge("i1", "pic", graph.NewFile(graph.FileImage, "p.gif"))
	g.AddEdge("i1", "doc", graph.NewFile(graph.FilePostScript, "d.ps"))
	return g
}

func TestServerEmbedsDynamicPages(t *testing.T) {
	q := struql.MustParse(embedQuery)
	ev := NewEvaluator(schema.Build(q), struql.NewGraphSource(embedData()))
	ts := template.NewSet()
	ts.MustAdd("header", `<i>dyn</i>`)
	ts.MustAdd("Root", `<SINCLUDE header><h1><SFMT title></h1><SFMT Card EMBED UL>`)
	ts.MustAdd("Card", `[<SFMT name>|<SFMT pic>|<SFMT self EMBED>]`)
	srv := NewServer(ev, ts)
	srv.Root = PageRef{Fn: "Root"}
	srv.PerFn["Root"] = "Root"
	srv.PerFn["Card"] = "Card"
	out, err := srv.RenderPage(PageRef{Fn: "Root"})
	if err != nil {
		t.Fatal(err)
	}
	// SINCLUDE resolved.
	if !strings.Contains(out, "<i>dyn</i>") {
		t.Errorf("include missing:\n%s", out)
	}
	// Embedded dynamic Card page rendered inline.
	if !strings.Contains(out, "[First|") {
		t.Errorf("embedded card missing:\n%s", out)
	}
	// File atom rendered as an img tag.
	if !strings.Contains(out, `<img src="p.gif">`) {
		t.Errorf("image missing:\n%s", out)
	}
	// Embedded data-graph object (self) rendered as attribute dump,
	// including the postscript link path.
	if !strings.Contains(out, "name: First") {
		t.Errorf("data-object embed missing:\n%s", out)
	}
}

func TestServerEmbedWithoutTemplateUsesListing(t *testing.T) {
	q := struql.MustParse(embedQuery)
	ev := NewEvaluator(schema.Build(q), struql.NewGraphSource(embedData()))
	ts := template.NewSet()
	ts.MustAdd("Root", `<SFMT Card EMBED>`)
	srv := NewServer(ev, ts)
	srv.PerFn["Root"] = "Root"
	out, err := srv.RenderPage(PageRef{Fn: "Root"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<dt>name</dt><dd>First</dd>") {
		t.Errorf("default listing for embedded page missing:\n%s", out)
	}
}

func TestServerRenderFilePostScript(t *testing.T) {
	r := &dynRenderer{}
	out, err := r.RenderFile(graph.NewFile(graph.FilePostScript, "x.ps"), false)
	if err != nil || !strings.Contains(out, `<a href="x.ps">`) {
		t.Errorf("out = %q, err = %v", out, err)
	}
}

func TestPathDepsVariants(t *testing.T) {
	set := map[string]bool{}
	pathDeps(struql.MustParsePathExpr(`("a"|"b")."c"*`), set)
	if !set["label:a"] || !set["label:b"] || !set["label:c"] {
		t.Errorf("deps = %v", set)
	}
	set2 := map[string]bool{}
	pathDeps(struql.MustParsePathExpr(`~"x.*"`), set2)
	if !set2["*"] {
		t.Errorf("regex pred should be *, got %v", set2)
	}
	set3 := map[string]bool{}
	pathDeps(struql.MustParsePathExpr(`_`), set3)
	if !set3["*"] {
		t.Errorf("any pred should be *, got %v", set3)
	}
}
