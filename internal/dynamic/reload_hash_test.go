package dynamic

import (
	"os"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
)

// TestReloaderDetectsSameSizeSameMtimeEdit covers the sub-second edit
// hole: a write that keeps the file's size and lands within the mtime
// granularity of the filesystem is invisible to metadata polling. The
// stamp's content hash must catch it.
func TestReloaderDetectsSameSizeSameMtimeEdit(t *testing.T) {
	version := 0
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 2), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mtime := fi.ModTime()

	// Same length as "gen0", and the mtime pinned back to the original:
	// metadata is byte-for-byte identical to the recorded stamp.
	version = 1
	touchFile(t, path, "gen1")
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(mtime) || after.Size() != fi.Size() {
		t.Skipf("filesystem did not pin metadata (mtime %v→%v size %d→%d)",
			mtime, after.ModTime(), fi.Size(), after.Size())
	}

	rl.Tick(time.Now())
	if total, _ := fl.Calls(); total != 2 {
		t.Fatalf("loader called %d times, want 2: same-size same-mtime edit missed", total)
	}
}

// TestReloaderHashOnlyForRecentFiles asserts quiescent files (mtime far
// outside the hash window) are not re-read on every poll.
func TestReloaderHashOnlyForRecentFiles(t *testing.T) {
	rl, _, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(0, 1), nil })
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	st := rl.statPath(path, time.Now())
	if st.hashed {
		t.Error("stale file was hashed; quiescent files should cost one stat")
	}
	recent := time.Now()
	if err := os.Chtimes(path, recent, recent); err != nil {
		t.Fatal(err)
	}
	st = rl.statPath(path, time.Now())
	if !st.hashed {
		t.Error("recently modified file was not hashed")
	}
}

// TestReloaderPendingDeltaOverflow asserts that once the accumulated
// delta outgrows its bound, the swap degrades to a full invalidation
// (nil delta) and the overflow is counted.
func TestReloaderPendingDeltaOverflow(t *testing.T) {
	version := 0
	rl, _, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 4), nil })
	rl.MaxPendingDelta = 1
	m := &obs.IVMMetrics{}
	rl.IVM = m
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	applied := false
	var got *mediator.Delta
	rl.OnApply = func(d *mediator.Delta, kept, dropped int) { applied, got = true, d }

	version = 1 // every pub's year changes: 8 events, far past the bound
	touchFile(t, path, "gen1")
	rl.Tick(time.Now())
	if !applied {
		t.Fatal("reload did not apply")
	}
	if got != nil {
		t.Errorf("overflowed swap passed a %d-event delta, want nil (full invalidation)", got.Size())
	}
	if m.DeltaOverflows.Load() != 1 {
		t.Errorf("delta overflows = %d, want 1", m.DeltaOverflows.Load())
	}
	if m.DeltasApplied.Load() != 1 {
		t.Errorf("deltas applied = %d, want 1", m.DeltasApplied.Load())
	}

	// With the bound back at its default, the next change goes back to
	// delta-based invalidation — overflow is per swap, not sticky.
	rl.MaxPendingDelta = 0
	version = 2
	touchFile(t, path, "gen2")
	rl.Tick(time.Now())
	if got == nil {
		t.Error("post-overflow swap should carry a real delta again")
	}
}
