package dynamic

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// stressQuery serves a root page whose rendered body lists, through the
// template TEXT= mechanism, the "ver" attribute of every publication
// page. Every publication in one data generation carries the same
// version marker, so a single response mixing two markers is direct
// evidence of a torn graph — a render that crossed data generations.
const stressQuery = `
create Root()
where Pubs(x)
create P(x)
link Root() -> "p" -> P(x)
{
  where x -> "ver" -> v
  link P(x) -> "ver" -> v
}
`

const stressPubs = 12

func stressGraph(version int) *graph.Graph {
	g := graph.New()
	marker := fmt.Sprintf("ver%04d", version)
	for i := 0; i < stressPubs; i++ {
		oid := graph.OID(fmt.Sprintf("p%02d", i))
		g.AddToCollection("Pubs", oid)
		g.AddEdge(oid, "ver", graph.NewString(marker))
	}
	return g
}

var verRE = regexp.MustCompile(`ver\d{4}`)

// TestStressServeUnderFaultyReloads is the end-to-end robustness drill:
// 32 concurrent clients hammer the server while the data source is
// reloaded repeatedly, with injected wrapper faults making some reloads
// fail and then recover mid-run. It proves, under -race:
//
//   - no response ever mixes two data generations (no torn graph),
//   - a degraded server keeps serving complete last-good pages while
//     /healthz reports degraded,
//   - recovery restores fresh pages and a healthy /healthz.
func TestStressServeUnderFaultyReloads(t *testing.T) {
	stampPath := filepath.Join(t.TempDir(), "pubs.dat")
	if err := os.WriteFile(stampPath, []byte("gen0"), 0o644); err != nil {
		t.Fatal(err)
	}
	var verMu sync.Mutex
	version := 0
	fl := NewFlakyLoader(func() (*graph.Graph, error) {
		verMu.Lock()
		defer verMu.Unlock()
		return stressGraph(version), nil
	})
	rl, err := NewReloader(WatchedSource{Name: "pubs", Paths: []string{stampPath}, Load: fl.Load})
	if err != nil {
		t.Fatal(err)
	}
	rl.Logger = quietLogger()
	rl.Jitter = 0
	rl.BackoffMin = time.Millisecond
	rl.BackoffMax = 4 * time.Millisecond
	metrics := &obs.ServeMetrics{}
	rl.Obs = metrics
	data, err := rl.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(schema.Build(struql.MustParse(stressQuery)), data)
	ts := template.NewSet()
	ts.MustAdd("Root", `<SFMT p UL TEXT=ver>`)
	srv := NewServer(ev, ts)
	srv.PerFn["Root"] = "Root"
	srv.RequestTimeout = 10 * time.Second
	srv.Obs = metrics
	ev.Obs = metrics
	rl.Attach(ev, srv.Health)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// checkResponse asserts one response is a complete page from exactly
	// one data generation.
	client := &http.Client{Timeout: 15 * time.Second}
	checkResponse := func() string {
		resp, err := client.Get(hs.URL + "/")
		if err != nil {
			t.Errorf("GET /: %v", err)
			return ""
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("GET /: read body: %v", err)
			return ""
		}
		body := string(raw)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET / = %d: %q", resp.StatusCode, body)
			return ""
		}
		markers := verRE.FindAllString(body, -1)
		if len(markers) != stressPubs {
			t.Errorf("response lists %d publications, want %d (partial page):\n%s", len(markers), stressPubs, body)
			return ""
		}
		for _, m := range markers[1:] {
			if m != markers[0] {
				t.Errorf("torn graph: response mixes %s and %s:\n%s", markers[0], m, body)
				return ""
			}
		}
		return markers[0]
	}

	// 32 concurrent clients loop until the drill ends.
	const clients = 32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				checkResponse()
			}
		}()
	}

	// The driver pushes new data generations through the reloader,
	// injecting wrapper faults on every third round.
	waitForVersion := func(v int) {
		want := fmt.Sprintf("ver%04d", v)
		deadline := time.Now().Add(10 * time.Second)
		for {
			if got := checkResponse(); got == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("version %s never served", want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	const rounds = 12
	degradedWindows := 0
	for round := 1; round <= rounds; round++ {
		verMu.Lock()
		version = round
		verMu.Unlock()
		if err := os.WriteFile(stampPath, []byte(strings.Repeat("g", round+1)), 0o644); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			// This round's reload fails twice before recovering.
			fl.FailNext(2, errInjected)
			rl.Tick(time.Now())
			if !srv.Health.Degraded() {
				t.Fatalf("round %d: health not degraded after failed reload", round)
			}
			degradedWindows++
			// Degraded mode: last-good pages still serve, complete and
			// consistent, while /healthz says degraded.
			if got := checkResponse(); got != fmt.Sprintf("ver%04d", round-1) {
				t.Errorf("round %d: degraded server serves %q, want last-good ver%04d", round, got, round-1)
			}
			if body := readBody1(t, client, hs.URL+"/healthz"); !strings.Contains(body, `"status":"degraded"`) {
				t.Errorf("round %d: healthz while degraded: %s", round, body)
			}
			// Retry (per backoff) until the source recovers.
			deadline := time.Now().Add(10 * time.Second)
			for srv.Health.Degraded() {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: reload never recovered", round)
				}
				time.Sleep(2 * time.Millisecond)
				rl.Tick(time.Now())
			}
		} else {
			rl.Tick(time.Now())
		}
		waitForVersion(round)
	}
	close(stop)
	wg.Wait()

	if degradedWindows == 0 {
		t.Error("drill never exercised a degraded window")
	}
	_, failed := fl.Calls()
	if failed < degradedWindows {
		t.Errorf("injected faults: %d failed loads over %d windows", failed, degradedWindows)
	}
	if body := readBody1(t, client, hs.URL+"/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("final healthz: %s", body)
	}

	// Reload accounting regression: failed ROUNDS count degraded windows
	// (one per window, however many backoff retries it took to recover),
	// while failed ATTEMPTS count every injected fault. Before the
	// transition-based fix, rounds equaled attempts.
	if got := metrics.ReloadRoundsFailed.Load(); got != int64(degradedWindows) {
		t.Errorf("reload_rounds_failed = %d, want %d (one per degraded window)", got, degradedWindows)
	}
	if got := metrics.ReloadFailures.Load(); got != int64(failed) {
		t.Errorf("reload_failures = %d, want %d (one per failed attempt)", got, failed)
	}
	if hst := srv.Health.Snapshot(ev.CacheSize()); hst.FailedRounds != degradedWindows {
		t.Errorf("healthz failedRounds = %d, want %d", hst.FailedRounds, degradedWindows)
	} else if hst.Failures != failed {
		t.Errorf("healthz failures = %d, want %d", hst.Failures, failed)
	}
	if got := metrics.ReloadApplied.Load(); got != rounds {
		t.Errorf("reload_applied = %d, want %d", got, rounds)
	}
	// Serving-side metrics were live during the drill.
	if metrics.Requests.Load() == 0 || metrics.RequestNanos.Count() == 0 {
		t.Error("request metrics not recorded during the drill")
	}
	if metrics.PagesComputed.Load() == 0 {
		t.Error("no page computations recorded")
	}
	if got := metrics.InFlight.Load(); got != 0 {
		t.Errorf("in_flight = %d after drain, want 0", got)
	}
}

func readBody1(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return readBody(t, resp)
}
