package dynamic

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

// incrementalFixture returns the query, a data graph, and a fresh state.
func incrementalFixture(t *testing.T) (*struql.Query, *graph.Graph, *IncrementalState) {
	t.Helper()
	q := struql.MustParse(siteQuery)
	data := testData()
	st, err := NewIncrementalState(q, struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	return q, data, st
}

func TestIncrementalStateMatchesMonolithicEval(t *testing.T) {
	q, data, st := incrementalFixture(t)
	full, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Site().Dump() != full.Graph.Dump() {
		t.Errorf("partitioned evaluation differs:\n--- partitioned\n%s--- monolithic\n%s",
			st.Site().Dump(), full.Graph.Dump())
	}
}

func TestIncrementalStateHandlesRemovals(t *testing.T) {
	q, data, st := incrementalFixture(t)
	// Remove pub2's year: YearPage(1998) must lose its paper; since pub2
	// was the only 1998 paper, the year page's edges disappear.
	rebuilt := graph.New()
	data.Edges(func(e graph.Edge) bool {
		if !(e.From == "pub2" && e.Label == "year") {
			rebuilt.AddEdge(e.From, e.Label, e.To)
		}
		return true
	})
	for _, c := range data.CollectionNames() {
		for _, m := range data.Collection(c) {
			rebuilt.AddToCollection(c, m)
		}
	}
	delta := mediator.Diff(data, rebuilt)
	if len(delta.RemovedEdges) != 1 {
		t.Fatalf("delta = %+v", delta)
	}
	n, err := st.Apply(struql.NewGraphSource(rebuilt), delta)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("removal should re-evaluate at least one block")
	}
	full, err := struql.Eval(q, struql.NewGraphSource(rebuilt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Site().Dump() != full.Graph.Dump() {
		t.Errorf("after removal, incremental differs from full rebuild:\n--- incremental\n%s--- full\n%s",
			st.Site().Dump(), full.Graph.Dump())
	}
	if st.Site().HasEdge("YearPage(1998)", "Paper", graph.NewNode("PaperPage(pub2)")) {
		t.Error("stale edge survived the removal")
	}
}

func TestIncrementalStateSkipsUnrelatedChanges(t *testing.T) {
	_, data, st := incrementalFixture(t)
	data.AddEdge("noise", "unrelated", graph.NewInt(1))
	delta := &mediator.Delta{AddedEdges: []graph.Edge{{From: "noise", Label: "unrelated", To: graph.NewInt(1)}}}
	n, err := st.Apply(struql.NewGraphSource(data), delta)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-evaluated %d blocks for an unrelated change", n)
	}
}

func TestIncrementalStateRepeatedApplications(t *testing.T) {
	q, data, st := incrementalFixture(t)
	// Apply three successive additive changes and verify against a full
	// rebuild each time.
	for i := 0; i < 3; i++ {
		oid := graph.OID("extra" + string(rune('0'+i)))
		prev := data.Copy()
		data.AddToCollection("Publications", oid)
		data.AddEdge(oid, "title", graph.NewString("Extra"))
		data.AddEdge(oid, "year", graph.NewInt(int64(2000+i)))
		delta := mediator.Diff(prev, data)
		if _, err := st.Apply(struql.NewGraphSource(data), delta); err != nil {
			t.Fatal(err)
		}
		full, err := struql.Eval(q, struql.NewGraphSource(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Site().Dump() != full.Graph.Dump() {
			t.Fatalf("iteration %d: incremental state diverged", i)
		}
	}
}

func TestIncrementalStateEmptyDelta(t *testing.T) {
	_, data, st := incrementalFixture(t)
	n, err := st.Apply(struql.NewGraphSource(data), &mediator.Delta{})
	if err != nil || n != 0 {
		t.Errorf("empty delta: n=%d err=%v", n, err)
	}
}
