package dynamic

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

func TestBlockDepsRefinesArcVariables(t *testing.T) {
	// where Publications(x) { where x -> l -> v ... } depends on edges of
	// Publications members, not on every edge in the database.
	q := struql.MustParse(`
where Publications(x)
create P(x)
{ where x -> l -> v link P(x) -> l -> v }
`)
	deps := BlockDeps(q.Blocks[0])
	if deps["*"] {
		t.Errorf("deps = %v; collection-constrained arc variable should not be *", deps)
	}
	if !deps["edges-of:Publications"] || !deps["coll:Publications"] {
		t.Errorf("deps = %v", deps)
	}
	// An unconstrained arc variable still depends on everything.
	q2 := struql.MustParse(`where a -> l -> v create N(a)`)
	if !BlockDeps(q2.Blocks[0])["*"] {
		t.Error("unconstrained arc variable must depend on *")
	}
}

func TestAffectedByMembershipRefinement(t *testing.T) {
	data := graph.New()
	data.AddToCollection("Publications", "pub1")
	data.AddToCollection("Patents", "pat1")
	data.AddEdge("pub1", "title", graph.NewString("T"))
	data.AddEdge("pat1", "number", graph.NewString("US1"))
	src := struql.NewGraphSource(data)
	deps := map[string]bool{"edges-of:Publications": true, "coll:Publications": true}

	// An edge on a patent does not affect a publications-only block.
	patDelta := &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "pat1", Label: "year", To: graph.NewInt(1998)},
	}}
	if affectedBy(deps, patDelta, src) {
		t.Error("patent edge should not affect a publications block")
	}
	// An edge on a publication does.
	pubDelta := &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "pub1", Label: "year", To: graph.NewInt(1998)},
	}}
	if !affectedBy(deps, pubDelta, src) {
		t.Error("publication edge should affect the block")
	}
	// New membership in the watched collection affects it too.
	memDelta := &mediator.Delta{AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "pubX"}}}
	if !affectedBy(deps, memDelta, src) {
		t.Error("membership change should affect the block")
	}
	// Label-specific dependencies.
	labelDeps := map[string]bool{"label:year": true}
	if !affectedBy(labelDeps, pubDelta, src) {
		t.Error("label:year should match a year edge")
	}
	if affectedBy(labelDeps, &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "x", Label: "other", To: graph.NewInt(1)},
	}}, src) {
		t.Error("label:year should not match an other edge")
	}
	// "*" matches any non-empty delta and nothing on an empty one.
	star := map[string]bool{"*": true}
	if !affectedBy(star, pubDelta, src) || affectedBy(star, &mediator.Delta{}, src) {
		t.Error("* semantics wrong")
	}
}

func TestIncrementalStateLocalizedDelta(t *testing.T) {
	// A two-collection query: a delta on one collection re-evaluates only
	// that collection's block.
	q := struql.MustParse(`
where As(a)
create PA(a)
{ where a -> l -> v link PA(a) -> l -> v }

where Bs(b)
create PB(b)
{ where b -> l -> v link PB(b) -> l -> v }
`)
	data := graph.New()
	data.AddToCollection("As", "a1")
	data.AddEdge("a1", "x", graph.NewInt(1))
	data.AddToCollection("Bs", "b1")
	data.AddEdge("b1", "y", graph.NewInt(2))
	st, err := NewIncrementalState(q, struql.NewGraphSource(data))
	if err != nil {
		t.Fatal(err)
	}
	data.AddEdge("b1", "z", graph.NewInt(3))
	delta := &mediator.Delta{AddedEdges: []graph.Edge{{From: "b1", Label: "z", To: graph.NewInt(3)}}}
	n, err := st.Apply(struql.NewGraphSource(data), delta)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("re-evaluated %d blocks, want 1 (only the Bs block)", n)
	}
	full, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Site().Dump() != full.Graph.Dump() {
		t.Error("localized incremental update diverged from full rebuild")
	}
}

func TestInvalidateUsesMembershipRefinement(t *testing.T) {
	// The evaluator's page cache survives changes to objects outside the
	// collections its queries read.
	ev, _ := newEvaluator(t, testData())
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	patDelta := &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "unrelatedObject", Label: "title", To: graph.NewString("x")},
	}}
	if dropped := ev.Invalidate(patDelta); dropped != 0 {
		t.Errorf("dropped %d pages for an edge outside Publications", dropped)
	}
	// A new "note" edge is invisible to the root page's queries (they
	// read only Publications membership and year edges) — still cached.
	noteDelta := &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "pub1", Label: "note", To: graph.NewString("x")},
	}}
	if dropped := ev.Invalidate(noteDelta); dropped != 0 {
		t.Errorf("dropped %d pages for a note edge the root never reads", dropped)
	}
	// A year edge is load-bearing for the root's YearPage links.
	yearDelta := &mediator.Delta{AddedEdges: []graph.Edge{
		{From: "pub1", Label: "year", To: graph.NewInt(1901)},
	}}
	if dropped := ev.Invalidate(yearDelta); dropped == 0 {
		t.Error("a year edge should invalidate the root page")
	}
}
