package dynamic

import (
	"strings"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

// Dependency keys:
//
//	label:L     the conjunction reads edges labeled L
//	coll:C      the conjunction reads collection C's extent
//	edges-of:C  the conjunction reads arbitrary edges, but only those
//	            leaving members of collection C (an arc variable whose
//	            source is collection-constrained)
//	*           the conjunction reads arbitrary edges anywhere
//
// The refinement from * to edges-of:C is what keeps the ubiquitous
// attribute-copy idiom — where C(x), x -> l -> v — from invalidating on
// every data change.

// condDeps collects the dependency keys of a conjunction. varColls maps
// variables to the collections that constrain them in enclosing
// conjunctions.
func condDeps(conds []struql.Cond, set map[string]bool, varColls map[string][]string) {
	// First pass: collection constraints in this conjunction extend the
	// variable → collections map.
	local := map[string][]string{}
	for v, cs := range varColls {
		local[v] = cs
	}
	for _, c := range conds {
		if mc, ok := c.(*struql.MemberCond); ok {
			local[mc.Var] = append(local[mc.Var], mc.Coll)
		}
	}
	for _, c := range conds {
		switch c := c.(type) {
		case *struql.MemberCond:
			set["coll:"+c.Coll] = true
		case *struql.EdgeCond:
			if c.From.IsVar() {
				if colls := local[c.From.Var]; len(colls) > 0 {
					for _, coll := range colls {
						set["edges-of:"+coll] = true
					}
					continue
				}
			}
			set["*"] = true // arc variable over an unconstrained source
		case *struql.PathCond:
			pathDeps(c.Path, set)
		case *struql.NotCond:
			condDeps(c.Conds, set, local)
		}
	}
}

func pathDeps(p *struql.PathExpr, set map[string]bool) {
	switch p.Op {
	case struql.PLabel:
		set["label:"+p.Label] = true
	case struql.PAny, struql.PRegex:
		set["*"] = true
	default:
		for _, k := range p.Kids {
			pathDeps(k, set)
		}
	}
}

// BlockDeps returns the dependency keys of one query block including its
// nested blocks, with collection constraints flowing inward.
func BlockDeps(b *struql.Block) map[string]bool {
	set := map[string]bool{}
	var walk func(*struql.Block, map[string]bool, map[string][]string)
	walk = func(b *struql.Block, set map[string]bool, varColls map[string][]string) {
		condDeps(b.Where, set, varColls)
		inner := map[string][]string{}
		for v, cs := range varColls {
			inner[v] = cs
		}
		for _, c := range b.Where {
			if mc, ok := c.(*struql.MemberCond); ok {
				inner[mc.Var] = append(inner[mc.Var], mc.Coll)
			}
		}
		for _, n := range b.Nested {
			walk(n, set, inner)
		}
	}
	walk(b, set, map[string][]string{})
	return set
}

// AffectedBy reports whether a dependency set intersects a delta. For
// edges-of:C dependencies, each changed edge's source is tested for
// membership in C against the current data — this is what distinguishes
// "a new patent attribute" from "a new publication attribute". The
// batch-side incremental maintainer (package ivm) shares this test.
func AffectedBy(deps map[string]bool, d *mediator.Delta, data struql.Source) bool {
	return affectedBy(deps, d, data)
}

// affectedBy is AffectedBy; kept unexported for package-internal callers.
func affectedBy(deps map[string]bool, d *mediator.Delta, data struql.Source) bool {
	if deps["*"] {
		return !d.Empty()
	}
	edgeHit := func(e graph.Edge) bool {
		if deps["label:"+e.Label] {
			return true
		}
		for dep := range deps {
			if coll, ok := strings.CutPrefix(dep, "edges-of:"); ok {
				if data.InCollection(coll, e.From) {
					return true
				}
			}
		}
		return false
	}
	for _, e := range d.AddedEdges {
		if edgeHit(e) {
			return true
		}
	}
	for _, e := range d.RemovedEdges {
		if edgeHit(e) {
			return true
		}
	}
	memberHit := func(ms []mediator.Membership) bool {
		for _, m := range ms {
			if deps["coll:"+m.Coll] || deps["edges-of:"+m.Coll] {
				return true
			}
		}
		return false
	}
	return memberHit(d.AddedMembers) || memberHit(d.RemovedMembers)
}
