package dynamic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// slowQuery walks eight attributes of every publication, so that an
// evaluation over a delayed FaultSource takes long enough to observe
// deadlines and cancellation at operator boundaries.
const slowQuery = `
create Root()
where Pubs(x), x -> "a0" -> v0, x -> "a1" -> v1, x -> "a2" -> v2,
      x -> "a3" -> v3, x -> "a4" -> v4, x -> "a5" -> v5,
      x -> "a6" -> v6, x -> "a7" -> v7
link Root() -> "e" -> v0
`

func slowData(rows int) *graph.Graph {
	g := graph.New()
	for i := 0; i < rows; i++ {
		oid := graph.OID(fmt.Sprintf("p%04d", i))
		g.AddToCollection("Pubs", oid)
		for a := 0; a < 8; a++ {
			g.AddEdge(oid, fmt.Sprintf("a%d", a), graph.NewInt(int64(i*8+a)))
		}
	}
	return g
}

func TestSingleFlightComputesOnce(t *testing.T) {
	// The per-access delay widens the window in which all goroutines pile
	// onto the same uncomputed page.
	fs := NewFaultSource(struql.NewGraphSource(slowData(64)), 100*time.Microsecond)
	ev := NewEvaluator(schema.Build(struql.MustParse(slowQuery)), fs)
	const clients = 16
	var wg sync.WaitGroup
	results := make([]*PageData, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pd, err := ev.PageCtx(context.Background(), PageRef{Fn: "Root"})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = pd
		}()
	}
	wg.Wait()
	st := ev.StatsSnapshot()
	if st.PagesComputed != 1 {
		t.Errorf("PagesComputed = %d, want 1 (single-flight)", st.PagesComputed)
	}
	if st.CacheHits != clients-1 {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, clients-1)
	}
	for i := 1; i < clients; i++ {
		if results[i] != results[0] {
			t.Errorf("client %d got a different PageData instance", i)
		}
	}
}

func TestCancelledRequestStopsEvaluation(t *testing.T) {
	data := slowData(256)
	q := struql.MustParse(slowQuery)

	// Baseline: how many source accesses does a full evaluation make?
	base := NewFaultSource(struql.NewGraphSource(data), 0)
	ev := NewEvaluator(schema.Build(q), base)
	if _, err := ev.Page(PageRef{Fn: "Root"}); err != nil {
		t.Fatal(err)
	}
	fullOps := base.Ops()

	// Cancelled run: each access sleeps 1ms, the context dies a few ms in,
	// and evaluation must stop at an operator boundary well short of the
	// full walk.
	fs := NewFaultSource(struql.NewGraphSource(data), time.Millisecond)
	ev2 := NewEvaluator(schema.Build(q), fs)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := ev2.PageCtx(ctx, PageRef{Fn: "Root"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ops := fs.Ops(); ops >= fullOps/2 {
		t.Errorf("cancelled evaluation made %d source accesses; a full run makes %d — cancellation did not stop it early", ops, fullOps)
	}
	// A cancelled leader must not poison the page: a fresh request
	// computes it successfully.
	if _, err := ev2.Page(PageRef{Fn: "Root"}); err != nil {
		t.Errorf("page poisoned after cancelled leader: %v", err)
	}
}

func TestRequestDeadlineMapsTo504(t *testing.T) {
	fs := NewFaultSource(struql.NewGraphSource(slowData(256)), time.Millisecond)
	ev := NewEvaluator(schema.Build(struql.MustParse(slowQuery)), fs)
	srv := NewServer(ev, template.NewSet())
	srv.RequestTimeout = 20 * time.Millisecond
	srv.Logger = log.New(&bytes.Buffer{}, "", 0)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "request timed out") {
		t.Errorf("body = %q", body)
	}
}

func TestSheddingAndHealthzBypass(t *testing.T) {
	fs := NewFaultSource(struql.NewGraphSource(slowData(64)), 2*time.Millisecond)
	ev := NewEvaluator(schema.Build(struql.MustParse(slowQuery)), fs)
	srv := NewServer(ev, template.NewSet())
	srv.MaxInflight = 1
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Occupy the one slot with a slow request...
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/")
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	for fs.Ops() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	// ...then excess page load is shed with 503 + Retry-After...
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// ...but /healthz bypasses shedding so the saturated server can still
	// be probed.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"status"`) {
		t.Errorf("healthz status = %d, body %q", resp.StatusCode, body)
	}

	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("occupying request finished with %d", code)
	}
}

// panicSource panics on first use — a stand-in for any unexpected
// handler-path failure.
type panicSource struct {
	struql.Source
}

func (panicSource) Collection(string) []graph.OID { panic("secret internal detail") }

func TestPanicRecoverySanitizes500(t *testing.T) {
	ev := NewEvaluator(schema.Build(struql.MustParse(siteQuery)),
		panicSource{struql.NewGraphSource(testData())})
	var logged bytes.Buffer
	srv := NewServer(ev, template.NewSet())
	srv.Logger = log.New(&logged, "", 0)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if strings.Contains(body, "secret") {
		t.Errorf("panic detail leaked to client: %q", body)
	}
	if !strings.Contains(body, "internal server error") {
		t.Errorf("body = %q", body)
	}
	if !strings.Contains(logged.String(), "secret internal detail") {
		t.Error("panic detail missing from server-side log")
	}
}

func TestFailRequestSanitizesErrors(t *testing.T) {
	var logged bytes.Buffer
	s := &Server{Logger: log.New(&logged, "", 0)}
	req := httptest.NewRequest("GET", "/page/x", nil)

	w := httptest.NewRecorder()
	s.failRequest(w, req, fmt.Errorf("page: %w", context.DeadlineExceeded))
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("deadline: status = %d", w.Code)
	}

	// A client disconnect gets no response body: nobody is listening.
	w = httptest.NewRecorder()
	s.failRequest(w, req, fmt.Errorf("page: %w", context.Canceled))
	if w.Body.Len() != 0 {
		t.Errorf("cancel: wrote body %q", w.Body.String())
	}

	// Internal errors are logged in full but the client sees only a
	// generic message — error strings can embed data values and internals.
	w = httptest.NewRecorder()
	s.failRequest(w, req, errors.New("confidential: /etc/site/pubs.ddl:17"))
	if w.Code != http.StatusInternalServerError {
		t.Errorf("internal: status = %d", w.Code)
	}
	if got := w.Body.String(); strings.Contains(got, "confidential") || !strings.Contains(got, "internal server error") {
		t.Errorf("internal: body = %q", got)
	}
	if !strings.Contains(logged.String(), "confidential: /etc/site/pubs.ddl:17") {
		t.Error("error detail missing from server-side log")
	}
}

func TestEmbedCycleDegradesToReference(t *testing.T) {
	q := struql.MustParse(`
create A()
create B()
link A() -> "title" -> "a-title",
     A() -> "next" -> B(),
     B() -> "back" -> A()
`)
	ev := NewEvaluator(schema.Build(q), struql.NewGraphSource(graph.New()))
	ts := template.NewSet()
	ts.MustAdd("A", `A[<SFMT next EMBED>]`)
	ts.MustAdd("B", `B{<SFMT back EMBED>}`)
	srv := NewServer(ev, ts)
	srv.PerFn["A"] = "A"
	srv.PerFn["B"] = "B"
	out, err := srv.RenderPage(PageRef{Fn: "A"})
	if err != nil {
		t.Fatal(err)
	}
	// A embeds B; B's embed of A closes the cycle and degrades to a
	// reference exactly there instead of recursing.
	if !strings.Contains(out, `A[B{<a href="/page/A%28%29">A()</a>}]`) {
		t.Errorf("cyclic render = %q", out)
	}
}

func TestEmbedSelfCycle(t *testing.T) {
	q := struql.MustParse(`
create C()
link C() -> "self" -> C()
`)
	ev := NewEvaluator(schema.Build(q), struql.NewGraphSource(graph.New()))
	ts := template.NewSet()
	ts.MustAdd("C", `C(<SFMT self EMBED>)`)
	srv := NewServer(ev, ts)
	srv.PerFn["C"] = "C"
	out, err := srv.RenderPage(PageRef{Fn: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if out != `C(<a href="/page/C%28%29">C()</a>)` {
		t.Errorf("self-cycle render = %q", out)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
