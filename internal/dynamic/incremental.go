package dynamic

import (
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

// IncrementalResult reports what an incremental re-evaluation did.
type IncrementalResult struct {
	Site *graph.Graph
	// BlocksReevaluated and BlocksSkipped count top-level query blocks.
	BlocksReevaluated int
	BlocksSkipped     int
	// FullRebuild is set when the delta removed data, which additive
	// incremental evaluation cannot handle (§7 notes incremental view
	// update for semistructured data is an open problem; we implement the
	// additive case and fall back otherwise).
	FullRebuild bool
}

// IncrementalState supports repeated incremental maintenance, including
// removals: it keeps one partition of the site graph per top-level query
// block, so an affected block's old contribution can be replaced wholesale
// while unaffected partitions are reused. This is the block-granularity
// answer to the open problem §7 poses ("incremental view updates for
// semistructured data"): sound at block granularity, with re-evaluation
// cost proportional to the affected blocks only.
type IncrementalState struct {
	Query *struql.Query
	// Parts holds each top-level block's contribution to the site graph.
	Parts []*graph.Graph

	env *struql.SkolemEnv
}

// NewIncrementalState evaluates the query block by block, recording each
// block's contribution.
func NewIncrementalState(q *struql.Query, data struql.Source) (*IncrementalState, error) {
	st := &IncrementalState{Query: q, env: struql.NewSkolemEnv()}
	for _, blk := range q.Blocks {
		part, err := evalBlockAlone(blk, data, st.env)
		if err != nil {
			return nil, err
		}
		st.Parts = append(st.Parts, part)
	}
	return st, nil
}

func evalBlockAlone(blk *struql.Block, data struql.Source, env *struql.SkolemEnv) (*graph.Graph, error) {
	sub := &struql.Query{Blocks: []*struql.Block{blk}}
	r, err := struql.EvalWithEnv(sub, data, env, nil)
	if err != nil {
		return nil, err
	}
	return r.Graph, nil
}

// Site merges the partitions into the full site graph.
func (st *IncrementalState) Site() *graph.Graph {
	site := graph.New()
	for _, p := range st.Parts {
		site.Merge(p)
	}
	return site
}

// Apply re-evaluates exactly the blocks whose conditions depend on the
// delta's labels or collections — additions AND removals — replacing
// those partitions. It reports how many blocks were re-evaluated.
func (st *IncrementalState) Apply(data struql.Source, d *mediator.Delta) (reevaluated int, err error) {
	if d.Empty() {
		return 0, nil
	}
	for i, blk := range st.Query.Blocks {
		if len(blk.Where) == 0 && len(blk.Nested) == 0 {
			continue // constant block: data changes cannot affect it
		}
		if !affectedBy(BlockDeps(blk), d, data) {
			continue
		}
		part, err := evalBlockAlone(blk, data, st.env)
		if err != nil {
			return reevaluated, err
		}
		st.Parts[i] = part
		reevaluated++
	}
	return reevaluated, nil
}

// Incremental updates a previously evaluated site graph after a data
// change. For purely additive deltas it re-evaluates only the query
// blocks whose conditions depend on the changed attributes or
// collections, merging new nodes and edges into a copy of the old site
// graph (Skolem identity guarantees the merge is consistent). Deltas with
// removals trigger a full re-evaluation; use IncrementalState for
// partition-based maintenance that handles removals block by block.
func Incremental(q *struql.Query, oldSite *graph.Graph, data struql.Source, d *mediator.Delta) (*IncrementalResult, error) {
	if len(d.RemovedEdges) > 0 || len(d.RemovedMembers) > 0 {
		r, err := struql.Eval(q, data, nil)
		if err != nil {
			return nil, err
		}
		return &IncrementalResult{Site: r.Graph, FullRebuild: true, BlocksReevaluated: len(q.Blocks)}, nil
	}
	if d.Empty() {
		return &IncrementalResult{Site: oldSite, BlocksSkipped: len(q.Blocks)}, nil
	}
	site := oldSite.Copy()
	res := &IncrementalResult{Site: site}
	env := struql.NewSkolemEnv()
	for _, blk := range q.Blocks {
		affected := affectedBy(BlockDeps(blk), d, data)
		// Blocks with no where clause are constant: never affected.
		if len(blk.Where) == 0 && len(blk.Nested) == 0 {
			affected = false
		}
		sub := &struql.Query{Blocks: []*struql.Block{blk}}
		if !affected {
			res.BlocksSkipped++
			// Still replay construction cheaply? No: the old site already
			// contains this block's output, and Skolem identity keeps oids
			// stable, so skipping is sound for additive deltas.
			// We must, however, keep the Skolem environment consistent for
			// argument-free creations referenced by later blocks; those
			// oids are deterministic, so nothing to do.
			continue
		}
		res.BlocksReevaluated++
		r, err := struql.EvalWithEnv(sub, data, env, nil)
		if err != nil {
			return nil, err
		}
		site.Merge(r.Graph)
	}
	return res, nil
}
