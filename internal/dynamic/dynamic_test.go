package dynamic

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

const siteQuery = `
create RootPage()
link RootPage() -> "title" -> "Home"

where Publications(x)
create PaperPage(x)
link PaperPage(x) -> "self" -> x
{
  where x -> "title" -> t
  link PaperPage(x) -> "title" -> t
}
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Paper" -> PaperPage(x),
       RootPage() -> "YearPage" -> YearPage(y)
}
`

func testData() *graph.Graph {
	g := graph.New()
	add := func(oid graph.OID, title string, year int64) {
		g.AddToCollection("Publications", oid)
		g.AddEdge(oid, "title", graph.NewString(title))
		g.AddEdge(oid, "year", graph.NewInt(year))
	}
	add("pub1", "Query Language", 1997)
	add("pub2", "Catching the Boat", 1998)
	add("pub3", "Another 97 Paper", 1997)
	return g
}

func newEvaluator(t *testing.T, data *graph.Graph) (*Evaluator, *struql.Query) {
	t.Helper()
	q := struql.MustParse(siteQuery)
	return NewEvaluator(schema.Build(q), struql.NewGraphSource(data)), q
}

func TestEntryPoints(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	roots := ev.EntryPoints()
	if len(roots) != 1 || roots[0].Fn != "RootPage" {
		t.Fatalf("EntryPoints = %v", roots)
	}
}

func TestPageComputesOutEdges(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	root, err := ev.Page(PageRef{Fn: "RootPage"})
	if err != nil {
		t.Fatal(err)
	}
	// title atom + two year pages (1997, 1998).
	if len(root.Out) != 3 {
		t.Fatalf("root out = %v", root.Out)
	}
	if len(root.Links) != 2 {
		t.Fatalf("root links = %v", root.Links)
	}
	yp := root.Links[0]
	ypd, err := ev.Page(yp)
	if err != nil {
		t.Fatal(err)
	}
	var papers int
	for _, e := range ypd.Out {
		if e.Label == "Paper" {
			papers++
		}
	}
	// 1997 has two papers; 1998 has one — whichever sorted first.
	if papers != 2 && papers != 1 {
		t.Errorf("year page papers = %d:\n%v", papers, ypd.Out)
	}
}

func TestDynamicAgreesWithStatic(t *testing.T) {
	data := testData()
	ev, q := newEvaluator(t, data)
	dyn, err := ev.MaterializeAll()
	if err != nil {
		t.Fatal(err)
	}
	r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	static := r.Graph
	// Dynamic materialization covers the pages reachable from the entry
	// points; compare edge sets on that region.
	reach := static.Reachable("RootPage()")
	for oid := range reach {
		if _, isPage := ev.RefFor(oid); !isPage {
			continue // data-graph node referenced by the site
		}
		so := static.Out(oid)
		do := dyn.Out(oid)
		if len(so) != len(do) {
			t.Errorf("%s: static %d edges, dynamic %d\nstatic: %v\ndynamic: %v", oid, len(so), len(do), so, do)
			continue
		}
		for i := range so {
			if so[i] != do[i] {
				t.Errorf("%s: edge %d differs: %v vs %v", oid, i, so[i], do[i])
			}
		}
	}
	// And dynamic must not invent pages the static site lacks.
	for _, oid := range dyn.Nodes() {
		if _, isPage := ev.RefFor(oid); isPage && !static.HasNode(oid) {
			t.Errorf("dynamic invented %s", oid)
		}
	}
}

func TestCacheHits(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	ref := PageRef{Fn: "RootPage"}
	if _, err := ev.Page(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Page(ref); err != nil {
		t.Fatal(err)
	}
	st := ev.StatsSnapshot()
	if st.PagesComputed != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLookaheadPrecomputes(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	ev.Lookahead = true
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	st := ev.StatsSnapshot()
	// Root plus its two year pages.
	if st.PagesComputed != 3 {
		t.Errorf("lookahead computed %d pages, want 3", st.PagesComputed)
	}
	// Browsing to a year page is now a cache hit.
	yp := PageRef{Fn: "YearPage", Args: []graph.Value{graph.NewInt(1997)}}
	if _, err := ev.Page(yp); err != nil {
		t.Fatal(err)
	}
	if got := ev.StatsSnapshot().CacheHits; got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

func TestInvalidate(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	if ev.CacheSize() != 1 {
		t.Fatalf("cache = %d", ev.CacheSize())
	}
	// A change to an unrelated label leaves the cache alone.
	d := &mediator.Delta{AddedEdges: []graph.Edge{{From: "x", Label: "unrelated", To: graph.NewInt(1)}}}
	if dropped := ev.Invalidate(d); dropped != 0 {
		t.Errorf("dropped %d on unrelated change", dropped)
	}
	// RootPage depends on the year label (via the nested block's
	// conjunction) and the Publications collection.
	d = &mediator.Delta{AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "pubN"}}}
	if dropped := ev.Invalidate(d); dropped != 1 {
		t.Errorf("dropped %d on Publications change, want 1", dropped)
	}
	if ev.CacheSize() != 0 {
		t.Error("cache should be empty")
	}
}

func TestIncrementalAdditive(t *testing.T) {
	data := testData()
	q := struql.MustParse(siteQuery)
	r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	oldSite := r.Graph
	// Add a publication in a new year.
	data.AddToCollection("Publications", "pub4")
	data.AddEdge("pub4", "title", graph.NewString("New Paper"))
	data.AddEdge("pub4", "year", graph.NewInt(1999))
	delta := &mediator.Delta{
		AddedEdges: []graph.Edge{
			{From: "pub4", Label: "title", To: graph.NewString("New Paper")},
			{From: "pub4", Label: "year", To: graph.NewInt(1999)},
		},
		AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "pub4"}},
	}
	inc, err := Incremental(q, oldSite, struql.NewGraphSource(data), delta)
	if err != nil {
		t.Fatal(err)
	}
	if inc.FullRebuild {
		t.Error("additive delta should not trigger full rebuild")
	}
	full, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Site.Dump() != full.Graph.Dump() {
		t.Errorf("incremental differs from full rebuild:\n--- incremental\n%s--- full\n%s",
			inc.Site.Dump(), full.Graph.Dump())
	}
	if !inc.Site.HasNode("YearPage(1999)") {
		t.Error("new year page missing")
	}
}

func TestIncrementalSkipsUnaffectedBlocks(t *testing.T) {
	data := testData()
	q := struql.MustParse(siteQuery)
	r, _ := struql.Eval(q, struql.NewGraphSource(data), nil)
	// A change that touches nothing the query reads.
	data.AddEdge("misc", "noise", graph.NewInt(1))
	delta := &mediator.Delta{AddedEdges: []graph.Edge{{From: "misc", Label: "noise", To: graph.NewInt(1)}}}
	inc, err := Incremental(q, r.Graph, struql.NewGraphSource(data), delta)
	if err != nil {
		t.Fatal(err)
	}
	if inc.BlocksReevaluated != 0 {
		t.Errorf("reevaluated %d blocks for an irrelevant change", inc.BlocksReevaluated)
	}
}

func TestIncrementalRemovalFallsBack(t *testing.T) {
	data := testData()
	q := struql.MustParse(siteQuery)
	r, _ := struql.Eval(q, struql.NewGraphSource(data), nil)
	delta := &mediator.Delta{RemovedEdges: []graph.Edge{{From: "pub1", Label: "year", To: graph.NewInt(1997)}}}
	inc, err := Incremental(q, r.Graph, struql.NewGraphSource(data), delta)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.FullRebuild {
		t.Error("removal should fall back to full rebuild")
	}
}

func TestIncrementalEmptyDelta(t *testing.T) {
	data := testData()
	q := struql.MustParse(siteQuery)
	r, _ := struql.Eval(q, struql.NewGraphSource(data), nil)
	inc, err := Incremental(q, r.Graph, struql.NewGraphSource(data), &mediator.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.BlocksReevaluated != 0 || inc.Site != r.Graph {
		t.Error("empty delta should be a no-op")
	}
}

func TestServerServesPages(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	ts := template.NewSet()
	ts.MustAdd("RootPage", `<h1><SFMT title></h1><SFMT YearPage UL ORDER=ascend KEY=Year>`)
	ts.MustAdd("YearPage", `<h1>Year <SFMT Year></h1><SFMT Paper UL>`)
	ts.MustAdd("PaperPage", `<b><SFMT title></b>`)
	srv := NewServer(ev, ts)
	srv.PerFn["RootPage"] = "RootPage"
	srv.PerFn["YearPage"] = "YearPage"
	srv.PerFn["PaperPage"] = "PaperPage"
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := get(t, hs.URL+"/")
	if !strings.Contains(body, "<h1>Home</h1>") {
		t.Errorf("root body:\n%s", body)
	}
	// Follow the first year-page link.
	idx := strings.Index(body, `/page/`)
	if idx < 0 {
		t.Fatalf("no page link in root:\n%s", body)
	}
	end := strings.IndexByte(body[idx:], '"')
	link := body[idx : idx+end]
	yearBody := get(t, hs.URL+link)
	if !strings.Contains(yearBody, "Year 1997") {
		t.Errorf("year body:\n%s", yearBody)
	}
	// Unknown page → 404.
	resp, err := http.Get(hs.URL + "/page/Nope()")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestServerDefaultTemplate(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	srv := NewServer(ev, template.NewSet())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	body := get(t, hs.URL+"/")
	if !strings.Contains(body, "<dt>title</dt><dd>Home</dd>") {
		t.Errorf("default rendering:\n%s", body)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPageRefArgsMismatchIgnored(t *testing.T) {
	// A Skolem function created in two shapes: only matching-arity edges
	// apply. (Construct the schema directly through a crafted query.)
	q := struql.MustParse(`
where A(x) create F(x) link F(x) -> "v" -> x
`)
	data := graph.New()
	data.AddToCollection("A", "a1")
	ev := NewEvaluator(schema.Build(q), struql.NewGraphSource(data))
	pd, err := ev.Page(PageRef{Fn: "F", Args: []graph.Value{graph.NewNode("a1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Out) != 1 {
		t.Errorf("out = %v", pd.Out)
	}
	// Zero-arg ref to the same fn: no matching edges, no error.
	pd2, err := ev.Page(PageRef{Fn: "F"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd2.Out) != 0 {
		t.Errorf("mismatched arity should yield no edges: %v", pd2.Out)
	}
}
