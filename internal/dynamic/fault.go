// Fault injection for the serving layer. These types are a test and
// chaos-drill harness: they wrap a data source or a wrapper-load function
// and inject the failures a real deployment sees — slow reads, flaky
// filesystems, partially written files — so the degradation, backoff,
// cancellation, and drain behavior can be proven rather than assumed.

package dynamic

import (
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// FaultSource wraps a struql.Source, delaying every indexed access by
// Delay and counting accesses. Because the StruQL evaluator polls its
// request context between bounded row batches, a cancelled request
// against a FaultSource stops after a few more accesses instead of
// walking the whole graph — Ops makes that observable.
type FaultSource struct {
	Inner struql.Source
	// Delay is added to every access; zero only counts.
	Delay time.Duration

	ops atomic.Int64
}

// NewFaultSource wraps inner with the given per-access delay.
func NewFaultSource(inner struql.Source, delay time.Duration) *FaultSource {
	return &FaultSource{Inner: inner, Delay: delay}
}

// Ops returns the number of source accesses so far.
func (f *FaultSource) Ops() int64 { return f.ops.Load() }

func (f *FaultSource) touch() {
	f.ops.Add(1)
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

func (f *FaultSource) Collection(name string) []graph.OID {
	f.touch()
	return f.Inner.Collection(name)
}

func (f *FaultSource) InCollection(name string, oid graph.OID) bool {
	f.touch()
	return f.Inner.InCollection(name, oid)
}

func (f *FaultSource) CollectionNames() []string {
	f.touch()
	return f.Inner.CollectionNames()
}

func (f *FaultSource) CollectionSize(name string) int {
	f.touch()
	return f.Inner.CollectionSize(name)
}

func (f *FaultSource) Out(oid graph.OID) []graph.Edge {
	f.touch()
	return f.Inner.Out(oid)
}

func (f *FaultSource) OutLabel(oid graph.OID, label string) []graph.Value {
	f.touch()
	return f.Inner.OutLabel(oid, label)
}

func (f *FaultSource) EdgesLabeled(label string) []graph.Edge {
	f.touch()
	return f.Inner.EdgesLabeled(label)
}

func (f *FaultSource) In(v graph.Value) []graph.Edge {
	f.touch()
	return f.Inner.In(v)
}

func (f *FaultSource) Nodes() []graph.OID {
	f.touch()
	return f.Inner.Nodes()
}

func (f *FaultSource) Labels() []string {
	f.touch()
	return f.Inner.Labels()
}

func (f *FaultSource) LabelCount(label string) int {
	f.touch()
	return f.Inner.LabelCount(label)
}

func (f *FaultSource) NumEdges() int {
	f.touch()
	return f.Inner.NumEdges()
}

func (f *FaultSource) NumNodes() int {
	f.touch()
	return f.Inner.NumNodes()
}

// FlakyLoader wraps a wrapper-load function with programmable faults: a
// number of upcoming calls can be made to fail (as a flaky filesystem or
// a half-written file would) and a per-call delay can simulate slow
// storage. It is safe for concurrent use.
type FlakyLoader struct {
	load func() (*graph.Graph, error)

	mu        sync.Mutex
	failN     int
	failErr   error
	delay     time.Duration
	calls     int
	failCalls int
}

// NewFlakyLoader wraps load.
func NewFlakyLoader(load func() (*graph.Graph, error)) *FlakyLoader {
	return &FlakyLoader{load: load}
}

// FailNext makes the next n Load calls return err without invoking the
// wrapped loader.
func (f *FlakyLoader) FailNext(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failN = n
	f.failErr = err
}

// SetDelay sleeps every Load call by d before proceeding.
func (f *FlakyLoader) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Calls returns total and failed call counts.
func (f *FlakyLoader) Calls() (total, failed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.failCalls
}

// Load invokes the wrapped loader, injecting the programmed faults.
func (f *FlakyLoader) Load() (*graph.Graph, error) {
	f.mu.Lock()
	f.calls++
	delay := f.delay
	var err error
	if f.failN > 0 {
		f.failN--
		f.failCalls++
		err = f.failErr
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, err
	}
	return f.load()
}
