package dynamic

import (
	"context"
	"errors"
	"fmt"
	"html"
	"log"
	"net/http"
	"net/url"
	"runtime/debug"
	"strings"
	"time"

	"strudel/internal/graph"
	"strudel/internal/obs"
	"strudel/internal/template"
)

// Server serves a Strudel site dynamically: every request evaluates (or
// reuses from cache) the incremental queries of the requested page and
// renders it through the same template language the static generator
// uses. Routes:
//
//	/              the first entry point
//	/page/<oid>    any page, by Skolem oid
//	/healthz       liveness + reload status (never load-shed)
//
// The server is hardened for real traffic: the evaluator is fully
// concurrent (per-page single-flight, parallel across pages), requests
// carry deadlines and are cancelled when clients disconnect, panics are
// caught and logged, excess load is shed with 503 + Retry-After, and
// internal error detail never reaches a response body.
type Server struct {
	Ev        *Evaluator
	Templates *template.Set
	// PerFn selects a template per Skolem function name.
	PerFn map[string]string
	// Default names a fallback template; empty uses a built-in listing.
	Default string
	// Root is the page served at "/"; when its Fn is empty, the first
	// entry point (alphabetically) is used.
	Root PageRef
	// PageURLFunc, when non-nil, overrides the URL scheme used for links
	// between pages. The fleet edge sets a self-describing ref encoding
	// (function name + argument keys) so any shard replica can resolve a
	// page it has never computed; nil keeps the single-server oid scheme.
	// Set before serving; read without synchronization.
	PageURLFunc func(ref PageRef, oid graph.OID) string

	// RequestTimeout bounds each page request's evaluation and render; 0
	// disables the per-request deadline. Set before calling Handler.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served page requests; past it the
	// server sheds load with 503 + Retry-After. 0 means unlimited. Set
	// before calling Handler.
	MaxInflight int
	// Logger receives server-side error detail (what clients never see);
	// nil uses the process default logger.
	Logger *log.Logger
	// Health is the reload/degradation status reported by /healthz.
	Health *Health
	// Obs, when non-nil, receives request counts, latency, in-flight,
	// shed/timeout/panic counters. Set before Handler; nil disables.
	Obs *obs.ServeMetrics
}

// NewServer returns a server over an evaluator and templates.
func NewServer(ev *Evaluator, ts *template.Set) *Server {
	return &Server{Ev: ev, Templates: ts, PerFn: map[string]string{}, Health: NewHealth()}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logger != nil {
		s.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Handler returns the HTTP handler with the hardening middleware applied:
// recovery(healthz | shed(deadline(pages))).
func (s *Server) Handler() http.Handler {
	pages := http.NewServeMux()
	pages.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		root := s.Root
		if root.Fn == "" {
			roots := s.Ev.EntryPoints()
			if len(roots) == 0 {
				http.Error(w, "site has no entry points", http.StatusNotFound)
				return
			}
			root = roots[0]
		}
		s.servePage(w, r, root)
	})
	pages.HandleFunc("/page/", func(w http.ResponseWriter, r *http.Request) {
		oid := strings.TrimPrefix(r.URL.Path, "/page/")
		oid, err := url.PathUnescape(oid)
		if err != nil {
			http.Error(w, "bad page id", http.StatusBadRequest)
			return
		}
		ref, ok := s.Ev.RefFor(graph.OID(oid))
		if !ok {
			http.Error(w, "unknown page "+oid, http.StatusNotFound)
			return
		}
		s.servePage(w, r, ref)
	})

	root := http.NewServeMux()
	// /healthz bypasses load shedding and the request deadline so that a
	// saturated or degraded server can still be probed.
	root.HandleFunc("/healthz", s.serveHealth)
	root.Handle("/", s.withShedding(s.withDeadline(s.withMetrics(pages))))
	return s.withRecovery(root)
}

// withMetrics counts and times page requests. Identity when Obs is nil.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	if s.Obs == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Obs.Requests.Inc()
		s.Obs.InFlight.Inc()
		start := time.Now()
		defer func() {
			s.Obs.RequestNanos.Observe(int64(time.Since(start)))
			s.Obs.InFlight.Dec()
		}()
		next.ServeHTTP(w, r)
	})
}

// withRecovery catches handler panics, logs the stack server-side, and
// returns a sanitized 500.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if s.Obs != nil {
					s.Obs.Panics.Inc()
				}
				s.logf("dynamic: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				// If the handler already wrote, this is a no-op late
				// header write; the connection is torn down regardless.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withShedding bounds in-flight page requests; excess load is refused
// immediately with 503 + Retry-After instead of queueing without bound.
func (s *Server) withShedding(next http.Handler) http.Handler {
	if s.MaxInflight <= 0 {
		return next
	}
	sem := make(chan struct{}, s.MaxInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if s.Obs != nil {
				s.Obs.Shed.Inc()
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, retry shortly", http.StatusServiceUnavailable)
		}
	})
}

// withDeadline attaches the per-request timeout to the request context;
// evaluation observes it at operator boundaries.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health
	if h == nil {
		h = NewHealth()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(h.StatusJSON(s.Ev.CacheSize()))
}

func (s *Server) servePage(w http.ResponseWriter, r *http.Request, ref PageRef) {
	htmlText, err := s.RenderPageCtx(r.Context(), ref)
	if err != nil {
		s.failRequest(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, htmlText)
}

// failRequest maps an evaluation/render error to a response: timeouts are
// 504, client disconnects get no body (nobody is listening), and
// everything else is a sanitized 500 with the detail logged server-side
// only — error strings can embed data values and internals.
func (s *Server) failRequest(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if s.Obs != nil {
			s.Obs.Timeouts.Inc()
		}
		s.logf("dynamic: %s: request deadline exceeded: %v", r.URL.Path, err)
		http.Error(w, "request timed out", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		s.logf("dynamic: %s: request cancelled by client: %v", r.URL.Path, err)
	default:
		s.logf("dynamic: %s: internal error: %v", r.URL.Path, err)
		http.Error(w, "internal server error", http.StatusInternalServerError)
	}
}

// RenderPage computes and renders one page (exported for tests and for
// the click-time benchmarks, bypassing HTTP).
func (s *Server) RenderPage(ref PageRef) (string, error) {
	return s.RenderPageCtx(context.Background(), ref)
}

// RenderPageCtx renders one page under a request context. The whole
// render — the page's own queries, embedded pages, and data-graph
// attribute reads — runs against one state snapshot, so a hot reload
// mid-request never produces a page mixing two data generations.
func (s *Server) RenderPageCtx(ctx context.Context, ref PageRef) (string, error) {
	html, _, err := s.RenderPageGen(ctx, ref)
	return html, err
}

// RenderPageGen is RenderPageCtx, additionally reporting the data
// generation of the snapshot every byte of the page was computed from.
// The fleet edge keys its cache entries and ETags by this generation:
// because the render never leaves the snapshot, a (generation, page)
// pair fully determines the bytes.
func (s *Server) RenderPageGen(ctx context.Context, ref PageRef) (string, int64, error) {
	st := s.Ev.snapshot()
	pd, err := s.Ev.pageIn(ctx, st, ref, s.Ev.Lookahead)
	if err != nil {
		return "", st.gen, err
	}
	r := &dynRenderer{s: s, ctx: ctx, st: st, stack: []graph.OID{pd.OID}}
	t := s.selectTemplate(ref.Fn)
	if t == nil {
		html, err := r.defaultRender(pd)
		return html, st.gen, err
	}
	html, err := template.Render(t, pd.OID, dynSite{r: r}, r)
	return html, st.gen, err
}

func (s *Server) selectTemplate(fn string) *template.Template {
	if name, ok := s.PerFn[fn]; ok {
		if t := s.Templates.Get(name); t != nil {
			return t
		}
	}
	if s.Default != "" {
		return s.Templates.Get(s.Default)
	}
	return nil
}

// dynSite adapts the evaluator to the template evaluator's Site view:
// dynamic pages answer from their computed edges; data-graph objects
// (reached through NS edges) answer from the data source. All reads go
// through the renderer's state snapshot.
type dynSite struct {
	r *dynRenderer
}

func (d dynSite) OutLabel(oid graph.OID, label string) []graph.Value {
	if ref, ok := d.r.s.Ev.RefFor(oid); ok {
		pd, err := d.r.s.Ev.pageIn(d.r.ctx, d.r.st, ref, false)
		if err != nil {
			return nil
		}
		var out []graph.Value
		for _, e := range pd.Out {
			if e.Label == label {
				out = append(out, e.To)
			}
		}
		return out
	}
	return d.r.st.src.OutLabel(oid, label)
}

// dynRenderer renders references as click-time URLs. It carries the
// request context and the state snapshot so every read in one render sees
// one data generation, and it tracks the stack of pages being embedded to
// cut true embed cycles.
type dynRenderer struct {
	s   *Server
	ctx context.Context
	st  *evalState
	// stack holds the page oids currently being rendered, outermost
	// first; an embed of any of them is a cycle.
	stack []graph.OID
}

// LookupTemplate resolves SINCLUDE names against the server's set.
func (r *dynRenderer) LookupTemplate(name string) *template.Template {
	return r.s.Templates.Get(name)
}

// PageURL returns the click-time URL of a page oid.
func PageURL(oid graph.OID) string {
	return "/page/" + url.PathEscape(string(oid))
}

func (r *dynRenderer) RenderRef(oid graph.OID, anchorText string) (string, error) {
	u := PageURL(oid)
	if r.s.PageURLFunc != nil {
		if ref, ok := r.s.Ev.RefFor(oid); ok {
			u = r.s.PageURLFunc(ref, oid)
		}
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, u, html.EscapeString(anchorText)), nil
}

// maxEmbedDepth caps non-cyclic embed nesting; cycles themselves are cut
// exactly where they close, by the render-stack check.
const maxEmbedDepth = 32

func (r *dynRenderer) RenderEmbed(oid graph.OID) (string, error) {
	if ref, ok := r.s.Ev.RefFor(oid); ok {
		// A true embed cycle — the page is already on the render stack —
		// degrades to a reference at the exact point the cycle closes.
		for _, on := range r.stack {
			if on == oid {
				return r.RenderRef(oid, string(oid))
			}
		}
		if len(r.stack) > maxEmbedDepth {
			return r.RenderRef(oid, string(oid))
		}
		pd, err := r.s.Ev.pageIn(r.ctx, r.st, ref, false)
		if err != nil {
			return "", err
		}
		r.stack = append(r.stack, oid)
		defer func() { r.stack = r.stack[:len(r.stack)-1] }()
		if t := r.s.selectTemplate(ref.Fn); t != nil {
			return template.Render(t, pd.OID, dynSite{r: r}, r)
		}
		return r.defaultRender(pd)
	}
	// A data-graph object: render its attributes inline.
	var b strings.Builder
	for _, e := range r.st.src.Out(oid) {
		fmt.Fprintf(&b, "%s: %s ", html.EscapeString(e.Label), html.EscapeString(e.To.Text()))
	}
	return b.String(), nil
}

func (r *dynRenderer) RenderFile(v graph.Value, embed bool) (string, error) {
	esc := html.EscapeString(v.Str())
	if v.FileType() == graph.FileImage {
		return fmt.Sprintf(`<img src="%s">`, esc), nil
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, esc, esc), nil
}

// defaultRender lists the page's edges when no template is selected.
func (r *dynRenderer) defaultRender(pd *PageData) (string, error) {
	var b strings.Builder
	title := html.EscapeString(string(pd.OID))
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n<dl>\n", title, title)
	for _, e := range pd.Out {
		var cell string
		if e.To.IsNode() {
			if _, ok := r.s.Ev.RefFor(e.To.OID()); ok {
				ref, _ := r.RenderRef(e.To.OID(), string(e.To.OID()))
				cell = ref
			} else {
				cell = html.EscapeString(string(e.To.OID()))
			}
		} else {
			cell = html.EscapeString(e.To.Text())
		}
		fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", html.EscapeString(e.Label), cell)
	}
	b.WriteString("</dl>\n</body></html>\n")
	return b.String(), nil
}
