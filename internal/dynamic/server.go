package dynamic

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"strudel/internal/graph"
	"strudel/internal/template"
)

// Server serves a Strudel site dynamically: every request evaluates (or
// reuses from cache) the incremental queries of the requested page and
// renders it through the same template language the static generator
// uses. Routes:
//
//	/              the first entry point
//	/page/<oid>    any page, by Skolem oid
type Server struct {
	Ev        *Evaluator
	Templates *template.Set
	// PerFn selects a template per Skolem function name.
	PerFn map[string]string
	// Default names a fallback template; empty uses a built-in listing.
	Default string
	// Root is the page served at "/"; when its Fn is empty, the first
	// entry point (alphabetically) is used.
	Root PageRef

	mu sync.Mutex
}

// NewServer returns a server over an evaluator and templates.
func NewServer(ev *Evaluator, ts *template.Set) *Server {
	return &Server{Ev: ev, Templates: ts, PerFn: map[string]string{}}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		root := s.Root
		if root.Fn == "" {
			roots := s.Ev.EntryPoints()
			if len(roots) == 0 {
				http.Error(w, "site has no entry points", http.StatusNotFound)
				return
			}
			root = roots[0]
		}
		s.servePage(w, root)
	})
	mux.HandleFunc("/page/", func(w http.ResponseWriter, r *http.Request) {
		oid := strings.TrimPrefix(r.URL.Path, "/page/")
		oid, err := url.PathUnescape(oid)
		if err != nil {
			http.Error(w, "bad page id", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		ref, ok := s.Ev.RefFor(graph.OID(oid))
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown page "+oid, http.StatusNotFound)
			return
		}
		s.servePage(w, ref)
	})
	return mux
}

func (s *Server) servePage(w http.ResponseWriter, ref PageRef) {
	s.mu.Lock()
	htmlText, err := s.RenderPage(ref)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, htmlText)
}

// RenderPage computes and renders one page (exported for tests and for
// the click-time benchmarks, bypassing HTTP).
func (s *Server) RenderPage(ref PageRef) (string, error) {
	pd, err := s.Ev.Page(ref)
	if err != nil {
		return "", err
	}
	r := &dynRenderer{s: s}
	t := s.selectTemplate(ref.Fn)
	if t == nil {
		return r.defaultRender(pd)
	}
	return template.Render(t, pd.OID, dynSite{s: s}, r)
}

func (s *Server) selectTemplate(fn string) *template.Template {
	if name, ok := s.PerFn[fn]; ok {
		if t := s.Templates.Get(name); t != nil {
			return t
		}
	}
	if s.Default != "" {
		return s.Templates.Get(s.Default)
	}
	return nil
}

// dynSite adapts the evaluator to the template evaluator's Site view:
// dynamic pages answer from their computed edges; data-graph objects
// (reached through NS edges) answer from the data source.
type dynSite struct {
	s *Server
}

func (d dynSite) OutLabel(oid graph.OID, label string) []graph.Value {
	if ref, ok := d.s.Ev.RefFor(oid); ok {
		pd, err := d.s.Ev.Page(ref)
		if err != nil {
			return nil
		}
		var out []graph.Value
		for _, e := range pd.Out {
			if e.Label == label {
				out = append(out, e.To)
			}
		}
		return out
	}
	return d.s.Ev.Data.OutLabel(oid, label)
}

// dynRenderer renders references as click-time URLs.
type dynRenderer struct {
	s     *Server
	depth int
}

// LookupTemplate resolves SINCLUDE names against the server's set.
func (r *dynRenderer) LookupTemplate(name string) *template.Template {
	return r.s.Templates.Get(name)
}

// PageURL returns the click-time URL of a page oid.
func PageURL(oid graph.OID) string {
	return "/page/" + url.PathEscape(string(oid))
}

func (r *dynRenderer) RenderRef(oid graph.OID, anchorText string) (string, error) {
	return fmt.Sprintf(`<a href="%s">%s</a>`, PageURL(oid), html.EscapeString(anchorText)), nil
}

func (r *dynRenderer) RenderEmbed(oid graph.OID) (string, error) {
	if r.depth > 8 {
		return r.RenderRef(oid, string(oid))
	}
	r.depth++
	defer func() { r.depth-- }()
	if ref, ok := r.s.Ev.RefFor(oid); ok {
		pd, err := r.s.Ev.Page(ref)
		if err != nil {
			return "", err
		}
		if t := r.s.selectTemplate(ref.Fn); t != nil {
			return template.Render(t, pd.OID, dynSite{s: r.s}, r)
		}
		return r.defaultRender(pd)
	}
	// A data-graph object: render its attributes inline.
	var b strings.Builder
	for _, e := range r.s.Ev.Data.Out(oid) {
		fmt.Fprintf(&b, "%s: %s ", html.EscapeString(e.Label), html.EscapeString(e.To.Text()))
	}
	return b.String(), nil
}

func (r *dynRenderer) RenderFile(v graph.Value, embed bool) (string, error) {
	esc := html.EscapeString(v.Str())
	if v.FileType() == graph.FileImage {
		return fmt.Sprintf(`<img src="%s">`, esc), nil
	}
	return fmt.Sprintf(`<a href="%s">%s</a>`, esc, esc), nil
}

// defaultRender lists the page's edges when no template is selected.
func (r *dynRenderer) defaultRender(pd *PageData) (string, error) {
	var b strings.Builder
	title := html.EscapeString(string(pd.OID))
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h1>%s</h1>\n<dl>\n", title, title)
	for _, e := range pd.Out {
		var cell string
		if e.To.IsNode() {
			if _, ok := r.s.Ev.RefFor(e.To.OID()); ok {
				ref, _ := r.RenderRef(e.To.OID(), string(e.To.OID()))
				cell = ref
			} else {
				cell = html.EscapeString(string(e.To.OID()))
			}
		} else {
			cell = html.EscapeString(e.To.Text())
		}
		fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", html.EscapeString(e.Label), cell)
	}
	b.WriteString("</dl>\n</body></html>\n")
	return b.String(), nil
}
