package dynamic

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

var errInjected = errors.New("injected fault")

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func touchFile(t *testing.T, path string, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// pubsGraph builds a Publications graph whose every entry carries the
// version marker, so served pages betray which data generation they came
// from — and whether two generations were ever mixed.
func pubsGraph(version int, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		oid := graph.OID(fmt.Sprintf("pub%d", i))
		g.AddToCollection("Publications", oid)
		g.AddEdge(oid, "title", graph.NewString(fmt.Sprintf("Paper %d", i)))
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+version)))
	}
	return g
}

// newTestReloader wires a reloader over one flaky in-memory source backed
// by a real stamp file.
func newTestReloader(t *testing.T, load func() (*graph.Graph, error)) (*Reloader, *FlakyLoader, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "source.dat")
	touchFile(t, path, "gen0")
	fl := NewFlakyLoader(load)
	rl, err := NewReloader(WatchedSource{Name: "pubs", Paths: []string{path}, Load: fl.Load})
	if err != nil {
		t.Fatal(err)
	}
	rl.Logger = quietLogger()
	rl.Jitter = 0
	rl.BackoffMin = 100 * time.Millisecond
	rl.BackoffMax = 400 * time.Millisecond
	return rl, fl, path
}

func TestReloaderNoChangeNoReload(t *testing.T) {
	rl, fl, _ := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(0, 2), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	rl.Tick(time.Now())
	rl.Tick(time.Now())
	if total, _ := fl.Calls(); total != 1 {
		t.Errorf("loader called %d times; unchanged files must not reload", total)
	}
}

func TestReloaderBackoffGrowsAndRecovers(t *testing.T) {
	version := 0
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 2), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	h := NewHealth()
	rl.Attach(nil, h)
	var applied *mediator.Delta
	rl.OnApply = func(d *mediator.Delta, kept, dropped int) { applied = d }

	version = 1
	touchFile(t, path, "gen1")
	fl.FailNext(100, errInjected)

	t0 := time.Now()
	rl.Tick(t0)
	if !h.Degraded() {
		t.Fatal("failed reload must degrade health")
	}
	if got := rl.RetryDelay(); got != 100*time.Millisecond {
		t.Errorf("first delay = %v, want BackoffMin", got)
	}

	// A tick inside the backoff window must not attempt the reload.
	before, _ := fl.Calls()
	rl.Tick(t0.Add(50 * time.Millisecond))
	if after, _ := fl.Calls(); after != before {
		t.Error("tick during backoff attempted a reload")
	}

	// Consecutive failures double the delay, clamped at BackoffMax.
	rl.Tick(t0.Add(150 * time.Millisecond))
	if got := rl.RetryDelay(); got != 200*time.Millisecond {
		t.Errorf("second delay = %v, want 200ms", got)
	}
	rl.Tick(t0.Add(400 * time.Millisecond))
	if got := rl.RetryDelay(); got != 400*time.Millisecond {
		t.Errorf("third delay = %v, want 400ms", got)
	}
	rl.Tick(t0.Add(900 * time.Millisecond))
	if got := rl.RetryDelay(); got != 400*time.Millisecond {
		t.Errorf("clamped delay = %v, want BackoffMax", got)
	}

	// Source recovers: the pending change applies, health clears, backoff
	// resets.
	fl.FailNext(0, nil)
	rl.Tick(t0.Add(1500 * time.Millisecond))
	if h.Degraded() {
		t.Error("health still degraded after successful reload")
	}
	if rl.RetryDelay() != 0 {
		t.Errorf("delay after recovery = %v, want 0", rl.RetryDelay())
	}
	if applied == nil || applied.Empty() {
		t.Errorf("applied delta = %+v, want the gen0→gen1 changes", applied)
	}
}

func TestReloaderJitterSpreadsRetries(t *testing.T) {
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(0, 1), nil })
	rl.Jitter = 0.2
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	touchFile(t, path, "gen1")
	fl.FailNext(100, errInjected)
	rl.Tick(time.Now())
	d := rl.RetryDelay()
	if d != 100*time.Millisecond {
		t.Errorf("RetryDelay reports the base delay, got %v", d)
	}
}

func TestReloaderPartialFailureAccumulatesDeltas(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.dat")
	pathB := filepath.Join(dir, "b.dat")
	touchFile(t, pathA, "gen0")
	touchFile(t, pathB, "gen0")
	verA, verB := 0, 0
	loadA := func() (*graph.Graph, error) {
		g := graph.New()
		g.AddEdge("a", "va", graph.NewInt(int64(verA)))
		return g, nil
	}
	flB := NewFlakyLoader(func() (*graph.Graph, error) {
		g := graph.New()
		g.AddEdge("b", "vb", graph.NewInt(int64(verB)))
		return g, nil
	})
	rl, err := NewReloader(
		WatchedSource{Name: "a", Paths: []string{pathA}, Load: loadA},
		WatchedSource{Name: "b", Paths: []string{pathB}, Load: flB.Load},
	)
	if err != nil {
		t.Fatal(err)
	}
	rl.Logger = quietLogger()
	rl.Jitter = 0
	rl.BackoffMin = 10 * time.Millisecond
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	var applied *mediator.Delta
	rl.OnApply = func(d *mediator.Delta, kept, dropped int) { applied = d }

	// Both sources change; b's wrapper fails. a's refresh succeeded and
	// must not be lost when the swap finally happens.
	verA, verB = 1, 1
	touchFile(t, pathA, "gen1")
	touchFile(t, pathB, "gen1")
	flB.FailNext(1, errInjected)
	t0 := time.Now()
	rl.Tick(t0)
	if applied != nil {
		t.Fatal("partial failure must not publish a swap")
	}
	rl.Tick(t0.Add(time.Second))
	if applied == nil {
		t.Fatal("recovered reload did not apply")
	}
	var labels []string
	for _, e := range append(applied.AddedEdges, applied.RemovedEdges...) {
		labels = append(labels, e.Label)
	}
	seen := map[string]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if !seen["va"] || !seen["vb"] {
		t.Errorf("swap delta covers labels %v, want both va (from the earlier partial success) and vb", labels)
	}
}

func TestReloaderSwapInvalidatesAffectedPages(t *testing.T) {
	version := 0
	rl, _, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 3), nil })
	data, err := rl.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(schema.Build(struql.MustParse(siteQuery)), data)
	h := NewHealth()
	rl.Attach(ev, h)

	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	yp := PageRef{Fn: "YearPage", Args: []graph.Value{graph.NewInt(1990)}}
	if _, err := ev.Page(yp); err != nil {
		t.Fatal(err)
	}
	if ev.CacheSize() != 2 {
		t.Fatalf("cache = %d", ev.CacheSize())
	}

	version = 1
	touchFile(t, path, "gen1")
	rl.Tick(time.Now())

	// The year attribute changed, so cached pages depending on it drop and
	// the next request sees the new generation.
	pd, err := ev.Page(PageRef{Fn: "YearPage", Args: []graph.Value{graph.NewInt(1991)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Out) == 0 {
		t.Error("new-generation year page is empty")
	}
}

func TestSwapDataKeepsUnaffectedPages(t *testing.T) {
	ev, _ := newEvaluator(t, testData())
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	// A delta touching nothing the site reads: the cache carries over.
	d := &mediator.Delta{AddedEdges: []graph.Edge{{From: "x", Label: "unrelated", To: graph.NewInt(1)}}}
	kept, dropped := ev.SwapData(struql.NewGraphSource(testData()), d)
	if kept != 1 || dropped != 0 {
		t.Errorf("kept %d dropped %d, want 1/0", kept, dropped)
	}
	st := ev.StatsSnapshot()
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	if got := ev.StatsSnapshot().PagesComputed; got != st.PagesComputed {
		t.Errorf("carried-over page was recomputed")
	}

	// A delta touching Publications drops the page.
	d = &mediator.Delta{AddedMembers: []mediator.Membership{{Coll: "Publications", OID: "pubN"}}}
	kept, dropped = ev.SwapData(struql.NewGraphSource(testData()), d)
	if kept != 0 || dropped != 1 {
		t.Errorf("kept %d dropped %d, want 0/1", kept, dropped)
	}

	// A nil delta means "unknown change": everything drops.
	if _, err := ev.Page(PageRef{Fn: "RootPage"}); err != nil {
		t.Fatal(err)
	}
	kept, dropped = ev.SwapData(struql.NewGraphSource(testData()), nil)
	if kept != 0 || dropped != 1 {
		t.Errorf("nil delta: kept %d dropped %d, want 0/1", kept, dropped)
	}
}

// TestFailedRoundCountedOncePerDegradedWindow pins the reload failure
// accounting: a degraded window — consecutive failed attempts ending in
// a successful swap — counts as ONE failed round, no matter how many
// backoff retries it spans, while every attempt still counts as a
// failure. The drill runs two windows of different lengths (3 retries,
// then 1) with a successful swap between them, so a regression toward
// per-attempt round counting (rounds == 4) or toward never reopening a
// round after recovery (rounds == 1) both fail.
func TestFailedRoundCountedOncePerDegradedWindow(t *testing.T) {
	version := 0
	rl, fl, path := newTestReloader(t, func() (*graph.Graph, error) { return pubsGraph(version, 2), nil })
	if _, err := rl.Warehouse(); err != nil {
		t.Fatal(err)
	}
	h := NewHealth()
	rl.Attach(nil, h)
	metrics := &obs.ServeMetrics{}
	rl.Obs = metrics

	// Window 1: three failed attempts, then recovery.
	version = 1
	touchFile(t, path, "gen1")
	fl.FailNext(3, errInjected)
	now := time.Now()
	for i := 0; i < 3; i++ {
		rl.Tick(now)
		now = now.Add(rl.RetryDelay() + time.Millisecond)
	}
	if !h.Degraded() {
		t.Fatal("window 1: not degraded after three failures")
	}
	if got := metrics.ReloadRoundsFailed.Load(); got != 1 {
		t.Fatalf("window 1: rounds failed = %d, want 1 (attempts: %d)", got, metrics.ReloadFailures.Load())
	}
	rl.Tick(now) // recovery swap
	if h.Degraded() {
		t.Fatal("window 1: still degraded after successful reload")
	}

	// Window 2: one failed attempt, then recovery — a NEW round.
	version = 2
	touchFile(t, path, "gen2")
	fl.FailNext(1, errInjected)
	rl.Tick(now)
	if got := metrics.ReloadRoundsFailed.Load(); got != 2 {
		t.Fatalf("window 2: rounds failed = %d, want 2", got)
	}
	now = now.Add(rl.RetryDelay() + time.Millisecond)
	rl.Tick(now)

	if got := metrics.ReloadFailures.Load(); got != 4 {
		t.Errorf("failed attempts = %d, want 4 (3 + 1)", got)
	}
	if got := metrics.ReloadRoundsFailed.Load(); got != 2 {
		t.Errorf("failed rounds = %d, want 2", got)
	}
	if got := metrics.ReloadApplied.Load(); got != 2 {
		t.Errorf("applied reloads = %d, want 2", got)
	}
	s := h.Snapshot(0)
	if s.FailedRounds != 2 {
		t.Errorf("healthz failedRounds = %d, want 2", s.FailedRounds)
	}
	if s.Failures != 4 {
		t.Errorf("healthz failures = %d, want 4", s.Failures)
	}
}

func TestHealthSnapshotCounters(t *testing.T) {
	h := NewHealth()
	if h.Degraded() {
		t.Fatal("fresh health must be ok")
	}
	h.SetDegraded(errInjected)
	h.SetDegraded(errInjected)
	h.SetHealthy()
	h.SetHealthy()
	s := h.Snapshot(7)
	if s.Status != "ok" || s.Failures != 2 || s.Reloads != 2 || s.ConsecutiveFailures != 0 || s.CachedPages != 7 {
		t.Errorf("snapshot = %+v", s)
	}
	h.SetDegraded(errInjected)
	s = h.Snapshot(0)
	if s.Status != "degraded" || s.Reason == "" || s.ConsecutiveFailures != 1 {
		t.Errorf("degraded snapshot = %+v", s)
	}
}
