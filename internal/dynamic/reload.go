package dynamic

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/repo"
	"strudel/internal/struql"
)

// WatchedSource is one external data source the reload loop keeps fresh:
// a wrapper invocation plus the files whose modification times signal
// that the source changed and must be re-wrapped.
type WatchedSource struct {
	// Name identifies the source (unique across the reloader).
	Name string
	// Paths are the files polled for mtime/size changes. A path that
	// cannot be stat'ed counts as changed — the reload attempt then
	// surfaces the real error (missing file, permission) through Load.
	Paths []string
	// Load re-invokes the wrapper and returns the source's graph.
	Load func() (*graph.Graph, error)
}

// Reloader watches source files and hot-reloads the evaluator's data
// graph: when a file changes, the affected sources are re-wrapped through
// the mediator, the contribution delta is computed, and a complete new
// graph is swapped into the evaluator with delta-based cache
// invalidation (Evaluator.SwapData). A failed reload — parse error,
// missing file, injected fault — degrades gracefully: the server keeps
// serving the last-good graph, Health reports degraded, and the reloader
// retries with exponential backoff plus jitter until the sources are
// loadable again.
type Reloader struct {
	// Interval is the poll period; Run's ticker fires at this rate.
	Interval time.Duration
	// BackoffMin and BackoffMax bound the exponential retry backoff after
	// failed reloads (doubling per consecutive failure).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Jitter is the ± fraction applied to each backoff delay (0.2 = ±20%)
	// so a fleet of servers does not retry in lockstep.
	Jitter float64
	// Logger receives reload/degradation logs; nil uses the default.
	Logger *log.Logger
	// OnApply, when set, observes every successful swap (tests hook it).
	OnApply func(d *mediator.Delta, kept, dropped int)
	// Obs, when non-nil, receives reload attempt/failure/outcome counters.
	// Set before Run; nil disables.
	Obs *obs.ServeMetrics
	// IVM, when non-nil, receives delta-path counters: deltas handed to
	// the evaluator, pending-delta compactions, and overflows degraded
	// to a full cache invalidation. Set before Run; nil disables.
	IVM *obs.IVMMetrics
	// MaxPendingDelta bounds the accumulated (compacted) delta carried
	// across failed reload rounds. Past the bound the reloader stops
	// tracking individual changes and the next successful swap drops the
	// whole cache (a nil delta) instead — bounded memory, never a stale
	// page. 0 means DefaultMaxPendingDelta.
	MaxPendingDelta int

	med     *mediator.Mediator
	watched []WatchedSource

	mu sync.Mutex // guards everything below (tick vs. Kick vs. tests)
	sw Swapper
	hl *Health
	// stamps records the last-seen mtime+size per path.
	stamps map[string]fileStamp
	// pending names sources whose change was detected but not yet
	// successfully re-wrapped.
	pending map[string]bool
	// accum accumulates contribution deltas of successful refreshes since
	// the last swap (a source can succeed while a sibling fails; its
	// delta must survive until the swap happens).
	accum *mediator.Delta
	// overflow marks that accum outgrew MaxPendingDelta: the next swap
	// passes a nil delta (full invalidation) and clears the flag.
	overflow bool
	// backoff is the current retry delay; nextTry gates attempts.
	backoff time.Time
	delay   time.Duration
	kick    chan struct{}
	rng     *rand.Rand
}

// DefaultMaxPendingDelta is the pending-delta bound when
// Reloader.MaxPendingDelta is zero.
const DefaultMaxPendingDelta = 1 << 20

type fileStamp struct {
	mtime time.Time
	size  int64
	ok    bool
	// hash is an FNV-64a content hash, computed only for files whose
	// mtime is recent (within the hash window): a sub-second edit can
	// leave mtime and size unchanged on filesystems with coarse
	// timestamps, and only the content betrays it. hashed records
	// whether hash is meaningful.
	hash   uint64
	hashed bool
}

// changedFrom reports whether st differs from old. Metadata decides
// first; equal metadata falls back to the content hash when both sides
// have one (a quiescent file outside the hash window costs one stat and
// no read).
func (st fileStamp) changedFrom(old fileStamp) bool {
	if st.ok != old.ok || st.size != old.size || !st.mtime.Equal(old.mtime) {
		return true
	}
	return st.hashed && old.hashed && st.hash != old.hash
}

// NewReloader builds a reloader (and its mediator) over watched sources.
func NewReloader(sources ...WatchedSource) (*Reloader, error) {
	med := make([]mediator.Source, len(sources))
	for i, s := range sources {
		if len(s.Paths) == 0 {
			return nil, fmt.Errorf("dynamic: watched source %q has no paths to poll", s.Name)
		}
		med[i] = mediator.Source{Name: s.Name, Load: s.Load}
	}
	m, err := mediator.New(med...)
	if err != nil {
		return nil, err
	}
	return &Reloader{
		Interval:   2 * time.Second,
		BackoffMin: 500 * time.Millisecond,
		BackoffMax: 30 * time.Second,
		Jitter:     0.2,
		med:        m,
		watched:    sources,
		stamps:     map[string]fileStamp{},
		pending:    map[string]bool{},
		accum:      &mediator.Delta{},
		kick:       make(chan struct{}, 1),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// Warehouse performs the initial load of every source and returns the
// merged, indexed data graph; it also records the initial file stamps so
// the first poll does not re-report the initial state as a change.
func (r *Reloader) Warehouse() (*repo.Indexed, error) {
	data, err := r.med.Warehouse()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for _, s := range r.watched {
		for _, p := range s.Paths {
			r.stamps[p] = r.statPath(p, now)
		}
	}
	return data, nil
}

// Swapper receives atomically published data generations from the
// reload loop. Evaluator implements it directly; the fleet coordinator
// implements it by re-replicating the snapshot into every shard replica
// and bumping the fleet generation.
type Swapper interface {
	SwapData(src struql.Source, d *mediator.Delta) (kept, dropped int)
}

// Attach connects the reloader to the evaluator it maintains and the
// health it reports into. Call before Run.
func (r *Reloader) Attach(ev *Evaluator, h *Health) {
	// A nil *Evaluator must become a nil interface, not a typed nil the
	// swap path would happily call into.
	if ev == nil {
		r.AttachSwapper(nil, h)
		return
	}
	r.AttachSwapper(ev, h)
}

// AttachSwapper is Attach for any Swapper — a single evaluator or a
// whole fleet. Call before Run.
func (r *Reloader) AttachSwapper(sw Swapper, h *Health) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sw = sw
	r.hl = h
}

// Kick requests an immediate poll (subject to backoff), without waiting
// for the next ticker fire.
func (r *Reloader) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Run polls until the context ends. Start it in its own goroutine.
func (r *Reloader) Run(ctx context.Context) {
	ticker := time.NewTicker(r.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-r.kick:
		}
		r.Tick(time.Now())
	}
}

func (r *Reloader) logf(format string, args ...any) {
	if r.Logger != nil {
		r.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// hashWindow is how far back an mtime still triggers a content hash:
// generously past the poll interval, so every file that plausibly
// changed since the last poll gets hashed, while long-quiescent files
// cost one stat each.
func (r *Reloader) hashWindow() time.Duration {
	return 2*r.Interval + 2*time.Second
}

// statPath stamps a file: metadata always, content hash only when the
// mtime is within the hash window.
func (r *Reloader) statPath(path string, now time.Time) fileStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{ok: false}
	}
	st := fileStamp{mtime: fi.ModTime(), size: fi.Size(), ok: true}
	if now.Sub(st.mtime) < r.hashWindow() {
		if h, err := hashFile(path); err == nil {
			st.hash, st.hashed = h, true
		}
	}
	return st
}

// hashFile is FNV-64a over the file contents — collision quality is
// irrelevant here, only "did the bytes change" cheaply.
func hashFile(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h, nil
}

// Tick runs one poll step at the given time: detect changed sources,
// attempt the reload unless backing off, and on failure degrade and
// schedule the retry. Exported as the deterministic test entry point;
// Run calls it with the wall clock.
func (r *Reloader) Tick(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Change detection always runs (so changes during backoff are not
	// lost), but reload attempts respect the backoff gate.
	for _, s := range r.watched {
		for _, p := range s.Paths {
			st := r.statPath(p, now)
			if st.changedFrom(r.stamps[p]) {
				r.stamps[p] = st
				r.pending[s.Name] = true
			}
		}
	}
	if len(r.pending) == 0 || now.Before(r.backoff) {
		return
	}

	for _, s := range r.watched {
		if !r.pending[s.Name] {
			continue
		}
		if r.Obs != nil {
			r.Obs.ReloadAttempts.Inc()
		}
		d, err := r.med.Refresh(s.Name)
		if err != nil {
			r.fail(now, s.Name, err)
			return
		}
		before := r.accum.Size()
		r.accum.Merge(d)
		if r.accum.Size() < before+d.Size() && r.IVM != nil {
			r.IVM.DeltaCompactions.Inc()
		}
		maxPending := r.MaxPendingDelta
		if maxPending <= 0 {
			maxPending = DefaultMaxPendingDelta
		}
		if r.accum.Size() > maxPending && !r.overflow {
			r.overflow = true
			if r.IVM != nil {
				r.IVM.DeltaOverflows.Inc()
			}
		}
		delete(r.pending, s.Name)
	}

	// Every changed source re-wrapped: publish the new graph atomically.
	data := repo.NewIndexed(r.med.DataGraph())
	delta := r.accum
	r.accum = &mediator.Delta{}
	if r.overflow {
		// The pending delta overflowed its bound at some point: its
		// record is no longer a faithful account of the change, so the
		// swap must invalidate everything.
		delta = nil
		r.overflow = false
	}
	kept, dropped := 0, 0
	if r.sw != nil {
		kept, dropped = r.sw.SwapData(data, delta)
	}
	if r.IVM != nil {
		r.IVM.DeltasApplied.Inc()
	}
	if r.hl != nil {
		r.hl.SetHealthy()
	}
	r.delay = 0
	r.backoff = time.Time{}
	if r.Obs != nil {
		r.Obs.ReloadApplied.Inc()
		r.Obs.ReloadKept.Add(int64(kept))
		r.Obs.ReloadDropped.Add(int64(dropped))
	}
	if r.OnApply != nil {
		r.OnApply(delta, kept, dropped)
	}
	if delta == nil {
		r.logf("dynamic: reload applied: pending delta overflowed, full invalidation, cache kept %d / dropped %d", kept, dropped)
	} else {
		r.logf("dynamic: reload applied: %d changes, cache kept %d / dropped %d", delta.Size(), kept, dropped)
	}
}

// fail records a failed reload: mark degraded, keep the source pending,
// and push the next attempt out by an exponentially growing, jittered
// delay.
//
// Failure accounting distinguishes attempts from rounds: ReloadFailures
// counts every failed attempt (each backoff retry adds one), while
// ReloadRoundsFailed counts degraded windows — it is incremented only on
// the healthy→degraded transition (delay still zero), so a round that
// takes several retries before a successful swap still counts exactly
// once, and the next failure after that swap opens a new round.
func (r *Reloader) fail(now time.Time, source string, err error) {
	if r.Obs != nil {
		r.Obs.ReloadFailures.Inc()
		if r.delay == 0 {
			r.Obs.ReloadRoundsFailed.Inc()
		}
	}
	if r.hl != nil {
		r.hl.SetDegraded(fmt.Errorf("source %s: %w", source, err))
	}
	if r.delay == 0 {
		r.delay = r.BackoffMin
	} else {
		r.delay *= 2
		if r.delay > r.BackoffMax {
			r.delay = r.BackoffMax
		}
	}
	d := r.delay
	if r.Jitter > 0 {
		f := 1 + r.Jitter*(2*r.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	r.backoff = now.Add(d)
	r.logf("dynamic: reload of source %s failed (serving last-good data, retry in %v): %v", source, d.Round(time.Millisecond), err)
}

// RetryDelay returns the current backoff delay (0 when healthy); tests
// use it to assert exponential growth.
func (r *Reloader) RetryDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delay
}
