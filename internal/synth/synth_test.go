package synth

import (
	"strings"
	"testing"
)

func TestOrganizationDeterministic(t *testing.T) {
	a := Organization(50, 5, 10)
	b := Organization(50, 5, 10)
	if a.PeopleCSV() != b.PeopleCSV() || a.OrgsCSV() != b.OrgsCSV() || a.ProjectsDDL() != b.ProjectsDDL() {
		t.Error("organization generation must be deterministic")
	}
}

func TestOrganizationShape(t *testing.T) {
	d := Organization(100, 8, 20)
	if len(d.People) != 100 || len(d.Orgs) != 8 || len(d.Projects) != 20 {
		t.Fatalf("sizes = %d/%d/%d", len(d.People), len(d.Orgs), len(d.Projects))
	}
	// §6.3 irregularities must be present: some people lack phones, some
	// projects lack synopses and sponsors, some are proprietary.
	var noPhone, noSynopsis, noSponsor, proprietary int
	for _, p := range d.People {
		if p.Phone == "" {
			noPhone++
		}
	}
	for _, pr := range d.Projects {
		if pr.Synopsis == "" {
			noSynopsis++
		}
		if pr.Sponsor == "" {
			noSponsor++
		}
		if pr.Proprietary {
			proprietary++
		}
	}
	if noPhone == 0 || noSynopsis == 0 || noSponsor == 0 || proprietary == 0 {
		t.Errorf("irregularities missing: noPhone=%d noSynopsis=%d noSponsor=%d proprietary=%d",
			noPhone, noSynopsis, noSponsor, proprietary)
	}
	// Every project member is a real person id.
	people := map[string]bool{}
	for _, p := range d.People {
		people[p.ID] = true
	}
	for _, pr := range d.Projects {
		for _, m := range pr.Members {
			if !people[m] {
				t.Errorf("project %s has unknown member %s", pr.ID, m)
			}
		}
	}
	// Every org director is a real person.
	for _, o := range d.Orgs {
		if !people[o.Director] {
			t.Errorf("org %s has unknown director %s", o.ID, o.Director)
		}
	}
}

func TestCSVHeaders(t *testing.T) {
	d := Organization(5, 2, 2)
	if !strings.HasPrefix(d.PeopleCSV(), "id,name,office,phone,org,area,internal\n") {
		t.Error("people header wrong")
	}
	if !strings.HasPrefix(d.OrgsCSV(), "id,name,director\n") {
		t.Error("orgs header wrong")
	}
	if lines := strings.Count(d.PeopleCSV(), "\n"); lines != 6 {
		t.Errorf("people rows = %d, want 6 (header + 5)", lines)
	}
}

func TestBibliographyIrregularities(t *testing.T) {
	bib := Bibliography(60, "t")
	if strings.Count(bib, "@article{")+strings.Count(bib, "@inproceedings{") != 60 {
		t.Error("entry count wrong")
	}
	// Both journal and conference entries exist.
	if !strings.Contains(bib, "journal =") || !strings.Contains(bib, "booktitle =") {
		t.Error("venue irregularity missing")
	}
	// Some entries lack months (fewer month fields than entries).
	if n := strings.Count(bib, "month ="); n == 0 || n == 60 {
		t.Errorf("month fields = %d, want 0 < n < 60", n)
	}
	if !strings.Contains(bib, "proprietary =") {
		t.Error("no proprietary entries")
	}
	if Bibliography(60, "t") != bib {
		t.Error("bibliography must be deterministic")
	}
	// Different owners get different corpora.
	if Bibliography(60, "other") == bib {
		t.Error("owner should seed the corpus")
	}
}

func TestNewsSiteCoversCategories(t *testing.T) {
	arts := NewsSite(40)
	if len(arts) != 40 {
		t.Fatalf("articles = %d", len(arts))
	}
	seen := map[string]bool{}
	for _, a := range arts {
		seen[a.Category] = true
		if !strings.Contains(a.HTML, "<title>") || !strings.Contains(a.HTML, a.Category) {
			t.Errorf("article %s HTML malformed", a.Name)
		}
	}
	for _, c := range NewsCategories() {
		if !seen[c] {
			t.Errorf("category %s unused", c)
		}
	}
	// Related links reference earlier articles only.
	for i, a := range arts {
		if i == 0 && strings.Contains(a.HTML, "Related coverage") {
			t.Error("first article cannot have a related link")
		}
	}
}

func TestBioPages(t *testing.T) {
	d := Organization(9, 2, 2)
	bios := d.BioPages()
	if len(bios) != 3 { // every third person
		t.Fatalf("bios = %d, want 3", len(bios))
	}
	for _, b := range bios {
		if !strings.Contains(b.HTML, `meta name="about"`) {
			t.Errorf("bio %s lacks the about join key", b.Name)
		}
	}
}

func TestRNGStability(t *testing.T) {
	// The generated corpora are part of the experiment definition; pin a
	// few bytes so accidental generator changes are caught.
	d := Organization(3, 1, 1)
	if d.People[0].ID != "p0000" {
		t.Errorf("first person id = %s", d.People[0].ID)
	}
	if !strings.Contains(Bibliography(1, "x"), "@") {
		t.Error("bibliography empty")
	}
}
