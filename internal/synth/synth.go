// Package synth generates the deterministic synthetic datasets that stand
// in for the paper's proprietary inputs (see DESIGN.md, Substitutions):
// an AT&T-Research-style organization (people, organizations, projects,
// bios), BibTeX bibliographies with the §6.3 irregularities, and a
// CNN-style corpus of HTML news articles. Everything is a pure function
// of its size parameters, so examples, tests, and benchmarks reproduce
// byte-identical inputs.
package synth

import (
	"fmt"
	"strings"
)

// rng is a small deterministic linear congruential generator; math/rand
// would work, but a local implementation pins the sequence forever.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 17
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var (
	firstNames = []string{"Mary", "Daniela", "Jaewoo", "Alon", "Dan", "Ada", "Grace", "Edsger", "Barbara", "Leslie",
		"Tim", "Radia", "Ken", "Dana", "Jim", "Pat", "Lee", "Sam", "Kim", "Alex"}
	lastNames = []string{"Fernandez", "Florescu", "Kang", "Levy", "Suciu", "Lovelace", "Hopper", "Dijkstra", "Liskov",
		"Lamport", "Berners-Lee", "Perlman", "Thompson", "Scott", "Gray", "Selinger", "Stone", "Rivest", "Chen", "Aho"}
	researchAreas = []string{"databases", "networking", "algorithms", "systems", "security", "languages", "theory", "speech"}
	projectWords  = []string{"Strudel", "Tukwila", "Ariadne", "Garlic", "Tsimmis", "Lore", "WebOQL", "Araneus", "AutoWeb",
		"Mediator", "Wrapper", "Catalog", "Atlas", "Harvest"}
	newsCategories = []string{"world", "us", "politics", "business", "technology", "sports", "health", "weather"}
	headlineVerbs  = []string{"Rises", "Falls", "Expands", "Surprises", "Rallies", "Stalls", "Recovers", "Shifts"}
	headlineNouns  = []string{"Market", "Senate", "Network", "Team", "Storm", "Industry", "Campaign", "Study"}
)

// Person is one synthetic researcher.
type Person struct {
	ID       string
	Name     string
	Office   string
	Phone    string // empty for some people (missing attribute)
	Org      string
	Area     string
	Internal string // proprietary detail, internal site only
}

// Org is one synthetic organization.
type Org struct {
	ID       string
	Name     string
	Director string // person ID
}

// Project is one synthetic project.
type Project struct {
	ID          string
	Name        string
	Area        string
	Members     []string // person IDs
	Synopsis    string   // empty for some projects (§6.3: omitted at entry)
	Sponsor     string   // empty for unsponsored projects (§6.3)
	Proprietary bool     // excluded from the external site
}

// OrgData is the full synthetic organization.
type OrgData struct {
	People   []Person
	Orgs     []Org
	Projects []Project
}

// Organization generates nPeople people in nOrgs organizations with
// nProjects projects, deterministically.
func Organization(nPeople, nOrgs, nProjects int) *OrgData {
	r := newRNG(42)
	d := &OrgData{}
	for i := 0; i < nOrgs; i++ {
		area := researchAreas[i%len(researchAreas)]
		d.Orgs = append(d.Orgs, Org{
			ID:   fmt.Sprintf("org%02d", i),
			Name: strings.Title(area) + " Research",
		})
	}
	for i := 0; i < nPeople; i++ {
		first := firstNames[r.intn(len(firstNames))]
		last := lastNames[r.intn(len(lastNames))]
		p := Person{
			ID:     fmt.Sprintf("p%04d", i),
			Name:   fmt.Sprintf("%s %s %d", first, last, i),
			Office: fmt.Sprintf("%c-%03d", 'A'+byte(r.intn(4)), 100+r.intn(300)),
			Org:    d.Orgs[i%nOrgs].ID,
			Area:   researchAreas[r.intn(len(researchAreas))],
		}
		if r.intn(10) != 0 { // every tenth person lacks a phone
			p.Phone = fmt.Sprintf("555-%04d", r.intn(10000))
		}
		if r.intn(3) == 0 {
			p.Internal = fmt.Sprintf("comp-band %d", 1+r.intn(5))
		}
		d.People = append(d.People, p)
	}
	for i := range d.Orgs {
		d.Orgs[i].Director = d.People[i%len(d.People)].ID
	}
	for i := 0; i < nProjects; i++ {
		pr := Project{
			ID:   fmt.Sprintf("proj%03d", i),
			Name: fmt.Sprintf("%s-%d", projectWords[r.intn(len(projectWords))], i),
			Area: researchAreas[i%len(researchAreas)],
		}
		nm := 2 + r.intn(4)
		for j := 0; j < nm && j < nPeople; j++ {
			pr.Members = append(pr.Members, d.People[(i*7+j*13)%nPeople].ID)
		}
		if r.intn(4) != 0 { // some projects omit the synopsis (§6.3)
			pr.Synopsis = fmt.Sprintf("%s investigates %s techniques.", pr.Name, pr.Area)
		}
		if r.intn(2) == 0 { // not all projects are sponsored (§6.3)
			pr.Sponsor = fmt.Sprintf("Grant-%03d", r.intn(900)+100)
		}
		pr.Proprietary = r.intn(5) == 0
		d.Projects = append(d.Projects, pr)
	}
	return d
}

// PeopleCSV renders the people relation as CSV for the csvrel wrapper.
func (d *OrgData) PeopleCSV() string {
	var b strings.Builder
	b.WriteString("id,name,office,phone,org,area,internal\n")
	for _, p := range d.People {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s,%s\n", p.ID, p.Name, p.Office, p.Phone, p.Org, p.Area, p.Internal)
	}
	return b.String()
}

// OrgsCSV renders the organizations relation as CSV.
func (d *OrgData) OrgsCSV() string {
	var b strings.Builder
	b.WriteString("id,name,director\n")
	for _, o := range d.Orgs {
		fmt.Fprintf(&b, "%s,%s,%s\n", o.ID, o.Name, o.Director)
	}
	return b.String()
}

// ProjectsDDL renders projects as a structured file in the
// data-definition language (the paper's "structured files that contain
// project data").
func (d *OrgData) ProjectsDDL() string {
	var b strings.Builder
	b.WriteString("collection Projects;\n")
	for _, p := range d.Projects {
		fmt.Fprintf(&b, "node %s in Projects {\n", p.ID)
		fmt.Fprintf(&b, "    name %q;\n", p.Name)
		fmt.Fprintf(&b, "    area %q;\n", p.Area)
		for _, m := range p.Members {
			fmt.Fprintf(&b, "    member &People/%s;\n", m)
		}
		if p.Synopsis != "" {
			fmt.Fprintf(&b, "    synopsis %q;\n", p.Synopsis)
		}
		if p.Sponsor != "" {
			fmt.Fprintf(&b, "    sponsor %q;\n", p.Sponsor)
		}
		if p.Proprietary {
			b.WriteString("    proprietary true;\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Bibliography generates a BibTeX file of n entries with the §6.3
// irregularities: some entries lack months, journal papers have journal
// fields while conference papers have booktitles, and some entries lack
// abstracts.
func Bibliography(n int, who string) string {
	r := newRNG(7 + uint64(len(who)))
	var b strings.Builder
	b.WriteString("@string{sigmod = \"SIGMOD Conference\"}\n")
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s%03d", who, i)
		year := 1989 + i%10
		nAuth := 1 + r.intn(4)
		var authors []string
		for j := 0; j < nAuth; j++ {
			authors = append(authors, fmt.Sprintf("%s %s",
				firstNames[r.intn(len(firstNames))], lastNames[r.intn(len(lastNames))]))
		}
		isJournal := r.intn(3) == 0
		typ := "inproceedings"
		if isJournal {
			typ = "article"
		}
		fmt.Fprintf(&b, "@%s{%s,\n", typ, key)
		fmt.Fprintf(&b, "  title = {%s %s of %s Systems %d},\n",
			strings.Title(researchAreas[r.intn(len(researchAreas))]),
			headlineVerbs[r.intn(len(headlineVerbs))],
			projectWords[r.intn(len(projectWords))], i)
		fmt.Fprintf(&b, "  author = {%s},\n", strings.Join(authors, " and "))
		fmt.Fprintf(&b, "  year = %d,\n", year)
		if isJournal {
			fmt.Fprintf(&b, "  journal = {TODS %d},\n", year-1980)
		} else {
			b.WriteString("  booktitle = sigmod,\n")
		}
		if r.intn(3) != 0 { // some entries lack months
			fmt.Fprintf(&b, "  month = {%s},\n", []string{"January", "April", "June", "September"}[r.intn(4)])
		}
		if r.intn(4) != 0 {
			fmt.Fprintf(&b, "  abstract = {abstracts/%s.txt},\n", key)
		}
		fmt.Fprintf(&b, "  postscript = {ps/%s.ps},\n", key)
		cats := []string{researchAreas[i%len(researchAreas)]}
		if r.intn(2) == 0 {
			cats = append(cats, researchAreas[(i+3)%len(researchAreas)])
		}
		if r.intn(6) == 0 {
			fmt.Fprintf(&b, "  proprietary = {yes},\n")
		}
		fmt.Fprintf(&b, "  category = {%s},\n}\n\n", strings.Join(cats, ", "))
	}
	return b.String()
}

// BioPages generates hand-written-style HTML bio pages for every third
// person — the paper's "existing HTML files" source, joined to the
// personnel database by the about meta attribute.
func (d *OrgData) BioPages() []Article {
	var out []Article
	for i, p := range d.People {
		if i%3 != 0 {
			continue
		}
		html := fmt.Sprintf(`<html><head><title>About %s</title>
<meta name="about" content="%s">
</head><body>
<h1>%s</h1>
<p>%s joined the lab to work on %s. Office %s.</p>
</body></html>`, p.Name, p.ID, p.Name, p.Name, p.Area, p.Office)
		out = append(out, Article{Name: "bio-" + p.ID, Title: "About " + p.Name, HTML: html})
	}
	return out
}

// Article is one synthetic news article.
type Article struct {
	Name     string
	Title    string
	Category string
	HTML     string
}

// NewsSite generates n CNN-style article pages in HTML, spread across the
// standard categories (sports included — the sports-only site of §5.1
// filters on it).
func NewsSite(n int) []Article {
	r := newRNG(1998)
	out := make([]Article, 0, n)
	for i := 0; i < n; i++ {
		cat := newsCategories[i%len(newsCategories)]
		title := fmt.Sprintf("%s %s as %s Watches (%d)",
			strings.Title(headlineNouns[r.intn(len(headlineNouns))]),
			headlineVerbs[r.intn(len(headlineVerbs))],
			strings.Title(cat), i)
		name := fmt.Sprintf("%s%03d", cat, i)
		var related string
		if i > 0 {
			related = fmt.Sprintf(`<a href="%s.html">Related coverage</a>`, out[r.intn(len(out))].Name)
		}
		html := fmt.Sprintf(`<html><head><title>%s</title>
<meta name="category" content="%s">
<meta name="date" content="1998-%02d-%02d">
</head><body>
<h1>%s</h1>
<p>Reporters said on %s that the %s continued to %s.</p>
<p>Observers in the %s community were not surprised; paragraph %d supplies additional detail for length.</p>
%s
<img src="images/%s.gif">
</body></html>`,
			title, cat, 1+i%12, 1+i%28, title,
			[]string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday"}[r.intn(5)],
			headlineNouns[r.intn(len(headlineNouns))],
			strings.ToLower(headlineVerbs[r.intn(len(headlineVerbs))]),
			cat, i, related, name)
		out = append(out, Article{Name: name, Title: title, Category: cat, HTML: html})
	}
	return out
}

// NewsCategories returns the category vocabulary used by NewsSite.
func NewsCategories() []string { return append([]string(nil), newsCategories...) }
