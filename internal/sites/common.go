package sites

import (
	"fmt"

	"strudel/internal/ddl"
	"strudel/internal/diag"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/wrapper/bibtex"
	"strudel/internal/wrapper/csvrel"
	"strudel/internal/wrapper/htmlwrap"
)

// DDLSource wraps a data-definition-language document as a mediator
// source (the "structured files" of §5.1 and Strudel's internal data
// files). The source carries both a strict and a lenient loader, so
// fail-soft builds skip malformed statements instead of aborting.
func DDLSource(name, src string) mediator.Source {
	return mediator.Source{
		Name: name,
		Load: func() (*graph.Graph, error) {
			doc, err := ddl.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("source %s: %w", name, err)
			}
			return doc.Graph, nil
		},
		LoadLenient: func() (*graph.Graph, *diag.Report, error) {
			doc, rep := ddl.ParseLenient(src, name)
			return doc.Graph, rep, nil
		},
	}
}

// BibSource wraps a BibTeX bibliography as a mediator source with strict
// and lenient loaders.
func BibSource(name, src string, opts bibtex.Options) mediator.Source {
	return mediator.Source{
		Name: name,
		Load: func() (*graph.Graph, error) {
			return bibtex.Load(src, opts)
		},
		LoadLenient: func() (*graph.Graph, *diag.Report, error) {
			g, rep := bibtex.LoadLenient(src, name, opts)
			return g, rep, nil
		},
	}
}

// CSVSource wraps a CSV table as a mediator source with strict and
// lenient loaders.
func CSVSource(name, src string, opts csvrel.Options) mediator.Source {
	return mediator.Source{
		Name: name,
		Load: func() (*graph.Graph, error) {
			return csvrel.Load(src, opts)
		},
		LoadLenient: func() (*graph.Graph, *diag.Report, error) {
			return csvrel.LoadLenient(src, name, opts)
		},
	}
}

// HTMLSource wraps a set of HTML documents as a mediator source with
// strict and lenient loaders; lenient loading drops pages whose markup
// is damaged beyond extraction.
func HTMLSource(name string, docs []htmlwrap.Doc, opts htmlwrap.Options) mediator.Source {
	return mediator.Source{
		Name: name,
		Load: func() (*graph.Graph, error) {
			pages := make([]*htmlwrap.Page, len(docs))
			for i, d := range docs {
				pages[i] = htmlwrap.Extract(d.Name, d.Src)
			}
			return htmlwrap.Wrap(pages, opts), nil
		},
		LoadLenient: func() (*graph.Graph, *diag.Report, error) {
			g, rep := htmlwrap.LoadLenient(docs, name, opts)
			return g, rep, nil
		},
	}
}
