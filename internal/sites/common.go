package sites

import (
	"fmt"

	"strudel/internal/ddl"
	"strudel/internal/graph"
	"strudel/internal/mediator"
)

// DDLSource wraps a data-definition-language document as a mediator
// source (the "structured files" of §5.1 and Strudel's internal data
// files).
func DDLSource(name, src string) mediator.Source {
	return mediator.Source{Name: name, Load: func() (*graph.Graph, error) {
		doc, err := ddl.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("source %s: %w", name, err)
		}
		return doc.Graph, nil
	}}
}
