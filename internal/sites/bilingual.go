package sites

import (
	"strudel/internal/core"
	"strudel/internal/mediator"
	"strudel/internal/synth"
)

// BilingualQuery defines the INRIA-Rodin-style site (§5.1): one StruQL
// query defines both an English and a French view of the same data and
// creates the cross-links between them, so that each English page links
// to the equivalent French page and vice versa.
const BilingualQuery = `
create EnHome(), FrHome()
link EnHome() -> "title" -> "The Rodin Project",
     FrHome() -> "title" -> "Le projet Rodin",
     EnHome() -> "otherLanguage" -> FrHome(),
     FrHome() -> "otherLanguage" -> EnHome()

where Projects(j)
create EnProjectPage(j), FrProjectPage(j)
link EnHome() -> "Project" -> EnProjectPage(j),
     FrHome() -> "Project" -> FrProjectPage(j),
     EnProjectPage(j) -> "otherLanguage" -> FrProjectPage(j),
     FrProjectPage(j) -> "otherLanguage" -> EnProjectPage(j),
     EnProjectPage(j) -> "home" -> EnHome(),
     FrProjectPage(j) -> "home" -> FrHome()
{
  where j -> l -> v
  link EnProjectPage(j) -> l -> v,
       FrProjectPage(j) -> l -> v
}
`

func bilingualTemplates() map[string]string {
	return map[string]string{
		"EnHome": `<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<p><SFMT otherLanguage TEXT=title></p>
<h2>Projects</h2>
<SFMT Project UL ORDER=ascend KEY=name TEXT=name>
</body></html>`,
		"FrHome": `<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<p><SFMT otherLanguage TEXT=title></p>
<h2>Projets</h2>
<SFMT Project UL ORDER=ascend KEY=name TEXT=name>
</body></html>`,
		"EnProject": `<html><head><title><SFMT name></title></head><body>
<h1>Project <SFMT name></h1>
<p>(<SFMT otherLanguage TEXT=name> — version française)</p>
<p>Area: <SFMT area></p>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<SIF sponsor><p>Sponsored by <SFMT sponsor>.</p></SIF>
<p><SFMT home TEXT=title></p>
</body></html>`,
		"FrProject": `<html><head><title><SFMT name></title></head><body>
<h1>Projet <SFMT name></h1>
<p>(<SFMT otherLanguage TEXT=name> — English version)</p>
<p>Domaine : <SFMT area></p>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<SIF sponsor><p>Financé par <SFMT sponsor>.</p></SIF>
<p><SFMT home TEXT=title></p>
</body></html>`,
	}
}

// Bilingual builds the bilingual-site spec over nProjects projects. Both
// language views come from the single BilingualQuery.
func Bilingual(nProjects int) *core.Spec {
	data := synth.Organization(10, 2, nProjects)
	return &core.Spec{
		Name: "bilingual",
		Sources: []mediator.Source{
			DDLSource("projects", data.ProjectsDDL()),
		},
		Versions: []core.Version{{
			Name:      "both",
			Queries:   []string{BilingualQuery},
			Templates: bilingualTemplates(),
			PerObject: map[string]string{
				"EnHome()": "EnHome",
				"FrHome()": "FrHome",
			},
			ObjectTemplatePrefixes: map[string]string{
				"EnProjectPage(": "EnProject",
				"FrProjectPage(": "FrProject",
			},
			Roots: []string{"EnHome()", "FrHome()"},
			Constraints: []string{
				`every FrProjectPage reachable from EnProjectPage via "otherLanguage"`,
				`every EnProjectPage reachable from FrProjectPage via "otherLanguage"`,
				`connected from EnHome`,
			},
		}},
	}
}
