package sites

import (
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/struql"
)

func build(t *testing.T, spec *core.Spec) *core.BuildResult {
	t.Helper()
	res, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHomepageBuilds(t *testing.T) {
	res := build(t, Homepage(20))
	in := res.Versions["internal"]
	ex := res.Versions["external"]
	if in == nil || ex == nil {
		t.Fatal("versions missing")
	}
	if !in.ChecksPass {
		t.Errorf("internal checks: %+v", in.Checks)
	}
	// The internal root shows patents; the external one does not.
	iroot := in.Output.Pages["index.html"]
	eroot := ex.Output.Pages["index.html"]
	if !strings.Contains(iroot, "Patents") {
		t.Error("internal root should link patents")
	}
	if strings.Contains(eroot, "Patents") {
		t.Error("external root must not link patents")
	}
	// The proprietary project is hidden externally.
	if !strings.Contains(iroot, "Hush") {
		t.Error("internal root should show Hush")
	}
	if strings.Contains(eroot, "Hush") {
		t.Error("external root must hide Hush")
	}
	// Both versions come from the same query.
	if in.Stats.QueryLines != ex.Stats.QueryLines {
		t.Error("versions should share the query")
	}
	t.Logf("homepage internal: %s", in.Stats)
}

func TestHomepageStatsNearPaper(t *testing.T) {
	// §5.1: mff homepage = 48-line query, 13 templates (202 lines). The
	// shape matters, not the exact numbers; assert the same order of
	// magnitude.
	res := build(t, Homepage(20))
	st := res.Versions["internal"].Stats
	if st.QueryLines < 30 || st.QueryLines > 110 {
		t.Errorf("QueryLines = %d, want within ~2x of the paper's 48", st.QueryLines)
	}
	if st.Templates < 8 || st.Templates > 20 {
		t.Errorf("Templates = %d, want near the paper's 13", st.Templates)
	}
	if st.Pages < 20 {
		t.Errorf("Pages = %d, expected dozens for 20 publications", st.Pages)
	}
}

func TestHomepageProprietaryPubsHiddenExternally(t *testing.T) {
	res := build(t, Homepage(30))
	in := res.Versions["internal"]
	ex := res.Versions["external"]
	count := func(out map[string]string, frag string) int {
		n := 0
		for _, page := range out {
			if strings.Contains(page, frag) {
				n++
			}
		}
		return n
	}
	// Internally, proprietary papers are marked; externally the marker
	// never appears and the proprietary presentations are simply not
	// realized as pages (they are filtered out of every listing).
	if count(in.Output.Pages, "[proprietary]") == 0 {
		t.Error("corpus should contain proprietary publications (internal marker missing)")
	}
	if count(ex.Output.Pages, "[proprietary]") != 0 {
		t.Error("external site leaks the proprietary marker")
	}
	pages := func(out map[graph.OID]string, prefix string) int {
		n := 0
		for oid := range out {
			if strings.HasPrefix(string(oid), prefix) {
				n++
			}
		}
		return n
	}
	ip := pages(in.Output.PageFiles, "PaperPresentation(")
	ep := pages(ex.Output.PageFiles, "PaperPresentation(")
	if ep >= ip {
		t.Errorf("external presentations = %d, internal = %d; proprietary ones should be absent", ep, ip)
	}
}

func TestCNNBuilds(t *testing.T) {
	res := build(t, CNN(60))
	gen := res.Versions["general"]
	sp := res.Versions["sports"]
	if !gen.ChecksPass {
		t.Errorf("general checks: %+v", gen.Checks)
	}
	if !sp.ChecksPass {
		t.Errorf("sports checks: %+v", sp.Checks)
	}
	// The general site has all categories; the sports site only sports.
	for _, oid := range gen.SiteGraph.Nodes() {
		if strings.HasPrefix(string(oid), "CategoryPage(") {
			if sp.SiteGraph.HasNode(oid) && oid != "CategoryPage(sports)" {
				t.Errorf("sports site has unexpected %s", oid)
			}
		}
	}
	if !sp.SiteGraph.HasNode("CategoryPage(sports)") {
		t.Error("sports site lacks its category page")
	}
	// Sports pages are a strict subset of article pages.
	spArticles, genArticles := 0, 0
	for _, oid := range sp.SiteGraph.Nodes() {
		if strings.HasPrefix(string(oid), "ArticlePage(") {
			spArticles++
		}
	}
	for _, oid := range gen.SiteGraph.Nodes() {
		if strings.HasPrefix(string(oid), "ArticlePage(") {
			genArticles++
		}
	}
	if spArticles == 0 || spArticles >= genArticles {
		t.Errorf("articles: sports=%d general=%d", spArticles, genArticles)
	}
	t.Logf("cnn general: %s", gen.Stats)
}

func TestCNNSportsQueryDelta(t *testing.T) {
	// §5.1: the sports-only query "only differs in two extra predicates
	// in one where clause". Verify structurally.
	gq := struql.MustParse(CNNQuery)
	sq := struql.MustParse(CNNSportsQuery)
	if len(gq.Blocks) != len(sq.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(gq.Blocks), len(sq.Blocks))
	}
	extra := 0
	for i := range gq.Blocks {
		g, s := gq.Blocks[i], sq.Blocks[i]
		extra += len(s.Where) - len(g.Where)
		if len(g.Link) != len(s.Link) || len(g.Create) != len(s.Create) {
			t.Errorf("block %d: construction differs", i)
		}
	}
	if extra != 2 {
		t.Errorf("extra predicates = %d, want 2", extra)
	}
	// And both versions share templates byte-for-byte.
	spec := CNN(8)
	for name, src := range spec.Versions[0].Templates {
		if spec.Versions[1].Templates[name] != src {
			t.Errorf("template %s differs between versions", name)
		}
	}
}

func TestOrgSiteBuilds(t *testing.T) {
	res := build(t, OrgSite(40, 4, 10, 15))
	in := res.Versions["internal"]
	ex := res.Versions["external"]
	if !in.ChecksPass {
		t.Errorf("internal checks: %+v", in.Checks)
	}
	// ~40 person pages.
	persons := 0
	for oid := range in.Output.PageFiles {
		if strings.HasPrefix(string(oid), "PersonPage(") {
			persons++
		}
	}
	if persons != 40 {
		t.Errorf("person pages = %d, want 40", persons)
	}
	// Internal person pages may carry phones; external never do.
	for oid, file := range ex.Output.PageFiles {
		if strings.HasPrefix(string(oid), "PersonPage(") {
			if strings.Contains(ex.Output.Pages[file], "Phone:") {
				t.Errorf("external %s leaks phone", oid)
				break
			}
		}
	}
	var internalHasPhone bool
	for oid, file := range in.Output.PageFiles {
		if strings.HasPrefix(string(oid), "PersonPage(") && strings.Contains(in.Output.Pages[file], "Phone:") {
			internalHasPhone = true
			break
		}
	}
	if !internalHasPhone {
		t.Error("internal person pages should show phones")
	}
	t.Logf("orgsite internal: %s", in.Stats)
}

func TestOrgSiteExternalSharesQueries(t *testing.T) {
	// §5.1: "no new queries were written for that site".
	spec := OrgSite(10, 2, 4, 5)
	if len(spec.Versions) != 2 {
		t.Fatal("want 2 versions")
	}
	if spec.Versions[0].Queries[0] != spec.Versions[1].Queries[0] {
		t.Error("external version must reuse the internal query")
	}
	// Exactly five templates differ (§5.1).
	diff := 0
	for name, src := range spec.Versions[0].Templates {
		if spec.Versions[1].Templates[name] != src {
			diff++
		}
	}
	if diff != 5 {
		t.Errorf("differing templates = %d, want 5", diff)
	}
}

func TestOrgSiteStatsNearPaper(t *testing.T) {
	// §5.1: internal site = 115-line query, 17 templates (380 lines).
	spec := OrgSite(10, 2, 4, 5)
	res := build(t, spec)
	st := res.Versions["internal"].Stats
	if st.QueryLines < 80 || st.QueryLines > 230 {
		t.Errorf("QueryLines = %d, want within ~2x of the paper's 115", st.QueryLines)
	}
	if st.Templates != 17 {
		t.Errorf("Templates = %d, want 17 as in the paper", st.Templates)
	}
}

func TestOrgSiteBioJoin(t *testing.T) {
	res := build(t, OrgSite(9, 2, 3, 4))
	in := res.Versions["internal"]
	// Every third person has a bio; check one shows up embedded.
	var found bool
	for oid, file := range in.Output.PageFiles {
		if strings.HasPrefix(string(oid), "PersonPage(") &&
			strings.Contains(in.Output.Pages[file], "joined the lab to work on") {
			found = true
		}
	}
	if !found {
		t.Error("no person page embeds a bio")
	}
}

func TestBilingualCrossLinks(t *testing.T) {
	res := build(t, Bilingual(6))
	v := res.Versions["both"]
	if !v.ChecksPass {
		t.Fatalf("checks: %+v", v.Checks)
	}
	site := v.SiteGraph
	// Every English project page cross-links its French twin and back.
	for _, oid := range site.Nodes() {
		if strings.HasPrefix(string(oid), "EnProjectPage(") {
			other := site.First(oid, "otherLanguage")
			if !other.IsNode() || !strings.HasPrefix(string(other.OID()), "FrProjectPage(") {
				t.Errorf("%s: otherLanguage = %v", oid, other)
				continue
			}
			back := site.First(other.OID(), "otherLanguage")
			if !back.IsNode() || back.OID() != oid {
				t.Errorf("%s: back link = %v", other.OID(), back)
			}
		}
	}
	// Both roots realized.
	if v.Output.PageFiles["EnHome()"] == "" || v.Output.PageFiles["FrHome()"] == "" {
		t.Error("both home pages should be realized")
	}
	fr := v.Output.Pages[v.Output.PageFiles["FrHome()"]]
	if !strings.Contains(fr, "Le projet Rodin") {
		t.Errorf("french home:\n%s", fr)
	}
}

func TestSiteGraphsDeterministic(t *testing.T) {
	a := build(t, CNN(20)).Versions["general"].SiteGraph.Dump()
	b := build(t, CNN(20)).Versions["general"].SiteGraph.Dump()
	if a != b {
		t.Error("CNN site graph not deterministic")
	}
}
