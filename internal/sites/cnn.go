package sites

import (
	"strings"

	"strudel/internal/core"
	"strudel/internal/mediator"
	"strudel/internal/synth"
	"strudel/internal/wrapper/htmlwrap"
)

// cnnQueryBody is the shared part of the CNN site-definition query. The
// general and sports-only queries differ only in the main where clause
// (two extra predicates, per §5.1); everything else is identical, so the
// body is shared and the where clause is substituted.
const cnnQueryBody = `
// Front page, masthead, footer, and the alphabetical index page.
create FrontPage(), Masthead(), IndexPage(), FooterBox()
link FrontPage() -> "name" -> "The News",
     Masthead() -> "slogan" -> "All the news that fits the graph",
     FrontPage() -> "masthead" -> Masthead(),
     FrontPage() -> "Index" -> IndexPage(),
     IndexPage() -> "name" -> "All stories",
     IndexPage() -> "masthead" -> Masthead(),
     FrontPage() -> "footer" -> FooterBox(),
     FooterBox() -> "note" -> "Copyright 1998 The News"

// An article appears in several formats on multiple pages: a summary on
// its category page, an entry on the index page, a headline on the front
// page when recent, and a full article page.
where @WHERE@
create CategoryPage(c), ArticlePage(a), Summary(a)
link FrontPage() -> "Category" -> CategoryPage(c),
     CategoryPage(c) -> "name" -> c,
     CategoryPage(c) -> "masthead" -> Masthead(),
     CategoryPage(c) -> "Story" -> Summary(a),
     IndexPage() -> "Entry" -> Summary(a),
     Summary(a) -> "FullStory" -> ArticlePage(a),
     ArticlePage(a) -> "category" -> c,
     ArticlePage(a) -> "masthead" -> Masthead(),
     ArticlePage(a) -> "CategoryHome" -> CategoryPage(c)
{
  where a -> "title" -> t
  link ArticlePage(a) -> "title" -> t,
       Summary(a) -> "title" -> t
}
{
  where a -> "body" -> b
  link ArticlePage(a) -> "body" -> b
}
{
  where a -> "date" -> d
  link ArticlePage(a) -> "date" -> d,
       Summary(a) -> "date" -> d
}
{
  where a -> "image" -> i
  link ArticlePage(a) -> "image" -> i
}
{
  where a -> "linksTo" -> r
  link ArticlePage(a) -> "Related" -> ArticlePage(r)
}
{
  // Recent stories are promoted to front-page headlines.
  where a -> "date" -> d, d >= "1998-09"
  create Headline(a)
  link FrontPage() -> "TopStory" -> Headline(a),
       Headline(a) -> "Article" -> ArticlePage(a),
       Headline(a) -> "date" -> d
}
{
  where a -> "title" -> t, a -> "date" -> d2, d2 >= "1998-09"
  link Headline(a) -> "title" -> t
}
`

// CNNQuery is the general site's query.
var CNNQuery = strings.Replace(cnnQueryBody, "@WHERE@",
	`Articles(a), a -> "category" -> c`, 1)

// CNNSportsQuery is the sports-only site's query: per §5.1 it "only
// differs in two extra predicates in one where clause".
var CNNSportsQuery = strings.Replace(cnnQueryBody, "@WHERE@",
	`Articles(a), a -> "category" -> c, a -> "category" -> sc, sc = "sports"`, 1)

// cnnTemplates returns the eight templates both CNN sites share (§5.1:
// "Both sites use the same templates"; the paper used nine).
func cnnTemplates() map[string]string {
	return map[string]string{
		"FrontPage": `<html><head><title><SFMT name></title></head><body>
<SFMT masthead EMBED>
<h1><SFMT name></h1>
<h2>Top stories</h2>
<SFMT TopStory EMBED UL ORDER=descend KEY=date>
<h2>Sections</h2>
<SFMT Category UL ORDER=ascend KEY=name TEXT=name>
<p><SFMT Index TEXT=name></p>
<SFMT footer EMBED>
</body></html>`,
		"Masthead": `<p><i><SFMT slogan></i></p>`,
		"Footer":   `<hr><i><SFMT note></i>`,
		"Headline": `<b><SFMT Article TEXT=title></b> <i>(<SFMT date>)</i>`,
		"CategoryPage": `<html><head><title><SFMT name></title></head><body>
<SFMT masthead EMBED>
<h1><SFMT name></h1>
<SFMT Story EMBED OL ORDER=descend KEY=date>
</body></html>`,
		"IndexPage": `<html><head><title><SFMT name></title></head><body>
<SFMT masthead EMBED>
<h1><SFMT name></h1>
<SFMT Entry EMBED UL ORDER=ascend KEY=title>
</body></html>`,
		"Summary": `<b><SFMT FullStory TEXT=title></b><SIF date> <i>(<SFMT date>)</i></SIF>`,
		"ArticlePage": `<html><head><title><SFMT title></title></head><body>
<SFMT masthead EMBED>
<h1><SFMT title></h1>
<p><i><SFMT date></i> &mdash; section <SFMT CategoryHome TEXT=name></p>
<SIF image><SFMT image></SIF>
<p><SFMT body></p>
<SIF Related><h3>Related coverage</h3><SFMT Related UL TEXT=title></SIF>
</body></html>`,
	}
}

// cnnTemplateAssignment maps Skolem prefixes to templates.
func cnnTemplateAssignment() map[string]string {
	return map[string]string{
		"CategoryPage(": "CategoryPage",
		"ArticlePage(":  "ArticlePage",
		"Summary(":      "Summary",
		"Headline(":     "Headline",
	}
}

// CNN builds the CNN-demo spec with nArticles wrapped HTML articles and
// two versions: the general site and the sports-only site, sharing all
// templates.
func CNN(nArticles int) *core.Spec {
	articles := synth.NewsSite(nArticles)
	docs := make([]htmlwrap.Doc, len(articles))
	internal := map[string]string{}
	for i, a := range articles {
		docs[i] = htmlwrap.Doc{Name: a.Name, Src: a.HTML}
		internal[a.Name+".html"] = a.Name
	}
	articleSource := HTMLSource("articles", docs, htmlwrap.Options{
		Collection:    "Articles",
		InternalPages: internal,
	})
	mkVersion := func(name, query string) core.Version {
		return core.Version{
			Name:      name,
			Queries:   []string{query},
			Templates: cnnTemplates(),
			PerObject: map[string]string{
				"FrontPage()": "FrontPage",
				"Masthead()":  "Masthead",
				"IndexPage()": "IndexPage",
				"FooterBox()": "Footer",
			},
			ObjectTemplatePrefixes: cnnTemplateAssignment(),
			Roots:                  []string{"FrontPage()"},
			Constraints: []string{
				`every ArticlePage reachable from FrontPage via _*`,
				`every Summary has "FullStory"`,
			},
		}
	}
	return &core.Spec{
		Name:    "cnn",
		Sources: []mediator.Source{articleSource},
		Versions: []core.Version{
			mkVersion("general", CNNQuery),
			mkVersion("sports", CNNSportsQuery),
		},
	}
}
