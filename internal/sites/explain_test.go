package sites

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/mediator"
	"strudel/internal/struql"
)

var updateExplain = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// explainSites are the §5 example sites whose planner output is pinned,
// at the same sizes the differential build harness uses, so a planner
// change that alters a chosen condition order, access path, or index
// shows up as a reviewable golden diff. Regenerate with
// `go test ./internal/sites -update`.
func explainSites() []struct {
	name string
	spec *core.Spec
} {
	return []struct {
		name string
		spec *core.Spec
	}{
		{"homepage", Homepage(30)},
		{"cnn", CNN(80)},
		{"orgsite", OrgSite(120, 7, 13, 16)},
		{"bilingual", Bilingual(12)},
	}
}

// explainSite renders the planner's EXPLAIN text for every query of
// every version of a spec against the warehoused data graph. Versions
// sharing a query composition (the "no new queries" external views) are
// folded into one section.
func explainSite(t *testing.T, spec *core.Spec) string {
	t.Helper()
	med, err := mediator.New(spec.Sources...)
	if err != nil {
		t.Fatal(err)
	}
	data, err := med.Warehouse()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	seen := map[string]string{}
	for _, v := range spec.Versions {
		key := strings.Join(v.Queries, "\x00")
		if prev, ok := seen[key]; ok {
			fmt.Fprintf(&b, "== version %s: same queries as %s ==\n\n", v.Name, prev)
			continue
		}
		seen[key] = v.Name
		fmt.Fprintf(&b, "== version %s ==\n\n", v.Name)
		for i, src := range v.Queries {
			q, err := struql.Parse(src)
			if err != nil {
				t.Fatalf("version %s query %d: %v", v.Name, i+1, err)
			}
			text, err := struql.Explain(q, data, nil)
			if err != nil {
				t.Fatalf("version %s query %d: explain: %v", v.Name, i+1, err)
			}
			fmt.Fprintf(&b, "-- query %d --\n%s\n", i+1, text)
		}
	}
	return b.String()
}

// TestExplainGolden pins the planner's chosen plans — condition order,
// access paths (collection scans, label seeks, RPE seeding), and cost
// estimates — for every bundled example query.
func TestExplainGolden(t *testing.T) {
	dir := filepath.Join("testdata", "explain")
	if *updateExplain {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range explainSites() {
		t.Run(s.name, func(t *testing.T) {
			got := explainSite(t, s.spec)
			path := filepath.Join(dir, s.name+".golden")
			if *updateExplain {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden rewritten: %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output diverged from %s:\n--- got\n%s--- want\n%s", path, got, want)
			}
		})
	}
}

// TestExplainDeterministic guards the golden files' premise: repeated
// explains of the same site agree byte for byte (statistics collection,
// cost tie-breaks, and printing are all deterministic).
func TestExplainDeterministic(t *testing.T) {
	spec := OrgSite(120, 7, 13, 16)
	first := explainSite(t, spec)
	if again := explainSite(t, spec); again != first {
		t.Error("EXPLAIN output differs between runs")
	}
}
