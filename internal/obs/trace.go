package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records spans — named, nested time intervals — for one run of
// the build pipeline (wrap → query → generate → write) or any other
// staged computation. It is safe for concurrent use: parallel version
// builds record spans from multiple goroutines.
//
// A nil *Tracer is the disabled state: Start returns a nil *Span, and
// every Span method on nil is a no-op, so call sites need no flag
// checks and pay nothing when tracing is off.
type Tracer struct {
	t0 time.Time

	mu    sync.Mutex
	spans []SpanRec
}

// SpanRec is one recorded span. Times are nanoseconds since the
// tracer's start, so a trace is self-contained and diffable.
type SpanRec struct {
	// ID is the span's index in the trace; Parent is the enclosing
	// span's ID, or -1 for a top-level span.
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	// StartNS/EndNS bound the span in nanoseconds since trace start;
	// EndNS is -1 while the span is open.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Attrs carries span metadata (version name, page counts, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Dur returns the span's duration (0 for open spans).
func (r SpanRec) Dur() time.Duration {
	if r.EndNS < 0 {
		return 0
	}
	return time.Duration(r.EndNS - r.StartNS)
}

// Span is a handle to an open span; End closes it.
type Span struct {
	t  *Tracer
	id int
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// now returns nanoseconds since trace start.
func (t *Tracer) now() int64 { return int64(time.Since(t.t0)) }

// Start opens a top-level span. Attrs are alternating key, value
// strings; a trailing unpaired key is ignored. Nil-safe.
func (t *Tracer) Start(name string, attrs ...string) *Span {
	return t.open(name, -1, attrs)
}

// Child opens a span nested under s. Nil-safe: a child of a nil span is
// nil.
func (s *Span) Child(name string, attrs ...string) *Span {
	if s == nil {
		return nil
	}
	return s.t.open(name, s.id, attrs)
}

// Annotate adds an attribute to an open (or closed) span. Nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	rec := &s.t.spans[s.id]
	if rec.Attrs == nil {
		rec.Attrs = map[string]string{}
	}
	rec.Attrs[key] = value
}

func (t *Tracer) open(name string, parent int, attrs []string) *Span {
	if t == nil {
		return nil
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	start := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans)
	t.spans = append(t.spans, SpanRec{
		ID: id, Parent: parent, Name: name, StartNS: start, EndNS: -1, Attrs: m,
	})
	return &Span{t: t, id: id}
}

// End closes the span. Nil-safe; ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.t.spans[s.id].EndNS < 0 {
		s.t.spans[s.id].EndNS = end
	}
}

// Spans returns a copy of every recorded span, in start order.
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRec, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteJSON emits the trace as JSON Lines: one event object per span,
// in start order — the structured form behind cmd/strudel's -trace
// flag. The schema is documented in docs/OBSERVABILITY.md.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Spans() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
