package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value Load = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("Load = %d, want 42", c.Load())
	}
	c.Add(-7) // ignored: counters are monotonic
	if c.Load() != 42 {
		t.Fatalf("Load after Add(-7) = %d, want 42", c.Load())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Load() != -2 {
		t.Fatalf("Load = %d, want -2", g.Load())
	}
	g.Set(7)
	if g.Load() != 7 {
		t.Fatalf("Load after Set = %d, want 7", g.Load())
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	// Value → expected bucket index: bucket 0 is exactly 0, bucket i
	// covers [2^(i-1), 2^i).
	cases := map[int64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11, -5: 0}
	for v := range cases {
		h.Observe(v)
	}
	s := h.Snapshot()
	counts := map[int]int64{}
	for v, b := range cases {
		counts[b]++
		_ = v
	}
	for i, want := range counts {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	// -5 clamps to 0, so the sum counts it as 0.
	wantSum := int64(0)
	for v := range cases {
		if v > 0 {
			wantSum += v
		}
	}
	if s.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d; quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
	// p50 of 1..1000 lies in bucket [256,512) → upper bound 512.
	if got := h.Quantile(0.5); got != 512 {
		t.Errorf("Quantile(0.5) = %d, want 512", got)
	}
}

// TestNilSinksAreNoOps pins the disabled mode: every record method on a
// nil sink (and every span operation on a nil tracer/span) must be a
// no-op, because the hot paths call them unconditionally.
func TestNilSinksAreNoOps(t *testing.T) {
	var em *EvalMetrics
	em.RecordOp(OpPred, 10, 5)
	em.RecordNFA(true)
	em.RecordPlan(false)
	em.RecordRowMap(4)
	em.RecordWhere()
	var sm *SourceMetrics
	sm.RecordLoad(100, nil)
	sm.RecordDelta(5)
	var gm *GenMetrics
	gm.RecordWave(3, 100)
	var tr *Tracer
	s := tr.Start("x", "k", "v")
	if s != nil {
		t.Fatal("nil tracer Start should return nil span")
	}
	s.Annotate("k", "v")
	c := s.Child("y")
	c.End()
	s.End()
	if spans := tr.Spans(); spans != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", spans)
	}
	if err := tr.WriteJSON(nil); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

// hammerWorkers is the concurrency level of the raced property tests;
// run with -race.
const hammerWorkers = 32

// TestRacedCounterMonotonic hammers a counter from 32 goroutines while a
// reader snapshots it, asserting every successive read is monotone and
// the final total is exact.
func TestRacedCounterMonotonic(t *testing.T) {
	var c Counter
	const perWorker = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := int64(0)
		for i := 0; i < 10000; i++ {
			v := c.Load()
			if v < prev {
				t.Errorf("counter went backwards: %d after %d", v, prev)
				return
			}
			prev = v
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < hammerWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	<-done
	if got := c.Load(); got != hammerWorkers*perWorker {
		t.Fatalf("final count = %d, want %d", got, hammerWorkers*perWorker)
	}
}

// TestRacedHistogramSnapshots hammers a histogram from 32 goroutines
// while a reader snapshots it, asserting that in every snapshot Count
// equals the bucket sum (no torn view) and count and sum never decrease.
func TestRacedHistogramSnapshots(t *testing.T) {
	var h Histogram
	const perWorker = 1000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var prevCount, prevSum int64
		for {
			s := h.Snapshot()
			var bucketSum int64
			for _, b := range s.Buckets {
				bucketSum += b
			}
			if s.Count != bucketSum {
				t.Errorf("torn snapshot: Count=%d, bucket sum=%d", s.Count, bucketSum)
				return
			}
			if s.Count < prevCount || s.Sum < prevSum {
				t.Errorf("snapshot went backwards: count %d→%d, sum %d→%d",
					prevCount, s.Count, prevSum, s.Sum)
				return
			}
			prevCount, prevSum = s.Count, s.Sum
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < hammerWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < perWorker; i++ {
				h.Observe(seed*1000 + i)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := h.Count(); got != hammerWorkers*perWorker {
		t.Fatalf("final count = %d, want %d", got, hammerWorkers*perWorker)
	}
}

// TestRacedRegistryJSON hammers every metric family through a registry
// while a reader repeatedly renders and re-parses the expvar JSON,
// asserting it always parses and its counters never decrease.
func TestRacedRegistryJSON(t *testing.T) {
	em := &EvalMetrics{}
	sm := &SourceMetrics{}
	gm := &GenMetrics{}
	sv := &ServeMetrics{}
	reg := NewRegistry()
	reg.Register("eval", em)
	reg.Register("sources", sm)
	reg.Register("htmlgen", gm)
	reg.Register("serve", sv)

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		prevWhere := float64(0)
		for {
			var parsed map[string]map[string]any
			if err := json.Unmarshal([]byte(reg.String()), &parsed); err != nil {
				t.Errorf("registry JSON does not parse: %v", err)
				return
			}
			w, ok := parsed["eval"]["where_evals"].(float64)
			if !ok {
				t.Errorf("where_evals missing from registry JSON")
				return
			}
			if w < prevWhere {
				t.Errorf("where_evals went backwards: %v after %v", w, prevWhere)
				return
			}
			prevWhere = w
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < hammerWorkers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				em.RecordOp(i%NumOps, i, i/2)
				em.RecordWhere()
				em.RecordNFA(i%2 == 0)
				em.RecordPlan(i%3 == 0)
				em.RecordRowMap(i % 8)
				sm.RecordLoad(int64(i), nil)
				sm.RecordDelta(i)
				gm.RecordWave(i%10, int64(i))
				sv.Requests.Inc()
				sv.InFlight.Inc()
				sv.RequestNanos.Observe(int64(i))
				sv.InFlight.Dec()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := em.WhereEvals.Load(); got != hammerWorkers*500 {
		t.Fatalf("where_evals = %d, want %d", got, hammerWorkers*500)
	}
	if got := sv.InFlight.Load(); got != 0 {
		t.Fatalf("in_flight = %d after balanced inc/dec, want 0", got)
	}
}
