package obs

import (
	"encoding/json"
	"testing"
)

// Percentile math at the power-of-two bucket boundaries. The histogram
// reports an UPPER bound: an observation v lands in the bucket whose
// range is [2^(k-1), 2^k) and every quantile that falls on it reports
// 2^k. These tests pin that contract exactly at the boundaries, where
// off-by-one bucket indexing would silently misreport latencies by 2x.

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	var h Histogram
	// 1000 observations in four distinct buckets:
	//   500 × 3       → bucket [2,4),        upper bound 4
	//   490 × 100     → bucket [64,128),     upper bound 128
	//     9 × 1000    → bucket [512,1024),   upper bound 1024
	//     1 × 100000  → bucket [65536,131072), upper bound 131072
	for i := 0; i < 500; i++ {
		h.Observe(3)
	}
	for i := 0; i < 490; i++ {
		h.Observe(100)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(100000)

	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.0, 4},      // first observation
		{0.25, 4},     // inside the first group
		{0.50, 128},   // rank 500: the first observation past the 3s
		{0.99, 1024},  // rank 990: inside the 1000s
		{0.999, 131072}, // rank 999: the single outlier
		{1.0, 131072}, // clamped to the last observation
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileAtExactPowersOfTwo(t *testing.T) {
	// 2^k sits at the BOTTOM of bucket [2^k, 2^(k+1)): its upper bound
	// is 2^(k+1). 2^k - 1 sits at the TOP of the bucket below: upper
	// bound 2^k. The two must never be conflated.
	var atBoundary Histogram
	for i := 0; i < 100; i++ {
		atBoundary.Observe(1024)
	}
	if got := atBoundary.Quantile(0.5); got != 2048 {
		t.Errorf("all-1024 p50 = %d, want 2048 (1024 opens a new bucket)", got)
	}
	var belowBoundary Histogram
	for i := 0; i < 100; i++ {
		belowBoundary.Observe(1023)
	}
	if got := belowBoundary.Quantile(0.5); got != 1024 {
		t.Errorf("all-1023 p50 = %d, want 1024 (1023 tops the [512,1024) bucket)", got)
	}
}

func TestHistogramQuantileTailSensitivity(t *testing.T) {
	// p99.9 must see a 1-in-1000 outlier that p99 ignores.
	var h Histogram
	for i := 0; i < 999; i++ {
		h.Observe(1)
	}
	h.Observe(1 << 40)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("p99 = %d, want 2 (the outlier is past rank 990)", got)
	}
	if got := h.Quantile(0.999); got != 1<<41 {
		t.Errorf("p999 = %d, want %d (the outlier's bucket bound)", got, int64(1)<<41)
	}
}

func TestHistogramQuantileDegenerateInputs(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var zeros Histogram
	for i := 0; i < 10; i++ {
		zeros.Observe(0)
	}
	if got := zeros.Quantile(0.999); got != 0 {
		t.Errorf("all-zero Quantile(0.999) = %d, want 0", got)
	}
	// Negative observations clamp to zero rather than corrupting a
	// bucket index.
	var neg Histogram
	neg.Observe(-5)
	if got := neg.Quantile(0.5); got != 0 {
		t.Errorf("negative-observation Quantile(0.5) = %d, want 0", got)
	}
}

// TestHistSnapPercentileKeys pins the /debug/vars histogram shape: the
// fleet load generator and bench_serve.sh read p50/p99/p999 back from
// it, so dropping a key is an API break even though it is "just JSON".
func TestHistSnapPercentileKeys(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i))
	}
	b, err := json.Marshal(histSnap(&h))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "sum", "mean", "p50", "p99", "p999", "buckets"} {
		if _, ok := m[key]; !ok {
			t.Errorf("histSnap missing %q: %s", key, b)
		}
	}
}
