// Plan-independence property tests: the cost-based planner may pick any
// condition order and access path, so every planner configuration —
// statistics on or off, reordering on or off, any parallelism — and
// every textual permutation of the where clauses must produce
// byte-identical site graphs and rendered HTML for every bundled
// example site. This pins the contract experiment E14 relies on: the
// planner changes evaluation time, never output.
package obs_test

import (
	"fmt"
	"runtime"
	"testing"

	"strudel/internal/core"
	"strudel/internal/struql"
)

// buildSite builds a spec and returns rendered pages plus each version's
// site-graph dump.
func buildSite(t *testing.T, spec *core.Spec, opts *core.Options) (map[string]map[string]string, map[string]string) {
	t.Helper()
	res, err := core.BuildWith(spec, opts)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name, err)
	}
	pages := map[string]map[string]string{}
	dumps := map[string]string{}
	for name, vr := range res.Versions {
		pages[name] = vr.Output.Pages
		dumps[name] = vr.SiteGraph.Dump()
	}
	return pages, dumps
}

func diffDumps(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	for vname, w := range want {
		if g := got[vname]; g != w {
			t.Errorf("%s: version %s: site graph bytes differ", label, vname)
		}
	}
}

// TestPlannerConfigIndependence builds every example site under the
// planner-toggle matrix and compares against the sequential default.
func TestPlannerConfigIndependence(t *testing.T) {
	variants := []*core.Options{
		{NoStats: true},
		{NoReorder: true},
		{NoStats: true, NoReorder: true, Parallelism: 2},
		{Parallelism: runtime.NumCPU()},
		{NoStats: true, Parallelism: runtime.NumCPU()},
		{NoFrozen: true},
		{NoFrozen: true, NoStats: true, Parallelism: 2},
	}
	for name, spec := range exampleSpecs() {
		t.Run(name, func(t *testing.T) {
			basePages, baseDumps := buildSite(t, spec, &core.Options{Parallelism: 1})
			for _, opts := range variants {
				label := fmt.Sprintf("noStats=%v/noReorder=%v/noFrozen=%v/par=%d", opts.NoStats, opts.NoReorder, opts.NoFrozen, opts.Parallelism)
				pages, dumps := buildSite(t, spec, opts)
				diffPages(t, label, basePages, pages)
				diffDumps(t, label, baseDumps, dumps)
			}
		})
	}
}

// shuffleQuery parses a StruQL source, shuffles every block's where
// conditions (nested blocks included) with a seeded generator, and
// prints the query back. The shuffled text must reparse — the printer
// and parser are a round-trip — and must evaluate identically.
func shuffleQuery(t *testing.T, src string, seed uint64) string {
	t.Helper()
	q, err := struql.Parse(src)
	if err != nil {
		t.Fatalf("parse site query: %v", err)
	}
	n := func(k int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(k))
	}
	var shuffleBlock func(b *struql.Block)
	shuffleBlock = func(b *struql.Block) {
		for i := len(b.Where) - 1; i > 0; i-- {
			j := n(i + 1)
			b.Where[i], b.Where[j] = b.Where[j], b.Where[i]
		}
		for _, nb := range b.Nested {
			shuffleBlock(nb)
		}
	}
	for _, b := range q.Blocks {
		shuffleBlock(b)
	}
	out := q.String()
	if _, err := struql.Parse(out); err != nil {
		t.Fatalf("shuffled query does not reparse: %v\n%s", err, out)
	}
	return out
}

// shuffledSpec returns a copy of the spec with every version's query
// composition condition-shuffled under the seed.
func shuffledSpec(t *testing.T, spec *core.Spec, seed uint64) *core.Spec {
	t.Helper()
	out := *spec
	out.Versions = append([]core.Version(nil), spec.Versions...)
	for i := range out.Versions {
		qs := make([]string, len(out.Versions[i].Queries))
		for j, src := range out.Versions[i].Queries {
			qs[j] = shuffleQuery(t, src, seed+uint64(j)*1299709)
		}
		out.Versions[i].Queries = qs
	}
	return &out
}

// TestShuffledConditionsIndependence is the declarative-semantics
// property at site scale: permuting where conditions in every site
// query changes neither the site graph nor a byte of rendered HTML,
// with the cost-based planner and with the first-ready textual
// fallback alike.
func TestShuffledConditionsIndependence(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for name, spec := range exampleSpecs() {
		t.Run(name, func(t *testing.T) {
			basePages, baseDumps := buildSite(t, spec, &core.Options{Parallelism: 1})
			for _, seed := range seeds {
				shuffled := shuffledSpec(t, spec, seed)
				for _, opts := range []*core.Options{{}, {NoReorder: true}, {NoFrozen: true}} {
					label := fmt.Sprintf("seed=%d/noReorder=%v/noFrozen=%v", seed, opts.NoReorder, opts.NoFrozen)
					pages, dumps := buildSite(t, shuffled, opts)
					diffPages(t, label, basePages, pages)
					diffDumps(t, label, baseDumps, dumps)
				}
			}
		})
	}
}
