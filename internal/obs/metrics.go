// Package obs is Strudel's observability layer: monotonic counters,
// gauges, and histogram buckets safe for concurrent use, span-based
// tracing of the build pipeline, and an expvar-compatible registry the
// serving layer exports on its debug listener.
//
// The paper evaluates Strudel almost entirely through measurement
// (§5.1's per-site query and generation times); this package makes the
// grown system — the parallel build pipeline and the production
// click-time server — observable the same way, at production traffic.
//
// Everything here is stdlib-only and nil-safe: every instrumentation
// sink is optional, a nil sink turns every record call into a single
// predictable branch, and no call allocates on the hot path. That is
// what keeps instrumentation from perturbing the byte-identical
// determinism guarantees of the build pipeline — the differential test
// harness (diff_test.go) proves builds with instrumentation on and off
// emit the same bytes at every parallelism level.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonic, concurrency-safe event counter. The zero
// value is ready to use. Loads and stores are atomic, so a reader never
// observes a torn value, and because the count only grows, successive
// snapshots are monotone.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored to preserve monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value (e.g. requests in
// flight). Unlike Counter it can go down. The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets: powers of two from
// [0,1) up to [2^62, ∞). Bucket i counts observations v with
// bits.Len64(v) == i, i.e. bucket 0 holds v==0, bucket i holds
// [2^(i-1), 2^i). 64 buckets cover the full non-negative int64 range,
// which spans nanosecond latencies from sub-ns to centuries.
const HistBuckets = 64

// Histogram is a concurrency-safe power-of-two histogram. The zero
// value is ready. Observations are non-negative int64s (durations in
// nanoseconds, sizes in rows/bytes); negative values clamp to zero.
//
// Every field is an independent monotone atomic, so a concurrent
// snapshot never observes a torn or decreasing value. Count is derived
// from the bucket totals rather than stored separately, which makes
// Count() == sum(buckets) hold in every snapshot by construction.
type Histogram struct {
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time view of a histogram. Each field is
// individually monotone across successive snapshots of the same
// histogram; Count is always exactly the sum of Buckets.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [HistBuckets]int64
}

// Snapshot returns the current bucket counts and sum.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	s.Sum = h.sum.Load()
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observed value, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) from
// the bucket boundaries: the top of the bucket containing the q-th
// observation. Coarse (power-of-two resolution) but monotone and cheap.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return int64(^uint64(0) >> 1)
			}
			return int64(1) << uint(i)
		}
	}
	return 0
}

// nonZero returns the snapshot's buckets as a compact map from bucket
// upper bound to count, omitting empty buckets — the JSON shape
// /debug/vars serves.
func (s HistSnapshot) nonZero() map[string]int64 {
	out := map[string]int64{}
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		out[bucketLabel(i)] = b
	}
	return out
}
