// Differential test harness: every example site is built at several
// parallelism levels with instrumentation on and off, and every
// configuration must emit byte-identical output. This is the contract
// that lets instrumentation run in production builds — observing a
// build can never change it.
package obs_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"strudel/internal/core"
	"strudel/internal/obs"
	"strudel/internal/sites"
)

// exampleSpecs mirrors the site set under examples/, at sizes small
// enough to build every configuration quickly but large enough to cross
// the evaluator's parallel fan-out threshold.
func exampleSpecs() map[string]*core.Spec {
	return map[string]*core.Spec{
		"homepage":  sites.Homepage(30),
		"cnn":       sites.CNN(80),
		"orgsite":   sites.OrgSite(120, 7, 13, 16),
		"bilingual": sites.Bilingual(12),
	}
}

type buildOutcome struct {
	// pages maps version → file → HTML.
	pages map[string]map[string]string
	opts  *core.Options
	wall  time.Duration
}

func buildConfig(t *testing.T, spec *core.Spec, par int, instrumented bool) buildOutcome {
	t.Helper()
	opts := &core.Options{Parallelism: par}
	if instrumented {
		opts.Eval = &obs.EvalMetrics{}
		opts.Source = &obs.SourceMetrics{}
		opts.Gen = &obs.GenMetrics{}
		opts.Trace = obs.NewTracer()
	}
	start := time.Now()
	res, err := core.BuildWith(spec, opts)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("build (par=%d, instrumented=%v): %v", par, instrumented, err)
	}
	pages := map[string]map[string]string{}
	for name, vr := range res.Versions {
		pages[name] = vr.Output.Pages
	}
	return buildOutcome{pages: pages, opts: opts, wall: wall}
}

func diffPages(t *testing.T, label string, want, got map[string]map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: version count %d, want %d", label, len(got), len(want))
	}
	for vname, wantPages := range want {
		gotPages, ok := got[vname]
		if !ok {
			t.Fatalf("%s: version %s missing", label, vname)
		}
		if len(gotPages) != len(wantPages) {
			t.Errorf("%s: version %s: %d pages, want %d", label, vname, len(gotPages), len(wantPages))
		}
		for file, html := range wantPages {
			g, ok := gotPages[file]
			if !ok {
				t.Errorf("%s: version %s: page %s missing", label, vname, file)
				continue
			}
			if g != html {
				t.Errorf("%s: version %s: page %s bytes differ", label, vname, file)
			}
		}
	}
}

// TestDifferentialBuilds is the harness: for each example site, the
// baseline (sequential, uninstrumented) output is compared against
// builds at parallelism 1, 2, and NumCPU, each with instrumentation on
// and off. All eight configurations must emit identical bytes.
func TestDifferentialBuilds(t *testing.T) {
	levels := []int{1, 2, runtime.NumCPU()}
	for name, spec := range exampleSpecs() {
		t.Run(name, func(t *testing.T) {
			base := buildConfig(t, spec, 1, false)
			for _, par := range levels {
				for _, instrumented := range []bool{false, true} {
					label := fmt.Sprintf("par=%d/instrumented=%v", par, instrumented)
					out := buildConfig(t, spec, par, instrumented)
					diffPages(t, label, base.pages, out.pages)
				}
			}
		})
	}
}

// TestInstrumentedBuildRecords checks the instrumented build actually
// measures the work it watched: the generator's page counter matches the
// emitted page count, sources were loaded, and the evaluator ran.
func TestInstrumentedBuildRecords(t *testing.T) {
	spec := sites.Homepage(30)
	out := buildConfig(t, spec, 2, true)
	totalPages := 0
	for _, pages := range out.pages {
		totalPages += len(pages)
	}
	if got := out.opts.Gen.Pages.Load(); got != int64(totalPages) {
		t.Errorf("GenMetrics.Pages = %d, want %d (emitted pages)", got, totalPages)
	}
	if out.opts.Gen.WaveNanos.Count() != out.opts.Gen.Waves.Load() {
		t.Errorf("wave timing count %d != wave count %d",
			out.opts.Gen.WaveNanos.Count(), out.opts.Gen.Waves.Load())
	}
	if got := out.opts.Source.Loads.Load(); got != int64(len(spec.Sources)) {
		t.Errorf("SourceMetrics.Loads = %d, want %d", got, len(spec.Sources))
	}
	if out.opts.Eval.WhereEvals.Load() == 0 {
		t.Error("EvalMetrics.WhereEvals = 0; evaluation was not observed")
	}
	var ops int64
	for k := 0; k < obs.NumOps; k++ {
		ops += out.opts.Eval.Ops[k].Load()
	}
	if ops == 0 {
		t.Error("no operator applications recorded")
	}
	if out.opts.Eval.PlanMisses.Load() == 0 {
		t.Error("plan cache recorded no misses; orderConds was not observed")
	}
}

// TestTraceSpansNestAndBound checks the build trace: every span closed,
// children contained in their parents, and — for the sequential build,
// where stages cannot overlap — the top-level spans sum to no more than
// the measured wall time.
func TestTraceSpansNestAndBound(t *testing.T) {
	for _, par := range []int{1, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			out := buildConfig(t, sites.OrgSite(120, 7, 13, 16), par, true)
			spans := out.opts.Trace.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}
			names := map[string]int{}
			var topLevel time.Duration
			for _, s := range spans {
				names[s.Name]++
				if s.EndNS < 0 {
					t.Errorf("span %d (%s) never ended", s.ID, s.Name)
					continue
				}
				if s.Parent == -1 {
					topLevel += s.Dur()
					continue
				}
				p := spans[s.Parent]
				if s.StartNS < p.StartNS || s.EndNS > p.EndNS {
					t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
						s.Name, s.StartNS, s.EndNS, p.Name, p.StartNS, p.EndNS)
				}
			}
			for _, stage := range []string{"build", "wrap", "version", "query", "generate"} {
				if names[stage] == 0 {
					t.Errorf("no %q span recorded", stage)
				}
			}
			if par == 1 && topLevel > out.wall {
				t.Errorf("sequential top-level spans sum to %v > wall time %v", topLevel, out.wall)
			}
		})
	}
}
