package obs

import (
	"encoding/json"
	"sort"
	"strconv"
	"sync"
)

// bucketLabel names histogram bucket i by its exclusive upper bound:
// bucket 0 is exactly 0, bucket i covers [2^(i-1), 2^i).
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= 63 {
		return "inf"
	}
	return "<" + strconv.FormatInt(int64(1)<<uint(i), 10)
}

// Snapshotter is anything that can report its metrics as a flat,
// JSON-marshalable map. All the per-layer metric structs implement it.
type Snapshotter interface {
	Snapshot() map[string]any
}

// SnapshotterFunc adapts a plain function to Snapshotter (e.g. the
// fleet's live health-grid view).
type SnapshotterFunc func() map[string]any

// Snapshot implements Snapshotter.
func (f SnapshotterFunc) Snapshot() map[string]any { return f() }

// Registry groups named metric sets for export. It implements
// expvar.Var (String returns JSON), so a process can publish one
// registry under one expvar name and serve every layer's metrics from
// /debug/vars without the collision-prone global expvar namespace.
type Registry struct {
	mu     sync.Mutex
	groups map[string]Snapshotter
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: map[string]Snapshotter{}}
}

// Register adds (or replaces) a named metric group.
func (r *Registry) Register(name string, s Snapshotter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.groups[name]; !ok {
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	r.groups[name] = s
}

// Snapshot returns every group's metrics, keyed by group name.
func (r *Registry) Snapshot() map[string]map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	groups := make(map[string]Snapshotter, len(r.groups))
	for k, v := range r.groups {
		groups[k] = v
	}
	r.mu.Unlock()
	out := make(map[string]map[string]any, len(names))
	for _, n := range names {
		out[n] = groups[n].Snapshot()
	}
	return out
}

// String renders the registry as JSON — the expvar.Var contract.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// histSnap is the JSON shape of one histogram in a Snapshot: count,
// sum, mean, coarse p50/p99 upper bounds, and the non-empty buckets.
func histSnap(h *Histogram) map[string]any {
	s := h.Snapshot()
	mean := 0.0
	if s.Count > 0 {
		mean = float64(s.Sum) / float64(s.Count)
	}
	return map[string]any{
		"count":   s.Count,
		"sum":     s.Sum,
		"mean":    mean,
		"p50":     h.Quantile(0.50),
		"p99":     h.Quantile(0.99),
		"p999":    h.Quantile(0.999),
		"buckets": s.nonZero(),
	}
}

// Operator kinds for EvalMetrics' per-operator arrays, mirroring the
// StruQL condition types.
const (
	OpMember = iota
	OpPred
	OpCmp
	OpNot
	OpEdge
	OpPath
	NumOps
)

var opNames = [NumOps]string{"member", "pred", "cmp", "not", "edge", "path"}

// Guard kinds for EvalMetrics' resource-guard trip counters, mirroring
// the StruQL evaluator's guards.
const (
	GuardRows = iota
	GuardNFAStates
	GuardDeadline
	NumGuards
)

var guardNames = [NumGuards]string{"rows", "nfa_states", "deadline"}

// EvalMetrics instruments StruQL evaluation: per-operator application
// and row counts, NFA-cache (compiled path matchers) and plan-cache
// hit/miss ratios, and parallel worker utilization. Attach it through
// struql.Options.Metrics; a nil *EvalMetrics disables every record at
// the cost of one branch.
type EvalMetrics struct {
	// Ops counts applications of each operator kind; RowsIn/RowsOut
	// count the binding rows entering and leaving those applications.
	Ops     [NumOps]Counter
	RowsIn  [NumOps]Counter
	RowsOut [NumOps]Counter
	// NFAHits/NFAMisses count compiled-path-matcher cache lookups.
	NFAHits   Counter
	NFAMisses Counter
	// PlanHits/PlanMisses count condition-ordering plan cache lookups
	// (not(...) sub-evaluations re-use one plan across candidate rows).
	PlanHits   Counter
	PlanMisses Counter
	// ParallelOps counts per-row operator applications that fanned out
	// to the worker pool; SeqOps those that ran sequentially (small
	// relations or Parallelism=1); Chunks the total chunks dispatched —
	// Chunks/ParallelOps is the mean worker utilization per fan-out.
	ParallelOps Counter
	SeqOps      Counter
	Chunks      Counter
	// WhereEvals counts where-clause evaluations (blocks plus not(...)
	// sub-evaluations).
	WhereEvals Counter
	// GuardTrips counts resource-guard trips by guard kind (rows,
	// NFA states, deadline): how often the evaluator converted a
	// runaway query into a typed failure.
	GuardTrips [NumGuards]Counter
	// StatsBuilds counts cold statistics collections (one per evaluation
	// that wasn't handed warm Options.Stats); StatsLabels counts cold
	// per-label selectivity computations across those collections.
	StatsBuilds Counter
	StatsLabels Counter
	// IndexSeeks/FullScans classify scheduled condition dispatches:
	// seeks go through an index (membership probe, out-edges by label,
	// in-edge/value index, seeded path search), scans visit an extent or
	// the whole graph. RPESeeds counts the subset of seeks where a
	// regular-path search was seeded from label extents instead of
	// scanning every node.
	IndexSeeks Counter
	FullScans  Counter
	RPESeeds   Counter
	// ReorderedConds counts conditions evaluated at a position different
	// from their textual one — executed reorder decisions, counted per
	// where-clause evaluation (cached plans count every time they run).
	ReorderedConds Counter
}

// RecordOp records one operator application: kind, rows in, rows out.
// Nil-safe.
func (m *EvalMetrics) RecordOp(kind, in, out int) {
	if m == nil || kind < 0 || kind >= NumOps {
		return
	}
	m.Ops[kind].Inc()
	m.RowsIn[kind].Add(int64(in))
	m.RowsOut[kind].Add(int64(out))
}

// RecordNFA records a matcher-cache lookup. Nil-safe.
func (m *EvalMetrics) RecordNFA(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.NFAHits.Inc()
	} else {
		m.NFAMisses.Inc()
	}
}

// RecordPlan records a plan-cache lookup. Nil-safe.
func (m *EvalMetrics) RecordPlan(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.PlanHits.Inc()
	} else {
		m.PlanMisses.Inc()
	}
}

// RecordRowMap records one per-row operator dispatch: chunks > 1 means
// a parallel fan-out over that many chunks. Nil-safe.
func (m *EvalMetrics) RecordRowMap(chunks int) {
	if m == nil {
		return
	}
	if chunks > 1 {
		m.ParallelOps.Inc()
		m.Chunks.Add(int64(chunks))
	} else {
		m.SeqOps.Inc()
	}
}

// RecordWhere counts one where-clause evaluation. Nil-safe.
func (m *EvalMetrics) RecordWhere() {
	if m == nil {
		return
	}
	m.WhereEvals.Inc()
}

// RecordStatsBuild counts one cold statistics collection. Nil-safe.
func (m *EvalMetrics) RecordStatsBuild() {
	if m == nil {
		return
	}
	m.StatsBuilds.Inc()
}

// RecordStatsLabel counts one cold per-label selectivity computation.
// Nil-safe.
func (m *EvalMetrics) RecordStatsLabel() {
	if m == nil {
		return
	}
	m.StatsLabels.Inc()
}

// RecordSeek counts one index-seek condition dispatch. Nil-safe.
func (m *EvalMetrics) RecordSeek() {
	if m == nil {
		return
	}
	m.IndexSeeks.Inc()
}

// RecordScan counts one full-scan condition dispatch. Nil-safe.
func (m *EvalMetrics) RecordScan() {
	if m == nil {
		return
	}
	m.FullScans.Inc()
}

// RecordRPESeed counts one label-seeded regular-path dispatch. Nil-safe.
func (m *EvalMetrics) RecordRPESeed() {
	if m == nil {
		return
	}
	m.RPESeeds.Inc()
}

// RecordReorder counts n conditions scheduled away from their textual
// position in one executed plan. Nil-safe.
func (m *EvalMetrics) RecordReorder(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.ReorderedConds.Add(int64(n))
}

// RecordGuard counts one resource-guard trip. Nil-safe.
func (m *EvalMetrics) RecordGuard(kind int) {
	if m == nil || kind < 0 || kind >= NumGuards {
		return
	}
	m.GuardTrips[kind].Inc()
}

// Snapshot implements Snapshotter.
func (m *EvalMetrics) Snapshot() map[string]any {
	out := map[string]any{
		"nfa_cache_hits":          m.NFAHits.Load(),
		"nfa_cache_misses":        m.NFAMisses.Load(),
		"plan_cache_hits":         m.PlanHits.Load(),
		"plan_cache_misses":       m.PlanMisses.Load(),
		"parallel_ops":            m.ParallelOps.Load(),
		"sequential_ops":          m.SeqOps.Load(),
		"chunks_dispatched":       m.Chunks.Load(),
		"where_evals":             m.WhereEvals.Load(),
		"planner_stats_builds":    m.StatsBuilds.Load(),
		"planner_stats_labels":    m.StatsLabels.Load(),
		"planner_index_seeks":     m.IndexSeeks.Load(),
		"planner_full_scans":      m.FullScans.Load(),
		"planner_rpe_seeds":       m.RPESeeds.Load(),
		"planner_reordered_conds": m.ReorderedConds.Load(),
	}
	for k, name := range opNames {
		out["op_"+name+"_applied"] = m.Ops[k].Load()
		out["op_"+name+"_rows_in"] = m.RowsIn[k].Load()
		out["op_"+name+"_rows_out"] = m.RowsOut[k].Load()
	}
	for k, name := range guardNames {
		out["guard_"+name+"_trips"] = m.GuardTrips[k].Load()
	}
	return out
}

// SourceMetrics instruments the mediator and its wrappers: per-source
// load timings and refresh delta sizes. Nil-safe.
type SourceMetrics struct {
	Loads      Counter
	LoadErrors Counter
	// LoadNanos is the wrapper-load + mapping latency distribution.
	LoadNanos Histogram
	// DeltaSize is the distribution of refresh delta sizes (changed
	// edges + memberships per refresh).
	DeltaSize Histogram
}

// RecordLoad records one source load. Nil-safe.
func (m *SourceMetrics) RecordLoad(nanos int64, err error) {
	if m == nil {
		return
	}
	m.Loads.Inc()
	if err != nil {
		m.LoadErrors.Inc()
		return
	}
	m.LoadNanos.Observe(nanos)
}

// RecordDelta records one refresh delta's size. Nil-safe.
func (m *SourceMetrics) RecordDelta(size int) {
	if m == nil {
		return
	}
	m.DeltaSize.Observe(int64(size))
}

// Snapshot implements Snapshotter.
func (m *SourceMetrics) Snapshot() map[string]any {
	return map[string]any{
		"loads":       m.Loads.Load(),
		"load_errors": m.LoadErrors.Load(),
		"load_nanos":  histSnap(&m.LoadNanos),
		"delta_size":  histSnap(&m.DeltaSize),
	}
}

// GenMetrics instruments the HTML generator: pages rendered, BFS waves,
// and per-wave render latency. Nil-safe.
type GenMetrics struct {
	Pages Counter
	Waves Counter
	// WaveNanos is the distribution of wall time per rendered wave.
	WaveNanos Histogram
}

// RecordWave records one rendered BFS wave. Nil-safe.
func (m *GenMetrics) RecordWave(pages int, nanos int64) {
	if m == nil {
		return
	}
	m.Waves.Inc()
	m.Pages.Add(int64(pages))
	m.WaveNanos.Observe(nanos)
}

// Snapshot implements Snapshotter.
func (m *GenMetrics) Snapshot() map[string]any {
	return map[string]any{
		"pages_rendered": m.Pages.Load(),
		"waves":          m.Waves.Load(),
		"wave_nanos":     histSnap(&m.WaveNanos),
	}
}

// ServeMetrics instruments the dynamic click-time server: page-cache
// behaviour, single-flight coalescing, request latency, load shedding,
// and hot-reload outcomes. One instance is shared by the evaluator, the
// HTTP server, and the reloader. Nil-safe throughout.
type ServeMetrics struct {
	// PageCacheHits/Misses count page lookups served from (or missing)
	// the per-generation page cache; Coalesced counts requests that
	// joined another request's in-flight computation of the same page.
	PageCacheHits   Counter
	PageCacheMisses Counter
	Coalesced       Counter
	PagesComputed   Counter
	QueriesRun      Counter
	// InFlight is the number of page requests currently being served.
	InFlight Gauge
	// RequestNanos is the page-request latency distribution.
	RequestNanos Histogram
	Requests     Counter
	// Shed counts requests refused with 503; Timeouts requests that hit
	// the per-request deadline; Panics recovered handler panics.
	Shed     Counter
	Timeouts Counter
	Panics   Counter
	// ReloadAttempts counts source refresh attempts; ReloadFailures
	// failed attempts (every backoff retry counts); ReloadRoundsFailed
	// failed rounds — counted exactly once per degraded window, no
	// matter how many backoff retries it takes to recover.
	ReloadAttempts     Counter
	ReloadFailures     Counter
	ReloadRoundsFailed Counter
	// ReloadApplied counts successful swaps; ReloadKept/ReloadDropped
	// the cached pages carried over / invalidated across them.
	ReloadApplied Counter
	ReloadKept    Counter
	ReloadDropped Counter
}

// Snapshot implements Snapshotter.
func (m *ServeMetrics) Snapshot() map[string]any {
	return map[string]any{
		"page_cache_hits":      m.PageCacheHits.Load(),
		"page_cache_misses":    m.PageCacheMisses.Load(),
		"coalesced":            m.Coalesced.Load(),
		"pages_computed":       m.PagesComputed.Load(),
		"queries_run":          m.QueriesRun.Load(),
		"in_flight":            m.InFlight.Load(),
		"requests":             m.Requests.Load(),
		"request_nanos":        histSnap(&m.RequestNanos),
		"shed":                 m.Shed.Load(),
		"timeouts":             m.Timeouts.Load(),
		"panics":               m.Panics.Load(),
		"reload_attempts":      m.ReloadAttempts.Load(),
		"reload_failures":      m.ReloadFailures.Load(),
		"reload_rounds_failed": m.ReloadRoundsFailed.Load(),
		"reload_applied":       m.ReloadApplied.Load(),
		"reload_kept":          m.ReloadKept.Load(),
		"reload_dropped":       m.ReloadDropped.Load(),
	}
}
