package obs

// Bailout reasons for IVMMetrics' per-reason counters, mirroring the
// typed DeltaBailout taxonomy in package ivm (which converts its Reason
// values to these indices). Order is part of the contract: ivm.Reason
// constants are declared in the same order.
const (
	BailoutComposedQueries = iota
	BailoutDeltaTooLarge
	BailoutEvalError
	BailoutSupportUnderflow
	NumBailoutReasons
)

var bailoutNames = [NumBailoutReasons]string{
	"composed_queries", "delta_too_large", "eval_error", "support_underflow",
}

// BailoutName returns the snapshot key suffix of a bailout reason.
func BailoutName(kind int) string {
	if kind < 0 || kind >= NumBailoutReasons {
		return "unknown"
	}
	return bailoutNames[kind]
}

// IVMMetrics instruments the incremental view maintenance path: deltas
// propagated row by row, bailouts that degraded to a full rebuild (by
// reason), dirty-page counts, patch publication behaviour, and the
// apply-latency distribution. One instance is shared by the maintainer,
// the patch publisher, and — on the serving side — the hot reloader.
// Nil-safe throughout.
type IVMMetrics struct {
	// DeltasApplied counts deltas propagated incrementally end to end;
	// FullRebuilds counts applies that degraded to a from-scratch build
	// (every bailout produces one, so FullRebuilds == sum of Bailouts
	// unless a rebuild was requested directly).
	DeltasApplied Counter
	FullRebuilds  Counter
	// Bailouts counts typed DeltaBailout raises by reason.
	Bailouts [NumBailoutReasons]Counter
	// DirtyPages counts pages dirtied (regenerated or dropped) by
	// incremental applies.
	DirtyPages Counter
	// RowsInserted/RowsRemoved count row-level (tier A) delta effects on
	// materialized where-relations; SitesReevaluated counts construction
	// sites that fell back to a from-scratch relation re-evaluation
	// (negation delete-and-rederive); BlocksReevaluated counts whole
	// query blocks re-evaluated wholesale (tier B).
	RowsInserted      Counter
	RowsRemoved       Counter
	SitesReevaluated  Counter
	BlocksReevaluated Counter
	// PagesLinked/PagesWritten classify staged pages during patch
	// publication: hardlinked unchanged pages vs freshly written ones.
	PagesLinked  Counter
	PagesWritten Counter
	// DeltaCompactions counts pending-delta compactions (opposing
	// add/remove pairs cancelled); DeltaOverflows counts pending deltas
	// that exceeded the bound and were degraded to a full invalidation.
	DeltaCompactions Counter
	DeltaOverflows   Counter
	// ApplyNanos is the latency distribution of incremental applies
	// (delta propagation + page regeneration, excluding publication).
	ApplyNanos Histogram
}

// RecordBailout counts one typed bailout. Nil-safe.
func (m *IVMMetrics) RecordBailout(kind int) {
	if m == nil || kind < 0 || kind >= NumBailoutReasons {
		return
	}
	m.Bailouts[kind].Inc()
}

// RecordApply records one successful incremental apply. Nil-safe.
func (m *IVMMetrics) RecordApply(nanos int64, dirtyPages int) {
	if m == nil {
		return
	}
	m.DeltasApplied.Inc()
	m.DirtyPages.Add(int64(dirtyPages))
	m.ApplyNanos.Observe(nanos)
}

// Snapshot implements Snapshotter.
func (m *IVMMetrics) Snapshot() map[string]any {
	out := map[string]any{
		"deltas_applied":     m.DeltasApplied.Load(),
		"full_rebuilds":      m.FullRebuilds.Load(),
		"dirty_pages":        m.DirtyPages.Load(),
		"rows_inserted":      m.RowsInserted.Load(),
		"rows_removed":       m.RowsRemoved.Load(),
		"sites_reevaluated":  m.SitesReevaluated.Load(),
		"blocks_reevaluated": m.BlocksReevaluated.Load(),
		"pages_linked":       m.PagesLinked.Load(),
		"pages_written":      m.PagesWritten.Load(),
		"delta_compactions":  m.DeltaCompactions.Load(),
		"delta_overflows":    m.DeltaOverflows.Load(),
		"apply_nanos":        histSnap(&m.ApplyNanos),
	}
	for k, name := range bailoutNames {
		out["bailout_"+name] = m.Bailouts[k].Load()
	}
	return out
}
