package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanNestingAndJSON(t *testing.T) {
	tr := NewTracer()
	build := tr.Start("build", "site", "demo")
	wrap := build.Child("wrap")
	wrap.End()
	version := build.Child("version", "name", "internal")
	q := version.Child("query")
	q.End()
	version.End()
	build.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRec{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["build"].Parent != -1 {
		t.Errorf("build parent = %d, want -1", byName["build"].Parent)
	}
	if byName["wrap"].Parent != byName["build"].ID {
		t.Errorf("wrap parent = %d, want build %d", byName["wrap"].Parent, byName["build"].ID)
	}
	if byName["query"].Parent != byName["version"].ID {
		t.Errorf("query parent = %d, want version %d", byName["query"].Parent, byName["version"].ID)
	}
	for _, s := range spans {
		if s.EndNS < 0 {
			t.Errorf("span %s still open", s.Name)
		}
		if s.EndNS < s.StartNS {
			t.Errorf("span %s ends before it starts", s.Name)
		}
		if s.Parent >= 0 {
			p := spans[s.Parent]
			if s.StartNS < p.StartNS || s.EndNS > p.EndNS {
				t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
					s.Name, s.StartNS, s.EndNS, p.Name, p.StartNS, p.EndNS)
			}
		}
	}
	if got := byName["build"].Attrs["site"]; got != "demo" {
		t.Errorf("build attr site = %q, want demo", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec SpanRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %d does not parse: %v", lines, err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("trace emitted %d lines, want 4", lines)
	}
}

func TestSpanEndIdempotentAndAnnotate(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("work")
	s.End()
	first := tr.Spans()[0].EndNS
	s.End() // second End keeps the first end time
	if got := tr.Spans()[0].EndNS; got != first {
		t.Fatalf("second End changed EndNS: %d → %d", first, got)
	}
	s.Annotate("outcome", "ok")
	if got := tr.Spans()[0].Attrs["outcome"]; got != "ok" {
		t.Fatalf("Annotate after End: attr = %q, want ok", got)
	}
}

// TestConcurrentSpans records spans from many goroutines (the parallel
// build does this) and checks the trace stays structurally sound.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("build")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("version")
				c := s.Child("query")
				c.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != 1+16*50*2 {
		t.Fatalf("recorded %d spans, want %d", len(spans), 1+16*50*2)
	}
	for _, s := range spans {
		if s.EndNS < 0 {
			t.Fatalf("span %d (%s) still open", s.ID, s.Name)
		}
		if s.Parent >= len(spans) {
			t.Fatalf("span %d has out-of-range parent %d", s.ID, s.Parent)
		}
	}
}
