package obs

// FleetMetrics instruments the sharded serving tier: the HTTP edge's
// page cache (fresh hits, conditional 304s, stale-while-revalidate
// serves, revalidations), shard routing (per-request fetches, replica
// failovers, shards found fully down), and the edge-observed latency
// distribution. One instance is shared by the edge and the fleet
// coordinator. Nil-safe throughout, like every sink in this package.
type FleetMetrics struct {
	// EdgeRequests counts page requests arriving at the edge;
	// EdgeNanos is their end-to-end latency distribution (the load
	// generator reads its percentiles back over /debug/vars).
	EdgeRequests Counter
	EdgeNanos    Histogram
	// CacheHits counts requests served from a fresh cache entry without
	// touching a shard; CacheMisses cold fetches; StaleServed responses
	// served from a stale (pre-reload) entry inside the
	// stale-while-revalidate window; Revalidations background or
	// synchronous refreshes of a stale entry; NotModified conditional
	// GETs answered 304.
	CacheHits     Counter
	CacheMisses   Counter
	StaleServed   Counter
	Revalidations Counter
	NotModified   Counter
	// ShardFetches counts page fetches dispatched to a shard replica;
	// Failovers fetches retried on another replica after a failure;
	// ShardDown requests refused 503 because every replica of the
	// routed shard was unavailable.
	ShardFetches Counter
	Failovers    Counter
	ShardDown    Counter
	// Generation is the fleet's current data generation; Swaps counts
	// generation bumps (one per applied hot reload).
	Generation Gauge
	Swaps      Counter
	// Gray-failure tolerance. Hedges counts tail-latency hedge attempts
	// launched after the quantile-tracked delay; HedgeWins hedges whose
	// response was the one served; HedgeBudgetExhausted hedge timers
	// that fired with an empty hedge budget; RetryBudgetExhausted
	// failovers refused by the shared retry budget.
	Hedges               Counter
	HedgeWins            Counter
	HedgeBudgetExhausted Counter
	RetryBudgetExhausted Counter
	// BreakerTrips counts circuit breakers tripping open (replica
	// ejected); BreakerCloses breakers closing after successful trials
	// (replica recovered); BreakerProbes half-open trial admissions.
	BreakerTrips  Counter
	BreakerCloses Counter
	BreakerProbes Counter
	// Probes counts active health-check renders; ProbeFailures the
	// failed ones; SlowDemotions replicas newly demoted to suspect for
	// a latency profile far above their siblings'.
	Probes        Counter
	ProbeFailures Counter
	SlowDemotions Counter
	// ChecksumFailures counts replica responses discarded (and failed
	// over) because the body did not match its end-to-end checksum.
	ChecksumFailures Counter
}

// Snapshot implements Snapshotter.
func (m *FleetMetrics) Snapshot() map[string]any {
	return map[string]any{
		"edge_requests":          m.EdgeRequests.Load(),
		"edge_nanos":             histSnap(&m.EdgeNanos),
		"cache_hits":             m.CacheHits.Load(),
		"cache_misses":           m.CacheMisses.Load(),
		"stale_served":           m.StaleServed.Load(),
		"revalidations":          m.Revalidations.Load(),
		"not_modified":           m.NotModified.Load(),
		"shard_fetches":          m.ShardFetches.Load(),
		"failovers":              m.Failovers.Load(),
		"shard_down":             m.ShardDown.Load(),
		"generation":             m.Generation.Load(),
		"swaps":                  m.Swaps.Load(),
		"hedges":                 m.Hedges.Load(),
		"hedge_wins":             m.HedgeWins.Load(),
		"hedge_budget_exhausted": m.HedgeBudgetExhausted.Load(),
		"retry_budget_exhausted": m.RetryBudgetExhausted.Load(),
		"breaker_trips":          m.BreakerTrips.Load(),
		"breaker_closes":         m.BreakerCloses.Load(),
		"breaker_probes":         m.BreakerProbes.Load(),
		"health_probes":          m.Probes.Load(),
		"probe_failures":         m.ProbeFailures.Load(),
		"slow_demotions":         m.SlowDemotions.Load(),
		"checksum_failures":      m.ChecksumFailures.Load(),
	}
}
