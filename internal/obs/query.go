package obs

// QueryMetrics instruments the query API: the /query evaluation path
// (requests, evaluations, streamed rows, pages, cursor resumes, the
// per-gen result cache), introspection endpoints, and the error
// taxonomy — each typed error class gets its own counter so guard-trip
// tests and dashboards can assert exact increments over /debug/vars.
// Nil-safe like every sink in this package.
type QueryMetrics struct {
	// Requests counts every request reaching the query API mux;
	// QueryNanos is the end-to-end latency distribution of /query.
	Requests   Counter
	QueryNanos Histogram
	// Evals counts cold evaluations dispatched to the fleet (cache
	// misses); RowsStreamed rows written to clients; PagesServed
	// successful /query responses; CursorResumes requests carrying a
	// cursor; ResultCacheHits/Misses the per-generation result cache;
	// NotModified conditional requests answered 304.
	Evals             Counter
	RowsStreamed      Counter
	PagesServed       Counter
	CursorResumes     Counter
	ResultCacheHits   Counter
	ResultCacheMisses Counter
	NotModified       Counter
	// The error taxonomy (docs/QUERYAPI.md): ParseErrors 400s from
	// StruQL syntax/analysis; BadRequests malformed envelopes or
	// selectors; BadCursors undecodable or mismatched cursors;
	// GenerationMismatches cursor resumes pinned to an evicted
	// generation (410); GuardRowTrips/GuardNFATrips row and NFA-state
	// guard trips (422); GuardDeadlineTrips evaluation deadlines (504);
	// Shed requests refused at the inflight gate (503); Unavailable
	// shard-down refusals (503); Panics recovered handler panics (500).
	Panics               Counter
	ParseErrors          Counter
	BadRequests          Counter
	BadCursors           Counter
	GenerationMismatches Counter
	GuardRowTrips        Counter
	GuardNFATrips        Counter
	GuardDeadlineTrips   Counter
	Shed                 Counter
	Unavailable          Counter
	// Introspection: Explains counts /query/explain plans rendered;
	// SchemaRequests the /schema/* endpoints.
	Explains       Counter
	SchemaRequests Counter
}

// Snapshot implements Snapshotter.
func (m *QueryMetrics) Snapshot() map[string]any {
	return map[string]any{
		"requests":              m.Requests.Load(),
		"query_nanos":           histSnap(&m.QueryNanos),
		"evals":                 m.Evals.Load(),
		"rows_streamed":         m.RowsStreamed.Load(),
		"pages_served":          m.PagesServed.Load(),
		"cursor_resumes":        m.CursorResumes.Load(),
		"result_cache_hits":     m.ResultCacheHits.Load(),
		"result_cache_misses":   m.ResultCacheMisses.Load(),
		"not_modified":          m.NotModified.Load(),
		"panics":                m.Panics.Load(),
		"parse_errors":          m.ParseErrors.Load(),
		"bad_requests":          m.BadRequests.Load(),
		"bad_cursors":           m.BadCursors.Load(),
		"generation_mismatches": m.GenerationMismatches.Load(),
		"guard_rows_trips":      m.GuardRowTrips.Load(),
		"guard_nfa_trips":       m.GuardNFATrips.Load(),
		"guard_deadline_trips":  m.GuardDeadlineTrips.Load(),
		"shed":                  m.Shed.Load(),
		"unavailable":           m.Unavailable.Load(),
		"explains":              m.Explains.Load(),
		"schema_requests":       m.SchemaRequests.Load(),
	}
}
