package schema

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// fig3Query mirrors the reconstruction used in package struql's tests.
const fig3Query = `
create RootPage(), AbstractsPage()
link RootPage() -> "Abstracts" -> AbstractsPage()

where Publications(x)
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  where x -> l -> v
  link AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v
}
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(y)
}
{
  where x -> "category" -> c
  create CategoryPage(c)
  link CategoryPage(c) -> "Category" -> c,
       CategoryPage(c) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(c)
}
`

func fig7Schema(t *testing.T) *Schema {
	t.Helper()
	return Build(struql.MustParse(fig3Query))
}

func TestFig7SiteSchemaNodes(t *testing.T) {
	s := fig7Schema(t)
	want := []string{"AbstractPage", "AbstractsPage", "CategoryPage", NS, "PaperPresentation", "RootPage", "YearPage"}
	if strings.Join(s.Nodes, ",") != strings.Join(want, ",") {
		t.Errorf("Nodes = %v, want %v", s.Nodes, want)
	}
}

func TestFig7SiteSchemaEdges(t *testing.T) {
	s := fig7Schema(t)
	// The paper's example: the link YearPage(y) -> "Paper" ->
	// PaperPresentation(x) corresponds to a schema edge labeled with the
	// conjunction of the outer and nested where clauses.
	var found *Edge
	for i, e := range s.Edges {
		if e.From == "YearPage" && e.To == "PaperPresentation" {
			found = &s.Edges[i]
		}
	}
	if found == nil {
		t.Fatal("YearPage → PaperPresentation schema edge missing")
	}
	if found.WhereID != "Q1∧Q3" {
		t.Errorf("WhereID = %s, want Q1∧Q3", found.WhereID)
	}
	if found.Label.Lit != "Paper" || len(found.FromArgs) != 1 || found.FromArgs[0] != "y" ||
		len(found.ToArgs) != 1 || found.ToArgs[0] != "x" {
		t.Errorf("edge = %+v", *found)
	}
	if len(found.Where) != 2 {
		t.Errorf("conjunction size = %d, want 2 (Q1 ∧ Q3)", len(found.Where))
	}
}

func TestSchemaEdgesToNS(t *testing.T) {
	s := fig7Schema(t)
	// Attribute-copy links (arc variable v target) and leaf links (Year,
	// Category atoms) go to the NS node.
	nsCount := 0
	for _, e := range s.Edges {
		if e.To == NS {
			nsCount++
		}
	}
	if nsCount != 4 { // 2 attribute copies + Year leaf + Category leaf
		t.Errorf("NS edges = %d, want 4", nsCount)
	}
}

func TestSchemaArcVariableLabel(t *testing.T) {
	s := fig7Schema(t)
	var found bool
	for _, e := range s.Edges {
		if e.From == "AbstractPage" && e.To == NS && e.Label.IsVar && e.Label.Var == "l" {
			found = true
		}
	}
	if !found {
		t.Error("arc-variable schema edge (AbstractPage -l-> NS) missing")
	}
}

func TestSchemaCreations(t *testing.T) {
	s := fig7Schema(t)
	cs := s.CreationsOf("YearPage")
	if len(cs) != 1 {
		t.Fatalf("YearPage creations = %d", len(cs))
	}
	if cs[0].WhereID != "Q1∧Q3" || len(cs[0].Args) != 1 || cs[0].Args[0] != "y" {
		t.Errorf("creation = %+v", cs[0])
	}
	// RootPage is created unconditionally and also implicitly by link
	// clauses in nested contexts; the unconditional context must be there.
	root := s.CreationsOf("RootPage")
	var unconditional bool
	for _, c := range root {
		if c.WhereID == "true" {
			unconditional = true
		}
	}
	if !unconditional {
		t.Errorf("RootPage lacks unconditional creation: %+v", root)
	}
}

func TestSchemaStringAndDot(t *testing.T) {
	s := fig7Schema(t)
	str := s.String()
	for _, frag := range []string{
		"YearPage -> PaperPresentation (Q1∧Q3, \"Paper\", [y], [x])",
		"legend:",
		"Q1: where Publications(x)",
	} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() missing %q:\n%s", frag, str)
		}
	}
	dot := s.Dot("fig7", true)
	if strings.Contains(dot, `"NS"`) {
		t.Error("Dot with skipNS should exclude NS, as Fig. 7 does")
	}
	dotFull := s.Dot("fig7", false)
	if !strings.Contains(dotFull, `"NS"`) {
		t.Error("full Dot should include NS")
	}
}

func TestSchemaOutEdges(t *testing.T) {
	s := fig7Schema(t)
	out := s.OutEdges("RootPage")
	if len(out) != 3 { // Abstracts, YearPage, CategoryPage
		t.Errorf("RootPage out edges = %d, want 3", len(out))
	}
	if len(s.OutEdges("NoSuch")) != 0 {
		t.Error("unknown node should have no edges")
	}
}

func fig2Graph() *graph.Graph {
	g := graph.New()
	g.AddToCollection("Publications", "pub1")
	g.AddToCollection("Publications", "pub2")
	g.AddEdge("pub1", "title", graph.NewString("T1"))
	g.AddEdge("pub1", "year", graph.NewInt(1997))
	g.AddEdge("pub1", "category", graph.NewString("web"))
	g.AddEdge("pub2", "title", graph.NewString("T2"))
	g.AddEdge("pub2", "year", graph.NewInt(1998))
	g.AddEdge("pub2", "category", graph.NewString("web"))
	return g
}

func TestRecoverQueryIsEquivalent(t *testing.T) {
	// §2.5: "The site schema is equivalent to the original query, i.e.,
	// we can recover the query from the site schema."
	orig := struql.MustParse(fig3Query)
	rec := Build(orig).RecoverQuery()
	src := struql.NewGraphSource(fig2Graph())
	r1, err := struql.Eval(orig, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := struql.Eval(rec, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Graph.Dump() != r2.Graph.Dump() {
		t.Errorf("recovered query differs:\n--- original\n%s--- recovered\n%s", r1.Graph.Dump(), r2.Graph.Dump())
	}
}

func TestRecoverQueryWithCollect(t *testing.T) {
	q := struql.MustParse(`where Publications(x) create P(x) collect Pages(P(x)), Raw(x)`)
	rec := Build(q).RecoverQuery()
	src := struql.NewGraphSource(fig2Graph())
	r1, _ := struql.Eval(q, src, nil)
	r2, err := struql.Eval(rec, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Graph.Dump() != r2.Graph.Dump() {
		t.Errorf("collect recovery differs:\n%s\nvs\n%s", r1.Graph.Dump(), r2.Graph.Dump())
	}
}

func TestRecoverQueryConstantTargets(t *testing.T) {
	q := struql.MustParse(`where Publications(x) create P(x) link P(x) -> "kind" -> "paper", P(x) -> "n" -> 7`)
	rec := Build(q).RecoverQuery()
	src := struql.NewGraphSource(fig2Graph())
	r1, _ := struql.Eval(q, src, nil)
	r2, err := struql.Eval(rec, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Graph.Dump() != r2.Graph.Dump() {
		t.Errorf("constant recovery differs:\n%s\nvs\n%s", r1.Graph.Dump(), r2.Graph.Dump())
	}
}

func TestSchemaHasNode(t *testing.T) {
	s := fig7Schema(t)
	if !s.HasNode("RootPage") || s.HasNode("Nope") {
		t.Error("HasNode wrong")
	}
}

func TestSchemaOfMultiBlockQuery(t *testing.T) {
	// Queries assembled from separately written fragments (§2.2) produce
	// one schema covering all blocks.
	q := struql.MustParse(`
where People(p) create Home(p) link Home(p) -> "name" -> p
where Projects(j) create Proj(j) link Proj(j) -> "title" -> j
where People(p), p -> "works" -> j create X() link Home(p) -> "proj" -> Proj(j)
`)
	s := Build(q)
	if !s.HasNode("Home") || !s.HasNode("Proj") {
		t.Error("multi-block schema missing nodes")
	}
	var cross bool
	for _, e := range s.Edges {
		if e.From == "Home" && e.To == "Proj" && e.Label.Lit == "proj" {
			cross = true
		}
	}
	if !cross {
		t.Error("cross-fragment edge missing")
	}
}
