// Package schema derives site schemas from StruQL queries (§2.5, Fig. 7).
//
// A site schema is an equivalent reformulation of a site-definition query
// as a labeled graph specifying the possible paths in any web site the
// query generates. It has one node per Skolem function symbol in the query
// plus a special NS node for non-Skolem targets (variables and constants).
// For every link expression F(X̄) -> L -> G(Ȳ) there is an edge N_F → N_G
// labeled (Q, L, X̄, Ȳ), where Q is the conjunction of the where clauses
// governing the link (nested blocks conjoin with their ancestors).
//
// Site schemas are a visual summary of a site graph during iterative
// design, the basis of integrity-constraint verification (package
// constraints), and the basis of dynamic, "click-time" site evaluation
// (package dynamic): the query is recoverable from its schema, and the
// out-edges of one page are computable from the schema edges alone.
//
// Limitation: blocks using the aggregate extension record only their
// where conjunction here; RecoverQuery and dynamic evaluation do not
// replay the grouping, so queries with aggregates should be evaluated
// statically.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/struql"
)

// NS is the name of the special schema node standing for non-Skolem
// targets: data-graph nodes, atoms, and arc-variable values.
const NS = "NS"

// Edge is one site-schema edge: the promise that pages created by Skolem
// function From carry an edge with the given label to pages created by To
// (or to non-Skolem values when To == NS) whenever the conjunction Where
// holds.
type Edge struct {
	From     string
	FromArgs []string
	// To is a Skolem function name, or NS.
	To     string
	ToArgs []string // Skolem args; for NS, the single variable/constant text
	Label  struql.LabelSpec
	// Where is the governing conjunction: the block's where conditions
	// prefixed by every ancestor's.
	Where []struql.Cond
	// WhereID names the conjunction for display, e.g. "Q1∧Q2".
	WhereID string
}

// Creation records one context in which a Skolem node is created: the
// create (or implicit link/collect) clause's governing conjunction and the
// argument variables.
type Creation struct {
	Fn      string
	Args    []string
	Where   []struql.Cond
	WhereID string
}

// Collect records an output-collection clause and its governing context.
type Collect struct {
	Coll    string
	Target  string // Skolem fn name, or NS
	Args    []string
	Where   []struql.Cond
	WhereID string
}

// Schema is a site schema.
type Schema struct {
	// Nodes are the Skolem function names, sorted, plus NS if any edge
	// targets a non-Skolem value.
	Nodes     []string
	Edges     []Edge
	Creations []Creation
	Collects  []Collect
	// QueryIDs maps a where-conjunction ID like "Q1" to its printed
	// conditions, for legends.
	QueryIDs map[string]string
}

// Build derives the site schema of a query.
func Build(q *struql.Query) *Schema {
	b := &builder{s: &Schema{QueryIDs: map[string]string{}}, seen: map[string]bool{}}
	for _, blk := range q.Blocks {
		b.walk(blk, nil, nil)
	}
	sort.Strings(b.s.Nodes)
	return b.s
}

type builder struct {
	s    *Schema
	seen map[string]bool
	qnum int
}

func (b *builder) node(name string) {
	if !b.seen[name] {
		b.seen[name] = true
		b.s.Nodes = append(b.s.Nodes, name)
	}
}

// walk descends the block tree carrying the ancestor conjunction and its
// ID parts.
func (b *builder) walk(blk *struql.Block, conds []struql.Cond, ids []string) {
	conj := conds
	idParts := ids
	if len(blk.Where) > 0 {
		b.qnum++
		id := fmt.Sprintf("Q%d", b.qnum)
		var parts []string
		for _, c := range blk.Where {
			parts = append(parts, c.String())
		}
		b.s.QueryIDs[id] = strings.Join(parts, ", ")
		conj = append(append([]struql.Cond(nil), conds...), blk.Where...)
		idParts = append(append([]string(nil), ids...), id)
	}
	whereID := strings.Join(idParts, "∧")
	if whereID == "" {
		whereID = "true"
	}
	addCreation := func(st struql.SkolemTerm) {
		b.node(st.Fn)
		for _, c := range b.s.Creations {
			if c.Fn == st.Fn && c.WhereID == whereID && strings.Join(c.Args, ",") == strings.Join(st.Args, ",") {
				return
			}
		}
		b.s.Creations = append(b.s.Creations, Creation{
			Fn: st.Fn, Args: st.Args, Where: conj, WhereID: whereID,
		})
	}
	for _, st := range blk.Create {
		addCreation(st)
	}
	for _, le := range blk.Link {
		addCreation(le.From)
		e := Edge{
			From:     le.From.Fn,
			FromArgs: le.From.Args,
			Label:    le.Label,
			Where:    conj,
			WhereID:  whereID,
		}
		if le.To.IsSkolem() {
			addCreation(*le.To.Skolem)
			e.To = le.To.Skolem.Fn
			e.ToArgs = le.To.Skolem.Args
		} else {
			b.node(NS)
			e.To = NS
			e.ToArgs = []string{le.To.Term.String()}
		}
		b.s.Edges = append(b.s.Edges, e)
	}
	for _, ce := range blk.Collect {
		col := Collect{Coll: ce.Coll, Where: conj, WhereID: whereID}
		if ce.Target.IsSkolem() {
			addCreation(*ce.Target.Skolem)
			col.Target = ce.Target.Skolem.Fn
			col.Args = ce.Target.Skolem.Args
		} else {
			b.node(NS)
			col.Target = NS
			col.Args = []string{ce.Target.Term.String()}
		}
		b.s.Collects = append(b.s.Collects, col)
	}
	for _, nb := range blk.Nested {
		b.walk(nb, conj, idParts)
	}
}

// label renders an edge's (Q, L, X̄, Ȳ) tag as in Fig. 7.
func (e Edge) label() string {
	return fmt.Sprintf("(%s, %s, [%s], [%s])",
		e.WhereID, e.Label, strings.Join(e.FromArgs, ","), strings.Join(e.ToArgs, ","))
}

// String renders the schema as a deterministic text listing: nodes, edges
// with (Q, L, X̄, Ȳ) labels, creations, collects, and the query legend.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("site schema\nnodes:")
	for _, n := range s.Nodes {
		b.WriteString(" " + n)
	}
	b.WriteString("\nedges:\n")
	edges := append([]Edge(nil), s.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].label() < edges[j].label()
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s %s\n", e.From, e.To, e.label())
	}
	if len(s.Collects) > 0 {
		b.WriteString("collections:\n")
		for _, c := range s.Collects {
			fmt.Fprintf(&b, "  %s(%s(%s)) when %s\n", c.Coll, c.Target, strings.Join(c.Args, ","), c.WhereID)
		}
	}
	b.WriteString("legend:\n")
	ids := make([]string, 0, len(s.QueryIDs))
	for id := range s.QueryIDs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		fmt.Fprintf(&b, "  %s: where %s\n", id, s.QueryIDs[id])
	}
	return b.String()
}

// Dot renders the schema in Graphviz syntax (the Fig. 7 picture). Edges to
// NS are included unless skipNS is set, matching the figure's "for clarity,
// edges to the NS node are excluded".
func (s *Schema) Dot(name string, skipNS bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for _, n := range s.Nodes {
		if skipNS && n == NS {
			continue
		}
		shape := "ellipse"
		if n == NS {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", n, shape)
	}
	for _, e := range s.Edges {
		if skipNS && e.To == NS {
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.label())
	}
	b.WriteString("}\n")
	return b.String()
}

// OutEdges returns the schema edges leaving the named node.
func (s *Schema) OutEdges(fn string) []Edge {
	var out []Edge
	for _, e := range s.Edges {
		if e.From == fn {
			out = append(out, e)
		}
	}
	return out
}

// CreationsOf returns the creation contexts of a Skolem function.
func (s *Schema) CreationsOf(fn string) []Creation {
	var out []Creation
	for _, c := range s.Creations {
		if c.Fn == fn {
			out = append(out, c)
		}
	}
	return out
}

// HasNode reports whether the schema has a node with the name.
func (s *Schema) HasNode(name string) bool {
	for _, n := range s.Nodes {
		if n == name {
			return true
		}
	}
	return false
}

// RecoverQuery reconstructs a StruQL query from the schema. The paper
// notes the site schema is equivalent to the original query; the recovered
// query is a flattened form — one block per creation, link, and collect,
// each carrying its full conjunction — that evaluates to the same site
// graph as the original.
func (s *Schema) RecoverQuery() *struql.Query {
	q := &struql.Query{}
	for _, c := range s.Creations {
		blk := &struql.Block{
			Where:  c.Where,
			Create: []struql.SkolemTerm{{Fn: c.Fn, Args: c.Args}},
		}
		q.Blocks = append(q.Blocks, blk)
	}
	for _, e := range s.Edges {
		le := struql.LinkExpr{
			From:  struql.SkolemTerm{Fn: e.From, Args: e.FromArgs},
			Label: e.Label,
		}
		if e.To == NS {
			// ToArgs[0] is the printed term: re-parse variable vs constant.
			t := parseTermText(e.ToArgs[0])
			le.To = struql.LinkTerm{Term: &t}
		} else {
			le.To = struql.LinkTerm{Skolem: &struql.SkolemTerm{Fn: e.To, Args: e.ToArgs}}
		}
		q.Blocks = append(q.Blocks, &struql.Block{Where: e.Where, Link: []struql.LinkExpr{le}})
	}
	for _, c := range s.Collects {
		ce := struql.CollectExpr{Coll: c.Coll}
		if c.Target == NS {
			t := parseTermText(c.Args[0])
			ce.Target = struql.LinkTerm{Term: &t}
		} else {
			ce.Target = struql.LinkTerm{Skolem: &struql.SkolemTerm{Fn: c.Target, Args: c.Args}}
		}
		q.Blocks = append(q.Blocks, &struql.Block{Where: c.Where, Collect: []struql.CollectExpr{ce}})
	}
	return q
}

// parseTermText reverses Term.String() for NS targets recorded as text.
func parseTermText(s string) struql.Term {
	sub := "where C(x), x -> \"l\" -> " + s + " create N(x)"
	q, err := struql.Parse(sub)
	if err != nil {
		// The text was a variable name or unparseable; treat as variable.
		return struql.VarTerm(s)
	}
	pc := q.Blocks[0].Where[1].(*struql.PathCond)
	return pc.To
}
