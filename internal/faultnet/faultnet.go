// Package faultnet is a deterministic fault-injection proxy for HTTP
// backends: it wraps a handler and perturbs responses according to a
// schedule that is a pure function of the request index. The same
// schedule replays the same faults in the same order every run, which
// is what makes gray-failure drills assertable in CI — "replica 0 is
// 200ms slow and replica 3 flaps up-down-up" is a test fixture, not a
// race.
//
// Faults model the gray end of the failure spectrum:
//
//   - added latency before the backend runs (a slow replica);
//   - refused connections (a dead or flapping replica);
//   - connection resets after a prefix of the body (a mid-transfer
//     failure that leaves the client with truncated bytes);
//   - stalls mid-body (a wedged replica that neither finishes nor
//     fails);
//   - corrupted body bytes (a bad NIC or proxy — only an end-to-end
//     checksum catches these).
package faultnet

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"time"
)

// Fault is the perturbation applied to one request. The zero value
// passes the request through untouched. Fields compose: a Fault may
// both delay and corrupt. Refuse wins over everything; Reset wins over
// Stall.
type Fault struct {
	// Refuse drops the connection before the backend runs — the client
	// sees a reset/EOF, as from a dead process.
	Refuse bool
	// Delay sleeps before invoking the backend (a slow replica).
	Delay time.Duration
	// ResetAfter > 0 sends that many body bytes, then drops the
	// connection mid-transfer.
	ResetAfter int
	// StallAfter > 0 sends that many body bytes, then stalls for Stall
	// before sending the rest (a wedged-but-alive replica). The stall
	// ends early if the client gives up.
	StallAfter int
	Stall      time.Duration
	// CorruptLen > 0 XOR-flips that many body bytes starting at offset
	// CorruptAfter. Headers (including any checksum) are computed from
	// the original body, so the corruption is detectable end-to-end.
	CorruptAfter int
	CorruptLen   int
}

// Schedule decides the fault for the i-th request through a proxy
// (0-based, in arrival order). Implementations must be pure functions
// of i so runs are reproducible.
type Schedule interface {
	Fault(i uint64) Fault
}

// Script cycles through a fixed fault sequence: request i gets
// Script[i % len]. An empty script injects nothing.
type Script []Fault

func (s Script) Fault(i uint64) Fault {
	if len(s) == 0 {
		return Fault{}
	}
	return s[i%uint64(len(s))]
}

// Flap is a square wave: Up healthy requests, then Down faulted ones,
// repeating — the up-down-up replica that keeps resetting a
// consecutive-failure counter and only an error-rate window catches.
// DownWith is the fault for the down phase; the zero value refuses.
type Flap struct {
	Up, Down uint64
	DownWith Fault
}

func (f Flap) Fault(i uint64) Fault {
	period := f.Up + f.Down
	if period == 0 || i%period < f.Up {
		return Fault{}
	}
	if f.DownWith == (Fault{}) {
		return Fault{Refuse: true}
	}
	return f.DownWith
}

// Seeded faults each request independently with probability P, drawn
// from a splitmix64 stream over (Seed, i) — deterministic per index,
// uncorrelated across indices. With compares against the faulted
// fraction; the zero value refuses.
type Seeded struct {
	Seed uint64
	P    float64
	With Fault
}

func (s Seeded) Fault(i uint64) Fault {
	if s.P <= 0 {
		return Fault{}
	}
	x := splitmix64(s.Seed + i*0x9e3779b97f4a7c15)
	if float64(x>>11)/float64(1<<53) >= s.P {
		return Fault{}
	}
	if s.With == (Fault{}) {
		return Fault{Refuse: true}
	}
	return s.With
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Proxy wraps an HTTP handler with a fault schedule. It buffers the
// inner response so partial-body faults (reset, stall, corruption) can
// be injected at exact byte offsets, with the full Content-Length
// already advertised — the client must discover the fault from the
// wire, not the framing.
type Proxy struct {
	Inner http.Handler
	Sched Schedule

	n atomic.Uint64
}

// Requests reports how many requests the proxy has seen.
func (p *Proxy) Requests() uint64 { return p.n.Load() }

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := p.n.Add(1) - 1
	var f Fault
	if p.Sched != nil {
		f = p.Sched.Fault(i)
	}

	if f.Refuse {
		dropConn(w)
		return
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			return
		}
	}

	rec := httptest.NewRecorder()
	p.Inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()

	if f.CorruptLen > 0 && f.CorruptAfter < len(body) {
		end := f.CorruptAfter + f.CorruptLen
		if end > len(body) {
			end = len(body)
		}
		for j := f.CorruptAfter; j < end; j++ {
			body[j] ^= 0xff
		}
	}

	h := w.Header()
	for k, vs := range rec.Header() {
		h[k] = vs
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.Code)

	switch {
	case f.ResetAfter > 0 && f.ResetAfter < len(body):
		w.Write(body[:f.ResetAfter])
		flush(w)
		dropConn(w)
	case f.StallAfter > 0 && f.StallAfter < len(body):
		w.Write(body[:f.StallAfter])
		flush(w)
		select {
		case <-time.After(f.Stall):
		case <-r.Context().Done():
			return
		}
		w.Write(body[f.StallAfter:])
	default:
		w.Write(body)
	}
}

func flush(w http.ResponseWriter) {
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// dropConn severs the underlying connection without a graceful close,
// so the client observes a reset or unexpected EOF rather than a clean
// response end.
func dropConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No hijack support (e.g. HTTP/2): the closest observable
		// effect is an empty 502 — still a failed fetch.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}
