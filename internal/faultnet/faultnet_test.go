package faultnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const pageBody = "<html><body>0123456789abcdefghijklmnopqrstuvwxyz</body></html>"

func backend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Gen", "7")
		io.WriteString(w, pageBody)
	})
}

func get(t *testing.T, client *http.Client, url string) (string, http.Header, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), resp.Header, err
}

func TestScriptCycles(t *testing.T) {
	s := Script{{}, {Refuse: true}, {Delay: time.Millisecond}}
	for i := uint64(0); i < 12; i++ {
		want := s[i%3]
		if got := s.Fault(i); got != want {
			t.Fatalf("Fault(%d) = %+v, want %+v", i, got, want)
		}
	}
	if (Script{}).Fault(5) != (Fault{}) {
		t.Fatal("empty script should inject nothing")
	}
}

func TestFlapWave(t *testing.T) {
	f := Flap{Up: 3, Down: 2}
	var gotRefuse []bool
	for i := uint64(0); i < 10; i++ {
		gotRefuse = append(gotRefuse, f.Fault(i).Refuse)
	}
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for i := range want {
		if gotRefuse[i] != want[i] {
			t.Fatalf("request %d: refuse=%v, want %v (wave %v)", i, gotRefuse[i], want[i], gotRefuse)
		}
	}
	// A custom down-phase fault replaces the default refusal.
	slow := Flap{Up: 1, Down: 1, DownWith: Fault{Delay: time.Second}}
	if got := slow.Fault(1); got.Refuse || got.Delay != time.Second {
		t.Fatalf("DownWith not honored: %+v", got)
	}
	if (Flap{}).Fault(0) != (Fault{}) {
		t.Fatal("zero-period flap should inject nothing")
	}
}

func TestSeededDeterministic(t *testing.T) {
	a := Seeded{Seed: 42, P: 0.5}
	b := Seeded{Seed: 42, P: 0.5}
	c := Seeded{Seed: 43, P: 0.5}
	same, diff := true, false
	for i := uint64(0); i < 256; i++ {
		if a.Fault(i) != b.Fault(i) {
			same = false
		}
		if a.Fault(i) != c.Fault(i) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must produce the same fault sequence")
	}
	if !diff {
		t.Fatal("different seeds should produce different sequences")
	}
	// The empirical fault rate should be near P.
	n := 0
	for i := uint64(0); i < 10000; i++ {
		if a.Fault(i).Refuse {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("fault rate %d/10000, want ~5000", n)
	}
}

func TestProxyPassthrough(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	body, hdr, err := get(t, ts.Client(), ts.URL)
	if err != nil {
		t.Fatalf("passthrough: %v", err)
	}
	if body != pageBody {
		t.Fatalf("body altered: %q", body)
	}
	if hdr.Get("X-Gen") != "7" {
		t.Fatal("inner headers not forwarded")
	}
	if p.Requests() != 1 {
		t.Fatalf("Requests() = %d, want 1", p.Requests())
	}
}

func TestProxyDelay(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{{Delay: 80 * time.Millisecond}}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	start := time.Now()
	body, _, err := get(t, ts.Client(), ts.URL)
	if err != nil || body != pageBody {
		t.Fatalf("delayed response corrupted: err=%v", err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("response too fast: %v", el)
	}
}

func TestProxyRefuse(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{{Refuse: true}, {}}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	if _, _, err := get(t, ts.Client(), ts.URL); err == nil {
		t.Fatal("refused request should fail at the transport")
	}
	// The schedule cycles: the next request is clean.
	body, _, err := get(t, ts.Client(), ts.URL)
	if err != nil || body != pageBody {
		t.Fatalf("request after refusal should succeed: err=%v", err)
	}
}

func TestProxyResetMidBody(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{{ResetAfter: 10}}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatalf("reset should arrive mid-body, not on connect: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read should fail mid-body, got %d clean bytes", len(b))
	}
	if len(b) > len(pageBody)/2 {
		t.Fatalf("got %d bytes before reset, want a short prefix", len(b))
	}
}

func TestProxyStallMidBody(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{{StallAfter: 10, Stall: 60 * time.Millisecond}}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	start := time.Now()
	body, _, err := get(t, ts.Client(), ts.URL)
	if err != nil || body != pageBody {
		t.Fatalf("stalled body should eventually complete: err=%v body=%q", err, body)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("no stall observed: %v", el)
	}
	// A client deadline shorter than the stall must abort the read —
	// the regression a per-attempt timeout exists to catch.
	p2 := &Proxy{Inner: backend(), Sched: Script{{StallAfter: 10, Stall: 5 * time.Second}}}
	ts2 := httptest.NewServer(p2)
	defer ts2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts2.URL, nil)
	resp, err := ts2.Client().Do(req)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("read through a long stall should fail once the context expires")
	}
}

func TestProxyCorruption(t *testing.T) {
	p := &Proxy{Inner: backend(), Sched: Script{{CorruptAfter: 8, CorruptLen: 4}}}
	ts := httptest.NewServer(p)
	defer ts.Close()
	body, _, err := get(t, ts.Client(), ts.URL)
	if err != nil {
		t.Fatalf("corrupted response should still complete: %v", err)
	}
	if body == pageBody {
		t.Fatal("body should have been corrupted")
	}
	if len(body) != len(pageBody) {
		t.Fatalf("corruption changed length: %d != %d", len(body), len(pageBody))
	}
	if !strings.HasPrefix(body, pageBody[:8]) || body[12:] != pageBody[12:] {
		t.Fatal("corruption outside the [8,12) window")
	}
	for j := 8; j < 12; j++ {
		if body[j] != pageBody[j]^0xff {
			t.Fatalf("byte %d: got %#x, want %#x", j, body[j], pageBody[j]^0xff)
		}
	}
}
