package ddl

import (
	"strconv"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokInt
	tokFloat
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokSemi
	tokColon
	tokComma
	tokAmp
	tokError
)

type token struct {
	kind tokKind
	text string
	i64  int64
	f64  float64
	line int
}

// lexer is a minimal hand-rolled scanner for the DDL. Identifiers may
// contain letters, digits, '_', '-', '.', and '/' (so bare oids like
// "people/23" and attribute names like "HTML-template" scan as one token).
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
	}
	return r
}

func isIdentRune(r rune, first bool) bool {
	if unicode.IsLetter(r) || r == '_' {
		return true
	}
	if first {
		return false
	}
	return unicode.IsDigit(r) || r == '-' || r == '.' || r == '/'
}

func (l *lexer) scan() token {
	for {
		for l.pos < len(l.src) {
			r := l.peek()
			if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
				l.advance()
				continue
			}
			break
		}
		if l.peek() == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}
	}
	line := l.line
	r := l.peek()
	switch r {
	case '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line}
	case '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line}
	case '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line}
	case ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line}
	case ';':
		l.advance()
		return token{kind: tokSemi, text: ";", line: line}
	case ':':
		l.advance()
		return token{kind: tokColon, text: ":", line: line}
	case ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line}
	case '&':
		l.advance()
		return token{kind: tokAmp, text: "&", line: line}
	case '"':
		return l.scanString(line)
	}
	if unicode.IsDigit(r) || r == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
		return l.scanNumber(line)
	}
	if isIdentRune(r, true) {
		start := l.pos
		l.advance()
		for l.pos < len(l.src) && isIdentRune(l.peek(), false) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}
	}
	l.advance()
	return token{kind: tokError, text: string(r), line: line}
}

// scanString reads a Go-syntax quoted string. Using strconv's quoting
// rules end to end keeps Print/Parse round trips exact for every value,
// including control characters.
func (l *lexer) scanString(line int) token {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		r := l.advance()
		if r == '\\' {
			if l.pos < len(l.src) {
				l.advance()
			}
			continue
		}
		if r == '"' {
			raw := l.src[start:l.pos]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return token{kind: tokError, text: "bad string literal " + raw, line: line}
			}
			return token{kind: tokString, text: s, line: line}
		}
		if r == '\n' {
			// Go string literals do not span lines.
			return token{kind: tokError, text: "unterminated string", line: line}
		}
	}
	return token{kind: tokError, text: "unterminated string", line: line}
}

func (l *lexer) scanNumber(line int) token {
	start := l.pos
	if l.peek() == '-' {
		l.advance()
	}
	isFloat := false
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsDigit(r) {
			l.advance()
			continue
		}
		// Only treat '.' as a decimal point when followed by a digit, so
		// "1.x" does not scan as a float.
		if r == '.' && !isFloat && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{kind: tokError, text: text, line: line}
		}
		return token{kind: tokFloat, text: text, f64: f, line: line}
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{kind: tokError, text: text, line: line}
	}
	return token{kind: tokInt, text: text, i64: i, line: line}
}
