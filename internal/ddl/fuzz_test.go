package ddl

import "testing"

// FuzzParse: the DDL parser must never panic, and any graph it accepts
// must survive a Print→Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add(`node n { a 1; }`)
	f.Add(`collection C; directive C { a: text; } node n in C { a "x"; }`)
	f.Add("node n { s \"\\\"esc\\\\\"; }")
	f.Add(`edge a b &c;`)
	f.Add("\x00\x01 node")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return
		}
		doc2, err := Parse(Print(doc.Graph))
		if err != nil {
			t.Fatalf("printed form does not reparse: %v", err)
		}
		if doc.Graph.Dump() != doc2.Graph.Dump() {
			t.Fatalf("round trip changed graph for %q", src)
		}
	})
}
