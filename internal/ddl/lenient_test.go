package ddl

import (
	"errors"
	"strings"
	"testing"
)

// TestParseLenientMatchesPrunedStrictParse: the lenient-mode contract —
// a dirty document parses to exactly what Parse yields for the document
// with the dirty statements removed, each skip a positioned diagnostic.
func TestParseLenientMatchesPrunedStrictParse(t *testing.T) {
	cases := []struct {
		name        string
		dirty       string
		pruned      string
		wantRecords int
		wantSkipped int
		wantLine    int
		wantMsg     string
	}{
		{
			name: "bad value mid-file",
			dirty: "collection People;\n" +
				"node a in People { name \"A\"; }\n" +
				"node b in People { name }\n" +
				"node c in People { name \"C\"; }\n",
			pruned: "collection People;\n" +
				"node a in People { name \"A\"; }\n" +
				"node c in People { name \"C\"; }\n",
			wantRecords: 4,
			wantSkipped: 1,
			wantLine:    3,
			wantMsg:     "expected value",
		},
		{
			name: "unknown statement keyword",
			dirty: "frobnicate x;\n" +
				"node a { n 1; }\n",
			pruned:      "node a { n 1; }\n",
			wantRecords: 2,
			wantSkipped: 1,
			wantLine:    1,
			wantMsg:     `unknown statement "frobnicate"`,
		},
		{
			name: "bad directive does not half-apply",
			dirty: "collection People;\n" +
				"directive People { photo: image; home: bogus; }\n" +
				"node a in People { photo \"p.png\"; home \"h\"; }\n",
			// The whole directive statement drops, so photo stays an
			// untyped string too: statements are atomic.
			pruned: "collection People;\n" +
				"node a in People { photo \"p.png\"; home \"h\"; }\n",
			wantRecords: 3,
			wantSkipped: 1,
			wantLine:    2,
			wantMsg:     `unknown directive type "bogus"`,
		},
		{
			name: "truncated node block at EOF",
			dirty: "node a { n 1; }\n" +
				"node b { n ",
			pruned:      "node a { n 1; }\n",
			wantRecords: 2,
			wantSkipped: 1,
			wantLine:    2,
			wantMsg:     "expected value",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, rep := ParseLenient(c.dirty, "site.ddl")
			want, err := Parse(c.pruned)
			if err != nil {
				t.Fatalf("strict parse of pruned input: %v", err)
			}
			if g, w := Print(got.Graph), Print(want.Graph); g != w {
				t.Errorf("lenient(dirty) != strict(pruned)\nlenient:\n%s\nstrict:\n%s", g, w)
			}
			if rep.Records != c.wantRecords || rep.Skipped != c.wantSkipped {
				t.Errorf("records=%d skipped=%d, want %d/%d", rep.Records, rep.Skipped, c.wantRecords, c.wantSkipped)
			}
			if len(rep.Diags) != 1 {
				t.Fatalf("diagnostics = %v, want exactly one", rep.Diags)
			}
			d := rep.Diags[0]
			if d.Source != "site.ddl" || d.Line != c.wantLine {
				t.Errorf("diag = %q, want site.ddl line %d", d.String(), c.wantLine)
			}
			if !strings.Contains(d.Message, c.wantMsg) {
				t.Errorf("diag message = %q, want %q", d.Message, c.wantMsg)
			}
		})
	}
}

// TestParseLenientKeepsEarlierDirectives: a directive that parsed
// cleanly still applies to later nodes even after an intervening skip.
func TestParseLenientKeepsEarlierDirectives(t *testing.T) {
	src := "directive People { photo: image; }\n" +
		"junk;\n" +
		"node a in People { photo \"p.png\"; }\n"
	doc, rep := ParseLenient(src, "site.ddl")
	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1: %v", rep.Skipped, rep.Diags)
	}
	out := Print(doc.Graph)
	if !strings.Contains(out, "image(\"p.png\")") {
		t.Errorf("directive coercion lost after a skipped statement:\n%s", out)
	}
}

// TestParseErrorIsTyped: strict Parse reports *ParseError so callers
// can recover the position programmatically.
func TestParseErrorIsTyped(t *testing.T) {
	_, err := Parse("node a {\n  name ;\n}")
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *ParseError", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2 (%v)", pe.Line, err)
	}
}
