package ddl

import (
	"strings"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

const sample = `
# Homepage data in Strudel's data-definition language.
collection Publications;
directive Publications { abstract: text; postscript: postscript; home: url; }

node pub1 in Publications {
    title  "A Query Language for a Web-Site Management System";
    year   1997;
    month  "September";
    author "Fernandez";
    author "Florescu";
    abstract "abstracts/pub1.txt";
    postscript "ps/pub1.ps";
    related &pub2;
}

node pub2 in Publications {
    title "Catching the Boat with Strudel";
    year  1998;
    booktitle "SIGMOD";
    score 4.5;
    selected true;
    home url("http://www.research.att.com");
}

collection Recent;
member Recent pub2;
edge pub1 cites &pub2;
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	g := doc.Graph
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if !g.InCollection("Publications", "pub1") || !g.InCollection("Recent", "pub2") {
		t.Error("collection memberships missing")
	}
	if v := g.First("pub1", "year"); v.Kind() != graph.KindInt || v.Int() != 1997 {
		t.Errorf("year = %v", v)
	}
	if v := g.First("pub2", "score"); v.Kind() != graph.KindFloat || v.Float() != 4.5 {
		t.Errorf("score = %v", v)
	}
	if v := g.First("pub2", "selected"); v.Kind() != graph.KindBool || !v.Bool() {
		t.Errorf("selected = %v", v)
	}
	if v := g.First("pub1", "related"); !v.IsNode() || v.OID() != "pub2" {
		t.Errorf("related = %v", v)
	}
	if !g.HasEdge("pub1", "cites", graph.NewNode("pub2")) {
		t.Error("edge statement not applied")
	}
}

func TestDirectiveCoercion(t *testing.T) {
	doc := MustParse(sample)
	g := doc.Graph
	// abstract was a plain string; the directive coerces it to a text file.
	if v := g.First("pub1", "abstract"); v.Kind() != graph.KindFile || v.FileType() != graph.FileText {
		t.Errorf("abstract = %v, want text file", v)
	}
	if v := g.First("pub1", "postscript"); v.Kind() != graph.KindFile || v.FileType() != graph.FilePostScript {
		t.Errorf("postscript = %v, want postscript file", v)
	}
	// pub2's home used an explicit url(...), which also works.
	if v := g.First("pub2", "home"); v.Kind() != graph.KindURL {
		t.Errorf("home = %v, want url", v)
	}
	// title has no directive: stays a string.
	if v := g.First("pub1", "title"); v.Kind() != graph.KindString {
		t.Errorf("title = %v, want string", v)
	}
}

func TestDirectiveIsDefaultNotConstraint(t *testing.T) {
	// Paper: "These directives are not constraints and can be overridden
	// in the input file." An explicit type wins over the directive.
	doc := MustParse(`
collection C;
directive C { doc: postscript; }
node n in C { doc html("index.html"); }
`)
	if v := doc.Graph.First("n", "doc"); v.FileType() != graph.FileHTML {
		t.Errorf("doc = %v, want explicit html type", v)
	}
}

func TestDirectiveOnlyAppliesToMembers(t *testing.T) {
	doc := MustParse(`
collection C;
directive C { a: text; }
node outside { a "plain"; }
`)
	if v := doc.Graph.First("outside", "a"); v.Kind() != graph.KindString {
		t.Errorf("non-member value = %v, want plain string", v)
	}
}

func TestStringEscapes(t *testing.T) {
	doc := MustParse(`node n { s "a\"b\\c\nd\te"; }`)
	want := "a\"b\\c\nd\te"
	if v := doc.Graph.First("n", "s"); v.Str() != want {
		t.Errorf("s = %q, want %q", v.Str(), want)
	}
}

func TestNegativeAndFloatNumbers(t *testing.T) {
	doc := MustParse(`node n { i -42; f -1.25; }`)
	if v := doc.Graph.First("n", "i"); v.Int() != -42 {
		t.Errorf("i = %v", v)
	}
	if v := doc.Graph.First("n", "f"); v.Float() != -1.25 {
		t.Errorf("f = %v", v)
	}
}

func TestMultipleCollectionsInNodeHeader(t *testing.T) {
	doc := MustParse(`node n in A, B { x 1; }`)
	g := doc.Graph
	if !g.InCollection("A", "n") || !g.InCollection("B", "n") {
		t.Error("node should be in both A and B")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantFrag string
	}{
		{`bogus stuff;`, "unknown statement"},
		{`node n { attr }`, "expected value"},
		{`node n { attr 1 }`, "expected ';'"},
		{`collection ;`, "collection name"},
		{`directive C { a: nosuch; }`, "unknown directive type"},
		{`node n { s "unterminated; }`, "expected"},
		{`edge a b;`, "expected value"},
		{`member C;`, "node oid"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.src, c.wantFrag)
			continue
		}
		if !strings.Contains(err.Error(), c.wantFrag) {
			t.Errorf("Parse(%q): error %q, want fragment %q", c.src, err, c.wantFrag)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("collection A;\ncollection B;\nbroken here;")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestCommentsIgnored(t *testing.T) {
	doc := MustParse("# top\nnode n { # inline is not supported mid-stmt but full lines are\nx 1; }\n# tail")
	if doc.Graph.First("n", "x").Int() != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	doc := MustParse(sample)
	printed := Print(doc.Graph)
	doc2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, printed)
	}
	if doc.Graph.Dump() != doc2.Graph.Dump() {
		t.Errorf("round trip changed graph:\n--- first\n%s--- second\n%s", doc.Graph.Dump(), doc2.Graph.Dump())
	}
}

func TestPrintRoundTripProperty(t *testing.T) {
	// Any small graph survives Print→Parse unchanged.
	f := func(n uint8, hasColl bool) bool {
		g := graph.New()
		size := int(n%12) + 1
		for i := 0; i < size; i++ {
			oid := graph.OID(string(rune('a' + i%26)))
			g.AddEdge(oid, "num", graph.NewInt(int64(i)))
			g.AddEdge(oid, "txt", graph.NewString(strings.Repeat("x", i%4)))
			if i%3 == 0 {
				g.AddEdge(oid, "ref", graph.NewNode("a"))
			}
			if hasColl {
				g.AddToCollection("C", oid)
			}
		}
		doc, err := Parse(Print(g))
		if err != nil {
			return false
		}
		return doc.Graph.Dump() == g.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIdentifiersWithPathChars(t *testing.T) {
	doc := MustParse(`node people/23 { HTML-template "person.tmpl"; }`)
	if doc.Graph.First("people/23", "HTML-template").Str() != "person.tmpl" {
		t.Error("path-like oid or dashed attribute failed to parse")
	}
}

func TestDirectivesLabels(t *testing.T) {
	doc := MustParse(sample)
	labels := doc.Directives.Labels("Publications")
	want := []string{"abstract", "home", "postscript"}
	if len(labels) != len(want) {
		t.Fatalf("Labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
	if doc.Directives.Labels("NoSuch") != nil {
		t.Error("unknown collection should have nil labels")
	}
}
