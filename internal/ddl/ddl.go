// Package ddl implements Strudel's data-definition language, the common
// format in which data is exchanged between the data repository and
// external sources (§2.1), in the style of OEM's data-definition language.
//
// The language describes a labeled directed graph:
//
//	# comment
//	collection Publications;
//	directive Publications { abstract: text; postscript: postscript; home: url; }
//	node pub1 in Publications {
//	    title  "A Query Language for a Web-Site Management System";
//	    year   1997;
//	    author "Fernandez";
//	    author "Florescu";
//	    abstract "abstracts/pub1.txt";   # coerced to text file by directive
//	    related &pub2;
//	}
//	member Publications pub2;
//	edge pub1 cites &pub2;
//
// Attribute values are quoted strings, integers, floats, true/false, node
// references (&oid), or explicitly typed atoms: url("..."), text("..."),
// html("..."), image("..."), postscript("..."). A collection directive
// gives default types for attribute values that would otherwise be
// interpreted as strings; per the paper, directives are defaults, not
// constraints, and explicit types in the input override them.
package ddl

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/diag"
	"strudel/internal/graph"
)

// ParseError is a DDL syntax error with its 1-based line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ddl: line %d: %s", e.Line, e.Msg)
}

// Directives records per-collection default attribute types: collection →
// attribute → type name ("url" or a file type).
type Directives map[string]map[string]string

// Document is the parsed form of a DDL source: the graph it denotes plus
// the directives it declared (kept so a document can be re-serialized and
// so wrappers can reuse the coercions).
type Document struct {
	Graph      *graph.Graph
	Directives Directives
}

// Parse parses DDL source text into a Document. Errors are *ParseError
// values carrying 1-based line positions.
func Parse(src string) (*Document, error) {
	p := &parser{lex: newLexer(src), doc: &Document{Graph: graph.New(), Directives: Directives{}}}
	p.out = p.doc
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.doc, nil
}

// ParseLenient parses DDL source in fail-soft mode. Each statement is a
// record; a statement that fails to parse is dropped whole (its partial
// effects discarded), recorded in the report as a position-tagged
// diagnostic attributed to source, and parsing resumes at the next
// statement keyword. The surviving document is exactly what Parse
// would produce for the input with the dirty statements removed.
func ParseLenient(src, source string) (*Document, *diag.Report) {
	p := &parser{lex: newLexer(src), doc: &Document{Graph: graph.New(), Directives: Directives{}}}
	rep := &diag.Report{}
	p.next()
	for p.tok.kind != tokEOF {
		rep.Records++
		// Stage each statement so a failed one leaves no partial edges
		// or memberships behind; directive lookups read the merged doc.
		p.out = &Document{Graph: graph.New(), Directives: Directives{}}
		if err := p.statement(); err != nil {
			line := p.tok.line
			msg := err.Error()
			if pe, ok := err.(*ParseError); ok {
				line, msg = pe.Line, pe.Msg
			}
			rep.Skipped++
			rep.Add(diag.Diagnostic{Source: source, Line: line, Severity: diag.Error,
				Message: "skipped statement: " + msg})
			p.resync()
			continue
		}
		p.doc.Graph.Merge(p.out.Graph)
		for coll, dirs := range p.out.Directives {
			m := p.doc.Directives[coll]
			if m == nil {
				m = map[string]string{}
				p.doc.Directives[coll] = m
			}
			for attr, typ := range dirs {
				m[attr] = typ
			}
		}
	}
	return p.doc, rep
}

// resync discards tokens up to the next statement keyword (or EOF),
// always making progress.
func (p *parser) resync() {
	p.next()
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokIdent && isStmtKeyword(p.tok.text) {
			return
		}
		p.next()
	}
}

func isStmtKeyword(s string) bool {
	switch s {
	case "collection", "directive", "node", "member", "edge":
		return true
	}
	return false
}

// MustParse is Parse for tests and embedded literals; it panics on error.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	lex *lexer
	doc *Document // accumulated document (directive lookups read here)
	out *Document // write target: == doc when strict, per-statement stage when lenient
	tok token
}

func (p *parser) run() error {
	p.next()
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) next() { p.tok = p.lex.scan() }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, got %q", what, p.tok.text)
	}
	t := p.tok
	p.next()
	return t, nil
}

func (p *parser) statement() error {
	if p.tok.kind != tokIdent {
		return p.errf("expected statement keyword, got %q", p.tok.text)
	}
	switch p.tok.text {
	case "collection":
		return p.collectionStmt()
	case "directive":
		return p.directiveStmt()
	case "node":
		return p.nodeStmt()
	case "member":
		return p.memberStmt()
	case "edge":
		return p.edgeStmt()
	default:
		return p.errf("unknown statement %q", p.tok.text)
	}
}

func (p *parser) collectionStmt() error {
	p.next()
	name, err := p.expect(tokIdent, "collection name")
	if err != nil {
		return err
	}
	p.out.Graph.DeclareCollection(name.text)
	_, err = p.expect(tokSemi, "';'")
	return err
}

func (p *parser) directiveStmt() error {
	p.next()
	coll, err := p.expect(tokIdent, "collection name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	dirs := p.out.Directives[coll.text]
	if dirs == nil {
		dirs = map[string]string{}
		p.out.Directives[coll.text] = dirs
	}
	for p.tok.kind != tokRBrace {
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return err
		}
		typ, err := p.expect(tokIdent, "type name")
		if err != nil {
			return err
		}
		if typ.text != "url" {
			if _, ok := graph.ParseFileType(typ.text); !ok {
				return p.errf("unknown directive type %q", typ.text)
			}
		}
		dirs[attr.text] = typ.text
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return err
		}
	}
	p.next() // consume '}'
	return nil
}

func (p *parser) nodeStmt() error {
	p.next()
	oidTok, err := p.expect(tokIdent, "node oid")
	if err != nil {
		return err
	}
	oid := graph.OID(oidTok.text)
	p.out.Graph.AddNode(oid)
	var colls []string
	if p.tok.kind == tokIdent && p.tok.text == "in" {
		p.next()
		for {
			c, err := p.expect(tokIdent, "collection name")
			if err != nil {
				return err
			}
			colls = append(colls, c.text)
			p.out.Graph.AddToCollection(c.text, oid)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		attr, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return err
		}
		val, err := p.value()
		if err != nil {
			return err
		}
		val = p.applyDirectives(colls, attr.text, val)
		p.out.Graph.AddEdge(oid, attr.text, val)
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return err
		}
	}
	p.next() // consume '}'
	return nil
}

// applyDirectives coerces a plain string value to the type a collection
// directive declares for the attribute, if any.
func (p *parser) applyDirectives(colls []string, attr string, v graph.Value) graph.Value {
	if v.Kind() != graph.KindString {
		return v // explicit types override directives
	}
	for _, c := range colls {
		if typ, ok := p.doc.Directives[c][attr]; ok {
			if typ == "url" {
				return graph.NewURL(v.Str())
			}
			if ft, ok := graph.ParseFileType(typ); ok {
				return graph.NewFile(ft, v.Str())
			}
		}
	}
	return v
}

func (p *parser) memberStmt() error {
	p.next()
	coll, err := p.expect(tokIdent, "collection name")
	if err != nil {
		return err
	}
	oid, err := p.expect(tokIdent, "node oid")
	if err != nil {
		return err
	}
	p.out.Graph.AddToCollection(coll.text, graph.OID(oid.text))
	_, err = p.expect(tokSemi, "';'")
	return err
}

func (p *parser) edgeStmt() error {
	p.next()
	from, err := p.expect(tokIdent, "source oid")
	if err != nil {
		return err
	}
	label, err := p.expect(tokIdent, "edge label")
	if err != nil {
		return err
	}
	val, err := p.value()
	if err != nil {
		return err
	}
	p.out.Graph.AddEdge(graph.OID(from.text), label.text, val)
	_, err = p.expect(tokSemi, "';'")
	return err
}

// value parses one attribute value.
func (p *parser) value() (graph.Value, error) {
	switch p.tok.kind {
	case tokString:
		v := graph.NewString(p.tok.text)
		p.next()
		return v, nil
	case tokInt:
		v := graph.NewInt(p.tok.i64)
		p.next()
		return v, nil
	case tokFloat:
		v := graph.NewFloat(p.tok.f64)
		p.next()
		return v, nil
	case tokAmp:
		p.next()
		oid, err := p.expect(tokIdent, "node oid after '&'")
		if err != nil {
			return graph.Null, err
		}
		return graph.NewNode(graph.OID(oid.text)), nil
	case tokIdent:
		switch p.tok.text {
		case "true":
			p.next()
			return graph.NewBool(true), nil
		case "false":
			p.next()
			return graph.NewBool(false), nil
		case "url", "text", "html", "image", "postscript":
			typ := p.tok.text
			p.next()
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return graph.Null, err
			}
			s, err := p.expect(tokString, "quoted string")
			if err != nil {
				return graph.Null, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return graph.Null, err
			}
			if typ == "url" {
				return graph.NewURL(s.text), nil
			}
			ft, _ := graph.ParseFileType(typ)
			return graph.NewFile(ft, s.text), nil
		}
	}
	return graph.Null, p.errf("expected value, got %q", p.tok.text)
}

// Print serializes a graph to DDL text that Parse round-trips: first all
// collection declarations, then one node block per node carrying its
// memberships and attributes. Directives, having already been applied
// during parsing, serialize as explicitly typed values instead.
func Print(g *graph.Graph) string {
	var b strings.Builder
	for _, c := range g.CollectionNames() {
		fmt.Fprintf(&b, "collection %s;\n", c)
	}
	for _, oid := range g.Nodes() {
		fmt.Fprintf(&b, "node %s", string(oid))
		if colls := g.CollectionsOf(oid); len(colls) > 0 {
			fmt.Fprintf(&b, " in %s", strings.Join(colls, ", "))
		}
		b.WriteString(" {\n")
		for _, e := range g.Out(oid) {
			fmt.Fprintf(&b, "    %s %s;\n", e.Label, e.To)
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Labels returns the attribute names mentioned in a directives map, sorted;
// used by wrappers to report the coercions they will apply.
func (d Directives) Labels(coll string) []string {
	var out []string
	for a := range d[coll] {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
