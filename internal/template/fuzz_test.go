package template

import (
	"testing"

	"strudel/internal/graph"
)

// FuzzParseAndRender: template parsing and rendering must never panic;
// rendering must be deterministic.
func FuzzParseAndRender(f *testing.F) {
	f.Add(`<SFMT title> by <SFMT author ENUM DELIM=", ">`)
	f.Add(`<SIF year >= 1998>new<SELSE>old</SIF>`)
	f.Add(`<SFOR a IN author><SFMT @a></SFOR>`)
	f.Add(`<SFMT YearPage UL ORDER=ascend KEY=Year>`)
	f.Add(`<SINCLUDE header>`)
	f.Add(`<SFMT a.b.c EMBED>`)
	f.Add("<SFMT \x00>")
	f.Add(`plain <b>html</b> only`)
	g := graph.New()
	g.AddEdge("o", "title", graph.NewString("T"))
	g.AddEdge("o", "author", graph.NewString("A"))
	g.AddEdge("o", "year", graph.NewInt(1998))
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		r := &fakeRenderer{}
		out1, err1 := Render(tpl, "o", g, r)
		out2, err2 := Render(tpl, "o", g, r)
		if (err1 == nil) != (err2 == nil) || out1 != out2 {
			t.Fatalf("nondeterministic rendering for %q", src)
		}
	})
}
