package template

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// lookupRenderer adds template lookup to the fake renderer.
type lookupRenderer struct {
	fakeRenderer
	set *Set
}

func (l *lookupRenderer) LookupTemplate(name string) *Template { return l.set.Get(name) }

func TestSIncludeSharedHeader(t *testing.T) {
	set := NewSet()
	set.MustAdd("header", `<div class="nav">site: <SFMT title></div>`)
	set.MustAdd("page", `<SINCLUDE header><h1><SFMT title></h1>`)
	g := graph.New()
	g.AddEdge("p", "title", graph.NewString("Home"))
	out, err := Render(set.Get("page"), "p", g, &lookupRenderer{set: set})
	if err != nil {
		t.Fatal(err)
	}
	want := `<div class="nav">site: Home</div><h1>Home</h1>`
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestSIncludeNestedIncludes(t *testing.T) {
	set := NewSet()
	set.MustAdd("inner", `[inner]`)
	set.MustAdd("middle", `(<SINCLUDE inner>)`)
	set.MustAdd("outer", `<SINCLUDE middle>!`)
	g := graph.New()
	g.AddNode("p")
	out, err := Render(set.Get("outer"), "p", g, &lookupRenderer{set: set})
	if err != nil {
		t.Fatal(err)
	}
	if out != "([inner])!" {
		t.Errorf("got %q", out)
	}
}

func TestSIncludeCycleDetected(t *testing.T) {
	set := NewSet()
	set.MustAdd("a", `<SINCLUDE b>`)
	set.MustAdd("b", `<SINCLUDE a>`)
	g := graph.New()
	g.AddNode("p")
	_, err := Render(set.Get("a"), "p", g, &lookupRenderer{set: set})
	if err == nil || !strings.Contains(err.Error(), "include depth") {
		t.Errorf("err = %v", err)
	}
}

func TestSIncludeUnknownTemplate(t *testing.T) {
	set := NewSet()
	set.MustAdd("page", `<SINCLUDE nosuch>`)
	g := graph.New()
	g.AddNode("p")
	_, err := Render(set.Get("page"), "p", g, &lookupRenderer{set: set})
	if err == nil || !strings.Contains(err.Error(), "no such template") {
		t.Errorf("err = %v", err)
	}
}

func TestSIncludeRendererWithoutLookup(t *testing.T) {
	tpl := MustParse("t", `<SINCLUDE x>`)
	g := graph.New()
	g.AddNode("p")
	_, err := Render(tpl, "p", g, &fakeRenderer{})
	if err == nil || !strings.Contains(err.Error(), "cannot resolve templates") {
		t.Errorf("err = %v", err)
	}
}

func TestSIncludeInsideSFOR(t *testing.T) {
	set := NewSet()
	set.MustAdd("row", `<td><SFMT @v></td>`)
	set.MustAdd("table", `<tr><SFOR v IN cell><SINCLUDE row></SFOR></tr>`)
	g := graph.New()
	g.AddEdge("p", "cell", graph.NewString("a"))
	g.AddEdge("p", "cell", graph.NewString("b"))
	out, err := Render(set.Get("table"), "p", g, &lookupRenderer{set: set})
	if err != nil {
		t.Fatal(err)
	}
	if out != "<tr><td>a</td><td>b</td></tr>" {
		t.Errorf("got %q", out)
	}
}

func TestSIncludeParseErrors(t *testing.T) {
	if _, err := Parse("t", `<SINCLUDE>`); err == nil {
		// "<SINCLUDE>" without space is treated as literal text, so no
		// error; assert it passes through instead.
		tpl := MustParse("t", `<SINCLUDE>`)
		if len(tpl.Nodes) != 1 {
			t.Error("bare <SINCLUDE> should be literal text")
		}
	}
	if _, err := Parse("t", `<SINCLUDE a b>`); err == nil {
		t.Error("two names should fail")
	}
	if _, err := Parse("t", `<SINCLUDE `); err == nil {
		t.Error("unterminated include should fail")
	}
}
