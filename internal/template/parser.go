package template

import (
	"fmt"
	"strings"
)

// Parse parses template source. Tag names are recognized
// case-insensitively; everything outside SFMT/SIF/SFOR tags is literal
// HTML.
func Parse(name, src string) (*Template, error) {
	p := &tparser{name: name, src: src, line: 1}
	nodes, err := p.parseNodes("")
	if err != nil {
		return nil, err
	}
	return &Template{Name: name, Nodes: nodes}, nil
}

// MustParse is Parse for tests and embedded literals.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

type tparser struct {
	name string
	src  string
	pos  int
	line int
}

func (p *tparser) errf(line int, format string, args ...any) error {
	return &ParseError{Name: p.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// tagAt reports which special tag starts at position i ("" if none).
func (p *tparser) tagAt(i int) string {
	rest := p.src[i:]
	for _, tag := range []string{"<SFMT", "<SIF", "<SELSE>", "</SIF>", "<SFOR", "</SFOR>", "<SINCLUDE"} {
		if len(rest) >= len(tag) && strings.EqualFold(rest[:len(tag)], tag) {
			// Open tags must be followed by whitespace (or the tag is
			// self-delimiting like <SELSE>).
			if tag == "<SFMT" || tag == "<SIF" || tag == "<SFOR" || tag == "<SINCLUDE" {
				if len(rest) == len(tag) || !isSpace(rest[len(tag)]) {
					continue
				}
			}
			return tag
		}
	}
	return ""
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// parseNodes parses until EOF or until a closing tag matching stop
// ("SIF" stops at <SELSE> and </SIF>; "SFOR" stops at </SFOR>).
// The closing tag is not consumed.
func (p *tparser) parseNodes(stop string) ([]Node, error) {
	var nodes []Node
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			nodes = append(nodes, &TextNode{Text: text.String()})
			text.Reset()
		}
	}
	for p.pos < len(p.src) {
		if p.src[p.pos] == '<' {
			tag := p.tagAt(p.pos)
			switch tag {
			case "<SELSE>", "</SIF>":
				if stop == "SIF" {
					flush()
					return nodes, nil
				}
			case "</SFOR>":
				if stop == "SFOR" {
					flush()
					return nodes, nil
				}
			case "<SFMT":
				flush()
				n, err := p.parseFmt()
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, n)
				continue
			case "<SIF":
				flush()
				n, err := p.parseIf()
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, n)
				continue
			case "<SFOR":
				flush()
				n, err := p.parseFor()
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, n)
				continue
			case "<SINCLUDE":
				flush()
				n, err := p.parseInclude()
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, n)
				continue
			}
		}
		if p.src[p.pos] == '\n' {
			p.line++
		}
		text.WriteByte(p.src[p.pos])
		p.pos++
	}
	if stop != "" {
		return nil, p.errf(p.line, "missing closing tag for %s", stop)
	}
	flush()
	return nodes, nil
}

// tagFields scans the inside of an open tag up to the closing '>',
// splitting on whitespace but keeping quoted strings intact (quotes
// stripped, marked by a preserved '=' structure).
func (p *tparser) tagFields(tagLen int) ([]string, int, error) {
	line := p.line
	p.pos += tagLen
	var fields []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '>':
			// Disambiguate the comparison operators ">" and ">=" (used in
			// SIF conditions) from the tag terminator: ">=" is always an
			// operator; a bare ">" is an operator when it stands alone
			// between whitespace.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
				flush()
				fields = append(fields, ">=")
				p.pos += 2
				continue
			}
			if cur.Len() == 0 && len(fields) > 0 && p.pos+1 < len(p.src) && isSpace(p.src[p.pos+1]) {
				fields = append(fields, ">")
				p.pos++
				continue
			}
			p.pos++
			flush()
			return fields, line, nil
		case c == '"':
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != '"' {
				if p.src[p.pos] == '\n' {
					p.line++
				}
				cur.WriteByte(p.src[p.pos])
				p.pos++
			}
			if p.pos >= len(p.src) {
				return nil, 0, p.errf(line, "unterminated string in tag")
			}
			p.pos++ // closing quote
		case isSpace(c):
			if c == '\n' {
				p.line++
			}
			p.pos++
			flush()
		default:
			cur.WriteByte(c)
			p.pos++
		}
	}
	return nil, 0, p.errf(line, "unterminated tag (missing '>')")
}

// parseAttrExpr parses Paper, Paper.Abstract, @a, or @a.name.
func parseAttrExpr(s string) (AttrExpr, error) {
	var a AttrExpr
	if s == "" {
		return a, fmt.Errorf("empty attribute expression")
	}
	rest := s
	if rest[0] == '@' {
		rest = rest[1:]
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			if rest == "" {
				return a, fmt.Errorf("bare '@' is not a variable")
			}
			a.Var = rest
			return a, nil
		}
		a.Var = rest[:dot]
		rest = rest[dot+1:]
	}
	if rest == "" {
		return a, fmt.Errorf("attribute expression %q ends with '.'", s)
	}
	a.Path = strings.Split(rest, ".")
	for _, seg := range a.Path {
		if seg == "" {
			return a, fmt.Errorf("attribute expression %q has an empty segment", s)
		}
	}
	return a, nil
}

func (p *tparser) parseFmt() (Node, error) {
	fields, line, err := p.tagFields(len("<SFMT"))
	if err != nil {
		return nil, err
	}
	if len(fields) == 0 {
		return nil, p.errf(line, "SFMT requires an attribute expression")
	}
	expr, err := parseAttrExpr(fields[0])
	if err != nil {
		return nil, p.errf(line, "SFMT: %v", err)
	}
	n := &FmtNode{Expr: expr, Line: line}
	for _, f := range fields[1:] {
		key, val, hasVal := strings.Cut(f, "=")
		switch strings.ToUpper(key) {
		case "EMBED":
			n.Embed = true
		case "ENUM":
			n.Enum = true
		case "UL":
			n.List = "UL"
		case "OL":
			n.List = "OL"
		case "DELIM":
			n.Delim = val
		case "ORDER":
			v := strings.ToLower(val)
			if v != "ascend" && v != "descend" {
				return nil, p.errf(line, "SFMT: ORDER must be ascend or descend, got %q", val)
			}
			n.Order = v
		case "KEY":
			n.Key = val
		case "TEXT":
			n.Text = val
		default:
			if !hasVal {
				return nil, p.errf(line, "SFMT: unknown directive %q", f)
			}
			return nil, p.errf(line, "SFMT: unknown directive %q", key)
		}
	}
	return n, nil
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *tparser) parseIf() (Node, error) {
	fields, line, err := p.tagFields(len("<SIF"))
	if err != nil {
		return nil, err
	}
	if len(fields) == 0 {
		return nil, p.errf(line, "SIF requires an attribute expression")
	}
	expr, err := parseAttrExpr(fields[0])
	if err != nil {
		return nil, p.errf(line, "SIF: %v", err)
	}
	n := &IfNode{Expr: expr, Line: line}
	switch len(fields) {
	case 1:
		// Existence test.
	case 3:
		if !cmpOps[fields[1]] {
			return nil, p.errf(line, "SIF: unknown operator %q", fields[1])
		}
		n.Op, n.Value = fields[1], fields[2]
	default:
		return nil, p.errf(line, "SIF: expected 'attr' or 'attr op value', got %d fields", len(fields))
	}
	thenNodes, err := p.parseNodes("SIF")
	if err != nil {
		return nil, err
	}
	n.Then = thenNodes
	if p.tagAt(p.pos) == "<SELSE>" {
		p.pos += len("<SELSE>")
		elseNodes, err := p.parseNodes("SIF")
		if err != nil {
			return nil, err
		}
		n.Else = elseNodes
	}
	if p.tagAt(p.pos) != "</SIF>" {
		return nil, p.errf(p.line, "expected </SIF>")
	}
	p.pos += len("</SIF>")
	return n, nil
}

func (p *tparser) parseFor() (Node, error) {
	fields, line, err := p.tagFields(len("<SFOR"))
	if err != nil {
		return nil, err
	}
	if len(fields) < 3 || !strings.EqualFold(fields[1], "IN") {
		return nil, p.errf(line, "SFOR: expected '<SFOR var IN attr-expr>'")
	}
	expr, err := parseAttrExpr(fields[2])
	if err != nil {
		return nil, p.errf(line, "SFOR: %v", err)
	}
	n := &ForNode{Var: fields[0], Expr: expr, Line: line}
	for _, f := range fields[3:] {
		key, val, _ := strings.Cut(f, "=")
		if strings.EqualFold(key, "DELIM") {
			n.Delim = val
		} else {
			return nil, p.errf(line, "SFOR: unknown directive %q", f)
		}
	}
	body, err := p.parseNodes("SFOR")
	if err != nil {
		return nil, err
	}
	n.Body = body
	if p.tagAt(p.pos) != "</SFOR>" {
		return nil, p.errf(p.line, "expected </SFOR>")
	}
	p.pos += len("</SFOR>")
	return n, nil
}

func (p *tparser) parseInclude() (Node, error) {
	fields, line, err := p.tagFields(len("<SINCLUDE"))
	if err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, p.errf(line, "SINCLUDE wants exactly one template name")
	}
	return &IncludeNode{Name: fields[0], Line: line}, nil
}
