package template

import (
	"fmt"
	"strings"
	"testing"

	"strudel/internal/graph"
)

// fakeRenderer records refs and embeds for assertions.
type fakeRenderer struct {
	embeds map[graph.OID]string
}

func (f *fakeRenderer) RenderRef(oid graph.OID, text string) (string, error) {
	return fmt.Sprintf("[ref %s|%s]", oid, text), nil
}

func (f *fakeRenderer) RenderEmbed(oid graph.OID) (string, error) {
	if s, ok := f.embeds[oid]; ok {
		return s, nil
	}
	return fmt.Sprintf("[embed %s]", oid), nil
}

func (f *fakeRenderer) RenderFile(v graph.Value, embed bool) (string, error) {
	return fmt.Sprintf("[file %s embed=%v]", v.Str(), embed), nil
}

func paperObject() *graph.Graph {
	g := graph.New()
	g.AddEdge("pub1", "title", graph.NewString("Catching the Boat"))
	g.AddEdge("pub1", "author", graph.NewString("Fernandez"))
	g.AddEdge("pub1", "author", graph.NewString("Florescu"))
	g.AddEdge("pub1", "year", graph.NewInt(1998))
	g.AddEdge("pub1", "Abstract", graph.NewNode("abs1"))
	g.AddEdge("abs1", "title", graph.NewString("Abstract of Boat"))
	g.AddEdge("abs1", "text", graph.NewFile(graph.FileText, "a.txt"))
	return g
}

func render(t *testing.T, src string, obj graph.OID, g *graph.Graph) string {
	t.Helper()
	tpl, err := Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(tpl, obj, g, &fakeRenderer{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPlainTextPassesThrough(t *testing.T) {
	got := render(t, "<html><body>hello & goodbye</body></html>", "pub1", paperObject())
	if got != "<html><body>hello & goodbye</body></html>" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTSingleValue(t *testing.T) {
	got := render(t, `<SFMT title>`, "pub1", paperObject())
	if got != "Catching the Boat" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTFirstValueWithoutEnum(t *testing.T) {
	got := render(t, `<SFMT author>`, "pub1", paperObject())
	if got != "Fernandez" {
		t.Errorf("got %q, want first author only", got)
	}
}

func TestSFMTEnumDelim(t *testing.T) {
	got := render(t, `<SFMT author ENUM DELIM=", ">`, "pub1", paperObject())
	if got != "Fernandez, Florescu" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTEnumEqualsSFOR(t *testing.T) {
	// §2.4: <SFMT author ENUM DELIM=", "> abbreviates the equivalent SFOR.
	g := paperObject()
	a := render(t, `<SFMT author ENUM DELIM=", ">`, "pub1", g)
	b := render(t, `<SFOR a IN author DELIM=", "><SFMT @a></SFOR>`, "pub1", g)
	if a != b {
		t.Errorf("SFMT ENUM %q != SFOR %q", a, b)
	}
}

func TestSFMTULEqualsExplicitList(t *testing.T) {
	// §2.4: <SFMT Abstract EMBED UL> is shorthand for a UL-wrapped SFOR.
	g := paperObject()
	a := render(t, `<SFMT author UL>`, "pub1", g)
	b := render(t, "<ul>\n<SFOR a IN author><li><SFMT @a></li>\n</SFOR></ul>", "pub1", g)
	if a != b {
		t.Errorf("UL shorthand %q != explicit %q", a, b)
	}
}

func TestSFMTEmbedNode(t *testing.T) {
	got := render(t, `<SFMT Abstract EMBED>`, "pub1", paperObject())
	if got != "[embed abs1]" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTRefNodeUsesAnchorText(t *testing.T) {
	got := render(t, `<SFMT Abstract>`, "pub1", paperObject())
	if got != "[ref abs1|Abstract of Boat]" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTTextDirective(t *testing.T) {
	g := paperObject()
	g.AddEdge("abs1", "short", graph.NewString("boat-abs"))
	got := render(t, `<SFMT Abstract TEXT=short>`, "pub1", g)
	if got != "[ref abs1|boat-abs]" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTOrderWithKey(t *testing.T) {
	// The RootPage template of Fig. 6 sorts YearPage objects by Year.
	g := graph.New()
	g.AddEdge("root", "YearPage", graph.NewNode("yp1998"))
	g.AddEdge("root", "YearPage", graph.NewNode("yp1996"))
	g.AddEdge("root", "YearPage", graph.NewNode("yp1997"))
	g.AddEdge("yp1996", "Year", graph.NewInt(1996))
	g.AddEdge("yp1997", "Year", graph.NewInt(1997))
	g.AddEdge("yp1998", "Year", graph.NewInt(1998))
	got := render(t, `<SFMT YearPage UL ORDER=ascend KEY=Year>`, "root", g)
	i96 := strings.Index(got, "yp1996")
	i97 := strings.Index(got, "yp1997")
	i98 := strings.Index(got, "yp1998")
	if !(i96 < i97 && i97 < i98) {
		t.Errorf("ascend order wrong: %q", got)
	}
	desc := render(t, `<SFMT YearPage ENUM DELIM=" " ORDER=descend KEY=Year>`, "root", g)
	if !(strings.Index(desc, "yp1998") < strings.Index(desc, "yp1996")) {
		t.Errorf("descend order wrong: %q", desc)
	}
}

func TestSFMTOrderAtoms(t *testing.T) {
	g := graph.New()
	g.AddEdge("n", "v", graph.NewInt(10))
	g.AddEdge("n", "v", graph.NewInt(2))
	g.AddEdge("n", "v", graph.NewInt(33))
	got := render(t, `<SFMT v ENUM DELIM="," ORDER=ascend>`, "n", g)
	if got != "2,10,33" {
		t.Errorf("numeric order = %q", got)
	}
}

func TestSIFExistence(t *testing.T) {
	g := paperObject()
	got := render(t, `<SIF journal>In <SFMT journal>.<SELSE>unpublished</SIF>`, "pub1", g)
	if got != "unpublished" {
		t.Errorf("got %q", got)
	}
	g.AddEdge("pub1", "journal", graph.NewString("SIGMOD Record"))
	got = render(t, `<SIF journal>In <SFMT journal>.<SELSE>unpublished</SIF>`, "pub1", g)
	if got != "In SIGMOD Record." {
		t.Errorf("got %q", got)
	}
}

func TestSIFComparison(t *testing.T) {
	g := paperObject()
	if got := render(t, `<SIF year >= 1998>recent<SELSE>old</SIF>`, "pub1", g); got != "recent" {
		t.Errorf("got %q", got)
	}
	if got := render(t, `<SIF year < 1998>old<SELSE>recent</SIF>`, "pub1", g); got != "recent" {
		t.Errorf("got %q", got)
	}
	if got := render(t, `<SIF title = "Catching the Boat">match</SIF>`, "pub1", g); got != "match" {
		t.Errorf("got %q", got)
	}
	if got := render(t, `<SIF title != "Catching the Boat">x<SELSE>same</SIF>`, "pub1", g); got != "same" {
		t.Errorf("got %q", got)
	}
}

func TestSIFMissingAttributeFailsComparisons(t *testing.T) {
	got := render(t, `<SIF nosuch = 1>y<SELSE>n</SIF>`, "pub1", paperObject())
	if got != "n" {
		t.Errorf("got %q", got)
	}
}

func TestSFORNestedAndVarNavigation(t *testing.T) {
	g := graph.New()
	g.AddEdge("pub", "authorObj", graph.NewNode("a1"))
	g.AddEdge("pub", "authorObj", graph.NewNode("a2"))
	g.AddEdge("a1", "name", graph.NewString("Mary"))
	g.AddEdge("a1", "inst", graph.NewString("ATT"))
	g.AddEdge("a2", "name", graph.NewString("Dan"))
	got := render(t, `<SFOR a IN authorObj DELIM="; "><SFMT @a.name> (<SIF @a.inst><SFMT @a.inst><SELSE>?</SIF>)</SFOR>`, "pub", g)
	if got != "Mary (ATT); Dan (?)" {
		t.Errorf("got %q", got)
	}
}

func TestDottedAttrExpr(t *testing.T) {
	got := render(t, `<SFMT Abstract.title>`, "pub1", paperObject())
	if got != "Abstract of Boat" {
		t.Errorf("got %q", got)
	}
}

func TestEscaping(t *testing.T) {
	g := graph.New()
	g.AddEdge("n", "v", graph.NewString(`<script>&"`))
	got := render(t, `<SFMT v>`, "n", g)
	if got != "&lt;script&gt;&amp;&#34;" {
		t.Errorf("got %q", got)
	}
}

func TestURLRendering(t *testing.T) {
	g := graph.New()
	g.AddEdge("n", "home", graph.NewURL("http://x.example/a?b=1"))
	got := render(t, `<SFMT home>`, "n", g)
	if !strings.Contains(got, `<a href="http://x.example/a?b=1"`) {
		t.Errorf("got %q", got)
	}
}

func TestFileRenderingDelegates(t *testing.T) {
	got := render(t, `<SFMT Abstract.text EMBED>`, "pub1", paperObject())
	if got != "[file a.txt embed=true]" {
		t.Errorf("got %q", got)
	}
}

func TestCaseInsensitiveTags(t *testing.T) {
	got := render(t, `<sfmt title>`, "pub1", paperObject())
	if got != "Catching the Boat" {
		t.Errorf("lowercase tag: got %q", got)
	}
	got = render(t, `<sif year = 1998>y</sif>`, "pub1", paperObject())
	if got != "y" {
		t.Errorf("lowercase sif: got %q", got)
	}
}

func TestAngleBracketsInTextPreserved(t *testing.T) {
	src := `<TABLE><TR><TD>cell</TD></TR></TABLE><SPAN>x</SPAN>`
	got := render(t, src, "pub1", paperObject())
	if got != src {
		t.Errorf("got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`<SFMT >`, "requires an attribute"},
		{`<SFMT a BOGUS>`, "unknown directive"},
		{`<SFMT a ORDER=sideways>`, "ORDER must be"},
		{`<SIF a>unclosed`, "missing closing tag"},
		{`<SFOR a author>x</SFOR>`, "expected '<SFOR var IN attr-expr>'"},
		{`<SFOR a IN author>unclosed`, "missing closing tag"},
		{`<SFMT a.>`, "empty segment"},
		{`<SFMT @>`, "bare '@'"},
		{`<SIF a = >x</SIF>`, "expected 'attr' or 'attr op value'"},
		{`<SFMT a`, "unterminated tag"},
		{`<SFMT "unclosed`, "unterminated string"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error with %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): got %q, want %q", c.src, err, c.frag)
		}
	}
}

func TestUnknownLoopVariableErrors(t *testing.T) {
	tpl := MustParse("t", `<SFMT @nope>`)
	_, err := Render(tpl, "pub1", paperObject(), &fakeRenderer{})
	if err == nil || !strings.Contains(err.Error(), "unknown loop variable") {
		t.Errorf("err = %v", err)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet()
	s.MustAdd("a", "text a")
	s.MustAdd("b", "<SFMT x>")
	if s.Len() != 2 || s.Get("a") == nil || s.Get("c") != nil {
		t.Error("set basics wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if err := s.Add("bad", "<SFMT >"); err == nil {
		t.Error("Add of bad template should fail")
	}
}

func TestLoopVariableScoping(t *testing.T) {
	// Inner loop variable shadows and restores the outer one.
	g := graph.New()
	g.AddEdge("n", "x", graph.NewString("X1"))
	g.AddEdge("n", "y", graph.NewString("Y1"))
	g.AddEdge("n", "y", graph.NewString("Y2"))
	got := render(t, `<SFOR v IN x><SFOR v IN y><SFMT @v></SFOR><SFMT @v></SFOR>`, "n", g)
	if got != "Y1Y2X1" {
		t.Errorf("got %q", got)
	}
}

func TestSELSEOnly(t *testing.T) {
	got := render(t, `<SIF nosuch><SELSE>fallback</SIF>`, "pub1", paperObject())
	if got != "fallback" {
		t.Errorf("got %q", got)
	}
}

func TestNestedSIFInsideSFOR(t *testing.T) {
	g := graph.New()
	g.AddEdge("n", "v", graph.NewInt(1))
	g.AddEdge("n", "v", graph.NewInt(5))
	got := render(t, `<SFOR a IN v DELIM=","><SIF @a > 3>big<SELSE>small</SIF></SFOR>`, "n", g)
	if got != "small,big" {
		t.Errorf("got %q", got)
	}
}
