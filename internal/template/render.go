package template

import (
	"fmt"
	"html"
	"sort"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// Site is the template evaluator's view of a site graph; *graph.Graph
// satisfies it.
type Site interface {
	OutLabel(oid graph.OID, label string) []graph.Value
}

// TemplateLookup is optionally implemented by Renderers that can resolve
// SINCLUDE names to templates (the HTML generator resolves them against
// its template set).
type TemplateLookup interface {
	LookupTemplate(name string) *Template
}

// Renderer supplies the generation-time decisions the template language
// delays (§2.4): how a node reference becomes a link, what embedding an
// object means, and how file atoms resolve.
type Renderer interface {
	// RenderRef renders a reference to an internal object, typically an
	// anchor to the object's page.
	RenderRef(oid graph.OID, anchorText string) (string, error)
	// RenderEmbed renders the object's own template inline.
	RenderEmbed(oid graph.OID) (string, error)
	// RenderFile renders a file atom, embedded (contents inline) or
	// referenced (link or img tag).
	RenderFile(v graph.Value, embed bool) (string, error)
}

// Render evaluates the template for one object and produces plain HTML.
func Render(t *Template, obj graph.OID, site Site, r Renderer) (string, error) {
	ctx := &renderCtx{site: site, r: r, vars: map[string]graph.Value{}, name: t.Name}
	var b strings.Builder
	if err := ctx.renderNodes(t.Nodes, obj, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

type renderCtx struct {
	site         Site
	r            Renderer
	vars         map[string]graph.Value
	name         string
	includeDepth int
}

func (ctx *renderCtx) errf(line int, format string, args ...any) error {
	return fmt.Errorf("template %s: line %d: %s", ctx.name, line, fmt.Sprintf(format, args...))
}

func (ctx *renderCtx) renderNodes(nodes []Node, obj graph.OID, b *strings.Builder) error {
	for _, n := range nodes {
		switch n := n.(type) {
		case *TextNode:
			b.WriteString(n.Text)
		case *FmtNode:
			if err := ctx.renderFmt(n, obj, b); err != nil {
				return err
			}
		case *IfNode:
			if err := ctx.renderIf(n, obj, b); err != nil {
				return err
			}
		case *ForNode:
			if err := ctx.renderFor(n, obj, b); err != nil {
				return err
			}
		case *IncludeNode:
			if err := ctx.renderInclude(n, obj, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalExpr evaluates an attribute expression to the list of values it
// denotes, in deterministic order.
func (ctx *renderCtx) evalExpr(e AttrExpr, obj graph.OID, line int) ([]graph.Value, error) {
	var current []graph.Value
	if e.Var != "" {
		v, ok := ctx.vars[e.Var]
		if !ok {
			return nil, ctx.errf(line, "unknown loop variable @%s", e.Var)
		}
		current = []graph.Value{v}
	} else {
		current = []graph.Value{graph.NewNode(obj)}
	}
	for _, seg := range e.Path {
		var next []graph.Value
		for _, v := range current {
			if !v.IsNode() {
				continue // atoms have no attributes
			}
			next = append(next, ctx.site.OutLabel(v.OID(), seg)...)
		}
		current = next
	}
	return current, nil
}

// first returns the first value of an object's attribute, or Null.
func (ctx *renderCtx) first(oid graph.OID, label string) graph.Value {
	vals := ctx.site.OutLabel(oid, label)
	if len(vals) == 0 {
		return graph.Null
	}
	return vals[0]
}

// anchorText picks the display text for a node reference: the TEXT
// directive's attribute if given, else the first of title, name, or label,
// else the oid itself.
func (ctx *renderCtx) anchorText(oid graph.OID, textAttr string) string {
	if textAttr != "" {
		if v := ctx.first(oid, textAttr); !v.IsNull() {
			return v.Text()
		}
	}
	for _, attr := range []string{"title", "name", "label", "Title", "Name"} {
		if v := ctx.first(oid, attr); !v.IsNull() && v.IsAtom() {
			return v.Text()
		}
	}
	return string(oid)
}

// renderValue renders one value per the SFMT rules.
func (ctx *renderCtx) renderValue(v graph.Value, embed bool, textAttr string) (string, error) {
	switch v.Kind() {
	case graph.KindNode:
		if embed {
			return ctx.r.RenderEmbed(v.OID())
		}
		return ctx.r.RenderRef(v.OID(), ctx.anchorText(v.OID(), textAttr))
	case graph.KindFile:
		return ctx.r.RenderFile(v, embed)
	case graph.KindURL:
		u := html.EscapeString(v.Str())
		return fmt.Sprintf(`<a href="%s">%s</a>`, u, u), nil
	case graph.KindNull:
		return "", nil
	default:
		return html.EscapeString(v.Text()), nil
	}
}

func (ctx *renderCtx) renderFmt(n *FmtNode, obj graph.OID, b *strings.Builder) error {
	values, err := ctx.evalExpr(n.Expr, obj, n.Line)
	if err != nil {
		return err
	}
	if n.Order != "" {
		keyOf := func(v graph.Value) graph.Value {
			if n.Key != "" && v.IsNode() {
				return ctx.first(v.OID(), n.Key)
			}
			return v
		}
		sort.SliceStable(values, func(i, j int) bool {
			c := graph.Compare(keyOf(values[i]), keyOf(values[j]))
			if n.Order == "descend" {
				return c > 0
			}
			return c < 0
		})
	}
	enumerate := n.Enum || n.List != "" || n.Order != ""
	if !enumerate && len(values) > 1 {
		values = values[:1]
	}
	var parts []string
	for _, v := range values {
		s, err := ctx.renderValue(v, n.Embed, n.Text)
		if err != nil {
			return err
		}
		parts = append(parts, s)
	}
	switch n.List {
	case "UL":
		b.WriteString("<ul>\n")
		for _, p := range parts {
			b.WriteString("<li>" + p + "</li>\n")
		}
		b.WriteString("</ul>")
	case "OL":
		b.WriteString("<ol>\n")
		for _, p := range parts {
			b.WriteString("<li>" + p + "</li>\n")
		}
		b.WriteString("</ol>")
	default:
		b.WriteString(strings.Join(parts, n.Delim))
	}
	return nil
}

// parseConst reads a SIF comparison constant: int, float, or string.
func parseConst(s string) graph.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return graph.NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return graph.NewFloat(f)
	}
	return graph.NewString(s)
}

func (ctx *renderCtx) renderIf(n *IfNode, obj graph.OID, b *strings.Builder) error {
	values, err := ctx.evalExpr(n.Expr, obj, n.Line)
	if err != nil {
		return err
	}
	hold := false
	if n.Op == "" {
		hold = len(values) > 0 && !values[0].IsNull()
	} else if len(values) > 0 {
		c := parseConst(n.Value)
		v := values[0]
		switch n.Op {
		case "=":
			hold = graph.Equiv(v, c)
		case "!=":
			hold = !graph.Equiv(v, c)
		case "<":
			hold = graph.Compare(v, c) < 0
		case "<=":
			hold = graph.Compare(v, c) <= 0
		case ">":
			hold = graph.Compare(v, c) > 0
		case ">=":
			hold = graph.Compare(v, c) >= 0
		}
	}
	if hold {
		return ctx.renderNodes(n.Then, obj, b)
	}
	return ctx.renderNodes(n.Else, obj, b)
}

func (ctx *renderCtx) renderFor(n *ForNode, obj graph.OID, b *strings.Builder) error {
	values, err := ctx.evalExpr(n.Expr, obj, n.Line)
	if err != nil {
		return err
	}
	saved, had := ctx.vars[n.Var]
	defer func() {
		if had {
			ctx.vars[n.Var] = saved
		} else {
			delete(ctx.vars, n.Var)
		}
	}()
	for i, v := range values {
		if i > 0 {
			b.WriteString(n.Delim)
		}
		ctx.vars[n.Var] = v
		if err := ctx.renderNodes(n.Body, obj, b); err != nil {
			return err
		}
	}
	return nil
}

// renderInclude renders another named template against the same object.
func (ctx *renderCtx) renderInclude(n *IncludeNode, obj graph.OID, b *strings.Builder) error {
	lookup, ok := ctx.r.(TemplateLookup)
	if !ok {
		return ctx.errf(n.Line, "SINCLUDE %s: this renderer cannot resolve templates", n.Name)
	}
	t := lookup.LookupTemplate(n.Name)
	if t == nil {
		return ctx.errf(n.Line, "SINCLUDE %s: no such template", n.Name)
	}
	if ctx.includeDepth > 16 {
		return ctx.errf(n.Line, "SINCLUDE %s: include depth exceeded (cycle?)", n.Name)
	}
	ctx.includeDepth++
	defer func() { ctx.includeDepth-- }()
	return ctx.renderNodes(t.Nodes, obj, b)
}
