// Package template implements Strudel's HTML-template language (§2.4,
// Fig. 5): plain HTML extended with three expressions, each of which
// produces plain HTML text —
//
//	<SFMT attr-expr directives...>              format expression
//	<SIF attr-expr [op constant]> ... <SELSE> ... </SIF>   conditional
//	<SFOR var IN attr-expr [DELIM="..."]> ... </SFOR>      enumeration
//	<SINCLUDE name>                             include another template
//
// An attribute expression is a single attribute (Paper), a bounded
// sequence of attributes navigating reachable objects (Paper.Abstract), or
// a loop-variable reference (@a, @a.name). SFMT directives:
//
//	EMBED            embed the referenced object or file inline instead of
//	                 linking to it (the choice of realizing an object as a
//	                 page or a component is delayed to generation time)
//	ENUM             format every value of the attribute, not just the first
//	DELIM="..."      separator between enumerated values
//	UL / OL          emit values as an unordered/ordered HTML list
//	ORDER=ascend|descend   sort the values (dynamic coercion ordering)
//	KEY=attr         sort key: the named attribute of each referenced object
//	TEXT=attr        anchor text: the named attribute of a referenced object
//
// Enumerating all values is common, so ENUM, UL, and OL are the paper's
// abbreviations of equivalent SFOR loops; the tests assert the equivalence.
package template

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one parsed template element.
type Node interface{ node() }

// TextNode is literal HTML text passed through unchanged.
type TextNode struct {
	Text string
}

// FmtNode is a <SFMT> format expression.
type FmtNode struct {
	Expr AttrExpr
	// Directives.
	Embed bool
	Enum  bool
	Delim string
	List  string // "", "UL", or "OL"
	Order string // "", "ascend", or "descend"
	Key   string
	Text  string // anchor-text attribute
	Line  int
}

// IfNode is a <SIF> conditional.
type IfNode struct {
	Expr AttrExpr
	// Op and Value are set when the condition compares rather than tests
	// existence. Op is one of = != < <= > >=.
	Op    string
	Value string
	Then  []Node
	Else  []Node
	Line  int
}

// IncludeNode is a <SINCLUDE name> expression: it renders another named
// template against the same object — shared headers and footers without
// routing them through the site graph.
type IncludeNode struct {
	Name string
	Line int
}

// ForNode is a <SFOR> enumeration binding Var to each value of Expr.
type ForNode struct {
	Var   string
	Expr  AttrExpr
	Delim string
	Body  []Node
	Line  int
}

func (*TextNode) node()    {}
func (*FmtNode) node()     {}
func (*IfNode) node()      {}
func (*ForNode) node()     {}
func (*IncludeNode) node() {}

// AttrExpr navigates from the current object (or a loop variable) through
// a bounded sequence of attributes.
type AttrExpr struct {
	// Var is the loop variable when the expression starts with @var.
	Var  string
	Path []string
}

func (a AttrExpr) String() string {
	var parts []string
	if a.Var != "" {
		parts = append(parts, "@"+a.Var)
	}
	parts = append(parts, a.Path...)
	return strings.Join(parts, ".")
}

// Template is a parsed HTML template.
type Template struct {
	Name  string
	Nodes []Node
}

// ParseError is a template syntax error.
type ParseError struct {
	Name string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("template %s: line %d: %s", e.Name, e.Line, e.Msg)
}

// Set is a named collection of parsed templates.
type Set struct {
	templates map[string]*Template
}

// NewSet returns an empty template set.
func NewSet() *Set { return &Set{templates: map[string]*Template{}} }

// Add parses src and stores it under name, replacing any previous
// template of that name.
func (s *Set) Add(name, src string) error {
	t, err := Parse(name, src)
	if err != nil {
		return err
	}
	s.templates[name] = t
	return nil
}

// MustAdd is Add for embedded literals; it panics on error.
func (s *Set) MustAdd(name, src string) {
	if err := s.Add(name, src); err != nil {
		panic(err)
	}
}

// Get returns the named template, or nil.
func (s *Set) Get(name string) *Template { return s.templates[name] }

// Names returns the template names, sorted.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.templates))
	for n := range s.templates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of templates.
func (s *Set) Len() int { return len(s.templates) }
