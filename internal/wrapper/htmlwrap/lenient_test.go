package htmlwrap

import (
	"strings"
	"testing"

	"strudel/internal/ddl"
	"strudel/internal/diag"
)

// TestExtractLenientReportsStructuralDamage: the tolerant tokenizer has
// always made the best of broken markup; the lenient path must say
// where the damage was.
func TestExtractLenientReportsStructuralDamage(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantSev  diag.Severity
		wantLine int
		wantMsg  string
	}{
		{
			name:     "truncated tag at end of input",
			src:      "<p>one</p>\n<p>two</p>\n<a href=",
			wantSev:  diag.Error,
			wantLine: 3,
			wantMsg:  "truncated tag",
		},
		{
			name:     "unterminated script",
			src:      "<p>kept</p>\n<script>var x = 1;",
			wantSev:  diag.Warning,
			wantLine: 2,
			wantMsg:  "unterminated <script>",
		},
		{
			name:     "unterminated title",
			src:      "<title>Half a title",
			wantSev:  diag.Warning,
			wantLine: 1,
			wantMsg:  "unterminated <title>",
		},
		{
			name:     "unclosed anchor",
			src:      "<p><a href=\"x.html\">dangling",
			wantSev:  diag.Warning,
			wantLine: 1,
			wantMsg:  "unclosed <a>",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, ds := ExtractLenient("p1", c.src, "site.html")
			if len(ds) != 1 {
				t.Fatalf("diagnostics = %v, want exactly one", ds)
			}
			d := ds[0]
			if d.Severity != c.wantSev || d.Line != c.wantLine || d.Source != "site.html" {
				t.Errorf("diag = %q, want %v at site.html line %d", d.String(), c.wantSev, c.wantLine)
			}
			if !strings.Contains(d.Message, c.wantMsg) || !strings.Contains(d.Message, "page p1") {
				t.Errorf("diag message = %q, want %q naming the page", d.Message, c.wantMsg)
			}
		})
	}
}

// TestExtractLenientCleanPage: sound markup yields no diagnostics and
// the identical page Extract yields.
func TestExtractLenientCleanPage(t *testing.T) {
	src := "<title>T</title><h1>H</h1><p>Body text</p><a href=\"x\">link</a>"
	p, ds := ExtractLenient("p1", src, "site.html")
	if len(ds) != 0 {
		t.Fatalf("unexpected diagnostics: %v", ds)
	}
	if p.Title != "T" || len(p.Headings) != 1 || len(p.Links) != 1 {
		t.Errorf("page = %+v", p)
	}
}

// TestLoadLenientSkipsDamagedPages: error-severity pages drop out of
// the wrapped graph and the survivors wrap exactly as the pruned set.
func TestLoadLenientSkipsDamagedPages(t *testing.T) {
	good := Doc{Name: "good.html", Src: "<title>Good</title><p>fine</p>"}
	warned := Doc{Name: "warned.html", Src: "<p>ok</p><script>junk"}
	broken := Doc{Name: "broken.html", Src: "<p>text</p><img src="}
	g, rep := LoadLenient([]Doc{good, warned, broken}, "site", Options{})
	want := Wrap([]*Page{Extract(good.Name, good.Src), Extract(warned.Name, warned.Src)}, Options{})
	if got, w := ddl.Print(g), ddl.Print(want); got != w {
		t.Errorf("lenient(dirty) != wrap(pruned)\nlenient:\n%s\nwant:\n%s", got, w)
	}
	if rep.Records != 3 || rep.Skipped != 1 {
		t.Errorf("records=%d skipped=%d, want 3/1", rep.Records, rep.Skipped)
	}
	if rep.Errors() != 1 {
		t.Errorf("Errors() = %d, want 1 (the truncated tag)", rep.Errors())
	}
	var sawWarn bool
	for _, d := range rep.Diags {
		if d.Severity == diag.Warning && strings.Contains(d.Message, "warned.html") {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Errorf("diags = %v, want a warning for warned.html", rep.Diags)
	}
}
