// Package htmlwrap is Strudel's HTML wrapper: it converts existing HTML
// pages into data-graph objects, the path used to build the CNN
// demonstration site from ~300 scraped article pages (§5.1).
//
// The wrapper is a small hand-rolled tag tokenizer (not a validating
// parser): it extracts the <title>, headings (h1–h3), paragraph text,
// anchors (<a href>), images, and <meta name="..." content="..."> pairs.
// Each wrapped page becomes one object; metadata become attributes;
// anchors become url edges, or node references when the target is another
// wrapped page.
package htmlwrap

import (
	"fmt"
	"html"
	"strings"

	"strudel/internal/diag"
	"strudel/internal/graph"
)

// Page is the extracted content of one HTML page.
type Page struct {
	Name     string // page identifier, e.g. its file name or slug
	Title    string
	Headings []string
	// Paragraphs are the visible text blocks, in order.
	Paragraphs []string
	// Links are anchor targets with their anchor text.
	Links []Link
	// Images are img src values.
	Images []string
	// Meta holds <meta name content> pairs.
	Meta map[string]string
}

// Link is one anchor.
type Link struct {
	Href string
	Text string
}

// issue is a structural problem the tokenizer noticed, positioned by
// byte offset (converted to a line lazily, only when reported).
type issue struct {
	off int
	sev diag.Severity
	msg string
}

// Extract tokenizes HTML and pulls out the structured content. It is
// deliberately tolerant — scraped pages are messy — and silently makes
// the best of structural damage; ExtractLenient reports the same
// damage as diagnostics.
func Extract(name, src string) *Page {
	p, _ := extract(name, src)
	return p
}

// ExtractLenient tokenizes like Extract but also reports structural
// damage as position-tagged diagnostics attributed to source. A
// truncated tag at end of input is an error (the page lost content);
// unterminated <title>, <script>/<style>, and <a> are warnings (the
// tokenizer recovered).
func ExtractLenient(name, src, source string) (*Page, []diag.Diagnostic) {
	p, issues := extract(name, src)
	var ds []diag.Diagnostic
	for _, is := range issues {
		ds = append(ds, diag.Diagnostic{
			Source:   source,
			Line:     lineAt(src, is.off),
			Severity: is.sev,
			Message:  fmt.Sprintf("page %s: %s", name, is.msg),
		})
	}
	return p, ds
}

// lineAt converts a byte offset to a 1-based line number.
func lineAt(src string, off int) int {
	if off > len(src) {
		off = len(src)
	}
	return 1 + strings.Count(src[:off], "\n")
}

func extract(name, src string) (*Page, []issue) {
	var issues []issue
	p := &Page{Name: name, Meta: map[string]string{}}
	var textSink *strings.Builder
	var anchor *Link
	var inTitle bool
	pos := 0
	flushPara := func(b *strings.Builder) {
		if b == nil {
			return
		}
		if t := normalize(b.String()); t != "" {
			p.Paragraphs = append(p.Paragraphs, t)
		}
	}
	var para strings.Builder
	var heading strings.Builder
	for pos < len(src) {
		lt := strings.IndexByte(src[pos:], '<')
		if lt < 0 {
			p.text(src[pos:], textSink, &para, anchor, inTitle)
			break
		}
		p.text(src[pos:pos+lt], textSink, &para, anchor, inTitle)
		pos += lt
		gt := strings.IndexByte(src[pos:], '>')
		if gt < 0 {
			issues = append(issues, issue{off: pos, sev: diag.Error,
				msg: "truncated tag at end of input"})
			break
		}
		tag := src[pos+1 : pos+gt]
		pos += gt + 1
		name, attrs, closing := parseTag(tag)
		switch name {
		case "title":
			inTitle = !closing
		case "h1", "h2", "h3":
			if closing {
				if t := normalize(heading.String()); t != "" {
					p.Headings = append(p.Headings, t)
				}
				heading.Reset()
				textSink = nil
			} else {
				textSink = &heading
			}
		case "p", "div", "br", "td", "li":
			flushPara(&para)
			para.Reset()
		case "a":
			if closing {
				if anchor != nil {
					anchor.Text = normalize(anchor.Text)
					p.Links = append(p.Links, *anchor)
					anchor = nil
				}
			} else if href, ok := attrs["href"]; ok {
				anchor = &Link{Href: href}
			}
		case "img":
			if srcAttr, ok := attrs["src"]; ok {
				p.Images = append(p.Images, srcAttr)
			}
		case "meta":
			if n, ok := attrs["name"]; ok {
				p.Meta[strings.ToLower(n)] = attrs["content"]
			}
		case "script", "style":
			// Skip to the closing tag.
			if !closing {
				end := strings.Index(strings.ToLower(src[pos:]), "</"+name)
				if end >= 0 {
					pos += end
				} else {
					issues = append(issues, issue{off: pos, sev: diag.Warning,
						msg: "unterminated <" + name + ">: rest of page skipped"})
					pos = len(src)
				}
			}
		}
	}
	flushPara(&para)
	if t := normalize(heading.String()); t != "" {
		p.Headings = append(p.Headings, t)
	}
	if inTitle {
		issues = append(issues, issue{off: len(src), sev: diag.Warning,
			msg: "unterminated <title>"})
	}
	if anchor != nil {
		issues = append(issues, issue{off: len(src), sev: diag.Warning,
			msg: "unclosed <a>: anchor kept"})
		anchor.Text = normalize(anchor.Text)
		p.Links = append(p.Links, *anchor)
	}
	return p, issues
}

// text routes character data to the title, a heading, an anchor, and the
// current paragraph as appropriate.
func (p *Page) text(s string, sink *strings.Builder, para *strings.Builder, anchor *Link, inTitle bool) {
	if s == "" {
		return
	}
	un := html.UnescapeString(s)
	if inTitle {
		p.Title = normalize(p.Title + " " + un)
		return
	}
	if anchor != nil {
		anchor.Text += un
	}
	if sink != nil {
		sink.WriteString(un)
		return
	}
	para.WriteString(un)
}

// parseTag splits a raw tag into name, attributes, and whether it closes.
func parseTag(tag string) (name string, attrs map[string]string, closing bool) {
	tag = strings.TrimSpace(tag)
	if strings.HasPrefix(tag, "!") {
		return "", nil, false // comments and doctypes
	}
	if strings.HasPrefix(tag, "/") {
		return strings.ToLower(strings.TrimSpace(tag[1:])), nil, true
	}
	attrs = map[string]string{}
	i := 0
	for i < len(tag) && !isSpace(tag[i]) {
		i++
	}
	name = strings.ToLower(tag[:i])
	rest := tag[i:]
	for {
		rest = strings.TrimLeft(rest, " \t\n\r/")
		if rest == "" {
			break
		}
		eq := strings.IndexAny(rest, "= \t\n\r")
		if eq < 0 {
			attrs[strings.ToLower(rest)] = ""
			break
		}
		key := strings.ToLower(rest[:eq])
		if rest[eq] != '=' {
			attrs[key] = ""
			rest = rest[eq:]
			continue
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t\n\r")
		var val string
		if len(rest) > 0 && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				val, rest = rest[1:], ""
			} else {
				val, rest = rest[1:1+end], rest[2+end:]
			}
		} else {
			end := strings.IndexAny(rest, " \t\n\r")
			if end < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:end], rest[end:]
			}
		}
		if key != "" {
			attrs[key] = html.UnescapeString(val)
		}
	}
	return name, attrs, false
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func normalize(s string) string { return strings.Join(strings.Fields(s), " ") }

// Options controls the graph mapping.
type Options struct {
	// Collection is the collection wrapped pages join; default "Pages".
	Collection string
	// InternalPages maps hrefs to the Names of other wrapped pages, so
	// intra-site anchors become node references instead of url atoms.
	InternalPages map[string]string
	// MetaAttrs lists meta names to copy as attributes (all when nil).
	MetaAttrs []string
}

// Wrap converts extracted pages into a data graph.
func Wrap(pages []*Page, opts Options) *graph.Graph {
	if opts.Collection == "" {
		opts.Collection = "Pages"
	}
	g := graph.New()
	for _, p := range pages {
		oid := graph.OID(p.Name)
		g.AddToCollection(opts.Collection, oid)
		if p.Title != "" {
			g.AddEdge(oid, "title", graph.NewString(p.Title))
		}
		for _, h := range p.Headings {
			g.AddEdge(oid, "heading", graph.NewString(h))
		}
		if len(p.Paragraphs) > 0 {
			g.AddEdge(oid, "body", graph.NewString(strings.Join(p.Paragraphs, "\n")))
		}
		for _, l := range p.Links {
			if target, ok := opts.InternalPages[l.Href]; ok {
				g.AddEdge(oid, "linksTo", graph.NewNode(graph.OID(target)))
			} else {
				g.AddEdge(oid, "link", graph.NewURL(l.Href))
			}
		}
		for _, img := range p.Images {
			g.AddEdge(oid, "image", graph.NewFile(graph.FileImage, img))
		}
		for name, content := range p.Meta {
			if len(opts.MetaAttrs) > 0 && !contains(opts.MetaAttrs, name) {
				continue
			}
			if content != "" {
				g.AddEdge(oid, name, graph.NewString(content))
			}
		}
	}
	return g
}

// Doc is one HTML document to load.
type Doc struct {
	Name string
	Src  string
}

// LoadLenient extracts and wraps a set of documents in fail-soft mode.
// Each document is a record; a document whose extraction reports an
// error-severity problem (it lost content to a truncated tag) is
// skipped, and the survivors wrap exactly as Wrap over Extract of the
// pruned set would. Warnings are reported but keep the page.
func LoadLenient(docs []Doc, source string, opts Options) (*graph.Graph, *diag.Report) {
	rep := &diag.Report{Records: len(docs)}
	var pages []*Page
	for _, d := range docs {
		p, ds := ExtractLenient(d.Name, d.Src, source)
		bad := false
		for _, dg := range ds {
			rep.Add(dg)
			if dg.Severity == diag.Error {
				bad = true
			}
		}
		if bad {
			rep.Skipped++
			continue
		}
		pages = append(pages, p)
	}
	return Wrap(pages, opts), rep
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
