package htmlwrap

import (
	"reflect"
	"testing"
)

// FuzzExtract: the wrapper's hand-rolled tokenizer must never panic on
// arbitrary HTML, extraction must be deterministic, and every extracted
// page must wrap cleanly into a data graph. The checked-in corpus under
// testdata/fuzz seeds it with real synthesized article pages plus
// malformed edge cases (unterminated tags, nested anchors, NUL bytes).
func FuzzExtract(f *testing.F) {
	f.Add(`<html><head><title>T</title><meta name="category" content="news"></head>` +
		`<body><h1>H</h1><p>body <a href="a.html">link</a></p><img src="i.gif"></body></html>`)
	f.Add(`<title>unterminated`)
	f.Add(`<p><a href="x"><a href="y">nested</a></a>`)
	f.Add("<h1>\x00</h1>")
	f.Add(`< = not a tag > text`)
	f.Add(`<meta name= content=><meta content="orphan"><img src=>`)
	f.Fuzz(func(t *testing.T, src string) {
		p1 := Extract("fuzz", src)
		p2 := Extract("fuzz", src)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("nondeterministic extraction for %q", src)
		}
		g := Wrap([]*Page{p1}, Options{InternalPages: map[string]string{"a.html": "other"}})
		if g == nil {
			t.Fatal("Wrap returned nil graph")
		}
	})
}
