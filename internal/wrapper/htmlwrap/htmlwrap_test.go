package htmlwrap

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

const articleHTML = `<!DOCTYPE html>
<html>
<head>
  <title>Markets Rally &amp; Rebound</title>
  <meta name="category" content="business">
  <meta name="date" content="1998-02-14">
  <script>var x = "<p>not text</p>";</script>
  <style>p { color: red }</style>
</head>
<body>
<h1>Markets Rally</h1>
<p>Stocks rose sharply on Friday.</p>
<p>Analysts said the rally was driven by
   strong earnings.</p>
<a href="sports01.html">Related: playoff results</a>
<img src="chart.gif">
<h2>Background</h2>
<p>The market had fallen for three weeks.</p>
</body>
</html>`

func TestExtractBasics(t *testing.T) {
	p := Extract("biz01", articleHTML)
	if p.Title != "Markets Rally & Rebound" {
		t.Errorf("title = %q", p.Title)
	}
	if len(p.Headings) != 2 || p.Headings[0] != "Markets Rally" || p.Headings[1] != "Background" {
		t.Errorf("headings = %v", p.Headings)
	}
	joined := strings.Join(p.Paragraphs, "|")
	if !strings.Contains(joined, "Stocks rose sharply on Friday.") {
		t.Errorf("paragraphs = %v", p.Paragraphs)
	}
	if !strings.Contains(joined, "strong earnings") {
		t.Errorf("multi-line paragraph lost: %v", p.Paragraphs)
	}
	if strings.Contains(joined, "not text") || strings.Contains(joined, "color: red") {
		t.Errorf("script/style leaked into text: %v", p.Paragraphs)
	}
	if len(p.Links) != 1 || p.Links[0].Href != "sports01.html" || p.Links[0].Text != "Related: playoff results" {
		t.Errorf("links = %v", p.Links)
	}
	if len(p.Images) != 1 || p.Images[0] != "chart.gif" {
		t.Errorf("images = %v", p.Images)
	}
	if p.Meta["category"] != "business" || p.Meta["date"] != "1998-02-14" {
		t.Errorf("meta = %v", p.Meta)
	}
}

func TestWrapToGraph(t *testing.T) {
	p := Extract("biz01", articleHTML)
	g := Wrap([]*Page{p}, Options{Collection: "Articles"})
	if !g.InCollection("Articles", "biz01") {
		t.Fatal("article not in collection")
	}
	if v := g.First("biz01", "title"); v.Text() != "Markets Rally & Rebound" {
		t.Errorf("title = %v", v)
	}
	if v := g.First("biz01", "category"); v.Text() != "business" {
		t.Errorf("category = %v", v)
	}
	if v := g.First("biz01", "body"); !strings.Contains(v.Text(), "Stocks rose") {
		t.Errorf("body = %v", v)
	}
	if v := g.First("biz01", "image"); v.Kind() != graph.KindFile || v.FileType() != graph.FileImage {
		t.Errorf("image = %v", v)
	}
	// External link becomes a url atom.
	if v := g.First("biz01", "link"); v.Kind() != graph.KindURL || v.Str() != "sports01.html" {
		t.Errorf("link = %v", v)
	}
}

func TestInternalLinksBecomeNodeRefs(t *testing.T) {
	p := Extract("biz01", articleHTML)
	g := Wrap([]*Page{p}, Options{
		Collection:    "Articles",
		InternalPages: map[string]string{"sports01.html": "sports01"},
	})
	if v := g.First("biz01", "linksTo"); !v.IsNode() || v.OID() != "sports01" {
		t.Errorf("linksTo = %v", v)
	}
	if !g.First("biz01", "link").IsNull() {
		t.Error("internal link should not also be a url atom")
	}
}

func TestMetaAttrFilter(t *testing.T) {
	p := Extract("a", articleHTML)
	g := Wrap([]*Page{p}, Options{MetaAttrs: []string{"category"}})
	if g.First("a", "category").IsNull() {
		t.Error("category should be kept")
	}
	if !g.First("a", "date").IsNull() {
		t.Error("date should be filtered out")
	}
}

func TestDefaultCollection(t *testing.T) {
	g := Wrap([]*Page{Extract("x", "<title>T</title>")}, Options{})
	if !g.InCollection("Pages", "x") {
		t.Error("default collection should be Pages")
	}
}

func TestUnquotedAttributes(t *testing.T) {
	p := Extract("x", `<a href=page.html>go</a><img src=i.gif>`)
	if len(p.Links) != 1 || p.Links[0].Href != "page.html" {
		t.Errorf("links = %v", p.Links)
	}
	if len(p.Images) != 1 || p.Images[0] != "i.gif" {
		t.Errorf("images = %v", p.Images)
	}
}

func TestSingleQuotedAttributes(t *testing.T) {
	p := Extract("x", `<a href='q.html'>t</a>`)
	if len(p.Links) != 1 || p.Links[0].Href != "q.html" {
		t.Errorf("links = %v", p.Links)
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	for _, src := range []string{
		"<", "<a", "<a href=", "<title>unclosed", "text only", "",
		"<p><p><p>", "<h1>h<h2>i", `<a href="x`, "<script>never closed",
	} {
		p := Extract("m", src)
		if p == nil {
			t.Errorf("Extract(%q) returned nil", src)
		}
	}
}

func TestAnchorTextAlsoInParagraph(t *testing.T) {
	p := Extract("x", `<p>See <a href="y.html">the details</a> here.</p>`)
	if len(p.Paragraphs) == 0 || !strings.Contains(p.Paragraphs[0], "See the details here.") {
		t.Errorf("paragraphs = %v", p.Paragraphs)
	}
}

func TestEntitiesUnescaped(t *testing.T) {
	p := Extract("x", `<p>fish &amp; chips &lt;now&gt;</p>`)
	if len(p.Paragraphs) == 0 || p.Paragraphs[0] != "fish & chips <now>" {
		t.Errorf("paragraphs = %v", p.Paragraphs)
	}
}
