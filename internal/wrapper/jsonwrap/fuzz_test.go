package jsonwrap

import (
	"testing"

	"strudel/internal/ddl"
)

// FuzzLoadLenient feeds the fail-soft loader arbitrary documents: it
// must never panic, keep its counters consistent, be deterministic, and
// agree (with zero skips) with the strict loader whenever the strict
// loader succeeds.
func FuzzLoadLenient(f *testing.F) {
	seeds := []string{
		`[{"id":"a","n":1},{"id":"b","n":2}]`,
		`[{"id":"a"},{"id":"b" "n":2},{"id":"c"}]`,
		`{"id":"x","items":[1,2,3]}`,
		`[{"s":"a,b]"},{"v":[1,2]}]`,
		`[{"a":1},`,
		`[1,2] trailing`,
		`[,]`,
		`[]`,
		``,
		`"just a string"`,
		"[\n  {\"id\": \"a\"},\n  {\"id\": \"b\"}\n]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g1, rep1 := LoadLenient("doc", []byte(src), "f.json", Options{})
		if rep1.Skipped > rep1.Records || rep1.Skipped < 0 {
			t.Fatalf("inconsistent report: %+v", rep1)
		}
		g2, rep2 := LoadLenient("doc", []byte(src), "f.json", Options{})
		if ddl.Print(g1) != ddl.Print(g2) || len(rep1.Diags) != len(rep2.Diags) {
			t.Fatalf("nondeterministic lenient load for %q", src)
		}
		if strict, serr := Load("doc", []byte(src), Options{}); serr == nil {
			if rep1.Skipped != 0 {
				t.Fatalf("strict load clean but lenient skipped %d: %q", rep1.Skipped, src)
			}
			if ddl.Print(g1) != ddl.Print(strict) {
				t.Fatalf("lenient and strict disagree on clean input %q", src)
			}
		}
	})
}
