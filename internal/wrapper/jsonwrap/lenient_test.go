package jsonwrap

import (
	"strings"
	"testing"

	"strudel/internal/ddl"
	"strudel/internal/diag"
)

// TestLoadLenientArrayMatchesPrunedStrictLoad is the lenient-mode
// contract for the common export shape, a top-level array of records:
// the fail-soft load of a dirty array equals the strict load of the
// hand-pruned array, with each dropped element a positioned diagnostic.
func TestLoadLenientArrayMatchesPrunedStrictLoad(t *testing.T) {
	cases := []struct {
		name        string
		dirty       string
		pruned      string
		wantRecords int
		wantSkipped int
		wantLine    int // line of the sole diagnostic; 0 = no diagnostics
	}{
		{
			name:        "element missing a comma",
			dirty:       "[\n{\"id\":\"a\",\"n\":1},\n{\"id\":\"b\" \"n\":2},\n{\"id\":\"c\",\"n\":3}\n]",
			pruned:      "[\n{\"id\":\"a\",\"n\":1},\n{\"id\":\"c\",\"n\":3}\n]",
			wantRecords: 3,
			wantSkipped: 1,
			wantLine:    3,
		},
		{
			name:        "element with trailing comma in object",
			dirty:       "[{\"id\":\"a\"},\n{\"id\":\"b\",},\n{\"id\":\"c\"}]",
			pruned:      "[{\"id\":\"a\"},\n{\"id\":\"c\"}]",
			wantRecords: 3,
			wantSkipped: 1,
			wantLine:    2,
		},
		{
			name:        "commas and brackets inside strings do not split",
			dirty:       "[{\"id\":\"a\",\"s\":\"x,y]\"},{\"id\":\"b\",\"v\":[1,2]}]",
			pruned:      "[{\"id\":\"a\",\"s\":\"x,y]\"},{\"id\":\"b\",\"v\":[1,2]}]",
			wantRecords: 2,
			wantSkipped: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, rep := LoadLenient("doc", []byte(c.dirty), "data.json", Options{})
			want, err := Load("doc", []byte(c.pruned), Options{})
			if err != nil {
				t.Fatalf("strict load of pruned input: %v", err)
			}
			if g, w := ddl.Print(got), ddl.Print(want); g != w {
				t.Errorf("lenient(dirty) != strict(pruned)\nlenient:\n%s\nstrict:\n%s", g, w)
			}
			if rep.Records != c.wantRecords || rep.Skipped != c.wantSkipped {
				t.Errorf("records=%d skipped=%d, want %d/%d", rep.Records, rep.Skipped, c.wantRecords, c.wantSkipped)
			}
			if c.wantLine == 0 {
				if len(rep.Diags) != 0 {
					t.Errorf("unexpected diagnostics: %v", rep.Diags)
				}
				return
			}
			if len(rep.Diags) != 1 {
				t.Fatalf("diagnostics = %v, want exactly one", rep.Diags)
			}
			d := rep.Diags[0]
			if d.Source != "data.json" || d.Line != c.wantLine || d.Severity != diag.Error {
				t.Errorf("diag = %q, want an error at data.json line %d", d.String(), c.wantLine)
			}
			if !strings.Contains(d.Message, "skipped array element") {
				t.Errorf("diag message = %q", d.Message)
			}
		})
	}
}

// TestLoadLenientWholeDocument: anything that is not a sound top-level
// array is a single record — a syntax error degrades to an empty graph
// plus one positioned diagnostic.
func TestLoadLenientWholeDocument(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad object", "{\"id\": \"x\",\n  \"n\": }"},
		{"unterminated array falls back whole-doc", "[{\"a\":1},"},
		{"array with trailing garbage", "[1,2] oops"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, rep := LoadLenient("doc", []byte(c.src), "data.json", Options{})
			if n := len(g.Nodes()); n != 0 {
				t.Errorf("graph has %d nodes, want none", n)
			}
			if rep.Records != 1 || rep.Skipped != 1 || rep.Errors() != 1 {
				t.Errorf("report = %+v, want one skipped record with one error", rep)
			}
			if d := rep.Diags[0]; d.Line < 1 || d.Col < 1 {
				t.Errorf("diag %q lacks a position", d.String())
			}
		})
	}
}

// TestLoadLenientCleanDocument: a clean non-array document loads
// exactly as Load does, with an empty report.
func TestLoadLenientCleanDocument(t *testing.T) {
	src := []byte("{\"id\": \"root\", \"items\": [{\"id\": \"a\"}, {\"id\": \"b\"}]}")
	got, rep := LoadLenient("doc", src, "data.json", Options{})
	want, err := Load("doc", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g, w := ddl.Print(got), ddl.Print(want); g != w {
		t.Errorf("lenient != strict for clean input:\n%s\nvs\n%s", g, w)
	}
	if rep.Records != 1 || rep.Skipped != 0 || len(rep.Diags) != 0 {
		t.Errorf("report = %+v, want one clean record", rep)
	}
}
