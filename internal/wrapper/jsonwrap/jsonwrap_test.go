package jsonwrap

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/struql"
)

const projectJSON = `{
  "id": "strudel",
  "name": "Strudel",
  "year": 1998,
  "score": 4.5,
  "active": true,
  "retired": null,
  "tags": ["databases", "web"],
  "members": [
    {"id": "mff", "name": "Mary"},
    {"name": "Anonymous"}
  ],
  "sponsor": {"name": "AT&T", "grant": 100000}
}`

func load(t *testing.T, src string) *graph.Graph {
	t.Helper()
	g, err := Load("doc", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestObjectMapping(t *testing.T) {
	g := load(t, projectJSON)
	// The root object is named by its id field.
	if !g.HasNode("doc/strudel") {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	if !g.InCollection("ObjectsRoots", "doc/strudel") {
		t.Error("root collection missing")
	}
	if v := g.First("doc/strudel", "name"); v.Text() != "Strudel" {
		t.Errorf("name = %v", v)
	}
	// Whole numbers become ints; fractions floats; bools bools.
	if v := g.First("doc/strudel", "year"); v.Kind() != graph.KindInt || v.Int() != 1998 {
		t.Errorf("year = %v", v)
	}
	if v := g.First("doc/strudel", "score"); v.Kind() != graph.KindFloat {
		t.Errorf("score = %v", v)
	}
	if v := g.First("doc/strudel", "active"); v.Kind() != graph.KindBool || !v.Bool() {
		t.Errorf("active = %v", v)
	}
}

func TestNullMembersDropped(t *testing.T) {
	g := load(t, projectJSON)
	if !g.First("doc/strudel", "retired").IsNull() {
		t.Error("null member should be a missing attribute")
	}
}

func TestScalarArraysBecomeMultiValued(t *testing.T) {
	g := load(t, projectJSON)
	tags := g.OutLabel("doc/strudel", "tags")
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestObjectArraysKeepOrder(t *testing.T) {
	g := load(t, projectJSON)
	members := g.OutLabel("doc/strudel", "members")
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	// The keyed member is named by id; the anonymous one by path.
	if !g.HasNode("doc/mff") {
		t.Error("keyed member should use its id")
	}
	var anon graph.OID
	for _, m := range members {
		if m.OID() != "doc/mff" {
			anon = m.OID()
		}
	}
	if g.First(anon, "name").Text() != "Anonymous" {
		t.Errorf("anon member wrong: %v", anon)
	}
	// §6.3 integer keys: index attributes record array order.
	if g.First("doc/mff", "index").Int() != 0 {
		t.Error("mff should have index 0")
	}
	if g.First(anon, "index").Int() != 1 {
		t.Error("anon should have index 1")
	}
}

func TestNestedObject(t *testing.T) {
	g := load(t, projectJSON)
	sponsor := g.First("doc/strudel", "sponsor")
	if !sponsor.IsNode() {
		t.Fatalf("sponsor = %v", sponsor)
	}
	if g.First(sponsor.OID(), "grant").Int() != 100000 {
		t.Error("nested attribute lost")
	}
}

func TestQueryOverWrappedJSON(t *testing.T) {
	// The whole point: StruQL queries run over wrapped JSON directly.
	g := load(t, projectJSON)
	r, err := struql.Eval(struql.MustParse(`
where Objects(o), o -> "name" -> n
create Card(o)
link Card(o) -> "name" -> n
`), repo.NewIndexed(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	// strudel, mff, anonymous member, sponsor — all have names.
	if got := len(r.Graph.Collection("")); got != 0 {
		t.Errorf("unexpected collection: %d", got)
	}
	cards := 0
	for _, oid := range r.Graph.Nodes() {
		if len(oid) > 5 && oid[:5] == "Card(" {
			cards++
		}
	}
	if cards != 4 {
		t.Errorf("cards = %d, want 4", cards)
	}
}

func TestArrayRootDocument(t *testing.T) {
	g, err := Load("arr", []byte(`[{"id": "a"}, {"id": "b"}]`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.CollectionSize("Objects") != 2 {
		t.Errorf("objects = %d", g.CollectionSize("Objects"))
	}
}

func TestScalarRootDocument(t *testing.T) {
	g, err := Load("s", []byte(`"just a string"`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.First("s/root", "value").Text() != "just a string" {
		t.Errorf("graph:\n%s", g.Dump())
	}
}

func TestBadJSON(t *testing.T) {
	if _, err := Load("bad", []byte(`{broken`), Options{}); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestNoIndexOption(t *testing.T) {
	g, err := Load("doc", []byte(`{"items": [{"a": 1}, {"a": 2}]}`), Options{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, oid := range g.Nodes() {
		if !g.First(oid, "index").IsNull() {
			t.Errorf("index attribute present on %s despite NoIndex", oid)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := load(t, projectJSON).Dump()
	b := load(t, projectJSON).Dump()
	if a != b {
		t.Error("wrapping not deterministic")
	}
}
