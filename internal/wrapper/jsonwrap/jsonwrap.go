// Package jsonwrap wraps JSON documents as data graphs. JSON is the
// modern descendant of the "structured files" the paper integrates
// (§5.1), and it maps directly onto the semistructured model: objects
// become nodes, members become labeled edges, arrays become multi-valued
// attributes, and scalars become atoms. Nothing about the document needs
// to be regular — exactly the irregularity §6.3 argues the model is for.
//
// Mapping rules:
//
//   - A JSON object becomes a node; each member "k": v becomes an edge
//     labeled k.
//   - Arrays of scalars become repeated edges (multi-valued attributes);
//     arrays of objects become repeated node edges, each element with an
//     "index" attribute so order survives the unordered model (the §6.3
//     integer-key workaround, applied automatically).
//   - Scalars map to string/float/bool atoms; whole numbers become ints.
//   - null members are dropped: a missing value is a missing attribute.
//
// Node oids are derived from the document name and member paths
// (root, root/items/0, ...), unless an object carries the key field
// (default "id"), which then names it.
package jsonwrap

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"strudel/internal/diag"
	"strudel/internal/graph"
)

// Options tunes the mapping.
type Options struct {
	// Collection receives every object node; default "Objects". The root
	// object additionally joins Collection+"Roots".
	Collection string
	// KeyField names objects: an object with this string member uses its
	// value as oid (prefixed by the document name). Default "id".
	KeyField string
	// RecordIndex adds an "index" attribute to array-element objects;
	// default true.
	NoIndex bool
}

// Load parses a JSON document and maps it to a data graph. name prefixes
// every generated oid, keeping multiple documents disjoint.
func Load(name string, data []byte, opts Options) (*graph.Graph, error) {
	if opts.Collection == "" {
		opts.Collection = "Objects"
	}
	if opts.KeyField == "" {
		opts.KeyField = "id"
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("jsonwrap: %s: %w", name, err)
	}
	return wrapRoot(name, root, opts)
}

// wrapRoot maps an unmarshalled document root to a graph.
func wrapRoot(name string, root any, opts Options) (*graph.Graph, error) {
	g := graph.New()
	w := &wrapper{g: g, opts: opts, name: name}
	rootVal, err := w.value(root, name+"/root")
	if err != nil {
		return nil, err
	}
	if rootVal.IsNode() {
		g.AddToCollection(opts.Collection+"Roots", rootVal.OID())
	} else {
		// A scalar or array document still yields a graph: hang it off a
		// synthetic root node.
		oid := graph.OID(name + "/root")
		g.AddToCollection(opts.Collection+"Roots", oid)
		g.AddEdge(oid, "value", rootVal)
	}
	return g, nil
}

// LoadLenient parses a JSON document in fail-soft mode. When the
// document is a top-level array — the shape of an exported record set —
// each element is a record: elements that fail to parse are skipped,
// each recorded in the report as a position-tagged diagnostic
// attributed to source, and the surviving elements wrap exactly as Load
// would wrap the hand-pruned document. Any other document is a single
// record: a syntax error yields one diagnostic and an empty graph
// instead of an error.
func LoadLenient(name string, data []byte, source string, opts Options) (*graph.Graph, *diag.Report) {
	if opts.Collection == "" {
		opts.Collection = "Objects"
	}
	if opts.KeyField == "" {
		opts.KeyField = "id"
	}
	rep := &diag.Report{}
	elems, isArray := splitTopLevelArray(data)
	if !isArray {
		rep.Records = 1
		var root any
		if err := json.Unmarshal(data, &root); err != nil {
			rep.Skipped = 1
			line, col := offsetPos(data, errOffset(err, data))
			rep.Add(diag.Diagnostic{Source: source, Line: line, Col: col, Severity: diag.Error,
				Message: "skipped document: " + err.Error()})
			return graph.New(), rep
		}
		g, err := wrapRoot(name, root, opts)
		if err != nil {
			// Unreachable for Unmarshal-produced values, but degrade
			// rather than panic if the mapping ever grows a reject.
			rep.Skipped = 1
			rep.Add(diag.Diagnostic{Source: source, Line: 1, Severity: diag.Error,
				Message: "skipped document: " + err.Error()})
			return graph.New(), rep
		}
		return g, rep
	}
	kept := make([]any, 0, len(elems))
	for _, e := range elems {
		rep.Records++
		var v any
		if err := json.Unmarshal(e.raw, &v); err != nil {
			rep.Skipped++
			line, col := offsetPos(data, e.off+errOffset(err, e.raw))
			rep.Add(diag.Diagnostic{Source: source, Line: line, Col: col, Severity: diag.Error,
				Message: "skipped array element: " + err.Error()})
			continue
		}
		kept = append(kept, v)
	}
	g, err := wrapRoot(name, kept, opts)
	if err != nil {
		rep.Add(diag.Diagnostic{Source: source, Line: 1, Severity: diag.Error,
			Message: "skipped document: " + err.Error()})
		return graph.New(), rep
	}
	return g, rep
}

// element is one raw top-level array element and its byte offset in the
// document.
type element struct {
	raw []byte
	off int
}

// splitTopLevelArray scans a document whose first significant byte is
// '[' and slices it into raw elements at top-level commas, tracking
// strings (with escapes) and bracket/brace nesting. It deliberately
// does not validate the elements — that is each element's own
// Unmarshal — but it requires the array framing itself to be sound;
// when the framing is broken (no closing ']', text after it) it reports
// non-array, falling back to whole-document granularity.
func splitTopLevelArray(data []byte) ([]element, bool) {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '[' {
		return nil, false
	}
	i++
	var elems []element
	start := skipJSONSpace(data, i)
	depth := 0
	inStr := false
	esc := false
	for j := start; j < len(data); j++ {
		c := data[j]
		switch {
		case esc:
			esc = false
		case inStr:
			if c == '\\' {
				esc = true
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[' || c == '{':
			depth++
		case c == ']' && depth == 0:
			// End of the array: the final element, if non-empty.
			if raw := bytes.TrimSpace(data[start:j]); len(raw) > 0 {
				elems = append(elems, element{raw: raw, off: skipJSONSpace(data, start)})
			}
			if skipJSONSpace(data, j+1) != len(data) {
				return nil, false // trailing garbage: not a sound array
			}
			return elems, true
		case c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			raw := bytes.TrimSpace(data[start:j])
			elems = append(elems, element{raw: raw, off: skipJSONSpace(data, start)})
			start = skipJSONSpace(data, j+1)
		}
	}
	return nil, false // unterminated array
}

func skipJSONSpace(data []byte, i int) int {
	for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
		i++
	}
	return i
}

// errOffset extracts the byte offset of a JSON syntax or type error;
// 0 when the error carries none.
func errOffset(err error, data []byte) int {
	var se *json.SyntaxError
	if errors.As(err, &se) {
		return clampOffset(int(se.Offset), data)
	}
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) {
		return clampOffset(int(te.Offset), data)
	}
	return 0
}

func clampOffset(off int, data []byte) int {
	if off < 0 {
		return 0
	}
	if off > len(data) {
		return len(data)
	}
	return off
}

// offsetPos converts a byte offset to a 1-based line and column.
func offsetPos(data []byte, off int) (line, col int) {
	line, col = 1, 1
	for i := 0; i < off && i < len(data); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

type wrapper struct {
	g    *graph.Graph
	opts Options
	name string
}

// value maps one JSON value; arrays are handled by the caller (they
// expand to repeated edges), so this sees objects and scalars.
func (w *wrapper) value(v any, path string) (graph.Value, error) {
	switch v := v.(type) {
	case map[string]any:
		return w.object(v, path)
	case string:
		return graph.NewString(v), nil
	case float64:
		if v == math.Trunc(v) && math.Abs(v) < 1<<62 {
			return graph.NewInt(int64(v)), nil
		}
		return graph.NewFloat(v), nil
	case bool:
		return graph.NewBool(v), nil
	case nil:
		return graph.Null, nil
	case []any:
		// A nested array (array inside an array): wrap in a node so the
		// elements have somewhere to hang.
		oid := graph.OID(path)
		w.g.AddNode(oid)
		if err := w.member(oid, "item", v, path); err != nil {
			return graph.Null, err
		}
		return graph.NewNode(oid), nil
	}
	return graph.Null, fmt.Errorf("jsonwrap: %s: unsupported value %T at %s", w.name, v, path)
}

func (w *wrapper) object(m map[string]any, path string) (graph.Value, error) {
	oid := graph.OID(path)
	if id, ok := m[w.opts.KeyField].(string); ok && id != "" {
		oid = graph.OID(w.name + "/" + id)
	}
	w.g.AddToCollection(w.opts.Collection, oid)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := w.member(oid, k, m[k], path+"/"+k); err != nil {
			return graph.Null, err
		}
	}
	return graph.NewNode(oid), nil
}

// member adds the edges for one object member (or array item set).
func (w *wrapper) member(oid graph.OID, label string, v any, path string) error {
	if arr, ok := v.([]any); ok {
		for i, elem := range arr {
			ev, err := w.value(elem, fmt.Sprintf("%s/%d", path, i))
			if err != nil {
				return err
			}
			if ev.IsNull() {
				continue
			}
			w.g.AddEdge(oid, label, ev)
			if ev.IsNode() && !w.opts.NoIndex {
				w.g.AddEdge(ev.OID(), "index", graph.NewInt(int64(i)))
			}
		}
		return nil
	}
	val, err := w.value(v, path)
	if err != nil {
		return err
	}
	if val.IsNull() {
		return nil // null member = missing attribute
	}
	w.g.AddEdge(oid, label, val)
	return nil
}
