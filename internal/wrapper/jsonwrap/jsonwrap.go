// Package jsonwrap wraps JSON documents as data graphs. JSON is the
// modern descendant of the "structured files" the paper integrates
// (§5.1), and it maps directly onto the semistructured model: objects
// become nodes, members become labeled edges, arrays become multi-valued
// attributes, and scalars become atoms. Nothing about the document needs
// to be regular — exactly the irregularity §6.3 argues the model is for.
//
// Mapping rules:
//
//   - A JSON object becomes a node; each member "k": v becomes an edge
//     labeled k.
//   - Arrays of scalars become repeated edges (multi-valued attributes);
//     arrays of objects become repeated node edges, each element with an
//     "index" attribute so order survives the unordered model (the §6.3
//     integer-key workaround, applied automatically).
//   - Scalars map to string/float/bool atoms; whole numbers become ints.
//   - null members are dropped: a missing value is a missing attribute.
//
// Node oids are derived from the document name and member paths
// (root, root/items/0, ...), unless an object carries the key field
// (default "id"), which then names it.
package jsonwrap

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"strudel/internal/graph"
)

// Options tunes the mapping.
type Options struct {
	// Collection receives every object node; default "Objects". The root
	// object additionally joins Collection+"Roots".
	Collection string
	// KeyField names objects: an object with this string member uses its
	// value as oid (prefixed by the document name). Default "id".
	KeyField string
	// RecordIndex adds an "index" attribute to array-element objects;
	// default true.
	NoIndex bool
}

// Load parses a JSON document and maps it to a data graph. name prefixes
// every generated oid, keeping multiple documents disjoint.
func Load(name string, data []byte, opts Options) (*graph.Graph, error) {
	if opts.Collection == "" {
		opts.Collection = "Objects"
	}
	if opts.KeyField == "" {
		opts.KeyField = "id"
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("jsonwrap: %s: %w", name, err)
	}
	g := graph.New()
	w := &wrapper{g: g, opts: opts, name: name}
	rootVal, err := w.value(root, name+"/root")
	if err != nil {
		return nil, err
	}
	if rootVal.IsNode() {
		g.AddToCollection(opts.Collection+"Roots", rootVal.OID())
	} else {
		// A scalar or array document still yields a graph: hang it off a
		// synthetic root node.
		oid := graph.OID(name + "/root")
		g.AddToCollection(opts.Collection+"Roots", oid)
		g.AddEdge(oid, "value", rootVal)
	}
	return g, nil
}

type wrapper struct {
	g    *graph.Graph
	opts Options
	name string
}

// value maps one JSON value; arrays are handled by the caller (they
// expand to repeated edges), so this sees objects and scalars.
func (w *wrapper) value(v any, path string) (graph.Value, error) {
	switch v := v.(type) {
	case map[string]any:
		return w.object(v, path)
	case string:
		return graph.NewString(v), nil
	case float64:
		if v == math.Trunc(v) && math.Abs(v) < 1<<62 {
			return graph.NewInt(int64(v)), nil
		}
		return graph.NewFloat(v), nil
	case bool:
		return graph.NewBool(v), nil
	case nil:
		return graph.Null, nil
	case []any:
		// A nested array (array inside an array): wrap in a node so the
		// elements have somewhere to hang.
		oid := graph.OID(path)
		w.g.AddNode(oid)
		if err := w.member(oid, "item", v, path); err != nil {
			return graph.Null, err
		}
		return graph.NewNode(oid), nil
	}
	return graph.Null, fmt.Errorf("jsonwrap: %s: unsupported value %T at %s", w.name, v, path)
}

func (w *wrapper) object(m map[string]any, path string) (graph.Value, error) {
	oid := graph.OID(path)
	if id, ok := m[w.opts.KeyField].(string); ok && id != "" {
		oid = graph.OID(w.name + "/" + id)
	}
	w.g.AddToCollection(w.opts.Collection, oid)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := w.member(oid, k, m[k], path+"/"+k); err != nil {
			return graph.Null, err
		}
	}
	return graph.NewNode(oid), nil
}

// member adds the edges for one object member (or array item set).
func (w *wrapper) member(oid graph.OID, label string, v any, path string) error {
	if arr, ok := v.([]any); ok {
		for i, elem := range arr {
			ev, err := w.value(elem, fmt.Sprintf("%s/%d", path, i))
			if err != nil {
				return err
			}
			if ev.IsNull() {
				continue
			}
			w.g.AddEdge(oid, label, ev)
			if ev.IsNode() && !w.opts.NoIndex {
				w.g.AddEdge(ev.OID(), "index", graph.NewInt(int64(i)))
			}
		}
		return nil
	}
	val, err := w.value(v, path)
	if err != nil {
		return err
	}
	if val.IsNull() {
		return nil // null member = missing attribute
	}
	w.g.AddEdge(oid, label, val)
	return nil
}
