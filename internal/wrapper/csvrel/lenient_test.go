package csvrel

import (
	"strings"
	"testing"

	"strudel/internal/ddl"
)

// TestLoadLenientMatchesPrunedStrictLoad is the lenient-mode contract:
// loading a dirty table fail-soft yields exactly the graph a strict
// load of the hand-pruned table would, with every dropped row recorded
// as a position-tagged diagnostic.
func TestLoadLenientMatchesPrunedStrictLoad(t *testing.T) {
	keyed := Options{Table: "emp", KeyColumn: "id"}
	keyless := Options{Table: "emp"}
	cases := []struct {
		name        string
		dirty       string
		pruned      string
		opts        Options
		wantRecords int
		wantSkipped int
		wantDiags   []string // substrings, one per diagnostic, in sorted order
	}{
		{
			name:        "ragged row dropped",
			dirty:       "id,name\n1,Alice\n2,Bob,extra\n3,Carol\n",
			pruned:      "id,name\n1,Alice\n3,Carol\n",
			opts:        keyed,
			wantRecords: 3,
			wantSkipped: 1,
			wantDiags:   []string{"emp.csv:3:0: error: skipped row: 3 fields, header has 2"},
		},
		{
			name:        "short row dropped",
			dirty:       "id,name,dept\n1,Alice,R11\n2,Bob\n",
			pruned:      "id,name,dept\n1,Alice,R11\n",
			opts:        keyed,
			wantRecords: 2,
			wantSkipped: 1,
			wantDiags:   []string{"emp.csv:3:0: error: skipped row: 2 fields, header has 3"},
		},
		{
			name:        "keyless rows renumber to match pruned input",
			dirty:       "a,b\n1,2\nbad,row,extra\n3,4\n",
			pruned:      "a,b\n1,2\n3,4\n",
			opts:        keyless,
			wantRecords: 3,
			wantSkipped: 1,
			wantDiags:   []string{"skipped row: 3 fields, header has 2"},
		},
		{
			name:        "unterminated quote at end of table",
			dirty:       "id,name\n1,Alice\n2,\"Bo\nb\n",
			pruned:      "id,name\n1,Alice\n",
			opts:        keyed,
			wantRecords: 2,
			wantSkipped: 1,
			wantDiags:   []string{`extraneous or missing " in quoted-field`},
		},
		{
			name:        "clean table has no diagnostics",
			dirty:       "id,name\n1,Alice\n2,Bob\n",
			pruned:      "id,name\n1,Alice\n2,Bob\n",
			opts:        keyed,
			wantRecords: 2,
			wantSkipped: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, rep, err := LoadLenient(c.dirty, "emp.csv", c.opts)
			if err != nil {
				t.Fatalf("LoadLenient: %v", err)
			}
			want, err := Load(c.pruned, c.opts)
			if err != nil {
				t.Fatalf("strict load of pruned input: %v", err)
			}
			if g, w := ddl.Print(got), ddl.Print(want); g != w {
				t.Errorf("lenient(dirty) != strict(pruned)\nlenient:\n%s\nstrict:\n%s", g, w)
			}
			if rep.Records != c.wantRecords || rep.Skipped != c.wantSkipped {
				t.Errorf("records=%d skipped=%d, want %d/%d", rep.Records, rep.Skipped, c.wantRecords, c.wantSkipped)
			}
			if len(rep.Diags) != len(c.wantDiags) {
				t.Fatalf("diagnostics = %v, want %d of them", rep.Diags, len(c.wantDiags))
			}
			for i, wantSub := range c.wantDiags {
				if got := rep.Diags[i].String(); !strings.Contains(got, wantSub) {
					t.Errorf("diag[%d] = %q, want it to contain %q", i, got, wantSub)
				}
			}
		})
	}
}

// TestLoadLenientHeaderProblems covers failures before any row exists:
// the whole table degrades to an empty graph plus one diagnostic, never
// an error.
func TestLoadLenientHeaderProblems(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		opts     Options
		wantDiag string
	}{
		{"empty input", "", Options{Table: "emp"}, "missing or malformed header row"},
		{"key column missing", "name,dept\nAlice,R11\n", Options{Table: "emp", KeyColumn: "id"}, `key column "id" not in header`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, rep, err := LoadLenient(c.src, "emp.csv", c.opts)
			if err != nil {
				t.Fatalf("LoadLenient: %v", err)
			}
			if n := len(g.Nodes()); n != 0 {
				t.Errorf("graph has %d nodes, want none", n)
			}
			if rep.Skipped != 1 || rep.Errors() != 1 {
				t.Errorf("skipped=%d errors=%d, want 1/1", rep.Skipped, rep.Errors())
			}
			if !strings.Contains(rep.Diags[0].String(), c.wantDiag) {
				t.Errorf("diag = %q, want %q", rep.Diags[0].String(), c.wantDiag)
			}
		})
	}
}

// TestLoadLenientStillRejectsMissingTable: configuration mistakes are
// the caller's bug, not dirty data, and stay hard errors.
func TestLoadLenientStillRejectsMissingTable(t *testing.T) {
	_, _, err := LoadLenient("id\n1\n", "x.csv", Options{})
	if err == nil || !strings.Contains(err.Error(), "Options.Table is required") {
		t.Fatalf("err = %v, want Options.Table required", err)
	}
}
