package csvrel

import (
	"testing"

	"strudel/internal/ddl"
)

// FuzzLoadLenient feeds the fail-soft loader arbitrary table text: it
// must never panic, never return an error (the table name is valid),
// keep its counters consistent, be deterministic, and agree with the
// strict loader whenever the strict loader succeeds.
func FuzzLoadLenient(f *testing.F) {
	seeds := []string{
		"id,name\n1,Alice\n2,Bob\n",
		"id,name\n1,Alice\n2,Bob,extra\n",
		"id,name\n1,\"unterminated\n",
		"id,name\n1,Al\"ice\"\n",
		"",
		"id\n\n1\n",
		"a,b\n\"q\"\"q\",2\n",
		"id,name\r\n1,Alice\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	opts := Options{Table: "t", KeyColumn: "id"}
	f.Fuzz(func(t *testing.T, src string) {
		g1, rep1, err := LoadLenient(src, "f.csv", opts)
		if err != nil {
			t.Fatalf("lenient load errored: %v", err)
		}
		if rep1.Skipped > rep1.Records || rep1.Skipped < 0 {
			t.Fatalf("inconsistent report: %+v", rep1)
		}
		g2, rep2, _ := LoadLenient(src, "f.csv", opts)
		if ddl.Print(g1) != ddl.Print(g2) || len(rep1.Diags) != len(rep2.Diags) {
			t.Fatalf("nondeterministic lenient load for %q", src)
		}
		if strict, serr := Load(src, opts); serr == nil {
			if rep1.Skipped != 0 {
				t.Fatalf("strict load clean but lenient skipped %d: %q", rep1.Skipped, src)
			}
			if ddl.Print(g1) != ddl.Print(strict) {
				t.Fatalf("lenient and strict disagree on clean input %q", src)
			}
		}
	})
}
