package csvrel

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

// TestMalformedInputsReportPosition feeds the relational wrapper the
// broken tables a hot-reloading server sees — ragged rows, unterminated
// quotes, vanished headers — and requires position-bearing errors, never
// a panic.
func TestMalformedInputsReportPosition(t *testing.T) {
	opts := Options{Table: "emp", KeyColumn: "id"}
	cases := []struct {
		name string
		src  string
		opts Options
		// wantLine, when nonzero, is the 1-based line a *csv.ParseError
		// must point at.
		wantLine int
		wantMsg  string
	}{
		{
			name:     "ragged row",
			src:      "id,name\n1,Alice\n2,Bob,extra\n",
			opts:     opts,
			wantLine: 3,
			wantMsg:  "wrong number of fields",
		},
		{
			name: "unterminated quote",
			src:  "id,name\n1,\"Ali\nce\n",
			opts: opts,
			// The record starts on line 2; the reader detects the missing
			// quote on line 3 and reports both.
			wantLine: 3,
			wantMsg:  "quote",
		},
		{
			name:     "bare quote mid-field",
			src:      "id,name\n1,Al\"ice\"\n",
			opts:     opts,
			wantLine: 2,
			wantMsg:  "quote",
		},
		{
			name:    "empty input",
			src:     "",
			opts:    opts,
			wantMsg: "missing header row",
		},
		{
			name:    "key column not in header",
			src:     "name,dept\nAlice,R11\n",
			opts:    opts,
			wantMsg: `key column "id" not in header`,
		},
		{
			name:    "missing table name",
			src:     "id\n1\n",
			opts:    Options{},
			wantMsg: "Options.Table is required",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(c.src, c.opts)
			if err == nil {
				t.Fatal("malformed input loaded without error")
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Errorf("err = %v, want it to mention %q", err, c.wantMsg)
			}
			if c.wantLine != 0 {
				var pe *csv.ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v (%T), want a wrapped *csv.ParseError", err, err)
				}
				if pe.Line != c.wantLine {
					t.Errorf("error line = %d, want %d (%v)", pe.Line, c.wantLine, err)
				}
			}
		})
	}
}

// TestMalformedInputsThroughLoadAll checks that a broken table aborts a
// multi-table load with the failing table named in the error.
func TestMalformedInputsThroughLoadAll(t *testing.T) {
	_, err := LoadAll([]struct {
		Src  string
		Opts Options
	}{
		{Src: "id,name\n1,Alice\n", Opts: Options{Table: "emp", KeyColumn: "id"}},
		{Src: "id,boss\n1\n", Opts: Options{Table: "org", KeyColumn: "id"}},
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "table org") {
		t.Errorf("err = %v, want the failing table named", err)
	}
}
