// Package csvrel is Strudel's relational wrapper: it maps relational
// tables (as CSV) into data graphs, the way the paper's AWK wrappers
// mapped AT&T's small personnel and organization databases (§5.1).
//
// Each table becomes a collection; each row becomes an object; columns
// become attributes. Empty cells become absent edges — the
// semistructured model represents missing data by missing attributes, not
// by NULLs. Values are typed by inference (int, float, bool, URL, string),
// and columns can be declared as references to rows of other tables,
// turning foreign keys into graph edges.
package csvrel

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// Options controls the mapping of one table.
type Options struct {
	// Table names the collection; required.
	Table string
	// KeyColumn is the column whose value names each row object; when
	// empty, rows are numbered table/0, table/1, ...
	KeyColumn string
	// Refs maps a column name to the table its values reference: the cell
	// value v becomes a node reference &<table>/<v>.
	Refs map[string]string
	// Files maps a column to a file type for its values.
	Files map[string]graph.FileType
	// URLs lists columns holding URL values.
	URLs []string
}

// Load parses CSV text (first record is the header) into a data graph.
func Load(src string, opts Options) (*graph.Graph, error) {
	if opts.Table == "" {
		return nil, fmt.Errorf("csvrel: Options.Table is required")
	}
	r := csv.NewReader(strings.NewReader(src))
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvrel: table %s: %w", opts.Table, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvrel: table %s: missing header row", opts.Table)
	}
	header := records[0]
	keyIdx := -1
	for i, h := range header {
		if h == opts.KeyColumn && opts.KeyColumn != "" {
			keyIdx = i
		}
	}
	if opts.KeyColumn != "" && keyIdx < 0 {
		return nil, fmt.Errorf("csvrel: table %s: key column %q not in header %v", opts.Table, opts.KeyColumn, header)
	}
	g := graph.New()
	g.DeclareCollection(opts.Table)
	for rowNum, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvrel: table %s: row %d has %d fields, header has %d",
				opts.Table, rowNum+1, len(rec), len(header))
		}
		var oid graph.OID
		if keyIdx >= 0 {
			oid = RowOID(opts.Table, rec[keyIdx])
		} else {
			oid = RowOID(opts.Table, strconv.Itoa(rowNum))
		}
		g.AddToCollection(opts.Table, oid)
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue // missing attribute, not an empty value
			}
			col := header[i]
			g.AddEdge(oid, col, cellValue(col, cell, opts))
		}
	}
	return g, nil
}

// RowOID names the object for a row of a table.
func RowOID(table, key string) graph.OID {
	return graph.OID(table + "/" + key)
}

func cellValue(col, cell string, opts Options) graph.Value {
	if ref, ok := opts.Refs[col]; ok {
		return graph.NewNode(RowOID(ref, cell))
	}
	if ft, ok := opts.Files[col]; ok {
		return graph.NewFile(ft, cell)
	}
	for _, u := range opts.URLs {
		if u == col {
			return graph.NewURL(cell)
		}
	}
	return inferValue(cell)
}

// inferValue types a cell: int, float, bool, then string.
func inferValue(cell string) graph.Value {
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return graph.NewInt(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return graph.NewFloat(f)
	}
	switch cell {
	case "true", "TRUE", "True":
		return graph.NewBool(true)
	case "false", "FALSE", "False":
		return graph.NewBool(false)
	}
	if strings.HasPrefix(cell, "http://") || strings.HasPrefix(cell, "https://") {
		return graph.NewURL(cell)
	}
	return graph.NewString(cell)
}

// LoadAll loads several tables into one merged graph; later tables may
// reference earlier (or later) ones, since references are by oid.
func LoadAll(tables []struct {
	Src  string
	Opts Options
}) (*graph.Graph, error) {
	g := graph.New()
	for _, t := range tables {
		tg, err := Load(t.Src, t.Opts)
		if err != nil {
			return nil, err
		}
		g.Merge(tg)
	}
	return g, nil
}
