// Package csvrel is Strudel's relational wrapper: it maps relational
// tables (as CSV) into data graphs, the way the paper's AWK wrappers
// mapped AT&T's small personnel and organization databases (§5.1).
//
// Each table becomes a collection; each row becomes an object; columns
// become attributes. Empty cells become absent edges — the
// semistructured model represents missing data by missing attributes, not
// by NULLs. Values are typed by inference (int, float, bool, URL, string),
// and columns can be declared as references to rows of other tables,
// turning foreign keys into graph edges.
package csvrel

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"strudel/internal/diag"
	"strudel/internal/graph"
)

// Options controls the mapping of one table.
type Options struct {
	// Table names the collection; required.
	Table string
	// KeyColumn is the column whose value names each row object; when
	// empty, rows are numbered table/0, table/1, ...
	KeyColumn string
	// Refs maps a column name to the table its values reference: the cell
	// value v becomes a node reference &<table>/<v>.
	Refs map[string]string
	// Files maps a column to a file type for its values.
	Files map[string]graph.FileType
	// URLs lists columns holding URL values.
	URLs []string
}

// Load parses CSV text (first record is the header) into a data graph,
// failing fast on the first malformed row.
func Load(src string, opts Options) (*graph.Graph, error) {
	g, _, err := load(src, opts, "", nil)
	return g, err
}

// LoadLenient parses CSV text in fail-soft mode: a row with a CSV
// syntax error or a field count different from the header is skipped,
// recorded in the report as a position-tagged diagnostic attributed to
// source, and the load continues. The surviving graph is exactly what
// Load would produce for the hand-pruned input (rows keep their key-
// or position-derived oids: position counts only kept rows). Errors are
// reserved for configuration problems (a missing Options.Table).
func LoadLenient(src, source string, opts Options) (*graph.Graph, *diag.Report, error) {
	rep := &diag.Report{}
	g, _, err := load(src, opts, source, rep)
	return g, rep, err
}

// load is the shared loader; a nil report means strict mode.
func load(src string, opts Options, source string, rep *diag.Report) (*graph.Graph, int, error) {
	if opts.Table == "" {
		return nil, 0, fmt.Errorf("csvrel: Options.Table is required")
	}
	lenient := rep != nil
	r := csv.NewReader(strings.NewReader(src))
	r.TrimLeadingSpace = true
	// Field counts are checked against the header below so a short row
	// yields a skip (lenient) or a positioned error (strict), not the
	// reader's ErrFieldCount against the previous record's width.
	r.FieldsPerRecord = -1

	header, err := r.Read()
	if err != nil {
		if rep != nil {
			rep.Records++
			rep.Skipped++
			rep.Add(diag.Diagnostic{Source: source, Line: 1, Severity: diag.Error,
				Message: "missing or malformed header row"})
		}
		if lenient {
			return graph.New(), 0, nil
		}
		return nil, 0, fmt.Errorf("csvrel: table %s: missing header row", opts.Table)
	}
	keyIdx := -1
	for i, h := range header {
		if h == opts.KeyColumn && opts.KeyColumn != "" {
			keyIdx = i
		}
	}
	if opts.KeyColumn != "" && keyIdx < 0 {
		if lenient {
			rep.Records++
			rep.Skipped++
			rep.Add(diag.Diagnostic{Source: source, Line: 1, Severity: diag.Error,
				Message: fmt.Sprintf("key column %q not in header %v", opts.KeyColumn, header)})
			return graph.New(), 0, nil
		}
		return nil, 0, fmt.Errorf("csvrel: table %s: key column %q not in header %v", opts.Table, opts.KeyColumn, header)
	}
	g := graph.New()
	g.DeclareCollection(opts.Table)
	kept := 0
	for rowNum := 0; ; rowNum++ {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if rep != nil {
			rep.Records++
		}
		if err != nil {
			line, col := rowNum+2, 0
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				line, col = pe.Line, pe.Column
			}
			if !lenient {
				return nil, 0, fmt.Errorf("csvrel: table %s: %w", opts.Table, err)
			}
			rep.Skipped++
			rep.Add(diag.Diagnostic{Source: source, Line: line, Col: col, Severity: diag.Error,
				Message: "skipped row: " + csvErrMessage(err)})
			continue
		}
		if len(rec) != len(header) {
			line, col := r.FieldPos(0)
			if !lenient {
				// The same positioned error the reader would have raised
				// had it enforced the header's width itself.
				return nil, 0, fmt.Errorf("csvrel: table %s: %w", opts.Table,
					&csv.ParseError{StartLine: line, Line: line, Column: col, Err: csv.ErrFieldCount})
			}
			rep.Skipped++
			rep.Add(diag.Diagnostic{Source: source, Line: line, Severity: diag.Error,
				Message: fmt.Sprintf("skipped row: %d fields, header has %d", len(rec), len(header))})
			continue
		}
		var oid graph.OID
		if keyIdx >= 0 {
			oid = RowOID(opts.Table, rec[keyIdx])
		} else {
			oid = RowOID(opts.Table, strconv.Itoa(kept))
		}
		kept++
		g.AddToCollection(opts.Table, oid)
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue // missing attribute, not an empty value
			}
			col := header[i]
			g.AddEdge(oid, col, cellValue(col, cell, opts))
		}
	}
	return g, kept, nil
}

// csvErrMessage strips the reader's position prefix ("record on line
// N: ...") so the diagnostic, which carries the position itself, does
// not repeat it.
func csvErrMessage(err error) string {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return pe.Err.Error()
	}
	return err.Error()
}

// RowOID names the object for a row of a table.
func RowOID(table, key string) graph.OID {
	return graph.OID(table + "/" + key)
}

func cellValue(col, cell string, opts Options) graph.Value {
	if ref, ok := opts.Refs[col]; ok {
		return graph.NewNode(RowOID(ref, cell))
	}
	if ft, ok := opts.Files[col]; ok {
		return graph.NewFile(ft, cell)
	}
	for _, u := range opts.URLs {
		if u == col {
			return graph.NewURL(cell)
		}
	}
	return inferValue(cell)
}

// inferValue types a cell: int, float, bool, then string.
func inferValue(cell string) graph.Value {
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return graph.NewInt(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return graph.NewFloat(f)
	}
	switch cell {
	case "true", "TRUE", "True":
		return graph.NewBool(true)
	case "false", "FALSE", "False":
		return graph.NewBool(false)
	}
	if strings.HasPrefix(cell, "http://") || strings.HasPrefix(cell, "https://") {
		return graph.NewURL(cell)
	}
	return graph.NewString(cell)
}

// LoadAll loads several tables into one merged graph; later tables may
// reference earlier (or later) ones, since references are by oid.
func LoadAll(tables []struct {
	Src  string
	Opts Options
}) (*graph.Graph, error) {
	g := graph.New()
	for _, t := range tables {
		tg, err := Load(t.Src, t.Opts)
		if err != nil {
			return nil, err
		}
		g.Merge(tg)
	}
	return g, nil
}
