package csvrel

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

const peopleCSV = `id,name,office,phone,org,homepage,sponsored
mff,Mary Fernandez,B-201,555-0101,research,http://example.com/~mff,true
suciu,Dan Suciu,B-202,555-0102,research,,false
kang,Jaewoo Kang,C-101,,systems,,
`

const orgsCSV = `id,name,director
research,Research Lab,mff
systems,Systems Lab,kang
`

func TestLoadBasics(t *testing.T) {
	g, err := Load(peopleCSV, Options{Table: "People", KeyColumn: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if g.CollectionSize("People") != 3 {
		t.Fatalf("People = %d", g.CollectionSize("People"))
	}
	if v := g.First("People/mff", "name"); v.Text() != "Mary Fernandez" {
		t.Errorf("name = %v", v)
	}
	// Inference: URL detected.
	if v := g.First("People/mff", "homepage"); v.Kind() != graph.KindURL {
		t.Errorf("homepage = %v", v)
	}
	// Inference: bool.
	if v := g.First("People/mff", "sponsored"); v.Kind() != graph.KindBool || !v.Bool() {
		t.Errorf("sponsored = %v", v)
	}
}

func TestEmptyCellsBecomeAbsentEdges(t *testing.T) {
	// §6.3: attribute values may be missing; the model represents that by
	// absence, not NULL.
	g, err := Load(peopleCSV, Options{Table: "People", KeyColumn: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if !g.First("People/kang", "phone").IsNull() {
		t.Error("kang's phone should be absent")
	}
	if !g.First("People/suciu", "homepage").IsNull() {
		t.Error("suciu's homepage should be absent")
	}
	if !g.First("People/kang", "sponsored").IsNull() {
		t.Error("kang's sponsored should be absent")
	}
}

func TestRefsMakeForeignKeysEdges(t *testing.T) {
	g, err := Load(peopleCSV, Options{Table: "People", KeyColumn: "id", Refs: map[string]string{"org": "Orgs"}})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.First("People/mff", "org"); !v.IsNode() || v.OID() != "Orgs/research" {
		t.Errorf("org = %v", v)
	}
}

func TestLoadAllJoinableAcrossTables(t *testing.T) {
	g, err := LoadAll([]struct {
		Src  string
		Opts Options
	}{
		{peopleCSV, Options{Table: "People", KeyColumn: "id", Refs: map[string]string{"org": "Orgs"}}},
		{orgsCSV, Options{Table: "Orgs", KeyColumn: "id", Refs: map[string]string{"director": "People"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Follow person → org → director.
	org := g.First("People/suciu", "org")
	if !org.IsNode() {
		t.Fatal("org not a ref")
	}
	dir := g.First(org.OID(), "director")
	if !dir.IsNode() || dir.OID() != "People/mff" {
		t.Errorf("director = %v", dir)
	}
}

func TestNumberedRowsWithoutKeyColumn(t *testing.T) {
	g, err := Load("a,b\n1,x\n2,y\n", Options{Table: "T"})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNode("T/0") || !g.HasNode("T/1") {
		t.Errorf("nodes = %v", g.Nodes())
	}
	if v := g.First("T/0", "a"); v.Kind() != graph.KindInt || v.Int() != 1 {
		t.Errorf("a = %v", v)
	}
}

func TestFileColumns(t *testing.T) {
	g, err := Load("id,photo\np,me.gif\n", Options{
		Table: "P", KeyColumn: "id",
		Files: map[string]graph.FileType{"photo": graph.FileImage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.First("P/p", "photo"); v.Kind() != graph.KindFile || v.FileType() != graph.FileImage {
		t.Errorf("photo = %v", v)
	}
}

func TestURLColumns(t *testing.T) {
	g, err := Load("id,link\np,example.com/x\n", Options{Table: "P", KeyColumn: "id", URLs: []string{"link"}})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.First("P/p", "link"); v.Kind() != graph.KindURL {
		t.Errorf("link = %v", v)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		opts Options
		frag string
	}{
		{"a,b\n1,2\n", Options{}, "Table is required"},
		{"", Options{Table: "T"}, "missing header"},
		{"a,b\n1\n", Options{Table: "T"}, "fields"},
		{"a,b\nx,y\n", Options{Table: "T", KeyColumn: "zz"}, "key column"},
	}
	for _, c := range cases {
		_, err := Load(c.src, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Load(%q): err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestFloatInference(t *testing.T) {
	g, err := Load("id,score\np,4.75\n", Options{Table: "P", KeyColumn: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.First("P/p", "score"); v.Kind() != graph.KindFloat || v.Float() != 4.75 {
		t.Errorf("score = %v", v)
	}
}
