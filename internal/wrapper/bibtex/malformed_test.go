package bibtex

import (
	"errors"
	"strings"
	"testing"
)

// TestMalformedInputsReportPosition feeds the parser the broken files a
// hot-reloading server will inevitably see — truncated values, half-saved
// entries, stray delimiters — and requires a *ParseError carrying the
// 1-based line of the problem, never a panic and never a zero position.
func TestMalformedInputsReportPosition(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{
			name:     "unterminated braced value",
			src:      "@article{k,\n  title = {unclosed\n",
			wantLine: 3,
			wantMsg:  "unterminated braced value",
		},
		{
			name:     "unterminated quoted value",
			src:      "@article{k,\n  title = \"unclosed\n",
			wantLine: 3,
			wantMsg:  "unterminated quoted value",
		},
		{
			name:     "missing citation key",
			src:      "@article{,\n  title = {x},\n}",
			wantLine: 1,
			wantMsg:  "lacks a citation key",
		},
		{
			name:     "missing entry type",
			src:      "@misc{ok, note={fine}}\n@ {k,\n  title = {x}}",
			wantLine: 2,
			wantMsg:  "expected entry type",
		},
		{
			name:     "missing field value",
			src:      "@misc{a, note={one}}\n\n@string{abbrev = }",
			wantLine: 3,
			wantMsg:  "expected field value",
		},
		{
			name:     "truncated entry at EOF",
			src:      "% a comment line\n@article{k, title = {x}",
			wantLine: 2,
			wantMsg:  "unterminated entry",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("malformed input parsed without error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *ParseError", err, err)
			}
			if pe.Line != c.wantLine {
				t.Errorf("error line = %d, want %d (%v)", pe.Line, c.wantLine, err)
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Errorf("err = %v, want it to mention %q", err, c.wantMsg)
			}
		})
	}
}

// TestMalformedInputsThroughLoad exercises the same failures through the
// Load convenience used by the serving layer's reload path: the error
// must surface (so the reloader can degrade) with its position intact.
func TestMalformedInputsThroughLoad(t *testing.T) {
	_, err := Load("@article{k,\n  author = {A. Uthor},\n  title = {broken\n", DefaultOptions())
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want a line position", err)
	}
}
