package bibtex

import (
	"strings"
	"testing"

	"strudel/internal/ddl"
)

// TestLoadLenientMatchesPrunedStrictLoad: the lenient-mode contract —
// the fail-soft load of a dirty .bib file equals the strict load of the
// hand-pruned file, with each dropped entry a positioned diagnostic.
func TestLoadLenientMatchesPrunedStrictLoad(t *testing.T) {
	cases := []struct {
		name        string
		dirty       string
		pruned      string
		wantRecords int
		wantSkipped int
		wantLine    int
		wantMsg     string
	}{
		{
			name: "entry missing its key",
			dirty: "@article{good1, title = {One}, year = 1997}\n" +
				"@article{, title = {Broken}}\n" +
				"@article{good2, title = {Two}, year = 1998}\n",
			pruned: "@article{good1, title = {One}, year = 1997}\n" +
				"@article{good2, title = {Two}, year = 1998}\n",
			wantRecords: 3,
			wantSkipped: 1,
			wantLine:    2,
			wantMsg:     "lacks a citation key",
		},
		{
			name: "unterminated braced value swallows the rest",
			dirty: "@article{bad, title = {unclosed\n" +
				"@article{good, title = {Fine}, year = 1997}\n",
			// A runaway brace consumes to EOF — the '@' of the next
			// entry is inside the value — so the whole tail is one
			// skipped record, positioned at EOF.
			pruned:      "",
			wantRecords: 1,
			wantSkipped: 1,
			wantLine:    3,
			wantMsg:     "unterminated braced value",
		},
		{
			name: "truncated entry at EOF",
			dirty: "@misc{ok, note = {fine}}\n" +
				"@article{k, title = {x}",
			pruned:      "@misc{ok, note = {fine}}\n",
			wantRecords: 2,
			wantSkipped: 1,
			wantLine:    2,
			wantMsg:     "unterminated entry",
		},
		{
			name:        "clean file has no diagnostics",
			dirty:       "@article{a, title = {T}, author = {A and B}}\n",
			pruned:      "@article{a, title = {T}, author = {A and B}}\n",
			wantRecords: 1,
			wantSkipped: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, rep := LoadLenient(c.dirty, "pubs.bib", DefaultOptions())
			want, err := Load(c.pruned, DefaultOptions())
			if err != nil {
				t.Fatalf("strict load of pruned input: %v", err)
			}
			if g, w := ddl.Print(got), ddl.Print(want); g != w {
				t.Errorf("lenient(dirty) != strict(pruned)\nlenient:\n%s\nstrict:\n%s", g, w)
			}
			if rep.Records != c.wantRecords || rep.Skipped != c.wantSkipped {
				t.Errorf("records=%d skipped=%d, want %d/%d", rep.Records, rep.Skipped, c.wantRecords, c.wantSkipped)
			}
			if c.wantSkipped == 0 {
				if len(rep.Diags) != 0 {
					t.Errorf("unexpected diagnostics: %v", rep.Diags)
				}
				return
			}
			if len(rep.Diags) != 1 {
				t.Fatalf("diagnostics = %v, want exactly one", rep.Diags)
			}
			d := rep.Diags[0]
			if d.Source != "pubs.bib" || d.Line != c.wantLine {
				t.Errorf("diag = %q, want pubs.bib line %d", d.String(), c.wantLine)
			}
			if !strings.Contains(d.Message, c.wantMsg) {
				t.Errorf("diag message = %q, want %q", d.Message, c.wantMsg)
			}
		})
	}
}
