package bibtex

import "testing"

// FuzzParse: the BibTeX parser must never panic and must terminate on
// arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add(sampleBib)
	f.Add(`@article{k, title = {a {nested} brace}, year = 1998}`)
	f.Add(`@string{x = "y"} @misc{m, note = x # x}`)
	f.Add(`@comment{anything {goes} here}`)
	f.Add(`@article(k, title = {paren})`)
	f.Add("@\x00{")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parses must wrap without panicking.
		g := Wrap(doc, DefaultOptions())
		if g == nil {
			t.Fatal("nil graph from valid document")
		}
	})
}
