package bibtex

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

const sampleBib = `
% A comment line.
@string{sigmod = "SIGMOD Conference"}
@string{rec = "SIGMOD Record"}

@article{pub1,
  title = {A Query Language for a {Web}-Site Management System},
  author = {Mary Fernandez and Daniela Florescu and Alon Levy},
  journal = rec,
  year = 1997,
  month = {September},
  abstract = {abstracts/pub1.txt},
  postscript = {ps/pub1.ps},
  category = {web sites, query languages},
}

@inproceedings{pub2,
  title = "Catching the Boat with Strudel",
  author = "Mary Fernandez and Dan Suciu",
  booktitle = sigmod # ", 1998",
  year = {1998},
}

@comment{this is {nested} and ignored}
@preamble{"\latexstuff"}

Some stray prose between entries is ignored.

@misc{pub3,
  title = {No Author Entry},
  note = {irregular: no author, no year}
}
`

func TestParseEntries(t *testing.T) {
	doc := MustParse(sampleBib)
	if len(doc.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(doc.Entries))
	}
	e := doc.Entries[0]
	if e.Type != "article" || e.Key != "pub1" {
		t.Errorf("entry = %s/%s", e.Type, e.Key)
	}
	if title, _ := e.Get("title"); title != "A Query Language for a Web-Site Management System" {
		t.Errorf("title = %q (braces should be stripped)", title)
	}
	if j, _ := e.Get("journal"); j != "SIGMOD Record" {
		t.Errorf("macro expansion: journal = %q", j)
	}
	if bt, _ := doc.Entries[1].Get("booktitle"); bt != "SIGMOD Conference, 1998" {
		t.Errorf("concatenation: booktitle = %q", bt)
	}
	if y, _ := doc.Entries[1].Get("year"); y != "1998" {
		t.Errorf("braced year = %q", y)
	}
	if _, ok := doc.Entries[2].Get("author"); ok {
		t.Error("pub3 has no author")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`@article{k, title = undefined_macro }`, "undefined @string macro"},
		{`@article{k, title }`, "expected '='"},
		{`@article{k, title = {unterminated`, "unterminated braced value"},
		{`@article{k, title = "unterminated`, "unterminated quoted value"},
		{`@{k}`, "expected entry type"},
		{`@article k`, "expected '{'"},
		{`@article{, title={x}}`, "lacks a citation key"},
		{`@comment{unterminated`, "unterminated @ block"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error with %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): got %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestWrapFig2Shape(t *testing.T) {
	g := Wrap(MustParse(sampleBib), DefaultOptions())
	if g.CollectionSize("Publications") != 3 {
		t.Fatalf("Publications = %d", g.CollectionSize("Publications"))
	}
	// Fig. 2 irregularity: pub1 has month and journal; pub2 has booktitle.
	if g.First("pub1", "month").IsNull() || !g.First("pub2", "month").IsNull() {
		t.Error("month irregularity wrong")
	}
	if g.First("pub1", "journal").IsNull() || g.First("pub2", "journal").Text() != "" {
		t.Error("journal irregularity wrong")
	}
	// Directive-style file typing.
	if v := g.First("pub1", "abstract"); v.Kind() != graph.KindFile || v.FileType() != graph.FileText {
		t.Errorf("abstract = %v", v)
	}
	if v := g.First("pub1", "postscript"); v.FileType() != graph.FilePostScript {
		t.Errorf("postscript = %v", v)
	}
	// Year is an int.
	if v := g.First("pub1", "year"); v.Kind() != graph.KindInt || v.Int() != 1997 {
		t.Errorf("year = %v", v)
	}
	// Categories split on commas.
	cats := g.OutLabel("pub1", "category")
	if len(cats) != 2 || cats[0].Text() != "query languages" || cats[1].Text() != "web sites" {
		t.Errorf("categories = %v", cats)
	}
	// Plain string authors (Fig. 2 mode).
	authors := g.OutLabel("pub1", "author")
	if len(authors) != 3 || authors[0].Kind() != graph.KindString {
		t.Errorf("authors = %v", authors)
	}
}

func TestWrapAuthorObjectsPreserveOrder(t *testing.T) {
	// §6.3: "we developed a solution (associating an integer key with
	// each author) that allows us to preserve order".
	opts := DefaultOptions()
	opts.AuthorObjects = true
	g := Wrap(MustParse(sampleBib), opts)
	authors := g.OutLabel("pub1", "author")
	if len(authors) != 3 {
		t.Fatalf("authors = %d", len(authors))
	}
	wantNames := []string{"Mary Fernandez", "Daniela Florescu", "Alon Levy"}
	for i, a := range authors {
		if !a.IsNode() {
			t.Fatalf("author %d not an object: %v", i, a)
		}
		if name := g.First(a.OID(), "name").Text(); name != wantNames[i] {
			t.Errorf("author %d = %q, want %q (order preserved)", i, name, wantNames[i])
		}
		if ord := g.First(a.OID(), "order"); ord.Int() != int64(i) {
			t.Errorf("author %d order = %v", i, ord)
		}
	}
}

func TestSplitAuthors(t *testing.T) {
	got := SplitAuthors("A B and C D and  E")
	if len(got) != 3 || got[0] != "A B" || got[2] != "E" {
		t.Errorf("got %v", got)
	}
	// "and" inside a name (no surrounding spaces pattern) is kept.
	got = SplitAuthors("Alexander Androv")
	if len(got) != 1 {
		t.Errorf("got %v", got)
	}
}

func TestKeyPrefixKeepsBibliographiesDisjoint(t *testing.T) {
	opts := DefaultOptions()
	opts.KeyPrefix = "mff/"
	g := Wrap(MustParse(sampleBib), opts)
	if !g.HasNode("mff/pub1") || g.HasNode("pub1") {
		t.Error("prefix not applied")
	}
}

func TestURLFields(t *testing.T) {
	g := Wrap(MustParse(`@misc{m, url = {http://example.com/x}}`), DefaultOptions())
	if v := g.First("m", "url"); v.Kind() != graph.KindURL {
		t.Errorf("url = %v", v)
	}
}

func TestLoadConvenience(t *testing.T) {
	g, err := Load(sampleBib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.CollectionSize("Publications") != 3 {
		t.Error("Load failed")
	}
	if _, err := Load(`@article{k, x = {`, DefaultOptions()); err == nil {
		t.Error("Load of bad source should fail")
	}
}

func TestNonNumericYear(t *testing.T) {
	g := Wrap(MustParse(`@misc{m, year = {in press}}`), DefaultOptions())
	if v := g.First("m", "year"); v.Kind() != graph.KindString || v.Text() != "in press" {
		t.Errorf("year = %v", v)
	}
}

func TestEntryTypeRecorded(t *testing.T) {
	g := Wrap(MustParse(sampleBib), DefaultOptions())
	if g.First("pub1", "type").Text() != "article" {
		t.Error("type attribute missing")
	}
	if g.First("pub2", "type").Text() != "inproceedings" {
		t.Error("type attribute missing for pub2")
	}
}

func TestParenthesizedEntries(t *testing.T) {
	doc := MustParse(`@article(k2, title = {Paren Entry})`)
	if len(doc.Entries) != 1 || doc.Entries[0].Key != "k2" {
		t.Fatalf("entries = %v", doc.Entries)
	}
	if v, _ := doc.Entries[0].Get("title"); v != "Paren Entry" {
		t.Errorf("title = %q", v)
	}
}

func TestWhitespaceNormalization(t *testing.T) {
	doc := MustParse("@misc{m, note = {multi\n  line   value}}")
	if v, _ := doc.Entries[0].Get("note"); v != "multi line value" {
		t.Errorf("note = %q", v)
	}
}
