// Package bibtex is Strudel's BibTeX wrapper: it converts BibTeX
// bibliography files into data graphs (§2.3). A wrapper is the
// source-specific component that translates an external representation
// into the labeled-graph model.
//
// The parser handles @string macros, brace- and quote-delimited values
// with nested braces, numeric values, and value concatenation with '#'.
// The graph mapping preserves the irregularities §6.3 discusses: fields
// present in one entry and absent in another simply become present or
// absent edges, with no schema to migrate.
package bibtex

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"strudel/internal/diag"
	"strudel/internal/graph"
)

// Entry is one BibTeX entry.
type Entry struct {
	Type   string // article, inproceedings, ...
	Key    string // citation key
	Fields []Field
}

// Field is one name = value pair, in file order.
type Field struct {
	Name  string
	Value string
}

// Get returns the named field's value and whether it is present.
func (e *Entry) Get(name string) (string, bool) {
	for _, f := range e.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return "", false
}

// Document is a parsed BibTeX file.
type Document struct {
	Entries []Entry
	Macros  map[string]string
}

// ParseError is a BibTeX syntax error with a 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("bibtex: line %d: %s", e.Line, e.Msg) }

// Parse parses BibTeX source, failing fast on the first malformed
// entry.
func Parse(src string) (*Document, error) {
	p := &bparser{src: src, line: 1, doc: &Document{Macros: map[string]string{}}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.doc, nil
}

// ParseLenient parses BibTeX source in fail-soft mode: a malformed
// @-block is recorded as a position-tagged diagnostic (attributed to
// source, the name diagnostics carry) and skipped — the parser resyncs
// at the next '@' — instead of aborting the document. The report counts
// every @-block attempted; entries of the returned document are exactly
// those a strict Parse of the hand-pruned input would yield.
func ParseLenient(src, source string) (*Document, *diag.Report) {
	rep := &diag.Report{}
	p := &bparser{src: src, line: 1, doc: &Document{Macros: map[string]string{}},
		lenient: true, rep: rep, source: source}
	// A lenient run recovers from every parse error internally.
	_ = p.run()
	return p.doc, rep
}

// MustParse is Parse for tests; it panics on error.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type bparser struct {
	src  string
	pos  int
	line int
	doc  *Document
	// lenient recovers from per-block errors instead of propagating
	// them; rep receives the diagnostics, attributed to source.
	lenient bool
	rep     *diag.Report
	source  string
}

func (p *bparser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *bparser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *bparser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *bparser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.advance()
			continue
		}
		// '%' comments run to end of line.
		if c == '%' {
			for p.pos < len(p.src) && p.peek() != '\n' {
				p.advance()
			}
			continue
		}
		break
	}
}

func (p *bparser) run() error {
	for {
		// Everything outside @...{...} is ignorable prose.
		for p.pos < len(p.src) && p.peek() != '@' {
			p.advance()
		}
		if p.pos >= len(p.src) {
			return nil
		}
		if err := p.block(); err != nil {
			if !p.lenient {
				return err
			}
			p.recover(err)
		}
	}
}

// block parses one @...{...} construct.
func (p *bparser) block() error {
	if p.rep != nil {
		p.rep.Records++
	}
	p.advance() // '@'
	typ := strings.ToLower(p.ident())
	if typ == "" {
		return p.errf("expected entry type after '@'")
	}
	p.skipSpace()
	open := p.peek()
	if open != '{' && open != '(' {
		return p.errf("expected '{' after @%s", typ)
	}
	p.advance()
	switch typ {
	case "comment", "preamble":
		return p.skipBalanced(open)
	case "string":
		return p.parseMacro(open)
	default:
		return p.parseEntry(typ, open)
	}
}

// recover records a skipped @-block and resyncs the parser at the next
// '@'. An '@' inside the broken block's remaining text may start a
// spurious re-parse; at worst that costs one more diagnostic, never a
// wrong entry.
func (p *bparser) recover(err error) {
	line := p.line
	msg := err.Error()
	var pe *ParseError
	if errors.As(err, &pe) {
		line, msg = pe.Line, pe.Msg
	}
	p.rep.Add(diag.Diagnostic{Source: p.source, Line: line, Severity: diag.Error,
		Message: "skipped entry: " + msg})
	p.rep.Skipped++
	for p.pos < len(p.src) && p.peek() != '@' {
		p.advance()
	}
}

func (p *bparser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.peek())
		if unicode.IsLetter(c) || unicode.IsDigit(c) || strings.ContainsRune("-_:./+'", c) {
			p.advance()
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func closer(open byte) byte {
	if open == '(' {
		return ')'
	}
	return '}'
}

func (p *bparser) skipBalanced(open byte) error {
	depth := 1
	end := closer(open)
	for p.pos < len(p.src) {
		c := p.advance()
		if c == open {
			depth++
		} else if c == end {
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated @ block")
}

func (p *bparser) parseMacro(open byte) error {
	name := strings.ToLower(p.ident())
	p.skipSpace()
	if p.peek() != '=' {
		return p.errf("expected '=' in @string")
	}
	p.advance()
	val, err := p.value()
	if err != nil {
		return err
	}
	p.doc.Macros[name] = val
	p.skipSpace()
	if p.peek() == closer(open) {
		p.advance()
		return nil
	}
	return p.errf("expected '%c' to close @string", closer(open))
}

func (p *bparser) parseEntry(typ string, open byte) error {
	key := p.ident()
	if key == "" {
		return p.errf("entry @%s lacks a citation key", typ)
	}
	entry := Entry{Type: typ, Key: key}
	for {
		p.skipSpace()
		c := p.peek()
		if c == ',' {
			p.advance()
			continue
		}
		if c == closer(open) {
			p.advance()
			break
		}
		if c == 0 {
			return p.errf("unterminated entry @%s{%s", typ, key)
		}
		name := strings.ToLower(p.ident())
		if name == "" {
			return p.errf("expected field name in @%s{%s", typ, key)
		}
		p.skipSpace()
		if p.peek() != '=' {
			return p.errf("expected '=' after field %s", name)
		}
		p.advance()
		val, err := p.value()
		if err != nil {
			return err
		}
		entry.Fields = append(entry.Fields, Field{Name: name, Value: val})
	}
	p.doc.Entries = append(p.doc.Entries, entry)
	return nil
}

// value parses one field value: possibly several '#'-concatenated parts.
func (p *bparser) value() (string, error) {
	var b strings.Builder
	for {
		p.skipSpace()
		switch c := p.peek(); {
		case c == '{':
			part, err := p.braced()
			if err != nil {
				return "", err
			}
			b.WriteString(part)
		case c == '"':
			part, err := p.quoted()
			if err != nil {
				return "", err
			}
			b.WriteString(part)
		case c >= '0' && c <= '9':
			start := p.pos
			for p.pos < len(p.src) && p.peek() >= '0' && p.peek() <= '9' {
				p.advance()
			}
			b.WriteString(p.src[start:p.pos])
		default:
			name := strings.ToLower(p.ident())
			if name == "" {
				return "", p.errf("expected field value")
			}
			val, ok := p.doc.Macros[name]
			if !ok {
				return "", p.errf("undefined @string macro %q", name)
			}
			b.WriteString(val)
		}
		p.skipSpace()
		if p.peek() == '#' {
			p.advance()
			continue
		}
		return normalizeWS(b.String()), nil
	}
}

func (p *bparser) braced() (string, error) {
	p.advance() // '{'
	depth := 1
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.advance()
		switch c {
		case '{':
			depth++
			b.WriteByte(c)
		case '}':
			depth--
			if depth == 0 {
				return stripOuterBraces(b.String()), nil
			}
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return "", p.errf("unterminated braced value")
}

func (p *bparser) quoted() (string, error) {
	p.advance() // '"'
	depth := 0
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.advance()
		switch c {
		case '{':
			depth++
			b.WriteByte(c)
		case '}':
			depth--
			b.WriteByte(c)
		case '"':
			if depth == 0 {
				return stripOuterBraces(b.String()), nil
			}
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return "", p.errf("unterminated quoted value")
}

// stripOuterBraces removes protective braces ({Title} → Title) but keeps
// interior grouping.
func stripOuterBraces(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '{' || r == '}' {
			return -1
		}
		return r
	}, s)
}

func normalizeWS(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Options tunes the graph mapping.
type Options struct {
	// Collection is the target collection; defaults to "Publications".
	Collection string
	// AuthorObjects, when set, maps each author to an object node with
	// name and order attributes — the paper's §6.3 solution for keeping
	// author order in an unordered data model. When unset, authors become
	// plain string edges as in Fig. 2.
	AuthorObjects bool
	// FileFields maps field names to file types (e.g. "abstract" → text,
	// "postscript" → postscript), mirroring collection directives.
	FileFields map[string]graph.FileType
	// URLFields lists fields whose values are URL atoms.
	URLFields []string
	// KeyPrefix prefixes entry oids to keep multiple bibliographies
	// disjoint in one data graph.
	KeyPrefix string
}

// DefaultOptions mirrors the example site's collection directive:
// abstracts are text files and postscript fields are PostScript files.
func DefaultOptions() Options {
	return Options{
		Collection: "Publications",
		FileFields: map[string]graph.FileType{
			"abstract":   graph.FileText,
			"postscript": graph.FilePostScript,
			"ps":         graph.FilePostScript,
		},
		URLFields: []string{"url", "homepage"},
	}
}

// Wrap converts a parsed document into a data graph.
func Wrap(doc *Document, opts Options) *graph.Graph {
	if opts.Collection == "" {
		opts.Collection = "Publications"
	}
	// Each entry contributes one node, a type edge, and roughly one edge
	// per field (authors and split keywords add a few more); pre-sizing
	// for those counts keeps the bulk load from rehashing incrementally.
	edges := len(doc.Entries)
	for _, e := range doc.Entries {
		edges += len(e.Fields)
	}
	g := graph.NewWithCapacity(len(doc.Entries), edges)
	for _, e := range doc.Entries {
		oid := graph.OID(opts.KeyPrefix + e.Key)
		g.AddToCollection(opts.Collection, oid)
		g.AddEdge(oid, "type", graph.NewString(e.Type))
		for _, f := range e.Fields {
			switch {
			case f.Name == "author" || f.Name == "editor":
				addAuthors(g, oid, f.Name, f.Value, opts)
			case f.Name == "year":
				g.AddEdge(oid, "year", intOrString(f.Value))
			case f.Name == "category" || f.Name == "keywords":
				for _, c := range strings.Split(f.Value, ",") {
					if c = strings.TrimSpace(c); c != "" {
						g.AddEdge(oid, "category", graph.NewString(c))
					}
				}
			case fileType(f.Name, opts) != nil:
				g.AddEdge(oid, f.Name, graph.NewFile(*fileType(f.Name, opts), f.Value))
			case isURLField(f.Name, opts):
				g.AddEdge(oid, f.Name, graph.NewURL(f.Value))
			default:
				g.AddEdge(oid, f.Name, graph.NewString(f.Value))
			}
		}
	}
	return g
}

// Load parses and wraps in one step, failing fast on the first
// malformed entry.
func Load(src string, opts Options) (*graph.Graph, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Wrap(doc, opts), nil
}

// LoadLenient parses and wraps in fail-soft mode: malformed entries are
// skipped with position-tagged diagnostics instead of aborting; the
// surviving entries wrap exactly as Load would wrap the pruned input.
func LoadLenient(src, source string, opts Options) (*graph.Graph, *diag.Report) {
	doc, rep := ParseLenient(src, source)
	return Wrap(doc, opts), rep
}

func fileType(name string, opts Options) *graph.FileType {
	if t, ok := opts.FileFields[name]; ok {
		return &t
	}
	return nil
}

func isURLField(name string, opts Options) bool {
	for _, u := range opts.URLFields {
		if u == name {
			return true
		}
	}
	return false
}

func intOrString(s string) graph.Value {
	if i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
		return graph.NewInt(i)
	}
	return graph.NewString(s)
}

// SplitAuthors splits a BibTeX author list on the "and" keyword.
func SplitAuthors(s string) []string {
	parts := strings.Split(s, " and ")
	var out []string
	for _, p := range parts {
		if p = normalizeWS(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func addAuthors(g *graph.Graph, oid graph.OID, field, value string, opts Options) {
	authors := SplitAuthors(value)
	if !opts.AuthorObjects {
		for _, a := range authors {
			g.AddEdge(oid, field, graph.NewString(a))
		}
		return
	}
	// §6.3: order is preserved by associating an integer key with each
	// author; the zero-padded oid also keeps the default value ordering
	// aligned with file order.
	for i, a := range authors {
		aoid := graph.OID(fmt.Sprintf("%s/%s%02d", oid, field, i))
		g.AddEdge(oid, field, graph.NewNode(aoid))
		g.AddEdge(aoid, "name", graph.NewString(a))
		g.AddEdge(aoid, "order", graph.NewInt(int64(i)))
	}
}
