// Package faultfs is a fault-injecting fsx.FS for chaos testing the
// batch pipeline: it counts operations and fails the Nth write, rename,
// or mkdir with a configurable error, optionally committing a short
// (partial) write first — the crash shapes that turn a naive site
// writer into a half-published directory.
//
// Counters are global across operation kinds per instance and guarded
// by a mutex, so a parallel WriteDir still trips exactly one injected
// fault per configured trigger.
package faultfs

import (
	"errors"
	"io/fs"
	"sync"

	"strudel/internal/fsx"
)

// ErrInjected is the default error returned by a triggered fault.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner fsx.FS with countdown-triggered faults. The zero
// value with Inner set injects nothing. Each trigger is 1-based: a
// FailWriteN of 3 fails the third write. A trigger of 0 never fires.
type FS struct {
	// Inner is the real filesystem; required.
	Inner fsx.FS
	// Err is returned by triggered faults; ErrInjected when nil.
	Err error

	// FailWriteN fails the Nth WriteFile without writing anything.
	FailWriteN int
	// ShortWriteN commits only the first half of the Nth WriteFile's
	// data, then fails — a torn write, as after ENOSPC or a crash.
	ShortWriteN int
	// FailRenameN fails the Nth Rename.
	FailRenameN int
	// FailLinkN fails the Nth Link.
	FailLinkN int
	// FailMkdirN fails the Nth MkdirAll.
	FailMkdirN int
	// FailSyncN fails the Nth SyncDir.
	FailSyncN int

	mu      sync.Mutex
	writes  int
	renames int
	links   int
	mkdirs  int
	syncs   int
}

// Writes returns the number of WriteFile calls observed so far.
func (f *FS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Renames returns the number of Rename calls observed so far.
func (f *FS) Renames() int { f.mu.Lock(); defer f.mu.Unlock(); return f.renames }

// Links returns the number of Link calls observed so far.
func (f *FS) Links() int { f.mu.Lock(); defer f.mu.Unlock(); return f.links }

func (f *FS) fault() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	f.mkdirs++
	trip := f.mkdirs == f.FailMkdirN
	f.mu.Unlock()
	if trip {
		return f.fault()
	}
	return f.Inner.MkdirAll(path, perm)
}

func (f *FS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	f.writes++
	fail := f.writes == f.FailWriteN
	short := f.writes == f.ShortWriteN
	f.mu.Unlock()
	if fail {
		return f.fault()
	}
	if short {
		// Commit a truncated prefix, then report failure: the file now
		// exists with torn contents, as after a crash mid-write.
		_ = f.Inner.WriteFile(name, data[:len(data)/2], perm)
		return f.fault()
	}
	return f.Inner.WriteFile(name, data, perm)
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	trip := f.renames == f.FailRenameN
	f.mu.Unlock()
	if trip {
		return f.fault()
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FS) Link(oldname, newname string) error {
	f.mu.Lock()
	f.links++
	trip := f.links == f.FailLinkN
	f.mu.Unlock()
	if trip {
		return f.fault()
	}
	return f.Inner.Link(oldname, newname)
}

func (f *FS) RemoveAll(path string) error { return f.Inner.RemoveAll(path) }

func (f *FS) SyncDir(path string) error {
	f.mu.Lock()
	f.syncs++
	trip := f.syncs == f.FailSyncN
	f.mu.Unlock()
	if trip {
		return f.fault()
	}
	return f.Inner.SyncDir(path)
}

func (f *FS) Stat(path string) (fs.FileInfo, error) { return f.Inner.Stat(path) }
