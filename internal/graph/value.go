// Package graph implements Strudel's semistructured data model: a labeled,
// directed graph in the style of OEM (Papakonstantinou et al.), as described
// in §2.1 of the Strudel paper.
//
// A database is a set of objects connected by directed edges labeled with
// string-valued attribute names. Objects are either internal nodes,
// identified by a unique object identifier (OID), or atomic values such as
// integers, strings, URLs, and typed files (text, HTML, image, PostScript).
// Objects are grouped into named collections; an object may belong to any
// number of collections, and objects in the same collection need not have
// the same attributes or attribute types.
package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// OID identifies an internal node. OIDs are strings so that Skolem-created
// identifiers such as "AbstractPage(pub1)" are self-describing: by
// definition a Skolem function applied to the same inputs yields the same
// OID, which string identity gives us directly.
type OID string

// Kind discriminates the representation stored in a Value.
type Kind uint8

// The kinds of objects in the data model. KindNode is an internal object
// referenced by OID; the rest are atomic values.
const (
	KindNull Kind = iota
	KindNode
	KindString
	KindInt
	KindFloat
	KindBool
	KindURL
	KindFile
)

var kindNames = [...]string{
	KindNull:   "null",
	KindNode:   "node",
	KindString: "string",
	KindInt:    "int",
	KindFloat:  "float",
	KindBool:   "bool",
	KindURL:    "url",
	KindFile:   "file",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FileType classifies file atoms. Strudel supports several atomic types
// that commonly appear in web pages (§2.1).
type FileType uint8

// Supported file types.
const (
	FileText FileType = iota
	FileHTML
	FileImage
	FilePostScript
)

var fileTypeNames = [...]string{
	FileText:       "text",
	FileHTML:       "html",
	FileImage:      "image",
	FilePostScript: "postscript",
}

func (t FileType) String() string {
	if int(t) < len(fileTypeNames) {
		return fileTypeNames[t]
	}
	return fmt.Sprintf("filetype(%d)", uint8(t))
}

// ParseFileType maps a type name from a collection directive (e.g. "text",
// "postscript") to a FileType.
func ParseFileType(s string) (FileType, bool) {
	for i, n := range fileTypeNames {
		if n == s {
			return FileType(i), true
		}
	}
	return 0, false
}

// Value is one object in the data model: either a reference to an internal
// node or an atomic value. Value is a compact tagged union rather than an
// interface because graphs hold very many edge targets.
type Value struct {
	kind Kind
	oid  OID      // KindNode
	str  string   // KindString, KindURL, KindFile (path)
	i64  int64    // KindInt, KindBool (0/1)
	f64  float64  // KindFloat
	ft   FileType // KindFile
}

// Null is the zero Value.
var Null = Value{}

// NewNode returns a Value referencing the internal node oid.
func NewNode(oid OID) Value { return Value{kind: KindNode, oid: oid} }

// NewString returns a string atom.
func NewString(s string) Value { return Value{kind: KindString, str: s} }

// NewInt returns an integer atom.
func NewInt(i int64) Value { return Value{kind: KindInt, i64: i} }

// NewFloat returns a floating-point atom.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f64: f} }

// NewBool returns a boolean atom.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i64: i}
}

// NewURL returns a URL atom.
func NewURL(u string) Value { return Value{kind: KindURL, str: u} }

// NewFile returns a file atom of the given type referencing path.
func NewFile(t FileType, path string) Value {
	return Value{kind: KindFile, ft: t, str: path}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNode reports whether v references an internal node.
func (v Value) IsNode() bool { return v.kind == KindNode }

// IsAtom reports whether v is an atomic value (neither null nor a node).
func (v Value) IsAtom() bool { return v.kind != KindNull && v.kind != KindNode }

// OID returns the node identifier; it panics unless v is a node reference.
func (v Value) OID() OID {
	if v.kind != KindNode {
		panic(fmt.Sprintf("graph: OID of non-node value %s", v))
	}
	return v.oid
}

// Str returns the string payload of string, URL, and file atoms (for files,
// the path); it returns "" for other kinds.
func (v Value) Str() string { return v.str }

// Int returns the integer payload; valid for int and bool atoms.
func (v Value) Int() int64 { return v.i64 }

// Float returns the floating-point payload.
func (v Value) Float() float64 { return v.f64 }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.i64 != 0 }

// FileType returns the file type of a file atom.
func (v Value) FileType() FileType { return v.ft }

// String renders v for debugging and for the data-definition language.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindNode:
		return "&" + string(v.oid)
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(v.i64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindBool:
		if v.i64 != 0 {
			return "true"
		}
		return "false"
	case KindURL:
		return "url(" + strconv.Quote(v.str) + ")"
	case KindFile:
		return v.ft.String() + "(" + strconv.Quote(v.str) + ")"
	}
	return "?"
}

// Text renders an atomic value as plain display text, the form the HTML
// generator emits for leaves. Nodes render as their OID.
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindNode:
		return string(v.oid)
	case KindString, KindURL, KindFile:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.i64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindBool:
		if v.i64 != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// Key returns a total-order key unique per distinct value, used for
// deterministic iteration, map keys, and Skolem-argument serialization.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "0"
	case KindNode:
		return "n" + string(v.oid)
	case KindString:
		return "s" + v.str
	case KindInt:
		return "i" + strconv.FormatInt(v.i64, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindBool:
		return "b" + strconv.FormatInt(v.i64, 10)
	case KindURL:
		return "u" + v.str
	case KindFile:
		return "F" + v.ft.String() + ":" + v.str
	}
	return "?"
}

// keyPrefix is the leading discriminator byte of Key() per kind. The
// bytes are pairwise distinct, so cross-kind key comparisons are decided
// by the prefix alone.
func keyPrefix(k Kind) byte {
	switch k {
	case KindNull:
		return '0'
	case KindNode:
		return 'n'
	case KindString:
		return 's'
	case KindInt:
		return 'i'
	case KindFloat:
		return 'f'
	case KindBool:
		return 'b'
	case KindURL:
		return 'u'
	case KindFile:
		return 'F'
	}
	return '?'
}

// AppendKey appends v's Key() representation to dst without allocating a
// string, for callers that build composite keys in reusable buffers.
func AppendKey(dst []byte, v Value) []byte {
	dst = append(dst, keyPrefix(v.kind))
	switch v.kind {
	case KindNode:
		dst = append(dst, v.oid...)
	case KindString, KindURL:
		dst = append(dst, v.str...)
	case KindInt:
		dst = strconv.AppendInt(dst, v.i64, 10)
	case KindFloat:
		dst = strconv.AppendFloat(dst, v.f64, 'g', -1, 64)
	case KindBool:
		dst = strconv.AppendInt(dst, v.i64, 10)
	case KindFile:
		dst = append(dst, v.ft.String()...)
		dst = append(dst, ':')
		dst = append(dst, v.str...)
	}
	return dst
}

// KeyCompare orders two values exactly as strings.Compare(a.Key(),
// b.Key()) would, without materializing either key. Sort loops over
// values are the hottest comparison site in the system; the key strings
// they used to build dominated evaluator allocations.
func KeyCompare(a, b Value) int {
	pa, pb := keyPrefix(a.kind), keyPrefix(b.kind)
	if pa != pb {
		if pa < pb {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindNode:
		return strings.Compare(string(a.oid), string(b.oid))
	case KindString, KindURL:
		return strings.Compare(a.str, b.str)
	case KindBool:
		// Payloads are 0 or 1, where numeric and decimal-text order agree.
		switch {
		case a.i64 < b.i64:
			return -1
		case a.i64 > b.i64:
			return 1
		}
		return 0
	case KindInt:
		if a.i64 == b.i64 {
			return 0
		}
		// Key order is the decimal text's byte order, not numeric order
		// ("10" sorts before "9"), so spell both out on the stack.
		var ab, bb [20]byte
		return bytesCompare(strconv.AppendInt(ab[:0], a.i64, 10), strconv.AppendInt(bb[:0], b.i64, 10))
	case KindFloat:
		// No equality shortcut: +0 and -0 compare == but format
		// differently, and NaNs compare != but format identically.
		var ab, bb [32]byte
		return bytesCompare(strconv.AppendFloat(ab[:0], a.f64, 'g', -1, 64),
			strconv.AppendFloat(bb[:0], b.f64, 'g', -1, 64))
	case KindFile:
		// Key is ft.String() + ":" + str; known type names are never
		// prefixes of one another, so unequal names decide the order.
		if a.ft != b.ft {
			return strings.Compare(a.ft.String(), b.ft.String())
		}
		return strings.Compare(a.str, b.str)
	}
	return 0
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports strict equality: same kind and same payload.
func (v Value) Equal(w Value) bool { return v == w }

// numeric returns v as a float64 if v is numeric or a numeric-looking
// string, coercing dynamically as §2.1 requires for run-time comparison.
func (v Value) numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i64), true
	case KindFloat:
		return v.f64, true
	case KindBool:
		return float64(v.i64), true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// Compare orders two values with dynamic coercion: if both sides can be
// read as numbers they compare numerically (so the string "1997" equals the
// int 1997); otherwise they compare as text, with kind as a tiebreaker so
// the order is total. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if af, aok := a.numeric(); aok {
		if bf, bok := b.numeric(); bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	at, bt := a.Text(), b.Text()
	switch {
	case at < bt:
		return -1
	case at > bt:
		return 1
	}
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	}
	return 0
}

// Equiv reports equality under dynamic coercion (Compare == 0 on payload,
// ignoring kind tiebreaks between coercible representations).
func Equiv(a, b Value) bool {
	if a == b {
		return true
	}
	if af, aok := a.numeric(); aok {
		if bf, bok := b.numeric(); bok {
			return af == bf
		}
	}
	return a.kind == b.kind && a.Text() == b.Text()
}
