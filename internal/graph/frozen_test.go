package graph

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// richGraph builds a graph exercising every value kind, multi-valued
// attributes, shared targets, and collections.
func richGraph() *Graph {
	g := New()
	for i := 0; i < 8; i++ {
		oid := OID(fmt.Sprintf("n%d", i))
		g.AddNode(oid)
		g.AddEdge(oid, "title", NewString(fmt.Sprintf("Title %d", i)))
		g.AddEdge(oid, "rank", NewInt(int64(i%3)))
		g.AddEdge(oid, "score", NewFloat(float64(i)/3))
		g.AddEdge(oid, "hot", NewBool(i%2 == 0))
		g.AddEdge(oid, "home", NewURL(fmt.Sprintf("http://x/%d", i%4)))
		g.AddEdge(oid, "src", NewFile(FileHTML, fmt.Sprintf("p%d.html", i%2)))
		g.AddEdge(oid, "next", NewNode(OID(fmt.Sprintf("n%d", (i+1)%8))))
		if i%2 == 0 {
			g.AddEdge(oid, "tag", NewString("even"))
			g.AddEdge(oid, "tag", NewString("zero"))
		}
	}
	g.AddEdge("n0", "nothing", Null)
	g.AddNode("island")
	g.DeclareCollection("Empty")
	g.AddToCollection("Evens", "n0")
	g.AddToCollection("Evens", "n2")
	g.AddToCollection("Evens", "n4")
	g.AddToCollection("All", "n3")
	g.AddToCollection("All", "n1")
	g.AddToCollection("All", "n0")
	return g
}

func TestFrozenMatchesGraph(t *testing.T) {
	g := richGraph()
	f := g.Freeze()
	if f == nil {
		t.Fatal("Freeze returned nil")
	}
	if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: frozen %d/%d graph %d/%d",
			f.NumNodes(), f.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(f.Nodes(), g.Nodes()) {
		t.Fatalf("Nodes mismatch:\n%v\n%v", f.Nodes(), g.Nodes())
	}
	if !reflect.DeepEqual(f.Labels(), g.Labels()) {
		t.Fatalf("Labels mismatch:\n%v\n%v", f.Labels(), g.Labels())
	}
	for _, oid := range g.Nodes() {
		if !f.HasNode(oid) {
			t.Fatalf("HasNode(%s) = false", oid)
		}
		fo, go_ := f.Out(oid), g.Out(oid)
		if len(fo) != len(go_) || (len(fo) > 0 && !reflect.DeepEqual(fo, go_)) {
			t.Fatalf("Out(%s) mismatch:\n%v\n%v", oid, fo, go_)
		}
		for _, label := range g.Labels() {
			fv, gv := f.OutLabel(oid, label), g.OutLabel(oid, label)
			if len(fv) == 0 && len(gv) == 0 {
				continue
			}
			if !reflect.DeepEqual(fv, gv) {
				t.Fatalf("OutLabel(%s,%s) mismatch:\n%v\n%v", oid, label, fv, gv)
			}
			if !f.First(oid, label).Equal(g.First(oid, label)) {
				t.Fatalf("First(%s,%s) mismatch", oid, label)
			}
		}
	}
	if f.HasNode("missing") || len(f.Out("missing")) != 0 {
		t.Fatal("missing node should have no edges")
	}
	labelCounts := map[string]int{}
	for _, e := range g.AllEdges() {
		labelCounts[e.Label]++
	}
	for _, label := range g.Labels() {
		fe := f.EdgesLabeled(label)
		if len(fe) != labelCounts[label] || f.LabelCount(label) != labelCounts[label] {
			t.Fatalf("EdgesLabeled(%s) count mismatch", label)
		}
		count, sources, targets := f.LabelStats(label)
		srcSet := map[OID]struct{}{}
		tgtSet := map[string]struct{}{}
		for _, e := range fe {
			srcSet[e.From] = struct{}{}
			tgtSet[e.To.Key()] = struct{}{}
		}
		if count != len(fe) || sources != len(srcSet) || targets != len(tgtSet) {
			t.Fatalf("LabelStats(%s) = %d,%d,%d want %d,%d,%d",
				label, count, sources, targets, len(fe), len(srcSet), len(tgtSet))
		}
	}
	// In-adjacency: every edge must appear in its target's in-list, and
	// the total must balance.
	inTotal := 0
	for _, oid := range g.Nodes() {
		for _, e := range g.Out(oid) {
			found := false
			f.ForEachIn(e.To, func(from OID, label string) bool {
				if from == e.From && label == e.Label {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("edge %v missing from in-list", e)
			}
		}
		inTotal += len(g.Out(oid))
	}
	got := 0
	seen := map[string]struct{}{}
	for _, oid := range g.Nodes() {
		for _, e := range g.Out(oid) {
			seen[e.To.Key()] = struct{}{}
		}
	}
	for k := range seen {
		_ = k
	}
	for _, oid := range g.Nodes() {
		for _, e := range g.Out(oid) {
			_ = e
			got++
		}
	}
	if got != inTotal {
		t.Fatalf("edge totals diverge: %d vs %d", got, inTotal)
	}
	// ForEachInLabel agrees with a filtered ForEachIn.
	target := NewNode("n1")
	var viaLabel, viaFilter []OID
	f.ForEachInLabel(target, "next", func(from OID) bool {
		viaLabel = append(viaLabel, from)
		return true
	})
	f.ForEachIn(target, func(from OID, label string) bool {
		if label == "next" {
			viaFilter = append(viaFilter, from)
		}
		return true
	})
	if !reflect.DeepEqual(viaLabel, viaFilter) {
		t.Fatalf("ForEachInLabel mismatch: %v vs %v", viaLabel, viaFilter)
	}
	if got := f.In(NewString("even")); len(got) != 4 {
		t.Fatalf("In(even) = %d edges, want 4", len(got))
	}
	// Collections.
	if !reflect.DeepEqual(f.CollectionNames(), g.CollectionNames()) {
		t.Fatalf("CollectionNames mismatch: %v vs %v", f.CollectionNames(), g.CollectionNames())
	}
	for _, name := range g.CollectionNames() {
		want := g.Collection(name)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(f.Collection(name), want) {
			t.Fatalf("Collection(%s) mismatch: %v vs %v", name, f.Collection(name), want)
		}
		if f.CollectionSize(name) != g.CollectionSize(name) {
			t.Fatalf("CollectionSize(%s) mismatch", name)
		}
		for _, m := range want {
			if !f.InCollection(name, m) {
				t.Fatalf("InCollection(%s,%s) = false", name, m)
			}
		}
	}
	if f.InCollection("Evens", "n1") || f.InCollection("Nope", "n0") {
		t.Fatal("InCollection false positives")
	}
	if f.Stats() != g.Stats() {
		t.Fatalf("Stats mismatch: %+v vs %+v", f.Stats(), g.Stats())
	}
}

func TestFrozenThawRoundTrip(t *testing.T) {
	g := richGraph()
	f := g.Freeze()
	if got, want := f.Thaw().Dump(), g.Dump(); got != want {
		t.Fatalf("Thaw dump mismatch:\n%s\n---\n%s", got, want)
	}
}

func TestFrozenBinaryRoundTrip(t *testing.T) {
	g := richGraph()
	f := g.Freeze()
	payload := AppendFrozen(nil, f)
	f2, err := DecodeFrozen(payload)
	if err != nil {
		t.Fatalf("DecodeFrozen: %v", err)
	}
	if got, want := f2.Thaw().Dump(), g.Dump(); got != want {
		t.Fatalf("decoded dump mismatch:\n%s\n---\n%s", got, want)
	}
	// Re-encoding the decoded snapshot must be byte-identical: the format
	// is canonical.
	payload2 := AppendFrozen(nil, f2)
	if string(payload) != string(payload2) {
		t.Fatal("re-encoded payload differs")
	}
	// Derived structures must match too.
	count, sources, targets := f.LabelStats("next")
	c2, s2, t2 := f2.LabelStats("next")
	if count != c2 || sources != s2 || targets != t2 {
		t.Fatal("decoded LabelStats differ")
	}
}

func TestFrozenBinaryEmpty(t *testing.T) {
	f := New().Freeze()
	payload := AppendFrozen(nil, f)
	f2, err := DecodeFrozen(payload)
	if err != nil {
		t.Fatalf("DecodeFrozen(empty): %v", err)
	}
	if f2.NumNodes() != 0 || f2.NumEdges() != 0 {
		t.Fatal("empty snapshot not empty after round trip")
	}
}

func TestDecodeFrozenTruncated(t *testing.T) {
	payload := AppendFrozen(nil, richGraph().Freeze())
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeFrozen(payload[:n]); err == nil {
			t.Fatalf("DecodeFrozen accepted truncation at %d bytes", n)
		}
	}
}

func TestDecodeFrozenCorrupt(t *testing.T) {
	payload := AppendFrozen(nil, richGraph().Freeze())
	// Flipping any single byte must never panic; it may still decode when
	// the flip lands in string payload bytes.
	for i := range payload {
		mutated := append([]byte(nil), payload...)
		mutated[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeFrozen panicked on byte %d: %v", i, r)
				}
			}()
			_, _ = DecodeFrozen(mutated)
		}()
	}
	if _, err := DecodeFrozen(append(payload, 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
}

func TestFreezeOfEmptyAndMutatedGraph(t *testing.T) {
	g := New()
	f := g.Freeze()
	if f == nil || f.NumNodes() != 0 || f.NumEdges() != 0 || len(f.Labels()) != 0 {
		t.Fatal("empty freeze broken")
	}
	g.AddEdge("a", "l", NewNode("b"))
	g.RemoveNode("b")
	f = g.Freeze()
	// The dangling edge target still appears as a value, but only "a"
	// remains a node.
	if f.NumNodes() != 1 || f.NumEdges() != 1 {
		t.Fatalf("post-removal freeze: %d nodes %d edges", f.NumNodes(), f.NumEdges())
	}
}

func TestKeyCompareMatchesKeyStrings(t *testing.T) {
	vals := []Value{
		Null,
		NewNode("a"), NewNode("b"), NewNode(""),
		NewString(""), NewString("a"), NewString("a\x00b"), NewString("ab"),
		NewInt(0), NewInt(9), NewInt(10), NewInt(-3), NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewFloat(0), NewFloat(math.Copysign(0, -1)), NewFloat(1.5), NewFloat(-1.5),
		NewFloat(math.Inf(1)), NewFloat(math.Inf(-1)), NewFloat(math.NaN()),
		NewBool(true), NewBool(false),
		NewURL("http://a"), NewURL("http://b"),
		NewFile(FileHTML, "x"), NewFile(FileImage, "x"), NewFile(FileHTML, "y"),
	}
	for _, a := range vals {
		for _, b := range vals {
			want := strings.Compare(a.Key(), b.Key())
			if got := KeyCompare(a, b); got != want {
				t.Fatalf("KeyCompare(%v, %v) = %d, want %d (keys %q %q)",
					a, b, got, want, a.Key(), b.Key())
			}
			if got := string(AppendKey(nil, a)); got != a.Key() {
				t.Fatalf("AppendKey(%v) = %q, want %q", a, got, a.Key())
			}
		}
	}
}

func TestAddEdgesAndCapacity(t *testing.T) {
	g := NewWithCapacity(4, 8)
	added := g.AddEdges([]Edge{
		{From: "a", Label: "l", To: NewInt(1)},
		{From: "a", Label: "l", To: NewInt(1)}, // duplicate
		{From: "b", Label: "m", To: NewNode("a")},
	})
	if added != 2 {
		t.Fatalf("AddEdges = %d, want 2", added)
	}
	if g.NumEdges() != 2 || g.NumNodes() != 2 {
		t.Fatalf("graph has %d edges %d nodes", g.NumEdges(), g.NumNodes())
	}
	if !g.HasEdge("a", "l", NewInt(1)) || !g.HasEdge("b", "m", NewNode("a")) {
		t.Fatal("edges missing after AddEdges")
	}
}
