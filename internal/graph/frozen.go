package graph

import (
	"math"
	"sort"
)

// Frozen is a read-optimized, dictionary-encoded snapshot of a Graph.
// Nodes, labels, and atomic values are dense uint32 ids; adjacency is
// CSR-style (one flat edge array plus offsets per direction, edges
// sorted by label id for binary-search seeks); collections are sorted id
// slices; atom payloads live in typed arenas instead of per-edge Value
// boxes. A Frozen is immutable and safe for concurrent readers; all
// iteration orders match the mutable Graph's accessors, so swapping one
// in never changes observable results — only the allocation profile.
//
// Lifecycle: mutate a Graph, call Freeze, query the snapshot. Any later
// mutation must drop the snapshot and re-freeze (repo.Indexed does this
// automatically).
type Frozen struct {
	// labels holds every distinct edge label, sorted, so label ids order
	// lexicographically and per-node label runs can be binary searched.
	labels  []string
	labelOf map[string]uint32

	// nodes holds every node OID, sorted; node ids order by OID.
	nodes  []OID
	nodeOf map[OID]uint32

	// Typed atom arenas, each sorted and deduplicated. A vref packs
	// (kind, arena index) into one uint32.
	strs   []string
	urls   []string
	ints   []int64
	floats []float64
	files  []fileRef

	// Out-adjacency CSR: node id → [outOff[id], outOff[id+1]) into the
	// parallel outLbl/outTo arrays, sorted by (label id, target key).
	outOff []uint32
	outLbl []uint32
	outTo  []uint32

	// Label-extent CSR: label id → [lblOff[id], lblOff[id+1]) into
	// lblFrom/lblTo, grouped by source node id ascending.
	lblOff  []uint32
	lblFrom []uint32
	lblTo   []uint32

	// In-adjacency CSR over distinct edge targets: target id →
	// [inOff[tid], inOff[tid+1]) into inFrom/inLbl, sorted by
	// (label id, source node id).
	inOff  []uint32
	inFrom []uint32
	inLbl  []uint32
	inTid  map[Value]uint32

	// Collections: names sorted, members as sorted node-id slices.
	collNames   []string
	collOf      map[string]uint32
	collMembers [][]uint32

	// stats caches per-label distinct source/target counts; edge counts
	// come from the label CSR offsets.
	stats []frozenStat
}

type fileRef struct {
	ft   FileType
	path string
}

type frozenStat struct {
	sources, targets uint32
}

// vref packs a value kind (top 4 bits) and an arena index (low 28 bits).
const (
	vrefShift = 28
	vrefMask  = (uint32(1) << vrefShift) - 1
)

func packRef(k Kind, idx uint32) uint32 { return uint32(k)<<vrefShift | idx }

// value reconstructs the Value a vref denotes.
func (f *Frozen) value(r uint32) Value {
	idx := r & vrefMask
	switch Kind(r >> vrefShift) {
	case KindNode:
		return Value{kind: KindNode, oid: f.nodes[idx]}
	case KindString:
		return Value{kind: KindString, str: f.strs[idx]}
	case KindURL:
		return Value{kind: KindURL, str: f.urls[idx]}
	case KindInt:
		return Value{kind: KindInt, i64: f.ints[idx]}
	case KindFloat:
		return Value{kind: KindFloat, f64: f.floats[idx]}
	case KindBool:
		return Value{kind: KindBool, i64: int64(idx)}
	case KindFile:
		fr := f.files[idx]
		return Value{kind: KindFile, ft: fr.ft, str: fr.path}
	}
	return Null
}

// Freeze builds the compact snapshot of the graph's current state. It
// returns nil when the graph exceeds the packed-id capacity (2^28
// distinct nodes, labels, or atoms per kind) — callers treat nil as
// "no snapshot" and keep the mutable representation.
func (g *Graph) Freeze() *Frozen {
	f := &Frozen{}

	// Nodes, sorted, and their dense ids.
	f.nodes = make([]OID, 0, len(g.nodes))
	for oid := range g.nodes {
		f.nodes = append(f.nodes, oid)
	}
	sort.Slice(f.nodes, func(i, j int) bool { return f.nodes[i] < f.nodes[j] })
	if len(f.nodes) > int(vrefMask) {
		return nil
	}
	f.nodeOf = make(map[OID]uint32, len(f.nodes))
	for i, oid := range f.nodes {
		f.nodeOf[oid] = uint32(i)
	}

	// Collect distinct labels and atom payloads.
	labelDict := NewInterner()
	strSet := map[string]struct{}{}
	urlSet := map[string]struct{}{}
	intSet := map[int64]struct{}{}
	floatSet := map[float64]struct{}{}
	fileSet := map[fileRef]struct{}{}
	for _, rec := range g.nodes {
		for _, e := range g.recs[rec].out {
			labelDict.Intern(e.Label)
			switch e.To.kind {
			case KindString:
				strSet[e.To.str] = struct{}{}
			case KindURL:
				urlSet[e.To.str] = struct{}{}
			case KindInt:
				intSet[e.To.i64] = struct{}{}
			case KindFloat:
				floatSet[e.To.f64] = struct{}{}
			case KindFile:
				fileSet[fileRef{ft: e.To.ft, path: e.To.str}] = struct{}{}
			}
		}
	}
	f.labels = append([]string(nil), labelDict.Strings()...)
	sort.Strings(f.labels)
	f.labelOf = make(map[string]uint32, len(f.labels))
	for i, l := range f.labels {
		f.labelOf[l] = uint32(i)
	}
	f.strs = sortedStringSet(strSet)
	f.urls = sortedStringSet(urlSet)
	for i := range intSet {
		f.ints = append(f.ints, i)
	}
	sort.Slice(f.ints, func(i, j int) bool { return f.ints[i] < f.ints[j] })
	for fl := range floatSet {
		f.floats = append(f.floats, fl)
	}
	sort.Slice(f.floats, func(i, j int) bool {
		return math.Float64bits(f.floats[i]) < math.Float64bits(f.floats[j])
	})
	for fr := range fileSet {
		f.files = append(f.files, fr)
	}
	sort.Slice(f.files, func(i, j int) bool {
		if f.files[i].ft != f.files[j].ft {
			return f.files[i].ft < f.files[j].ft
		}
		return f.files[i].path < f.files[j].path
	})
	if len(f.labels) > int(vrefMask) || len(f.strs) > int(vrefMask) ||
		len(f.urls) > int(vrefMask) || len(f.ints) > int(vrefMask) ||
		len(f.floats) > int(vrefMask) || len(f.files) > int(vrefMask) {
		return nil
	}

	// Arena index maps, used only during the freeze.
	strIdx := sliceIndex(f.strs)
	urlIdx := sliceIndex(f.urls)
	intIdx := make(map[int64]uint32, len(f.ints))
	for i, v := range f.ints {
		intIdx[v] = uint32(i)
	}
	floatIdx := make(map[float64]uint32, len(f.floats))
	for i, v := range f.floats {
		floatIdx[v] = uint32(i)
	}
	fileIdx := make(map[fileRef]uint32, len(f.files))
	for i, v := range f.files {
		fileIdx[v] = uint32(i)
	}
	ref := func(v Value) uint32 {
		switch v.kind {
		case KindNode:
			return packRef(KindNode, f.nodeOf[v.oid])
		case KindString:
			return packRef(KindString, strIdx[v.str])
		case KindURL:
			return packRef(KindURL, urlIdx[v.str])
		case KindInt:
			return packRef(KindInt, intIdx[v.i64])
		case KindFloat:
			return packRef(KindFloat, floatIdx[v.f64])
		case KindBool:
			return packRef(KindBool, uint32(v.i64))
		case KindFile:
			return packRef(KindFile, fileIdx[fileRef{ft: v.ft, path: v.str}])
		}
		return packRef(KindNull, 0)
	}

	// Out CSR: per node, edges sorted by (label, target key) — exactly
	// the mutable Out() order.
	nEdges := g.edgeCount
	f.outOff = make([]uint32, len(f.nodes)+1)
	f.outLbl = make([]uint32, 0, nEdges)
	f.outTo = make([]uint32, 0, nEdges)
	var scratch []Edge
	for i, oid := range f.nodes {
		f.outOff[i] = uint32(len(f.outLbl))
		rec := &g.recs[g.nodes[oid]]
		scratch = append(scratch[:0], rec.out...)
		sort.Slice(scratch, func(a, b int) bool {
			if scratch[a].Label != scratch[b].Label {
				return scratch[a].Label < scratch[b].Label
			}
			return KeyCompare(scratch[a].To, scratch[b].To) < 0
		})
		for _, e := range scratch {
			f.outLbl = append(f.outLbl, f.labelOf[e.Label])
			f.outTo = append(f.outTo, ref(e.To))
		}
	}
	f.outOff[len(f.nodes)] = uint32(len(f.outLbl))

	f.buildDerived()

	// Collections as sorted node-id slices.
	f.collNames = make([]string, 0, len(g.collections))
	for name := range g.collections {
		f.collNames = append(f.collNames, name)
	}
	sort.Strings(f.collNames)
	f.collOf = make(map[string]uint32, len(f.collNames))
	f.collMembers = make([][]uint32, len(f.collNames))
	for i, name := range f.collNames {
		f.collOf[name] = uint32(i)
		members := g.collections[name]
		ids := make([]uint32, 0, len(members))
		for _, m := range members {
			if nid, ok := f.nodeOf[m]; ok {
				ids = append(ids, nid)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		f.collMembers[i] = ids
	}
	return f
}

// buildDerived computes the label-extent CSR, the in-adjacency CSR, and
// the per-label statistics from the out CSR and the dictionaries. Both
// Freeze and the SGB2 decoder use it: the binary format ships only the
// primary layout, and the derived structures rebuild in linear passes
// (no sorting of edges, no re-interning).
func (f *Frozen) buildDerived() {
	// Label CSR: counting sort of the out CSR by label, preserving
	// source order within each label.
	f.lblOff = make([]uint32, len(f.labels)+1)
	for _, lid := range f.outLbl {
		f.lblOff[lid+1]++
	}
	for i := 1; i <= len(f.labels); i++ {
		f.lblOff[i] += f.lblOff[i-1]
	}
	f.lblFrom = make([]uint32, len(f.outLbl))
	f.lblTo = make([]uint32, len(f.outLbl))
	cursor := append([]uint32(nil), f.lblOff[:len(f.labels)]...)
	for nid := range f.nodes {
		for p := f.outOff[nid]; p < f.outOff[nid+1]; p++ {
			lid := f.outLbl[p]
			c := cursor[lid]
			f.lblFrom[c] = uint32(nid)
			f.lblTo[c] = f.outTo[p]
			cursor[lid] = c + 1
		}
	}

	// In CSR over distinct targets. Filling from the label CSR in label
	// order makes each target's in-list arrive sorted by (label, source).
	f.inTid = make(map[Value]uint32)
	tidOf := make(map[uint32]uint32) // vref → tid
	counts := []uint32{}
	for _, r := range f.lblTo {
		if _, ok := tidOf[r]; !ok {
			tidOf[r] = uint32(len(counts))
			counts = append(counts, 0)
		}
		counts[tidOf[r]]++
	}
	f.inOff = make([]uint32, len(counts)+1)
	for i, c := range counts {
		f.inOff[i+1] = f.inOff[i] + c
	}
	f.inFrom = make([]uint32, len(f.lblTo))
	f.inLbl = make([]uint32, len(f.lblTo))
	inCursor := append([]uint32(nil), f.inOff[:len(counts)]...)
	for lid := range f.labels {
		for p := f.lblOff[lid]; p < f.lblOff[lid+1]; p++ {
			tid := tidOf[f.lblTo[p]]
			c := inCursor[tid]
			f.inFrom[c] = f.lblFrom[p]
			f.inLbl[c] = uint32(lid)
			inCursor[tid] = c + 1
		}
	}
	for r, tid := range tidOf {
		f.inTid[f.value(r)] = tid
	}

	// Per-label distinct-source/target statistics, precomputed so the
	// planner's LabelStats is O(1) against a snapshot.
	f.stats = make([]frozenStat, len(f.labels))
	var tscratch []uint32
	for lid := range f.labels {
		lo, hi := f.lblOff[lid], f.lblOff[lid+1]
		var sources uint32
		for p := lo; p < hi; p++ {
			if p == lo || f.lblFrom[p] != f.lblFrom[p-1] {
				sources++
			}
		}
		tscratch = append(tscratch[:0], f.lblTo[lo:hi]...)
		sort.Slice(tscratch, func(i, j int) bool { return tscratch[i] < tscratch[j] })
		var targets uint32
		for i, r := range tscratch {
			if i == 0 || r != tscratch[i-1] {
				targets++
			}
		}
		f.stats[lid] = frozenStat{sources: sources, targets: targets}
	}
}

func sortedStringSet(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sliceIndex(ss []string) map[string]uint32 {
	idx := make(map[string]uint32, len(ss))
	for i, s := range ss {
		idx[s] = uint32(i)
	}
	return idx
}

// --- read API (mirrors Graph / struql.Source accessors) ---

// NumNodes returns the node count.
func (f *Frozen) NumNodes() int { return len(f.nodes) }

// NumEdges returns the edge count.
func (f *Frozen) NumEdges() int { return len(f.outLbl) }

// HasNode reports whether the node exists.
func (f *Frozen) HasNode(oid OID) bool {
	_, ok := f.nodeOf[oid]
	return ok
}

// Nodes returns all node OIDs, sorted. The slice is fresh.
func (f *Frozen) Nodes() []OID { return append([]OID(nil), f.nodes...) }

// NodeAt returns the i-th node OID in sorted order.
func (f *Frozen) NodeAt(i int) OID { return f.nodes[i] }

// Labels returns every distinct edge label, sorted. The slice is fresh.
func (f *Frozen) Labels() []string { return append([]string(nil), f.labels...) }

// LabelCount returns the number of edges carrying the label.
func (f *Frozen) LabelCount(label string) int {
	lid, ok := f.labelOf[label]
	if !ok {
		return 0
	}
	return int(f.lblOff[lid+1] - f.lblOff[lid])
}

// LabelStats returns one label's edge count and distinct source/target
// counts from the precomputed snapshot statistics.
func (f *Frozen) LabelStats(label string) (count, sources, targets int) {
	lid, ok := f.labelOf[label]
	if !ok {
		return 0, 0, 0
	}
	st := f.stats[lid]
	return int(f.lblOff[lid+1] - f.lblOff[lid]), int(st.sources), int(st.targets)
}

// outRange returns the [lo,hi) out-edge range of a node, or ok=false.
func (f *Frozen) outRange(oid OID) (lo, hi uint32, ok bool) {
	nid, found := f.nodeOf[oid]
	if !found {
		return 0, 0, false
	}
	return f.outOff[nid], f.outOff[nid+1], true
}

// labelRange narrows an out-edge range to one label by binary search.
func (f *Frozen) labelRange(lo, hi, lid uint32) (uint32, uint32) {
	sub := f.outLbl[lo:hi]
	a := uint32(sort.Search(len(sub), func(i int) bool { return sub[i] >= lid }))
	b := uint32(sort.Search(len(sub), func(i int) bool { return sub[i] > lid }))
	return lo + a, lo + b
}

// ForEachOut visits the node's out-edges in (label, target key) order;
// fn returning false stops the walk.
func (f *Frozen) ForEachOut(oid OID, fn func(label string, to Value) bool) {
	lo, hi, ok := f.outRange(oid)
	if !ok {
		return
	}
	for p := lo; p < hi; p++ {
		if !fn(f.labels[f.outLbl[p]], f.value(f.outTo[p])) {
			return
		}
	}
}

// ForEachOutLabel visits the values of the node's edges under one label,
// in target-key order.
func (f *Frozen) ForEachOutLabel(oid OID, label string, fn func(to Value) bool) {
	lid, ok := f.labelOf[label]
	if !ok {
		return
	}
	lo, hi, found := f.outRange(oid)
	if !found {
		return
	}
	lo, hi = f.labelRange(lo, hi, lid)
	for p := lo; p < hi; p++ {
		if !fn(f.value(f.outTo[p])) {
			return
		}
	}
}

// Out returns the node's out-edges, sorted by (label, target key). The
// slice is fresh.
func (f *Frozen) Out(oid OID) []Edge {
	lo, hi, ok := f.outRange(oid)
	if !ok || lo == hi {
		return nil
	}
	out := make([]Edge, 0, hi-lo)
	for p := lo; p < hi; p++ {
		out = append(out, Edge{From: oid, Label: f.labels[f.outLbl[p]], To: f.value(f.outTo[p])})
	}
	return out
}

// OutLabel returns the values of the node's edges under one label,
// sorted by key. The slice is fresh.
func (f *Frozen) OutLabel(oid OID, label string) []Value {
	var out []Value
	f.ForEachOutLabel(oid, label, func(to Value) bool {
		out = append(out, to)
		return true
	})
	return out
}

// First returns the first value of the node's attribute, or Null.
func (f *Frozen) First(oid OID, label string) Value {
	first := Null
	f.ForEachOutLabel(oid, label, func(to Value) bool {
		first = to
		return false
	})
	return first
}

// ForEachLabeled visits every edge carrying the label, grouped by
// source node in ascending order.
func (f *Frozen) ForEachLabeled(label string, fn func(from OID, to Value) bool) {
	lid, ok := f.labelOf[label]
	if !ok {
		return
	}
	for p := f.lblOff[lid]; p < f.lblOff[lid+1]; p++ {
		if !fn(f.nodes[f.lblFrom[p]], f.value(f.lblTo[p])) {
			return
		}
	}
}

// EdgesLabeled returns every edge carrying the label. The slice is fresh.
func (f *Frozen) EdgesLabeled(label string) []Edge {
	lid, ok := f.labelOf[label]
	if !ok {
		return nil
	}
	lo, hi := f.lblOff[lid], f.lblOff[lid+1]
	out := make([]Edge, 0, hi-lo)
	for p := lo; p < hi; p++ {
		out = append(out, Edge{From: f.nodes[f.lblFrom[p]], Label: label, To: f.value(f.lblTo[p])})
	}
	return out
}

// inRange returns the in-edge range of a target value, or ok=false.
func (f *Frozen) inRange(v Value) (lo, hi uint32, ok bool) {
	tid, found := f.inTid[v]
	if !found {
		return 0, 0, false
	}
	return f.inOff[tid], f.inOff[tid+1], true
}

// ForEachIn visits every edge targeting v, in (label, source) order.
func (f *Frozen) ForEachIn(v Value, fn func(from OID, label string) bool) {
	lo, hi, ok := f.inRange(v)
	if !ok {
		return
	}
	for p := lo; p < hi; p++ {
		if !fn(f.nodes[f.inFrom[p]], f.labels[f.inLbl[p]]) {
			return
		}
	}
}

// ForEachInLabel visits the sources of edges targeting v under one
// label, in ascending source order, via binary search on the in-list.
func (f *Frozen) ForEachInLabel(v Value, label string, fn func(from OID) bool) {
	lid, ok := f.labelOf[label]
	if !ok {
		return
	}
	lo, hi, found := f.inRange(v)
	if !found {
		return
	}
	sub := f.inLbl[lo:hi]
	a := uint32(sort.Search(len(sub), func(i int) bool { return sub[i] >= lid }))
	b := uint32(sort.Search(len(sub), func(i int) bool { return sub[i] > lid }))
	for p := lo + a; p < lo+b; p++ {
		if !fn(f.nodes[f.inFrom[p]]) {
			return
		}
	}
}

// In returns every edge targeting v. The slice is fresh.
func (f *Frozen) In(v Value) []Edge {
	lo, hi, ok := f.inRange(v)
	if !ok || lo == hi {
		return nil
	}
	out := make([]Edge, 0, hi-lo)
	for p := lo; p < hi; p++ {
		out = append(out, Edge{From: f.nodes[f.inFrom[p]], Label: f.labels[f.inLbl[p]], To: v})
	}
	return out
}

// CollectionNames returns all collection names, sorted. Fresh slice.
func (f *Frozen) CollectionNames() []string { return append([]string(nil), f.collNames...) }

// CollectionSize returns the member count of a collection.
func (f *Frozen) CollectionSize(name string) int {
	ci, ok := f.collOf[name]
	if !ok {
		return 0
	}
	return len(f.collMembers[ci])
}

// Collection returns the members of a collection, sorted by OID. The
// slice is fresh.
func (f *Frozen) Collection(name string) []OID {
	ci, ok := f.collOf[name]
	if !ok {
		return nil
	}
	ids := f.collMembers[ci]
	out := make([]OID, len(ids))
	for i, nid := range ids {
		out[i] = f.nodes[nid]
	}
	return out
}

// InCollection reports membership by binary search over the sorted
// member ids.
func (f *Frozen) InCollection(name string, oid OID) bool {
	ci, ok := f.collOf[name]
	if !ok {
		return false
	}
	nid, ok := f.nodeOf[oid]
	if !ok {
		return false
	}
	ids := f.collMembers[ci]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= nid })
	return i < len(ids) && ids[i] == nid
}

// Stats returns summary statistics of the snapshot.
func (f *Frozen) Stats() Stats {
	return Stats{
		Nodes:       len(f.nodes),
		Edges:       len(f.outLbl),
		Labels:      len(f.labels),
		Collections: len(f.collNames),
	}
}

// Thaw reconstructs a mutable Graph equivalent to the snapshot.
func (f *Frozen) Thaw() *Graph {
	g := NewWithCapacity(len(f.nodes), len(f.outLbl))
	for _, oid := range f.nodes {
		g.AddNode(oid)
	}
	for nid := range f.nodes {
		from := f.nodes[nid]
		for p := f.outOff[nid]; p < f.outOff[nid+1]; p++ {
			g.AddEdge(from, f.labels[f.outLbl[p]], f.value(f.outTo[p]))
		}
	}
	for i, name := range f.collNames {
		g.DeclareCollection(name)
		for _, nid := range f.collMembers[i] {
			g.AddToCollection(name, f.nodes[nid])
		}
	}
	return g
}
