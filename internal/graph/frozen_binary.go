package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of a frozen snapshot — the payload of the repository's
// SGB2 format (the repo package owns the magic and file handling). The
// format ships the primary layout only: the dictionary, the typed
// arenas, the out-adjacency CSR, and the collections. The derived
// structures (label extents, in-adjacency, statistics) rebuild in linear
// passes on load, so decoding is O(copy) plus one pass over the edges —
// no re-interning, no edge sorting.
//
//	dict:    uvarint count, per entry uvarint length + bytes
//	labels:  uvarint count, per label dict ref (strictly increasing strings)
//	nodes:   uvarint count, per node dict ref (strictly increasing strings)
//	strs:    uvarint count, per atom dict ref (strictly increasing strings)
//	urls:    uvarint count, per atom dict ref (strictly increasing strings)
//	ints:    uvarint count, per atom varint (strictly increasing)
//	floats:  uvarint count, per atom 8-byte LE bits (strictly increasing)
//	files:   uvarint count, per atom type byte + dict ref (strictly increasing)
//	out CSR: per node uvarint degree, then per edge uvarint label id +
//	         uvarint packed value ref, labels non-decreasing per node
//	colls:   uvarint count, per collection dict ref + uvarint member
//	         count + member node ids (strictly increasing)

// AppendFrozen appends the snapshot's binary payload to dst.
func AppendFrozen(dst []byte, f *Frozen) []byte {
	dict := NewInterner()
	for _, l := range f.labels {
		dict.Intern(l)
	}
	for _, n := range f.nodes {
		dict.Intern(string(n))
	}
	for _, s := range f.strs {
		dict.Intern(s)
	}
	for _, u := range f.urls {
		dict.Intern(u)
	}
	for _, fr := range f.files {
		dict.Intern(fr.path)
	}
	for _, c := range f.collNames {
		dict.Intern(c)
	}
	strings := dict.Strings()
	dst = binary.AppendUvarint(dst, uint64(len(strings)))
	for _, s := range strings {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	ref := func(s string) uint64 {
		id, _ := dict.Lookup(s)
		return uint64(id)
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.labels)))
	for _, l := range f.labels {
		dst = binary.AppendUvarint(dst, ref(l))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.nodes)))
	for _, n := range f.nodes {
		dst = binary.AppendUvarint(dst, ref(string(n)))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.strs)))
	for _, s := range f.strs {
		dst = binary.AppendUvarint(dst, ref(s))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.urls)))
	for _, u := range f.urls {
		dst = binary.AppendUvarint(dst, ref(u))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.ints)))
	for _, i := range f.ints {
		dst = binary.AppendVarint(dst, i)
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.floats)))
	for _, fl := range f.floats {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(fl))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.files)))
	for _, fr := range f.files {
		dst = append(dst, byte(fr.ft))
		dst = binary.AppendUvarint(dst, ref(fr.path))
	}
	for nid := range f.nodes {
		lo, hi := f.outOff[nid], f.outOff[nid+1]
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		for p := lo; p < hi; p++ {
			dst = binary.AppendUvarint(dst, uint64(f.outLbl[p]))
			dst = binary.AppendUvarint(dst, uint64(f.outTo[p]))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.collNames)))
	for i, name := range f.collNames {
		dst = binary.AppendUvarint(dst, ref(name))
		dst = binary.AppendUvarint(dst, uint64(len(f.collMembers[i])))
		for _, nid := range f.collMembers[i] {
			dst = binary.AppendUvarint(dst, uint64(nid))
		}
	}
	return dst
}

type frozenDecoder struct {
	data []byte
	pos  int
}

func (d *frozenDecoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("graph: frozen: truncated varint at %d", d.pos)
	}
	d.pos += n
	return x, nil
}

func (d *frozenDecoder) varint() (int64, error) {
	x, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("graph: frozen: truncated varint at %d", d.pos)
	}
	d.pos += n
	return x, nil
}

// count reads a section's entry count, bounding it by the bytes left so
// corrupt headers cannot force huge preallocations.
func (d *frozenDecoder) count(section string) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return 0, fmt.Errorf("graph: frozen: %s count %d exceeds remaining input", section, n)
	}
	return int(n), nil
}

// DecodeFrozen parses a payload written by AppendFrozen, validating
// every reference so corrupt input yields an error, never a panic.
func DecodeFrozen(data []byte) (*Frozen, error) {
	d := &frozenDecoder{data: data}
	nDict, err := d.count("dictionary")
	if err != nil {
		return nil, err
	}
	dict := make([]string, 0, nDict)
	for i := 0; i < nDict; i++ {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)-d.pos) {
			return nil, fmt.Errorf("graph: frozen: truncated dictionary entry %d", i)
		}
		dict = append(dict, string(d.data[d.pos:d.pos+int(n)]))
		d.pos += int(n)
	}
	ref := func(section string) (string, error) {
		i, err := d.uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(dict)) {
			return "", fmt.Errorf("graph: frozen: %s dictionary ref %d out of range", section, i)
		}
		return dict[i], nil
	}
	refList := func(section string) ([]string, error) {
		n, err := d.count(section)
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			s, err := ref(section)
			if err != nil {
				return nil, err
			}
			if i > 0 && out[i-1] >= s {
				return nil, fmt.Errorf("graph: frozen: %s arena not strictly sorted", section)
			}
			out = append(out, s)
		}
		return out, nil
	}

	f := &Frozen{}
	if f.labels, err = refList("label"); err != nil {
		return nil, err
	}
	nodeStrs, err := refList("node")
	if err != nil {
		return nil, err
	}
	f.nodes = make([]OID, len(nodeStrs))
	for i, s := range nodeStrs {
		f.nodes[i] = OID(s)
	}
	if f.strs, err = refList("string"); err != nil {
		return nil, err
	}
	if f.urls, err = refList("url"); err != nil {
		return nil, err
	}
	nInts, err := d.count("int")
	if err != nil {
		return nil, err
	}
	f.ints = make([]int64, 0, nInts)
	for i := 0; i < nInts; i++ {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		if i > 0 && f.ints[i-1] >= v {
			return nil, fmt.Errorf("graph: frozen: int arena not strictly sorted")
		}
		f.ints = append(f.ints, v)
	}
	nFloats, err := d.count("float")
	if err != nil {
		return nil, err
	}
	f.floats = make([]float64, 0, nFloats)
	for i := 0; i < nFloats; i++ {
		if len(d.data)-d.pos < 8 {
			return nil, fmt.Errorf("graph: frozen: truncated float arena")
		}
		bits := binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		if i > 0 && math.Float64bits(f.floats[i-1]) >= bits {
			return nil, fmt.Errorf("graph: frozen: float arena not strictly sorted")
		}
		f.floats = append(f.floats, math.Float64frombits(bits))
	}
	nFiles, err := d.count("file")
	if err != nil {
		return nil, err
	}
	f.files = make([]fileRef, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		if d.pos >= len(d.data) {
			return nil, fmt.Errorf("graph: frozen: truncated file arena")
		}
		ft := FileType(d.data[d.pos])
		d.pos++
		path, err := ref("file")
		if err != nil {
			return nil, err
		}
		fr := fileRef{ft: ft, path: path}
		if i > 0 {
			prev := f.files[i-1]
			if prev.ft > fr.ft || (prev.ft == fr.ft && prev.path >= fr.path) {
				return nil, fmt.Errorf("graph: frozen: file arena not strictly sorted")
			}
		}
		f.files = append(f.files, fr)
	}

	// Rebuild the dictionaries' reverse maps before validating vrefs.
	f.labelOf = make(map[string]uint32, len(f.labels))
	for i, l := range f.labels {
		f.labelOf[l] = uint32(i)
	}
	f.nodeOf = make(map[OID]uint32, len(f.nodes))
	for i, n := range f.nodes {
		f.nodeOf[n] = uint32(i)
	}

	arenaLen := func(k Kind) int {
		switch k {
		case KindNull:
			return 1
		case KindNode:
			return len(f.nodes)
		case KindString:
			return len(f.strs)
		case KindURL:
			return len(f.urls)
		case KindInt:
			return len(f.ints)
		case KindFloat:
			return len(f.floats)
		case KindBool:
			return 2
		case KindFile:
			return len(f.files)
		}
		return 0
	}

	// Out CSR.
	f.outOff = make([]uint32, len(f.nodes)+1)
	for nid := 0; nid < len(f.nodes); nid++ {
		f.outOff[nid] = uint32(len(f.outLbl))
		deg, err := d.count("out-degree")
		if err != nil {
			return nil, err
		}
		prevLbl := uint32(0)
		for i := 0; i < deg; i++ {
			lbl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if lbl >= uint64(len(f.labels)) {
				return nil, fmt.Errorf("graph: frozen: edge label id %d out of range", lbl)
			}
			if i > 0 && uint32(lbl) < prevLbl {
				return nil, fmt.Errorf("graph: frozen: node %d out-edges not sorted by label", nid)
			}
			prevLbl = uint32(lbl)
			to, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			vr := uint32(to)
			if uint64(vr) != to {
				return nil, fmt.Errorf("graph: frozen: value ref %d out of range", to)
			}
			k := Kind(vr >> vrefShift)
			if k > KindFile {
				return nil, fmt.Errorf("graph: frozen: value ref kind %d unknown", k)
			}
			if int(vr&vrefMask) >= arenaLen(k) {
				return nil, fmt.Errorf("graph: frozen: %s value ref %d out of range", k, vr&vrefMask)
			}
			f.outLbl = append(f.outLbl, uint32(lbl))
			f.outTo = append(f.outTo, vr)
		}
	}
	f.outOff[len(f.nodes)] = uint32(len(f.outLbl))

	// Collections.
	nColls, err := d.count("collection")
	if err != nil {
		return nil, err
	}
	f.collNames = make([]string, 0, nColls)
	f.collMembers = make([][]uint32, 0, nColls)
	f.collOf = make(map[string]uint32, nColls)
	for i := 0; i < nColls; i++ {
		name, err := ref("collection")
		if err != nil {
			return nil, err
		}
		if i > 0 && f.collNames[i-1] >= name {
			return nil, fmt.Errorf("graph: frozen: collections not strictly sorted")
		}
		nMembers, err := d.count("member")
		if err != nil {
			return nil, err
		}
		members := make([]uint32, 0, nMembers)
		for j := 0; j < nMembers; j++ {
			nid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if nid >= uint64(len(f.nodes)) {
				return nil, fmt.Errorf("graph: frozen: collection member id %d out of range", nid)
			}
			if j > 0 && members[j-1] >= uint32(nid) {
				return nil, fmt.Errorf("graph: frozen: collection %s members not strictly sorted", name)
			}
			members = append(members, uint32(nid))
		}
		f.collNames = append(f.collNames, name)
		f.collMembers = append(f.collMembers, members)
		f.collOf[name] = uint32(i)
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("graph: frozen: %d trailing bytes", len(d.data)-d.pos)
	}

	f.buildDerived()
	return f, nil
}
