package graph

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// fig2 builds the Fig. 2 data-graph fragment: two publications with
// irregular attributes (pub1 has month and journal; pub2 has booktitle).
func fig2() *Graph {
	g := New()
	g.AddToCollection("Publications", "pub1")
	g.AddToCollection("Publications", "pub2")
	g.AddEdge("pub1", "title", NewString("A Query Language for a Web-Site Management System"))
	g.AddEdge("pub1", "author", NewString("Fernandez"))
	g.AddEdge("pub1", "author", NewString("Florescu"))
	g.AddEdge("pub1", "year", NewInt(1997))
	g.AddEdge("pub1", "month", NewString("September"))
	g.AddEdge("pub1", "journal", NewString("SIGMOD Record"))
	g.AddEdge("pub1", "abstract", NewFile(FileText, "abstracts/pub1.txt"))
	g.AddEdge("pub1", "postscript", NewFile(FilePostScript, "ps/pub1.ps"))
	g.AddEdge("pub2", "title", NewString("Catching the Boat with Strudel"))
	g.AddEdge("pub2", "author", NewString("Fernandez"))
	g.AddEdge("pub2", "year", NewInt(1998))
	g.AddEdge("pub2", "booktitle", NewString("SIGMOD"))
	g.AddEdge("pub2", "category", NewString("web"))
	return g
}

func TestAddAndQueryBasics(t *testing.T) {
	g := fig2()
	if got := g.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d, want 2", got)
	}
	if got := g.NumEdges(); got != 13 {
		t.Fatalf("NumEdges = %d, want 13", got)
	}
	if !g.InCollection("Publications", "pub1") {
		t.Error("pub1 should be in Publications")
	}
	if g.InCollection("Publications", "nosuch") {
		t.Error("nosuch should not be in Publications")
	}
	if got := g.Collection("Publications"); len(got) != 2 || got[0] != "pub1" || got[1] != "pub2" {
		t.Errorf("Collection = %v", got)
	}
}

func TestIrregularAttributes(t *testing.T) {
	// §6.3: objects in the same collection may have different attributes.
	g := fig2()
	if v := g.First("pub1", "month"); v.IsNull() {
		t.Error("pub1 should have month")
	}
	if v := g.First("pub2", "month"); !v.IsNull() {
		t.Error("pub2 should lack month")
	}
	if v := g.First("pub1", "journal"); v.Text() != "SIGMOD Record" {
		t.Errorf("pub1 journal = %q", v.Text())
	}
	if v := g.First("pub2", "booktitle"); v.Text() != "SIGMOD" {
		t.Errorf("pub2 booktitle = %q", v.Text())
	}
}

func TestMultiValuedAttributes(t *testing.T) {
	g := fig2()
	authors := g.OutLabel("pub1", "author")
	if len(authors) != 2 {
		t.Fatalf("pub1 has %d authors, want 2", len(authors))
	}
	if authors[0].Text() != "Fernandez" || authors[1].Text() != "Florescu" {
		t.Errorf("authors = %v", authors)
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	g := New()
	if !g.AddEdge("a", "l", NewString("v")) {
		t.Error("first add should be new")
	}
	if g.AddEdge("a", "l", NewString("v")) {
		t.Error("duplicate add should report false")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestDuplicateCollectionMembership(t *testing.T) {
	g := New()
	g.AddToCollection("C", "x")
	g.AddToCollection("C", "x")
	if n := g.CollectionSize("C"); n != 1 {
		t.Errorf("CollectionSize = %d, want 1", n)
	}
}

func TestObjectInMultipleCollections(t *testing.T) {
	g := New()
	g.AddToCollection("Papers", "p")
	g.AddToCollection("Recent", "p")
	colls := g.CollectionsOf("p")
	if len(colls) != 2 || colls[0] != "Papers" || colls[1] != "Recent" {
		t.Errorf("CollectionsOf = %v", colls)
	}
}

func TestEdgeTargetsCreateNodes(t *testing.T) {
	g := New()
	g.AddEdge("a", "child", NewNode("b"))
	if !g.HasNode("b") {
		t.Error("edge target node should be created")
	}
	if g.HasNode("c") {
		t.Error("unknown node reported present")
	}
}

func TestLabelsSchemaIndex(t *testing.T) {
	g := fig2()
	labels := g.Labels()
	want := []string{"abstract", "author", "booktitle", "category", "journal", "month", "postscript", "title", "year"}
	if len(labels) != len(want) {
		t.Fatalf("Labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
}

func TestOutDeterministicOrder(t *testing.T) {
	g := New()
	g.AddEdge("n", "b", NewString("2"))
	g.AddEdge("n", "a", NewString("1"))
	g.AddEdge("n", "a", NewString("0"))
	out := g.Out("n")
	if len(out) != 3 {
		t.Fatalf("len(out) = %d", len(out))
	}
	if out[0].Label != "a" || out[0].To.Text() != "0" ||
		out[1].Label != "a" || out[1].To.Text() != "1" ||
		out[2].Label != "b" {
		t.Errorf("out order = %v", out)
	}
}

func TestCopyIsDeep(t *testing.T) {
	g := fig2()
	c := g.Copy()
	c.AddEdge("pub1", "extra", NewInt(1))
	c.AddToCollection("New", "pub9")
	if g.HasEdge("pub1", "extra", NewInt(1)) {
		t.Error("copy mutation leaked into original")
	}
	if g.InCollection("New", "pub9") {
		t.Error("copy collection leaked into original")
	}
	if g.Dump() == c.Dump() {
		t.Error("dumps should differ after mutation")
	}
}

func TestMergeUnifiesOIDs(t *testing.T) {
	a := New()
	a.AddEdge("root", "x", NewNode("n1"))
	a.AddToCollection("Root", "root")
	b := New()
	b.AddEdge("root", "y", NewNode("n2"))
	b.AddToCollection("Root", "root")
	b.AddToCollection("Other", "n2")
	a.Merge(b)
	if a.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", a.NumEdges())
	}
	if a.CollectionSize("Root") != 1 {
		t.Errorf("Root size = %d, want 1 (oid unification)", a.CollectionSize("Root"))
	}
	if !a.InCollection("Other", "n2") {
		t.Error("merge should carry collections")
	}
}

func TestReachable(t *testing.T) {
	g := New()
	g.AddEdge("r", "a", NewNode("x"))
	g.AddEdge("x", "b", NewNode("y"))
	g.AddEdge("z", "c", NewNode("w"))    // disconnected
	g.AddEdge("y", "back", NewNode("r")) // cycle
	reach := g.Reachable("r")
	for _, oid := range []OID{"r", "x", "y"} {
		if _, ok := reach[oid]; !ok {
			t.Errorf("%s should be reachable", oid)
		}
	}
	if _, ok := reach["z"]; ok {
		t.Error("z should not be reachable")
	}
	if len(g.Reachable("absent")) != 0 {
		t.Error("reachable from absent node should be empty")
	}
}

func TestDumpGolden(t *testing.T) {
	g := New()
	g.AddToCollection("C", "n")
	g.AddEdge("n", "a", NewInt(1))
	g.AddEdge("n", "b", NewNode("m"))
	want := "collection C: &n\n&n -a-> 1\n&n -b-> &m\n"
	if got := g.Dump(); got != want {
		t.Errorf("Dump = %q, want %q", got, want)
	}
}

func TestDotOutput(t *testing.T) {
	g := fig2()
	dot := g.Dot("fig2")
	for _, frag := range []string{"digraph \"fig2\"", "\"pub1\"", "label=\"Publications\"", "shape=box"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot missing %q", frag)
		}
	}
}

func TestStats(t *testing.T) {
	s := fig2().Stats()
	if s.Nodes != 2 || s.Edges != 13 || s.Collections != 1 || s.Labels != 9 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestMergeIdempotentProperty(t *testing.T) {
	// Merging a graph into itself twice equals merging once (set semantics).
	f := func(seed uint8) bool {
		g := randomGraph(int(seed%20) + 1)
		h := g.Copy()
		h.Merge(g)
		return h.Dump() == g.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a small deterministic graph from a size parameter.
func randomGraph(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		from := OID(fmt.Sprintf("n%d", i))
		to := OID(fmt.Sprintf("n%d", (i*7+3)%n))
		g.AddEdge(from, fmt.Sprintf("l%d", i%3), NewNode(to))
		g.AddEdge(from, "v", NewInt(int64(i)))
		if i%2 == 0 {
			g.AddToCollection("Even", from)
		}
	}
	return g
}

func TestFirstOnMissing(t *testing.T) {
	g := New()
	g.AddNode("n")
	if !g.First("n", "absent").IsNull() {
		t.Error("First of absent attribute should be Null")
	}
	if !g.First("ghost", "x").IsNull() {
		t.Error("First on absent node should be Null")
	}
}

func TestDeclareCollectionEmpty(t *testing.T) {
	g := New()
	g.DeclareCollection("Empty")
	names := g.CollectionNames()
	if len(names) != 1 || names[0] != "Empty" {
		t.Errorf("CollectionNames = %v", names)
	}
	if g.CollectionSize("Empty") != 0 {
		t.Error("Empty collection should have size 0")
	}
}
