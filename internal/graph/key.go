package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseKey is the inverse of Value.Key: it reconstructs a value from its
// canonical key form. Keys are the one value serialization that is both
// injective and order-preserving, which makes them the natural wire form
// for addressing — the sharded serving tier encodes a page's Skolem
// arguments as keys so that any replica can resolve a page reference it
// has never computed, without sharing a SkolemEnv.
func ParseKey(key string) (Value, error) {
	if key == "" {
		return Null, fmt.Errorf("graph: empty value key")
	}
	rest := key[1:]
	switch key[0] {
	case '0':
		if rest != "" {
			return Null, fmt.Errorf("graph: null key with payload %q", rest)
		}
		return Null, nil
	case 'n':
		return NewNode(OID(rest)), nil
	case 's':
		return NewString(rest), nil
	case 'i':
		i, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("graph: bad int key %q: %w", key, err)
		}
		return NewInt(i), nil
	case 'f':
		f, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return Null, fmt.Errorf("graph: bad float key %q: %w", key, err)
		}
		return NewFloat(f), nil
	case 'b':
		switch rest {
		case "0":
			return NewBool(false), nil
		case "1":
			return NewBool(true), nil
		}
		return Null, fmt.Errorf("graph: bad bool key %q", key)
	case 'u':
		return NewURL(rest), nil
	case 'F':
		tname, path, ok := strings.Cut(rest, ":")
		if !ok {
			return Null, fmt.Errorf("graph: bad file key %q", key)
		}
		ft, ok := ParseFileType(tname)
		if !ok {
			return Null, fmt.Errorf("graph: bad file type in key %q", key)
		}
		return NewFile(ft, path), nil
	}
	return Null, fmt.Errorf("graph: unknown value key prefix %q", key[0])
}
