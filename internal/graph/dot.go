package graph

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz dot syntax, the form we use to
// visualize data-graph and site-graph fragments (Figs. 2 and 4).
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	atomID := 0
	for _, oid := range g.Nodes() {
		fmt.Fprintf(&b, "  %q [shape=ellipse];\n", string(oid))
	}
	for _, oid := range g.Nodes() {
		for _, e := range g.Out(oid) {
			var target string
			if e.To.IsNode() {
				target = string(e.To.OID())
			} else {
				atomID++
				target = fmt.Sprintf("atom%d", atomID)
				fmt.Fprintf(&b, "  %q [shape=box,label=%q];\n", target, e.To.Text())
			}
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", string(e.From), target, e.Label)
		}
	}
	for _, coll := range g.CollectionNames() {
		collNode := "coll:" + coll
		fmt.Fprintf(&b, "  %q [shape=diamond,label=%q];\n", collNode, coll)
		for _, m := range g.Collection(coll) {
			fmt.Fprintf(&b, "  %q -> %q [style=dotted];\n", collNode, string(m))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Dump renders a deterministic multi-line listing of the graph: every
// collection with its members, then every edge. Golden tests compare Dumps.
func (g *Graph) Dump() string {
	var b strings.Builder
	for _, coll := range g.CollectionNames() {
		fmt.Fprintf(&b, "collection %s:", coll)
		for _, m := range g.Collection(coll) {
			fmt.Fprintf(&b, " &%s", string(m))
		}
		b.WriteString("\n")
	}
	g.Edges(func(e Edge) bool {
		fmt.Fprintf(&b, "%s\n", e)
		return true
	})
	return b.String()
}
