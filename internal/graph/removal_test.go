package graph

import (
	"testing"
	"testing/quick"
)

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge("a", "l", NewString("v"))
	g.AddEdge("a", "l", NewString("w"))
	if !g.RemoveEdge("a", "l", NewString("v")) {
		t.Fatal("existing edge should remove")
	}
	if g.RemoveEdge("a", "l", NewString("v")) {
		t.Error("double removal should report false")
	}
	if g.NumEdges() != 1 || g.HasEdge("a", "l", NewString("v")) {
		t.Errorf("graph after removal:\n%s", g.Dump())
	}
	if !g.HasEdge("a", "l", NewString("w")) {
		t.Error("sibling edge lost")
	}
	// Removal then re-add works (set semantics restored).
	if !g.AddEdge("a", "l", NewString("v")) {
		t.Error("re-add after removal should be new")
	}
}

func TestRemoveFromCollection(t *testing.T) {
	g := New()
	g.AddToCollection("C", "a")
	g.AddToCollection("C", "b")
	if !g.RemoveFromCollection("C", "a") {
		t.Fatal("member should remove")
	}
	if g.RemoveFromCollection("C", "a") {
		t.Error("double removal should report false")
	}
	if g.RemoveFromCollection("D", "a") {
		t.Error("unknown collection should report false")
	}
	if g.InCollection("C", "a") || !g.InCollection("C", "b") {
		t.Error("membership wrong after removal")
	}
	if g.CollectionSize("C") != 1 {
		t.Errorf("size = %d", g.CollectionSize("C"))
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.AddEdge("a", "x", NewInt(1))
	g.AddEdge("a", "y", NewInt(2))
	g.AddNode("b")
	if !g.RemoveNode("a") {
		t.Fatal("node should remove")
	}
	if g.RemoveNode("a") {
		t.Error("double removal should report false")
	}
	if g.HasNode("a") || g.NumEdges() != 0 {
		t.Errorf("graph after removal:\n%s", g.Dump())
	}
	if !g.HasNode("b") {
		t.Error("other node lost")
	}
}

func TestAddRemoveRoundTripProperty(t *testing.T) {
	// Adding a set of edges and removing them restores the empty edge set.
	f := func(n uint8) bool {
		g := New()
		edges := make([]Edge, 0, int(n%15)+1)
		for i := 0; i <= int(n%15); i++ {
			e := Edge{From: OID(string(rune('a' + i%5))), Label: string(rune('p' + i%3)), To: NewInt(int64(i))}
			if g.AddEdge(e.From, e.Label, e.To) {
				edges = append(edges, e)
			}
		}
		for _, e := range edges {
			if !g.RemoveEdge(e.From, e.Label, e.To) {
				return false
			}
		}
		return g.NumEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValueEqualStrict(t *testing.T) {
	if !NewInt(1).Equal(NewInt(1)) || NewInt(1).Equal(NewString("1")) {
		t.Error("strict equality wrong")
	}
}

func TestValueKeyAllKinds(t *testing.T) {
	vals := []Value{
		Null, NewNode("n"), NewString("s"), NewInt(1), NewFloat(1.5),
		NewBool(true), NewURL("u"), NewFile(FileHTML, "f.html"),
	}
	seen := map[string]bool{}
	for _, v := range vals {
		k := v.Key()
		if seen[k] {
			t.Errorf("key collision for %v", v)
		}
		seen[k] = true
	}
}

func TestKindStringBounds(t *testing.T) {
	if KindFile.String() != "file" || Kind(200).String() == "" {
		t.Error("Kind.String wrong")
	}
	if FileText.String() != "text" || FileType(200).String() == "" {
		t.Error("FileType.String wrong")
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := New()
	g.AddEdge("a", "x", NewInt(1))
	g.AddEdge("b", "y", NewInt(2))
	count := 0
	g.Edges(func(Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	if n := len(g.AllEdges()); n != 2 {
		t.Errorf("AllEdges = %d", n)
	}
}
