package graph

import (
	"fmt"
	"sort"
)

// Edge is one labeled directed edge. From is always an internal node; To
// may be an internal node or an atomic value — in the semistructured model
// a node's attributes are exactly its outgoing edges.
type Edge struct {
	From  OID
	Label string
	To    Value
}

// String renders the edge in data-definition-language form.
func (e Edge) String() string {
	return fmt.Sprintf("&%s -%s-> %s", e.From, e.Label, e.To)
}

type nodeRec struct {
	out []Edge // insertion order; sorted lazily on demand
}

// Graph is a mutable labeled directed graph with named collections. It is
// not safe for concurrent mutation; concurrent readers are safe once
// mutation stops. All accessor iteration orders are deterministic.
type Graph struct {
	// nodes maps an OID to its record's index in recs. Records live in
	// one slab rather than behind per-node pointers: graphs hold very
	// many nodes, and the slab halves the allocation count of bulk loads
	// and query construction.
	nodes map[OID]int32
	recs  []nodeRec
	// collections maps a collection name to member OIDs in insertion order,
	// with a companion set for O(1) membership tests.
	collections map[string][]OID
	memberSet   map[string]map[OID]struct{}
	edgeCount   int
	edgeSet     map[Edge]struct{} // dedups identical edges
}

// New returns an empty graph.
func New() *Graph { return NewWithCapacity(0, 0) }

// NewWithCapacity returns an empty graph whose node and edge structures
// are pre-sized for the given counts. Bulk loaders (wrappers, the
// mediator's warehouse merge) that know their sizes up front avoid the
// incremental map rehashing that otherwise dominates load time.
func NewWithCapacity(nodes, edges int) *Graph {
	return &Graph{
		nodes:       make(map[OID]int32, nodes),
		recs:        make([]nodeRec, 0, nodes),
		collections: make(map[string][]OID),
		memberSet:   make(map[string]map[OID]struct{}),
		edgeSet:     make(map[Edge]struct{}, edges),
	}
}

// rec returns the record of oid, or nil. The pointer is invalidated by
// the next AddNode/AddEdge, which may grow the slab.
func (g *Graph) rec(oid OID) *nodeRec {
	if i, ok := g.nodes[oid]; ok {
		return &g.recs[i]
	}
	return nil
}

// AddNode ensures a node with the given OID exists and returns its Value.
func (g *Graph) AddNode(oid OID) Value {
	if _, ok := g.nodes[oid]; !ok {
		g.nodes[oid] = int32(len(g.recs))
		g.recs = append(g.recs, nodeRec{})
	}
	return NewNode(oid)
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(oid OID) bool {
	_, ok := g.nodes[oid]
	return ok
}

// AddEdge adds the edge from -label-> to, creating the source node (and the
// target node, when to is a node reference) as needed. Duplicate edges are
// ignored, matching set semantics of the model. It reports whether the edge
// was new.
func (g *Graph) AddEdge(from OID, label string, to Value) bool {
	e := Edge{From: from, Label: label, To: to}
	if _, dup := g.edgeSet[e]; dup {
		return false
	}
	g.AddNode(from)
	if to.IsNode() {
		g.AddNode(to.OID())
	}
	g.edgeSet[e] = struct{}{}
	rec := &g.recs[g.nodes[from]]
	rec.out = append(rec.out, e)
	g.edgeCount++
	return true
}

// AddEdges adds a batch of edges through the same dedup path as AddEdge
// and returns how many were new. It exists for bulk loaders: combined
// with NewWithCapacity the per-edge structures are grown once instead of
// rehashed incrementally.
func (g *Graph) AddEdges(edges []Edge) int {
	added := 0
	for _, e := range edges {
		if g.AddEdge(e.From, e.Label, e.To) {
			added++
		}
	}
	return added
}

// HasEdge reports whether the exact edge exists.
func (g *Graph) HasEdge(from OID, label string, to Value) bool {
	_, ok := g.edgeSet[Edge{From: from, Label: label, To: to}]
	return ok
}

// RemoveEdge deletes the exact edge; it reports whether it existed. The
// source and target nodes remain.
func (g *Graph) RemoveEdge(from OID, label string, to Value) bool {
	e := Edge{From: from, Label: label, To: to}
	if _, ok := g.edgeSet[e]; !ok {
		return false
	}
	delete(g.edgeSet, e)
	rec := g.rec(from)
	for i := range rec.out {
		if rec.out[i] == e {
			rec.out = append(rec.out[:i], rec.out[i+1:]...)
			break
		}
	}
	g.edgeCount--
	return true
}

// RemoveFromCollection removes oid from the named collection; it reports
// whether it was a member.
func (g *Graph) RemoveFromCollection(coll string, oid OID) bool {
	set, ok := g.memberSet[coll]
	if !ok {
		return false
	}
	if _, member := set[oid]; !member {
		return false
	}
	delete(set, oid)
	members := g.collections[coll]
	for i := range members {
		if members[i] == oid {
			g.collections[coll] = append(members[:i], members[i+1:]...)
			break
		}
	}
	return true
}

// RemoveNode deletes a node record and its outgoing edges; it reports
// whether the node existed. The caller is responsible for ensuring no
// other edges or memberships still reference the node (incremental
// maintenance tracks that with reference counts). The slab slot is
// abandoned, not reclaimed — node removal is rare (incremental dynamic
// maintenance only) and the map is the membership authority.
func (g *Graph) RemoveNode(oid OID) bool {
	i, ok := g.nodes[oid]
	if !ok {
		return false
	}
	rec := &g.recs[i]
	for _, e := range rec.out {
		delete(g.edgeSet, e)
		g.edgeCount--
	}
	rec.out = nil
	delete(g.nodes, oid)
	return true
}

// AddToCollection adds oid to the named collection, creating node and
// collection as needed. Objects may belong to multiple collections (§2.1).
func (g *Graph) AddToCollection(coll string, oid OID) {
	g.AddNode(oid)
	set, ok := g.memberSet[coll]
	if !ok {
		set = make(map[OID]struct{})
		g.memberSet[coll] = set
		if _, present := g.collections[coll]; !present {
			g.collections[coll] = nil
		}
	}
	if _, dup := set[oid]; dup {
		return
	}
	set[oid] = struct{}{}
	g.collections[coll] = append(g.collections[coll], oid)
}

// DeclareCollection ensures the named collection exists, possibly empty.
func (g *Graph) DeclareCollection(coll string) {
	if _, ok := g.collections[coll]; !ok {
		g.collections[coll] = nil
	}
	if _, ok := g.memberSet[coll]; !ok {
		g.memberSet[coll] = make(map[OID]struct{})
	}
}

// InCollection reports whether oid is a member of coll.
func (g *Graph) InCollection(coll string, oid OID) bool {
	_, ok := g.memberSet[coll][oid]
	return ok
}

// Collection returns the members of coll sorted by OID. The slice is fresh.
func (g *Graph) Collection(coll string) []OID {
	members := g.collections[coll]
	out := make([]OID, len(members))
	copy(out, members)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CollectionSize returns the number of members of coll.
func (g *Graph) CollectionSize(coll string) int { return len(g.collections[coll]) }

// CollectionNames returns all collection names, sorted.
func (g *Graph) CollectionNames() []string {
	names := make([]string, 0, len(g.collections))
	for n := range g.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CollectionsOf returns the names of collections containing oid, sorted.
func (g *Graph) CollectionsOf(oid OID) []string {
	var names []string
	for n, set := range g.memberSet {
		if _, ok := set[oid]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Nodes returns all node OIDs, sorted.
func (g *Graph) Nodes() []OID {
	out := make([]OID, 0, len(g.nodes))
	for oid := range g.nodes {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Out returns the outgoing edges of oid sorted by (label, target key).
// The returned slice is fresh and safe to retain.
func (g *Graph) Out(oid OID) []Edge {
	rec := g.rec(oid)
	if rec == nil {
		return nil
	}
	out := make([]Edge, len(rec.out))
	copy(out, rec.out)
	sortEdges(out)
	return out
}

// OutLabel returns the values of oid's edges labeled label, sorted by key.
func (g *Graph) OutLabel(oid OID, label string) []Value {
	rec := g.rec(oid)
	if rec == nil {
		return nil
	}
	var vals []Value
	for _, e := range rec.out {
		if e.Label == label {
			vals = append(vals, e.To)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return KeyCompare(vals[i], vals[j]) < 0 })
	return vals
}

// First returns the first value of oid's attribute label, or Null if absent.
func (g *Graph) First(oid OID, label string) Value {
	vals := g.OutLabel(oid, label)
	if len(vals) == 0 {
		return Null
	}
	return vals[0]
}

// Labels returns every distinct edge label in the graph, sorted — part of
// the queryable schema (§2.1: indexes contain the names of all collections
// and attributes).
func (g *Graph) Labels() []string {
	set := make(map[string]struct{})
	for _, i := range g.nodes {
		for _, e := range g.recs[i].out {
			set[e.Label] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Edges calls fn for every edge. Iteration order is deterministic:
// nodes by OID, then each node's edges sorted. fn returning false stops.
func (g *Graph) Edges(fn func(Edge) bool) {
	for _, oid := range g.Nodes() {
		for _, e := range g.Out(oid) {
			if !fn(e) {
				return
			}
		}
	}
}

// AllEdges returns every edge, deterministically ordered.
func (g *Graph) AllEdges() []Edge {
	out := make([]Edge, 0, g.edgeCount)
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Copy returns a deep copy of the graph.
func (g *Graph) Copy() *Graph {
	c := NewWithCapacity(len(g.nodes), g.edgeCount)
	for oid, i := range g.nodes {
		c.AddNode(oid)
		for _, e := range g.recs[i].out {
			c.AddEdge(e.From, e.Label, e.To)
		}
	}
	for coll, members := range g.collections {
		c.DeclareCollection(coll)
		for _, m := range members {
			c.AddToCollection(coll, m)
		}
	}
	return c
}

// Merge adds all nodes, edges, and collection memberships of other into g.
// Nodes with equal OIDs unify, which is how composed StruQL queries extend
// a site graph across multiple queries (§6.2).
func (g *Graph) Merge(other *Graph) {
	for oid, i := range other.nodes {
		g.AddNode(oid)
		for _, e := range other.recs[i].out {
			g.AddEdge(e.From, e.Label, e.To)
		}
	}
	for coll, members := range other.collections {
		g.DeclareCollection(coll)
		for _, m := range members {
			g.AddToCollection(coll, m)
		}
	}
}

// Reachable returns the set of nodes reachable from start by any path
// (including start itself, if present in the graph).
func (g *Graph) Reachable(start OID) map[OID]struct{} {
	seen := make(map[OID]struct{})
	if !g.HasNode(start) {
		return seen
	}
	stack := []OID{start}
	seen[start] = struct{}{}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec := g.rec(cur)
		for _, e := range rec.out {
			if e.To.IsNode() {
				to := e.To.OID()
				if _, ok := seen[to]; !ok {
					seen[to] = struct{}{}
					stack = append(stack, to)
				}
			}
		}
	}
	return seen
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return KeyCompare(a.To, b.To) < 0
	})
}

// Stats summarizes a graph for optimizer decisions and reporting.
type Stats struct {
	Nodes       int
	Edges       int
	Labels      int
	Collections int
}

// Stats returns summary statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Labels:      len(g.Labels()),
		Collections: len(g.collections),
	}
}
