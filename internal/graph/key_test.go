package graph

import (
	"math"
	"testing"
)

func TestParseKeyRoundTrip(t *testing.T) {
	values := []Value{
		Null,
		NewNode("pub01"),
		NewNode(""), // the empty OID is a legal node
		NewString(""),
		NewString("plain"),
		NewString("with spaces; and %25 escapes"),
		NewString("i123"), // a string that looks like another key
		NewInt(0),
		NewInt(-42),
		NewInt(math.MaxInt64),
		NewInt(math.MinInt64),
		NewFloat(0),
		NewFloat(2.5),
		NewFloat(-1e300),
		NewBool(true),
		NewBool(false),
		NewURL("https://example.org/a?b=c#d"),
		NewFile(FileHTML, "pages/index.html"),
		NewFile(FileImage, "img/with:colon.png"),
	}
	for _, v := range values {
		key := v.Key()
		got, err := ParseKey(key)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", key, err)
		}
		if got.Key() != key {
			t.Fatalf("round trip of %q produced %q", key, got.Key())
		}
		if got.Kind() != v.Kind() {
			t.Fatalf("round trip of %q changed kind %v -> %v", key, v.Kind(), got.Kind())
		}
	}
}

func TestParseKeyRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",         // empty
		"0extra",   // null with payload
		"ix",       // unparsable int
		"i",        // empty int
		"f1.2.3",   // unparsable float
		"b2",       // bool out of range
		"b",        // empty bool
		"Fnocolon", // file without type separator
		"Fbogus:p", // unknown file type
		"zwhat",    // unknown prefix
	} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q): expected error, got none", bad)
		}
	}
}

// TestParseKeyFloatPrecision: float keys must survive the round trip
// bit-exactly, or two replicas could disagree about page identity.
func TestParseKeyFloatPrecision(t *testing.T) {
	for _, f := range []float64{0.1, 1.0 / 3.0, math.Pi, math.SmallestNonzeroFloat64, math.MaxFloat64} {
		v := NewFloat(f)
		got, err := ParseKey(v.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", v.Key(), err)
		}
		if got.Key() != v.Key() {
			t.Fatalf("float %v: key %q round-tripped to %q", f, v.Key(), got.Key())
		}
	}
}
