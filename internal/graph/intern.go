package graph

// Interner is a string dictionary: it assigns dense uint32 ids to
// distinct strings in first-intern order. The frozen snapshot uses it to
// dictionary-encode labels, OIDs, and atom payloads — with no schema to
// factor repetition out of the data, attribute names and Skolem-oid
// fragments repeat constantly, and interning them is where the
// compression comes from (the same observation behind the SGB1 format).
type Interner struct {
	idx  map[string]uint32
	strs []string
}

// NewInterner returns an empty dictionary.
func NewInterner() *Interner {
	return &Interner{idx: make(map[string]uint32)}
}

// Intern returns the id of s, assigning the next free id on first sight.
func (in *Interner) Intern(s string) uint32 {
	if id, ok := in.idx[s]; ok {
		return id
	}
	id := uint32(len(in.strs))
	in.idx[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the id of s without interning it.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.idx[s]
	return id, ok
}

// Str returns the string with the given id; it panics on out-of-range ids.
func (in *Interner) Str(id uint32) string { return in.strs[id] }

// Len returns the number of distinct strings interned.
func (in *Interner) Len() int { return len(in.strs) }

// Strings returns the backing dictionary in id order. The slice is
// shared: callers must not modify it.
func (in *Interner) Strings() []string { return in.strs }
