package graph

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		text string
	}{
		{NewNode("pub1"), KindNode, "pub1"},
		{NewString("hello"), KindString, "hello"},
		{NewInt(42), KindInt, "42"},
		{NewFloat(3.5), KindFloat, "3.5"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewURL("http://www.cnn.com"), KindURL, "http://www.cnn.com"},
		{NewFile(FilePostScript, "p.ps"), KindFile, "p.ps"},
		{Null, KindNull, ""},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Text() != c.text {
			t.Errorf("%v: text = %q, want %q", c.v, c.v.Text(), c.text)
		}
	}
}

func TestValuePayloads(t *testing.T) {
	if NewInt(7).Int() != 7 {
		t.Error("Int payload lost")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float payload lost")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool payload lost")
	}
	if NewNode("x").OID() != "x" {
		t.Error("OID payload lost")
	}
	if NewFile(FileImage, "a.gif").FileType() != FileImage {
		t.Error("FileType payload lost")
	}
	if NewString("s").Str() != "s" {
		t.Error("Str payload lost")
	}
}

func TestOIDPanicsOnAtom(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OID() on an atom should panic")
		}
	}()
	NewInt(1).OID()
}

func TestIsPredicates(t *testing.T) {
	if !NewNode("a").IsNode() || NewNode("a").IsAtom() {
		t.Error("node predicates wrong")
	}
	if NewString("a").IsNode() || !NewString("a").IsAtom() {
		t.Error("atom predicates wrong")
	}
	if !Null.IsNull() || Null.IsAtom() || Null.IsNode() {
		t.Error("null predicates wrong")
	}
}

func TestCompareCoercesNumerics(t *testing.T) {
	// §2.1: values are coerced dynamically when compared at run time.
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1997), NewString("1997"), 0},
		{NewInt(1996), NewString("1997"), -1},
		{NewString("1998"), NewFloat(1997.5), 1},
		{NewString("alpha"), NewString("beta"), -1},
		{NewInt(5), NewInt(5), 0},
		{NewBool(true), NewInt(1), 0},
		{NewString(" 12 "), NewInt(12), 0}, // whitespace-tolerant coercion
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	vals := []Value{
		NewInt(1), NewString("1"), NewString("x"), NewFloat(1.5),
		NewBool(false), NewNode("a"), NewNode("b"), Null,
		NewURL("u"), NewFile(FileText, "t"),
	}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestEquiv(t *testing.T) {
	if !Equiv(NewInt(3), NewString("3")) {
		t.Error("int 3 should be equivalent to string \"3\"")
	}
	if Equiv(NewString("abc"), NewInt(3)) {
		t.Error("non-numeric string should not equal int")
	}
	if !Equiv(NewNode("n"), NewNode("n")) {
		t.Error("same node should be equivalent")
	}
	if Equiv(NewNode("n"), NewString("n")) {
		t.Error("node must not coerce to string")
	}
}

func TestKeyUniquenessProperty(t *testing.T) {
	// Distinct strict values must have distinct keys; equal values equal keys.
	f := func(a, b string, i, j int64) bool {
		va, vb := NewString(a), NewString(b)
		vi, vj := NewInt(i), NewInt(j)
		if (va == vb) != (va.Key() == vb.Key()) {
			return false
		}
		if (vi == vj) != (vi.Key() == vj.Key()) {
			return false
		}
		// Cross-kind: a string never collides with an int key.
		return va.Key() != vi.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFileType(t *testing.T) {
	for _, name := range []string{"text", "html", "image", "postscript"} {
		ft, ok := ParseFileType(name)
		if !ok || ft.String() != name {
			t.Errorf("ParseFileType(%q) = %v, %v", name, ft, ok)
		}
	}
	if _, ok := ParseFileType("nope"); ok {
		t.Error("ParseFileType should reject unknown names")
	}
}

func TestValueStringForms(t *testing.T) {
	cases := map[string]Value{
		`&pub1`:              NewNode("pub1"),
		`"hi"`:               NewString("hi"),
		`42`:                 NewInt(42),
		`true`:               NewBool(true),
		`url("http://x")`:    NewURL("http://x"),
		`postscript("p.ps")`: NewFile(FilePostScript, "p.ps"),
		`null`:               Null,
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String() = %q, want %q", v.String(), want)
		}
	}
}
