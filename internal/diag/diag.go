// Package diag is Strudel's build-diagnostics layer: position-tagged
// records of malformed source data, and the error budgets that decide
// when a fail-soft batch build has seen too much of it.
//
// The paper's premise is that a site is *regenerated* from external
// sources (bibliographies, personnel databases, structured files, §4–5)
// that the site builder does not control. A single malformed BibTeX
// entry or CSV row must not abort a build of a million-page site; it
// must become a Diagnostic — source, line, column, severity, message —
// that the mediator aggregates and the CLI prints as stable, sorted,
// machine-parseable lines. A build fails only when a source's skipped
// records exceed a configured Budget.
package diag

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning marks degraded-but-usable input (a record was recovered
	// or partially extracted). Warnings never count against a budget.
	Warning Severity = iota
	// Error marks a skipped record: the input was malformed and its
	// content is absent from the loaded graph. Errors count against the
	// source's budget.
	Error
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one position-tagged report about a source's input.
type Diagnostic struct {
	// Source names the data source ("bib:pubs.bib", "csv:people.csv").
	Source string
	// Line and Col are 1-based; 0 means unknown.
	Line, Col int
	Severity  Severity
	Message   string
}

// String renders the diagnostic as one stable, machine-parseable line:
//
//	source:line:col: severity: message
//
// Unknown positions render as 0, keeping the field count fixed.
func (d Diagnostic) String() string {
	return d.Source + ":" + strconv.Itoa(d.Line) + ":" + strconv.Itoa(d.Col) +
		": " + d.Severity.String() + ": " + d.Message
}

// Sort orders diagnostics deterministically: by source, then position,
// then severity (errors before warnings at the same position), then
// message. Lenient loaders already emit in input order; sorting makes
// the aggregate of several sources stable regardless of load order.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Message < b.Message
	})
}

// Report is the outcome of one lenient load: what was seen, what was
// skipped, and why.
type Report struct {
	// Diags are the recorded diagnostics, in input order.
	Diags []Diagnostic
	// Records is the number of records the loader attempted (kept +
	// skipped). What a "record" is depends on the wrapper: a BibTeX
	// entry, a CSV row, a JSON array element, a DDL statement, an HTML
	// page.
	Records int
	// Skipped is the number of records dropped as malformed.
	Skipped int
}

// Add appends a diagnostic. Nil-safe: a nil report ignores the call, so
// strict code paths can share lenient plumbing without allocating.
func (r *Report) Add(d Diagnostic) {
	if r == nil {
		return
	}
	r.Diags = append(r.Diags, d)
}

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Merge folds another report into this one.
func (r *Report) Merge(o *Report) {
	if r == nil || o == nil {
		return
	}
	r.Diags = append(r.Diags, o.Diags...)
	r.Records += o.Records
	r.Skipped += o.Skipped
}

// Budget bounds how many records a lenient build may skip per source
// before the build fails. The zero value is the strictest lenient
// setting: any skipped record exceeds it.
type Budget struct {
	// Max is the absolute cap on skipped records; negative means
	// unlimited.
	Max int
	// Percent, when > 0, is an additional cap as a percentage of the
	// records attempted: skipping is allowed while
	// skipped*100 <= percent*records.
	Percent float64
	// usePercent marks that the budget was given as a percentage, in
	// which case Max is ignored.
	usePercent bool
}

// Unlimited is the no-op budget: skip as much as necessary.
var Unlimited = Budget{Max: -1}

// ParseBudget parses a -max-source-errors value: an absolute count
// ("10"), a percentage ("5%", "2.5%"), or "all" for unlimited.
func ParseBudget(s string) (Budget, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return Unlimited, nil
	}
	if p, ok := strings.CutSuffix(s, "%"); ok {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil || f < 0 || f > 100 {
			return Budget{}, fmt.Errorf("diag: bad error budget %q: want a percentage in [0,100]", s)
		}
		return Budget{Percent: f, usePercent: true}, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return Budget{}, fmt.Errorf("diag: bad error budget %q: want a non-negative count, a percentage, or \"all\"", s)
	}
	return Budget{Max: n}, nil
}

// String renders the budget the way ParseBudget reads it.
func (b Budget) String() string {
	if b.usePercent {
		return strconv.FormatFloat(b.Percent, 'g', -1, 64) + "%"
	}
	if b.Max < 0 {
		return "all"
	}
	return strconv.Itoa(b.Max)
}

// Exceeded reports whether skipping `skipped` of `records` attempted
// records blows the budget.
func (b Budget) Exceeded(skipped, records int) bool {
	if skipped == 0 {
		return false
	}
	if b.usePercent {
		return float64(skipped)*100 > b.Percent*float64(records)
	}
	return b.Max >= 0 && skipped > b.Max
}

// BudgetError reports that one source skipped more records than its
// budget allows. It is a typed error so the CLI can map it to a
// distinct exit code.
type BudgetError struct {
	Source  string
	Skipped int
	Records int
	Budget  Budget
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("source %s: %d of %d records malformed, exceeding the error budget (%s)",
		e.Source, e.Skipped, e.Records, e.Budget)
}
