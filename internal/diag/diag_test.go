package diag

import (
	"errors"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Source: "csv:people.csv", Line: 7, Col: 3, Severity: Error, Message: "row has 2 fields, header has 4"}
	want := "csv:people.csv:7:3: error: row has 2 fields, header has 4"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	w := Diagnostic{Source: "bib:p.bib", Severity: Warning, Message: "m"}
	if got, want := w.String(), "bib:p.bib:0:0: warning: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortOrdersBySourcePositionSeverity(t *testing.T) {
	ds := []Diagnostic{
		{Source: "b", Line: 2, Message: "later"},
		{Source: "a", Line: 9, Message: "z"},
		{Source: "a", Line: 9, Severity: Error, Message: "a"},
		{Source: "a", Line: 1, Col: 5, Message: "col5"},
		{Source: "a", Line: 1, Col: 2, Message: "col2"},
	}
	Sort(ds)
	got := ""
	for _, d := range ds {
		got += d.String() + "\n"
	}
	want := "a:1:2: warning: col2\n" +
		"a:1:5: warning: col5\n" +
		"a:9:0: error: a\n" +
		"a:9:0: warning: z\n" +
		"b:2:0: warning: later\n"
	if got != want {
		t.Errorf("sorted order:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportNilSafety(t *testing.T) {
	var r *Report
	r.Add(Diagnostic{Message: "ignored"})
	if r.Errors() != 0 {
		t.Error("nil report should count zero errors")
	}
	r.Merge(&Report{Records: 3})
}

func TestReportCounts(t *testing.T) {
	r := &Report{Records: 10, Skipped: 2}
	r.Add(Diagnostic{Severity: Error, Message: "bad"})
	r.Add(Diagnostic{Severity: Warning, Message: "meh"})
	r.Add(Diagnostic{Severity: Error, Message: "bad2"})
	if r.Errors() != 2 {
		t.Errorf("Errors() = %d, want 2", r.Errors())
	}
	o := &Report{Records: 5, Skipped: 1, Diags: []Diagnostic{{Message: "x"}}}
	r.Merge(o)
	if r.Records != 15 || r.Skipped != 3 || len(r.Diags) != 4 {
		t.Errorf("after merge: %+v", r)
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		str     string
	}{
		{"10", false, "10"},
		{"0", false, "0"},
		{"5%", false, "5%"},
		{"2.5%", false, "2.5%"},
		{"all", false, "all"},
		{"", false, "all"},
		{"-1", true, ""},
		{"101%", true, ""},
		{"x", true, ""},
	}
	for _, c := range cases {
		b, err := ParseBudget(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseBudget(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && b.String() != c.str {
			t.Errorf("ParseBudget(%q).String() = %q, want %q", c.in, b.String(), c.str)
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	abs := Budget{Max: 2}
	if abs.Exceeded(2, 100) {
		t.Error("2 of 100 within Max=2")
	}
	if !abs.Exceeded(3, 100) {
		t.Error("3 of 100 exceeds Max=2")
	}
	pct, err := ParseBudget("10%")
	if err != nil {
		t.Fatal(err)
	}
	if pct.Exceeded(1, 10) {
		t.Error("1 of 10 is exactly 10%, within budget")
	}
	if !pct.Exceeded(2, 10) {
		t.Error("2 of 10 exceeds 10%")
	}
	if Unlimited.Exceeded(1000, 1000) {
		t.Error("unlimited budget never exceeds")
	}
	var zero Budget
	if !zero.Exceeded(1, 1000) {
		t.Error("zero budget: any skip exceeds")
	}
	if zero.Exceeded(0, 0) {
		t.Error("no skips never exceeds")
	}
}

func TestBudgetErrorIsTyped(t *testing.T) {
	var err error = &BudgetError{Source: "csv:x", Skipped: 5, Records: 9, Budget: Budget{Max: 2}}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatal("errors.As should find *BudgetError")
	}
	msg := err.Error()
	for _, want := range []string{"csv:x", "5 of 9", "(2)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q should mention %q", msg, want)
		}
	}
}
