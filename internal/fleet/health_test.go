package fleet

import (
	"context"
	"testing"
	"time"

	"strudel/internal/obs"
)

func testGrayState(clk *fakeClock, m *obs.FleetMetrics, counts ...int) *grayState {
	return newGrayState(GrayConfig{
		Breaker: BreakerConfig{
			Failures:       3,
			Window:         8,
			Rate:           0.5,
			MinSamples:     4,
			OpenFor:        time.Second,
			HalfOpenProbes: 1,
			CloseAfter:     2,
		},
		SuspectAfter: 2,
		SlowFactor:   4,
		SlowMin:      5 * time.Millisecond,
		Clock:        clk.Now,
	}, counts, m)
}

// record feeds one attempt outcome through the acquire/release path.
func record(t *testing.T, h *ReplicaHealth, outcome attemptOutcome, elapsed time.Duration) {
	t.Helper()
	rel, ok := h.acquire(true)
	if !ok {
		t.Fatal("forced acquire must always admit")
	}
	rel(outcome, elapsed)
}

func TestHealthStateLifecycle(t *testing.T) {
	clk := newFakeClock()
	g := testGrayState(clk, nil, 2)
	h := g.Health(0, 0)
	if h.State() != HealthHealthy {
		t.Fatal("fresh replica should be healthy")
	}

	// Two consecutive failures: suspect (below the trip threshold).
	record(t, h, outcomeFail, 0)
	record(t, h, outcomeFail, 0)
	if h.State() != HealthSuspect {
		t.Fatalf("after SuspectAfter failures: %v, want suspect", h.State())
	}

	// A third trips the breaker: ejected.
	record(t, h, outcomeFail, 0)
	if h.State() != HealthEjected {
		t.Fatalf("after breaker trip: %v, want ejected", h.State())
	}

	// Cool-down elapses: probing.
	clk.Advance(time.Second)
	if h.State() != HealthProbing {
		t.Fatalf("after cool-down: %v, want probing", h.State())
	}

	// Two successful probes close the breaker: healthy again.
	record(t, h, outcomeProbeOK, time.Millisecond)
	record(t, h, outcomeProbeOK, time.Millisecond)
	if h.State() != HealthHealthy {
		t.Fatalf("after recovery: %v, want healthy", h.State())
	}
}

func TestSlowReplicaDemotedToSuspect(t *testing.T) {
	clk := newFakeClock()
	var m obs.FleetMetrics
	g := testGrayState(clk, &m, 2)
	fast, slow := g.Health(0, 0), g.Health(0, 1)
	for i := 0; i < 10; i++ {
		record(t, fast, outcomeOK, 2*time.Millisecond)
		record(t, slow, outcomeOK, 100*time.Millisecond)
	}
	if fast.State() != HealthHealthy {
		t.Fatalf("fast replica: %v, want healthy", fast.State())
	}
	if slow.State() != HealthSuspect {
		t.Fatalf("slow replica: %v, want suspect (ewma %v vs min %v)",
			slow.State(), slow.ewmaNanos(), g.minEwma())
	}
	if m.SlowDemotions.Load() != 1 {
		t.Fatalf("SlowDemotions = %d, want 1 (counted on the transition, not per check)", m.SlowDemotions.Load())
	}
	// Uniform slowness is load, not grayness: when the fast sibling
	// degrades to the same latency, the demotion lifts.
	for i := 0; i < 40; i++ {
		record(t, fast, outcomeOK, 100*time.Millisecond)
	}
	if slow.State() != HealthHealthy {
		t.Fatalf("uniformly slow fleet: %v, want healthy", slow.State())
	}
}

func TestRoutingOrderPrefersHealthy(t *testing.T) {
	clk := newFakeClock()
	g := testGrayState(clk, nil, 3)
	// Trip replica 1's breaker.
	for i := 0; i < 3; i++ {
		record(t, g.Health(0, 1), outcomeFail, 0)
	}
	for trial := 0; trial < 6; trial++ {
		order := g.order(0)
		if len(order) != 3 {
			t.Fatalf("order length %d", len(order))
		}
		if order[len(order)-1] != 1 {
			t.Fatalf("ejected replica must sort last regardless of rotation: %v", order)
		}
		if order[0] == 1 {
			t.Fatalf("ejected replica routed first: %v", order)
		}
	}
	// Rotation still alternates the healthy pair.
	first := map[int]bool{}
	for trial := 0; trial < 6; trial++ {
		first[g.order(0)[0]] = true
	}
	if !first[0] || !first[2] {
		t.Fatalf("rotation should spread primaries over healthy replicas, got %v", first)
	}
}

func TestRecoveryHintTracksBreakerCooldown(t *testing.T) {
	clk := newFakeClock()
	g := newGrayState(GrayConfig{
		Breaker: BreakerConfig{Failures: 1, OpenFor: 10 * time.Second},
		Clock:   clk.Now,
	}, []int{2}, nil)
	if got := g.recoveryHint(0); got != time.Second {
		t.Fatalf("no open breakers: hint %v, want the 1s floor", got)
	}
	record(t, g.Health(0, 0), outcomeFail, 0)
	record(t, g.Health(0, 1), outcomeFail, 0)
	if got := g.recoveryHint(0); got != 10*time.Second {
		t.Fatalf("hint %v, want the soonest cool-down 10s", got)
	}
	clk.Advance(7 * time.Second)
	if got := g.recoveryHint(0); got != 3*time.Second {
		t.Fatalf("hint %v, want remaining 3s", got)
	}
	clk.Advance(5 * time.Second)
	if got := g.recoveryHint(0); got != time.Second {
		t.Fatalf("cool-down over: hint %v, want the 1s floor", got)
	}
}

func TestHedgeDelayFromQuantile(t *testing.T) {
	clk := newFakeClock()
	g := newGrayState(GrayConfig{
		HedgeMinDelay: 2 * time.Millisecond,
		HedgeMaxDelay: 500 * time.Millisecond,
		Clock:         clk.Now,
	}, []int{2}, nil)
	if got := g.hedgeDelay(); got != 2*time.Millisecond {
		t.Fatalf("cold state: hedge delay %v, want the floor", got)
	}
	for i := 0; i < 100; i++ {
		g.observeFetchLatency(100 * time.Millisecond)
	}
	got := g.hedgeDelay()
	if got < 100*time.Millisecond || got > 500*time.Millisecond {
		t.Fatalf("hedge delay %v, want within [p95 bucket, max clamp]", got)
	}
}

func TestProbesHealEjectedReplica(t *testing.T) {
	var m obs.FleetMetrics
	g := newGrayState(GrayConfig{
		Breaker:       BreakerConfig{Failures: 1, OpenFor: time.Millisecond, CloseAfter: 1},
		ProbeInterval: 5 * time.Millisecond,
	}, []int{1}, &m)
	h := g.Health(0, 0)
	record(t, h, outcomeFail, 0)
	if h.State() != HealthEjected {
		t.Fatal("not ejected after trip")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.startProbes(ctx, func(ctx context.Context, shard, idx int) error { return nil })
	deadline := time.Now().Add(2 * time.Second)
	for h.State() != HealthHealthy && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h.State() != HealthHealthy {
		t.Fatalf("probes should heal with zero user traffic, state=%v", h.State())
	}
	if m.Probes.Load() == 0 {
		t.Fatal("Probes counter not incremented")
	}
	if m.BreakerCloses.Load() == 0 {
		t.Fatal("BreakerCloses not counted on probe-driven recovery")
	}
}

func TestHealthSnapshotShape(t *testing.T) {
	clk := newFakeClock()
	g := testGrayState(clk, nil, 2, 1)
	record(t, g.Health(0, 1), outcomeFail, 0)
	record(t, g.Health(0, 1), outcomeFail, 0)
	snap := g.Snapshot()
	if snap["shard0_replica0"] != "healthy" {
		t.Fatalf("shard0_replica0 = %v", snap["shard0_replica0"])
	}
	if snap["shard0_replica1"] != "suspect" {
		t.Fatalf("shard0_replica1 = %v", snap["shard0_replica1"])
	}
	if snap["shard1_replica0"] != "healthy" {
		t.Fatalf("shard1_replica0 = %v", snap["shard1_replica0"])
	}
	for _, k := range []string{"hedge_delay_nanos", "hedge_tokens", "retry_tokens"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %q", k)
		}
	}
}
