package fleet

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"strudel/internal/obs"
	"strudel/internal/repo"
)

func TestEdgeConditionalGets(t *testing.T) {
	s := buildSchema(t)
	g0 := genSiteData(1)
	f := newTestFleet(t, s, g0, 2, 1)
	m := &obs.FleetMetrics{}
	e := NewEdge(f)
	e.Obs = m
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	ref := newReference(t, s, g0)
	wantRoot, err := ref.RenderPage(ref.Ev.EntryPoints()[0])
	if err != nil {
		t.Fatalf("reference render: %v", err)
	}

	status, hdr, body := get(t, ts, "/", nil)
	if status != http.StatusOK {
		t.Fatalf("GET / = %d", status)
	}
	if body != wantRoot {
		t.Fatalf("root page differs from reference:\n got %q\nwant %q", body, wantRoot)
	}
	etag := hdr.Get("ETag")
	if etag == "" || etagGen(t, etag) != 0 {
		t.Fatalf("ETag %q, want generation-0 tag", etag)
	}
	if hdr.Get("Last-Modified") == "" {
		t.Fatal("missing Last-Modified")
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("Cache-Control = %q, want no-cache", cc)
	}

	// A matching validator answers 304 with no body.
	status, hdr2, body := get(t, ts, "/", map[string]string{"If-None-Match": etag})
	if status != http.StatusNotModified || body != "" {
		t.Fatalf("conditional GET = %d (%d bytes), want 304 empty", status, len(body))
	}
	if hdr2.Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", hdr2.Get("ETag"), etag)
	}
	// Weak compare and lists match too.
	status, _, _ = get(t, ts, "/", map[string]string{"If-None-Match": `"other", W/` + etag})
	if status != http.StatusNotModified {
		t.Fatalf("list conditional GET = %d, want 304", status)
	}
	status, _, _ = get(t, ts, "/", map[string]string{"If-Modified-Since": hdr.Get("Last-Modified")})
	if status != http.StatusNotModified {
		t.Fatalf("If-Modified-Since GET = %d, want 304", status)
	}
	if m.NotModified.Load() < 3 {
		t.Fatalf("NotModified counter = %d, want >= 3", m.NotModified.Load())
	}

	// A hot reload bumps the generation: the same validator now earns a
	// full 200 with a new generation-1 tag and the new content.
	g1 := mutateSiteData(1)
	f.SwapData(repo.NewIndexed(g1), nil)
	ref1 := newReference(t, s, g1)
	want1, err := ref1.RenderPage(ref1.Ev.EntryPoints()[0])
	if err != nil {
		t.Fatalf("reference render gen1: %v", err)
	}
	status, hdr, body = get(t, ts, "/", map[string]string{"If-None-Match": etag})
	if status != http.StatusOK {
		t.Fatalf("post-reload conditional GET = %d, want 200", status)
	}
	if body != want1 {
		t.Fatalf("post-reload body differs from reference")
	}
	if ng := etagGen(t, hdr.Get("ETag")); ng != 1 {
		t.Fatalf("post-reload ETag generation = %d, want 1", ng)
	}
}

func TestEdgeStaleWhileRevalidate(t *testing.T) {
	s := buildSchema(t)
	g0 := genSiteData(2)
	f := newTestFleet(t, s, g0, 1, 1)
	m := &obs.FleetMetrics{}
	e := NewEdge(f)
	e.Obs = m
	e.StaleFor = 30 * time.Second // wide window: the stale serve must be observable
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	// Prime the cache at generation 0, then reload.
	_, hdr, body0 := get(t, ts, "/", nil)
	if g := etagGen(t, hdr.Get("ETag")); g != 0 {
		t.Fatalf("primed ETag generation = %d", g)
	}
	f.SwapData(repo.NewIndexed(mutateSiteData(2)), nil)

	// Inside the window an unconditional GET serves the stale bytes
	// immediately (tagged with their own generation) and revalidates in
	// the background.
	status, hdr, body := get(t, ts, "/", nil)
	if status != http.StatusOK || body != body0 {
		t.Fatalf("stale GET = %d, body changed = %v; want 200 with gen-0 bytes", status, body != body0)
	}
	if g := etagGen(t, hdr.Get("ETag")); g != 0 {
		t.Fatalf("stale response ETag generation = %d, want 0", g)
	}
	if m.StaleServed.Load() == 0 {
		t.Fatal("StaleServed counter did not move")
	}

	// The background revalidation lands shortly: poll until the edge
	// serves generation 1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, hdr, _ = get(t, ts, "/", nil)
		if etagGen(t, hdr.Get("ETag")) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never revalidated to generation 1")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Revalidations.Load() == 0 {
		t.Fatal("Revalidations counter did not move")
	}
}

func TestEdgeStaleDisabledFetchesSynchronously(t *testing.T) {
	s := buildSchema(t)
	f := newTestFleet(t, s, genSiteData(3), 1, 1)
	e := NewEdge(f)
	e.StaleFor = 0
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	get(t, ts, "/", nil)
	f.SwapData(repo.NewIndexed(mutateSiteData(3)), nil)
	_, hdr, _ := get(t, ts, "/", nil)
	if g := etagGen(t, hdr.Get("ETag")); g != 1 {
		t.Fatalf("with StaleFor=0 post-reload GET served generation %d, want 1", g)
	}
}

func TestEdgeCacheBound(t *testing.T) {
	s := buildSchema(t)
	g := genSiteData(4)
	f := newTestFleet(t, s, g, 2, 1)
	e := NewEdge(f)
	e.MaxEntries = 4
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	refs := crawlRefs(t, newReference(t, s, g))
	if len(refs) < 8 {
		t.Fatalf("site too small for eviction test: %d pages", len(refs))
	}
	for _, r := range refs {
		if status, _, _ := get(t, ts, PageURL(r), nil); status != http.StatusOK {
			t.Fatalf("GET %s = %d", PageURL(r), status)
		}
	}
	if n := e.CacheSize(); n > 4 {
		t.Fatalf("cache grew to %d entries past MaxEntries=4", n)
	}
}

func TestEdgeBadRequests(t *testing.T) {
	s := buildSchema(t)
	f := newTestFleet(t, s, genSiteData(5), 1, 1)
	ts := httptest.NewServer(NewEdge(f).Handler())
	defer ts.Close()

	if status, _, _ := get(t, ts, "/page/Pub;zzz", nil); status != http.StatusBadRequest {
		t.Errorf("undecodable key = %d, want 400", status)
	}
	if status, _, _ := get(t, ts, "/page/Nope", nil); status != http.StatusNotFound {
		t.Errorf("unknown page fn = %d, want 404", status)
	}
	if status, _, _ := get(t, ts, "/nosuchpath", nil); status != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", status)
	}
}

func TestEdgeHealthz(t *testing.T) {
	s := buildSchema(t)
	f := newTestFleet(t, s, genSiteData(6), 1, 1)
	ts := httptest.NewServer(NewEdge(f).Handler())
	defer ts.Close()

	status, hdr, body := get(t, ts, "/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz Content-Type = %q", ct)
	}
	if body == "" {
		t.Fatal("healthz returned empty body")
	}
}
