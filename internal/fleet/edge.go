package fleet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/htmlgen"
	"strudel/internal/obs"
)

// Cluster is what the edge fronts: something that can route a page key
// to a shard, render the page there (with replica failover), and report
// the current data generation. *Fleet implements it in-process; the
// test harness also implements it over real HTTP replicas to prove the
// network path changes nothing.
type Cluster interface {
	Route(key string) int
	Fetch(ctx context.Context, shard int, key string, ref dynamic.PageRef) (body string, gen int64, err error)
	Generation() int64
	GenTime(gen int64) time.Time
	LastSwap() time.Time
	EntryPoints() []dynamic.PageRef
	KnownFn(fn string) bool
}

// Edge is the HTTP front of the fleet: it routes page requests by
// consistent-hashed page key, caches rendered pages keyed by (page,
// generation), serves conditional GETs with generation-scoped ETags and
// Last-Modified, serves stale pages inside a bounded
// stale-while-revalidate window after a hot reload (refreshing in the
// background), and degrades to 503 + Retry-After when a shard has no
// live replica.
//
// Cache coherence is by generation, not TTL: a swap bumps the fleet
// generation, which instantly reclassifies every cached page as stale —
// no invalidation fan-out, no stale page older than the SWR window.
type Edge struct {
	Cluster Cluster
	// Root overrides the page served at "/"; zero Fn uses the first
	// entry point.
	Root dynamic.PageRef
	// StaleFor bounds how long after a generation bump a stale cached
	// page may still be served while a fresh one is fetched in the
	// background. 0 disables stale serving (every stale hit refetches
	// synchronously).
	StaleFor time.Duration
	// RequestTimeout bounds each page request (and each background
	// revalidation); 0 disables.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served page requests; excess is
	// shed with 503 + Retry-After. 0 means unlimited.
	MaxInflight int
	// MaxEntries bounds the page cache; past it the least recently used
	// entry is evicted. 0 means DefaultMaxEntries.
	MaxEntries int
	// Health is reported by /healthz (shared with the reloader).
	Health *dynamic.Health
	// Obs receives edge counters and latency; nil disables.
	Obs *obs.FleetMetrics
	// Logger receives server-side error detail; nil uses the default.
	Logger *log.Logger
	// Now is the clock used for staleness decisions; nil means time.Now.
	// A test seam: the stale-while-revalidate boundary is exact, so
	// tests pin the clock instead of racing it.
	Now func() time.Time

	mu     sync.Mutex
	cache  map[string]*edgeEntry
	reval  map[string]bool // page keys with a background revalidation in flight
	clock  int64           // LRU tick
	inited bool
}

// DefaultMaxEntries is the page-cache bound when MaxEntries is 0.
const DefaultMaxEntries = 8192

// edgeEntry is one cached page: the bytes, the generation that fully
// determined them, and the derived validators.
type edgeEntry struct {
	body    string
	gen     int64
	etag    string
	lastMod time.Time
	used    int64
}

// NewEdge returns an edge over a cluster.
func NewEdge(c Cluster) *Edge {
	return &Edge{
		Cluster:        c,
		StaleFor:       2 * time.Second,
		RequestTimeout: 10 * time.Second,
		Health:         dynamic.NewHealth(),
	}
}

func (e *Edge) now() time.Time {
	if e.Now != nil {
		return e.Now()
	}
	return time.Now()
}

func (e *Edge) logf(format string, args ...any) {
	if e.Logger != nil {
		e.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (e *Edge) init() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inited {
		e.cache = map[string]*edgeEntry{}
		e.reval = map[string]bool{}
		e.inited = true
	}
}

// ETag renders the generation-scoped entity tag of a page body. The
// generation half makes a hot reload invalidate every client-held
// validator at once (a conditional GET after a reload always gets a
// full 200, even for a byte-identical page); the content half
// distinguishes pages within a generation.
func ETag(gen int64, body string) string {
	return fmt.Sprintf(`"g%d-%s"`, gen, htmlgen.PageHash(body))
}

// Handler returns the edge's HTTP handler:
// recovery(healthz | shed(deadline(metrics(pages)))), the same
// middleware contract as the single-evaluator server.
func (e *Edge) Handler() http.Handler {
	e.init()
	pages := http.NewServeMux()
	pages.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		root := e.Root
		if root.Fn == "" {
			roots := e.Cluster.EntryPoints()
			if len(roots) == 0 {
				http.Error(w, "site has no entry points", http.StatusNotFound)
				return
			}
			root = roots[0]
		}
		e.servePage(w, r, EncodeRef(root), root)
	})
	pages.HandleFunc("/page/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/page/")
		key, err := url.PathUnescape(raw)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		ref, err := DecodeRef(key)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		if !e.Cluster.KnownFn(ref.Fn) {
			http.Error(w, "unknown page "+ref.Fn, http.StatusNotFound)
			return
		}
		// Canonicalize so cache keys and routing are independent of how
		// the client spelled the key.
		e.servePage(w, r, EncodeRef(ref), ref)
	})

	root := http.NewServeMux()
	root.HandleFunc("/healthz", e.serveHealth)
	root.Handle("/", e.withShedding(e.withDeadline(e.withMetrics(pages))))
	return e.withRecovery(root)
}

func (e *Edge) withMetrics(next http.Handler) http.Handler {
	if e.Obs == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e.Obs.EdgeRequests.Inc()
		start := time.Now()
		defer func() { e.Obs.EdgeNanos.Observe(int64(time.Since(start))) }()
		next.ServeHTTP(w, r)
	})
}

func (e *Edge) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				e.logf("fleet: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (e *Edge) withShedding(next http.Handler) http.Handler {
	if e.MaxInflight <= 0 {
		return next
	}
	sem := make(chan struct{}, e.MaxInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, retry shortly", http.StatusServiceUnavailable)
		}
	})
}

func (e *Edge) withDeadline(next http.Handler) http.Handler {
	if e.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), e.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (e *Edge) serveHealth(w http.ResponseWriter, r *http.Request) {
	h := e.Health
	if h == nil {
		h = dynamic.NewHealth()
	}
	e.mu.Lock()
	n := len(e.cache)
	e.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(h.StatusJSON(n))
}

// lookup returns the cached entry for a key, touching its LRU stamp.
func (e *Edge) lookup(key string) *edgeEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent := e.cache[key]
	if ent != nil {
		e.clock++
		ent.used = e.clock
	}
	return ent
}

// store caches a fetched page, evicting the least recently used entry
// past the bound. An entry older than what is already cached for the
// key (a slow fetch racing a fresher one) is discarded.
func (e *Edge) store(key string, ent *edgeEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if old := e.cache[key]; old != nil && old.gen > ent.gen {
		return
	}
	maxN := e.MaxEntries
	if maxN <= 0 {
		maxN = DefaultMaxEntries
	}
	if _, exists := e.cache[key]; !exists && len(e.cache) >= maxN {
		var lruKey string
		var lruUsed int64 = 1<<63 - 1
		for k, v := range e.cache {
			if v.used < lruUsed {
				lruKey, lruUsed = k, v.used
			}
		}
		delete(e.cache, lruKey)
	}
	e.clock++
	ent.used = e.clock
	e.cache[key] = ent
}

// fetch renders a page through the cluster and wraps it as a cache
// entry.
func (e *Edge) fetch(ctx context.Context, key string, ref dynamic.PageRef) (*edgeEntry, error) {
	body, gen, err := e.Cluster.Fetch(ctx, e.Cluster.Route(key), key, ref)
	if err != nil {
		return nil, err
	}
	return &edgeEntry{
		body:    body,
		gen:     gen,
		etag:    ETag(gen, body),
		lastMod: e.Cluster.GenTime(gen).Truncate(time.Second),
	}, nil
}

// revalidate refreshes a stale entry in the background, single-flight
// per page key.
func (e *Edge) revalidate(key string, ref dynamic.PageRef) {
	e.mu.Lock()
	if e.reval[key] {
		e.mu.Unlock()
		return
	}
	e.reval[key] = true
	e.mu.Unlock()
	if e.Obs != nil {
		e.Obs.Revalidations.Inc()
	}
	go func() {
		defer func() {
			e.mu.Lock()
			delete(e.reval, key)
			e.mu.Unlock()
		}()
		ctx := context.Background()
		if e.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.RequestTimeout)
			defer cancel()
		}
		ent, err := e.fetch(ctx, key, ref)
		if err != nil {
			e.logf("fleet: background revalidation of %s failed: %v", key, err)
			return
		}
		e.store(key, ent)
	}()
}

// servePage is the edge's request path. Freshness is generational:
//
//   - entry.gen ≥ current generation → fresh: serve from cache,
//     answering a matching If-None-Match with 304.
//   - entry.gen < current, within StaleFor of the swap → serve the
//     stale bytes now (tagged with their own generation's validators)
//     and revalidate in the background. Conditional requests are the
//     exception: a validator cannot be confirmed against a stale entry,
//     so they revalidate synchronously — which is what makes "304 until
//     reload, 200 with a new ETag right after" observable.
//   - otherwise → fetch synchronously from the owning shard.
func (e *Edge) servePage(w http.ResponseWriter, r *http.Request, key string, ref dynamic.PageRef) {
	cur := e.Cluster.Generation()
	ent := e.lookup(key)
	conditional := r.Header.Get("If-None-Match") != "" || r.Header.Get("If-Modified-Since") != ""

	switch {
	case ent != nil && ent.gen >= cur:
		if e.Obs != nil {
			e.Obs.CacheHits.Inc()
		}
	case ent != nil && !conditional && e.StaleFor > 0 && e.now().Sub(e.Cluster.LastSwap()) <= e.StaleFor:
		if e.Obs != nil {
			e.Obs.StaleServed.Inc()
		}
		e.revalidate(key, ref)
	default:
		if e.Obs != nil {
			if ent == nil {
				e.Obs.CacheMisses.Inc()
			} else {
				e.Obs.Revalidations.Inc()
			}
		}
		fresh, err := e.fetch(r.Context(), key, ref)
		if err != nil {
			e.failRequest(w, r, err)
			return
		}
		e.store(key, fresh)
		ent = fresh
	}
	e.writeEntry(w, r, ent)
}

// writeEntry emits a cache entry, honoring conditional validators.
func (e *Edge) writeEntry(w http.ResponseWriter, r *http.Request, ent *edgeEntry) {
	h := w.Header()
	h.Set("ETag", ent.etag)
	h.Set("Last-Modified", ent.lastMod.UTC().Format(http.TimeFormat))
	h.Set("Cache-Control", "no-cache") // validators, not TTLs, drive freshness
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if etagMatch(inm, ent.etag) {
			if e.Obs != nil {
				e.Obs.NotModified.Inc()
			}
			w.WriteHeader(http.StatusNotModified)
			return
		}
	} else if ims := r.Header.Get("If-Modified-Since"); ims != "" {
		if t, err := http.ParseTime(ims); err == nil && !ent.lastMod.UTC().After(t) {
			if e.Obs != nil {
				e.Obs.NotModified.Inc()
			}
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, ent.body)
}

// etagMatch implements the If-None-Match list ("*" or comma-separated
// entity tags; weak compare, so W/ prefixes are ignored).
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		t := strings.TrimSpace(part)
		t = strings.TrimPrefix(t, "W/")
		if t == etag {
			return true
		}
	}
	return false
}

// failRequest maps fetch errors to responses: a dead shard is 503 +
// Retry-After (the fleet may heal), a deadline 504, everything else a
// sanitized 500 with detail logged server-side only.
func (e *Edge) failRequest(w http.ResponseWriter, r *http.Request, err error) {
	var down ErrShardDown
	switch {
	case errors.As(err, &down):
		e.logf("fleet: %s: %v", r.URL.Path, err)
		w.Header().Set("Retry-After", retryAfterSeconds(down.RetryAfter))
		http.Error(w, "shard unavailable, retry shortly", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		e.logf("fleet: %s: request deadline exceeded: %v", r.URL.Path, err)
		http.Error(w, "request timed out", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		e.logf("fleet: %s: request cancelled by client: %v", r.URL.Path, err)
	default:
		e.logf("fleet: %s: internal error: %v", r.URL.Path, err)
		http.Error(w, "internal server error", http.StatusInternalServerError)
	}
}

// retryAfterSeconds formats a recovery hint as a Retry-After header
// value: whole seconds, rounded up, at least 1 (clients treat 0 as
// "retry immediately", which defeats the point of the hint).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// CacheSize returns the number of cached pages (for /healthz and
// tests).
func (e *Edge) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}
