package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/obs"
)

// hedgeGray builds a grayState for fetch-policy tests: real clock (the
// hedge timer needs one), tight hedge floor, no quantile warm-up
// surprises.
func hedgeGray(m *obs.FleetMetrics, replicas int, mut func(*GrayConfig)) *grayState {
	cfg := GrayConfig{
		HedgeMinDelay: 5 * time.Millisecond,
		HedgeMaxDelay: 5 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	return newGrayState(cfg, []int{replicas}, m)
}

func TestFetchHedgeRescuesSlowReplica(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, nil)
	// The first attempt launched is slow; any later one answers
	// immediately. Keyed by launch order, not replica index, so the
	// test is independent of routing rotation.
	var calls atomic.Int32
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		if calls.Add(1) == 1 {
			select {
			case <-time.After(400 * time.Millisecond):
				return "slow", 1, nil
			case <-ctx.Done():
				return "", 0, ctx.Err()
			}
		}
		return "fast", 1, nil
	}
	start := time.Now()
	body, gen, err := g.fetch(context.Background(), 0, attempt)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if body != "fast" || gen != 1 {
		t.Fatalf("hedge should win: body=%q gen=%d", body, gen)
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("hedged fetch took %v, want well under the slow replica's 400ms", el)
	}
	if m.Hedges.Load() != 1 || m.HedgeWins.Load() != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Hedges.Load(), m.HedgeWins.Load())
	}
}

func TestFetchFailsOverOnReplicaDown(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, func(c *GrayConfig) { c.DisableHedge = true })
	var calls atomic.Int32
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		if calls.Add(1) == 1 {
			return "", 0, ErrReplicaDown
		}
		return "ok", 3, nil
	}
	body, _, err := g.fetch(context.Background(), 0, attempt)
	if err != nil || body != "ok" {
		t.Fatalf("failover: body=%q err=%v", body, err)
	}
	if m.Failovers.Load() != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers.Load())
	}
}

func TestFetchDeterministicErrorDoesNotFailOver(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, func(c *GrayConfig) { c.DisableHedge = true })
	pageErr := errors.New("template exploded")
	var calls atomic.Int32
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		calls.Add(1)
		return "", 7, pageErr
	}
	_, _, err := g.fetch(context.Background(), 0, attempt)
	if !errors.Is(err, pageErr) {
		t.Fatalf("err = %v, want the page error surfaced as-is", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d: a deterministic error must not burn siblings", calls.Load())
	}
	if m.Failovers.Load() != 0 {
		t.Fatal("deterministic errors must not count as failovers")
	}
}

func TestFetchAllReplicasDown(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, func(c *GrayConfig) { c.DisableHedge = true })
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		return "", 0, ErrReplicaDown
	}
	_, _, err := g.fetch(context.Background(), 0, attempt)
	var down ErrShardDown
	if !errors.As(err, &down) {
		t.Fatalf("err = %v, want ErrShardDown", err)
	}
	if down.Shard != 0 {
		t.Fatalf("shard = %d", down.Shard)
	}
	if down.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want at least the 1s floor", down.RetryAfter)
	}
	if m.ShardDown.Load() != 1 {
		t.Fatalf("ShardDown = %d, want 1", m.ShardDown.Load())
	}
}

func TestFetchAttemptTimeoutTriggersFailover(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, func(c *GrayConfig) {
		c.DisableHedge = true
		c.AttemptTimeout = 30 * time.Millisecond
	})
	var calls atomic.Int32
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // wedged until the attempt deadline
			return "", 0, ctx.Err()
		}
		return "ok", 1, nil
	}
	start := time.Now()
	body, _, err := g.fetch(context.Background(), 0, attempt)
	if err != nil || body != "ok" {
		t.Fatalf("body=%q err=%v", body, err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("stalled attempt held the fetch %v", el)
	}
	if m.Failovers.Load() != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers.Load())
	}
}

func TestFetchRetryBudgetBoundsFailover(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 3, func(c *GrayConfig) {
		c.DisableHedge = true
		c.RetryRatio = 0.001
		c.RetryBurst = 1
	})
	var calls atomic.Int32
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		calls.Add(1)
		return "", 0, ErrReplicaDown
	}
	_, _, err := g.fetch(context.Background(), 0, attempt)
	var down ErrShardDown
	if !errors.As(err, &down) {
		t.Fatalf("err = %v, want ErrShardDown", err)
	}
	// Primary + the single budgeted failover; the third replica was
	// never burned.
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (budget of 1 failover)", calls.Load())
	}
	if m.RetryBudgetExhausted.Load() == 0 {
		t.Fatal("RetryBudgetExhausted not counted")
	}
}

func TestFetchFailStaticWhenAllBreakersOpen(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, func(c *GrayConfig) {
		c.DisableHedge = true
		c.Breaker = BreakerConfig{Failures: 1, OpenFor: time.Hour}
	})
	// Trip every breaker.
	for i := 0; i < 2; i++ {
		rel, _ := g.Health(0, i).acquire(true)
		rel(outcomeFail, 0)
		if g.Health(0, i).State() != HealthEjected {
			t.Fatalf("replica %d not ejected", i)
		}
	}
	// The replicas actually recovered; only the breakers don't know
	// yet. Fail-static routing must try anyway and heal on success.
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		return "revived", 9, nil
	}
	body, _, err := g.fetch(context.Background(), 0, attempt)
	if err != nil || body != "revived" {
		t.Fatalf("fail-static pass: body=%q err=%v", body, err)
	}
	healed := false
	for i := 0; i < 2; i++ {
		if g.Health(0, i).Breaker().State() != BreakerOpen {
			healed = true
		}
	}
	if !healed {
		t.Fatal("a forced success should move some breaker off open")
	}
}

func TestFetchParentDeadlineSurfaces(t *testing.T) {
	g := hedgeGray(nil, 2, func(c *GrayConfig) { c.DisableHedge = true })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		<-ctx.Done()
		return "", 0, ctx.Err()
	}
	_, _, err := g.fetch(ctx, 0, attempt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the parent deadline", err)
	}
}

func TestFetchHedgeLoserFeedsSlownessEwma(t *testing.T) {
	var m obs.FleetMetrics
	g := hedgeGray(&m, 2, nil)
	var calls atomic.Int32
	slowIdx := int32(-1)
	attempt := func(ctx context.Context, idx int) (string, int64, error) {
		if calls.Add(1) == 1 {
			atomic.StoreInt32(&slowIdx, int32(idx))
			select {
			case <-time.After(150 * time.Millisecond):
				return "slow", 1, nil
			case <-ctx.Done():
				return "", 0, ctx.Err()
			}
		}
		return "fast", 1, nil
	}
	if _, _, err := g.fetch(context.Background(), 0, attempt); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	// The losing attempt's elapsed time lands in its EWMA: losing to a
	// hedge is slowness evidence even though no error occurred.
	idx := int(atomic.LoadInt32(&slowIdx))
	if idx < 0 {
		t.Fatal("slow attempt never launched")
	}
	// The loser finishes (and records) after the winner has already
	// returned, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for g.Health(0, idx).ewmaNanos() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e := g.Health(0, idx).ewmaNanos(); e == 0 {
		t.Fatal("hedge loser's latency should feed its EWMA")
	}
}
