package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/obs"
)

// This file is the gray-failure tolerance layer's state: a per-replica
// health state machine driven by both passive request outcomes and
// active probes, and the grayState bundle (health grid, latency
// tracking, hedge/retry budgets) shared by the in-process fleet and the
// over-the-wire HTTP cluster.
//
// The binary alive/dead model PR 8 shipped handles a killed replica;
// the common production failure is grayer — a replica that is slow, or
// up-down-up within seconds. Health states map onto routing policy:
//
//	healthy  — full traffic (breaker closed, not slow)
//	suspect  — routed only when no healthy sibling answers first; a
//	           replica with a short failure streak or a latency profile
//	           far above its siblings'
//	probing  — breaker half-open: a bounded trickle of trials
//	ejected  — breaker open: no traffic until the cool-down, except as
//	           the fail-static last resort when every sibling refuses
type HState int32

const (
	HealthHealthy HState = iota
	HealthSuspect
	HealthProbing
	HealthEjected
)

func (s HState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthProbing:
		return "probing"
	case HealthEjected:
		return "ejected"
	}
	return "unknown"
}

// GrayConfig tunes the gray-failure tolerance layer. The zero value
// takes every default; DisableHedge turns tail-latency hedging off.
type GrayConfig struct {
	// Breaker configures each replica's circuit breaker.
	Breaker BreakerConfig
	// SuspectAfter consecutive failures demote a replica to suspect
	// (still below the breaker's trip threshold).
	SuspectAfter int
	// SlowFactor demotes a replica to suspect when its latency EWMA
	// exceeds SlowFactor × the fastest sibling's EWMA and SlowMin —
	// the degraded-but-available regime where nothing errors but one
	// replica answers far slower than its peers. 0 disables.
	SlowFactor float64
	SlowMin    time.Duration

	// HedgeQuantile is the request-latency quantile that arms the hedge
	// timer: when the primary attempt outlives that quantile (clamped
	// to [HedgeMinDelay, HedgeMaxDelay]), the same render fires on the
	// next replica and the first success wins. HedgeRatio/HedgeBurst
	// bound hedges to a fraction of offered load (the global hedge
	// budget that prevents retry storms).
	HedgeQuantile float64
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	HedgeRatio    float64
	HedgeBurst    float64
	DisableHedge  bool

	// RetryRatio/RetryBurst bound failover retries the same way.
	RetryRatio float64
	RetryBurst float64

	// AttemptTimeout bounds each single replica attempt inside a fetch,
	// so a stalled replica triggers failover before the whole request
	// deadline burns down. 0 leaves attempts bounded only by the
	// request context.
	AttemptTimeout time.Duration

	// ProbeInterval is the active health-check period (per replica);
	// ProbeTimeout bounds each probe render. Probes run only once
	// StartHealthChecks is called.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// Clock is the test seam; nil means time.Now.
	Clock func() time.Time
}

func (c GrayConfig) withDefaults() GrayConfig {
	if c.Clock == nil {
		c.Clock = time.Now
	}
	// The breaker inherits the gray clock before its own defaulting
	// fills in time.Now.
	if c.Breaker.Clock == nil {
		c.Breaker.Clock = c.Clock
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.SlowFactor == 0 {
		c.SlowFactor = 4
	}
	if c.SlowMin <= 0 {
		c.SlowMin = 5 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 500 * time.Millisecond
	}
	if c.HedgeRatio <= 0 {
		c.HedgeRatio = 0.1
	}
	if c.HedgeBurst <= 0 {
		c.HedgeBurst = 32
	}
	if c.RetryRatio <= 0 {
		c.RetryRatio = 0.2
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	return c
}

// attemptOutcome classifies one finished replica attempt for health
// accounting.
type attemptOutcome int

const (
	// outcomeOK: the replica answered (even a deterministic page error
	// counts — the replica is alive and prompt).
	outcomeOK attemptOutcome = iota
	// outcomeFail: the replica refused, stalled past its attempt
	// deadline, or failed at the transport.
	outcomeFail
	// outcomeLost: the attempt was cancelled because a sibling won the
	// race (or the whole request died); no breaker signal, but the
	// elapsed time still feeds the slowness EWMA — losing to a hedge
	// is itself evidence of slowness.
	outcomeLost
	// outcomeProbeOK: an active probe succeeded; like outcomeOK but the
	// latency stays out of the hedge-delay quantile so slow-replica
	// probes cannot inflate everyone's hedge trigger.
	outcomeProbeOK
)

const ewmaAlpha = 0.2

// ReplicaHealth is one replica's health account: its breaker plus a
// latency EWMA.
type ReplicaHealth struct {
	g  *grayState
	br *Breaker

	mu      sync.Mutex
	ewma    float64 // nanoseconds; 0 = no samples yet
	wasSlow bool
}

// State derives the routing state from the breaker and the latency
// account.
func (h *ReplicaHealth) State() HState {
	switch h.br.State() {
	case BreakerOpen:
		return HealthEjected
	case BreakerHalfOpen:
		return HealthProbing
	}
	if h.br.ConsecutiveFailures() >= h.g.cfg.SuspectAfter || h.slow() {
		return HealthSuspect
	}
	return HealthHealthy
}

// Breaker exposes the underlying breaker (tests, /debug/vars).
func (h *ReplicaHealth) Breaker() *Breaker { return h.br }

func (h *ReplicaHealth) ewmaNanos() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ewma
}

func (h *ReplicaHealth) observeLatency(d time.Duration) {
	h.mu.Lock()
	if h.ewma == 0 {
		h.ewma = float64(d)
	} else {
		h.ewma = (1-ewmaAlpha)*h.ewma + ewmaAlpha*float64(d)
	}
	h.mu.Unlock()
}

// slow reports whether this replica's latency EWMA marks it as the
// gray one: far above the fastest sibling and above the absolute
// floor. Comparing against the minimum (not the mean) keeps a single
// slow replica from dragging the reference point toward itself, and
// leaves a uniformly loaded fleet alone.
func (h *ReplicaHealth) slow() bool {
	if h.g.cfg.SlowFactor <= 0 {
		return false
	}
	own := h.ewmaNanos()
	if own < float64(h.g.cfg.SlowMin) {
		return false
	}
	minSib := h.g.minEwma()
	if minSib == 0 {
		return false
	}
	isSlow := own > h.g.cfg.SlowFactor*minSib
	h.mu.Lock()
	if isSlow && !h.wasSlow {
		h.g.count(func(m *obs.FleetMetrics) { m.SlowDemotions.Inc() })
	}
	h.wasSlow = isSlow
	h.mu.Unlock()
	return isSlow
}

// releaseFn finishes an acquired attempt slot with its outcome.
type releaseFn func(outcome attemptOutcome, elapsed time.Duration)

// acquire admits one attempt against this replica. With forced=false a
// refusing breaker returns ok=false; forced=true always admits (the
// fail-static last resort and active probes) while still recording the
// outcome. The returned release must be called exactly once.
func (h *ReplicaHealth) acquire(forced bool) (releaseFn, bool) {
	ok, trial := h.br.Allow()
	if !ok && !forced {
		return nil, false
	}
	if trial {
		h.g.count(func(m *obs.FleetMetrics) { m.BreakerProbes.Inc() })
	}
	var once sync.Once
	rel := func(outcome attemptOutcome, elapsed time.Duration) {
		once.Do(func() {
			switch outcome {
			case outcomeOK, outcomeProbeOK:
				h.observeLatency(elapsed)
				if outcome == outcomeOK {
					h.g.observeFetchLatency(elapsed)
				}
				if _, closed := h.br.Record(true, trial); closed {
					h.g.count(func(m *obs.FleetMetrics) { m.BreakerCloses.Inc() })
				}
			case outcomeFail:
				if tripped, _ := h.br.Record(false, trial); tripped {
					h.g.count(func(m *obs.FleetMetrics) { m.BreakerTrips.Inc() })
				}
			case outcomeLost:
				if elapsed > 0 {
					h.observeLatency(elapsed)
				}
				// Release the trial slot without an outcome signal.
				if trial {
					h.br.ReleaseTrial()
				}
			}
		})
	}
	return rel, true
}

// grayState bundles the per-replica health grid with the fleet-wide
// latency histogram and token budgets. One instance backs the
// in-process Fleet; the HTTP cluster owns its own (the two are
// alternative data paths, never active at once for the same traffic).
type grayState struct {
	cfg GrayConfig
	// health[shard][replica]; shards may have differing replica counts
	// on the HTTP path.
	health [][]*ReplicaHealth
	lat    obs.Histogram // successful fetch latencies → hedge delay quantile
	hedge  *ratioBudget
	retry  *ratioBudget
	obs    *obs.FleetMetrics
	rr     []atomic.Uint32
}

// newGrayState builds the health grid for counts[shard] replicas per
// shard.
func newGrayState(cfg GrayConfig, counts []int, m *obs.FleetMetrics) *grayState {
	cfg = cfg.withDefaults()
	g := &grayState{
		cfg:   cfg,
		hedge: newRatioBudget(cfg.HedgeRatio, cfg.HedgeBurst),
		retry: newRatioBudget(cfg.RetryRatio, cfg.RetryBurst),
		obs:   m,
		rr:    make([]atomic.Uint32, len(counts)),
	}
	g.health = make([][]*ReplicaHealth, len(counts))
	for s, n := range counts {
		g.health[s] = make([]*ReplicaHealth, n)
		for i := 0; i < n; i++ {
			g.health[s][i] = &ReplicaHealth{g: g, br: newBreaker(cfg.Breaker)}
		}
	}
	return g
}

func uniformCounts(shards, replicas int) []int {
	counts := make([]int, shards)
	for i := range counts {
		counts[i] = replicas
	}
	return counts
}

func (g *grayState) count(f func(*obs.FleetMetrics)) {
	if g.obs != nil {
		f(g.obs)
	}
}

func (g *grayState) now() time.Time { return g.cfg.Clock() }

// Health returns one replica's health account.
func (g *grayState) Health(shard, i int) *ReplicaHealth { return g.health[shard][i] }

func (g *grayState) observeFetchLatency(d time.Duration) {
	g.lat.Observe(int64(d))
}

// minEwma returns the smallest latency EWMA across every replica with
// samples (the slowness reference point).
func (g *grayState) minEwma() float64 {
	min := 0.0
	for _, shard := range g.health {
		for _, h := range shard {
			if e := h.ewmaNanos(); e > 0 && (min == 0 || e < min) {
				min = e
			}
		}
	}
	return min
}

// hedgeDelay is the quantile-tracked delay before a hedge fires. Until
// enough samples exist the floor applies — hedging aggressively on a
// cold fleet is safe because the burst budget bounds it.
func (g *grayState) hedgeDelay() time.Duration {
	const minSamples = 16
	if g.lat.Count() < minSamples {
		return g.cfg.HedgeMinDelay
	}
	d := time.Duration(g.lat.Quantile(g.cfg.HedgeQuantile))
	if d < g.cfg.HedgeMinDelay {
		d = g.cfg.HedgeMinDelay
	}
	if d > g.cfg.HedgeMaxDelay {
		d = g.cfg.HedgeMaxDelay
	}
	return d
}

// order returns a shard's replica indices in routing order: the
// rotation spreads load, then a stable sort pushes suspect, probing,
// and ejected replicas toward the back without starving any of them.
func (g *grayState) order(shard int) []int {
	n := len(g.health[shard])
	start := int(g.rr[shard].Add(1))
	idxs := make([]int, n)
	prio := make([]int, n)
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		idxs[i] = idx
		prio[idx] = int(g.health[shard][idx].State())
	}
	sort.SliceStable(idxs, func(a, b int) bool { return prio[idxs[a]] < prio[idxs[b]] })
	return idxs
}

// recoveryHint estimates when a down shard is worth retrying: the
// soonest any of its breakers re-admits trials, clamped to [1s, 30s].
// This is what the edge's Retry-After derives from when the backend
// offered nothing better.
func (g *grayState) recoveryHint(shard int) time.Duration {
	if shard < 0 || shard >= len(g.health) {
		return time.Second
	}
	var soonest time.Duration
	for _, h := range g.health[shard] {
		if r := h.br.RetryIn(); r > 0 && (soonest == 0 || r < soonest) {
			soonest = r
		}
	}
	if soonest < time.Second {
		soonest = time.Second
	}
	if soonest > 30*time.Second {
		soonest = 30 * time.Second
	}
	return soonest
}

// Snapshot reports per-replica health states and the layer's derived
// signals — the /debug/vars "fleet_health" group.
func (g *grayState) Snapshot() map[string]any {
	out := map[string]any{
		"hedge_delay_nanos": int64(g.hedgeDelay()),
		"hedge_tokens":      g.hedge.Tokens(),
		"retry_tokens":      g.retry.Tokens(),
	}
	for s, shard := range g.health {
		for i, h := range shard {
			key := fmt.Sprintf("shard%d_replica%d", s, i)
			out[key] = h.State().String()
			out[key+"_ewma_nanos"] = int64(h.ewmaNanos())
		}
	}
	return out
}

// startProbes runs the active health checker: one goroutine per
// replica renders a cheap probe every ProbeInterval under ProbeTimeout
// and feeds the outcome into that replica's breaker. Probing is what
// turns "ejected" into a self-healing state even with zero user
// traffic, and what detects a replica that died silently before any
// user request finds out.
func (g *grayState) startProbes(ctx context.Context, probe func(ctx context.Context, shard, idx int) error) {
	for s := range g.health {
		for i := range g.health[s] {
			go func(shard, idx int) {
				t := time.NewTicker(g.cfg.ProbeInterval)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
					}
					h := g.health[shard][idx]
					rel, _ := h.acquire(true)
					pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
					start := g.now()
					err := probe(pctx, shard, idx)
					cancel()
					g.count(func(m *obs.FleetMetrics) { m.Probes.Inc() })
					if err != nil {
						g.count(func(m *obs.FleetMetrics) { m.ProbeFailures.Inc() })
						rel(outcomeFail, 0)
					} else {
						rel(outcomeProbeOK, g.now().Sub(start))
					}
				}
			}(s, i)
		}
	}
}
