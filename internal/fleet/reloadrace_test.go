package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/repo"
)

// graphAtGen builds generation i of a reloading site: the seed site
// plus i marker publications, so every generation renders distinct,
// predictable bytes.
func graphAtGen(seed uint64, i int) *graph.Graph {
	g := genSiteData(seed)
	for k := 1; k <= i; k++ {
		oid := graph.OID(fmt.Sprintf("gen%02dmark", k))
		g.AddToCollection("Pubs", oid)
		g.AddEdge(oid, "title", graph.NewString(fmt.Sprintf("Reload marker %d", k)))
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+k%8)))
	}
	return g
}

// TestReloadUnderLoad is the raced reload drill: readers hammer the
// edge while the fleet swaps through several generations. The torn-page
// invariant: every 200 is byte-identical to the single-evaluator
// reference for the exact generation in its ETag — never a mix of two
// generations, never bytes labeled with a generation they didn't come
// from. Afterward, with swaps quiesced and the stale window elapsed, the
// edge must serve the final generation only (no stale-generation
// responses outlive the window).
func TestReloadUnderLoad(t *testing.T) {
	const swaps = 4
	s := buildSchema(t)
	f := newTestFleet(t, s, graphAtGen(21, 0), 2, 2)
	e := NewEdge(f)
	e.StaleFor = 50 * time.Millisecond
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	// Precompute every generation's reference bodies up front (the
	// readers check lock-free against this immutable map).
	want := make([]map[string]string, swaps+1)
	var refs [][]dynamic.PageRef
	for gen := 0; gen <= swaps; gen++ {
		srv := newReference(t, s, graphAtGen(21, gen))
		want[gen] = map[string]string{}
		prs := crawlRefs(t, srv)
		for _, r := range prs {
			b, err := srv.RenderPage(r)
			if err != nil {
				t.Fatalf("reference render gen %d: %v", gen, err)
			}
			want[gen][EncodeRef(r)] = b
		}
		refs = append(refs, prs)
	}
	// Readers request pages that exist in every generation (generation
	// 0's set; reload only adds pages here).
	pages := refs[0]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newTestRand(uint64(7000 + w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pr := pages[r.n(len(pages))]
				status, hdr, body := get(t, ts, PageURL(pr), nil)
				if status != http.StatusOK {
					t.Errorf("GET %s during reloads = %d", PageURL(pr), status)
					continue
				}
				gen := etagGen(t, hdr.Get("ETag"))
				if gen < 0 || gen > swaps {
					t.Errorf("GET %s tagged with impossible generation %d", PageURL(pr), gen)
					continue
				}
				if wantBody := want[gen][EncodeRef(pr)]; body != wantBody {
					t.Errorf("torn page: %s tagged gen %d does not match that generation's reference", PageURL(pr), gen)
				}
			}
		}(w)
	}

	for i := 1; i <= swaps; i++ {
		time.Sleep(30 * time.Millisecond)
		f.SwapData(repo.NewIndexed(graphAtGen(21, i)), nil)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce past the stale window: every page must now serve the final
	// generation, bytes and tag both.
	time.Sleep(e.StaleFor + 20*time.Millisecond)
	for _, pr := range pages {
		// Two GETs: the first may still flush a pre-window stale entry
		// via synchronous revalidation; the second must be final.
		get(t, ts, PageURL(pr), nil)
		status, hdr, body := get(t, ts, PageURL(pr), nil)
		if status != http.StatusOK {
			t.Fatalf("post-reload GET %s = %d", PageURL(pr), status)
		}
		if gen := etagGen(t, hdr.Get("ETag")); gen != swaps {
			t.Fatalf("post-reload GET %s still at generation %d, want %d", PageURL(pr), gen, swaps)
		}
		if body != want[swaps][EncodeRef(pr)] {
			t.Fatalf("post-reload GET %s does not match final reference", PageURL(pr))
		}
	}
}
