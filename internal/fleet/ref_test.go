package fleet

import (
	"net/url"
	"strings"
	"testing"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
)

func TestRefRoundTrip(t *testing.T) {
	cases := []dynamic.PageRef{
		{Fn: "Root"},
		{Fn: "Pub", Args: []graph.Value{graph.NewNode("pub01")}},
		{Fn: "Year", Args: []graph.Value{graph.NewInt(1994)}},
		{Fn: "Tag", Args: []graph.Value{graph.NewString("db")}},
		{Fn: "Pair", Args: []graph.Value{graph.NewString("a"), graph.NewInt(-7)}},
		// Hostile component content: separators and escapes in the data.
		{Fn: "S", Args: []graph.Value{graph.NewString("a;b")}},
		{Fn: "S", Args: []graph.Value{graph.NewString("100%;done%3B")}},
		{Fn: "S", Args: []graph.Value{graph.NewString("")}},
		{Fn: "F", Args: []graph.Value{graph.NewFloat(2.5), graph.NewBool(true), graph.Value{}}},
	}
	for _, ref := range cases {
		key := EncodeRef(ref)
		got, err := DecodeRef(key)
		if err != nil {
			t.Fatalf("DecodeRef(%q): %v", key, err)
		}
		if got.Fn != ref.Fn || len(got.Args) != len(ref.Args) {
			t.Fatalf("round trip %q: got %v want %v", key, got, ref)
		}
		for i := range ref.Args {
			if got.Args[i].Key() != ref.Args[i].Key() {
				t.Fatalf("round trip %q arg %d: got %q want %q",
					key, i, got.Args[i].Key(), ref.Args[i].Key())
			}
		}
		// Canonical keys are stable under a second round trip.
		if again := EncodeRef(got); again != key {
			t.Fatalf("re-encode of %q produced %q", key, again)
		}
	}
}

func TestDecodeRefRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",            // no function
		";",           // empty function with arg
		"Pub;zzz",     // arg is not a value key
		"Pub;%zz",     // truncated escape
		"Pub;s%2",     // truncated escape at end
		"Pub;i12x",    // malformed int key
	} {
		if _, err := DecodeRef(bad); err == nil {
			t.Errorf("DecodeRef(%q): expected error, got none", bad)
		}
	}
}

func TestPageURLIsPathSafe(t *testing.T) {
	ref := dynamic.PageRef{Fn: "S", Args: []graph.Value{graph.NewString("a b/c?d#e;f%g")}}
	u := PageURL(ref)
	if !strings.HasPrefix(u, "/page/") {
		t.Fatalf("PageURL = %q, want /page/ prefix", u)
	}
	for _, c := range []string{" ", "?", "#", "/"} {
		if strings.Contains(u[len("/page/"):], c) {
			t.Fatalf("PageURL %q leaks unescaped %q", u, c)
		}
	}
	// The escaped key must unescape back to the canonical encoding.
	raw, err := url.PathUnescape(strings.TrimPrefix(u, "/page/"))
	if err != nil {
		t.Fatalf("PathUnescape(%q): %v", u, err)
	}
	if raw != EncodeRef(ref) {
		t.Fatalf("unescaped key %q != canonical %q", raw, EncodeRef(ref))
	}
}
