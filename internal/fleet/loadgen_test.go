package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// TestLoadgenSmoke runs the open-loop load generator against an
// in-process fleet for a short fixed window and asserts the CI
// contract: pages were discovered, throughput is non-zero, no request
// errored, and — via the Verify hook — every measured response was
// byte-identical to the single-evaluator oracle (zero mismatches).
func TestLoadgenSmoke(t *testing.T) {
	s := buildSchema(t)
	g := genSiteData(9)
	f := newTestFleet(t, s, g, 2, 1)
	ts := httptest.NewServer(NewEdge(f).Handler())
	defer ts.Close()

	// The oracle table, keyed by the exact paths the crawler will
	// discover from rendered hrefs.
	ref := newReference(t, s, g)
	want := map[string]string{}
	for _, r := range crawlRefs(t, ref) {
		b, err := ref.RenderPage(r)
		if err != nil {
			t.Fatalf("reference render: %v", err)
		}
		want[PageURL(r)] = b
	}
	root, err := ref.RenderPage(ref.Ev.EntryPoints()[0])
	if err != nil {
		t.Fatalf("reference render root: %v", err)
	}
	want["/"] = root

	lg := &LoadGen{
		BaseURL:  ts.URL,
		Rate:     400,
		Duration: 600 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Seed:     1,
		Verify: func(path, body string) error {
			wantBody, ok := want[path]
			if !ok {
				return fmt.Errorf("crawled unknown path %s", path)
			}
			if body != wantBody {
				return fmt.Errorf("body of %s differs from oracle", path)
			}
			return nil
		},
	}
	rep, err := lg.Run(context.Background())
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Pages < 5 {
		t.Fatalf("discovered only %d pages", rep.Pages)
	}
	if rep.Requests == 0 || rep.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors: %+v", rep.Errors, rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d oracle mismatches under load", rep.Mismatches)
	}
	if rep.P50Nanos <= 0 || rep.P99Nanos < rep.P50Nanos {
		t.Fatalf("implausible latency percentiles: p50=%d p99=%d", rep.P50Nanos, rep.P99Nanos)
	}
	t.Logf("loadgen smoke: %d pages, %d requests, %.0f rps, p50=%s p99=%s",
		rep.Pages, rep.Requests, rep.Throughput,
		time.Duration(rep.P50Nanos), time.Duration(rep.P99Nanos))
}

// TestLoadGenRejectsBadConfig pins the argument contract.
func TestLoadGenRejectsBadConfig(t *testing.T) {
	lg := &LoadGen{BaseURL: "http://127.0.0.1:0", Rate: 0}
	if _, err := lg.Run(context.Background()); err == nil {
		t.Fatal("Run with zero rate succeeded")
	}
}
