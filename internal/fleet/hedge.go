package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"strudel/internal/obs"
)

// This file is the hedged, health-routed, budget-bounded fetch that
// both the in-process fleet and the HTTP cluster dispatch through. One
// page fetch becomes a small race:
//
//  1. The primary attempt goes to the best replica the health grid
//     offers (rotation within the same state, healthy before suspect
//     before probing before ejected).
//  2. If the primary outlives the hedge delay — a tracked quantile of
//     recent fetch latencies — the same render fires on the next
//     replica and the first success wins. Hedges draw from a global
//     ratio budget so tail rescue can never become a retry storm.
//  3. A failed attempt (replica down, transport error, attempt
//     timeout) fails over to the next replica, drawing from the shared
//     retry budget. Deterministic page errors never fail over: a
//     sibling holding the same generation would fail identically.
//  4. When every replica refused, the shard is down: the error carries
//     a Retry-After derived from backend hints or breaker cool-downs.

// errAttemptTimeout marks a single replica attempt that outlived
// AttemptTimeout while the request as a whole still had time — the
// signal to fail over rather than give up.
var errAttemptTimeout = errors.New("fleet: replica attempt timed out")

// errLost marks an attempt cancelled because a sibling won the race.
var errLost = errors.New("fleet: attempt lost race")

// errUnavail is a transport-level replica failure on the HTTP path:
// connection refused/reset, a 503 from the replica server, a corrupt
// body caught by the end-to-end checksum. It is always retryable and
// may carry the backend's Retry-After hint.
type errUnavail struct {
	RetryAfter time.Duration
	cause      error
}

func (e *errUnavail) Error() string {
	return fmt.Sprintf("fleet: replica unavailable: %v", e.cause)
}

func (e *errUnavail) Unwrap() error { return e.cause }

// retryableFetchErr reports whether an attempt error may be failed
// over to a sibling replica.
func retryableFetchErr(err error) bool {
	var unavail *errUnavail
	return errors.Is(err, ErrReplicaDown) ||
		errors.Is(err, errAttemptTimeout) ||
		errors.As(err, &unavail)
}

// fetchAttempt renders a page on one replica of the shard.
type fetchAttempt func(ctx context.Context, idx int) (body string, gen int64, err error)

type attemptRes struct {
	body    string
	gen     int64
	err     error
	idx     int
	hedged  bool
	elapsed time.Duration
}

// fetch runs one page fetch through the gray-failure policy.
func (g *grayState) fetch(ctx context.Context, shard int, attempt fetchAttempt) (string, int64, error) {
	if shard < 0 || shard >= len(g.health) {
		return "", 0, fmt.Errorf("fleet: no such shard %d", shard)
	}
	g.hedge.Deposit()
	g.retry.Deposit()

	order := g.order(shard)
	tried := make([]bool, len(g.health[shard]))
	results := make(chan attemptRes, len(order))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// launch starts the next untried candidate: the first whose health
	// admits it, or (forced) the first untried at all. Reports whether
	// an attempt started.
	pending := 0
	launch := func(forced, hedged bool) bool {
		for _, idx := range order {
			if tried[idx] {
				continue
			}
			rel, ok := g.health[shard][idx].acquire(forced)
			if !ok {
				continue
			}
			tried[idx] = true
			var actx context.Context
			var cancel context.CancelFunc
			if g.cfg.AttemptTimeout > 0 {
				actx, cancel = context.WithTimeoutCause(ctx, g.cfg.AttemptTimeout, errAttemptTimeout)
			} else {
				actx, cancel = context.WithCancel(ctx)
			}
			cancels = append(cancels, cancel)
			pending++
			go func(idx int, actx context.Context, rel releaseFn, hedged bool) {
				start := g.now()
				body, gen, err := attempt(actx, idx)
				elapsed := g.now().Sub(start)
				err = classifyAttempt(ctx, actx, err, rel, elapsed)
				results <- attemptRes{body: body, gen: gen, err: err, idx: idx, hedged: hedged, elapsed: elapsed}
			}(idx, actx, rel, hedged)
			return true
		}
		return false
	}

	forced := false
	if !launch(false, false) {
		// Every replica's breaker refuses: fail static — known-bad
		// replicas beat a guaranteed 503.
		forced = true
		if !launch(true, false) {
			return "", 0, ErrShardDown{Shard: shard, RetryAfter: g.recoveryHint(shard)}
		}
	}

	var timerC <-chan time.Time
	if !g.cfg.DisableHedge && len(order) > 1 {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		timerC = t.C
	}

	var lastErr error
	var hintRA time.Duration
	for pending > 0 {
		select {
		case <-timerC:
			timerC = nil
			if !g.hedge.Take() {
				g.count(func(m *obs.FleetMetrics) { m.HedgeBudgetExhausted.Inc() })
				continue
			}
			if launch(false, true) {
				g.count(func(m *obs.FleetMetrics) { m.Hedges.Inc() })
			}
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					g.count(func(m *obs.FleetMetrics) { m.HedgeWins.Inc() })
				}
				return r.body, r.gen, nil
			}
			if ctx.Err() != nil {
				return "", 0, fmt.Errorf("fleet: shard %d: %w", shard, ctx.Err())
			}
			if errors.Is(r.err, errLost) {
				continue
			}
			if !retryableFetchErr(r.err) {
				// Deterministic page failure: a sibling would fail the
				// same way. Surface it as-is.
				return "", r.gen, r.err
			}
			lastErr = r.err
			var unavail *errUnavail
			if errors.As(r.err, &unavail) && unavail.RetryAfter > hintRA {
				hintRA = unavail.RetryAfter
			}
			if pending > 0 {
				// A hedge is still racing; let it finish before
				// spending retry budget.
				continue
			}
			if !g.retry.Take() {
				g.count(func(m *obs.FleetMetrics) { m.RetryBudgetExhausted.Inc() })
				continue
			}
			started := launch(forced, false)
			if !started && !forced {
				// Only breaker-refused replicas remain: second pass,
				// forced.
				forced = true
				started = launch(true, false)
			}
			if started {
				g.count(func(m *obs.FleetMetrics) { m.Failovers.Inc() })
			}
		}
	}

	if lastErr == nil {
		lastErr = ErrReplicaDown
	}
	if retryableFetchErr(lastErr) {
		ra := g.recoveryHint(shard)
		if hintRA > ra {
			ra = hintRA
		}
		g.count(func(m *obs.FleetMetrics) { m.ShardDown.Inc() })
		return "", 0, ErrShardDown{Shard: shard, RetryAfter: ra}
	}
	return "", 0, lastErr
}

// classifyAttempt translates a finished attempt into its health
// outcome (recorded via rel) and a normalized error for the fetch
// loop.
func classifyAttempt(parent, actx context.Context, err error, rel releaseFn, elapsed time.Duration) error {
	switch {
	case err == nil:
		rel(outcomeOK, elapsed)
		return nil
	case parent.Err() != nil:
		// The whole request died (client gone, deadline): not the
		// replica's fault.
		rel(outcomeLost, 0)
		return parent.Err()
	case errors.Is(context.Cause(actx), errAttemptTimeout) && actx.Err() != nil:
		rel(outcomeFail, 0)
		return errAttemptTimeout
	case actx.Err() != nil && errors.Is(context.Cause(actx), context.Canceled):
		// Cancelled by the winner.
		rel(outcomeLost, elapsed)
		return errLost
	case retryableFetchErr(err):
		rel(outcomeFail, 0)
		return err
	default:
		// Deterministic page error: the replica answered, promptly.
		rel(outcomeOK, elapsed)
		return err
	}
}
