//go:build !race

package fleet

// fleetOracleSeeds is how many random sites the serving differential
// oracle sweeps; across the shard-count × cache-state matrix the plain
// suite must issue at least minOracleRequests oracle requests (the PR's
// acceptance floor). The race-detector build runs the smoke subset in
// oracle_scale_race_test.go; `go test -short` shrinks the sweep and
// waives the floor.
const (
	fleetOracleSeeds  = 10
	minOracleRequests = 1000
)
