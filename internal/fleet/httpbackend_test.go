package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"strudel/internal/faultnet"
	"strudel/internal/htmlgen"
	"strudel/internal/obs"
	"strudel/internal/repo"
)

// grayFleet builds a fleet with a metrics sink and a gray config tuned
// for fast tests.
func grayFleet(t testing.TB, seed uint64, shards, replicas int, m *obs.FleetMetrics, gray GrayConfig) *Fleet {
	t.Helper()
	s := buildSchema(t)
	f, err := New(Config{Schema: s, Shards: shards, Replicas: replicas, Obs: m, Gray: gray},
		repo.NewIndexed(genSiteData(seed)))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

func TestReplicaServerIntegrityHeaders(t *testing.T) {
	f := grayFleet(t, 3, 1, 1, nil, GrayConfig{})
	rts := httptest.NewServer(ReplicaHandler(f.Replica(0, 0)))
	defer rts.Close()

	ref := f.EntryPoints()[0]
	resp, err := rts.Client().Get(rts.URL + "/page/" + urlEscapeKey(EncodeRef(ref)))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(genHeader) == "" {
		t.Fatal("generation header missing")
	}
	if got, want := resp.Header.Get(bodyHashHeader), htmlgen.PageHash(body); got != want {
		t.Fatalf("body hash header %q, want %q", got, want)
	}
}

func TestReplicaServerRetryAfterHint(t *testing.T) {
	f := grayFleet(t, 3, 1, 1, nil, GrayConfig{})
	srv := &ReplicaServer{Replica: f.Replica(0, 0), RetryAfter: 7 * time.Second}
	rts := httptest.NewServer(srv.Handler())
	defer rts.Close()

	f.Replica(0, 0).Kill()
	ref := f.EntryPoints()[0]
	resp, err := rts.Client().Get(rts.URL + "/page/" + urlEscapeKey(EncodeRef(ref)))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want \"7\"", got)
	}
}

func TestHTTPClusterPropagatesDeadlineHeader(t *testing.T) {
	f := grayFleet(t, 3, 1, 1, nil, GrayConfig{})
	gotMs := make(chan string, 1)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case gotMs <- r.Header.Get(deadlineHeader):
		default:
		}
		io.WriteString(w, "<html>ok</html>")
	}))
	defer backend.Close()

	c := NewHTTPCluster(f, [][]string{{backend.URL}})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	ref := f.EntryPoints()[0]
	if _, _, err := c.Fetch(ctx, 0, EncodeRef(ref), ref); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	hdr := <-gotMs
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil {
		t.Fatalf("deadline header %q not parseable: %v", hdr, err)
	}
	if ms <= 0 || ms > 3000 {
		t.Fatalf("deadline header %dms, want within the request's 3s budget", ms)
	}
}

func TestEdgeRetryAfterDerivedFromBackendHint(t *testing.T) {
	var m obs.FleetMetrics
	f := grayFleet(t, 5, 1, 2, &m, GrayConfig{DisableHedge: true})
	urls := [][]string{nil}
	for i := 0; i < 2; i++ {
		srv := &ReplicaServer{Replica: f.Replica(0, i), RetryAfter: 7 * time.Second}
		rts := httptest.NewServer(srv.Handler())
		defer rts.Close()
		urls[0] = append(urls[0], rts.URL)
		f.Replica(0, i).Kill()
	}
	e := quiet(NewEdge(NewHTTPCluster(f, urls)))
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	status, hdr, _ := get(t, ts, PageURL(f.EntryPoints()[0]), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q: %v", hdr.Get("Retry-After"), err)
	}
	if secs < 7 {
		t.Fatalf("Retry-After %ds, want at least the backend's 7s hint", secs)
	}
}

func TestHTTPClusterChecksumFailover(t *testing.T) {
	var m obs.FleetMetrics
	f := grayFleet(t, 5, 1, 2, &m, GrayConfig{})
	// Replica 0's responses are corrupted on the wire, every time;
	// replica 1 is clean.
	corrupt := httptest.NewServer(&faultnet.Proxy{
		Inner: ReplicaHandler(f.Replica(0, 0)),
		Sched: faultnet.Script{{CorruptAfter: 20, CorruptLen: 8}},
	})
	defer corrupt.Close()
	clean := httptest.NewServer(ReplicaHandler(f.Replica(0, 1)))
	defer clean.Close()

	c := NewHTTPCluster(f, [][]string{{corrupt.URL, clean.URL}})
	ref := f.EntryPoints()[0]
	want, _, err := newReference(t, buildSchema(t), genSiteData(5)).RenderPageGen(context.Background(), ref)
	if err != nil {
		t.Fatalf("reference render: %v", err)
	}
	for i := 0; i < 6; i++ {
		body, _, err := c.Fetch(context.Background(), 0, EncodeRef(ref), ref)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if body != want {
			t.Fatalf("fetch %d: corrupted bytes served", i)
		}
	}
	if m.ChecksumFailures.Load() == 0 {
		t.Fatal("the corrupt replica was never caught by the checksum")
	}
}

// TestHTTPClusterStalledBodyFailsOver is the stalled-replica
// regression: a backend that sends headers and part of the body, then
// wedges, must not hold the fetch hostage — the attempt deadline (or a
// hedge) moves the request to a sibling.
func TestHTTPClusterStalledBodyFailsOver(t *testing.T) {
	var m obs.FleetMetrics
	f := grayFleet(t, 5, 1, 2, &m, GrayConfig{AttemptTimeout: 300 * time.Millisecond})
	stalled := httptest.NewServer(&faultnet.Proxy{
		Inner: ReplicaHandler(f.Replica(0, 0)),
		Sched: faultnet.Script{{StallAfter: 30, Stall: 30 * time.Second}},
	})
	defer stalled.Close()
	clean := httptest.NewServer(ReplicaHandler(f.Replica(0, 1)))
	defer clean.Close()

	c := NewHTTPCluster(f, [][]string{{stalled.URL, clean.URL}})
	ref := f.EntryPoints()[0]
	want, _, err := newReference(t, buildSchema(t), genSiteData(5)).RenderPageGen(context.Background(), ref)
	if err != nil {
		t.Fatalf("reference render: %v", err)
	}
	for i := 0; i < 4; i++ {
		start := time.Now()
		body, _, err := c.Fetch(context.Background(), 0, EncodeRef(ref), ref)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if body != want {
			t.Fatalf("fetch %d: wrong bytes", i)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("fetch %d took %v: the stall leaked past the attempt bound", i, el)
		}
	}
}
