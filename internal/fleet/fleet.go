package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/mediator"
	"strudel/internal/obs"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// Config describes a fleet: the site definition every replica serves,
// and the fleet shape.
type Config struct {
	// Schema is the site schema (required).
	Schema *schema.Schema
	// Templates and the PerFn/Default selection mirror dynamic.Server.
	Templates *template.Set
	PerFn     map[string]string
	Default   string
	// Shards is the number of shared-nothing partitions (≥1); Replicas
	// the number of independent copies per shard (≥1).
	Shards   int
	Replicas int
	// Lookahead turns on link-following precomputation in every
	// replica's evaluator, like dynamic.Evaluator.Lookahead.
	Lookahead bool
	// Gray tunes the gray-failure tolerance layer (health-checked
	// routing, hedged requests, circuit breakers, retry budgets). The
	// zero value takes every default.
	Gray GrayConfig
	// Obs receives fleet-level counters; ServeObs is threaded into every
	// replica's evaluator (cache hits, queries run). Both nil-safe.
	Obs      *obs.FleetMetrics
	ServeObs *obs.ServeMetrics
}

// ErrReplicaDown marks a fetch refused (or abandoned mid-render)
// because the replica was killed; the edge fails over to a sibling.
var ErrReplicaDown = errors.New("fleet: replica down")

// ErrShardDown marks a page request whose owning shard had no live
// replica left; the edge degrades to 503 + Retry-After. RetryAfter is
// the serving tier's recovery estimate: the backend's own Retry-After
// hint when one was offered, otherwise the soonest any of the shard's
// circuit breakers re-admits trials.
type ErrShardDown struct {
	Shard      int
	RetryAfter time.Duration
}

func (e ErrShardDown) Error() string {
	return fmt.Sprintf("fleet: shard %d has no live replica", e.Shard)
}

// Replica is one shared-nothing copy of one shard: its own frozen
// snapshot of the data graph, its own evaluator (page cache, Skolem
// environment), its own renderer. Replicas of the same shard answer the
// same page requests; replicas of different shards are never asked for
// each other's pages.
type Replica struct {
	shard, index int
	ev           *dynamic.Evaluator
	srv          *dynamic.Server

	// life is cancelled by Kill, so in-flight renders on a killed
	// replica stop promptly instead of hanging toward their deadline.
	mu     sync.Mutex
	down   bool
	life   context.Context
	cancel context.CancelFunc
}

// Down reports whether the replica is killed.
func (r *Replica) Down() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down
}

// Kill takes the replica out of service: new fetches are refused and
// in-flight renders are cancelled. Chaos tests use it to prove edge
// failover; a real deployment would reach the same state by losing the
// process.
func (r *Replica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.down {
		r.down = true
		r.cancel()
	}
}

// Revive returns a killed replica to service.
func (r *Replica) Revive() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		r.down = false
		r.life, r.cancel = context.WithCancel(context.Background())
	}
}

func (r *Replica) lifeCtx() (context.Context, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.life, r.down
}

// Render renders one page on this replica, reporting the data
// generation every byte was computed from. A killed replica refuses
// immediately; a kill mid-render cancels the evaluation and reports
// ErrReplicaDown so the caller fails over instead of surfacing a
// spurious cancellation.
func (r *Replica) Render(ctx context.Context, ref dynamic.PageRef) (string, int64, error) {
	life, down := r.lifeCtx()
	if down {
		return "", 0, ErrReplicaDown
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(life, cancel)
	defer stop()
	body, gen, err := r.srv.RenderPageGen(rctx, ref)
	if err != nil {
		// The request's own context ending is the caller's problem; the
		// replica dying under the render is ours to report as such.
		if ctx.Err() == nil && life.Err() != nil {
			return "", gen, ErrReplicaDown
		}
		return "", gen, err
	}
	return body, gen, nil
}

// Generation returns the replica's current data generation.
func (r *Replica) Generation() int64 { return r.ev.Generation() }

// Fleet is the coordinator: the ring, the shard/replica grid, and the
// generation counter every swap advances in lockstep. It implements
// dynamic.Swapper, so the existing hot-reload loop publishes new data
// to the whole fleet exactly as it did to a single evaluator.
type Fleet struct {
	cfg  Config
	ring *Ring
	// grid[shard][replica]
	grid [][]*Replica
	// gray is the gray-failure tolerance state: per-replica health and
	// breakers, hedge/retry budgets, latency tracking, and the
	// rotation counters routing starts from.
	gray *grayState

	gen   atomic.Int64
	start time.Time

	// swapMu serializes swaps; genTimes records when recent generations
	// were published (Last-Modified needs a stable time per generation).
	swapMu   sync.Mutex
	genMu    sync.Mutex
	genTimes map[int64]time.Time
}

// keptGenTimes bounds the generation→publish-time memory; older
// generations fall back to the fleet start time (their pages are long
// since invalidated anyway).
const keptGenTimes = 16

// New builds a fleet over an initial data source. Each replica receives
// its own copy of the data: when the source exposes a frozen snapshot
// (repo.Indexed does), it is encoded once to the canonical SGB2 binary
// form and decoded once per replica — the compact layout is what makes
// O(shards × replicas) replication affordable; otherwise the source is
// shared read-only (safe, but not shared-nothing; tests use it for
// plain graph sources).
func New(cfg Config, src struql.Source) (*Fleet, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("fleet: config needs a schema")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Templates == nil {
		cfg.Templates = template.NewSet()
	}
	f := &Fleet{
		cfg:      cfg,
		ring:     NewRing(cfg.Shards),
		grid:     make([][]*Replica, cfg.Shards),
		gray:     newGrayState(cfg.Gray, uniformCounts(cfg.Shards, cfg.Replicas), cfg.Obs),
		start:    time.Now(),
		genTimes: map[int64]time.Time{},
	}
	copies, err := replicate(src, cfg.Shards*cfg.Replicas)
	if err != nil {
		return nil, err
	}
	for s := 0; s < cfg.Shards; s++ {
		f.grid[s] = make([]*Replica, cfg.Replicas)
		for i := 0; i < cfg.Replicas; i++ {
			ev := dynamic.NewEvaluator(cfg.Schema, copies[s*cfg.Replicas+i])
			ev.Obs = cfg.ServeObs
			ev.Lookahead = cfg.Lookahead
			srv := dynamic.NewServer(ev, cfg.Templates)
			srv.PerFn = cfg.PerFn
			if srv.PerFn == nil {
				srv.PerFn = map[string]string{}
			}
			srv.Default = cfg.Default
			srv.PageURLFunc = func(ref dynamic.PageRef, _ graph.OID) string { return PageURL(ref) }
			rep := &Replica{shard: s, index: i, ev: ev, srv: srv}
			rep.life, rep.cancel = context.WithCancel(context.Background())
			f.grid[s][i] = rep
		}
	}
	if m := cfg.Obs; m != nil {
		m.Generation.Set(0)
	}
	return f, nil
}

// replicate produces n independent copies of a data source. The frozen
// path round-trips through SGB2 bytes, so every replica owns its own
// arenas and adjacency — a true shared-nothing copy, byte-validated on
// decode.
func replicate(src struql.Source, n int) ([]struql.Source, error) {
	out := make([]struql.Source, n)
	type frozener interface{ Frozen() *graph.Frozen }
	fz, ok := src.(frozener)
	if !ok {
		for i := range out {
			out[i] = src
		}
		return out, nil
	}
	enc := repo.EncodeBinaryFrozen(fz.Frozen())
	for i := range out {
		dec, err := repo.DecodeBinaryFrozen(enc)
		if err != nil {
			return nil, fmt.Errorf("fleet: replicating snapshot: %w", err)
		}
		out[i] = repo.NewIndexedFrozen(dec)
	}
	return out, nil
}

// Shards returns the shard count; ReplicasPerShard the replica count.
func (f *Fleet) Shards() int           { return f.cfg.Shards }
func (f *Fleet) ReplicasPerShard() int { return f.cfg.Replicas }

// Replica returns one replica (for chaos tests and direct inspection).
func (f *Fleet) Replica(shard, i int) *Replica { return f.grid[shard][i] }

// Generation returns the fleet's current data generation (0 until the
// first swap).
func (f *Fleet) Generation() int64 { return f.gen.Load() }

// GenTime returns the publish time of a generation, for Last-Modified:
// the swap wall time for recent generations, the fleet start time for
// generation 0 and anything since evicted.
func (f *Fleet) GenTime(gen int64) time.Time {
	f.genMu.Lock()
	defer f.genMu.Unlock()
	if t, ok := f.genTimes[gen]; ok {
		return t
	}
	return f.start
}

// LastSwap returns when the current generation was published (the fleet
// start time before any swap). The edge measures its
// stale-while-revalidate window from it.
func (f *Fleet) LastSwap() time.Time { return f.GenTime(f.gen.Load()) }

// Route returns the shard owning a page key.
func (f *Fleet) Route(key string) int { return f.ring.Shard(key) }

// KnownFn reports whether a Skolem function exists in the site schema —
// the edge's 404 test for decoded-but-meaningless page refs.
func (f *Fleet) KnownFn(fn string) bool {
	for _, n := range f.cfg.Schema.Nodes {
		if n == fn {
			return true
		}
	}
	return false
}

// EntryPoints returns the site's unconditional entry pages (identical
// on every replica — it is schema-derived).
func (f *Fleet) EntryPoints() []dynamic.PageRef {
	return f.grid[0][0].ev.EntryPoints()
}

// Fetch renders a page on the owning shard through the gray-failure
// policy: health-ordered replica selection, tail-latency hedging, and
// budget-bounded failover (see hedge.go). A down (or dying-mid-render)
// replica sends the request to the next; only when every replica has
// refused does the shard count as down. Page evaluation errors are NOT
// failed over — they are deterministic functions of the data, so a
// sibling would fail identically.
func (f *Fleet) Fetch(ctx context.Context, shard int, key string, ref dynamic.PageRef) (string, int64, error) {
	if shard < 0 || shard >= len(f.grid) {
		return "", 0, fmt.Errorf("fleet: no such shard %d", shard)
	}
	if m := f.cfg.Obs; m != nil {
		m.ShardFetches.Inc()
	}
	return f.gray.fetch(ctx, shard, func(ctx context.Context, idx int) (string, int64, error) {
		return f.grid[shard][idx].Render(ctx, ref)
	})
}

// Health returns one replica's health account (tests, drills).
func (f *Fleet) Health(shard, i int) *ReplicaHealth { return f.gray.Health(shard, i) }

// HealthSnapshot exposes the gray layer's per-replica states and
// derived signals for /debug/vars (the "fleet_health" group).
func (f *Fleet) HealthSnapshot() map[string]any { return f.gray.Snapshot() }

// StartHealthChecks launches the active prober: every replica renders
// the site's first entry point each Gray.ProbeInterval, bounded by
// Gray.ProbeTimeout, feeding its breaker. Probing stops when ctx ends.
func (f *Fleet) StartHealthChecks(ctx context.Context) {
	entries := f.EntryPoints()
	if len(entries) == 0 {
		return
	}
	probe := entries[0]
	f.gray.startProbes(ctx, func(ctx context.Context, shard, idx int) error {
		_, _, err := f.grid[shard][idx].Render(ctx, probe)
		return err
	})
}

// SwapData implements dynamic.Swapper: it re-replicates the new
// snapshot into every replica of every shard and then publishes the new
// generation number. Replicas swap one by one — a request racing the
// swap is served entirely from whichever generation its replica held
// when the render began (the per-request snapshot guarantee), and the
// response is tagged with that generation, so the edge never caches a
// mixed or mislabeled page.
func (f *Fleet) SwapData(src struql.Source, d *mediator.Delta) (kept, dropped int) {
	f.swapMu.Lock()
	defer f.swapMu.Unlock()
	next := f.gen.Load() + 1
	copies, err := replicate(src, f.cfg.Shards*f.cfg.Replicas)
	if err != nil {
		// A snapshot that cannot be re-encoded is a programming error;
		// degrade to sharing the source rather than serving stale
		// forever.
		copies = make([]struql.Source, f.cfg.Shards*f.cfg.Replicas)
		for i := range copies {
			copies[i] = src
		}
	}
	for s := range f.grid {
		for i, rep := range f.grid[s] {
			k, dr := rep.ev.SwapDataAt(copies[s*f.cfg.Replicas+i], d, next)
			kept += k
			dropped += dr
		}
	}
	now := time.Now()
	f.genMu.Lock()
	f.genTimes[next] = now
	if len(f.genTimes) > keptGenTimes {
		oldest := next
		for g := range f.genTimes {
			if g < oldest {
				oldest = g
			}
		}
		delete(f.genTimes, oldest)
	}
	f.genMu.Unlock()
	f.gen.Store(next)
	if m := f.cfg.Obs; m != nil {
		m.Swaps.Inc()
		m.Generation.Set(next)
	}
	return kept, dropped
}
