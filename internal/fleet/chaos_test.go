package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"strudel/internal/obs"
	"strudel/internal/repo"
)

// Chaos drills: replicas die mid-flight and the serving tier must
// degrade exactly as specified — failover to siblings while any replica
// of the shard lives, honest 503 + Retry-After when none does, and no
// request ever hanging past its deadline.

func TestChaosReplicaFailover(t *testing.T) {
	s := buildSchema(t)
	g := genSiteData(11)
	m := &obs.FleetMetrics{}
	f, err := New(Config{Schema: s, Shards: 2, Replicas: 2, Obs: m}, repo.NewIndexed(g))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	e := NewEdge(f)
	e.Obs = m
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	refs := crawlRefs(t, newReference(t, s, g))

	// One replica of each shard dies. Every page must still serve: the
	// rotation lands half the fetches on the corpse first, so failover
	// is exercised, not just possible.
	f.Replica(0, 0).Kill()
	f.Replica(1, 0).Kill()
	for _, ref := range refs {
		if status, _, _ := get(t, ts, PageURL(ref), nil); status != http.StatusOK {
			t.Fatalf("GET %s with one replica down = %d", PageURL(ref), status)
		}
	}
	if m.Failovers.Load() == 0 {
		t.Fatal("no failovers recorded while a replica was down")
	}
}

func TestChaosShardDown(t *testing.T) {
	s := buildSchema(t)
	g := genSiteData(12)
	f := newTestFleet(t, s, g, 2, 2)
	e := quiet(NewEdge(f))
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	refs := crawlRefs(t, newReference(t, s, g))

	// Split pages by owning shard; the site is large enough that both
	// shards own some.
	byShard := map[int][]string{}
	for _, ref := range refs {
		key := EncodeRef(ref)
		byShard[f.Route(key)] = append(byShard[f.Route(key)], PageURL(ref))
	}
	if len(byShard[0]) == 0 || len(byShard[1]) == 0 {
		t.Fatalf("degenerate partition: %d/%d pages", len(byShard[0]), len(byShard[1]))
	}

	// Kill every replica of shard 0: its pages degrade to 503 with a
	// Retry-After hint; shard 1's pages are untouched.
	f.Replica(0, 0).Kill()
	f.Replica(0, 1).Kill()
	for _, p := range byShard[0] {
		status, hdr, _ := get(t, ts, p, nil)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("GET %s with shard down = %d, want 503", p, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("503 for %s missing Retry-After", p)
		}
	}
	for _, p := range byShard[1] {
		if status, _, _ := get(t, ts, p, nil); status != http.StatusOK {
			t.Fatalf("GET %s on the healthy shard = %d", p, status)
		}
	}

	// Healing: one replica revives and the shard serves again.
	f.Replica(0, 1).Revive()
	for _, p := range byShard[0] {
		if status, _, _ := get(t, ts, p, nil); status != http.StatusOK {
			t.Fatalf("GET %s after revival = %d", p, status)
		}
	}
}

// TestChaosKillsUnderLoad hammers the edge while replicas are killed
// and revived at random. Invariants: every request completes well
// inside the deadline (kills cancel in-flight renders instead of
// letting them hang), and every completion is either a correct 200 or
// an honest 503.
func TestChaosKillsUnderLoad(t *testing.T) {
	s := buildSchema(t)
	g := genSiteData(13)
	f := newTestFleet(t, s, g, 2, 2)
	e := quiet(NewEdge(f))
	e.RequestTimeout = 2 * time.Second
	e.StaleFor = 0
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	ref := newReference(t, s, g)
	refs := crawlRefs(t, ref)
	want := map[string]string{}
	for _, r := range refs {
		b, err := ref.RenderPage(r)
		if err != nil {
			t.Fatalf("reference render: %v", err)
		}
		want[PageURL(r)] = b
	}

	const workers, perWorker = 8, 40
	maxRequest := e.RequestTimeout + 3*time.Second // generous slack over the server deadline

	stop := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		r := newTestRand(99)
		for {
			select {
			case <-stop:
				// Leave everything alive for the epilogue.
				for sh := 0; sh < f.Shards(); sh++ {
					for i := 0; i < f.ReplicasPerShard(); i++ {
						f.Replica(sh, i).Revive()
					}
				}
				return
			default:
			}
			rep := f.Replica(r.n(f.Shards()), r.n(f.ReplicasPerShard()))
			rep.Kill()
			time.Sleep(time.Duration(1+r.n(3)) * time.Millisecond)
			if r.n(4) != 0 {
				rep.Revive()
			}
			time.Sleep(time.Duration(1+r.n(3)) * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newTestRand(uint64(1000 + w))
			client := &http.Client{Timeout: maxRequest}
			for i := 0; i < perWorker; i++ {
				p := PageURL(refs[r.n(len(refs))])
				start := time.Now()
				resp, err := client.Get(ts.URL + p)
				elapsed := time.Since(start)
				if err != nil {
					errCh <- err
					continue
				}
				body := readAll(t, resp)
				if elapsed > maxRequest {
					t.Errorf("GET %s took %v, past the no-hang bound %v", p, elapsed, maxRequest)
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if body != want[p] {
						t.Errorf("GET %s under chaos returned wrong bytes", p)
					}
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("503 for %s missing Retry-After", p)
					}
				default:
					t.Errorf("GET %s under chaos = %d, want 200 or 503", p, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaosWg.Wait()
	close(errCh)
	for err := range errCh {
		// A transport-level failure would mean a hung or severed request.
		t.Errorf("request failed: %v", err)
	}

	// After the chaos stops and everything is revived, the fleet serves
	// every page correctly again.
	for _, r := range refs {
		status, _, body := get(t, ts, PageURL(r), nil)
		if status != http.StatusOK || body != want[PageURL(r)] {
			t.Fatalf("post-chaos GET %s = %d (correct=%v)", PageURL(r), status, body == want[PageURL(r)])
		}
	}
}
