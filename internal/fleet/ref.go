// Package fleet is the sharded, replicated serving tier for click-time
// traffic: the site's page space is partitioned by consistent hashing
// over Skolem page keys into shared-nothing shards, each replica of a
// shard holds its own immutable frozen snapshot of the data graph
// (re-replicated through the SGB2 binary format on every hot reload),
// and an HTTP edge routes page requests to the owning shard, caches
// rendered pages with generation-scoped ETags, answers conditional GETs,
// and serves stale-while-revalidate across reloads.
//
// The paper's "Catching the Boat" scenario serves pages straight from
// the StruQL evaluator; this package scales that single evaluator to a
// fleet while preserving its core guarantee — every page a client sees
// is a pure function of one data generation, never a mixture of two.
package fleet

import (
	"fmt"
	"strings"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
)

// Page keys are the fleet's wire form of a page identity: the Skolem
// function name and each argument's canonical value key, joined with
// ';' (escaped inside components). Unlike display-form oids — whose "#n"
// disambiguation suffixes depend on the order pages were first computed
// by a particular evaluator — page keys are derived only from the ref
// itself, so every replica, the edge, and the router agree on them
// without shared state, and any replica can decode one it has never
// seen.

// escapeComp escapes '%' and ';' inside a key component; everything
// else passes through, keeping keys readable in URLs and logs.
func escapeComp(s string) string {
	if !strings.ContainsAny(s, "%;") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			b.WriteString("%25")
		case ';':
			b.WriteString("%3B")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeComp(s string) (string, error) {
	if !strings.Contains(s, "%") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+3 > len(s) {
			return "", fmt.Errorf("fleet: truncated escape in page key component %q", s)
		}
		switch s[i+1 : i+3] {
		case "25":
			b.WriteByte('%')
		case "3B", "3b":
			b.WriteByte(';')
		default:
			return "", fmt.Errorf("fleet: bad escape %%%s in page key component %q", s[i+1:i+3], s)
		}
		i += 2
	}
	return b.String(), nil
}

// EncodeRef renders a page ref as its canonical page key.
func EncodeRef(ref dynamic.PageRef) string {
	var b strings.Builder
	b.WriteString(escapeComp(ref.Fn))
	for _, a := range ref.Args {
		b.WriteByte(';')
		b.WriteString(escapeComp(a.Key()))
	}
	return b.String()
}

// DecodeRef parses a page key back into a page ref. It accepts exactly
// what EncodeRef produces; any ref round-trips.
func DecodeRef(key string) (dynamic.PageRef, error) {
	parts := strings.Split(key, ";")
	fn, err := unescapeComp(parts[0])
	if err != nil {
		return dynamic.PageRef{}, err
	}
	if fn == "" {
		return dynamic.PageRef{}, fmt.Errorf("fleet: page key %q has no function name", key)
	}
	ref := dynamic.PageRef{Fn: fn}
	for _, p := range parts[1:] {
		comp, err := unescapeComp(p)
		if err != nil {
			return dynamic.PageRef{}, err
		}
		v, err := graph.ParseKey(comp)
		if err != nil {
			return dynamic.PageRef{}, fmt.Errorf("fleet: page key %q: %w", key, err)
		}
		ref.Args = append(ref.Args, v)
	}
	return ref, nil
}

// PageURL is the edge's URL for a page ref: /page/<escaped page key>.
// It is the scheme replicas embed in rendered links (via
// dynamic.Server.PageURLFunc), so a page rendered by any replica links
// to URLs any other replica can resolve.
func PageURL(ref dynamic.PageRef) string {
	return "/page/" + urlEscapeKey(EncodeRef(ref))
}

// urlEscapeKey percent-encodes a page key for use as one URL path
// segment. Only the characters that would break path parsing are
// escaped; the common case (letters, digits, parentheses-free keys)
// stays readable.
func urlEscapeKey(key string) string {
	const hex = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~' || c == ';' || c == '(' || c == ')' || c == ',':
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
	}
	return b.String()
}
