package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("Pub;npub%04d", i)
	}
	return keys
}

func TestRingDeterministicAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		a, b := NewRing(shards), NewRing(shards)
		for _, k := range ringKeys(500) {
			s1, s2 := a.Shard(k), b.Shard(k)
			if s1 != s2 {
				t.Fatalf("shards=%d key %q: nondeterministic routing %d vs %d", shards, k, s1, s2)
			}
			if s1 < 0 || s1 >= shards {
				t.Fatalf("shards=%d key %q: shard %d out of range", shards, k, s1)
			}
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	// Every shard must own some keys (a shard no key routes to would be
	// wasted capacity and an untestable failover target).
	for _, shards := range []int{2, 4, 8} {
		r := NewRing(shards)
		hit := make([]int, shards)
		for _, k := range ringKeys(2000) {
			hit[r.Shard(k)]++
		}
		for s, n := range hit {
			if n == 0 {
				t.Errorf("shards=%d: shard %d owns no keys", shards, s)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 128 virtual points per shard the split should be roughly
	// even; allow a generous 2.5x spread between min and max.
	const keys = 20000
	r := NewRing(4)
	hit := make([]int, 4)
	for i := 0; i < keys; i++ {
		hit[r.Shard(fmt.Sprintf("Pub;npub%06d", i))]++
	}
	minN, maxN := keys, 0
	for _, n := range hit {
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if minN == 0 || float64(maxN)/float64(minN) > 2.5 {
		t.Fatalf("unbalanced ring: shard loads %v", hit)
	}
}

func TestRingMinimalMovement(t *testing.T) {
	// Consistent hashing's point: growing 4 → 5 shards should move
	// roughly 1/5 of the keys, not reshuffle everything. Allow 2x slack.
	const keys = 10000
	r4, r5 := NewRing(4), NewRing(5)
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("Pub;npub%06d", i)
		if r4.Shard(k) != r5.Shard(k) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 2.0/5 {
		t.Fatalf("growing 4->5 shards moved %.1f%% of keys, want ~20%%", frac*100)
	}
}
