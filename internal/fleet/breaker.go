package fleet

import (
	"sync"
	"time"
)

// This file is the edge's per-replica circuit breaker and the shared
// token budgets that bound retry and hedge amplification. A breaker
// converts a stream of request outcomes into an admit/refuse decision:
// it trips on consecutive failures (a replica that died) or on the
// error rate over a sliding window (a replica that flaps), cools down,
// and re-admits traffic through a bounded number of half-open trials.
// Budgets are Finagle-style ratio buckets: every arriving request
// deposits a fraction of a token, every retry or hedge withdraws one,
// so amplification is capped at a fraction of offered load no matter
// how badly the fleet misbehaves.

// BreakerState is a circuit breaker's admission state.
type BreakerState int32

const (
	// BreakerClosed admits all traffic (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses all traffic until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of trial requests whose
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker. The zero value takes every
// default below.
type BreakerConfig struct {
	// Failures trips the breaker after this many consecutive failures.
	Failures int
	// Window is the sliding outcome window for the error-rate trip;
	// Rate is the failure fraction that trips it once the window holds
	// at least MinSamples outcomes. The window catches flapping
	// replicas whose intermittent successes keep resetting the
	// consecutive counter.
	Window     int
	Rate       float64
	MinSamples int
	// OpenFor is the cool-down after a trip before half-open trials.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrently admitted half-open trials;
	// CloseAfter is the consecutive trial successes that close.
	HalfOpenProbes int
	CloseAfter     int
	// Clock is the test seam; nil means time.Now.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Rate <= 0 {
		c.Rate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is one replica's circuit breaker. The zero value is not
// ready; use newBreaker.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	consec   int    // consecutive failures while closed
	win      []bool // ring of recent outcomes (true = failure)
	winPos   int
	winCount int
	winFails int
	openedAt time.Time
	trials   int // half-open trials in flight
	trialOK  int // consecutive half-open successes
}

func newBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, win: make([]bool, cfg.Window)}
}

// State reports the current state, promoting open → half-open when the
// cool-down has elapsed (a time-driven transition, so readers see
// "probing" as soon as trials would be admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.promoteLocked()
	return b.state
}

// ConsecutiveFailures reports the closed-state consecutive failure
// count (the health layer's suspect signal).
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec
}

func (b *Breaker) promoteLocked() {
	if b.state == BreakerOpen && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = BreakerHalfOpen
		b.trials = 0
		b.trialOK = 0
	}
}

// RetryIn reports how long until an open breaker admits trials again
// (0 when it already does).
func (b *Breaker) RetryIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.OpenFor - b.cfg.Clock().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Allow reports whether a request may proceed and whether it counts as
// a half-open trial. A trial admission MUST be paired with a Record
// carrying trial=true, which releases the trial slot.
func (b *Breaker) Allow() (ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.promoteLocked()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerHalfOpen:
		if b.trials < b.cfg.HalfOpenProbes {
			b.trials++
			return true, true
		}
	}
	return false, false
}

// ReleaseTrial frees a half-open trial slot without recording an
// outcome — for attempts cancelled through no fault of the replica.
func (b *Breaker) ReleaseTrial() {
	b.mu.Lock()
	if b.trials > 0 {
		b.trials--
	}
	b.mu.Unlock()
}

// Record feeds one request outcome back. Forced requests (admitted past
// a refusing breaker by the fail-static routing fallback or an active
// probe) record with trial=false; a success recorded while open moves
// the breaker to half-open so recovery is observed no matter who
// noticed it first. Record reports whether this outcome tripped the
// breaker open and whether it closed it, so callers can count
// transitions.
func (b *Breaker) Record(success, trial bool) (tripped, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if trial && b.trials > 0 {
		b.trials--
	}
	switch b.state {
	case BreakerClosed:
		b.observeLocked(success)
		if !success {
			b.consec++
			if b.consec >= b.cfg.Failures || b.rateTrippedLocked() {
				b.tripLocked()
				return true, false
			}
		} else {
			b.consec = 0
			if b.rateTrippedLocked() {
				b.tripLocked()
				return true, false
			}
		}
	case BreakerHalfOpen:
		if success {
			b.trialOK++
			if b.trialOK >= b.cfg.CloseAfter {
				b.resetLocked()
				return false, true
			}
		} else {
			b.tripLocked()
			return true, false
		}
	case BreakerOpen:
		if success {
			// A forced request got through: start probing from this
			// success instead of waiting out the cool-down.
			b.state = BreakerHalfOpen
			b.trials = 0
			b.trialOK = 1
			if b.trialOK >= b.cfg.CloseAfter {
				b.resetLocked()
				return false, true
			}
		} else {
			// Still failing: restart the cool-down.
			b.openedAt = b.cfg.Clock()
		}
	}
	return false, false
}

func (b *Breaker) observeLocked(success bool) {
	old := b.win[b.winPos]
	fail := !success
	b.win[b.winPos] = fail
	b.winPos = (b.winPos + 1) % len(b.win)
	if b.winCount < len(b.win) {
		b.winCount++
	} else if old {
		b.winFails--
	}
	if fail {
		b.winFails++
	}
}

func (b *Breaker) rateTrippedLocked() bool {
	return b.winCount >= b.cfg.MinSamples &&
		float64(b.winFails) >= b.cfg.Rate*float64(b.winCount)
}

func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Clock()
	b.trials = 0
	b.trialOK = 0
}

func (b *Breaker) resetLocked() {
	b.state = BreakerClosed
	b.consec = 0
	b.trials = 0
	b.trialOK = 0
	b.winPos = 0
	b.winCount = 0
	b.winFails = 0
	for i := range b.win {
		b.win[i] = false
	}
}

// ratioBudget is a token bucket coupled to offered load instead of wall
// time: each arriving request deposits ratio tokens (capped at burst),
// each retry or hedge withdraws one whole token. Amplified traffic is
// therefore bounded by ratio × offered load plus the burst, with no
// clock involved — which also makes tests deterministic.
type ratioBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

func newRatioBudget(ratio, burst float64) *ratioBudget {
	// Start full so a cold fleet can absorb an early failure burst.
	return &ratioBudget{tokens: burst, ratio: ratio, burst: burst}
}

// Deposit credits one arriving request.
func (b *ratioBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Take withdraws one token, reporting whether the budget allowed it.
func (b *ratioBudget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current balance (for /debug/vars).
func (b *ratioBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
