package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"strudel/internal/dynamic"
)

// This file is the over-the-wire shard transport: a replica can be
// exposed as its own HTTP server and the edge can fetch from replicas
// by URL instead of method call. The in-process path is the production
// default for a single binary; the HTTP path is what a multi-process
// deployment uses, and the differential oracle runs both to prove the
// network hop changes no byte.

// genHeader carries the data generation a replica rendered against.
const genHeader = "X-Strudel-Generation"

// ReplicaHandler exposes one replica as an HTTP shard server:
// GET /page/<key> renders the page and tags the response with the
// replica's data generation. Errors map like the edge: dead replica
// 503, deadline 504, other failures sanitized 500.
func ReplicaHandler(rep *Replica) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/page/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/page/")
		key, err := url.PathUnescape(raw)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		ref, err := DecodeRef(key)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		body, gen, err := rep.Render(r.Context(), ref)
		if err != nil {
			switch {
			case err == ErrReplicaDown:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "replica down", http.StatusServiceUnavailable)
			case r.Context().Err() != nil:
				http.Error(w, "request timed out", http.StatusGatewayTimeout)
			default:
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set(genHeader, strconv.FormatInt(gen, 10))
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, body)
	})
	return mux
}

// HTTPCluster is a Cluster whose shard fetches go over real HTTP to
// replica servers, with the same rotation + failover policy as the
// in-process fleet. Routing, generations, and entry points delegate to
// the underlying fleet (in a multi-process deployment those would come
// from configuration and a coordination channel; the tests' concern
// here is the data path).
type HTTPCluster struct {
	Fleet *Fleet
	// URLs[shard] lists the base URLs of that shard's replica servers.
	URLs   [][]string
	Client *http.Client

	rr []uint32
}

// NewHTTPCluster wraps a fleet with per-replica HTTP endpoints.
func NewHTTPCluster(f *Fleet, urls [][]string) *HTTPCluster {
	return &HTTPCluster{
		Fleet:  f,
		URLs:   urls,
		Client: &http.Client{Timeout: 30 * time.Second},
		rr:     make([]uint32, len(urls)),
	}
}

func (c *HTTPCluster) Route(key string) int              { return c.Fleet.Route(key) }
func (c *HTTPCluster) Generation() int64                 { return c.Fleet.Generation() }
func (c *HTTPCluster) GenTime(gen int64) time.Time       { return c.Fleet.GenTime(gen) }
func (c *HTTPCluster) LastSwap() time.Time               { return c.Fleet.LastSwap() }
func (c *HTTPCluster) EntryPoints() []dynamic.PageRef    { return c.Fleet.EntryPoints() }
func (c *HTTPCluster) KnownFn(fn string) bool            { return c.Fleet.KnownFn(fn) }

// Fetch renders a page over HTTP on the owning shard, rotating the
// starting replica and failing over on 503s and transport errors.
func (c *HTTPCluster) Fetch(ctx context.Context, shard int, key string, ref dynamic.PageRef) (string, int64, error) {
	if shard < 0 || shard >= len(c.URLs) {
		return "", 0, fmt.Errorf("fleet: no such shard %d", shard)
	}
	urls := c.URLs[shard]
	c.rr[shard]++ // benign race: only spreads load
	start := int(c.rr[shard])
	for i := 0; i < len(urls); i++ {
		base := urls[(start+i)%len(urls)]
		body, gen, status, err := c.fetchOne(ctx, base, key)
		switch {
		case err == nil && status == http.StatusOK:
			return body, gen, nil
		case ctx.Err() != nil:
			return "", 0, fmt.Errorf("fleet: shard %d: %w", shard, ctx.Err())
		case err != nil || status == http.StatusServiceUnavailable:
			continue // connection refused or replica down: fail over
		default:
			return "", 0, fmt.Errorf("fleet: replica %s: status %d", base, status)
		}
	}
	// Every replica was unreachable or down.
	return "", 0, ErrShardDown{Shard: shard}
}

func (c *HTTPCluster) fetchOne(ctx context.Context, base, key string) (string, int64, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/page/"+urlEscapeKey(key), nil)
	if err != nil {
		return "", 0, 0, err
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return "", 0, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, resp.StatusCode, err
	}
	gen, _ := strconv.ParseInt(resp.Header.Get(genHeader), 10, 64)
	return string(b), gen, resp.StatusCode, nil
}
