package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/htmlgen"
)

// This file is the over-the-wire shard transport: a replica can be
// exposed as its own HTTP server and the edge can fetch from replicas
// by URL instead of method call. The in-process path is the production
// default for a single binary; the HTTP path is what a multi-process
// deployment uses, and the differential oracle runs both to prove the
// network hop changes no byte. The HTTP path carries three extra
// end-to-end signals the in-process path gets for free:
//
//   - the request deadline propagates as a header, so a replica stops
//     rendering work whose requester has already given up;
//   - the body carries a content checksum, so a corrupted wire byte is
//     caught at the edge and failed over instead of served;
//   - a down replica's 503 carries a Retry-After hint that flows
//     through the cluster's shard-down error to the edge's response.

// genHeader carries the data generation a replica rendered against.
const genHeader = "X-Strudel-Generation"

// deadlineHeader carries the requester's remaining time budget in
// milliseconds, so the deadline survives the HTTP hop.
const deadlineHeader = "X-Strudel-Deadline-Ms"

// bodyHashHeader carries the rendered body's content hash for
// end-to-end integrity: the edge recomputes it over the received bytes
// and treats a mismatch as a replica failure.
const bodyHashHeader = "X-Strudel-Body-Hash"

// ReplicaServer exposes one replica as an HTTP shard server:
// GET /page/<key> renders the page and tags the response with the
// replica's data generation and body checksum. Errors map like the
// edge: dead replica 503 + Retry-After, deadline 504, other failures
// sanitized 500.
type ReplicaServer struct {
	Replica *Replica
	// RetryAfter is the recovery hint advertised on a down replica's
	// 503; 0 means 1s.
	RetryAfter time.Duration
}

// Handler returns the replica server's HTTP handler.
func (s *ReplicaServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/page/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/page/")
		key, err := url.PathUnescape(raw)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		ref, err := DecodeRef(key)
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if ms, ok := parseDeadlineMs(r.Header.Get(deadlineHeader)); ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, ms)
			defer cancel()
		}
		body, gen, err := s.Replica.Render(ctx, ref)
		if err != nil {
			switch {
			case err == ErrReplicaDown:
				ra := s.RetryAfter
				if ra <= 0 {
					ra = time.Second
				}
				w.Header().Set("Retry-After", retryAfterSeconds(ra))
				http.Error(w, "replica down", http.StatusServiceUnavailable)
			case ctx.Err() != nil:
				http.Error(w, "request timed out", http.StatusGatewayTimeout)
			default:
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set(genHeader, strconv.FormatInt(gen, 10))
		w.Header().Set(bodyHashHeader, htmlgen.PageHash(body))
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, body)
	})
	return mux
}

// ReplicaHandler exposes one replica as an HTTP shard server with
// default settings.
func ReplicaHandler(rep *Replica) http.Handler {
	return (&ReplicaServer{Replica: rep}).Handler()
}

// parseDeadlineMs parses the deadline header into a remaining budget.
func parseDeadlineMs(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// HTTPCluster is a Cluster whose shard fetches go over real HTTP to
// replica servers, through the same gray-failure policy as the
// in-process fleet: health-ordered routing, tail-latency hedging,
// per-replica circuit breakers, budget-bounded failover. Routing,
// generations, and entry points delegate to the underlying fleet (in a
// multi-process deployment those would come from configuration and a
// coordination channel; the tests' concern here is the data path).
type HTTPCluster struct {
	Fleet *Fleet
	// URLs[shard] lists the base URLs of that shard's replica servers.
	URLs   [][]string
	Client *http.Client

	gray *grayState
}

// httpAttemptTimeout bounds each outbound replica request (connect,
// response, and full body read) when the fleet's GrayConfig left
// AttemptTimeout unset. The in-process path can afford "parent deadline
// only"; over a network, an unbounded attempt means a stalled replica
// ties up the whole request until the edge deadline — exactly the gray
// failure this layer exists to route around.
const httpAttemptTimeout = 5 * time.Second

// NewHTTPCluster wraps a fleet with per-replica HTTP endpoints. The
// gray-failure config (and metrics sink) comes from the fleet's own
// Config; the cluster keeps its own health grid because replica
// identity differs (URLs, not in-process handles).
func NewHTTPCluster(f *Fleet, urls [][]string) *HTTPCluster {
	counts := make([]int, len(urls))
	for s, u := range urls {
		counts[s] = len(u)
	}
	gcfg := f.cfg.Gray
	if gcfg.AttemptTimeout <= 0 {
		gcfg.AttemptTimeout = httpAttemptTimeout
	}
	return &HTTPCluster{
		Fleet:  f,
		URLs:   urls,
		Client: &http.Client{Timeout: 30 * time.Second},
		gray:   newGrayState(gcfg, counts, f.cfg.Obs),
	}
}

func (c *HTTPCluster) Route(key string) int           { return c.Fleet.Route(key) }
func (c *HTTPCluster) Generation() int64              { return c.Fleet.Generation() }
func (c *HTTPCluster) GenTime(gen int64) time.Time    { return c.Fleet.GenTime(gen) }
func (c *HTTPCluster) LastSwap() time.Time            { return c.Fleet.LastSwap() }
func (c *HTTPCluster) EntryPoints() []dynamic.PageRef { return c.Fleet.EntryPoints() }
func (c *HTTPCluster) KnownFn(fn string) bool         { return c.Fleet.KnownFn(fn) }

// Health returns one replica endpoint's health account.
func (c *HTTPCluster) Health(shard, i int) *ReplicaHealth { return c.gray.Health(shard, i) }

// HealthSnapshot reports the cluster's health grid for /debug/vars.
func (c *HTTPCluster) HealthSnapshot() map[string]any { return c.gray.Snapshot() }

// StartHealthChecks begins active probing of every replica endpoint:
// each probe fetches the site's first entry point over HTTP. Probes
// stop when ctx is cancelled.
func (c *HTTPCluster) StartHealthChecks(ctx context.Context) {
	eps := c.Fleet.EntryPoints()
	if len(eps) == 0 {
		return
	}
	key := EncodeRef(eps[0])
	c.gray.startProbes(ctx, func(ctx context.Context, shard, idx int) error {
		_, _, err := c.fetchOne(ctx, c.URLs[shard][idx], key)
		return err
	})
}

// Fetch renders a page over HTTP on the owning shard through the
// gray-failure policy.
func (c *HTTPCluster) Fetch(ctx context.Context, shard int, key string, ref dynamic.PageRef) (string, int64, error) {
	if shard < 0 || shard >= len(c.URLs) {
		return "", 0, fmt.Errorf("fleet: no such shard %d", shard)
	}
	if m := c.Fleet.cfg.Obs; m != nil {
		m.ShardFetches.Inc()
	}
	return c.gray.fetch(ctx, shard, func(ctx context.Context, idx int) (string, int64, error) {
		return c.fetchOne(ctx, c.URLs[shard][idx], key)
	})
}

// fetchOne performs a single replica request. Transport failures,
// 503s, and checksum mismatches come back as *errUnavail (retryable on
// a sibling, possibly carrying the replica's Retry-After hint); any
// other non-200 is deterministic and surfaces as-is.
func (c *HTTPCluster) fetchOne(ctx context.Context, base, key string) (string, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/page/"+urlEscapeKey(key), nil)
	if err != nil {
		return "", 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return "", 0, &errUnavail{cause: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		// Reset or stall mid-body: the request context (attempt
		// timeout) unblocks the read; either way the bytes are unusable.
		return "", 0, &errUnavail{cause: err}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if want := resp.Header.Get(bodyHashHeader); want != "" && htmlgen.PageHash(string(b)) != want {
			if m := c.Fleet.cfg.Obs; m != nil {
				m.ChecksumFailures.Inc()
			}
			return "", 0, &errUnavail{cause: fmt.Errorf("body checksum mismatch from %s", base)}
		}
		gen, _ := strconv.ParseInt(resp.Header.Get(genHeader), 10, 64)
		return string(b), gen, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return "", 0, &errUnavail{
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			cause:      fmt.Errorf("replica %s: status 503", base),
		}
	default:
		return "", 0, fmt.Errorf("fleet: replica %s: status %d", base, resp.StatusCode)
	}
}

// parseRetryAfter parses a Retry-After header's delay-seconds form
// (the only form this tier emits); 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
