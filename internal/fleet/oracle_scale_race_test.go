//go:build race

package fleet

// Under the race detector every render costs an order of magnitude
// more, so the serving differential oracle sweeps a single-seed smoke
// subset and waives the request-count floor; the full sweep runs in the
// plain suite (oracle_scale_test.go).
const (
	fleetOracleSeeds  = 1
	minOracleRequests = 0
)
