package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/obs"
)

// LoadGen is an open-loop HTTP load generator for the serving tier:
// arrivals fire at a fixed rate regardless of how fast responses come
// back (the open-loop property — a slow server faces a growing backlog,
// exactly like real traffic, instead of the closed-loop mercy of
// waiting clients), page popularity is zipfian over the discovered page
// set, and latency lands in an obs.Histogram whose power-of-two
// percentiles the report reads back.
type LoadGen struct {
	// BaseURL is the edge under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Rate is the arrival rate in requests/second (required > 0).
	Rate float64
	// Duration is the measured window; Warmup runs first at the same
	// rate with results discarded (cold caches, JIT-ish warm paths).
	Duration time.Duration
	Warmup   time.Duration
	// ZipfS and ZipfV shape the popularity skew (s > 1; larger s =
	// steeper head). Zero values default to 1.1 / 1.
	ZipfS float64
	ZipfV float64
	// MaxPages bounds crawl discovery. 0 means DefaultMaxPages.
	MaxPages int
	// Seed makes page popularity reproducible.
	Seed int64
	// Client is the HTTP client; nil uses a pooled default.
	Client *http.Client
	// Verify, when non-nil, is called with every measured response body
	// (the serving oracle hook: the loadgen smoke asserts zero
	// mismatches against a reference evaluator).
	Verify func(path, body string) error
	// MaxInflight caps concurrently outstanding requests so an
	// overwhelmed server does not translate into unbounded goroutines;
	// arrivals past the cap are counted as dropped, not sent. 0 means
	// DefaultMaxInflight.
	MaxInflight int
	// AllowStatus lists non-200 statuses counted as allowed instead of
	// errors — chaos drills expect 503s from a shard with every replica
	// down and must not fail the run on them.
	AllowStatus []int
	// Queries switches the generator from page GETs to query POSTs:
	// when non-empty, page discovery is skipped and each arrival POSTs
	// one of these StruQL where clauses to /query (zipf-weighted, like
	// pages), measuring the query API under the same open-loop arrivals
	// as page serving — that symmetry is what makes the queries/sec vs
	// pages/sec comparison in BENCH_query.json meaningful.
	Queries []string
	// QueryPageSize is the page_size sent with each query request
	// (0 = server default).
	QueryPageSize int
}

// DefaultMaxPages bounds page discovery when MaxPages is 0.
const DefaultMaxPages = 4096

// DefaultMaxInflight bounds outstanding requests when MaxInflight is 0.
const DefaultMaxInflight = 1024

// Report is the load run's outcome, JSON-shaped for BENCH_serve.json.
type Report struct {
	Pages        int     `json:"pages"`
	Requests     int64   `json:"requests"`
	Dropped      int64   `json:"dropped"`
	Errors       int64   `json:"errors"`
	Allowed      int64   `json:"allowed"`
	Mismatches   int64   `json:"mismatches"`
	DurationSecs float64 `json:"duration_secs"`
	Throughput   float64 `json:"throughput_rps"`
	MeanNanos    float64 `json:"mean_nanos"`
	P50Nanos     int64   `json:"p50_nanos"`
	P99Nanos     int64   `json:"p99_nanos"`
	P999Nanos    int64   `json:"p999_nanos"`
	// Status counts responses by HTTP status code.
	Status map[string]int64 `json:"status"`
}

// WriteJSON renders the report.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

var hrefRe = regexp.MustCompile(`href="(/page/[^"]+)"`)

// Discover crawls the site from its root, breadth-first over embedded
// /page/ links, and returns the discovered page paths (the root first).
func (lg *LoadGen) Discover(ctx context.Context) ([]string, error) {
	maxPages := lg.MaxPages
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	client := lg.client()
	seen := map[string]bool{"/": true}
	order := []string{"/"}
	for qi := 0; qi < len(order) && len(order) < maxPages; qi++ {
		body, _, err := lg.get(ctx, client, order[qi])
		if err != nil {
			if qi == 0 {
				return nil, fmt.Errorf("loadgen: crawling root: %w", err)
			}
			continue // a dead link is the site's business, not the crawler's
		}
		for _, m := range hrefRe.FindAllStringSubmatch(body, -1) {
			p := m[1]
			if !seen[p] {
				seen[p] = true
				order = append(order, p)
				if len(order) >= maxPages {
					break
				}
			}
		}
	}
	return order, nil
}

func (lg *LoadGen) client() *http.Client {
	if lg.Client != nil {
		return lg.Client
	}
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        DefaultMaxInflight,
			MaxIdleConnsPerHost: DefaultMaxInflight,
		},
	}
}

func (lg *LoadGen) get(ctx context.Context, client *http.Client, path string) (string, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, lg.BaseURL+path, nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(b), resp.StatusCode, nil
}

// fetch performs one arrival: a page GET, or — in query mode — a POST
// of the chosen where clause to /query.
func (lg *LoadGen) fetch(ctx context.Context, client *http.Client, item string) (string, int, error) {
	if len(lg.Queries) == 0 {
		return lg.get(ctx, client, item)
	}
	env, err := json.Marshal(struct {
		Query    string `json:"query"`
		PageSize int    `json:"page_size,omitempty"`
	}{Query: item, PageSize: lg.QueryPageSize})
	if err != nil {
		return "", 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, lg.BaseURL+"/query", bytes.NewReader(env))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(b), resp.StatusCode, nil
}

// Run discovers the page set (or takes the query list), applies warmup,
// then drives the measured open-loop window and returns the report.
func (lg *LoadGen) Run(ctx context.Context) (Report, error) {
	if lg.Rate <= 0 {
		return Report{}, fmt.Errorf("loadgen: rate must be > 0")
	}
	pages := lg.Queries
	if len(pages) == 0 {
		var err error
		pages, err = lg.Discover(ctx)
		if err != nil {
			return Report{}, err
		}
	}
	if len(pages) == 0 {
		return Report{}, fmt.Errorf("loadgen: no pages discovered")
	}

	zs, zv := lg.ZipfS, lg.ZipfV
	if zs <= 1 {
		zs = 1.1
	}
	if zv < 1 {
		zv = 1
	}
	rng := rand.New(rand.NewSource(lg.Seed))
	zipf := rand.NewZipf(rng, zs, zv, uint64(len(pages)-1))

	if lg.Warmup > 0 {
		lg.drive(ctx, pages, zipf, lg.Warmup, nil)
	}
	rep := &runStats{hist: &obs.Histogram{}, status: map[string]int64{}}
	lg.drive(ctx, pages, zipf, lg.Duration, rep)

	out := Report{
		Pages:        len(pages),
		Requests:     rep.requests.Load(),
		Dropped:      rep.dropped.Load(),
		Errors:       rep.errors.Load(),
		Allowed:      rep.allowed.Load(),
		Mismatches:   rep.mismatches.Load(),
		DurationSecs: lg.Duration.Seconds(),
		MeanNanos:    rep.hist.Mean(),
		P50Nanos:     rep.hist.Quantile(0.50),
		P99Nanos:     rep.hist.Quantile(0.99),
		P999Nanos:    rep.hist.Quantile(0.999),
		Status:       rep.statusCopy(),
	}
	if lg.Duration > 0 {
		out.Throughput = float64(out.Requests) / lg.Duration.Seconds()
	}
	return out, nil
}

// runStats accumulates one measured window.
type runStats struct {
	requests   atomic.Int64
	dropped    atomic.Int64
	errors     atomic.Int64
	allowed    atomic.Int64
	mismatches atomic.Int64
	hist       *obs.Histogram

	mu     sync.Mutex
	status map[string]int64
}

func (s *runStats) count(status int) {
	s.mu.Lock()
	s.status[fmt.Sprintf("%d", status)]++
	s.mu.Unlock()
}

func (s *runStats) statusCopy() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.status))
	for k, v := range s.status {
		out[k] = v
	}
	return out
}

func (lg *LoadGen) statusAllowed(status int) bool {
	for _, s := range lg.AllowStatus {
		if s == status {
			return true
		}
	}
	return false
}

// drive fires open-loop arrivals for one window. When stats is nil the
// window is warmup: requests fly, results are discarded.
func (lg *LoadGen) drive(ctx context.Context, pages []string, zipf *rand.Zipf, window time.Duration, stats *runStats) {
	client := lg.client()
	interval := time.Duration(float64(time.Second) / lg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	maxInflight := lg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(window)
	defer deadline.Stop()

	// Page choice happens on the arrival goroutine (zipf + rng are not
	// concurrency-safe); the request itself is handed off so a slow
	// response never delays the next arrival — the open-loop property.
	for running := true; running; {
		select {
		case <-ctx.Done():
			running = false
		case <-deadline.C:
			running = false
		case <-ticker.C:
			path := pages[zipf.Uint64()]
			select {
			case sem <- struct{}{}:
			default:
				if stats != nil {
					stats.dropped.Add(1)
				}
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				body, status, err := lg.fetch(ctx, client, path)
				elapsed := time.Since(start)
				if stats == nil {
					return
				}
				stats.requests.Add(1)
				stats.hist.Observe(int64(elapsed))
				if err != nil {
					stats.errors.Add(1)
					return
				}
				stats.count(status)
				if status != http.StatusOK {
					if lg.statusAllowed(status) {
						stats.allowed.Add(1)
					} else {
						stats.errors.Add(1)
					}
					return
				}
				if lg.Verify != nil {
					if verr := lg.Verify(path, body); verr != nil {
						stats.mismatches.Add(1)
					}
				}
			}()
		}
	}
	wg.Wait()
}

// SortedStatusKeys returns a report's status codes in order (stable
// output for logs and docs).
func (r Report) SortedStatusKeys() []string {
	keys := make([]string, 0, len(r.Status))
	for k := range r.Status {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
