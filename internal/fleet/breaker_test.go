package fleet

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the deterministic time source for breaker and health
// tests: state transitions happen when the test advances it, never
// because the test ran slowly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return newBreaker(BreakerConfig{
		Failures:       3,
		Window:         8,
		Rate:           0.5,
		MinSamples:     4,
		OpenFor:        time.Second,
		HalfOpenProbes: 1,
		CloseAfter:     2,
		Clock:          clk.Now,
	})
}

func TestBreakerConsecutiveFailureTrip(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	if b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed")
	}
	b.Record(false, false)
	b.Record(false, false)
	if b.State() != BreakerClosed {
		t.Fatal("two failures should not trip a Failures=3 breaker")
	}
	tripped, _ := b.Record(false, false)
	if !tripped || b.State() != BreakerOpen {
		t.Fatalf("third consecutive failure should trip: tripped=%v state=%v", tripped, b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker must refuse")
	}
	if r := b.RetryIn(); r <= 0 || r > time.Second {
		t.Fatalf("RetryIn = %v, want (0, 1s]", r)
	}
}

func TestBreakerRateTripCatchesFlapping(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// Alternating failure/success never builds 3 consecutive failures,
	// but the window hits the 50% rate once MinSamples accumulate.
	for i := 0; i < 8 && b.State() == BreakerClosed; i++ {
		b.Record(i%2 != 0, false) // fail, ok, fail, ok, ...
	}
	if b.State() != BreakerOpen {
		t.Fatalf("flapping outcomes should rate-trip the breaker, state=%v", b.State())
	}
}

func TestBreakerHalfOpenCycle(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false, false)
	}
	if b.State() != BreakerOpen {
		t.Fatal("not open after trip")
	}
	clk.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("cool-down elapsed: breaker should be half-open")
	}
	ok, trial := b.Allow()
	if !ok || !trial {
		t.Fatalf("half-open should admit one trial: ok=%v trial=%v", ok, trial)
	}
	// The trial slot is held: a second concurrent request is refused.
	if ok, _ := b.Allow(); ok {
		t.Fatal("HalfOpenProbes=1: second trial must be refused while one is in flight")
	}
	b.Record(true, true)
	ok, trial = b.Allow()
	if !ok || !trial {
		t.Fatal("slot released: next trial should be admitted")
	}
	if _, closed := b.Record(true, true); !closed {
		t.Fatal("CloseAfter=2 consecutive successes should close")
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false, false)
	}
	clk.Advance(time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open should admit a trial")
	}
	if tripped, _ := b.Record(false, true); !tripped {
		t.Fatal("a failed trial should re-trip")
	}
	if b.State() != BreakerOpen {
		t.Fatal("failed trial should reopen the breaker")
	}
	// And the cool-down restarts from now.
	clk.Advance(time.Second / 2)
	if b.State() != BreakerOpen {
		t.Fatal("cool-down should have restarted at the failed trial")
	}
}

func TestBreakerForcedSuccessWhileOpenHeals(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false, false)
	}
	// A fail-static forced request succeeded against the open breaker:
	// recovery was observed, so start probing without waiting out the
	// cool-down.
	b.Record(true, false)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("success while open should promote to half-open, got %v", b.State())
	}
	if _, closed := b.Record(true, false); !closed {
		t.Fatal("second success should close (CloseAfter=2, first counted while open)")
	}
}

func TestBreakerReleaseTrial(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(false, false)
	}
	clk.Advance(time.Second)
	if ok, trial := b.Allow(); !ok || !trial {
		t.Fatal("expected trial admission")
	}
	// The trial was cancelled through no fault of the replica (lost a
	// hedge race): the slot frees without an outcome.
	b.ReleaseTrial()
	if b.State() != BreakerHalfOpen {
		t.Fatal("releasing a trial must not change state")
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("released slot should re-admit")
	}
}

func TestRatioBudget(t *testing.T) {
	b := newRatioBudget(0.5, 2)
	// Starts full at burst.
	if !b.Take() || !b.Take() {
		t.Fatal("budget should start with burst tokens")
	}
	if b.Take() {
		t.Fatal("empty budget must refuse")
	}
	b.Deposit() // +0.5
	if b.Take() {
		t.Fatal("half a token is not a token")
	}
	b.Deposit() // 1.0
	if !b.Take() {
		t.Fatal("two deposits at ratio 0.5 should fund one withdrawal")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("deposits must cap at burst: %v", got)
	}
}
