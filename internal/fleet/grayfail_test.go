package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"strudel/internal/faultnet"
	"strudel/internal/obs"
)

// The gray-failure drill: a serving fleet where one replica is 200ms
// slow and another flaps up-down-up, driven by the open-loop load
// generator with every response byte-checked against the reference
// evaluator. The acceptance bar from the issue:
//
//   - zero body mismatches (the differential-oracle invariant holds
//     under faults);
//   - zero errors other than 503-with-Retry-After;
//   - p99 bounded by a small multiple of the healthy baseline (the
//     slow replica must not own the tail);
//   - the health machinery visibly engaged: hedges won, breakers
//     tripped and closed, the slow replica was demoted.

const drillSeed = 17

// drillGray is the gray config both baseline and drill fleets run.
func drillGray() GrayConfig {
	return GrayConfig{
		Breaker:        BreakerConfig{OpenFor: 200 * time.Millisecond},
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   time.Second,
		AttemptTimeout: time.Second,
	}
}

// drillCluster builds a fleet served over HTTP, with an optional fault
// proxy per replica, fronted by an edge with a deliberately tiny cache
// (a drill where the cache absorbs every request never exercises the
// backends).
func drillCluster(t *testing.T, m *obs.FleetMetrics, faults map[[2]int]faultnet.Schedule) (*httptest.Server, *HTTPCluster, context.CancelFunc) {
	t.Helper()
	const shards, replicas = 2, 2
	f := grayFleet(t, drillSeed, shards, replicas, m, drillGray())
	urls := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		for i := 0; i < replicas; i++ {
			var h http.Handler = ReplicaHandler(f.Replica(sh, i))
			if sched, ok := faults[[2]int{sh, i}]; ok {
				h = &faultnet.Proxy{Inner: h, Sched: sched}
			}
			rts := httptest.NewServer(h)
			t.Cleanup(rts.Close)
			urls[sh] = append(urls[sh], rts.URL)
		}
	}
	c := NewHTTPCluster(f, urls)
	ctx, cancel := context.WithCancel(context.Background())
	c.StartHealthChecks(ctx)
	e := quiet(NewEdge(c))
	e.Obs = m
	e.StaleFor = 0
	e.MaxEntries = 4
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(ts.Close)
	return ts, c, cancel
}

// drillLoad drives the load generator against an edge with full body
// verification against the reference evaluator.
func drillLoad(t *testing.T, ts *httptest.Server) Report {
	t.Helper()
	s := buildSchema(t)
	refSrv := newReference(t, s, genSiteData(drillSeed))
	expected := map[string]string{}
	for _, ref := range crawlRefs(t, refSrv) {
		body, err := refSrv.RenderPage(ref)
		if err != nil {
			t.Fatalf("reference render: %v", err)
		}
		expected[PageURL(ref)] = body
	}
	roots := refSrv.Ev.EntryPoints()
	expected["/"] = expected[PageURL(roots[0])]

	lg := &LoadGen{
		BaseURL:     ts.URL,
		Rate:        150,
		Duration:    2 * time.Second,
		Warmup:      400 * time.Millisecond,
		Seed:        drillSeed,
		AllowStatus: []int{http.StatusServiceUnavailable},
		Verify: func(path, body string) error {
			want, ok := expected[path]
			if !ok {
				return fmt.Errorf("unexpected path %s", path)
			}
			if body != want {
				return fmt.Errorf("body mismatch on %s", path)
			}
			return nil
		},
	}
	rep, err := lg.Run(context.Background())
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	return rep
}

func TestGrayFailureDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load drill")
	}

	// Healthy baseline: same topology, no faults.
	var mBase obs.FleetMetrics
	baseTS, _, stopBase := drillCluster(t, &mBase, nil)
	baseline := drillLoad(t, baseTS)
	stopBase()
	if baseline.Errors != 0 || baseline.Mismatches != 0 {
		t.Fatalf("baseline unhealthy: %+v", baseline)
	}

	// The drill: shard 0 replica 0 is 200ms slow on every request;
	// shard 1 replica 1 flaps — 20 clean responses, then 10 dropped
	// connections, repeating.
	var m obs.FleetMetrics
	grayTS, c, stopGray := drillCluster(t, &m, map[[2]int]faultnet.Schedule{
		{0, 0}: faultnet.Script{{Delay: 200 * time.Millisecond}},
		{1, 1}: faultnet.Flap{Up: 20, Down: 10},
	})
	gray := drillLoad(t, grayTS)
	stopGray()

	// Invariant 1: every 200 body matched the reference evaluator.
	if gray.Mismatches != 0 {
		t.Fatalf("drill served %d corrupted/mismatched bodies: %+v", gray.Mismatches, gray)
	}
	// Invariant 2: no failure mode other than 503 leaked to clients.
	if gray.Errors != 0 {
		t.Fatalf("drill produced %d non-503 errors: %+v", gray.Errors, gray)
	}
	for _, code := range gray.SortedStatusKeys() {
		if code != "200" && code != "503" {
			t.Fatalf("unexpected status %s in drill: %+v", code, gray.Status)
		}
	}
	// Invariant 3: the slow replica does not own the tail. The floor
	// absorbs the histogram's power-of-two bucket granularity on a
	// near-zero baseline.
	floor := int64(34 * time.Millisecond)
	bound := 5 * max64(baseline.P99Nanos, floor)
	if gray.P99Nanos > bound {
		t.Fatalf("drill p99 %v exceeds 5x healthy baseline (baseline p99 %v, bound %v)",
			time.Duration(gray.P99Nanos), time.Duration(baseline.P99Nanos), time.Duration(bound))
	}
	// Invariant 4: the machinery engaged and is observable.
	if m.Hedges.Load() == 0 || m.HedgeWins.Load() == 0 {
		t.Fatalf("no hedge wins against a 200ms-slow replica: hedges=%d wins=%d",
			m.Hedges.Load(), m.HedgeWins.Load())
	}
	if m.BreakerTrips.Load() == 0 {
		t.Fatal("the flapping replica never tripped a breaker")
	}
	if m.BreakerCloses.Load() == 0 {
		t.Fatal("no breaker ever closed again (no recovery observed)")
	}
	if m.SlowDemotions.Load() == 0 {
		t.Fatal("the slow replica was never demoted to suspect")
	}
	if m.Probes.Load() == 0 {
		t.Fatal("active health probes never ran")
	}
	snap := c.HealthSnapshot()
	if snap["shard0_replica0"] == "healthy" {
		t.Fatalf("the 200ms replica still reads healthy at drill end: %v", snap["shard0_replica0"])
	}

	writeDrillReport(t, baseline, gray, &m, snap)

	t.Logf("drill: baseline p99=%v gray p99=%v hedges=%d wins=%d trips=%d closes=%d demotions=%d probes=%d",
		time.Duration(baseline.P99Nanos), time.Duration(gray.P99Nanos),
		m.Hedges.Load(), m.HedgeWins.Load(), m.BreakerTrips.Load(),
		m.BreakerCloses.Load(), m.SlowDemotions.Load(), m.Probes.Load())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeDrillReport emits the drill outcome as JSON when
// CHAOS_SERVE_OUT names a file — the make chaos-serve artifact.
func writeDrillReport(t *testing.T, baseline, gray Report, m *obs.FleetMetrics, health map[string]any) {
	t.Helper()
	out := os.Getenv("CHAOS_SERVE_OUT")
	if out == "" {
		return
	}
	doc := map[string]any{
		"baseline": baseline,
		"gray":     gray,
		"metrics":  m.Snapshot(),
		"health":   health,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal drill report: %v", err)
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatalf("write drill report: %v", err)
	}
	t.Logf("drill report written to %s", out)
}
