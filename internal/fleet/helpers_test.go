package fleet

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"strudel/internal/dynamic"
	"strudel/internal/graph"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// The test harness: a seeded random site (data graph + fixed site
// definition with several page types), a reference single-evaluator
// server (the direct-EvalWhere answer every fleet/cache/transport
// configuration must reproduce byte for byte), and helpers to crawl the
// page space and probe edges.

const oracleSiteQuery = `
create Root()
link Root() -> "title" -> "Oracle Site"

where Pubs(x)
create Pub(x)
link Root() -> "pub" -> Pub(x), Pub(x) -> "self" -> x
{
  where x -> "title" -> t
  link Pub(x) -> "title" -> t
}
{
  where x -> "year" -> y
  create Year(y)
  link Year(y) -> "year" -> y,
       Year(y) -> "has" -> Pub(x),
       Root() -> "years" -> Year(y)
}
{
  where x -> "tag" -> g
  create Tag(g)
  link Tag(g) -> "tag" -> g,
       Tag(g) -> "member" -> Pub(x),
       Root() -> "tags" -> Tag(g)
}
`

// testRand is the same self-contained LCG the struql oracle uses, so
// fleet test corpora never shift under math/rand changes.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand {
	return &testRand{s: seed*2654435761 + 0x9e3779b97f4a7c15}
}

func (r *testRand) n(k int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(k))
}

// genSiteData builds a seeded random publications graph: varying record
// counts, shared years and tags (so index pages fan out), occasional
// float scores and missing attributes.
func genSiteData(seed uint64) *graph.Graph {
	r := newTestRand(seed)
	g := graph.New()
	n := 8 + r.n(24)
	for i := 0; i < n; i++ {
		oid := graph.OID(fmt.Sprintf("pub%02d", i))
		g.AddToCollection("Pubs", oid)
		g.AddEdge(oid, "title", graph.NewString(fmt.Sprintf("Title %02d seed%d", i, seed%97)))
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+r.n(8))))
		for t := r.n(3); t > 0; t-- {
			g.AddEdge(oid, "tag", graph.NewString([]string{"db", "web", "lang", "sys"}[r.n(4)]))
		}
		if r.n(4) == 0 {
			g.AddEdge(oid, "score", graph.NewFloat(float64(r.n(100))/4))
		}
	}
	return g
}

// mutateSiteData returns a modified copy of a site graph — the "hot
// reload" edit: one new publication, one retitled, one year moved.
func mutateSiteData(seed uint64) *graph.Graph {
	g := genSiteData(seed)
	r := newTestRand(seed ^ 0xdeadbeef)
	oid := graph.OID(fmt.Sprintf("pubNEW%d", r.n(100)))
	g.AddToCollection("Pubs", oid)
	g.AddEdge(oid, "title", graph.NewString("Hot Reloaded"))
	g.AddEdge(oid, "year", graph.NewInt(int64(1998)))
	g.AddEdge("pub00", "title", graph.NewString("Retitled by reload"))
	g.AddEdge("pub01", "year", graph.NewInt(2001))
	return g
}

// buildSchema parses the oracle site definition.
func buildSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.Build(struql.MustParse(oracleSiteQuery))
}

// newReference builds the single-evaluator reference server over a data
// graph: a plain dynamic.Server whose only fleet-ism is the page-key
// URL scheme, so its bytes are directly comparable with edge responses.
func newReference(t testing.TB, s *schema.Schema, g *graph.Graph) *dynamic.Server {
	t.Helper()
	ev := dynamic.NewEvaluator(s, repo.NewIndexed(g))
	srv := dynamic.NewServer(ev, template.NewSet())
	srv.PageURLFunc = func(ref dynamic.PageRef, _ graph.OID) string { return PageURL(ref) }
	return srv
}

// crawlRefs walks the reference evaluator's page space breadth-first
// from the entry points and returns every reachable page ref.
func crawlRefs(t testing.TB, srv *dynamic.Server) []dynamic.PageRef {
	t.Helper()
	var out []dynamic.PageRef
	seen := map[string]bool{}
	queue := srv.Ev.EntryPoints()
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		key := EncodeRef(ref)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ref)
		pd, err := srv.Ev.Page(ref)
		if err != nil {
			t.Fatalf("crawl %s: %v", key, err)
		}
		queue = append(queue, pd.Links...)
	}
	return out
}

// newTestFleet builds a fleet (and the frozen-snapshot source it
// replicates) over a data graph.
func newTestFleet(t testing.TB, s *schema.Schema, g *graph.Graph, shards, replicas int) *Fleet {
	t.Helper()
	f, err := New(Config{Schema: s, Shards: shards, Replicas: replicas}, repo.NewIndexed(g))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

// get performs one GET against a handler-backed test server, returning
// status, headers, and body.
func get(t testing.TB, ts *httptest.Server, path string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// quiet silences an edge's server-side error log (chaos tests produce
// expected 503s by the hundred).
func quiet(e *Edge) *Edge {
	e.Logger = log.New(io.Discard, "", 0)
	return e
}

// readAll drains and closes a response body.
func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

var etagGenRe = regexp.MustCompile(`^"g(\d+)-`)

// etagGen extracts the generation from a generation-scoped ETag.
func etagGen(t testing.TB, etag string) int64 {
	t.Helper()
	m := etagGenRe.FindStringSubmatch(etag)
	if m == nil {
		t.Fatalf("ETag %q is not generation-scoped", etag)
	}
	g, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatalf("ETag %q: %v", etag, err)
	}
	return g
}
