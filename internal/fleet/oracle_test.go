package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/repo"
	"strudel/internal/schema"
)

// The serving differential oracle: every page served by any fleet
// configuration — any shard count, any replica, cache cold, hot, or
// stale, before and after a mid-run hot reload, in-process or over real
// HTTP — must be byte-identical to what a single evaluator answers
// directly for the same data generation. The reference is computed per
// generation with dynamic.Server over a plain indexed graph (the direct
// EvalWhere path); the fleet path adds SGB2 snapshot replication,
// consistent-hash routing, replica rotation, the edge cache, and
// optionally an HTTP hop, none of which may change a byte.

// refOracle holds per-generation reference servers and memoizes page
// renders.
type refOracle struct {
	t      *testing.T
	refs   map[int64]*dynamic.Server
	bodies map[int64]map[string]string
}

func newRefOracle(t *testing.T) *refOracle {
	return &refOracle{
		t:      t,
		refs:   map[int64]*dynamic.Server{},
		bodies: map[int64]map[string]string{},
	}
}

func (o *refOracle) addGen(gen int64, srv *dynamic.Server) {
	o.refs[gen] = srv
	o.bodies[gen] = map[string]string{}
}

// body returns the reference rendering of a page at a generation.
func (o *refOracle) body(gen int64, ref dynamic.PageRef) string {
	key := EncodeRef(ref)
	if b, ok := o.bodies[gen][key]; ok {
		return b
	}
	srv := o.refs[gen]
	if srv == nil {
		o.t.Fatalf("oracle response claims unknown generation %d", gen)
	}
	b, err := srv.RenderPage(ref)
	if err != nil {
		o.t.Fatalf("reference render of %s at gen %d: %v", key, gen, err)
	}
	o.bodies[gen][key] = b
	return b
}

// check asserts a served body matches the reference for the generation
// the response was tagged with, and returns 1 (an oracle request).
func (o *refOracle) check(where string, gen int64, ref dynamic.PageRef, body string) int {
	if want := o.body(gen, ref); body != want {
		o.t.Fatalf("%s: page %s at gen %d differs from single-evaluator reference\n got: %q\nwant: %q",
			where, EncodeRef(ref), gen, body, want)
	}
	return 1
}

func TestServingDifferentialOracle(t *testing.T) {
	s := buildSchema(t)
	seeds := fleetOracleSeeds
	if testing.Short() {
		seeds = 1
	}
	total := 0
	for seed := 1; seed <= seeds; seed++ {
		for _, shards := range []int{1, 2, 4} {
			total += runServingOracle(t, s, uint64(seed), shards)
		}
	}
	t.Logf("serving oracle: %d requests byte-checked", total)
	if !testing.Short() && total < minOracleRequests {
		t.Fatalf("oracle issued %d requests, acceptance floor is %d", total, minOracleRequests)
	}
}

// runServingOracle drives one (site seed, shard count) cell of the
// matrix: direct replica sweeps, then cold/hot/conditional requests
// through the edge, then a hot reload with stale-window and post-reload
// checks. Returns the number of oracle requests issued.
func runServingOracle(t *testing.T, s *schema.Schema, seed uint64, shards int) int {
	const replicas = 2
	g0, g1 := genSiteData(seed), mutateSiteData(seed)
	f := newTestFleet(t, s, g0, shards, replicas)
	e := NewEdge(f)
	e.StaleFor = 30 * time.Second // make the stale state deterministically observable
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	oracle := newRefOracle(t)
	oracle.addGen(0, newReference(t, s, g0))
	oracle.addGen(1, newReference(t, s, g1))
	refs := crawlRefs(t, oracle.refs[0])

	// Seeded shuffle: the request order and per-page replica picks vary
	// by seed without losing reproducibility.
	r := newTestRand(seed ^ uint64(shards)<<32)
	for i := len(refs) - 1; i > 0; i-- {
		j := r.n(i + 1)
		refs[i], refs[j] = refs[j], refs[i]
	}

	n := 0
	etag0 := map[string]string{}
	for _, ref := range refs {
		key := EncodeRef(ref)

		// Any replica of the owning shard, asked directly, agrees with
		// the reference.
		rep := f.Replica(f.Route(key), r.n(replicas))
		body, gen, err := rep.Render(context.Background(), ref)
		if err != nil {
			t.Fatalf("replica render %s: %v", key, err)
		}
		n += oracle.check("direct replica", gen, ref, body)

		// Cold: first edge request misses the cache and fetches.
		status, hdr, body := get(t, ts, PageURL(ref), nil)
		if status != http.StatusOK {
			t.Fatalf("cold GET %s = %d", PageURL(ref), status)
		}
		n += oracle.check("edge cold", etagGen(t, hdr.Get("ETag")), ref, body)
		etag0[key] = hdr.Get("ETag")

		// Hot: second request serves the cached bytes.
		status, hdr, body = get(t, ts, PageURL(ref), nil)
		if status != http.StatusOK {
			t.Fatalf("hot GET %s = %d", PageURL(ref), status)
		}
		n += oracle.check("edge hot", etagGen(t, hdr.Get("ETag")), ref, body)

		// Conditional: the validator just issued answers 304.
		status, _, _ = get(t, ts, PageURL(ref), map[string]string{"If-None-Match": etag0[key]})
		if status != http.StatusNotModified {
			t.Fatalf("conditional GET %s = %d, want 304", PageURL(ref), status)
		}
	}

	// Mid-run hot reload: every replica of every shard swaps to the same
	// new generation.
	f.SwapData(repo.NewIndexed(g1), nil)

	for _, ref := range refs {
		key := EncodeRef(ref)

		// Stale: inside the SWR window the edge may serve the pre-reload
		// bytes or already-revalidated fresh ones — either way the body
		// must match the reference for the generation it is tagged with.
		status, hdr, body := get(t, ts, PageURL(ref), nil)
		if status != http.StatusOK {
			t.Fatalf("stale-window GET %s = %d", PageURL(ref), status)
		}
		n += oracle.check("edge stale-window", etagGen(t, hdr.Get("ETag")), ref, body)

		// Conditional with the pre-reload validator: must revalidate
		// synchronously to a full 200 at the new generation.
		status, hdr, body = get(t, ts, PageURL(ref), map[string]string{"If-None-Match": etag0[key]})
		if status != http.StatusOK {
			t.Fatalf("post-reload conditional GET %s = %d, want 200", PageURL(ref), status)
		}
		if gen := etagGen(t, hdr.Get("ETag")); gen != 1 {
			t.Fatalf("post-reload conditional GET %s served generation %d, want 1", PageURL(ref), gen)
		} else {
			n += oracle.check("edge post-reload", gen, ref, body)
		}

		// Post-reload direct replica sweep at the new generation.
		rep := f.Replica(f.Route(key), r.n(replicas))
		body, gen, err := rep.Render(context.Background(), ref)
		if err != nil {
			t.Fatalf("post-reload replica render %s: %v", key, err)
		}
		if gen != 1 {
			t.Fatalf("post-reload replica render %s at generation %d, want 1", key, gen)
		}
		n += oracle.check("direct replica post-reload", gen, ref, body)
	}
	return n
}

// TestServingOracleOverHTTP runs the oracle matrix's served-over-HTTP
// configuration: oracle query → edge → HTTP hop → shard replica must
// equal the direct evaluator answer, before and after a reload.
func TestServingOracleOverHTTP(t *testing.T) {
	const shards, replicas = 2, 2
	s := buildSchema(t)
	g0, g1 := genSiteData(7), mutateSiteData(7)
	f := newTestFleet(t, s, g0, shards, replicas)

	// Every replica becomes its own HTTP server, like a multi-process
	// deployment.
	urls := make([][]string, shards)
	for sh := 0; sh < shards; sh++ {
		for i := 0; i < replicas; i++ {
			rts := httptest.NewServer(ReplicaHandler(f.Replica(sh, i)))
			defer rts.Close()
			urls[sh] = append(urls[sh], rts.URL)
		}
	}
	e := NewEdge(NewHTTPCluster(f, urls))
	e.StaleFor = 0 // post-reload requests must synchronously cross the wire
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	oracle := newRefOracle(t)
	oracle.addGen(0, newReference(t, s, g0))
	oracle.addGen(1, newReference(t, s, g1))
	refs := crawlRefs(t, oracle.refs[0])

	n := 0
	for _, ref := range refs {
		status, hdr, body := get(t, ts, PageURL(ref), nil)
		if status != http.StatusOK {
			t.Fatalf("HTTP-cluster GET %s = %d", PageURL(ref), status)
		}
		n += oracle.check("http cluster", etagGen(t, hdr.Get("ETag")), ref, body)
	}
	f.SwapData(repo.NewIndexed(g1), nil)
	for _, ref := range refs {
		status, hdr, body := get(t, ts, PageURL(ref), nil)
		if status != http.StatusOK {
			t.Fatalf("HTTP-cluster post-reload GET %s = %d", PageURL(ref), status)
		}
		if gen := etagGen(t, hdr.Get("ETag")); gen != 1 {
			t.Fatalf("HTTP-cluster post-reload GET %s at generation %d, want 1", PageURL(ref), gen)
		} else {
			n += oracle.check("http cluster post-reload", gen, ref, body)
		}
	}
	t.Logf("HTTP-cluster oracle: %d requests byte-checked", n)
}
