package fleet

import (
	"context"
	"fmt"

	"strudel/internal/struql"
)

// This file is the query workload's seam into the fleet: the query API
// evaluates StruQL conditions against one replica's generation-pinned
// snapshot, through the same gray-failure machinery (health-ordered
// routing, hedging, breakers, failover) page fetches use. The closure
// signature is deliberately an unnamed func type so packages can depend
// on the capability without importing fleet.

// EvalSource runs an evaluation closure against this replica's data
// snapshot, handing it the source and generation from one atomic read.
// A killed replica refuses immediately; a kill mid-evaluation cancels
// the closure's context and reports ErrReplicaDown so the caller fails
// over — the same life-context discipline Render uses.
func (r *Replica) EvalSource(ctx context.Context, fn func(context.Context, struql.Source, int64) (string, error)) (string, int64, error) {
	life, down := r.lifeCtx()
	if down {
		return "", 0, ErrReplicaDown
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(life, cancel)
	defer stop()
	src, gen := r.ev.SourceGen()
	out, err := fn(rctx, src, gen)
	if err != nil {
		if ctx.Err() == nil && life.Err() != nil {
			return "", gen, ErrReplicaDown
		}
		return "", gen, err
	}
	return out, gen, nil
}

// EvalOn routes an evaluation closure to the shard owning key and runs
// it on a live replica there under the gray-failure policy. Queries
// thereby inherit everything pages get: hot-reload generation
// snapshots, health-ordered replica selection, hedging, and failover.
// Deterministic evaluation errors (parse problems, guard trips,
// generation mismatches) are NOT failed over — a sibling replica on the
// same generation would fail identically — while refusals from down
// replicas and timeouts are retried on siblings until the shard is
// exhausted (then ErrShardDown with a Retry-After hint).
func (f *Fleet) EvalOn(ctx context.Context, key string, fn func(context.Context, struql.Source, int64) (string, error)) (string, int64, error) {
	shard := f.Route(key)
	if shard < 0 || shard >= len(f.grid) {
		return "", 0, fmt.Errorf("fleet: no such shard %d", shard)
	}
	if m := f.cfg.Obs; m != nil {
		m.ShardFetches.Inc()
	}
	return f.gray.fetch(ctx, shard, func(ctx context.Context, idx int) (string, int64, error) {
		return f.grid[shard][idx].EvalSource(ctx, fn)
	})
}
