package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/dynamic"
	"strudel/internal/obs"
	"strudel/internal/repo"
)

// TestStaleWhileRevalidateExactBoundary pins the edge clock and probes
// the -stale-for window at its exact edge: a request landing exactly
// StaleFor after the swap is still inside the window (<=) and gets the
// stale bytes; one nanosecond later it is outside and fetches
// synchronously at the new generation.
func TestStaleWhileRevalidateExactBoundary(t *testing.T) {
	s := buildSchema(t)
	g0, g1 := genSiteData(11), mutateSiteData(11)
	f := newTestFleet(t, s, g0, 1, 1)
	var m obs.FleetMetrics
	e := NewEdge(f)
	e.Obs = &m
	e.StaleFor = 2 * time.Second
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	refs := crawlRefs(t, newReference(t, s, g0))
	if len(refs) < 2 {
		t.Fatal("need at least two pages")
	}
	atBoundary, pastBoundary := refs[0], refs[1]

	// Prime both pages at generation 0, then reload.
	for _, ref := range []dynamic.PageRef{atBoundary, pastBoundary} {
		if status, _, _ := get(t, ts, PageURL(ref), nil); status != http.StatusOK {
			t.Fatalf("prime GET %s failed", PageURL(ref))
		}
	}
	f.SwapData(repo.NewIndexed(g1), nil)
	swapAt := f.LastSwap()

	// Exactly StaleFor after the swap: still stale-servable.
	e.Now = func() time.Time { return swapAt.Add(e.StaleFor) }
	status, hdr, _ := get(t, ts, PageURL(atBoundary), nil)
	if status != http.StatusOK {
		t.Fatalf("boundary GET = %d", status)
	}
	if gen := etagGen(t, hdr.Get("ETag")); gen != 0 {
		t.Fatalf("at the exact boundary the stale generation-0 entry should serve, got gen %d", gen)
	}
	if m.StaleServed.Load() != 1 {
		t.Fatalf("StaleServed = %d, want 1", m.StaleServed.Load())
	}

	// One nanosecond past: the window is over, fetch synchronously.
	e.Now = func() time.Time { return swapAt.Add(e.StaleFor + time.Nanosecond) }
	status, hdr, _ = get(t, ts, PageURL(pastBoundary), nil)
	if status != http.StatusOK {
		t.Fatalf("past-boundary GET = %d", status)
	}
	if gen := etagGen(t, hdr.Get("ETag")); gen != 1 {
		t.Fatalf("past the window the fetch must be synchronous at gen 1, got gen %d", gen)
	}
	if m.StaleServed.Load() != 1 {
		t.Fatalf("StaleServed = %d after the window closed, want still 1", m.StaleServed.Load())
	}
}

// slowCluster wraps a Cluster, counting fetches and delaying each one —
// the slow backend that makes revalidation collapse observable.
type slowCluster struct {
	Cluster
	delay   time.Duration
	fetches atomic.Int64
}

func (c *slowCluster) Fetch(ctx context.Context, shard int, key string, ref dynamic.PageRef) (string, int64, error) {
	c.fetches.Add(1)
	select {
	case <-time.After(c.delay):
	case <-ctx.Done():
		return "", 0, ctx.Err()
	}
	return c.Cluster.Fetch(ctx, shard, key, ref)
}

// TestSingleFlightRevalidationCollapses fires many concurrent requests
// at one stale page over a slow backend: every request is served stale
// immediately, and all of them collapse into a single background
// revalidation fetch.
func TestSingleFlightRevalidationCollapses(t *testing.T) {
	s := buildSchema(t)
	g0, g1 := genSiteData(13), mutateSiteData(13)
	f := newTestFleet(t, s, g0, 1, 1)
	sc := &slowCluster{Cluster: f, delay: 150 * time.Millisecond}
	e := NewEdge(sc)
	e.StaleFor = time.Hour // every post-swap request lands inside the window
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	ref := f.EntryPoints()[0]
	if status, _, _ := get(t, ts, PageURL(ref), nil); status != http.StatusOK {
		t.Fatal("prime failed")
	}
	if got := sc.fetches.Load(); got != 1 {
		t.Fatalf("prime fetches = %d", got)
	}
	f.SwapData(repo.NewIndexed(g1), nil)

	const concurrent = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, hdr, _ := get(t, ts, PageURL(ref), nil)
			if status != http.StatusOK {
				t.Errorf("concurrent GET = %d", status)
			}
			if gen := etagGen(t, hdr.Get("ETag")); gen != 0 {
				t.Errorf("stale window should serve gen 0 instantly, got %d", gen)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("stale serves blocked on the slow backend: %v for %d requests", el, concurrent)
	}

	// Wait for the background revalidation to land; the polling GETs
	// are stale hits (or, at the end, fresh hits) and never fetch.
	deadline := time.Now().Add(5 * time.Second)
	var gen int64
	for time.Now().Before(deadline) {
		_, hdr, _ := get(t, ts, PageURL(ref), nil)
		if gen = etagGen(t, hdr.Get("ETag")); gen == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if gen != 1 {
		t.Fatalf("revalidation never landed, still at gen %d", gen)
	}
	// All sixteen stale hits collapsed into one revalidation fetch.
	if got := sc.fetches.Load(); got != 2 {
		t.Fatalf("backend fetches = %d, want 2 (prime + one collapsed revalidation)", got)
	}
}
