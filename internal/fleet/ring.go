package fleet

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over page keys. Each shard contributes
// ringPointsPerShard virtual points (hashes of "shard-<i>-<p>"); a page
// key routes to the shard owning the first point at or after the key's
// hash, wrapping around. Consistent hashing is what keeps the partition
// stable as the fleet is resized: growing from N to N+1 shards moves
// only the keys that land in the new shard's arcs (~1/(N+1) of the
// space), instead of reshuffling everything the way key%N would.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringPointsPerShard balances the partition: with v virtual points per
// shard the expected imbalance shrinks like 1/sqrt(v).
const ringPointsPerShard = 128

// fnv64a is the ring's hash; self-contained so the partition never
// shifts under library changes (a resharding in disguise).
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 avalanches a hash (the 64-bit murmur3 finalizer). Raw FNV-1a
// leaves keys that share a long prefix clustered in a narrow band — the
// final byte only perturbs the low ~40 bits — and on a ring a narrow
// band means one shard owns almost every page of a uniform family.
// Finalizing spreads the family over the whole ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringHash positions a string on the ring.
func ringHash(s string) uint64 { return mix64(fnv64a(s)) }

// NewRing builds a ring over n shards (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*ringPointsPerShard)}
	for s := 0; s < n; s++ {
		for p := 0; p < ringPointsPerShard; p++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(fmt.Sprintf("shard-%d-%d", s, p)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // deterministic even on hash ties
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard routes a page key to its owning shard.
func (r *Ring) Shard(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
