package queryapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"strudel/internal/fleet"
	"strudel/internal/graph"
	"strudel/internal/qgen"
	"strudel/internal/repo"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

// The harness: services over fleet and single backends, an NDJSON
// client, and the in-process reference every HTTP answer must match
// byte for byte. Query and graph corpora come from internal/qgen — the
// exact generators the struql differential oracle runs, so the HTTP
// surface is tested over the same query space the evaluator is pinned
// on.

// querySchema is a minimal site: the query API needs a fleet, the fleet
// needs a schema, but these tests never fetch a page.
const querySchema = `create Root()
link Root() -> "title" -> "Query API Test Site"`

func newFleetBackend(t testing.TB, g *graph.Graph, shards, replicas int) *fleet.Fleet {
	t.Helper()
	s := schema.Build(struql.MustParse(querySchema))
	f, err := fleet.New(fleet.Config{Schema: s, Shards: shards, Replicas: replicas}, repo.NewIndexed(g))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

// newQueryServer builds a Service over a backend and serves it.
func newQueryServer(t testing.TB, b Backend, lim Limits) (*Service, *httptest.Server) {
	t.Helper()
	svc := &Service{Backend: b, Limits: lim}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// generous are oracle limits no generated query should ever trip.
func generous() Limits {
	return Limits{MaxRows: 4 << 20, MaxNFAStates: 1 << 20, MaxPageSize: 1 << 20}
}

// postJSON POSTs a JSON body and returns status, headers, and body.
func postJSON(t testing.TB, url string, body any, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// page is one parsed /query response.
type page struct {
	header headerMsg
	rows   []string // marshaled row lines, exactly as received
	end    endMsg
}

// parsePage splits and checks one NDJSON response body.
func parsePage(t testing.TB, body string) page {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON response has %d lines, want >= 2:\n%s", len(lines), body)
	}
	var p page
	if err := json.Unmarshal([]byte(lines[0]), &p.header); err != nil || p.header.Kind != "header" {
		t.Fatalf("first line is not a header (%v): %s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &p.end); err != nil || p.end.Kind != "end" {
		t.Fatalf("last line is not an end marker (%v): %s", err, lines[len(lines)-1])
	}
	p.rows = lines[1 : len(lines)-1]
	if len(p.rows) != p.end.Rows {
		t.Fatalf("end marker claims %d rows, page has %d", p.end.Rows, len(p.rows))
	}
	return p
}

// queryPage POSTs one request and parses the NDJSON page (status must
// be 200).
func queryPage(t testing.TB, ts *httptest.Server, req QueryRequest) page {
	t.Helper()
	code, _, body := postJSON(t, ts.URL+"/query", req, nil)
	if code != http.StatusOK {
		t.Fatalf("POST /query = %d, want 200; body:\n%s\nquery:\n%s", code, body, req.Query)
	}
	return parsePage(t, body)
}

// queryError POSTs one request and decodes the typed error envelope.
func queryError(t testing.TB, ts *httptest.Server, path string, req QueryRequest) (int, http.Header, *Error) {
	t.Helper()
	code, hdr, body := postJSON(t, ts.URL+path, req, nil)
	if code == http.StatusOK {
		t.Fatalf("POST %s = 200, want an error; body:\n%s", path, body)
	}
	var env struct {
		Error *Error `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == nil || env.Error.Code == "" {
		t.Fatalf("POST %s: error body is not a typed envelope (%v):\n%s", path, err, body)
	}
	return code, hdr, env.Error
}

// walkQuery pages through the whole result via cursors, asserting the
// generation never changes mid-walk, and returns every row line plus
// the first header.
func walkQuery(t testing.TB, ts *httptest.Server, req QueryRequest) (headerMsg, []string) {
	t.Helper()
	req.Cursor = ""
	var all []string
	var first headerMsg
	for hop := 0; ; hop++ {
		p := queryPage(t, ts, req)
		if hop == 0 {
			first = p.header
		} else if p.header.Generation != first.Generation {
			t.Fatalf("walk switched generation mid-stream: %d then %d", first.Generation, p.header.Generation)
		}
		all = append(all, p.rows...)
		if p.end.Done {
			if p.end.NextCursor != "" {
				t.Fatalf("done page still carries a cursor")
			}
			return first, all
		}
		if p.end.NextCursor == "" {
			t.Fatalf("not-done page carries no cursor")
		}
		req.Cursor = p.end.NextCursor
		if hop > 100000 {
			t.Fatalf("cursor walk did not terminate")
		}
	}
}

// inProcessRows is the reference: EvalWhere on the same source, encoded
// by the same deterministic encoder the service uses on replicas.
func inProcessRows(t testing.TB, src struql.Source, query string, sel []string) ([]string, []string) {
	t.Helper()
	conds, err := struql.ParseWhere(query)
	if err != nil {
		t.Fatalf("ParseWhere: %v\n%s", err, query)
	}
	b, err := struql.EvalWhere(conds, src, nil, nil)
	if err != nil {
		t.Fatalf("EvalWhere: %v\n%s", err, query)
	}
	payload, err := encodeResult(b, sel)
	if err != nil {
		t.Fatalf("encodeResult: %v\n%s", err, query)
	}
	res, err := parseResult(payload, 0)
	if err != nil {
		t.Fatalf("parseResult: %v", err)
	}
	return res.vars, res.rows
}

// oracleSite is one generated graph with its service endpoints.
type oracleSite struct {
	ix *repo.Indexed // the in-process reference source
	ts *httptest.Server
}

func newOracleSite(t testing.TB, seed uint64, shards, replicas int) *oracleSite {
	t.Helper()
	g := qgen.Graph(seed)
	fl := newFleetBackend(t, g, shards, replicas)
	_, ts := newQueryServer(t, fl, generous())
	return &oracleSite{ix: repo.NewIndexed(g), ts: ts}
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
