// Package queryapi exposes StruQL as a data service: POST a where
// clause to /query and stream its binding relation back as NDJSON rows
// with opaque resumable cursors, server-side field projection, and
// per-request resource guards; introspect the graph's schema via
// /schema/* and the planner via /query/explain. Queries route through
// the serving fleet, so they inherit hot-reload generation snapshots,
// health-ordered replica routing, hedging, and failover exactly like
// page fetches — the graph behind the web site is queryable with the
// same operational guarantees as the web site itself.
package queryapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"strudel/internal/obs"
	"strudel/internal/struql"
)

// Backend is what the service evaluates against. *fleet.Fleet satisfies
// it; Single adapts a bare source for tests and embedding. The closure
// receives a generation-pinned source snapshot; its result must be a
// pure function of (closure, source, generation) — that determinism is
// what makes cursors, caching, and ETags sound.
type Backend interface {
	// Generation returns the current data generation.
	Generation() int64
	// EvalOn runs fn against a live replica of the shard owning key,
	// reporting the generation fn saw. Errors fn returns are
	// deterministic and must not be retried on siblings.
	EvalOn(ctx context.Context, key string, fn func(ctx context.Context, src struql.Source, gen int64) (string, error)) (string, int64, error)
}

// Limits bound what one request may cost. Zero fields take defaults.
type Limits struct {
	// MaxRows caps the binding-relation row guard; a request's max_rows
	// is clamped to it. Default 100000.
	MaxRows int
	// MaxNFAStates caps the per-start-node path-automaton guard.
	// Default 1 << 20.
	MaxNFAStates int
	// Timeout bounds one evaluation's wall clock; a request's
	// timeout_ms is clamped to it. Default 5s.
	Timeout time.Duration
	// DefaultPageSize and MaxPageSize bound page_size. Defaults 100 and
	// 10000.
	DefaultPageSize int
	MaxPageSize     int
	// MaxQueryBytes bounds the request body. Default 64 KiB.
	MaxQueryBytes int
	// MaxCached bounds the per-generation result cache (entries).
	// Default 128.
	MaxCached int
}

func (l Limits) withDefaults() Limits {
	if l.MaxRows <= 0 {
		l.MaxRows = 100000
	}
	if l.MaxNFAStates <= 0 {
		l.MaxNFAStates = 1 << 20
	}
	if l.Timeout <= 0 {
		l.Timeout = 5 * time.Second
	}
	if l.DefaultPageSize <= 0 {
		l.DefaultPageSize = 100
	}
	if l.MaxPageSize <= 0 {
		l.MaxPageSize = 10000
	}
	if l.MaxQueryBytes <= 0 {
		l.MaxQueryBytes = 64 << 10
	}
	if l.MaxCached <= 0 {
		l.MaxCached = 128
	}
	return l
}

// QueryRequest is the /query (and /query/explain) request envelope.
type QueryRequest struct {
	// Query is a StruQL where clause (the leading "where" keyword is
	// optional); /query/explain also accepts a full query.
	Query string `json:"query"`
	// Select projects the named variables, in order, server-side.
	// Empty keeps every bound variable in relation column order.
	Select []string `json:"select,omitempty"`
	// PageSize bounds rows per response (clamped to the server's
	// MaxPageSize; 0 means the server default).
	PageSize int `json:"page_size,omitempty"`
	// Cursor resumes a previous walk; it must come from the same
	// query+select, with the same max_rows.
	Cursor string `json:"cursor,omitempty"`
	// MaxRows tightens the row guard below the server cap (0 = cap).
	MaxRows int `json:"max_rows,omitempty"`
	// TimeoutMS tightens the evaluation deadline below the server cap.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// result is one evaluated, encoded, generation-pinned result set.
type result struct {
	gen  int64
	vars []string
	rows []string // pre-marshaled row lines, streamed verbatim
	used int64    // LRU tick
}

// Service is the query API: handlers, limits, the inflight gate, and a
// small per-generation result cache. The cache is what lets a cursor
// walk complete on its original generation across a hot reload — and
// why eviction degrades to a typed generation_mismatch, never a torn
// mix of generations.
type Service struct {
	Backend Backend
	Limits  Limits
	Obs     *obs.QueryMetrics
	// MaxInflight bounds concurrently served requests; excess is shed
	// with 503 + Retry-After before any parsing. 0 means 64; negative
	// disables the gate.
	MaxInflight int

	lim   Limits
	gate  chan struct{}
	mu    sync.Mutex
	cache map[string]*result
	memo  map[string]string // introspection payloads, keyed per generation
	tick  int64
}

// Handler returns the query API's HTTP handler: recovery(shed(mux)).
// Mount it at the server root; it owns /query, /query/explain, and
// /schema/*.
func (s *Service) Handler() http.Handler {
	s.lim = s.Limits.withDefaults()
	if s.Obs == nil {
		s.Obs = &obs.QueryMetrics{}
	}
	if s.cache == nil {
		s.cache = map[string]*result{}
		s.memo = map[string]string{}
	}
	n := s.MaxInflight
	if n == 0 {
		n = 64
	}
	if n > 0 {
		s.gate = make(chan struct{}, n)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query/explain", s.handleExplain)
	mux.HandleFunc("/schema/labels", s.handleLabels)
	mux.HandleFunc("/schema/collections", s.handleCollections)
	mux.HandleFunc("/schema/dataguide", s.handleDataguide)
	return s.recover(s.shed(mux))
}

// shed admits at most MaxInflight requests; the rest are refused with a
// typed 503 before any body is read — overload protection must be
// cheaper than the work it refuses.
func (s *Service) shed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Obs.Requests.Inc()
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				s.Obs.Shed.Inc()
				writeError(w, &Error{Code: CodeOverloaded, RetryAfter: 1,
					Message: "query API at max inflight requests"})
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// recover converts a handler panic into a structured 500. The fuzz
// harness asserts this path never fires for arbitrary input — it is
// the backstop, not the error path.
func (s *Service) recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.Obs.Panics.Inc()
				writeError(w, &Error{Code: CodeInternal,
					Message: fmt.Sprintf("panic: %v", p)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// readRequest decodes and bounds the request envelope.
func (s *Service) readRequest(r *http.Request) (*QueryRequest, *Error) {
	if r.Method != http.MethodPost {
		return nil, &Error{Code: CodeBadRequest, status: http.StatusMethodNotAllowed,
			Message: "use POST with a JSON body"}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.lim.MaxQueryBytes)+1))
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: "unreadable request body"}
	}
	if len(body) > s.lim.MaxQueryBytes {
		return nil, &Error{Code: CodeBadRequest,
			Message: fmt.Sprintf("request body exceeds %d bytes", s.lim.MaxQueryBytes)}
	}
	var req QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: "request body is not valid JSON"}
	}
	if strings.TrimSpace(req.Query) == "" {
		return nil, &Error{Code: CodeBadRequest, Message: "missing query"}
	}
	return &req, nil
}

// effective clamps per-request knobs into the server's limits.
func (s *Service) effective(req *QueryRequest) (pageSize, maxRows int, timeout time.Duration, aerr *Error) {
	pageSize = req.PageSize
	switch {
	case pageSize < 0:
		return 0, 0, 0, &Error{Code: CodeBadRequest, Message: "page_size must be non-negative"}
	case pageSize == 0:
		pageSize = s.lim.DefaultPageSize
	case pageSize > s.lim.MaxPageSize:
		pageSize = s.lim.MaxPageSize
	}
	maxRows = req.MaxRows
	switch {
	case maxRows < 0:
		return 0, 0, 0, &Error{Code: CodeBadRequest, Message: "max_rows must be non-negative"}
	case maxRows == 0, maxRows > s.lim.MaxRows:
		maxRows = s.lim.MaxRows
	}
	timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if req.TimeoutMS < 0 {
		return 0, 0, 0, &Error{Code: CodeBadRequest, Message: "timeout_ms must be non-negative"}
	}
	if timeout == 0 || timeout > s.lim.Timeout {
		timeout = s.lim.Timeout
	}
	return pageSize, maxRows, timeout, nil
}

// headerMsg is the first streamed NDJSON line of a /query response.
type headerMsg struct {
	Kind       string   `json:"kind"`
	Generation int64    `json:"generation"`
	Vars       []string `json:"vars"`
	TotalRows  int      `json:"total_rows"`
	Offset     int      `json:"offset"`
}

// endMsg is the last streamed line: the page's row count and how to
// continue.
type endMsg struct {
	Kind       string `json:"kind"`
	Rows       int    `json:"rows"`
	NextCursor string `json:"next_cursor,omitempty"`
	Done       bool   `json:"done"`
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, aerr := s.readRequest(r)
	if aerr != nil {
		s.Obs.BadRequests.Inc()
		writeError(w, aerr)
		return
	}
	pageSize, maxRows, timeout, aerr := s.effective(req)
	if aerr != nil {
		s.Obs.BadRequests.Inc()
		writeError(w, aerr)
		return
	}
	conds, perr := struql.ParseWhere(req.Query)
	if perr != nil {
		s.Obs.ParseErrors.Inc()
		writeError(w, classify(perr))
		return
	}
	qh := queryHash(req.Query, req.Select)
	offset, wantGen := 0, int64(-1)
	if req.Cursor != "" {
		c, cerr := decodeCursor(req.Cursor)
		if cerr != nil {
			s.Obs.BadCursors.Inc()
			writeError(w, cerr)
			return
		}
		if c.qhash != qh {
			s.Obs.BadCursors.Inc()
			writeError(w, &Error{Code: CodeBadCursor,
				Message: "cursor was minted for a different query or selector"})
			return
		}
		offset, wantGen = c.offset, c.gen
		s.Obs.CursorResumes.Inc()
	}

	// Conditional fast path: the ETag is a pure function of
	// (generation, query hash, offset, page size) — determinism means a
	// matching validator proves the client's copy is current, with no
	// evaluation at all. Cursorless requests validate against the
	// current generation; cursor resumes against their pinned one.
	checkGen := wantGen
	if checkGen < 0 {
		checkGen = s.Backend.Generation()
	}
	etag := pageETag(checkGen, qh, offset, pageSize)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagIn(inm, etag) {
		s.Obs.NotModified.Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	res, err := s.resultFor(r, conds, req.Select, qh, wantGen, maxRows, timeout)
	if err != nil {
		e := classify(err)
		if e == nil {
			return // client gone
		}
		switch e.Code {
		case CodeParse:
			s.Obs.ParseErrors.Inc()
		case CodeUnknownSelect, CodeBadRequest:
			s.Obs.BadRequests.Inc()
		case CodeGenerationMismatch:
			s.Obs.GenerationMismatches.Inc()
		case CodeMaxRows:
			s.Obs.GuardRowTrips.Inc()
		case CodeNFAStates:
			s.Obs.GuardNFATrips.Inc()
		case CodeDeadline:
			s.Obs.GuardDeadlineTrips.Inc()
		case CodeUnavailable:
			s.Obs.Unavailable.Inc()
		}
		writeError(w, e)
		return
	}

	page := res.rows[min(offset, len(res.rows)):]
	if len(page) > pageSize {
		page = page[:pageSize]
	}
	next, done := "", true
	if offset+len(page) < len(res.rows) {
		next = cursor{gen: res.gen, qhash: qh, offset: offset + len(page)}.encode()
		done = false
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("ETag", pageETag(res.gen, qh, offset, pageSize))
	w.Header().Set("X-Strudel-Generation", fmt.Sprintf("%d", res.gen))
	enc := json.NewEncoder(w)
	enc.Encode(headerMsg{Kind: "header", Generation: res.gen, Vars: res.vars,
		TotalRows: len(res.rows), Offset: offset})
	flusher, _ := w.(http.Flusher)
	for i, line := range page {
		io.WriteString(w, line)
		io.WriteString(w, "\n")
		if flusher != nil && (i+1)%512 == 0 {
			flusher.Flush()
		}
	}
	enc.Encode(endMsg{Kind: "end", Rows: len(page), NextCursor: next, Done: done})
	s.Obs.PagesServed.Inc()
	s.Obs.RowsStreamed.Add(int64(len(page)))
	s.Obs.QueryNanos.Observe(time.Since(start).Nanoseconds())
}

// resultFor returns the evaluated, encoded result the request names:
// from the per-generation cache when possible, else one fleet-routed
// evaluation. wantGen < 0 means "the current generation"; wantGen >= 0
// (a cursor resume) means "exactly that generation" — served from
// cache if the reload already happened, re-evaluated if the replica
// still holds that generation, and a typed generation_mismatch
// otherwise.
func (s *Service) resultFor(r *http.Request, conds []struql.Cond, sel []string,
	qh uint64, wantGen int64, maxRows int, timeout time.Duration) (*result, error) {

	lookupGen := wantGen
	if lookupGen < 0 {
		lookupGen = s.Backend.Generation()
	}
	key := fmt.Sprintf("g%d.h%016x.m%d", lookupGen, qh, maxRows)
	s.mu.Lock()
	if res, ok := s.cache[key]; ok {
		s.tick++
		res.used = s.tick
		s.mu.Unlock()
		s.Obs.ResultCacheHits.Inc()
		return res, nil
	}
	s.mu.Unlock()
	s.Obs.ResultCacheMisses.Inc()
	s.Obs.Evals.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	payload, gen, err := s.Backend.EvalOn(ctx, fmt.Sprintf("query:%016x", qh),
		func(ctx context.Context, src struql.Source, gen int64) (string, error) {
			if wantGen >= 0 && gen != wantGen {
				return "", &Error{Code: CodeGenerationMismatch,
					Generation: gen, WantGeneration: wantGen,
					Message: "cursor generation was reloaded away; restart the walk"}
			}
			opts := &struql.Options{
				MaxRows:      maxRows,
				MaxNFAStates: s.lim.MaxNFAStates,
				Deadline:     time.Now().Add(timeout),
			}
			b, err := struql.EvalWhereCtx(ctx, conds, src, nil, opts)
			if err != nil {
				return "", err
			}
			return encodeResult(b, sel)
		})
	if err != nil {
		return nil, err
	}
	res, err := parseResult(payload, gen)
	if err != nil {
		return nil, err
	}
	s.store(fmt.Sprintf("g%d.h%016x.m%d", gen, qh, maxRows), res)
	return res, nil
}

// store inserts into the result cache, evicting least-recently-used
// entries beyond the bound.
func (s *Service) store(key string, res *result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	res.used = s.tick
	s.cache[key] = res
	for len(s.cache) > s.lim.MaxCached {
		oldestK, oldest := "", int64(1<<62)
		for k, r := range s.cache {
			if r.used < oldest {
				oldestK, oldest = k, r.used
			}
		}
		delete(s.cache, oldestK)
	}
}

// pageETag is the validator for one exact response: generation-scoped
// like the page edge's ETags, plus the query/page coordinates.
func pageETag(gen int64, qh uint64, offset, pageSize int) string {
	return fmt.Sprintf("\"qg%d-%016x-%d-%d\"", gen, qh, offset, pageSize)
}

// etagIn reports whether the validator appears in an If-None-Match
// header (comma-separated list or *).
func etagIn(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
