package queryapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"strudel/internal/fleet"
	"strudel/internal/struql"
)

// Error codes — the complete taxonomy (documented in docs/QUERYAPI.md).
// Every non-200 response from the query API carries exactly one of
// these in a {"error":{...}} envelope, so clients and tests can switch
// on the code instead of parsing prose.
const (
	// CodeBadRequest: malformed request envelope — unreadable JSON,
	// missing query, oversized body, unsupported method.
	CodeBadRequest = "bad_request"
	// CodeParse: the query text failed StruQL parsing or analysis;
	// Line carries the source line.
	CodeParse = "parse_error"
	// CodeBadCursor: the cursor was undecodable, corrupted, or minted
	// for a different query/selector.
	CodeBadCursor = "bad_cursor"
	// CodeUnknownSelect: a selector names a variable the query does not
	// bind.
	CodeUnknownSelect = "unknown_select"
	// CodeGenerationMismatch: a cursor resume pinned to a generation
	// that has been reloaded away and whose result is no longer cached;
	// the walk must restart from the first page (410 Gone).
	CodeGenerationMismatch = "generation_mismatch"
	// CodeMaxRows / CodeNFAStates: the row or NFA-state guard tripped;
	// the query is too expensive at the granted limits (422) and
	// retrying unchanged will trip again, so no Retry-After.
	CodeMaxRows   = "max_rows"
	CodeNFAStates = "nfa_states"
	// CodeDeadline: evaluation exceeded its wall-clock bound (504); a
	// retry may succeed on a less loaded replica, so Retry-After: 1.
	CodeDeadline = "deadline"
	// CodeOverloaded: refused at the inflight gate before any
	// evaluation (503 + Retry-After).
	CodeOverloaded = "overloaded"
	// CodeUnavailable: every replica of the routed shard was down
	// (503 + Retry-After from the fleet's recovery hint).
	CodeUnavailable = "unavailable"
	// CodeInternal: a recovered panic or unclassified failure (500).
	CodeInternal = "internal"
)

// Error is the query API's typed error payload. It implements error so
// evaluation closures can return one through the fleet (typed errors
// are deterministic, hence never failed over to a sibling replica).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Line is the source line of a parse error.
	Line int `json:"line,omitempty"`
	// Limit/Used/Max mirror struql.ResourceExhausted for guard trips.
	Limit string `json:"limit,omitempty"`
	Used  int    `json:"used,omitempty"`
	Max   int    `json:"max,omitempty"`
	// Generation is the server's current generation and WantGeneration
	// the cursor's, on a generation mismatch.
	Generation     int64 `json:"generation,omitempty"`
	WantGeneration int64 `json:"want_generation,omitempty"`
	// RetryAfter, in seconds, mirrors the Retry-After header when the
	// error is worth retrying.
	RetryAfter int `json:"retry_after,omitempty"`

	status int
}

func (e *Error) Error() string { return fmt.Sprintf("queryapi: %s: %s", e.Code, e.Message) }

// HTTPStatus returns the response status the code maps to.
func (e *Error) HTTPStatus() int {
	if e.status != 0 {
		return e.status
	}
	switch e.Code {
	case CodeBadRequest, CodeParse, CodeBadCursor, CodeUnknownSelect:
		return http.StatusBadRequest
	case CodeGenerationMismatch:
		return http.StatusGone
	case CodeMaxRows, CodeNFAStates:
		return http.StatusUnprocessableEntity
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeOverloaded, CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// classify maps any evaluation-path error to a typed *Error. Typed
// errors pass through; struql and fleet errors get their taxonomy slot;
// everything else is internal. It returns nil for context.Canceled —
// the client is gone and no response should be written.
func classify(err error) *Error {
	var qe *Error
	if errors.As(err, &qe) {
		return qe
	}
	var pe *struql.ParseError
	if errors.As(err, &pe) {
		return &Error{Code: CodeParse, Message: pe.Msg, Line: pe.Line}
	}
	var re *struql.ResourceExhausted
	if errors.As(err, &re) {
		switch re.Limit {
		case struql.LimitRows:
			return &Error{Code: CodeMaxRows, Limit: re.Limit, Used: re.Used, Max: re.Max,
				Message: "row guard tripped: narrow the query or raise max_rows"}
		case struql.LimitNFAStates:
			return &Error{Code: CodeNFAStates, Limit: re.Limit, Used: re.Used, Max: re.Max,
				Message: "path-automaton guard tripped: simplify the regular path expression"}
		default:
			return &Error{Code: CodeDeadline, Limit: re.Limit, RetryAfter: 1,
				Message: "evaluation exceeded its deadline"}
		}
	}
	var down fleet.ErrShardDown
	if errors.As(err, &down) {
		ra := int(down.RetryAfter / time.Second)
		if ra < 1 {
			ra = 1
		}
		return &Error{Code: CodeUnavailable, RetryAfter: ra,
			Message: fmt.Sprintf("shard %d has no live replica", down.Shard)}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{Code: CodeDeadline, RetryAfter: 1,
			Message: "evaluation exceeded its deadline"}
	}
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return &Error{Code: CodeInternal, Message: "internal error"}
}

// writeError renders a typed error as its {"error":{...}} envelope,
// setting Retry-After when the error carries a hint.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	w.WriteHeader(e.HTTPStatus())
	json.NewEncoder(w).Encode(map[string]*Error{"error": e})
}
