//go:build !race

package queryapi

// Oracle sizes for normal builds. The race detector slows evaluation by
// an order of magnitude, so the race build (oracle_scale_race_test.go)
// runs a reduced but still adversarial subset.
const (
	// httpOraclePairs is the number of randomized (graph, query) pairs
	// fired at the HTTP endpoint per fleet configuration. Two
	// configurations run, and every pair is queried twice (cold and
	// cache-warm), so the full oracle covers 2 * 2 * httpOraclePairs
	// HTTP evaluations.
	httpOraclePairs = 1250
	// httpRacedQueries is the number of queries the concurrent oracle
	// fires from racing clients.
	httpRacedQueries = 300
)
