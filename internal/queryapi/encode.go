package queryapi

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// WireValue is the JSON wire form of one binding value. Type is always
// present ("null", "node", "string", "int", "float", "bool", "url",
// "file"); exactly one payload field accompanies it (none for null).
// Payload fields are pointers so zero values — empty string, 0, false —
// survive the round trip instead of vanishing under omitempty.
type WireValue struct {
	Type  string   `json:"type"`
	OID   string   `json:"oid,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
	// File qualifies Str for file atoms ("html", "image", ...).
	File string `json:"file,omitempty"`
}

func wireValue(v graph.Value) WireValue {
	switch v.Kind() {
	case graph.KindNode:
		return WireValue{Type: "node", OID: string(v.OID())}
	case graph.KindString:
		s := v.Str()
		return WireValue{Type: "string", Str: &s}
	case graph.KindInt:
		i := v.Int()
		return WireValue{Type: "int", Int: &i}
	case graph.KindFloat:
		f := v.Float()
		return WireValue{Type: "float", Float: &f}
	case graph.KindBool:
		b := v.Bool()
		return WireValue{Type: "bool", Bool: &b}
	case graph.KindURL:
		s := v.Str()
		return WireValue{Type: "url", Str: &s}
	case graph.KindFile:
		s := v.Str()
		return WireValue{Type: "file", Str: &s, File: v.FileType().String()}
	default:
		return WireValue{Type: "null"}
	}
}

// rowMsg is one streamed NDJSON row: values aligned with the header's
// vars order.
type rowMsg struct {
	Kind string      `json:"kind"`
	V    []WireValue `json:"v"`
}

// resultHeader is the first line of the closure payload (and the basis
// of the header line streamed to clients).
type resultHeader struct {
	Vars  []string `json:"vars"`
	Total int      `json:"total"`
}

// encodeResult projects a binding relation through the selector and
// encodes it as the newline-separated closure payload: a header line
// followed by one pre-marshaled row line per binding row. Encoding
// happens once, on the replica, inside the generation snapshot — the
// service pages over the resulting lines without re-touching graph
// values, and byte-identity across shards/replicas/cache states falls
// out of the evaluator's deterministic row order plus this single
// deterministic encoding.
//
// An empty selector keeps every variable in the relation's column
// order. A selector projects (and reorders) columns; projected rows are
// NOT re-deduplicated — the relation's row multiplicity is preserved,
// so walking pages with and without a selector stays positionally
// aligned.
func encodeResult(b *struql.Bindings, sel []string) (string, error) {
	cols := make([]int, 0, len(sel))
	vars := b.Vars
	if len(sel) > 0 {
		vars = sel
		for _, v := range sel {
			i := b.Index(v)
			if i < 0 {
				avail := append([]string(nil), b.Vars...)
				sort.Strings(avail)
				return "", &Error{Code: CodeUnknownSelect,
					Message: fmt.Sprintf("select variable %q is not bound by the query (bound: %s)",
						v, strings.Join(avail, ", "))}
			}
			cols = append(cols, i)
		}
	}
	var sb strings.Builder
	hdr, err := json.Marshal(resultHeader{Vars: vars, Total: len(b.Rows)})
	if err != nil {
		return "", err
	}
	sb.Write(hdr)
	row := rowMsg{Kind: "row", V: make([]WireValue, len(vars))}
	for _, r := range b.Rows {
		if len(sel) > 0 {
			for j, c := range cols {
				row.V[j] = wireValue(r[c])
			}
		} else {
			for j, v := range r {
				row.V[j] = wireValue(v)
			}
		}
		line, err := json.Marshal(row)
		if err != nil {
			return "", err
		}
		sb.WriteByte('\n')
		sb.Write(line)
	}
	return sb.String(), nil
}

// parseResult splits a closure payload back into its header and row
// lines (still marshaled — they are streamed verbatim).
func parseResult(payload string, gen int64) (*result, error) {
	head, rest, _ := strings.Cut(payload, "\n")
	var hdr resultHeader
	if err := json.Unmarshal([]byte(head), &hdr); err != nil {
		return nil, fmt.Errorf("queryapi: corrupt result header: %w", err)
	}
	var rows []string
	if rest != "" {
		rows = strings.Split(rest, "\n")
	}
	if len(rows) != hdr.Total {
		return nil, fmt.Errorf("queryapi: result header claims %d rows, payload has %d", hdr.Total, len(rows))
	}
	return &result{gen: gen, vars: hdr.Vars, rows: rows}, nil
}
