//go:build race

package queryapi

// Reduced oracle sizes under the race detector; see
// oracle_scale_test.go for the full-size constants and what each
// controls.
const (
	httpOraclePairs  = 150
	httpRacedQueries = 60
)
