package queryapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"strudel/internal/repo"
	"strudel/internal/struql"
)

// The introspection surface: /schema/labels and /schema/collections
// answer "what can I query" from the source's own indexes,
// /schema/dataguide materializes the strong dataguide (every label path
// that exists in the reachable graph, to a bounded depth), and
// /query/explain surfaces the cost-based planner's EXPLAIN text.
// Everything routes through the fleet like queries do, is keyed to a
// generation, and is memoized per generation — introspection is read
// traffic too and earns the same ETag/304 treatment.

// LabelInfo is one row of /schema/labels: the edge count always, the
// distinct source/target counts when the backing source indexes its
// attribute extents (repo.Indexed does; a plain graph reports -1).
type LabelInfo struct {
	Label   string `json:"label"`
	Count   int    `json:"count"`
	Sources int    `json:"sources"`
	Targets int    `json:"targets"`
}

// introspect runs a closure through the backend with per-generation
// memoization and conditional-GET handling shared by every
// introspection endpoint.
func (s *Service) introspect(w http.ResponseWriter, r *http.Request, kind, memoKey string,
	fn func(src struql.Source) (any, error)) {

	if r.Method != http.MethodGet {
		s.Obs.BadRequests.Inc()
		writeError(w, &Error{Code: CodeBadRequest, status: http.StatusMethodNotAllowed,
			Message: "use GET"})
		return
	}
	s.Obs.SchemaRequests.Inc()
	gen := s.Backend.Generation()
	etag := fmt.Sprintf("\"sg%d-%s\"", gen, memoKey)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagIn(inm, etag) {
		s.Obs.NotModified.Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	key := fmt.Sprintf("g%d-%s", gen, memoKey)
	s.mu.Lock()
	payload, ok := s.memo[key]
	s.mu.Unlock()
	if !ok {
		var gotGen int64
		var err error
		payload, gotGen, err = s.Backend.EvalOn(r.Context(), "schema:"+kind,
			func(ctx context.Context, src struql.Source, g int64) (string, error) {
				body, err := fn(src)
				if err != nil {
					return "", err
				}
				out, err := json.Marshal(body)
				return string(out), err
			})
		if err != nil {
			e := classify(err)
			if e == nil {
				return
			}
			if e.Code == CodeUnavailable {
				s.Obs.Unavailable.Inc()
			}
			writeError(w, e)
			return
		}
		// The closure may have run on a newer generation than the one
		// sampled above (a swap raced); key the memo and validator by
		// what actually ran.
		if gotGen != gen {
			gen = gotGen
			etag = fmt.Sprintf("\"sg%d-%s\"", gen, memoKey)
			key = fmt.Sprintf("g%d-%s", gen, memoKey)
		}
		s.mu.Lock()
		if len(s.memo) > 64 {
			s.memo = map[string]string{}
		}
		s.memo[key] = payload
		s.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	fmt.Fprintf(w, "{\"generation\":%d,%s}\n", gen, payload[1:len(payload)-1])
}

func (s *Service) handleLabels(w http.ResponseWriter, r *http.Request) {
	s.introspect(w, r, "labels", "labels", func(src struql.Source) (any, error) {
		ls, hasStats := src.(struql.LabelStatser)
		labels := src.Labels()
		infos := make([]LabelInfo, 0, len(labels))
		for _, l := range labels {
			info := LabelInfo{Label: l, Count: src.LabelCount(l), Sources: -1, Targets: -1}
			if hasStats {
				info.Count, info.Sources, info.Targets = ls.LabelStats(l)
			}
			infos = append(infos, info)
		}
		return map[string]any{"labels": infos}, nil
	})
}

func (s *Service) handleCollections(w http.ResponseWriter, r *http.Request) {
	type collInfo struct {
		Name string `json:"name"`
		Size int    `json:"size"`
	}
	s.introspect(w, r, "collections", "collections", func(src struql.Source) (any, error) {
		names := src.CollectionNames()
		infos := make([]collInfo, 0, len(names))
		for _, n := range names {
			infos = append(infos, collInfo{Name: n, Size: src.CollectionSize(n)})
		}
		return map[string]any{"collections": infos}, nil
	})
}

func (s *Service) handleDataguide(w http.ResponseWriter, r *http.Request) {
	depth := 4
	if d := r.URL.Query().Get("depth"); d != "" {
		n, err := strconv.Atoi(d)
		if err != nil || n < 1 || n > 8 {
			s.Obs.BadRequests.Inc()
			writeError(w, &Error{Code: CodeBadRequest,
				Message: "depth must be an integer in [1, 8]"})
			return
		}
		depth = n
	}
	memoKey := fmt.Sprintf("dataguide-d%d", depth)
	s.introspect(w, r, "dataguide", memoKey, func(src struql.Source) (any, error) {
		dg := repo.BuildDataGuide(src, nil)
		paths := dg.Paths(depth)
		if paths == nil {
			paths = []string{}
		}
		return map[string]any{"depth": depth, "size": dg.Size(), "paths": paths}, nil
	})
}

// handleExplain surfaces the planner: POST the same envelope as /query
// and get back the EXPLAIN rendering (condition order, access paths,
// estimated costs) for the generation-pinned statistics of a live
// replica. A bare where clause and a full StruQL query are both
// accepted — the former is wrapped in a synthetic one-block query.
func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, aerr := s.readRequest(r)
	if aerr != nil {
		s.Obs.BadRequests.Inc()
		writeError(w, aerr)
		return
	}
	q, qerr := struql.Parse(req.Query)
	if qerr != nil {
		conds, werr := struql.ParseWhere(req.Query)
		if werr != nil {
			s.Obs.ParseErrors.Inc()
			// The where-clause error wins: /query accepts only where
			// clauses, so it is the more actionable diagnosis.
			writeError(w, classify(werr))
			return
		}
		q = &struql.Query{Blocks: []*struql.Block{{Where: conds, Line: 1}}}
	}
	payload, gen, err := s.Backend.EvalOn(r.Context(), fmt.Sprintf("query:%016x", queryHash(req.Query, nil)),
		func(ctx context.Context, src struql.Source, g int64) (string, error) {
			return struql.Explain(q, src, nil)
		})
	if err != nil {
		e := classify(err)
		if e == nil {
			return
		}
		if e.Code == CodeUnavailable {
			s.Obs.Unavailable.Inc()
		}
		writeError(w, e)
		return
	}
	s.Obs.Explains.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"generation": gen, "explain": payload})
}
