package queryapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"strudel/internal/qgen"
)

// The network-visible differential oracle: every randomized where
// clause fired at the HTTP endpoint must stream rows byte-identical to
// an in-process EvalWhere over the same graph — across shard counts,
// replica counts, cache states (cold and warm), page sizes, and
// selectors. The fleet path crosses replication (plain graph → indexed
// → frozen snapshot), routing, hedging, the result cache, and the
// cursor pager; the reference crosses none of them. Byte equality
// proves the whole stack preserves the evaluator's deterministic row
// order and encoding.

func TestHTTPDifferentialOracle(t *testing.T) {
	pairs := httpOraclePairs
	if testing.Short() {
		pairs = 120
	}
	configs := []struct{ shards, replicas int }{{1, 1}, {2, 2}}
	const nGraphs = 12
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("shards=%d,replicas=%d", cfg.shards, cfg.replicas), func(t *testing.T) {
			sites := make([]*oracleSite, nGraphs)
			for i := 0; i < pairs; i++ {
				gi := i % nGraphs
				if sites[gi] == nil {
					sites[gi] = newOracleSite(t, uint64(gi)*2654435761+uint64(ci)+1, cfg.shards, cfg.replicas)
				}
				site := sites[gi]
				q := qgen.WhereClause(uint64(ci)*1000003 + uint64(i)*7919 + 11)
				var sel []string
				if i%3 == 1 {
					sel = []string{"x"} // the generator always binds x
				}
				wantVars, wantRows := inProcessRows(t, site.ix, q, sel)
				pageSize := [3]int{0, 7, 1000}[i%3]
				if pageSize != 0 && len(wantRows)/pageSize > 200 {
					pageSize = 0 // bound the request count on huge results
				}
				req := QueryRequest{Query: q, Select: sel, PageSize: pageSize}
				for _, state := range []string{"cold", "warm"} {
					hdr, rows := walkQuery(t, site.ts, req)
					if !sameRows(hdr.Vars, wantVars) {
						t.Fatalf("[%s] vars mismatch: got %v want %v\nquery:\n%s",
							state, hdr.Vars, wantVars, q)
					}
					if hdr.TotalRows != len(wantRows) {
						t.Fatalf("[%s] total_rows = %d, reference has %d\nquery:\n%s",
							state, hdr.TotalRows, len(wantRows), q)
					}
					if !sameRows(rows, wantRows) {
						t.Fatalf("[%s] HTTP rows differ from in-process evaluation (%d vs %d rows)\nquery:\n%s",
							state, len(rows), len(wantRows), q)
					}
				}
			}
		})
	}
}

// rawWalk is walkQuery without testing.T: errors return instead of
// failing, so racing client goroutines can use it safely.
func rawWalk(baseURL string, req QueryRequest) ([]string, int64, error) {
	req.Cursor = ""
	var all []string
	var gen int64 = -1
	for hop := 0; ; hop++ {
		buf, err := json.Marshal(req)
		if err != nil {
			return nil, 0, err
		}
		resp, err := http.Post(baseURL+"/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, 0, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
		if len(lines) < 2 {
			return nil, 0, fmt.Errorf("short NDJSON response: %s", body)
		}
		var hdr headerMsg
		if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
			return nil, 0, fmt.Errorf("bad header line: %w", err)
		}
		if gen < 0 {
			gen = hdr.Generation
		} else if hdr.Generation != gen {
			return nil, 0, fmt.Errorf("generation changed mid-walk: %d then %d", gen, hdr.Generation)
		}
		var end endMsg
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil {
			return nil, 0, fmt.Errorf("bad end line: %w", err)
		}
		all = append(all, lines[1:len(lines)-1]...)
		if end.Done {
			return all, gen, nil
		}
		if end.NextCursor == "" || hop > 100000 {
			return nil, 0, fmt.Errorf("walk stuck at hop %d", hop)
		}
		req.Cursor = end.NextCursor
	}
}

// TestHTTPOracleRaced fires the oracle from concurrent clients sharing
// one service: the result cache, LRU ticks, and cursor pager race while
// every answer must still match the reference. Run under -race, this is
// the network-level data-race check the issue asks for; without -race
// it still shakes out lost-update bugs in the cache.
func TestHTTPOracleRaced(t *testing.T) {
	site := newOracleSite(t, 99, 2, 2)
	const workers = 8
	per := httpRacedQueries / workers
	if per == 0 {
		per = 1
	}

	type expect struct {
		query string
		rows  []string
	}
	exps := make([]expect, per)
	for j := range exps {
		q := qgen.WhereClause(uint64(j)*104729 + 3)
		_, rows := inProcessRows(t, site.ix, q, nil)
		exps[j] = expect{query: q, rows: rows}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				e := exps[(w*13+j)%per] // workers collide on keys in different orders
				rows, _, err := rawWalk(site.ts.URL, QueryRequest{Query: e.query, PageSize: 1 + (w+j)%9})
				if err == nil && !sameRows(rows, e.rows) {
					err = fmt.Errorf("raced walk diverged from reference (%d vs %d rows)\nquery:\n%s",
						len(rows), len(e.rows), e.query)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("worker %d: %w", w, err)
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

// TestHTTPOracleConditionalRequests closes the cache-state loop: a page
// re-requested with its own ETag must come back 304 with zero rows
// re-streamed, and a page requested after a miss must carry the same
// validator it advertised.
func TestHTTPOracleConditionalRequests(t *testing.T) {
	site := newOracleSite(t, 7, 1, 1)
	q := qgen.WhereClause(17)
	req := QueryRequest{Query: q, PageSize: 5}

	code, hdr, body := postJSON(t, site.ts.URL+"/query", req, nil)
	if code != http.StatusOK {
		t.Fatalf("first fetch = %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatalf("no ETag on a /query response")
	}
	code2, hdr2, body2 := postJSON(t, site.ts.URL+"/query", req, map[string]string{"If-None-Match": etag})
	if code2 != http.StatusNotModified {
		t.Fatalf("conditional refetch = %d, want 304: %s", code2, body2)
	}
	if body2 != "" {
		t.Fatalf("304 carried a body: %q", body2)
	}
	if hdr2.Get("ETag") != etag {
		t.Fatalf("304 ETag %q != original %q", hdr2.Get("ETag"), etag)
	}
	// A stale validator must not short-circuit.
	code3, _, body3 := postJSON(t, site.ts.URL+"/query", req, map[string]string{"If-None-Match": `"qg999-0-0-5"`})
	if code3 != http.StatusOK {
		t.Fatalf("mismatched validator = %d, want 200: %s", code3, body3)
	}
	if body3 == "" || parsePage(t, body3).header.Kind != "header" {
		t.Fatalf("full response expected after validator mismatch")
	}
}
