package queryapi

import (
	"encoding/base64"
	"encoding/binary"
	"hash/fnv"
)

// A cursor is the resumable position of a paginated query walk. It is
// sound because the evaluator's row order is deterministic per
// generation (rows are sorted by canonical value keys and deduped), so
// (generation, query hash, offset) names one exact row prefix: the
// cursor pins the generation it was minted on and resuming either
// completes on that generation's rows or fails with a typed
// generation-mismatch — never a torn mix of two generations.
//
// The wire form is opaque: magic ‖ uvarint(gen) ‖ uvarint(qhash) ‖
// uvarint(offset) ‖ FNV-64a checksum of the preceding bytes, base64url
// without padding. The checksum turns truncation and bit rot into a
// typed bad_cursor instead of a silently wrong resume point.
type cursor struct {
	gen    int64
	qhash  uint64
	offset int
}

var cursorMagic = []byte("sqc1")

func (c cursor) encode() string {
	buf := append([]byte(nil), cursorMagic...)
	buf = binary.AppendUvarint(buf, uint64(c.gen))
	buf = binary.AppendUvarint(buf, c.qhash)
	buf = binary.AppendUvarint(buf, uint64(c.offset))
	h := fnv.New64a()
	h.Write(buf)
	buf = h.Sum(buf)
	return base64.RawURLEncoding.EncodeToString(buf)
}

func decodeCursor(s string) (cursor, *Error) {
	bad := func(msg string) (cursor, *Error) {
		return cursor{}, &Error{Code: CodeBadCursor, Message: msg}
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return bad("cursor is not valid base64url")
	}
	if len(raw) < len(cursorMagic)+8+3 || string(raw[:len(cursorMagic)]) != string(cursorMagic) {
		return bad("cursor is truncated or not a query cursor")
	}
	body, sum := raw[:len(raw)-8], raw[len(raw)-8:]
	h := fnv.New64a()
	h.Write(body)
	if string(h.Sum(nil)) != string(sum) {
		return bad("cursor checksum mismatch")
	}
	p := body[len(cursorMagic):]
	gen, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return bad("cursor fields are corrupted")
	}
	qh, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return bad("cursor fields are corrupted")
	}
	off, n3 := binary.Uvarint(p[n1+n2:])
	if n3 <= 0 || n1+n2+n3 != len(p) {
		return bad("cursor fields are corrupted")
	}
	if gen > 1<<62 || off > 1<<31 {
		return bad("cursor fields are out of range")
	}
	return cursor{gen: int64(gen), qhash: qh, offset: int(off)}, nil
}

// queryHash names a (query text, selector) pair: it keys the result
// cache within a generation and binds cursors to the exact request
// shape they were minted for.
func queryHash(query string, sel []string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(query))
	h.Write([]byte{0})
	for _, s := range sel {
		h.Write([]byte(s))
		h.Write([]byte{1})
	}
	return h.Sum64()
}
