package queryapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"strudel/internal/qgen"
	"strudel/internal/repo"
)

// FuzzQueryEndpoint throws arbitrary (query text, selector, cursor)
// triples at the HTTP endpoint. The contract under fuzz: garbage gets a
// structured 4xx, valid queries get well-formed NDJSON — never a panic,
// never a 500, never an unstructured response. Guards are configured
// tight so an adversarial-but-valid query converts to a typed 422; for
// the residue whose cost the row/NFA guards cannot see (e.g. planner
// work on thousand-condition clauses), the deadline is the designed
// backstop, so a *typed* deadline 504 is the one non-4xx error the
// harness accepts — and the timeout is short so such executions cannot
// stall the fuzz loop.
func FuzzQueryEndpoint(f *testing.F) {
	f.Add("where Items(x)", "x", "")
	f.Add("Items(x), x -> \"year\" -> y, y > 1993", "y,x", "")
	f.Add(`where Items(x), x -> ("next"|"ref")* -> v`, "", "")
	f.Add(qgen.WhereClause(3), "", "")
	f.Add("where Items(", "", "")
	f.Add("where Items(x)", "nope", "c3FjMQ")
	f.Add("", "\x00,x", "!!!not-base64!!!")
	// A genuine cursor for the first seed query, so mutation explores the
	// decode path from a valid starting point.
	f.Add("where Items(x)", "x",
		cursor{gen: 0, qhash: queryHash("where Items(x)", []string{"x"}), offset: 1}.encode())

	svc := &Service{
		Backend: NewSingle(repo.NewIndexed(qgen.Graph(42))),
		Limits: Limits{
			MaxRows:      5000,
			MaxNFAStates: 2048,
			Timeout:      2 * time.Second,
			MaxPageSize:  1000,
		},
		MaxInflight: -1, // the fuzz driver is serial; the gate only adds noise
	}
	h := svc.Handler()

	f.Fuzz(func(t *testing.T, query, sel, cur string) {
		req := QueryRequest{Query: query, Cursor: cur}
		if sel != "" {
			req.Select = strings.Split(sel, ",")
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Skip() // unencodable input (invalid UTF-8 re-marshaling quirks)
		}
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
		// Boundedness is part of the contract: with a 2s evaluation
		// deadline, no input may hold the handler anywhere near this long
		// (parse and planning are the only un-deadlined phases).
		if d := time.Since(t0); d > 15*time.Second {
			t.Fatalf("handler held %v on one input\nquery: %q", d, query)
		}

		if rec.Code >= 500 && rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("5xx (%d) from fuzz input\nquery: %q\nselect: %q\ncursor: %q\nbody: %s",
				rec.Code, query, sel, cur, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
			var hdr headerMsg
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Kind != "header" {
				t.Fatalf("200 without a header line: %q", lines[0])
			}
			var end endMsg
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil || end.Kind != "end" {
				t.Fatalf("200 without an end line: %q", lines[len(lines)-1])
			}
			return
		}
		// Every error must be the typed envelope with a known code.
		var env struct {
			Error *Error `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
			t.Fatalf("status %d without a typed error envelope: %s", rec.Code, rec.Body.String())
		}
		switch env.Error.Code {
		case CodeBadRequest, CodeParse, CodeBadCursor, CodeUnknownSelect,
			CodeGenerationMismatch, CodeMaxRows, CodeNFAStates:
		case CodeDeadline:
			if rec.Code != http.StatusGatewayTimeout {
				t.Fatalf("deadline with status %d, want 504", rec.Code)
			}
		default:
			t.Fatalf("status %d with unexpected code %q for fuzz input", rec.Code, env.Error.Code)
		}
	})
}
