package queryapi

import (
	"encoding/base64"
	"net/http"
	"strings"
	"testing"

	"strudel/internal/qgen"
	"strudel/internal/repo"
)

// The cursor contract under test: (1) for ANY page size, walking the
// cursor chain reassembles exactly the unpaginated result; (2) a resume
// that crosses a hot reload either completes on its original generation
// or fails with a typed generation_mismatch — never a torn mix of
// generations; (3) cursors are bound to their query+selector and reject
// tampering with a typed bad_cursor.

// TestCursorPageSizeReassembly is the property the acceptance criteria
// pin: for page sizes {1, 2, 7, N} (N = the full result size), the
// paged walk equals the unpaginated result byte for byte.
func TestCursorPageSizeReassembly(t *testing.T) {
	single := NewSingle(repo.NewIndexed(qgen.Graph(5)))
	_, ts := newQueryServer(t, single, generous())

	queries := 30
	if testing.Short() {
		queries = 8
	}
	for qi := 0; qi < queries; qi++ {
		q := qgen.WhereClause(uint64(qi)*6700417 + 29)
		var sel []string
		if qi%4 == 2 {
			sel = []string{"x"}
		}
		full := queryPage(t, ts, QueryRequest{Query: q, Select: sel, PageSize: 1 << 20})
		if !full.end.Done {
			t.Fatalf("full-size page not done (total %d)", full.header.TotalRows)
		}
		n := len(full.rows)
		sizes := []int{1, 2, 7, n}
		if n == 0 {
			sizes = []int{1, 2, 7}
		} else if n > 2000 {
			sizes = []int{7, n} // bound the request count; tiny sizes covered by other queries
		}
		for _, ps := range sizes {
			hdr, rows := walkQuery(t, ts, QueryRequest{Query: q, Select: sel, PageSize: ps})
			if !sameRows(rows, full.rows) {
				t.Fatalf("page_size=%d walk reassembled %d rows, unpaginated has %d\nquery:\n%s",
					ps, len(rows), n, q)
			}
			if !sameRows(hdr.Vars, full.header.Vars) || hdr.TotalRows != full.header.TotalRows {
				t.Fatalf("page_size=%d header diverged\nquery:\n%s", ps, q)
			}
		}
	}
}

// TestCursorResumeCompletesOnOldGeneration: start a walk, hot-reload
// the data, keep walking. The per-generation result cache must finish
// the walk on the original generation — every remaining page reports
// the old generation and the reassembled rows equal the pre-reload
// result.
func TestCursorResumeCompletesOnOldGeneration(t *testing.T) {
	single := NewSingle(repo.NewIndexed(qgen.Graph(5)))
	_, ts := newQueryServer(t, single, generous())

	q := "where Items(x), x -> \"year\" -> y"
	full := queryPage(t, ts, QueryRequest{Query: q, PageSize: 1 << 20})
	if len(full.rows) < 4 {
		t.Fatalf("need a multi-page result, got %d rows", len(full.rows))
	}

	first := queryPage(t, ts, QueryRequest{Query: q, PageSize: 2})
	if first.end.Done {
		t.Fatalf("page_size=2 finished in one page")
	}
	if gen := single.Swap(repo.NewIndexed(qgen.Graph(77))); gen != 1 {
		t.Fatalf("swap produced generation %d, want 1", gen)
	}

	got := append([]string(nil), first.rows...)
	cur := first.end.NextCursor
	for cur != "" {
		p := queryPage(t, ts, QueryRequest{Query: q, PageSize: 2, Cursor: cur})
		if p.header.Generation != 0 {
			t.Fatalf("resumed page reports generation %d, want the pinned 0", p.header.Generation)
		}
		got = append(got, p.rows...)
		cur = p.end.NextCursor
	}
	if !sameRows(got, full.rows) {
		t.Fatalf("post-reload walk diverged from the pre-reload result (%d vs %d rows)",
			len(got), len(full.rows))
	}
	// A fresh (cursorless) query now sees the new generation.
	fresh := queryPage(t, ts, QueryRequest{Query: q, PageSize: 1 << 20})
	if fresh.header.Generation != 1 {
		t.Fatalf("fresh query reports generation %d, want 1", fresh.header.Generation)
	}
	if sameRows(fresh.rows, full.rows) {
		t.Fatalf("reload did not change the result; the test graph seeds are degenerate")
	}
}

// TestCursorResumeEvictedGeneration: same reload, but the old
// generation's cached result is evicted before the resume. The walk
// must fail with a typed generation_mismatch (410) naming both
// generations — not silently continue on new data.
func TestCursorResumeEvictedGeneration(t *testing.T) {
	single := NewSingle(repo.NewIndexed(qgen.Graph(5)))
	svc, ts := newQueryServer(t, single, generous())

	q := "where Items(x), x -> \"year\" -> y"
	first := queryPage(t, ts, QueryRequest{Query: q, PageSize: 2})
	if first.end.Done {
		t.Fatalf("page_size=2 finished in one page")
	}
	single.Swap(repo.NewIndexed(qgen.Graph(77)))
	svc.mu.Lock()
	svc.cache = map[string]*result{} // the reload's memory pressure, simulated
	svc.mu.Unlock()

	code, _, e := queryError(t, ts, "/query", QueryRequest{Query: q, PageSize: 2, Cursor: first.end.NextCursor})
	if code != http.StatusGone || e.Code != CodeGenerationMismatch {
		t.Fatalf("evicted resume = %d/%s, want 410/%s", code, e.Code, CodeGenerationMismatch)
	}
	if e.WantGeneration != 0 || e.Generation != 1 {
		t.Fatalf("mismatch payload generations = (want %d, live %d), expected (0, 1)",
			e.WantGeneration, e.Generation)
	}
	if n := svc.Obs.GenerationMismatches.Load(); n != 1 {
		t.Fatalf("generation_mismatches counter = %d, want 1", n)
	}
}

// TestCursorBoundToQuery: a cursor minted for one query+selector is
// rejected with bad_cursor when replayed against any other.
func TestCursorBoundToQuery(t *testing.T) {
	single := NewSingle(repo.NewIndexed(qgen.Graph(5)))
	_, ts := newQueryServer(t, single, generous())

	first := queryPage(t, ts, QueryRequest{Query: "where Items(x), x -> \"year\" -> y", PageSize: 2})
	cur := first.end.NextCursor
	if cur == "" {
		t.Fatalf("no cursor to replay")
	}
	for _, bad := range []QueryRequest{
		{Query: "where Items(x)", Cursor: cur},                                            // different query
		{Query: "where Items(x), x -> \"year\" -> y", Select: []string{"x"}, Cursor: cur}, // different selector
	} {
		code, _, e := queryError(t, ts, "/query", bad)
		if code != http.StatusBadRequest || e.Code != CodeBadCursor {
			t.Fatalf("replayed cursor = %d/%s, want 400/%s", code, e.Code, CodeBadCursor)
		}
	}
}

// TestCursorTamperRejected: every corruption of a real cursor decodes
// to a typed bad_cursor, never a panic or a wrong page.
func TestCursorTamperRejected(t *testing.T) {
	real := cursor{gen: 3, qhash: 0xdeadbeefcafe, offset: 41}.encode()
	raw, err := base64.RawURLEncoding.DecodeString(real)
	if err != nil {
		t.Fatalf("cursor is not base64url: %v", err)
	}
	cases := map[string]string{
		"empty":       "",
		"not-base64":  "!!!!",
		"truncated":   real[:len(real)/2],
		"bit-flip":    base64.RawURLEncoding.EncodeToString(append(append([]byte(nil), raw[:len(raw)-1]...), raw[len(raw)-1]^0x40)),
		"wrong-magic": base64.RawURLEncoding.EncodeToString(append([]byte("nope"), raw[4:]...)),
		"extra-bytes": base64.RawURLEncoding.EncodeToString(append(append([]byte(nil), raw...), 7)),
	}
	for name, s := range cases {
		if _, e := decodeCursor(s); e == nil || e.Code != CodeBadCursor {
			t.Errorf("%s: decodeCursor accepted corrupt input %q", name, s)
		}
	}
	// And the genuine cursor round-trips.
	c, e := decodeCursor(real)
	if e != nil || c.gen != 3 || c.qhash != 0xdeadbeefcafe || c.offset != 41 {
		t.Fatalf("round trip failed: %+v, %v", c, e)
	}
}

// TestSelectorProjection: server-side projection reorders and narrows
// columns to exactly what EvalWhere + the shared encoder produce, and
// unknown selectors fail typed with the available variables named.
func TestSelectorProjection(t *testing.T) {
	ix := repo.NewIndexed(qgen.Graph(5))
	single := NewSingle(ix)
	_, ts := newQueryServer(t, single, generous())

	q := "where Items(x), x -> \"year\" -> y, x -> \"id\" -> i"
	for _, sel := range [][]string{{"y"}, {"y", "x"}, {"i", "y", "x"}} {
		wantVars, wantRows := inProcessRows(t, ix, q, sel)
		hdr, rows := walkQuery(t, ts, QueryRequest{Query: q, Select: sel, PageSize: 7})
		if !sameRows(hdr.Vars, wantVars) || !sameRows(rows, wantRows) {
			t.Fatalf("projection %v diverged from reference", sel)
		}
	}
	code, _, e := queryError(t, ts, "/query", QueryRequest{Query: q, Select: []string{"zz"}})
	if code != http.StatusBadRequest || e.Code != CodeUnknownSelect {
		t.Fatalf("unknown selector = %d/%s, want 400/%s", code, e.Code, CodeUnknownSelect)
	}
	if !strings.Contains(e.Message, "i, x, y") {
		t.Fatalf("unknown_select message %q does not list the bound variables", e.Message)
	}
}
