package queryapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"strudel/internal/qgen"
	"strudel/internal/repo"
)

// Introspection endpoints: generation-stamped JSON, ETag/304 semantics,
// and the planner's EXPLAIN over HTTP.

func getJSON(t *testing.T, url string, hdr map[string]string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: non-JSON body (%v): %s", url, err, body)
		}
	}
	return resp.StatusCode, resp.Header, m
}

func TestSchemaLabels(t *testing.T) {
	ix := repo.NewIndexed(qgen.Graph(5))
	_, ts := newQueryServer(t, NewSingle(ix), generous())

	code, hdr, m := getJSON(t, ts.URL+"/schema/labels", nil)
	if code != http.StatusOK {
		t.Fatalf("labels = %d", code)
	}
	if m["generation"].(float64) != 0 {
		t.Fatalf("generation = %v, want 0", m["generation"])
	}
	labels := m["labels"].([]any)
	byName := map[string]map[string]any{}
	for _, l := range labels {
		info := l.(map[string]any)
		byName[info["label"].(string)] = info
	}
	for _, want := range []string{"id", "year", "next"} {
		info, ok := byName[want]
		if !ok {
			t.Fatalf("label %q missing from /schema/labels (got %v)", want, byName)
		}
		if int(info["count"].(float64)) != ix.LabelCount(want) {
			t.Fatalf("label %q count = %v, index says %d", want, info["count"], ix.LabelCount(want))
		}
		// repo.Indexed carries attribute extents, so distinct source and
		// target counts must be real, not the -1 fallback.
		if info["sources"].(float64) < 1 || info["targets"].(float64) < 1 {
			t.Fatalf("label %q stats = %v; indexed source should report extents", want, info)
		}
	}

	// Conditional refetch: 304 with the same validator.
	etag := hdr.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, "\"sg0-") {
		t.Fatalf("labels ETag = %q, want a generation-scoped validator", etag)
	}
	code2, _, _ := getJSON(t, ts.URL+"/schema/labels", map[string]string{"If-None-Match": etag})
	if code2 != http.StatusNotModified {
		t.Fatalf("conditional labels = %d, want 304", code2)
	}
	// POST is rejected.
	code3, _, body := postJSON(t, ts.URL+"/schema/labels", map[string]any{}, nil)
	if code3 != http.StatusMethodNotAllowed {
		t.Fatalf("POST labels = %d (%s), want 405", code3, body)
	}
}

func TestSchemaCollectionsAndDataguide(t *testing.T) {
	ix := repo.NewIndexed(qgen.Graph(5))
	single := NewSingle(ix)
	_, ts := newQueryServer(t, single, generous())

	code, _, m := getJSON(t, ts.URL+"/schema/collections", nil)
	if code != http.StatusOK {
		t.Fatalf("collections = %d", code)
	}
	found := map[string]int{}
	for _, c := range m["collections"].([]any) {
		info := c.(map[string]any)
		found[info["name"].(string)] = int(info["size"].(float64))
	}
	if found["Items"] != ix.CollectionSize("Items") || found["Items"] == 0 {
		t.Fatalf("Items size = %d, index says %d", found["Items"], ix.CollectionSize("Items"))
	}

	code, _, m = getJSON(t, ts.URL+"/schema/dataguide?depth=2", nil)
	if code != http.StatusOK {
		t.Fatalf("dataguide = %d", code)
	}
	paths := m["paths"].([]any)
	if len(paths) == 0 {
		t.Fatalf("dataguide has no paths")
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p.(string)] = true
		if strings.Count(p.(string), ".") > 1 {
			t.Fatalf("depth=2 dataguide contains deeper path %q", p)
		}
	}
	if !seen["id"] || !seen["year"] {
		t.Fatalf("dataguide misses root labels: %v", seen)
	}

	code, _, _ = getJSON(t, ts.URL+"/schema/dataguide?depth=99", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("depth=99 = %d, want 400", code)
	}

	// Reload invalidates the validator: same URL, new generation, 200.
	_, hdr, _ := getJSON(t, ts.URL+"/schema/dataguide?depth=2", nil)
	etag := hdr.Get("ETag")
	single.Swap(repo.NewIndexed(qgen.Graph(77)))
	code, hdr, m = getJSON(t, ts.URL+"/schema/dataguide?depth=2", map[string]string{"If-None-Match": etag})
	if code != http.StatusOK {
		t.Fatalf("post-reload conditional dataguide = %d, want 200 (validator is stale)", code)
	}
	if m["generation"].(float64) != 1 {
		t.Fatalf("post-reload generation = %v, want 1", m["generation"])
	}
}

func TestQueryExplain(t *testing.T) {
	svc, ts := newQueryServer(t, NewSingle(repo.NewIndexed(qgen.Graph(5))), generous())

	// A bare where clause is wrapped and explained.
	code, _, body := postJSON(t, ts.URL+"/query/explain",
		QueryRequest{Query: `where Items(x), x -> "year" -> y, y > 1993`}, nil)
	if code != http.StatusOK {
		t.Fatalf("explain = %d: %s", code, body)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("explain body: %v", err)
	}
	text, _ := m["explain"].(string)
	if !strings.Contains(text, "block") || len(text) < 20 {
		t.Fatalf("explain text looks empty: %q", text)
	}

	// A full query (with construction clauses) is accepted too.
	code, _, body = postJSON(t, ts.URL+"/query/explain",
		QueryRequest{Query: qgen.RichQuery(4)}, nil)
	if code != http.StatusOK {
		t.Fatalf("explain full query = %d: %s", code, body)
	}

	// Garbage is a typed parse error.
	code, _, e := queryError(t, ts, "/query/explain", QueryRequest{Query: "where -> ->"})
	if code != http.StatusBadRequest || e.Code != CodeParse {
		t.Fatalf("explain garbage = %d/%s, want 400/%s", code, e.Code, CodeParse)
	}

	if n := svc.Obs.Explains.Load(); n != 2 {
		t.Fatalf("explains counter = %d, want 2", n)
	}
}
