package queryapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"strudel/internal/obs"
	"strudel/internal/qgen"
	"strudel/internal/repo"
)

// Guard trips over HTTP: each evaluator resource guard (rows, NFA
// states, deadline) must surface as a typed error payload with the
// right status, Retry-After only where retrying can help, and an exact
// counter increment visible through the same registry JSON that
// /debug/vars serves in production.

// debugVars renders the registry the way cmd/strudel-serve exports it
// and returns the queryapi group.
func debugVars(t *testing.T, reg *obs.Registry) map[string]any {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(reg.String()))
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET vars: %v", err)
	}
	defer resp.Body.Close()
	var all map[string]map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	q, ok := all["queryapi"]
	if !ok {
		t.Fatalf("registry JSON has no queryapi group: %v", all)
	}
	return q
}

func counterIs(t *testing.T, vars map[string]any, key string, want float64) {
	t.Helper()
	got, ok := vars[key].(float64)
	if !ok || got != want {
		t.Fatalf("queryapi.%s = %v, want %v", key, vars[key], want)
	}
}

// TestGuardMaxRows trips the row guard through the full fleet path: a
// cartesian square over Items with a per-request max_rows of 5.
func TestGuardMaxRows(t *testing.T) {
	fl := newFleetBackend(t, qgen.Graph(1), 2, 2)
	svc, ts := newQueryServer(t, fl, generous())
	reg := obs.NewRegistry()
	reg.Register("queryapi", svc.Obs)

	code, hdr, e := queryError(t, ts, "/query",
		QueryRequest{Query: "where Items(x), Items(y)", MaxRows: 5})
	if code != http.StatusUnprocessableEntity || e.Code != CodeMaxRows {
		t.Fatalf("row guard = %d/%s, want 422/%s", code, e.Code, CodeMaxRows)
	}
	if e.Limit != "rows" || e.Max != 5 || e.Used <= e.Max {
		t.Fatalf("row guard payload = limit %q used %d max %d; want rows/>5/5", e.Limit, e.Used, e.Max)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		t.Fatalf("422 carries Retry-After %q; retrying an over-limit query cannot help", ra)
	}
	vars := debugVars(t, reg)
	counterIs(t, vars, "guard_rows_trips", 1)
	counterIs(t, vars, "guard_nfa_trips", 0)
	counterIs(t, vars, "requests", 1)
}

// TestGuardNFAStates trips the path-automaton guard with a closure over
// the near-chain graph under a deliberately tiny state budget.
func TestGuardNFAStates(t *testing.T) {
	lim := generous()
	lim.MaxNFAStates = 4
	svc, ts := newQueryServer(t, NewSingle(repo.NewIndexed(qgen.Graph(2))), lim)
	reg := obs.NewRegistry()
	reg.Register("queryapi", svc.Obs)

	code, hdr, e := queryError(t, ts, "/query",
		QueryRequest{Query: `where Items(x), x -> ("next"|"ref")* -> v`})
	if code != http.StatusUnprocessableEntity || e.Code != CodeNFAStates {
		t.Fatalf("NFA guard = %d/%s, want 422/%s", code, e.Code, CodeNFAStates)
	}
	if e.Limit != "nfa-states" || e.Max != 4 {
		t.Fatalf("NFA guard payload = limit %q max %d; want nfa-states/4", e.Limit, e.Max)
	}
	if hdr.Get("Retry-After") != "" {
		t.Fatalf("422 carries Retry-After")
	}
	counterIs(t, debugVars(t, reg), "guard_nfa_trips", 1)
}

// TestGuardDeadline trips the evaluation deadline: a 4-way cartesian
// product over a ≥20-node Items extent cannot finish in 1ms, and unlike
// the other guards a deadline IS worth retrying — the payload must say
// so with Retry-After.
func TestGuardDeadline(t *testing.T) {
	var ix *repo.Indexed
	for seed := uint64(1); ; seed++ {
		ix = repo.NewIndexed(qgen.Graph(seed))
		if ix.CollectionSize("Items") >= 20 {
			break
		}
		if seed > 200 {
			t.Fatalf("no generated graph reaches 20 items; generator changed?")
		}
	}
	lim := generous()
	lim.MaxRows = 1 << 30 // the deadline must trip first, not the row guard
	svc, ts := newQueryServer(t, NewSingle(ix), lim)
	reg := obs.NewRegistry()
	reg.Register("queryapi", svc.Obs)

	code, hdr, e := queryError(t, ts, "/query", QueryRequest{
		Query:     "where Items(a), Items(b), Items(c), Items(d)",
		TimeoutMS: 1,
	})
	if code != http.StatusGatewayTimeout || e.Code != CodeDeadline {
		t.Fatalf("deadline guard = %d/%s, want 504/%s", code, e.Code, CodeDeadline)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("504 deadline carries no Retry-After; a timed-out query is retryable")
	}
	counterIs(t, debugVars(t, reg), "guard_deadline_trips", 1)
}

// TestShedAtMaxInflight: with the gate full, requests are refused with
// a typed 503 + Retry-After before any body is read, and both the
// request and shed counters advance.
func TestShedAtMaxInflight(t *testing.T) {
	svc := &Service{
		Backend:     NewSingle(repo.NewIndexed(qgen.Graph(5))),
		Limits:      generous(),
		MaxInflight: 1,
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	reg := obs.NewRegistry()
	reg.Register("queryapi", svc.Obs)

	svc.gate <- struct{}{} // occupy the only slot
	code, hdr, e := queryError(t, ts, "/query", QueryRequest{Query: "where Items(x)"})
	if code != http.StatusServiceUnavailable || e.Code != CodeOverloaded {
		t.Fatalf("shed = %d/%s, want 503/%s", code, e.Code, CodeOverloaded)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("shed Retry-After = %q, want 1", hdr.Get("Retry-After"))
	}
	<-svc.gate // release; service must recover
	p := queryPage(t, ts, QueryRequest{Query: "where Items(x)"})
	if p.header.Kind != "header" {
		t.Fatalf("service did not recover after shed")
	}
	vars := debugVars(t, reg)
	counterIs(t, vars, "shed", 1)
	counterIs(t, vars, "requests", 2)
}

// TestTypedBadInput: the 400 taxonomy — parse errors carry the line,
// malformed envelopes and negative knobs are bad_request, wrong method
// is 405 — and every one increments its counter.
func TestTypedBadInput(t *testing.T) {
	svc, ts := newQueryServer(t, NewSingle(repo.NewIndexed(qgen.Graph(5))), generous())

	code, _, e := queryError(t, ts, "/query", QueryRequest{Query: "where Items(x), -> ->"})
	if code != http.StatusBadRequest || e.Code != CodeParse || e.Line <= 0 {
		t.Fatalf("parse error = %d/%s line %d, want 400/%s with a line", code, e.Code, e.Line, CodeParse)
	}
	// An unbound filter variable is an analysis error, still typed parse.
	code, _, e = queryError(t, ts, "/query", QueryRequest{Query: "where Items(x), y > 3"})
	if code != http.StatusBadRequest || e.Code != CodeParse {
		t.Fatalf("unbound variable = %d/%s, want 400/%s", code, e.Code, CodeParse)
	}
	code, _, e = queryError(t, ts, "/query", QueryRequest{Query: "where Items(x)", PageSize: -1})
	if code != http.StatusBadRequest || e.Code != CodeBadRequest {
		t.Fatalf("negative page_size = %d/%s, want 400/%s", code, e.Code, CodeBadRequest)
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatalf("GET /query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
	snap := svc.Obs.Snapshot()
	if snap["parse_errors"].(int64) != 2 || snap["bad_requests"].(int64) < 2 {
		t.Fatalf("error counters = parse %v, bad %v; want 2 and >=2",
			snap["parse_errors"], snap["bad_requests"])
	}
}
