package queryapi

import (
	"context"
	"sync"

	"strudel/internal/struql"
)

// Single is a one-replica Backend over a bare source: no sharding, no
// failover, just the generation-snapshot discipline. It backs tests,
// fuzzing, and embedded (in-process) use of the query service without
// constructing a fleet.
type Single struct {
	mu  sync.Mutex
	src struql.Source
	gen int64
}

// NewSingle wraps a source at generation 0.
func NewSingle(src struql.Source) *Single { return &Single{src: src} }

// Swap replaces the source and bumps the generation, mimicking a hot
// reload.
func (s *Single) Swap(src struql.Source) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src = src
	s.gen++
	return s.gen
}

// Generation implements Backend.
func (s *Single) Generation() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// EvalOn implements Backend: one atomic (source, generation) snapshot,
// then the closure.
func (s *Single) EvalOn(ctx context.Context, key string, fn func(ctx context.Context, src struql.Source, gen int64) (string, error)) (string, int64, error) {
	s.mu.Lock()
	src, gen := s.src, s.gen
	s.mu.Unlock()
	out, err := fn(ctx, src, gen)
	return out, gen, err
}
