package constraints

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

// CheckData translates the reachability constraint into queries over the
// data graph and evaluates them: for each creation context of the target
// Skolem function, a violating data-graph row is one that creates a target
// object while satisfying none of the schema paths that could reach it.
// Witnesses are the violating Skolem applications.
func (c Reachability) CheckData(s *schema.Schema, data struql.Source) Result {
	to, ok := resolveSet(s, c.To)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.To)}
	}
	from, ok := resolveSet(s, c.From)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.From)}
	}
	nfa := struql.CompilePath(c.Path)
	if from == to && matchesEmptyPath(nfa) {
		return Result{Verdict: Verified, Reason: "path matches the empty path"}
	}
	paths := findPaths(s, from, to, nfa)
	skippedInexpressible := false
	var usable []schemaPath
	for _, p := range paths {
		if p.expressible() {
			usable = append(usable, p)
		} else {
			skippedInexpressible = true
		}
	}
	var witnesses []string
	for _, cr := range s.CreationsOf(to) {
		rows, err := violationRows(cr, usable, data)
		if err != nil {
			return Result{Verdict: Unknown, Reason: err.Error()}
		}
		witnesses = append(witnesses, rows...)
	}
	if len(witnesses) > 0 {
		if skippedInexpressible {
			return Result{Verdict: Unknown,
				Reason: "possible violations found, but some schema paths use regex predicates over arc variables and could not be checked"}
		}
		witnesses = dedupSorted(witnesses)
		return Result{Verdict: Violated,
			Reason:    fmt.Sprintf("%d data rows create %s objects with no %s path from %s", len(witnesses), to, c.Path, from),
			Witnesses: witnesses}
	}
	return Result{Verdict: Verified,
		Reason: fmt.Sprintf("no data row creates a %s object unreachable from %s", to, from)}
}

// violationRows evaluates, on the data graph, the creation conjunction
// extended with the negation of every usable schema path, and renders the
// violating Skolem applications.
func violationRows(cr schema.Creation, paths []schemaPath, data struql.Source) ([]string, error) {
	conds := append([]struql.Cond(nil), cr.Where...)
	for pi, p := range paths {
		pc, ok := pathConds(p, cr, pi)
		if !ok {
			continue // path cannot bind to this creation's arguments
		}
		if len(pc) == 0 {
			// An unconditional path always exists: nothing can violate.
			return nil, nil
		}
		conds = append(conds, &struql.NotCond{Conds: pc})
	}
	b, err := struql.EvalWhere(conds, data, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("constraints: data check: %w", err)
	}
	var out []string
	for ri := range b.Rows {
		args := make([]string, len(cr.Args))
		for i, a := range cr.Args {
			args[i] = b.Lookup(ri, a).Text()
		}
		out = append(out, fmt.Sprintf("%s(%s)", cr.Fn, strings.Join(args, ",")))
	}
	return out, nil
}

// pathConds renames the governing conjunctions of a schema path into one
// conjunction whose final target arguments are the creation's argument
// variables: fresh names everywhere else, with adjacent edges unified on
// their shared schema node's arguments. ok is false when the arities do
// not line up and the path cannot witness this creation; an empty
// conjunction with ok true means the path exists unconditionally.
func pathConds(p schemaPath, cr schema.Creation, pathIdx int) (conds []struql.Cond, ok bool) {
	if len(p) == 0 {
		return nil, false
	}
	// boundary maps the next edge's target-argument variables (walking
	// backward) to their unified names.
	last := p[len(p)-1]
	if len(last.edge.ToArgs) != len(cr.Args) {
		return nil, false
	}
	boundary := map[string]string{}
	for i, a := range last.edge.ToArgs {
		boundary[a] = cr.Args[i]
	}
	for ei := len(p) - 1; ei >= 0; ei-- {
		step := p[ei]
		sub := map[string]string{}
		fresh := func(v string) string { return fmt.Sprintf("_p%d_e%d_%s", pathIdx, ei, v) }
		// Target args unify with the boundary; everything else is fresh.
		for _, c := range step.edge.Where {
			for _, v := range struql.CondVars(c) {
				if _, done := sub[v]; done {
					continue
				}
				if nv, ok := boundary[v]; ok {
					sub[v] = nv
				} else {
					sub[v] = fresh(v)
				}
			}
		}
		// Args can appear even if no condition mentions them.
		for _, v := range step.edge.ToArgs {
			if _, done := sub[v]; !done {
				if nv, ok := boundary[v]; ok {
					sub[v] = nv
				} else {
					sub[v] = fresh(v)
				}
			}
		}
		for _, v := range step.edge.FromArgs {
			if _, done := sub[v]; !done {
				sub[v] = fresh(v)
			}
		}
		for _, c := range step.edge.Where {
			conds = append(conds, struql.RenameCond(c, sub))
		}
		if step.labelReq != "" && step.edge.Label.IsVar {
			lv := step.edge.Label.Var
			renamed, ok := sub[lv]
			if !ok {
				renamed = fresh(lv)
			}
			conds = append(conds, &struql.CmpCond{
				Op: struql.CmpEq,
				L:  struql.VarTerm(renamed),
				R:  struql.ConstTerm(graph.NewString(step.labelReq)),
			})
		}
		// New boundary: the source node's arguments under this renaming.
		next := map[string]string{}
		for _, v := range step.edge.FromArgs {
			next[v] = sub[v]
		}
		if ei > 0 && len(p[ei-1].edge.ToArgs) != len(step.edge.FromArgs) {
			return nil, false
		}
		if ei > 0 {
			remapped := map[string]string{}
			for i, v := range p[ei-1].edge.ToArgs {
				remapped[v] = next[step.edge.FromArgs[i]]
			}
			boundary = remapped
		}
	}
	return conds, true
}

// CheckData verifies attribute existence against the data graph: a
// violation is a data row that creates a Set object while satisfying no
// schema edge that would give it the attribute.
func (c AttributeExists) CheckData(s *schema.Schema, data struql.Source) Result {
	set, ok := resolveSet(s, c.Set)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.Set)}
	}
	var witnesses []string
	for _, cr := range s.CreationsOf(set) {
		conds := append([]struql.Cond(nil), cr.Where...)
		for ei, e := range s.OutEdges(set) {
			if !e.Label.IsVar && e.Label.Lit != c.Label {
				continue
			}
			if len(e.FromArgs) != len(cr.Args) {
				continue
			}
			sub := map[string]string{}
			for i, a := range e.FromArgs {
				sub[a] = cr.Args[i]
			}
			var inner []struql.Cond
			for _, k := range e.Where {
				for _, v := range struql.CondVars(k) {
					if _, done := sub[v]; !done {
						sub[v] = fmt.Sprintf("_a%d_%s", ei, v)
					}
				}
				inner = append(inner, struql.RenameCond(k, sub))
			}
			if e.Label.IsVar {
				lv, ok := sub[e.Label.Var]
				if !ok {
					lv = fmt.Sprintf("_a%d_%s", ei, e.Label.Var)
				}
				inner = append(inner, &struql.CmpCond{
					Op: struql.CmpEq,
					L:  struql.VarTerm(lv),
					R:  struql.ConstTerm(graph.NewString(c.Label)),
				})
			}
			conds = append(conds, &struql.NotCond{Conds: inner})
		}
		b, err := struql.EvalWhere(conds, data, nil, nil)
		if err != nil {
			return Result{Verdict: Unknown, Reason: err.Error()}
		}
		for ri := range b.Rows {
			args := make([]string, len(cr.Args))
			for i, a := range cr.Args {
				args[i] = b.Lookup(ri, a).Text()
			}
			witnesses = append(witnesses, fmt.Sprintf("%s(%s)", cr.Fn, strings.Join(args, ",")))
		}
	}
	if len(witnesses) > 0 {
		witnesses = dedupSorted(witnesses)
		return Result{Verdict: Violated,
			Reason:    fmt.Sprintf("%d data rows create %s objects lacking %q", len(witnesses), set, c.Label),
			Witnesses: witnesses}
	}
	return Result{Verdict: Verified, Reason: fmt.Sprintf("every created %s carries %q", set, c.Label)}
}

// CheckData verifies connectivity by checking every schema node's
// reachability from the root against the data graph.
func (c Connected) CheckData(s *schema.Schema, data struql.Source) Result {
	root, ok := resolveSet(s, c.Root)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.Root)}
	}
	star := struql.MustParsePathExpr("_*")
	verdict := Verified
	var allWitnesses []string
	var reasons []string
	for _, n := range s.Nodes {
		if n == schema.NS || n == root {
			continue
		}
		r := Reachability{From: c.Root, Path: star, To: n}.CheckData(s, data)
		switch r.Verdict {
		case Violated:
			verdict = Violated
			allWitnesses = append(allWitnesses, r.Witnesses...)
			reasons = append(reasons, fmt.Sprintf("%s: %s", n, r.Reason))
		case Unknown:
			if verdict == Verified {
				verdict = Unknown
			}
			reasons = append(reasons, fmt.Sprintf("%s: %s", n, r.Reason))
		}
	}
	switch verdict {
	case Verified:
		return Result{Verdict: Verified, Reason: "every created object is reachable from the root"}
	case Violated:
		return Result{Verdict: Violated, Reason: strings.Join(reasons, "; "), Witnesses: dedupSorted(allWitnesses)}
	}
	return Result{Verdict: Unknown, Reason: strings.Join(reasons, "; ")}
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
