package constraints

import (
	"fmt"
	"strings"

	"strudel/internal/schema"
	"strudel/internal/struql"
)

// pathStep is one schema edge traversed while matching a path expression,
// together with the label requirement the match imposes when the edge's
// label is an arc variable.
type pathStep struct {
	edge schema.Edge
	// labelReq is the literal label the arc variable must equal ("" when
	// the predicate was _ or the edge label is a literal).
	labelReq string
	// inexpressible marks steps whose requirement cannot be written as a
	// StruQL condition (a regex predicate over an arc variable).
	inexpressible bool
}

type schemaPath []pathStep

func (p schemaPath) expressible() bool {
	for _, s := range p {
		if s.inexpressible {
			return false
		}
	}
	return true
}

const (
	maxPathDepth = 8
	maxPaths     = 32
)

// resolveSet maps a constraint set name to a schema node: directly, or via
// an output collection whose target is a Skolem function.
func resolveSet(s *schema.Schema, name string) (string, bool) {
	if s.HasNode(name) {
		return name, true
	}
	for _, c := range s.Collects {
		if c.Coll == name && c.Target != schema.NS {
			return c.Target, true
		}
	}
	return "", false
}

// matchesEmptyPath reports whether the expression accepts the empty path.
func matchesEmptyPath(nfa *struql.NFA) bool {
	return nfa.AcceptingAny(nfa.StartStates())
}

// findPaths enumerates schema paths from node `from` to node `to` whose
// label sequence can match the path expression, walking the schema graph
// and the expression's NFA in parallel. It returns at most maxPaths paths
// of at most maxPathDepth edges.
func findPaths(s *schema.Schema, from, to string, nfa *struql.NFA) []schemaPath {
	var out []schemaPath
	type frame struct {
		node  string
		state int
	}
	var cur schemaPath
	onStack := map[frame]bool{}
	var dfs func(node string, state int)
	dfs = func(node string, state int) {
		if len(out) >= maxPaths || len(cur) >= maxPathDepth {
			return
		}
		f := frame{node, state}
		if onStack[f] {
			return
		}
		onStack[f] = true
		defer delete(onStack, f)
		for _, e := range s.OutEdges(node) {
			for _, arc := range nfa.Arcs(state) {
				step, ok := stepFor(e, arc.Pred)
				if !ok {
					continue
				}
				for _, t := range arc.To {
					cur = append(cur, step)
					if e.To == to && nfa.Accepting(t) {
						cp := make(schemaPath, len(cur))
						copy(cp, cur)
						out = append(out, cp)
					}
					if e.To != schema.NS {
						dfs(e.To, t)
					}
					cur = cur[:len(cur)-1]
				}
			}
		}
	}
	for _, st := range nfa.StartStates() {
		dfs(from, st)
	}
	return out
}

// stepFor decides whether a schema edge can take an NFA arc, and with what
// requirement on the edge's label.
func stepFor(e schema.Edge, pred *struql.PathExpr) (pathStep, bool) {
	if !e.Label.IsVar {
		if pred.MatchesLabel(e.Label.Lit) {
			return pathStep{edge: e}, true
		}
		return pathStep{}, false
	}
	// Arc-variable edge: the label is data-dependent.
	switch pred.Op {
	case struql.PLabel:
		return pathStep{edge: e, labelReq: pred.Label}, true
	case struql.PAny:
		return pathStep{edge: e}, true
	case struql.PRegex:
		return pathStep{edge: e, inexpressible: true}, true
	}
	return pathStep{}, false
}

// condSet renders a conjunction as a set of canonical strings for the
// syntactic-implication test.
func condSet(conds []struql.Cond) map[string]bool {
	set := make(map[string]bool, len(conds))
	for _, c := range conds {
		set[c.String()] = true
	}
	return set
}

// impliedBy reports whether every condition of sub appears in super — the
// conservative syntactic implication test (same variable naming assumed,
// which holds for conjunctions drawn from one query).
func impliedBy(sub []struql.Cond, super []struql.Cond) bool {
	ss := condSet(super)
	for _, c := range sub {
		if !ss[c.String()] {
			return false
		}
	}
	return true
}

func sameArgs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathGuaranteed reports whether the path provably exists whenever the
// target creation context holds: every edge's governing conjunction is
// implied by the creation's, the Skolem arguments chain consistently, and
// no step imposes a label requirement we cannot verify syntactically.
func pathGuaranteed(p schemaPath, c schema.Creation) bool {
	if len(p) == 0 {
		return false
	}
	last := p[len(p)-1]
	if !sameArgs(last.edge.ToArgs, c.Args) {
		return false
	}
	for i, step := range p {
		if step.labelReq != "" || step.inexpressible {
			return false
		}
		if !impliedBy(step.edge.Where, c.Where) {
			return false
		}
		if i+1 < len(p) && !sameArgs(step.edge.ToArgs, p[i+1].edge.FromArgs) {
			return false
		}
	}
	return true
}

// unconditional reports whether the schema guarantees at least one
// instance of fn exists in every generated site (a creation with an empty
// governing conjunction).
func unconditional(s *schema.Schema, fn string) bool {
	for _, c := range s.CreationsOf(fn) {
		if len(c.Where) == 0 {
			return true
		}
	}
	return false
}

// CheckStatic conservatively verifies reachability against the schema:
// Verified when for every creation context of the target some schema path
// is guaranteed; Violated when no schema path can exist at all and the
// target is unconditionally created; Unknown otherwise.
func (c Reachability) CheckStatic(s *schema.Schema) Result {
	to, ok := resolveSet(s, c.To)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.To)}
	}
	from, ok := resolveSet(s, c.From)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.From)}
	}
	nfa := struql.CompilePath(c.Path)
	if from == to && matchesEmptyPath(nfa) {
		return Result{Verdict: Verified, Reason: "path matches the empty path; every object reaches itself"}
	}
	paths := findPaths(s, from, to, nfa)
	if len(paths) == 0 {
		if unconditional(s, to) {
			return Result{Verdict: Violated,
				Reason: fmt.Sprintf("no schema path %s → %s matches %s, and %s always exists", from, to, c.Path, to)}
		}
		return Result{Verdict: Unknown,
			Reason: fmt.Sprintf("no schema path %s → %s matches %s (violated whenever %s is nonempty)", from, to, c.Path, to)}
	}
	for _, cr := range s.CreationsOf(to) {
		covered := false
		for _, p := range paths {
			if pathGuaranteed(p, cr) {
				covered = true
				break
			}
		}
		if !covered {
			return Result{Verdict: Unknown,
				Reason: fmt.Sprintf("creation context %s of %s is not covered by any guaranteed path", cr.WhereID, to)}
		}
	}
	return Result{Verdict: Verified,
		Reason: fmt.Sprintf("every creation context of %s has a guaranteed schema path from %s", to, from)}
}

// CheckStatic conservatively verifies attribute existence.
func (c AttributeExists) CheckStatic(s *schema.Schema) Result {
	set, ok := resolveSet(s, c.Set)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.Set)}
	}
	edges := s.OutEdges(set)
	possible := false
	for _, e := range edges {
		if e.Label.IsVar || e.Label.Lit == c.Label {
			possible = true
		}
	}
	if !possible {
		if unconditional(s, set) {
			return Result{Verdict: Violated,
				Reason: fmt.Sprintf("no schema edge from %s can carry label %q", set, c.Label)}
		}
		return Result{Verdict: Unknown,
			Reason: fmt.Sprintf("no schema edge from %s can carry %q (violated whenever %s is nonempty)", set, c.Label, set)}
	}
	for _, cr := range s.CreationsOf(set) {
		covered := false
		for _, e := range edges {
			if !e.Label.IsVar && e.Label.Lit == c.Label &&
				sameArgs(e.FromArgs, cr.Args) && impliedBy(e.Where, cr.Where) {
				covered = true
				break
			}
		}
		if !covered {
			return Result{Verdict: Unknown,
				Reason: fmt.Sprintf("creation context %s of %s not guaranteed to carry %q", cr.WhereID, set, c.Label)}
		}
	}
	return Result{Verdict: Verified, Reason: fmt.Sprintf("every creation of %s links a %q edge", set, c.Label)}
}

// CheckStatic verifies connectivity by checking reachability of every
// schema node from the root set.
func (c Connected) CheckStatic(s *schema.Schema) Result {
	root, ok := resolveSet(s, c.Root)
	if !ok {
		return Result{Verdict: Unknown, Reason: fmt.Sprintf("set %s is not a schema node", c.Root)}
	}
	star := struql.MustParsePathExpr("_*")
	verdict := Verified
	var reasons []string
	for _, n := range s.Nodes {
		if n == schema.NS || n == root {
			continue
		}
		r := Reachability{From: c.Root, Path: star, To: n}.CheckStatic(s)
		switch r.Verdict {
		case Violated:
			return Result{Verdict: Violated, Reason: fmt.Sprintf("%s: %s", n, r.Reason)}
		case Unknown:
			verdict = Unknown
			reasons = append(reasons, fmt.Sprintf("%s: %s", n, r.Reason))
		}
	}
	if verdict == Verified {
		return Result{Verdict: Verified, Reason: "every schema node has a guaranteed path from the root"}
	}
	return Result{Verdict: Unknown, Reason: strings.Join(reasons, "; ")}
}
