package constraints

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

const fig3Query = `
create RootPage(), AbstractsPage()
link RootPage() -> "Abstracts" -> AbstractsPage()

where Publications(x)
create AbstractPage(x), PaperPresentation(x)
link PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  where x -> l -> v
  link AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v
}
{
  where x -> "year" -> y
  create YearPage(y)
  link YearPage(y) -> "Year" -> y,
       YearPage(y) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(y)
}
{
  where x -> "category" -> c
  create CategoryPage(c)
  link CategoryPage(c) -> "Category" -> c,
       CategoryPage(c) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(c)
}
`

// dataGraph builds publication data; withOrphan adds a publication that
// has neither year nor category and so is unreachable in the site.
func dataGraph(withOrphan bool) *graph.Graph {
	g := graph.New()
	add := func(oid graph.OID, year int64, cat string) {
		g.AddToCollection("Publications", oid)
		g.AddEdge(oid, "title", graph.NewString("T-"+string(oid)))
		if year > 0 {
			g.AddEdge(oid, "year", graph.NewInt(year))
		}
		if cat != "" {
			g.AddEdge(oid, "category", graph.NewString(cat))
		}
	}
	add("pub1", 1997, "web")
	add("pub2", 1998, "web")
	if withOrphan {
		g.AddToCollection("Publications", "pub3")
		g.AddEdge("pub3", "title", graph.NewString("orphaned"))
		// no year, no category, no month
	} else {
		g.AddEdge("pub1", "month", graph.NewString("Sep"))
		g.AddEdge("pub2", "month", graph.NewString("Oct"))
	}
	return g
}

func buildSite(t *testing.T, data *graph.Graph) (*schema.Schema, *graph.Graph) {
	t.Helper()
	q := struql.MustParse(fig3Query)
	r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	return schema.Build(q), r.Graph
}

func TestStaticVerifiedReachability(t *testing.T) {
	s, _ := buildSite(t, dataGraph(false))
	c := Reachability{From: "AbstractsPage", To: "AbstractPage", Path: struql.MustParsePathExpr(`"Abstract"`)}
	r := c.CheckStatic(s)
	if r.Verdict != Verified {
		t.Errorf("verdict = %v (%s), want verified", r.Verdict, r.Reason)
	}
}

func TestStaticUnknownForDataDependentReachability(t *testing.T) {
	// "All paper presentation pages are reachable from a category page"
	// (the paper's example constraint): holds only if every publication
	// has a category, which the schema alone cannot decide.
	s, _ := buildSite(t, dataGraph(false))
	c := Reachability{From: "CategoryPage", To: "PaperPresentation", Path: struql.MustParsePathExpr(`"Paper"`)}
	if r := c.CheckStatic(s); r.Verdict != Unknown {
		t.Errorf("verdict = %v (%s), want unknown", r.Verdict, r.Reason)
	}
}

func TestStaticViolatedStructurally(t *testing.T) {
	s, _ := buildSite(t, dataGraph(false))
	// AbstractsPage always exists, and no "zz"-labeled schema path from
	// YearPage can reach it.
	c := Reachability{From: "YearPage", To: "AbstractsPage", Path: struql.MustParsePathExpr(`"zz"`)}
	if r := c.CheckStatic(s); r.Verdict != Violated {
		t.Errorf("verdict = %v (%s), want violated", r.Verdict, r.Reason)
	}
}

func TestDataCheckAgreesWithSiteCheck(t *testing.T) {
	paper := Reachability{From: "CategoryPage", To: "PaperPresentation", Path: struql.MustParsePathExpr(`"Paper"`)}
	for _, orphan := range []bool{false, true} {
		s, site := buildSite(t, dataGraph(orphan))
		data := struql.NewGraphSource(dataGraph(orphan))
		dr := paper.CheckData(s, data)
		sr := paper.CheckSite(site)
		if dr.Verdict != sr.Verdict {
			t.Errorf("orphan=%v: data=%v (%s) site=%v (%s)", orphan, dr.Verdict, dr.Reason, sr.Verdict, sr.Reason)
		}
		if orphan {
			if dr.Verdict != Violated {
				t.Fatalf("orphan: data verdict = %v (%s)", dr.Verdict, dr.Reason)
			}
			if len(dr.Witnesses) != 1 || dr.Witnesses[0] != "PaperPresentation(pub3)" {
				t.Errorf("data witnesses = %v", dr.Witnesses)
			}
			if len(sr.Witnesses) != 1 || sr.Witnesses[0] != "PaperPresentation(pub3)" {
				t.Errorf("site witnesses = %v", sr.Witnesses)
			}
		}
	}
}

func TestMultiHopDataCheck(t *testing.T) {
	// Reachability from the root via a two-hop star path.
	c := Reachability{From: "RootPage", To: "PaperPresentation", Path: struql.MustParsePathExpr(`_*`)}
	s, site := buildSite(t, dataGraph(true))
	dr := c.CheckData(s, struql.NewGraphSource(dataGraph(true)))
	sr := c.CheckSite(site)
	if dr.Verdict != Violated || sr.Verdict != Violated {
		t.Errorf("data=%v (%s), site=%v (%s), want violated (orphan pub3)", dr.Verdict, dr.Reason, sr.Verdict, sr.Reason)
	}
	if len(dr.Witnesses) != 1 || dr.Witnesses[0] != "PaperPresentation(pub3)" {
		t.Errorf("witnesses = %v", dr.Witnesses)
	}
	// Without the orphan everything is reachable.
	s2, site2 := buildSite(t, dataGraph(false))
	if r := c.CheckData(s2, struql.NewGraphSource(dataGraph(false))); r.Verdict != Verified {
		t.Errorf("no-orphan data verdict = %v (%s)", r.Verdict, r.Reason)
	}
	if r := c.CheckSite(site2); r.Verdict != Verified {
		t.Errorf("no-orphan site verdict = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestAttributeExistsStatic(t *testing.T) {
	s, _ := buildSite(t, dataGraph(false))
	// YearPage always links its Year value: guaranteed by construction.
	if r := (AttributeExists{Set: "YearPage", Label: "Year"}).CheckStatic(s); r.Verdict != Verified {
		t.Errorf("YearPage/Year = %v (%s), want verified", r.Verdict, r.Reason)
	}
	// month comes through an arc variable: the schema cannot decide.
	if r := (AttributeExists{Set: "PaperPresentation", Label: "month"}).CheckStatic(s); r.Verdict != Unknown {
		t.Errorf("PaperPresentation/month = %v (%s), want unknown", r.Verdict, r.Reason)
	}
	// No edge from RootPage can ever carry "zzz", and RootPage always exists.
	if r := (AttributeExists{Set: "RootPage", Label: "zzz"}).CheckStatic(s); r.Verdict != Violated {
		t.Errorf("RootPage/zzz = %v (%s), want violated", r.Verdict, r.Reason)
	}
}

func TestAttributeExistsDataAndSite(t *testing.T) {
	c := AttributeExists{Set: "PaperPresentation", Label: "month"}
	s, site := buildSite(t, dataGraph(true))
	dr := c.CheckData(s, struql.NewGraphSource(dataGraph(true)))
	if dr.Verdict != Violated {
		t.Fatalf("data verdict = %v (%s)", dr.Verdict, dr.Reason)
	}
	// pub1, pub2, pub3 all lack month in the orphan dataset.
	if len(dr.Witnesses) != 3 {
		t.Errorf("witnesses = %v", dr.Witnesses)
	}
	sr := c.CheckSite(site)
	if sr.Verdict != Violated || len(sr.Witnesses) != 3 {
		t.Errorf("site verdict = %v, witnesses = %v", sr.Verdict, sr.Witnesses)
	}
	// With months present everywhere, both agree on verified.
	s2, site2 := buildSite(t, dataGraph(false))
	if r := c.CheckData(s2, struql.NewGraphSource(dataGraph(false))); r.Verdict != Verified {
		t.Errorf("data verdict = %v (%s)", r.Verdict, r.Reason)
	}
	if r := c.CheckSite(site2); r.Verdict != Verified {
		t.Errorf("site verdict = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestConnectedChecks(t *testing.T) {
	s, site := buildSite(t, dataGraph(false))
	c := Connected{Root: "RootPage"}
	if r := c.CheckSite(site); r.Verdict != Verified {
		t.Errorf("site connected = %v (%s)", r.Verdict, r.Reason)
	}
	// Static is conservative: PaperPresentation reachability depends on
	// data, so the static check must not claim Verified.
	if r := c.CheckStatic(s); r.Verdict != Unknown {
		t.Errorf("static connected = %v (%s), want unknown", r.Verdict, r.Reason)
	}
	if r := c.CheckData(s, struql.NewGraphSource(dataGraph(false))); r.Verdict != Verified {
		t.Errorf("data connected = %v (%s)", r.Verdict, r.Reason)
	}
	// With the orphan the site is disconnected and all three notice.
	s2, site2 := buildSite(t, dataGraph(true))
	if r := c.CheckSite(site2); r.Verdict != Violated {
		t.Errorf("site connected orphan = %v", r.Verdict)
	}
	if r := c.CheckData(s2, struql.NewGraphSource(dataGraph(true))); r.Verdict != Violated {
		t.Errorf("data connected orphan = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestEmptyTargetSetIsVerified(t *testing.T) {
	s, site := buildSite(t, dataGraph(false))
	_ = s
	c := Reachability{From: "RootPage", To: "NoSuchThing", Path: struql.MustParsePathExpr(`_*`)}
	if r := c.CheckSite(site); r.Verdict != Verified {
		t.Errorf("empty set site = %v", r.Verdict)
	}
}

func TestSelfReachabilityViaEmptyPath(t *testing.T) {
	s, _ := buildSite(t, dataGraph(false))
	c := Reachability{From: "YearPage", To: "YearPage", Path: struql.MustParsePathExpr(`_*`)}
	if r := c.CheckStatic(s); r.Verdict != Verified {
		t.Errorf("self reachability = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestParseConstraints(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`every PaperPresentation reachable from CategoryPage via "Paper"`,
			`every PaperPresentation reachable from CategoryPage via "Paper"`},
		{`every YearPage has "Year"`, `every YearPage has "Year"`},
		{`connected from RootPage`, `connected from RootPage`},
		{`every P reachable from R via ("a"|"b")*`, `every P reachable from R via ("a"|"b")*`},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
	for _, bad := range []string{"", "every x", "gibberish", `every X has Year`, `every X reachable from Y via (((`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCheckAll(t *testing.T) {
	_, site := buildSite(t, dataGraph(true))
	cs := []Constraint{
		Connected{Root: "RootPage"},
		AttributeExists{Set: "YearPage", Label: "Year"},
	}
	ok, results := CheckAll(cs, site)
	if ok {
		t.Error("orphan site should fail CheckAll")
	}
	if results[0].Verdict != Violated || results[1].Verdict != Verified {
		t.Errorf("results = %v / %v", results[0].Verdict, results[1].Verdict)
	}
}

func TestMembersOfPrefersCollection(t *testing.T) {
	g := graph.New()
	g.AddToCollection("Roots", "A()")
	g.AddNode("Roots(x)")
	members := membersOf(g, "Roots")
	if len(members) != 1 || members[0] != "A()" {
		t.Errorf("membersOf = %v, want collection members", members)
	}
	prefix := membersOf(g, "A")
	if len(prefix) != 1 || prefix[0] != "A()" {
		t.Errorf("membersOf prefix = %v", prefix)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Verified.String() != "verified" || Violated.String() != "violated" || Unknown.String() != "unknown" {
		t.Error("verdict names wrong")
	}
}

func TestReasonMentionsWitnessCount(t *testing.T) {
	s, _ := buildSite(t, dataGraph(true))
	c := Reachability{From: "CategoryPage", To: "PaperPresentation", Path: struql.MustParsePathExpr(`"Paper"`)}
	r := c.CheckData(s, struql.NewGraphSource(dataGraph(true)))
	if !strings.Contains(r.Reason, "1 data rows") {
		t.Errorf("reason = %q", r.Reason)
	}
}
