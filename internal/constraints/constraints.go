// Package constraints implements integrity constraints on
// Strudel-generated web sites (§2.5).
//
// Constraints are statements such as "all paper-presentation pages are
// reachable from a category page" or "every year page has a Year
// attribute". Each constraint supports three checks:
//
//   - CheckSite: an exact check against a materialized site graph — the
//     oracle, available only after evaluation.
//   - CheckStatic: a conservative check against the site schema alone,
//     in the spirit of [14]: Verified and Violated answers are sound;
//     Unknown means the schema does not decide the constraint.
//   - CheckData: translation of the site-graph constraint into a query on
//     the *data* graph via the site schema ("site schemas allow us to
//     translate constraint formulae on the site graph into formulae on the
//     data graph"), returning concrete witnesses of violation without ever
//     materializing the site.
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

// Verdict is the outcome of a constraint check.
type Verdict uint8

// Verdicts. Static checks may return Unknown; site checks never do.
const (
	Unknown Verdict = iota
	Verified
	Violated
)

var verdictNames = [...]string{"unknown", "verified", "violated"}

func (v Verdict) String() string { return verdictNames[v] }

// Result carries a verdict, a human-readable reason, and — for Violated
// results from exact checks — the witnesses.
type Result struct {
	Verdict   Verdict
	Reason    string
	Witnesses []string
}

// Constraint is an integrity constraint on a Strudel-generated site.
type Constraint interface {
	fmt.Stringer
	// CheckSite exactly checks a materialized site graph.
	CheckSite(site *graph.Graph) Result
	// CheckStatic conservatively checks the site schema.
	CheckStatic(s *schema.Schema) Result
	// CheckData checks against the data graph through the site schema.
	CheckData(s *schema.Schema, data struql.Source) Result
}

// Reachability states that every object in set To is reachable from some
// object in set From by a path matching Path. Sets name Skolem functions
// (schema nodes) or output collections.
type Reachability struct {
	From string
	Path *struql.PathExpr
	To   string
}

func (c Reachability) String() string {
	return fmt.Sprintf("every %s reachable from %s via %s", c.To, c.From, c.Path)
}

// AttributeExists states that every object in Set has at least one
// outgoing edge labeled Label.
type AttributeExists struct {
	Set   string
	Label string
}

func (c AttributeExists) String() string {
	return fmt.Sprintf("every %s has %q", c.Set, c.Label)
}

// Connected states that every node of the site graph is reachable from
// some object in the Root set — the canonical "no orphan pages" check.
type Connected struct {
	Root string
}

func (c Connected) String() string { return fmt.Sprintf("connected from %s", c.Root) }

// membersOf resolves a set name on a materialized site graph: an output
// collection of that name if present, otherwise all Skolem-created nodes
// of that function (oids "Fn(...)").
func membersOf(site *graph.Graph, set string) []graph.OID {
	if site.CollectionSize(set) > 0 {
		return site.Collection(set)
	}
	var out []graph.OID
	prefix := set + "("
	for _, oid := range site.Nodes() {
		if strings.HasPrefix(string(oid), prefix) {
			out = append(out, oid)
		}
	}
	return out
}

// CheckSite verifies reachability exactly by running the path expression
// forward from every From member.
func (c Reachability) CheckSite(site *graph.Graph) Result {
	from := membersOf(site, c.From)
	to := membersOf(site, c.To)
	if len(to) == 0 {
		return Result{Verdict: Verified, Reason: "target set is empty"}
	}
	reached := map[graph.OID]bool{}
	src := struql.NewGraphSource(site)
	for _, f := range from {
		for _, v := range struql.ReachableVia(src, f, c.Path) {
			if v.IsNode() {
				reached[v.OID()] = true
			}
		}
	}
	var missing []string
	for _, t := range to {
		if !reached[t] {
			missing = append(missing, string(t))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return Result{Verdict: Violated,
			Reason:    fmt.Sprintf("%d of %d %s objects unreachable", len(missing), len(to), c.To),
			Witnesses: missing}
	}
	return Result{Verdict: Verified, Reason: fmt.Sprintf("all %d %s objects reachable", len(to), c.To)}
}

// CheckSite verifies the attribute exists on every member.
func (c AttributeExists) CheckSite(site *graph.Graph) Result {
	members := membersOf(site, c.Set)
	var missing []string
	for _, m := range members {
		if len(site.OutLabel(m, c.Label)) == 0 {
			missing = append(missing, string(m))
		}
	}
	if len(missing) > 0 {
		return Result{Verdict: Violated,
			Reason:    fmt.Sprintf("%d of %d %s objects lack %q", len(missing), len(members), c.Set, c.Label),
			Witnesses: missing}
	}
	return Result{Verdict: Verified, Reason: fmt.Sprintf("all %d %s objects carry %q", len(members), c.Set, c.Label)}
}

// CheckSite verifies global connectivity from the root set.
func (c Connected) CheckSite(site *graph.Graph) Result {
	roots := membersOf(site, c.Root)
	reached := map[graph.OID]bool{}
	for _, r := range roots {
		for oid := range site.Reachable(r) {
			reached[oid] = true
		}
	}
	var missing []string
	for _, oid := range site.Nodes() {
		if !reached[oid] {
			missing = append(missing, string(oid))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return Result{Verdict: Violated,
			Reason:    fmt.Sprintf("%d of %d site objects unreachable from %s", len(missing), site.NumNodes(), c.Root),
			Witnesses: missing}
	}
	return Result{Verdict: Verified, Reason: fmt.Sprintf("all %d site objects reachable", site.NumNodes())}
}

// Parse reads one constraint in the textual form used by cmd tools:
//
//	every <Set> reachable from <Set> via <path-expr>
//	every <Set> has "<label>"
//	connected from <Set>
func Parse(src string) (Constraint, error) {
	fields := strings.Fields(src)
	bad := func() error { return fmt.Errorf("constraints: cannot parse %q", src) }
	switch {
	case len(fields) >= 3 && fields[0] == "connected" && fields[1] == "from":
		return Connected{Root: fields[2]}, nil
	case len(fields) >= 3 && fields[0] == "every" && fields[2] == "has":
		rest := strings.TrimSpace(strings.SplitN(src, " has ", 2)[1])
		label, err := unquote(rest)
		if err != nil {
			return nil, bad()
		}
		return AttributeExists{Set: fields[1], Label: label}, nil
	case len(fields) >= 6 && fields[0] == "every" && fields[2] == "reachable" && fields[3] == "from" && fields[5] == "via":
		pathSrc := strings.TrimSpace(strings.SplitN(src, " via ", 2)[1])
		pe, err := struql.ParsePathExpr(pathSrc)
		if err != nil {
			return nil, fmt.Errorf("constraints: %q: %w", src, err)
		}
		return Reachability{To: fields[1], From: fields[4], Path: pe}, nil
	}
	return nil, bad()
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1], nil
	}
	return "", fmt.Errorf("expected quoted label, got %q", s)
}

// CheckAll runs CheckSite for a list of constraints and returns a combined
// report, useful in the build pipeline.
func CheckAll(cs []Constraint, site *graph.Graph) (bool, []Result) {
	ok := true
	results := make([]Result, len(cs))
	for i, c := range cs {
		results[i] = c.CheckSite(site)
		if results[i].Verdict == Violated {
			ok = false
		}
	}
	return ok, results
}
