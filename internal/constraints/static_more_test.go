package constraints

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

func TestResolveSetThroughCollect(t *testing.T) {
	// A constraint may name an output collection; it resolves to the
	// collected Skolem function.
	q := struql.MustParse(`
where Pubs(x)
create Page(x)
link Page(x) -> "self" -> x
collect AllPages(Page(x))
`)
	s := schema.Build(q)
	fn, ok := resolveSet(s, "AllPages")
	if !ok || fn != "Page" {
		t.Errorf("resolveSet(AllPages) = %q, %v", fn, ok)
	}
	if _, ok := resolveSet(s, "NoSuchSet"); ok {
		t.Error("unknown set should not resolve")
	}
	// Constraints written against the collection behave like ones against
	// the function.
	c := AttributeExists{Set: "AllPages", Label: "self"}
	if r := c.CheckStatic(s); r.Verdict != Verified {
		t.Errorf("collect-resolved static check = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestUnknownSetsReturnUnknown(t *testing.T) {
	q := struql.MustParse(`where Pubs(x) create Page(x) link Page(x) -> "t" -> x`)
	s := schema.Build(q)
	checks := []Constraint{
		Reachability{From: "Ghost", To: "Page", Path: struql.MustParsePathExpr(`_*`)},
		Reachability{From: "Page", To: "Ghost", Path: struql.MustParsePathExpr(`_*`)},
		AttributeExists{Set: "Ghost", Label: "t"},
		Connected{Root: "Ghost"},
	}
	for _, c := range checks {
		if r := c.CheckStatic(s); r.Verdict != Unknown {
			t.Errorf("%s: static = %v, want unknown", c, r.Verdict)
		}
	}
	data := struql.NewGraphSource(graph.New())
	for _, c := range checks {
		if _, isConn := c.(Connected); isConn {
			continue // Connected aggregates per-node results
		}
		if r := c.CheckData(s, data); r.Verdict != Unknown {
			t.Errorf("%s: data = %v, want unknown", c, r.Verdict)
		}
	}
}

func TestArcVariablePathsWithRegexAreInexpressible(t *testing.T) {
	// A regex predicate over an arc-variable edge cannot be written as a
	// StruQL condition: the data check must not claim Violated from it.
	q := struql.MustParse(`
create Root()
where Items(x), x -> l -> v
link Root() -> l -> Page(x)
`)
	s := schema.Build(q)
	g := graph.New()
	g.AddToCollection("Items", "i1")
	g.AddEdge("i1", "weird", graph.NewInt(1))
	c := Reachability{From: "Root", To: "Page", Path: struql.MustParsePathExpr(`~"we.*"`)}
	r := c.CheckData(s, struql.NewGraphSource(g))
	if r.Verdict == Violated {
		t.Errorf("regex-over-arc-variable path must not yield Violated: %s", r.Reason)
	}
}

func TestStepForVariants(t *testing.T) {
	litEdge := schema.Edge{Label: struql.LabelSpec{Lit: "a"}}
	varEdge := schema.Edge{Label: struql.LabelSpec{Var: "l", IsVar: true}}
	lit := struql.MustParsePathExpr(`"a"`)
	other := struql.MustParsePathExpr(`"b"`)
	regex := struql.MustParsePathExpr(`~"x.*"`)
	if _, ok := stepFor(litEdge, lit); !ok {
		t.Error("literal label should match its predicate")
	}
	if _, ok := stepFor(litEdge, other); ok {
		t.Error("mismatched literal should not step")
	}
	st, ok := stepFor(varEdge, lit)
	if !ok || st.labelReq != "a" {
		t.Errorf("var edge vs literal: %+v, %v", st, ok)
	}
	st, ok = stepFor(varEdge, regex)
	if !ok || !st.inexpressible {
		t.Errorf("var edge vs regex: %+v, %v", st, ok)
	}
}

func TestSameArgs(t *testing.T) {
	if !sameArgs([]string{"a", "b"}, []string{"a", "b"}) {
		t.Error("equal args")
	}
	if sameArgs([]string{"a"}, []string{"a", "b"}) || sameArgs([]string{"a"}, []string{"b"}) {
		t.Error("unequal args")
	}
}

func TestPathGuaranteedRejectsLabelRequirements(t *testing.T) {
	// A path step that imposes l = "x" cannot be verified syntactically.
	q := struql.MustParse(`
where Items(i), i -> l -> v
create Hub(), Spoke(i)
link Hub() -> l -> Spoke(i)
`)
	s := schema.Build(q)
	c := Reachability{From: "Hub", To: "Spoke", Path: struql.MustParsePathExpr(`"specific"`)}
	if r := c.CheckStatic(s); r.Verdict == Verified {
		t.Error("label requirement should block static verification")
	}
}
