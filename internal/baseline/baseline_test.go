package baseline

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/synth"
	"strudel/internal/wrapper/bibtex"
)

func bibGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := bibtex.Load(synth.Bibliography(n, "bl"), bibtex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProceduralHomepagePages(t *testing.T) {
	data := bibGraph(t, 15)
	pages := ProceduralHomepage(data)
	if _, ok := pages["index.html"]; !ok {
		t.Fatal("index missing")
	}
	if _, ok := pages["abstracts.html"]; !ok {
		t.Fatal("abstracts missing")
	}
	// One paper page per publication.
	papers := 0
	for name := range pages {
		if strings.HasPrefix(name, "paper-") {
			papers++
		}
	}
	if papers != 15 {
		t.Errorf("paper pages = %d, want 15", papers)
	}
	// Year pages link papers.
	var sawYear bool
	for name, content := range pages {
		if strings.HasPrefix(name, "year-") {
			sawYear = true
			if !strings.Contains(content, "paper-") {
				t.Errorf("%s lists no papers", name)
			}
		}
	}
	if !sawYear {
		t.Error("no year pages")
	}
}

func TestProceduralGroupedComplexityScales(t *testing.T) {
	data := bibGraph(t, 10)
	p1 := ProceduralGrouped(data, "Publications", 1)
	p3 := ProceduralGrouped(data, "Publications", 3)
	if len(p3) <= len(p1) {
		t.Errorf("pages: dims=1 → %d, dims=3 → %d; more dimensions should add pages", len(p1), len(p3))
	}
	if !strings.Contains(p3["index.html"], "By month") {
		t.Error("dims=3 should group by month")
	}
	// dims beyond the known list saturates instead of panicking.
	_ = ProceduralGrouped(data, "Publications", 99)
}

func TestGroupedQueryParsesAndMatchesProcedural(t *testing.T) {
	// The declarative side of the Fig. 8 sweep builds the same grouping
	// structure the procedural side does: same group pages, same members.
	data := bibGraph(t, 12)
	for _, dims := range []int{1, 2, 4} {
		q, err := struql.Parse(GroupedQuery("Publications", dims))
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		r, err := struql.Eval(q, struql.NewGraphSource(data), nil)
		if err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		proc := ProceduralGrouped(data, "Publications", dims)
		// Count group pages on both sides.
		declGroups := 0
		for _, oid := range r.Graph.Nodes() {
			s := string(oid)
			for d := 0; d < dims; d++ {
				if strings.HasPrefix(s, dimTitle(GroupDims[d])+"Page(") {
					declGroups++
					break
				}
			}
		}
		procGroups := 0
		for name := range proc {
			for d := 0; d < dims; d++ {
				if strings.HasPrefix(name, GroupDims[d]+"-") {
					procGroups++
					break
				}
			}
		}
		if declGroups != procGroups {
			t.Errorf("dims=%d: declarative groups = %d, procedural = %d", dims, declGroups, procGroups)
		}
	}
}

func TestGroupedQueryLinkClausesGrowWithDims(t *testing.T) {
	q2 := struql.MustParse(GroupedQuery("Publications", 2))
	q6 := struql.MustParse(GroupedQuery("Publications", 6))
	if q6.LinkClauseCount() <= q2.LinkClauseCount() {
		t.Error("structural complexity should grow with dimensions")
	}
}

func TestProceduralDeterminism(t *testing.T) {
	data := bibGraph(t, 8)
	a := ProceduralHomepage(data)
	b := ProceduralHomepage(data)
	if len(a) != len(b) {
		t.Fatal("page counts differ")
	}
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("page %s differs between runs", name)
		}
	}
}
