// Package baseline implements the practice Strudel replaces: procedural,
// CGI-script-style site generators written by hand against the raw data
// (§1, §6.1, Fig. 8). The paper measures a site's structural complexity
// by "the number of CGI-BIN scripts required to generate a site"; here
// each hand-written generator function plays the role of one such script
// family. Experiments compare these generators against the declarative
// pipeline on build time and on specification size.
//
// The unoptimized-query baseline for experiment E6 does not live here: it
// is struql evaluation with Options{NoReorder: true} over a plain
// GraphSource instead of the indexed repository.
package baseline

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// ProceduralHomepage builds the same pages as the Strudel homepage site
// with hand-written traversal code: an index page, one presentation page
// and one abstract section per publication, a page per year, and a page
// per category. Compare its rigidity with the 48-line declarative query:
// every structural decision is buried in loop nests, and producing an
// external variant means copying and editing all of it.
func ProceduralHomepage(data *graph.Graph) map[string]string {
	pages := map[string]string{}
	pubs := data.Collection("Publications")

	years := map[string][]graph.OID{}
	cats := map[string][]graph.OID{}
	for _, p := range pubs {
		if y := data.First(p, "year"); !y.IsNull() {
			years[y.Text()] = append(years[y.Text()], p)
		}
		for _, c := range data.OutLabel(p, "category") {
			cats[c.Text()] = append(cats[c.Text()], p)
		}
	}

	var idx strings.Builder
	idx.WriteString("<html><head><title>Home</title></head><body><h1>Home</h1>\n<h2>Years</h2>\n<ul>\n")
	for _, y := range sortedKeys(years) {
		fmt.Fprintf(&idx, "<li><a href=\"year-%s.html\">%s</a></li>\n", y, html.EscapeString(y))
	}
	idx.WriteString("</ul>\n<h2>Categories</h2>\n<ul>\n")
	for _, c := range sortedKeys(cats) {
		fmt.Fprintf(&idx, "<li><a href=\"cat-%s.html\">%s</a></li>\n", fileSafe(c), html.EscapeString(c))
	}
	idx.WriteString("</ul>\n<p><a href=\"abstracts.html\">All abstracts</a></p>\n</body></html>\n")
	pages["index.html"] = idx.String()

	var abs strings.Builder
	abs.WriteString("<html><body><h1>Abstracts</h1>\n<ul>\n")
	for _, p := range pubs {
		abs.WriteString("<li>")
		abs.WriteString(abstractSection(data, p))
		abs.WriteString("</li>\n")
	}
	abs.WriteString("</ul>\n</body></html>\n")
	pages["abstracts.html"] = abs.String()

	for _, p := range pubs {
		pages["paper-"+fileSafe(string(p))+".html"] = paperPage(data, p)
		pages["abstract-"+fileSafe(string(p))+".html"] =
			"<html><body>" + abstractSection(data, p) + "</body></html>\n"
	}
	for _, y := range sortedKeys(years) {
		var b strings.Builder
		fmt.Fprintf(&b, "<html><body><h1>Papers from %s</h1>\n<ul>\n", html.EscapeString(y))
		for _, p := range years[y] {
			fmt.Fprintf(&b, "<li><a href=\"paper-%s.html\">%s</a></li>\n",
				fileSafe(string(p)), html.EscapeString(data.First(p, "title").Text()))
		}
		b.WriteString("</ul>\n</body></html>\n")
		pages["year-"+y+".html"] = b.String()
	}
	for _, c := range sortedKeys(cats) {
		var b strings.Builder
		fmt.Fprintf(&b, "<html><body><h1>Papers on %s</h1>\n<ul>\n", html.EscapeString(c))
		for _, p := range cats[c] {
			fmt.Fprintf(&b, "<li><a href=\"paper-%s.html\">%s</a></li>\n",
				fileSafe(string(p)), html.EscapeString(data.First(p, "title").Text()))
		}
		b.WriteString("</ul>\n</body></html>\n")
		pages["cat-"+fileSafe(c)+".html"] = b.String()
	}
	return pages
}

func paperPage(data *graph.Graph, p graph.OID) string {
	var b strings.Builder
	b.WriteString("<html><body><b>")
	b.WriteString(html.EscapeString(data.First(p, "title").Text()))
	b.WriteString("</b> by ")
	var authors []string
	for _, a := range data.OutLabel(p, "author") {
		authors = append(authors, html.EscapeString(a.Text()))
	}
	b.WriteString(strings.Join(authors, ", "))
	fmt.Fprintf(&b, " (%s)", data.First(p, "year").Text())
	if j := data.First(p, "journal"); !j.IsNull() {
		fmt.Fprintf(&b, " <i>In %s.</i>", html.EscapeString(j.Text()))
	}
	if bt := data.First(p, "booktitle"); !bt.IsNull() {
		fmt.Fprintf(&b, " <i>In %s.</i>", html.EscapeString(bt.Text()))
	}
	fmt.Fprintf(&b, "\n<p><a href=\"abstract-%s.html\">Abstract</a></p>\n</body></html>\n", fileSafe(string(p)))
	return b.String()
}

func abstractSection(data *graph.Graph, p graph.OID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<h3>%s</h3>", html.EscapeString(data.First(p, "title").Text()))
	var authors []string
	for _, a := range data.OutLabel(p, "author") {
		authors = append(authors, html.EscapeString(a.Text()))
	}
	fmt.Fprintf(&b, "<p>by %s</p>", strings.Join(authors, ", "))
	if abs := data.First(p, "abstract"); !abs.IsNull() {
		fmt.Fprintf(&b, "<blockquote><a href=%q>%s</a></blockquote>", abs.Str(), abs.Str())
	}
	return b.String()
}

// GroupDims are the grouping dimensions the parametric generators know:
// the Fig. 8 complexity sweep adds one page family per dimension.
var GroupDims = []string{"year", "category", "month", "type", "journal", "booktitle", "author", "postscript"}

// ProceduralGrouped is the parametric procedural generator used by the
// Fig. 8 sweep: for each of the first `dims` grouping dimensions it emits
// one page per distinct value, listing the items carrying that value,
// plus an index page and one page per item. It measures how procedural
// build time scales with data size × structural complexity.
func ProceduralGrouped(data *graph.Graph, coll string, dims int) map[string]string {
	if dims > len(GroupDims) {
		dims = len(GroupDims)
	}
	pages := map[string]string{}
	items := data.Collection(coll)
	var idx strings.Builder
	idx.WriteString("<html><body><h1>Index</h1>\n")
	for d := 0; d < dims; d++ {
		dim := GroupDims[d]
		groups := map[string][]graph.OID{}
		for _, it := range items {
			for _, v := range data.OutLabel(it, dim) {
				groups[v.Text()] = append(groups[v.Text()], it)
			}
		}
		fmt.Fprintf(&idx, "<h2>By %s</h2>\n<ul>\n", dim)
		for _, g := range sortedKeys(groups) {
			name := fmt.Sprintf("%s-%s.html", dim, fileSafe(g))
			fmt.Fprintf(&idx, "<li><a href=%q>%s</a></li>\n", name, html.EscapeString(g))
			var b strings.Builder
			fmt.Fprintf(&b, "<html><body><h1>%s = %s</h1>\n<ul>\n", dim, html.EscapeString(g))
			for _, it := range groups[g] {
				fmt.Fprintf(&b, "<li><a href=\"item-%s.html\">%s</a></li>\n",
					fileSafe(string(it)), html.EscapeString(data.First(it, "title").Text()))
			}
			b.WriteString("</ul>\n</body></html>\n")
			pages[name] = b.String()
		}
	}
	idx.WriteString("</body></html>\n")
	pages["index.html"] = idx.String()
	for _, it := range items {
		var b strings.Builder
		b.WriteString("<html><body><dl>\n")
		for _, e := range data.Out(it) {
			fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", html.EscapeString(e.Label), html.EscapeString(e.To.Text()))
		}
		b.WriteString("</dl>\n</body></html>\n")
		pages["item-"+fileSafe(string(it))+".html"] = b.String()
	}
	return pages
}

// GroupedQuery generates the equivalent declarative site-definition query
// for a given complexity: the Strudel side of the Fig. 8 sweep.
func GroupedQuery(coll string, dims int) string {
	if dims > len(GroupDims) {
		dims = len(GroupDims)
	}
	var b strings.Builder
	b.WriteString("create IndexPage()\n")
	fmt.Fprintf(&b, "where %s(x)\ncreate ItemPage(x)\nlink IndexPage() -> \"Item\" -> ItemPage(x)\n", coll)
	b.WriteString("{\n  where x -> l -> v\n  link ItemPage(x) -> l -> v\n}\n")
	for d := 0; d < dims; d++ {
		dim := GroupDims[d]
		fmt.Fprintf(&b, `{
  where x -> %q -> g%d
  create %sPage(g%d)
  link %sPage(g%d) -> "value" -> g%d,
       %sPage(g%d) -> "Item" -> ItemPage(x),
       IndexPage() -> "%sGroup" -> %sPage(g%d)
}
`, dim, d, dimTitle(dim), d, dimTitle(dim), d, d, dimTitle(dim), d, dim, dimTitle(dim), d)
	}
	return b.String()
}

func dimTitle(dim string) string {
	return strings.ToUpper(dim[:1]) + dim[1:]
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fileSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
