package struql

import (
	"fmt"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

func parsePath(t *testing.T, s string) *PathExpr {
	t.Helper()
	q, err := Parse(fmt.Sprintf("where C(x), x -> %s -> y create N(x)", s))
	if err != nil {
		t.Fatalf("parse path %q: %v", s, err)
	}
	return q.Blocks[0].Where[1].(*PathCond).Path
}

func TestNFAEmptyPathAcceptance(t *testing.T) {
	cases := []struct {
		path  string
		empty bool
	}{
		{`"a"`, false},
		{`"a"*`, true},
		{`"a"?`, true},
		{`"a"+`, false},
		{`"a"|"b"*`, true},
		{`"a"."b"`, false},
		{`("a"?)."b"?`, true},
	}
	for _, c := range cases {
		n := compileNFA(parsePath(t, c.path))
		if got := n.accepting(n.closure([]int{n.start})); got != c.empty {
			t.Errorf("%s: empty acceptance = %v, want %v", c.path, got, c.empty)
		}
	}
}

func TestPathMatcherCycles(t *testing.T) {
	// A two-node cycle must terminate and reach both nodes.
	g := graph.New()
	g.AddEdge("a", "n", graph.NewNode("b"))
	g.AddEdge("b", "n", graph.NewNode("a"))
	m := newPathMatcher(parsePath(t, `"n"*`), NewGraphSource(g), nil, 0)
	got := m.reachableFrom("a")
	if len(got) != 2 {
		t.Fatalf("reachable = %v, want a and b", got)
	}
}

func TestPathMatcherDiamond(t *testing.T) {
	// Two paths to the same node yield one result.
	g := graph.New()
	g.AddEdge("s", "l", graph.NewNode("m1"))
	g.AddEdge("s", "l", graph.NewNode("m2"))
	g.AddEdge("m1", "r", graph.NewNode("t"))
	g.AddEdge("m2", "r", graph.NewNode("t"))
	m := newPathMatcher(parsePath(t, `"l"."r"`), NewGraphSource(g), nil, 0)
	got := m.reachableFrom("s")
	if len(got) != 1 || got[0].OID() != "t" {
		t.Errorf("reachable = %v, want [t]", got)
	}
}

func TestPathMatcherPredicateEdges(t *testing.T) {
	// Regular path expressions permit predicates on edges: ~"is.*"*
	// matches any sequence of labels starting with "is".
	g := graph.New()
	g.AddEdge("a", "isPart", graph.NewNode("b"))
	g.AddEdge("b", "isPiece", graph.NewNode("c"))
	g.AddEdge("b", "other", graph.NewNode("d"))
	m := newPathMatcher(parsePath(t, `~"is.*"+`), NewGraphSource(g), nil, 0)
	got := m.reachableFrom("a")
	oids := map[graph.OID]bool{}
	for _, v := range got {
		oids[v.OID()] = true
	}
	if !oids["b"] || !oids["c"] || oids["d"] {
		t.Errorf("reachable = %v", got)
	}
}

func TestPathMatcherRegexAnchored(t *testing.T) {
	// The regex must match the whole label, not a substring.
	g := graph.New()
	g.AddEdge("a", "xy", graph.NewNode("b"))
	g.AddEdge("a", "x", graph.NewNode("c"))
	m := newPathMatcher(parsePath(t, `~"x"`), NewGraphSource(g), nil, 0)
	got := m.reachableFrom("a")
	if len(got) != 1 || got[0].OID() != "c" {
		t.Errorf("reachable = %v, want only c", got)
	}
}

func TestPathMatcherStarVsPlusProperty(t *testing.T) {
	// On random chain graphs: reach(R+) = reach(R.R*), and
	// reach(R*) = reach(R+) ∪ {start}.
	f := func(n uint8) bool {
		size := int(n%10) + 2
		g := graph.New()
		for i := 0; i < size-1; i++ {
			g.AddEdge(graph.OID(fmt.Sprintf("n%d", i)), "next", graph.NewNode(graph.OID(fmt.Sprintf("n%d", i+1))))
		}
		src := NewGraphSource(g)
		var tt testing.T
		star := newPathMatcher(parsePath(&tt, `"next"*`), src, nil, 0).reachableFrom("n0")
		plus := newPathMatcher(parsePath(&tt, `"next"+`), src, nil, 0).reachableFrom("n0")
		comp := newPathMatcher(parsePath(&tt, `"next"."next"*`), src, nil, 0).reachableFrom("n0")
		if len(plus) != len(comp) {
			return false
		}
		for i := range plus {
			if plus[i] != comp[i] {
				return false
			}
		}
		return len(star) == len(plus)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPathMatcherMemoConsistency(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "x", graph.NewNode("b"))
	m := newPathMatcher(parsePath(t, `"x"*`), NewGraphSource(g), nil, 0)
	first := m.reachableFrom("a")
	second := m.reachableFrom("a")
	if len(first) != len(second) {
		t.Error("memo changed results")
	}
	hitB, _ := m.matches("a", graph.NewNode("b"))
	hitZZ, _ := m.matches("a", graph.NewNode("zz"))
	if !hitB || hitZZ {
		t.Error("matches wrong")
	}
}

func TestSingleLabelDetection(t *testing.T) {
	if l, ok := singleLabel(parsePath(t, `"year"`)); !ok || l != "year" {
		t.Errorf("singleLabel = %q, %v", l, ok)
	}
	for _, p := range []string{`"a"."b"`, `"a"*`, `_`, `~"x"`} {
		if _, ok := singleLabel(parsePath(t, p)); ok {
			t.Errorf("%s should not be a single label", p)
		}
	}
}
