//go:build race

package struql

// Under the race detector every evaluation costs roughly an order of
// magnitude more, so the differential oracle runs a smoke subset; the
// full 10000-pair sweep runs in the plain suite (oracle_scale_test.go).
const oraclePairs = 400
