package struql

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// Query is a parsed StruQL query: a sequence of top-level blocks evaluated
// in order against the same source, all sharing one Skolem environment.
type Query struct {
	Blocks []*Block
}

// Block is one where/create/link/collect clause group, possibly with
// nested blocks whose conditions conjoin with this block's (§2.2). An
// optional aggregate clause (the §6.2 extension) groups the where
// clause's binding relation before construction.
type Block struct {
	Where []Cond
	// Aggregate, when non-empty, replaces the binding relation with one
	// row per distinct AggBy value combination, binding each AggExpr's
	// result variable.
	Aggregate []AggExpr
	AggBy     []string
	Create    []SkolemTerm
	Link      []LinkExpr
	Collect   []CollectExpr
	Nested    []*Block
	Line      int
}

// AggFn is an aggregation function.
type AggFn uint8

// Aggregation functions over a grouped variable's values. Count counts
// distinct rows in the group; the others fold the argument variable's
// values with dynamic coercion.
const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = [...]string{"count", "sum", "min", "max", "avg"}

func (f AggFn) String() string { return aggNames[f] }

// ParseAggFn maps a function name to an AggFn.
func ParseAggFn(s string) (AggFn, bool) {
	for i, n := range aggNames {
		if n == s {
			return AggFn(i), true
		}
	}
	return 0, false
}

// AggExpr is one aggregation: fn(Arg) as As.
type AggExpr struct {
	Fn  AggFn
	Arg string // variable aggregated over
	As  string // result variable
	Pos int
}

func (a AggExpr) String() string { return fmt.Sprintf("%s(%s) as %s", a.Fn, a.Arg, a.As) }

// Term is a variable or a constant in a condition or link expression.
type Term struct {
	Var   string      // non-empty for a variable
	Const graph.Value // used when Var == ""
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// VarTerm returns a variable term.
func VarTerm(name string) Term { return Term{Var: name} }

// ConstTerm returns a constant term.
func ConstTerm(v graph.Value) Term { return Term{Const: v} }

// Cond is one condition in a where clause.
type Cond interface {
	fmt.Stringer
	condLine() int
	// vars appends the variables the condition can bind (positively).
	boundVars(set map[string]bool)
	// needs appends variables that must already be bound for the
	// condition to be evaluable as a filter-only step.
	refVars(set map[string]bool)
}

// MemberCond is collection membership: Coll(x).
type MemberCond struct {
	Coll string
	Var  string
	Pos  int
}

func (c *MemberCond) String() string                { return fmt.Sprintf("%s(%s)", c.Coll, c.Var) }
func (c *MemberCond) condLine() int                 { return c.Pos }
func (c *MemberCond) boundVars(set map[string]bool) { set[c.Var] = true }
func (c *MemberCond) refVars(set map[string]bool)   { set[c.Var] = true }

// PredCond is a built-in predicate on a bound term: isImageFile(q).
type PredCond struct {
	Name string
	Arg  Term
	Pos  int
}

func (c *PredCond) String() string                { return fmt.Sprintf("%s(%s)", c.Name, c.Arg) }
func (c *PredCond) condLine() int                 { return c.Pos }
func (c *PredCond) boundVars(set map[string]bool) {}
func (c *PredCond) refVars(set map[string]bool) {
	if c.Arg.IsVar() {
		set[c.Arg.Var] = true
	}
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators, with dynamic value coercion at evaluation time.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (o CmpOp) String() string { return cmpNames[o] }

// CmpCond compares two terms: x = y, year > 1995, l != "patent".
type CmpCond struct {
	Op   CmpOp
	L, R Term
	Pos  int
}

func (c *CmpCond) String() string                { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }
func (c *CmpCond) condLine() int                 { return c.Pos }
func (c *CmpCond) boundVars(set map[string]bool) {}
func (c *CmpCond) refVars(set map[string]bool) {
	if c.L.IsVar() {
		set[c.L.Var] = true
	}
	if c.R.IsVar() {
		set[c.R.Var] = true
	}
}

// NotCond is safe negation of a conjunction: not(C1, C2, ...). Every
// variable free in the negated conjunction must be bound positively
// elsewhere or be local to the negation (existential inside the not).
type NotCond struct {
	Conds []Cond
	Pos   int
}

func (c *NotCond) String() string {
	parts := make([]string, len(c.Conds))
	for i, k := range c.Conds {
		parts[i] = k.String()
	}
	return fmt.Sprintf("not(%s)", strings.Join(parts, ", "))
}
func (c *NotCond) condLine() int                 { return c.Pos }
func (c *NotCond) boundVars(set map[string]bool) {}
func (c *NotCond) refVars(set map[string]bool) {
	// Externally-bound variables are those referenced but not bindable
	// inside the negation; for planning we require all outer variables
	// referenced here to be bound, and we approximate that set as every
	// referenced variable (locals are then a subset, which is safe).
	for _, k := range c.Conds {
		k.refVars(set)
		k.boundVars(set)
	}
}

// EdgeCond is a single edge with an arc variable: x -> l -> y. The arc
// variable binds the edge's label and can carry schema irregularities into
// the site graph (§6.2).
type EdgeCond struct {
	From     Term
	LabelVar string
	To       Term
	Pos      int
}

func (c *EdgeCond) String() string {
	return fmt.Sprintf("%s -> %s -> %s", c.From, c.LabelVar, c.To)
}
func (c *EdgeCond) condLine() int { return c.Pos }
func (c *EdgeCond) boundVars(set map[string]bool) {
	if c.From.IsVar() {
		set[c.From.Var] = true
	}
	set[c.LabelVar] = true
	if c.To.IsVar() {
		set[c.To.Var] = true
	}
}
func (c *EdgeCond) refVars(set map[string]bool) {}

// PathCond is a regular-path-expression condition: x -> R -> y means a
// path from x to y matching R exists.
type PathCond struct {
	From Term
	Path *PathExpr
	To   Term
	Pos  int
}

func (c *PathCond) String() string {
	return fmt.Sprintf("%s -> %s -> %s", c.From, c.Path, c.To)
}
func (c *PathCond) condLine() int { return c.Pos }
func (c *PathCond) boundVars(set map[string]bool) {
	if c.From.IsVar() {
		set[c.From.Var] = true
	}
	if c.To.IsVar() {
		set[c.To.Var] = true
	}
}
func (c *PathCond) refVars(set map[string]bool) {}

// PathOp discriminates regular-path-expression AST nodes.
type PathOp uint8

// Regular path expression operators: R := Pred | R.R | R|R | R* | R+ | R?.
const (
	PLabel PathOp = iota // quoted literal label
	PAny                 // _  (the predicate true)
	PRegex               // ~"re" — label matches the regular expression
	PConcat
	PAlt
	PStar
	PPlus
	POpt
)

// PathExpr is the AST of a regular path expression. Predicates on edges
// (PLabel, PAny, PRegex) are the leaves; concatenation, alternation, and
// repetition combine them, which makes these strictly more general than
// regular expressions over a fixed alphabet.
type PathExpr struct {
	Op    PathOp
	Label string
	ReSrc string
	Re    *regexp.Regexp
	Kids  []*PathExpr
}

func (p *PathExpr) String() string {
	switch p.Op {
	case PLabel:
		return fmt.Sprintf("%q", p.Label)
	case PAny:
		return "_"
	case PRegex:
		return fmt.Sprintf("~%q", p.ReSrc)
	case PConcat:
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.parenIf(PConcat)
		}
		return strings.Join(parts, ".")
	case PAlt:
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.parenIf(PAlt)
		}
		return strings.Join(parts, "|")
	case PStar:
		return p.Kids[0].parenIf(PStar) + "*"
	case PPlus:
		return p.Kids[0].parenIf(PStar) + "+"
	case POpt:
		return p.Kids[0].parenIf(PStar) + "?"
	}
	return "?"
}

// parenIf parenthesizes the child when its operator binds looser than the
// parent context requires.
func (p *PathExpr) parenIf(ctx PathOp) string {
	s := p.String()
	switch ctx {
	case PStar: // repetition applies to atoms only
		if p.Op == PConcat || p.Op == PAlt {
			return "(" + s + ")"
		}
	case PConcat:
		if p.Op == PAlt {
			return "(" + s + ")"
		}
	}
	return s
}

// SkolemTerm is a Skolem-function application creating (or re-deriving)
// a node: Fn(x, y). By definition the same function on the same inputs
// yields the same oid.
type SkolemTerm struct {
	Fn   string
	Args []string // variable names
	Pos  int
}

func (s SkolemTerm) String() string {
	return fmt.Sprintf("%s(%s)", s.Fn, strings.Join(s.Args, ", "))
}

// LinkTerm is an endpoint of a link or collect expression: a Skolem term,
// a variable, or a constant.
type LinkTerm struct {
	Skolem *SkolemTerm
	Term   *Term
}

func (t LinkTerm) String() string {
	if t.Skolem != nil {
		return t.Skolem.String()
	}
	return t.Term.String()
}

// IsSkolem reports whether the endpoint is a Skolem application.
func (t LinkTerm) IsSkolem() bool { return t.Skolem != nil }

// LabelSpec is the label of a constructed edge: a literal or an arc
// variable bound in the where clause.
type LabelSpec struct {
	Lit   string
	Var   string
	IsVar bool
}

func (l LabelSpec) String() string {
	if l.IsVar {
		return l.Var
	}
	return fmt.Sprintf("%q", l.Lit)
}

// LinkExpr constructs one edge per binding row. Sources must be Skolem
// terms: existing nodes are immutable and cannot be extended (§2.2).
type LinkExpr struct {
	From  SkolemTerm
	Label LabelSpec
	To    LinkTerm
	Pos   int
}

func (l LinkExpr) String() string {
	return fmt.Sprintf("%s -> %s -> %s", l.From.String(), l.Label, l.To)
}

// CollectExpr puts the target object into a named output collection.
type CollectExpr struct {
	Coll   string
	Target LinkTerm
	Pos    int
}

func (c CollectExpr) String() string { return fmt.Sprintf("%s(%s)", c.Coll, c.Target) }

// String renders the query in canonical concrete syntax that reparses to
// an equivalent query.
func (q *Query) String() string {
	var b strings.Builder
	for i, blk := range q.Blocks {
		if i > 0 {
			b.WriteString("\n")
		}
		blk.write(&b, 0)
	}
	return b.String()
}

func (blk *Block) write(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	if len(blk.Where) > 0 {
		b.WriteString(ind + "where ")
		for i, c := range blk.Where {
			if i > 0 {
				b.WriteString(",\n" + ind + "      ")
			}
			b.WriteString(c.String())
		}
		b.WriteString("\n")
	}
	if len(blk.Aggregate) > 0 {
		b.WriteString(ind + "aggregate ")
		for i, a := range blk.Aggregate {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		if len(blk.AggBy) > 0 {
			b.WriteString(" by " + strings.Join(blk.AggBy, ", "))
		}
		b.WriteString("\n")
	}
	if len(blk.Create) > 0 {
		b.WriteString(ind + "create ")
		for i, s := range blk.Create {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
		b.WriteString("\n")
	}
	if len(blk.Link) > 0 {
		b.WriteString(ind + "link ")
		for i, l := range blk.Link {
			if i > 0 {
				b.WriteString(",\n" + ind + "     ")
			}
			b.WriteString(l.String())
		}
		b.WriteString("\n")
	}
	if len(blk.Collect) > 0 {
		b.WriteString(ind + "collect ")
		for i, c := range blk.Collect {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
		b.WriteString("\n")
	}
	if len(blk.Nested) > 0 {
		b.WriteString(ind + "{\n")
		for i, n := range blk.Nested {
			if i > 0 {
				b.WriteString("\n")
			}
			n.write(b, depth+1)
		}
		b.WriteString(ind + "}\n")
	}
}

// LinkClauseCount returns the total number of link expressions in the
// query, the paper's measure of a site's structural complexity (§6.1).
func (q *Query) LinkClauseCount() int {
	n := 0
	var walk func(*Block)
	walk = func(b *Block) {
		n += len(b.Link)
		for _, k := range b.Nested {
			walk(k)
		}
	}
	for _, b := range q.Blocks {
		walk(b)
	}
	return n
}

// SkolemFunctions returns the distinct Skolem function names appearing in
// the query, sorted; site schemas have one node per name (§2.5).
func (q *Query) SkolemFunctions() []string {
	set := map[string]bool{}
	var walkTerm func(LinkTerm)
	walkTerm = func(t LinkTerm) {
		if t.Skolem != nil {
			set[t.Skolem.Fn] = true
		}
	}
	var walk func(*Block)
	walk = func(b *Block) {
		for _, s := range b.Create {
			set[s.Fn] = true
		}
		for _, l := range b.Link {
			set[l.From.Fn] = true
			walkTerm(l.To)
		}
		for _, c := range b.Collect {
			walkTerm(c.Target)
		}
		for _, k := range b.Nested {
			walk(k)
		}
	}
	for _, b := range q.Blocks {
		walk(b)
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
