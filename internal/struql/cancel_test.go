package struql

import (
	"context"
	"errors"
	"testing"

	"strudel/internal/graph"
)

func cancelTestGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		oid := graph.OID("o" + itoa(i))
		g.AddToCollection("C", oid)
		g.AddEdge(oid, "a", graph.NewInt(int64(i)))
	}
	return g
}

func TestEvalWhereCtxCancelled(t *testing.T) {
	g := cancelTestGraph(500)
	q := MustParse(`where C(x), x -> "a" -> v create P(x)`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvalWhereCtx(ctx, q.Blocks[0].Where, NewGraphSource(g), nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvalWhereCtxLiveCompletesIdentically(t *testing.T) {
	g := cancelTestGraph(500)
	q := MustParse(`where C(x), x -> "a" -> v create P(x)`)
	plain, err := EvalWhere(q.Blocks[0].Where, NewGraphSource(g), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := EvalWhereCtx(context.Background(), q.Blocks[0].Where, NewGraphSource(g), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != len(withCtx.Rows) || len(plain.Rows) != 500 {
		t.Fatalf("rows: plain %d, ctx %d, want 500", len(plain.Rows), len(withCtx.Rows))
	}
	// A live (non-background) context must also complete with equal rows,
	// exercising the batched rowMap path.
	live, liveCancel := context.WithCancel(context.Background())
	defer liveCancel()
	batched, err := EvalWhereCtx(live, q.Blocks[0].Where, NewGraphSource(g), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Rows) != len(plain.Rows) {
		t.Fatalf("batched rows %d != plain rows %d", len(batched.Rows), len(plain.Rows))
	}
	for i := range plain.Rows {
		for j := range plain.Rows[i] {
			if plain.Rows[i][j] != batched.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, plain.Rows[i][j], batched.Rows[i][j])
			}
		}
	}
}
