//go:build !race

package struql

// oraclePairs is the (graph, query) pair count TestDifferentialOracle
// sweeps in the plain test suite. The race-detector build (what CI's
// `make check` runs) uses the smoke subset in oracle_scale_race_test.go;
// `go test -short` divides either figure by 20.
const oraclePairs = 10000
