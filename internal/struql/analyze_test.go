package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// Every safety check in Analyze, exercised through Parse (which calls
// it) with the error text pinned, so a refactor cannot silently drop a
// check or garble its diagnosis.
func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"filter-unbound-var",
			`where Items(x), y > 3 create N(x)`,
			"variable y in"},
		{"pred-unbound-var",
			`where Items(x), isNode(z) create N(x)`,
			"variable z in"},
		{"aggregate-arg-unbound",
			`where Items(x) aggregate count(v) as c by x create N(x)`,
			"aggregated variable v is not bound"},
		{"aggregate-by-unbound",
			`where Items(x), x -> "a" -> v aggregate count(v) as c by g create N(c)`,
			"grouping variable g is not bound"},
		{"aggregate-result-collides",
			`where Items(x), x -> "a" -> v aggregate count(v) as x by x create N(x)`,
			"aggregate result x collides"},
		{"skolem-arity-conflict",
			`where Items(x), x -> "a" -> v create N(x) link N(x, v) -> "t" -> v`,
			"Skolem function N used with arities 1 and 2"},
		{"skolem-arity-conflict-across-blocks",
			`where Items(x) create N(x)
			 where Items(y), y -> "a" -> v create N(y, v)`,
			"Skolem function N used with arities 1 and 2"},
		{"skolem-arg-unbound",
			`where Items(x) create N(x, w)`,
			"Skolem argument w in"},
		{"link-target-unbound",
			`where Items(x) create N(x) link N(x) -> "t" -> q`,
			"variable q is not bound"},
		{"arc-var-unbound",
			`where Items(x) create N(x) link N(x) -> l -> x`,
			"arc variable l in link clause is not bound"},
		{"collect-target-unbound",
			`where Items(x) create N(x) collect R(w)`,
			"variable w is not bound"},
		{"nested-uses-consumed-var",
			`where Items(x), x -> "a" -> v aggregate count(v) as c by x
			 create N(x) { link N(x) -> "v" -> v }`,
			"variable v is not bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want it to contain %q", err, c.want)
			}
		})
	}
}

// Legal programs near the error boundaries: inherited bindings satisfy
// nested blocks, aggregation rebinds, and consistent Skolem reuse.
func TestAnalyzeAccepts(t *testing.T) {
	for _, src := range []string{
		`where Items(x) create N(x) { where x -> "a" -> v link N(x) -> "v" -> v }`,
		`where Items(x), x -> "a" -> v aggregate count(v) as c by x create N(x) link N(x) -> "c" -> c`,
		`where Items(x) create N(x) where Items(y) create N(y)`,
		`where Items(x), not(x -> "a" -> z) create N(x)`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): unexpected error %v", src, err)
		}
	}
}

// TestSkolemCollisionSuffix pins the "#n" disambiguation: distinct
// argument tuples whose sanitized display forms collide get suffixed
// OIDs, while repeated applications memoize to the first OID.
func TestSkolemCollisionSuffix(t *testing.T) {
	env := NewSkolemEnv()
	a := env.OID("P", []graph.Value{graph.NewString("x y")})
	b := env.OID("P", []graph.Value{graph.NewString("x,y")})
	c := env.OID("P", []graph.Value{graph.NewString("x(y")})
	if a != "P(x_y)" {
		t.Errorf("first OID = %q, want P(x_y)", a)
	}
	if b != "P(x_y)#2" || c != "P(x_y)#3" {
		t.Errorf("colliding OIDs = %q, %q, want #2 and #3 suffixes", b, c)
	}
	if again := env.OID("P", []graph.Value{graph.NewString("x,y")}); again != b {
		t.Errorf("memoized OID = %q, want %q", again, b)
	}
	if env.Size() != 3 {
		t.Errorf("Size = %d, want 3", env.Size())
	}
}

// TestSkolemArgSanitization covers the long-argument truncation marker
// and the reserved-character mapping (including '#', which would forge
// collision suffixes).
func TestSkolemArgSanitization(t *testing.T) {
	env := NewSkolemEnv()
	long := strings.Repeat("a", 60)
	oid := string(env.OID("P", []graph.Value{graph.NewString(long)}))
	if !strings.Contains(oid, "~60") {
		t.Errorf("long argument OID %q lacks ~60 length marker", oid)
	}
	hash := env.OID("Q", []graph.Value{graph.NewString("a#2")})
	if hash != "Q(a_2)" {
		t.Errorf("OID with '#' argument = %q, want Q(a_2)", hash)
	}
}

// TestSkolemIntTexts covers the oid integer rendering helper.
func TestSkolemIntTexts(t *testing.T) {
	if itoa(0) != "0" || itoa(1234) != "1234" {
		t.Errorf("itoa: got %q, %q", itoa(0), itoa(1234))
	}
}
