package struql

import (
	"fmt"
	"regexp"

	"strudel/internal/graph"
)

// Builtin node/atom predicates usable in where clauses. Any other
// name(term) condition is collection membership.
var builtinPreds = map[string]func(graph.Value) bool{
	"isNode":           graph.Value.IsNode,
	"isAtom":           graph.Value.IsAtom,
	"isString":         func(v graph.Value) bool { return v.Kind() == graph.KindString },
	"isInt":            func(v graph.Value) bool { return v.Kind() == graph.KindInt },
	"isFloat":          func(v graph.Value) bool { return v.Kind() == graph.KindFloat },
	"isBool":           func(v graph.Value) bool { return v.Kind() == graph.KindBool },
	"isURL":            func(v graph.Value) bool { return v.Kind() == graph.KindURL },
	"isFile":           func(v graph.Value) bool { return v.Kind() == graph.KindFile },
	"isImageFile":      fileTypePred(graph.FileImage),
	"isTextFile":       fileTypePred(graph.FileText),
	"isHTMLFile":       fileTypePred(graph.FileHTML),
	"isPostScriptFile": fileTypePred(graph.FilePostScript),
	"isPostScript":     fileTypePred(graph.FilePostScript),
}

func fileTypePred(t graph.FileType) func(graph.Value) bool {
	return func(v graph.Value) bool {
		return v.Kind() == graph.KindFile && v.FileType() == t
	}
}

// IsBuiltinPred reports whether name is a built-in predicate rather than a
// collection name.
func IsBuiltinPred(name string) bool {
	_, ok := builtinPreds[name]
	return ok
}

// ParseError is a StruQL syntax or analysis error with a source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("struql: line %d: %s", e.Line, e.Msg) }

// Parse parses and analyzes a StruQL query. The returned query has passed
// the safety checks in analyze.go.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	p.next()
	q := &Query{}
	for p.tok.kind != tokEOF {
		blk, err := p.block()
		if err != nil {
			return nil, err
		}
		q.Blocks = append(q.Blocks, blk)
	}
	if len(q.Blocks) == 0 {
		return nil, &ParseError{Line: 1, Msg: "empty query"}
	}
	if err := Analyze(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for tests and embedded query literals.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() { p.tok = p.lex.scan() }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, got %s", what, p.tok.describe())
	}
	t := p.tok
	p.next()
	return t, nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

// block parses one where/create/link/collect group with optional nested
// blocks. A block may omit the where clause (then it has one empty binding
// row, as in the first clause of the Fig. 3 query).
func (p *parser) block() (*Block, error) {
	blk := &Block{Line: p.tok.line}
	if p.atKeyword("where") {
		p.next()
		conds, err := p.condList()
		if err != nil {
			return nil, err
		}
		blk.Where = conds
	}
	if p.atKeyword("aggregate") {
		p.next()
		for {
			ae, err := p.aggExpr()
			if err != nil {
				return nil, err
			}
			blk.Aggregate = append(blk.Aggregate, ae)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
		if p.atKeyword("by") {
			p.next()
			for {
				v, err := p.expect(tokIdent, "grouping variable")
				if err != nil {
					return nil, err
				}
				blk.AggBy = append(blk.AggBy, v.text)
				if p.tok.kind != tokComma {
					break
				}
				p.next()
			}
		}
	}
	if p.atKeyword("create") {
		p.next()
		for {
			st, err := p.skolemTerm()
			if err != nil {
				return nil, err
			}
			blk.Create = append(blk.Create, st)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("link") {
		p.next()
		for {
			le, err := p.linkExpr()
			if err != nil {
				return nil, err
			}
			blk.Link = append(blk.Link, le)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("collect") {
		p.next()
		for {
			ce, err := p.collectExpr()
			if err != nil {
				return nil, err
			}
			blk.Collect = append(blk.Collect, ce)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	for p.tok.kind == tokLBrace {
		p.next()
		for p.tok.kind != tokRBrace {
			if p.tok.kind == tokEOF {
				return nil, p.errf("unterminated nested block (missing '}')")
			}
			nb, err := p.block()
			if err != nil {
				return nil, err
			}
			blk.Nested = append(blk.Nested, nb)
		}
		p.next() // consume '}'
	}
	if len(blk.Where) == 0 && len(blk.Aggregate) == 0 && len(blk.Create) == 0 &&
		len(blk.Link) == 0 && len(blk.Collect) == 0 && len(blk.Nested) == 0 {
		return nil, p.errf("expected 'where', 'create', 'link', or 'collect', got %s", p.tok.describe())
	}
	return blk, nil
}

// aggExpr parses fn(var) as var.
func (p *parser) aggExpr() (AggExpr, error) {
	line := p.tok.line
	fnTok, err := p.expect(tokIdent, "aggregation function (count, sum, min, max, avg)")
	if err != nil {
		return AggExpr{}, err
	}
	fn, ok := ParseAggFn(fnTok.text)
	if !ok {
		return AggExpr{}, &ParseError{Line: line, Msg: fmt.Sprintf("unknown aggregation function %q", fnTok.text)}
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return AggExpr{}, err
	}
	arg, err := p.expect(tokIdent, "variable")
	if err != nil {
		return AggExpr{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return AggExpr{}, err
	}
	if !p.atKeyword("as") {
		return AggExpr{}, p.errf("expected 'as' after %s(%s)", fnTok.text, arg.text)
	}
	p.next()
	as, err := p.expect(tokIdent, "result variable")
	if err != nil {
		return AggExpr{}, err
	}
	return AggExpr{Fn: fn, Arg: arg.text, As: as.text, Pos: line}, nil
}

// condList parses Cond ("," Cond)*. The comma list ends at a clause
// keyword, '}', '{', or EOF.
func (p *parser) condList() ([]Cond, error) {
	var conds []Cond
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if p.tok.kind != tokComma {
			break
		}
		p.next()
	}
	return conds, nil
}

func (p *parser) cond() (Cond, error) {
	line := p.tok.line
	// not(...)
	if p.atKeyword("not") {
		p.next()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		inner, err := p.condList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &NotCond{Conds: inner, Pos: line}, nil
	}
	// Name(term): builtin predicate or collection membership.
	if p.tok.kind == tokIdent {
		name := p.tok.text
		save := *p.lex
		saveTok := p.tok
		p.next()
		if p.tok.kind == tokLParen {
			p.next()
			arg, err := p.term()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			if IsBuiltinPred(name) {
				return &PredCond{Name: name, Arg: arg, Pos: line}, nil
			}
			if !arg.IsVar() {
				return nil, &ParseError{Line: line, Msg: fmt.Sprintf("collection test %s(...) requires a variable", name)}
			}
			return &MemberCond{Coll: name, Var: arg.Var, Pos: line}, nil
		}
		// Not a call: rewind and fall through to term-led parse.
		*p.lex = save
		p.tok = saveTok
	}
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokArrow:
		p.next()
		return p.pathTail(left, line)
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := map[tokKind]CmpOp{
			tokEq: CmpEq, tokNeq: CmpNeq, tokLt: CmpLt,
			tokLe: CmpLe, tokGt: CmpGt, tokGe: CmpGe,
		}[p.tok.kind]
		p.next()
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		return &CmpCond{Op: op, L: left, R: right, Pos: line}, nil
	}
	return nil, p.errf("expected '->' or comparison after term, got %s", p.tok.describe())
}

// pathTail parses the middle and target of x -> ... -> y. A bare
// identifier in the middle is an arc variable binding the edge label;
// anything else is a regular path expression.
func (p *parser) pathTail(from Term, line int) (Cond, error) {
	if p.tok.kind == tokIdent {
		labelVar := p.tok.text
		p.next()
		if _, err := p.expect(tokArrow, "'->'"); err != nil {
			return nil, err
		}
		to, err := p.term()
		if err != nil {
			return nil, err
		}
		return &EdgeCond{From: from, LabelVar: labelVar, To: to, Pos: line}, nil
	}
	rpe, err := p.pathExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow, "'->'"); err != nil {
		return nil, err
	}
	to, err := p.term()
	if err != nil {
		return nil, err
	}
	return &PathCond{From: from, Path: rpe, To: to, Pos: line}, nil
}

// pathExpr parses a regular path expression: alternation of
// concatenations of repeated atoms.
func (p *parser) pathExpr() (*PathExpr, error) {
	first, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	kids := []*PathExpr{first}
	for p.tok.kind == tokPipe {
		p.next()
		next, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &PathExpr{Op: PAlt, Kids: kids}, nil
}

func (p *parser) pathSeq() (*PathExpr, error) {
	first, err := p.pathRep()
	if err != nil {
		return nil, err
	}
	kids := []*PathExpr{first}
	for p.tok.kind == tokDot {
		p.next()
		next, err := p.pathRep()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &PathExpr{Op: PConcat, Kids: kids}, nil
}

func (p *parser) pathRep() (*PathExpr, error) {
	atom, err := p.pathAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar:
			p.next()
			atom = &PathExpr{Op: PStar, Kids: []*PathExpr{atom}}
		case tokPlus:
			p.next()
			atom = &PathExpr{Op: PPlus, Kids: []*PathExpr{atom}}
		case tokQuest:
			p.next()
			atom = &PathExpr{Op: POpt, Kids: []*PathExpr{atom}}
		default:
			return atom, nil
		}
	}
}

func (p *parser) pathAtom() (*PathExpr, error) {
	switch p.tok.kind {
	case tokString:
		pe := &PathExpr{Op: PLabel, Label: p.tok.text}
		p.next()
		return pe, nil
	case tokUnder:
		p.next()
		return &PathExpr{Op: PAny}, nil
	case tokStar:
		// A bare "*" in the middle of a path condition abbreviates _*
		// ("true*", any path, §2.2).
		p.next()
		return &PathExpr{Op: PStar, Kids: []*PathExpr{{Op: PAny}}}, nil
	case tokTilde:
		p.next()
		reTok, err := p.expect(tokString, "quoted regular expression after '~'")
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile("^(?:" + reTok.text + ")$")
		if err != nil {
			return nil, &ParseError{Line: reTok.line, Msg: fmt.Sprintf("bad label regexp %q: %v", reTok.text, err)}
		}
		return &PathExpr{Op: PRegex, ReSrc: reTok.text, Re: re}, nil
	case tokLParen:
		p.next()
		inner, err := p.pathExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errf("expected path expression, got %s", p.tok.describe())
}

// term parses a variable or constant.
func (p *parser) term() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		switch p.tok.text {
		case "true":
			p.next()
			return ConstTerm(graph.NewBool(true)), nil
		case "false":
			p.next()
			return ConstTerm(graph.NewBool(false)), nil
		}
		t := VarTerm(p.tok.text)
		p.next()
		return t, nil
	case tokString:
		t := ConstTerm(graph.NewString(p.tok.text))
		p.next()
		return t, nil
	case tokInt:
		t := ConstTerm(graph.NewInt(p.tok.i64))
		p.next()
		return t, nil
	case tokFloat:
		t := ConstTerm(graph.NewFloat(p.tok.f64))
		p.next()
		return t, nil
	case tokAmp:
		p.next()
		oid, err := p.expect(tokIdent, "node oid after '&'")
		if err != nil {
			return Term{}, err
		}
		return ConstTerm(graph.NewNode(graph.OID(oid.text))), nil
	}
	return Term{}, p.errf("expected term, got %s", p.tok.describe())
}

// skolemTerm parses Fn(args...); args are variable names.
func (p *parser) skolemTerm() (SkolemTerm, error) {
	line := p.tok.line
	fn, err := p.expect(tokIdent, "Skolem function name")
	if err != nil {
		return SkolemTerm{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return SkolemTerm{}, err
	}
	st := SkolemTerm{Fn: fn.text, Pos: line}
	if p.tok.kind != tokRParen {
		for {
			arg, err := p.expect(tokIdent, "variable name")
			if err != nil {
				return SkolemTerm{}, err
			}
			st.Args = append(st.Args, arg.text)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return SkolemTerm{}, err
	}
	return st, nil
}

// linkTerm parses a link/collect endpoint: Skolem term, variable, or
// constant.
func (p *parser) linkTerm() (LinkTerm, error) {
	if p.tok.kind == tokIdent && !p.atKeyword("true") && !p.atKeyword("false") {
		// Lookahead for '(' decides Skolem application vs variable.
		save := *p.lex
		saveTok := p.tok
		name := p.tok.text
		_ = name
		p.next()
		if p.tok.kind == tokLParen {
			*p.lex = save
			p.tok = saveTok
			st, err := p.skolemTerm()
			if err != nil {
				return LinkTerm{}, err
			}
			return LinkTerm{Skolem: &st}, nil
		}
		*p.lex = save
		p.tok = saveTok
	}
	t, err := p.term()
	if err != nil {
		return LinkTerm{}, err
	}
	return LinkTerm{Term: &t}, nil
}

func (p *parser) linkExpr() (LinkExpr, error) {
	line := p.tok.line
	from, err := p.linkTerm()
	if err != nil {
		return LinkExpr{}, err
	}
	if !from.IsSkolem() {
		return LinkExpr{}, &ParseError{Line: line,
			Msg: "link source must be a Skolem term: existing nodes are immutable and cannot be extended"}
	}
	if _, err := p.expect(tokArrow, "'->'"); err != nil {
		return LinkExpr{}, err
	}
	var spec LabelSpec
	switch p.tok.kind {
	case tokString:
		spec = LabelSpec{Lit: p.tok.text}
		p.next()
	case tokIdent:
		spec = LabelSpec{Var: p.tok.text, IsVar: true}
		p.next()
	default:
		return LinkExpr{}, p.errf("expected edge label (string or arc variable), got %s", p.tok.describe())
	}
	if _, err := p.expect(tokArrow, "'->'"); err != nil {
		return LinkExpr{}, err
	}
	to, err := p.linkTerm()
	if err != nil {
		return LinkExpr{}, err
	}
	return LinkExpr{From: *from.Skolem, Label: spec, To: to, Pos: line}, nil
}

func (p *parser) collectExpr() (CollectExpr, error) {
	line := p.tok.line
	coll, err := p.expect(tokIdent, "collection name")
	if err != nil {
		return CollectExpr{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return CollectExpr{}, err
	}
	target, err := p.linkTerm()
	if err != nil {
		return CollectExpr{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return CollectExpr{}, err
	}
	return CollectExpr{Coll: coll.text, Target: target, Pos: line}, nil
}
