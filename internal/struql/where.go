package struql

import "fmt"

// ParseWhere parses a standalone condition list — the body of a where
// clause, with the leading "where" keyword optional. It is the entry
// point for workloads that evaluate conditions directly through
// EvalWhere rather than running a full construction query: the HTTP
// query API POSTs exactly this fragment. The parsed conditions pass the
// same filter-safety check Analyze applies to a block's where clause,
// so every error is a typed *ParseError with a source line.
func ParseWhere(src string) ([]Cond, error) {
	p := &parser{lex: newLexer(src)}
	p.next()
	if p.atKeyword("where") {
		p.next()
	}
	if p.tok.kind == tokEOF {
		return nil, &ParseError{Line: p.tok.line, Msg: "empty where clause"}
	}
	conds, err := p.condList()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after conditions", p.tok.describe())
	}
	if err := AnalyzeWhere(conds); err != nil {
		return nil, err
	}
	return conds, nil
}

// AnalyzeWhere applies the filter-safety half of Analyze to a bare
// condition list: built-in predicates and comparisons may refer only to
// variables some positive condition binds. The planner re-checks
// schedulability at evaluation time, so this catches the errors early
// (at parse, before any routing) rather than being the last line of
// defense.
func AnalyzeWhere(conds []Cond) error {
	bound := map[string]bool{}
	for _, c := range conds {
		c.boundVars(bound)
	}
	for _, c := range conds {
		switch c.(type) {
		case *PredCond, *CmpCond:
			refs := map[string]bool{}
			c.refVars(refs)
			for v := range refs {
				if !bound[v] {
					return &ParseError{Line: c.condLine(),
						Msg: fmt.Sprintf("variable %s in %s is never bound by a positive condition", v, c)}
				}
			}
		}
	}
	return nil
}
