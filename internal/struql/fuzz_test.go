package struql

import (
	"testing"

	"strudel/internal/graph"
)

// FuzzParse exercises the StruQL lexer/parser/analyzer on arbitrary
// input: it must never panic, and anything that parses must print to a
// form that reparses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig3Query,
		textOnlyQuery,
		`where C(x), x -> l -> v create N(x) link N(x) -> l -> v`,
		`where C(x), x -> ("a"|"b")* -> y, not(isImageFile(y)) create N(y) collect Out(N(y))`,
		`where C(x) aggregate count(x) as n by x create S(x)`,
		`create R() link R() -> "t" -> "v"`,
		`where C(x), x -> "y" -> 1997, x -> "f" -> 2.5, x -> "b" -> true create N(x)`,
		"where \x00", "-> -> ->", `where C(x), x -> ~"(" -> y create N(x)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\noriginal: %q\nprinted: %q", err, src, printed)
		}
		if q2.String() != printed {
			t.Fatalf("printing is not a fixed point:\n%q\nvs\n%q", printed, q2.String())
		}
	})
}

// FuzzEval evaluates whatever parses against a small graph: evaluation
// must not panic and must be deterministic.
func FuzzEval(f *testing.F) {
	f.Add(`where Items(x), x -> "year" -> y create N(x, y)`)
	f.Add(`where Items(x), x -> l -> v create P(x) link P(x) -> l -> v`)
	f.Add(`where Items(x), x -> ("next")* -> z create R(z)`)
	g := graph.New()
	for i := 0; i < 6; i++ {
		oid := graph.OID(string(rune('a' + i)))
		g.AddToCollection("Items", oid)
		g.AddEdge(oid, "year", graph.NewInt(int64(1990+i)))
		g.AddEdge(oid, "next", graph.NewNode(graph.OID(string(rune('a'+(i+1)%6)))))
	}
	src := NewGraphSource(g)
	f.Fuzz(func(t *testing.T, qs string) {
		q, err := Parse(qs)
		if err != nil {
			return
		}
		r1, err1 := Eval(q, src, nil)
		r2, err2 := Eval(q, src, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 == nil && r1.Graph.Dump() != r2.Graph.Dump() {
			t.Fatalf("nondeterministic evaluation for %q", qs)
		}
	})
}
